// Command evalrun reproduces the paper's evaluation (§4) on the simulated
// HUG week: it regenerates every table and figure and prints them in order.
//
// Usage:
//
//	evalrun [-seed N] [-scale F] [-exp name[,name...]]
//	evalrun -drift [-seed N] [-drift-json file]
//
// Experiment names: table1, fig1, fig2, fig3, fig4, fig5, fig6, fig7,
// table2, fig8, fig9, all (default). -drift runs the scored
// drift-detection experiment over the scripted-incident corpus instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"logscape/internal/eval"
	"logscape/internal/logmodel"
	"logscape/internal/obs"
)

func main() {
	seed := flag.Int64("seed", 2005, "simulation seed")
	scale := flag.Float64("scale", 1, "volume scale (1 = 1/100 of HUG)")
	exps := flag.String("exp", "all", "comma-separated experiments to run")
	report := flag.String("report", "", "write a full Markdown report to this file and exit")
	stats := flag.Bool("stats", false, "print the run's metrics document (JSON) to stderr")
	drift := flag.Bool("drift", false, "run the scored drift-detection experiment and exit")
	driftJSON := flag.String("drift-json", "", "with -drift, also write the scorecard JSON to this file")
	flag.Parse()

	if *drift || *driftJSON != "" {
		// The drift experiment generates its own scripted-incident corpus;
		// the full evaluation week is not needed.
		t0 := time.Now() //lint:allow wallclock progress timing on stderr, not part of mined results
		sc, err := eval.RunDriftExperiment(eval.DefaultDriftOptions(*seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalrun:", err)
			os.Exit(1)
		}
		took := time.Since(t0).Round(time.Millisecond) //lint:allow wallclock progress timing on stderr, not part of mined results
		fmt.Fprintf(os.Stderr, "drift experiment done in %v\n", took)
		fmt.Print(sc)
		if *driftJSON != "" {
			data, err := json.MarshalIndent(sc, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "evalrun:", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*driftJSON, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "evalrun:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "scorecard written to %s\n", *driftJSON)
		}
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	sel := func(name string) bool { return want["all"] || want[name] }

	opts := eval.DefaultOptions(*seed)
	opts.Scale = *scale
	// Metrics are always collected for -report (the report embeds the
	// snapshot); the registry reads the wall clock only through the
	// sanctioned obs.SystemClock edge.
	opts.Metrics = obs.NewWithClock(obs.SystemClock)
	start := time.Now() //lint:allow wallclock progress timing on stderr, not part of mined results
	fmt.Fprintf(os.Stderr, "simulating week (seed %d, scale %.2f)...\n", *seed, *scale)
	r := eval.NewRunner(opts)
	elapsed := time.Since(start).Round(time.Millisecond) //lint:allow wallclock progress timing on stderr, not part of mined results
	fmt.Fprintf(os.Stderr, "week ready in %v (%d apps, %d groups, %d true deps)\n",
		elapsed, len(r.Topo.Apps), len(r.Topo.Groups), len(r.TrueDeps))

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalrun:", err)
			os.Exit(1)
		}
		if err := r.WriteReport(f, eval.ReportOptions{}); err != nil {
			fmt.Fprintln(os.Stderr, "evalrun:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "evalrun:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *report)
		return
	}

	run := func(name string, f func() fmt.Stringer) {
		if !sel(name) {
			return
		}
		t0 := time.Now() //lint:allow wallclock per-experiment timing banner, not part of mined results
		res := f()
		took := time.Since(t0).Round(time.Millisecond) //lint:allow wallclock per-experiment timing banner, not part of mined results
		fmt.Printf("=== %s (%v) ===\n%s\n", name, took, res)
	}

	run("table1", func() fmt.Stringer { return r.Table1() })
	run("fig1", func() fmt.Stringer { return r.Figure1(0, logmodel.TimeRange{}) })
	run("fig2", func() fmt.Stringer { return r.Figure2(0) })
	run("fig3", func() fmt.Stringer { return r.Figure3(0, 0, 0) })
	run("fig4", func() fmt.Stringer { return eval.Figure4() })
	run("fig5", func() fmt.Stringer { return r.Figure5() })
	run("sessions", func() fmt.Stringer { return r.SessionSummary() })
	run("fig6", func() fmt.Stringer { return r.Figure6() })
	run("fig7", func() fmt.Stringer { return r.Figure7(6, nil) })
	run("table2", func() fmt.Stringer { return r.Table2(nil) })
	run("fig8", func() fmt.Stringer { return r.Figure8() })
	run("fig9", func() fmt.Stringer { return r.Figure9(0) })
	run("ablations", func() fmt.Stringer { return r.Ablations(0) })

	if *stats {
		if err := opts.Metrics.WriteJSON(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "evalrun:", err)
			os.Exit(1)
		}
	}
}
