// Command loggen generates a synthetic hospital-information-system week:
// per-day log files in logscape's wire format, the service-directory XML,
// and the ground-truth reference models (app–app pairs and app→service
// dependencies) for evaluation.
//
// Usage:
//
//	loggen [-seed N] [-scale F] [-days N] -out DIR
//
// The output directory receives:
//
//	day-0.log … day-N.log   per-day log streams
//	directory.xml           the service directory
//	truth-pairs.txt         app–app reference model (one pair per line)
//	truth-deps.txt          app→service reference model
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"logscape/internal/core"
	"logscape/internal/hospital"
	"logscape/internal/logmodel"
)

func main() {
	seed := flag.Int64("seed", 2005, "simulation seed")
	scale := flag.Float64("scale", 1, "volume scale (1 = 1/100 of HUG)")
	days := flag.Int("days", 7, "number of days to simulate")
	out := flag.String("out", "", "output directory (required)")
	gz := flag.Bool("gzip", false, "write gzipped log files (day-N.log.gz)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "loggen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*seed, *scale, *days, *out, *gz); err != nil {
		fmt.Fprintln(os.Stderr, "loggen:", err)
		os.Exit(1)
	}
}

func run(seed int64, scale float64, days int, out string, gz bool) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	topo := hospital.GenerateTopology(hospital.DefaultTopologyConfig(), seed)
	cfg := hospital.DefaultConfig(seed)
	cfg.Scale = scale
	cfg.Days = days
	sim := hospital.NewSimulator(cfg, topo)

	// Directory.
	df, err := os.Create(filepath.Join(out, "directory.xml"))
	if err != nil {
		return err
	}
	if err := topo.Directory().Write(df); err != nil {
		df.Close()
		return err
	}
	if err := df.Close(); err != nil {
		return err
	}

	// Reference models. The truth files run to thousands of lines; buffer
	// the writers so each line is not its own write syscall.
	pf, err := os.Create(filepath.Join(out, "truth-pairs.txt"))
	if err != nil {
		return err
	}
	pw := bufio.NewWriter(pf)
	pairs := topo.TrueAppPairs()
	for _, p := range pairSetSorted(pairs) {
		fmt.Fprintf(pw, "%s\t%s\n", p.A, p.B)
	}
	if err := pw.Flush(); err != nil {
		pf.Close()
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}
	tf, err := os.Create(filepath.Join(out, "truth-deps.txt"))
	if err != nil {
		return err
	}
	tw := bufio.NewWriter(tf)
	deps := topo.TrueAppServicePairs()
	for _, d := range depSetSorted(deps) {
		fmt.Fprintf(tw, "%s\t%s\n", d.App, d.Group)
	}
	if err := tw.Flush(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}

	// Per-day logs.
	total := 0
	for d := 0; d < days; d++ {
		store, stats := sim.GenerateDay(d)
		name := filepath.Join(out, fmt.Sprintf("day-%d.log", d))
		if gz {
			name += ".gz"
		}
		if err := logmodel.WriteFile(name, store); err != nil {
			return err
		}
		total += stats.TotalLogs
		fmt.Printf("%s: %d logs (%s, %d sessions)\n",
			name, stats.TotalLogs, stats.Date.Format("2006-01-02 Mon"), stats.Sessions)
	}
	fmt.Printf("total: %d logs, %d apps, %d service groups, %d true dependencies\n",
		total, len(topo.Apps), len(topo.Groups), len(topo.Edges))
	return nil
}

func pairSetSorted(s map[hospital.Pair]bool) []hospital.Pair {
	return core.PairSet(s).SortedPairs()
}

func depSetSorted(s map[hospital.AppServicePair]bool) []hospital.AppServicePair {
	return core.AppServiceSet(s).SortedPairs()
}
