// Command lintscape is the repository's invariant checker: a multichecker
// over the analyzers in internal/analyzers that mechanically enforces the
// determinism & concurrency contract (see DESIGN.md §"Static invariants").
//
// Usage:
//
//	lintscape [flags] [packages]
//
// With no packages it checks ./... . Flags:
//
//	-json           emit findings as a JSON array instead of text
//	-tests          also check in-package _test.go files
//	-config FILE    severity configuration (default: .lintscape.json at
//	                the module root, if present)
//	-workers N      analysis parallelism (0 = all cores, 1 = sequential)
//	-list           print the analyzers and their docs, then exit
//
// Exit status is 1 when any error-severity finding remains after
// //lint:allow filtering, 2 on operational failure, 0 otherwise.
//
// The binary also speaks enough of the `go vet -vettool` protocol to run
// as go vet -vettool=$(which lintscape) ./... : it answers -V=full and
// -flags, and accepts a vet .cfg unit file as its sole argument.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"logscape/internal/analysis"
	"logscape/internal/analysis/runner"
	"logscape/internal/analyzers"
)

func main() {
	// go vet probes its -vettool with -V=full before anything else.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			// The version string must not be "devel": cmd/go's toolID
			// parser then demands a trailing buildID=... field.
			fmt.Println("lintscape version v0.1.0")
			return
		}
		if arg == "-flags" || arg == "--flags" {
			// No analyzer flags are exported to vet.
			fmt.Println("[]")
			return
		}
	}

	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	configPath := flag.String("config", "", "severity configuration file (default: .lintscape.json at the module root)")
	workers := flag.Int("workers", 0, "analysis parallelism: 0 = all cores, 1 = sequential")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}
	os.Exit(standalone(args, *configPath, *jsonOut, *tests, *workers))
}

// standalone is the main mode: load packages, run the suite (per-package
// analyzers in parallel, program-level dataflow analyzers over the whole
// load), print.
func standalone(patterns []string, configPath string, jsonOut, tests bool, workers int) int {
	res, err := runner.Run(analyzers.All(), runner.Options{
		Patterns:   patterns,
		Tests:      tests,
		Workers:    workers,
		ConfigPath: configPath,
		Known:      analyzers.Names(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintscape:", err)
		return 2
	}
	return report(res.Findings, jsonOut)
}

// report prints the findings and returns the exit code.
func report(findings []analysis.Finding, jsonOut bool) int {
	failed := false
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "lintscape:", err)
			return 2
		}
		for _, f := range findings {
			failed = failed || f.Severity == analysis.SeverityError
		}
	} else {
		for _, f := range findings {
			label := ""
			if f.Severity == analysis.SeverityWarn {
				label = " [warn]"
			}
			fmt.Printf("%s%s\n", f.String(), label)
			failed = failed || f.Severity == analysis.SeverityError
		}
	}
	if failed {
		return 1
	}
	return 0
}
