// Command lintscape is the repository's invariant checker: a multichecker
// over the analyzers in internal/analyzers that mechanically enforces the
// determinism & concurrency contract (see DESIGN.md §"Static invariants").
//
// Usage:
//
//	lintscape [flags] [packages]
//
// With no packages it checks ./... . Flags:
//
//	-json           emit findings as a JSON array instead of text
//	-tests          also check in-package _test.go files
//	-config FILE    severity configuration (default: .lintscape.json at
//	                the module root, if present)
//	-workers N      analysis parallelism (0 = all cores, 1 = sequential)
//	-list           print the analyzers and their docs, then exit
//
// Exit status is 1 when any error-severity finding remains after
// //lint:allow filtering, 2 on operational failure, 0 otherwise.
//
// The binary also speaks enough of the `go vet -vettool` protocol to run
// as go vet -vettool=$(which lintscape) ./... : it answers -V=full and
// -flags, and accepts a vet .cfg unit file as its sole argument.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"logscape/internal/analysis"
	"logscape/internal/analysis/load"
	"logscape/internal/analyzers"
	"logscape/internal/parallel"
)

func main() {
	// go vet probes its -vettool with -V=full before anything else.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			// The version string must not be "devel": cmd/go's toolID
			// parser then demands a trailing buildID=... field.
			fmt.Println("lintscape version v0.1.0")
			return
		}
		if arg == "-flags" || arg == "--flags" {
			// No analyzer flags are exported to vet.
			fmt.Println("[]")
			return
		}
	}

	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	configPath := flag.String("config", "", "severity configuration file (default: .lintscape.json at the module root)")
	workers := flag.Int("workers", 0, "analysis parallelism: 0 = all cores, 1 = sequential")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}
	os.Exit(standalone(args, *configPath, *jsonOut, *tests, *workers))
}

// standalone is the main mode: load packages, run the suite, print.
func standalone(patterns []string, configPath string, jsonOut, tests bool, workers int) int {
	res, err := load.Load(load.Options{Patterns: patterns, Tests: tests, Workers: workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintscape:", err)
		return 2
	}
	for _, pkg := range res.Packages {
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "lintscape: %s: %v\n", pkg.ImportPath, e)
		}
		if len(pkg.Errors) > 0 {
			return 2
		}
	}

	cfg, err := severityConfig(configPath, res.ModuleDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintscape:", err)
		return 2
	}

	suite := analyzers.All()
	perPkg := parallel.Map(parallel.Workers(workers), len(res.Packages), func(i int) []analysis.Finding {
		return checkPackage(res.Packages[i], suite, cfg, res.ModuleDir)
	})
	var findings []analysis.Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}
	analysis.SortFindings(findings)
	return report(findings, jsonOut)
}

// checkPackage runs every non-off analyzer over one package and returns
// the surviving findings (severity applied, directives filtered).
func checkPackage(pkg *load.Package, suite []*analysis.Analyzer, cfg *analysis.SeverityConfig, moduleDir string) []analysis.Finding {
	var findings []analysis.Finding
	for _, a := range suite {
		sev := cfg.Severity(pkg.RelDir, a.Name)
		if sev == analysis.SeverityOff {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				file := pos.Filename
				if moduleDir != "" {
					if rel, err := filepath.Rel(moduleDir, file); err == nil {
						file = filepath.ToSlash(rel)
					}
				}
				findings = append(findings, analysis.Finding{
					Analyzer: a.Name, Pos: pos,
					File: file, Line: pos.Line, Col: pos.Column,
					Message:  d.Message,
					Severity: sev,
				})
			},
		}
		if _, err := a.Run(pass); err != nil {
			findings = append(findings, analysis.Finding{
				Analyzer: a.Name, File: pkg.RelDir,
				Message:  fmt.Sprintf("analyzer failed: %v", err),
				Severity: analysis.SeverityError,
			})
		}
	}
	return analysis.FilterByDirectives(findings, pkg.Sources)
}

// severityConfig loads -config, or the module's .lintscape.json when
// present, or returns nil (everything error-severity).
func severityConfig(configPath, moduleDir string) (*analysis.SeverityConfig, error) {
	if configPath != "" {
		return analysis.LoadSeverityConfig(configPath)
	}
	if moduleDir != "" {
		def := filepath.Join(moduleDir, ".lintscape.json")
		if _, err := os.Stat(def); err == nil {
			return analysis.LoadSeverityConfig(def)
		}
	}
	return nil, nil
}

// report prints the findings and returns the exit code.
func report(findings []analysis.Finding, jsonOut bool) int {
	failed := false
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "lintscape:", err)
			return 2
		}
		for _, f := range findings {
			failed = failed || f.Severity == analysis.SeverityError
		}
	} else {
		for _, f := range findings {
			label := ""
			if f.Severity == analysis.SeverityWarn {
				label = " [warn]"
			}
			fmt.Printf("%s%s\n", f.String(), label)
			failed = failed || f.Severity == analysis.SeverityError
		}
	}
	if failed {
		return 1
	}
	return 0
}
