package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"logscape/internal/analysis"
	"logscape/internal/analysis/load"
	"logscape/internal/analyzers"
)

// vetConfig is the subset of the cmd/go vet unit configuration file that
// lintscape consumes (the same wire format x/tools' unitchecker reads).
type vetConfig struct {
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	// VetxOnly marks a dependency unit: vet only wants facts (which
	// lintscape's analyzers do not produce), not diagnostics.
	VetxOnly bool
	// VetxOutput is where vet expects the facts file; it must exist after
	// the run or cmd/go treats the tool as failed.
	VetxOutput string
}

// vetUnit analyzes one vet unit (go vet -vettool mode): parse the unit's
// files, type-check against the export data vet already compiled, run the
// suite and print findings to stderr. Returns the process exit code.
func vetUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintscape:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lintscape: parsing vet config:", err)
		return 2
	}
	if cfg.VetxOutput != "" {
		// The analyzers exchange no facts; an empty file satisfies vet.
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "lintscape:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		// Dependency unit (stdlib or otherwise): vet only wants facts, so
		// do not analyze or report — diagnostics belong to the named
		// packages.
		return 0
	}

	fset := token.NewFileSet()
	sources := make(map[string][]byte)
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		src, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintscape:", err)
			return 2
		}
		sources[name] = src
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintscape:", err)
			return 2
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := load.NewInfo()
	tconf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintscape: %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	// Severity configuration: nearest .lintscape.json at or above the
	// unit's directory (vet does not tell us the module root).
	sevCfg := findSeverityConfig(cfg.Dir)
	relDir := relToConfigRoot(cfg.Dir)

	var findings []analysis.Finding
	record := func(a *analysis.Analyzer, sev analysis.Severity) func(analysis.Diagnostic) {
		return func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			findings = append(findings, analysis.Finding{
				Analyzer: a.Name, Pos: pos,
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: d.Message, Severity: sev,
			})
		}
	}
	// One vet unit is one package: program-level analyzers run in a
	// degraded single-unit mode here — summaries for callees outside the
	// unit are unknown, so cross-package flows are only caught by the
	// standalone driver. The vet protocol has no whole-program hook.
	unit := &analysis.ProgramUnit{Pkg: tpkg, Files: files, Info: info, RelDir: relDir, Sources: sources}
	for _, a := range analyzers.All() {
		sev := sevCfg.Severity(relDir, a.Name)
		if sev == analysis.SeverityOff {
			continue
		}
		report := record(a, sev)
		var err error
		switch {
		case a.Run != nil:
			pass := &analysis.Pass{
				Analyzer: a, Fset: fset, Files: files, Pkg: tpkg, TypesInfo: info,
				Sources: sources,
				Report:  report,
			}
			_, err = a.Run(pass)
		case a.RunProgram != nil:
			pass := &analysis.ProgramPass{
				Analyzer: a, Fset: fset,
				Units:  []*analysis.ProgramUnit{unit},
				Report: func(_ *analysis.ProgramUnit, d analysis.Diagnostic) { report(d) },
			}
			err = a.RunProgram(pass)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintscape: %s: %v\n", a.Name, err)
			return 2
		}
	}
	findings = analysis.FilterByDirectives(findings, sources)
	analysis.SortFindings(findings)
	failed := false
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
		failed = failed || f.Severity == analysis.SeverityError
	}
	if failed {
		return 1
	}
	return 0
}

// configRoot is the directory whose .lintscape.json was loaded, so that
// severity dir keys resolve against it.
var configRoot string

func findSeverityConfig(dir string) *analysis.SeverityConfig {
	for d := dir; ; {
		candidate := filepath.Join(d, ".lintscape.json")
		if _, err := os.Stat(candidate); err == nil {
			if cfg, err := analysis.LoadSeverityConfig(candidate, analyzers.Names()); err == nil {
				configRoot = d
				return cfg
			}
		}
		parent := filepath.Dir(d)
		if parent == d {
			return nil
		}
		d = parent
	}
}

func relToConfigRoot(dir string) string {
	if configRoot == "" {
		return "."
	}
	rel, err := filepath.Rel(configRoot, dir)
	if err != nil {
		return "."
	}
	return filepath.ToSlash(rel)
}
