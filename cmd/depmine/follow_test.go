package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"time"

	"logscape/internal/directory"
	"logscape/internal/logmodel"
	"logscape/internal/stream"
)

var update = flag.Bool("update", false, "rewrite golden files")

// followOpts is the baseline follow-mode option set the tests tweak.
func followOpts(file string) options {
	return options{
		method:    "l1",
		minlogs:   2,
		timeout:   1,
		workers:   1,
		bucketSec: 1,
		windowN:   2,
		files:     []string{file},
	}
}

// ts renders a millisecond timestamp for 2005-12-06 08:00:00 UTC + off.
func ts(off time.Duration) logmodel.Millis {
	base := time.Date(2005, 12, 6, 8, 0, 0, 0, time.UTC)
	return logmodel.Millis(base.Add(off).UnixMilli())
}

// line renders one wire-format line.
func line(at logmodel.Millis, src, msg string) string {
	return logmodel.FormatEntry(logmodel.Entry{
		Time: at, Source: src, Host: "h", User: "u", Severity: logmodel.SevInfo, Message: msg,
	})
}

// writeLog writes lines (plus trailing newlines) to a temp file and returns
// its path.
func writeLog(t *testing.T, lines []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "follow.log")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// pairCorpus builds a stream whose mined pair set changes as the window
// slides: sources A and B log in lockstep for the first buckets, then B goes
// silent and C takes its place — the delta lines must show the A--B pair
// appearing and later being replaced by A--C.
func pairCorpus() []string {
	var lines []string
	emit := func(bucket int, srcs ...string) {
		for i := 0; i < 25; i++ {
			at := ts(time.Duration(bucket)*time.Second + time.Duration(i*37)*time.Millisecond)
			for _, s := range srcs {
				lines = append(lines, line(at, s, fmt.Sprintf("tick %d", i)))
			}
		}
	}
	for b := 0; b < 3; b++ {
		emit(b, "AppA", "AppB")
	}
	for b := 3; b < 6; b++ {
		emit(b, "AppA", "AppC")
	}
	// One entry in bucket 6 so bucket 5 closes before the final flush.
	lines = append(lines, line(ts(6*time.Second), "AppA", "done"))
	return lines
}

// depCorpus builds a citation stream for l3: App1 cites the REG group early,
// then switches to the STORE group.
func depCorpus() []string {
	var lines []string
	for b := 0; b < 3; b++ {
		at := ts(time.Duration(b) * time.Second)
		lines = append(lines, line(at, "App1", "GET http://reg.hug/reg/list"))
		lines = append(lines, line(at+100, "App1", "reply ok"))
	}
	for b := 3; b < 6; b++ {
		at := ts(time.Duration(b) * time.Second)
		lines = append(lines, line(at, "App1", "PUT http://store.hug/store/save"))
		lines = append(lines, line(at+100, "App1", "reply ok"))
	}
	lines = append(lines, line(ts(6*time.Second), "App1", "done"))
	return lines
}

// driftCorpus builds a scripted-incident citation stream for l3 drift
// detection: App1 cites REG from the start, adopts STORE at bucket 5 (a
// birth confirmed K=3 buckets later), and stops citing REG at bucket 24 (a
// death after the dense-key absence run of 4 buckets — the 24 observed
// buckets behind REG satisfy the detector's young-key guard).
func driftCorpus() []string {
	var lines []string
	for b := 0; b <= 32; b++ {
		at := ts(time.Duration(b) * time.Second)
		if b < 24 {
			lines = append(lines, line(at, "App1", "GET http://reg.hug/reg/list"))
		}
		if b >= 5 {
			lines = append(lines, line(at+200, "App1", "PUT http://store.hug/store/save"))
		}
	}
	lines = append(lines, line(ts(33*time.Second), "App1", "done"))
	return lines
}

// driftLines extracts the DRIFT alert lines from a follow run's stderr.
func driftLines(stderr string) []string {
	var out []string
	for _, l := range strings.Split(stderr, "\n") {
		if strings.HasPrefix(l, "DRIFT ") {
			out = append(out, l)
		}
	}
	return out
}

// writeDirXML persists the test service directory and returns its path.
func writeDirXML(t *testing.T) string {
	t.Helper()
	d := &directory.Directory{Version: 1, Groups: []directory.Group{
		{ID: "REG", RootURL: "http://reg.hug/reg", Services: []directory.Service{{Name: "list"}}},
		{ID: "STORE", RootURL: "http://store.hug/store", Services: []directory.Service{{Name: "save"}}},
	}}
	path := filepath.Join(t.TempDir(), "dir.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

func TestFollowGoldenPairDeltas(t *testing.T) {
	o := followOpts(writeLog(t, pairCorpus()))
	var stdout, stderr bytes.Buffer
	if err := followStream(o, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stderr.String()
	if !strings.Contains(out, "+AppA--AppB") || !strings.Contains(out, "-AppA--AppB") ||
		!strings.Contains(out, "+AppA--AppC") {
		t.Errorf("delta lines lack the expected add/remove transitions:\n%s", out)
	}
	checkGolden(t, "follow_pairs", stderr.Bytes())
}

func TestFollowGoldenDepDeltas(t *testing.T) {
	o := followOpts(writeLog(t, depCorpus()))
	o.method = "l3"
	o.dirPath = writeDirXML(t)
	var stdout, stderr bytes.Buffer
	if err := followStream(o, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stderr.String()
	if !strings.Contains(out, "+App1->REG") || !strings.Contains(out, "-App1->REG") ||
		!strings.Contains(out, "+App1->STORE") {
		t.Errorf("delta lines lack the expected dep transitions:\n%s", out)
	}
	checkGolden(t, "follow_deps", stderr.Bytes())
}

func TestFollowGoldenDriftAlerts(t *testing.T) {
	o := followOpts(writeLog(t, driftCorpus()))
	o.method = "l3"
	o.dirPath = writeDirXML(t)
	o.drift = true
	var stdout, stderr bytes.Buffer
	if err := followStream(o, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stderr.String()
	if !strings.Contains(out, "birth App1->STORE") || !strings.Contains(out, "death App1->REG") {
		t.Errorf("stderr lacks the scripted birth and death alerts:\n%s", out)
	}
	checkGolden(t, "follow_drift", stderr.Bytes())
}

// TestFollowDriftResumeKeepsAlertStream kills the follow run mid-incident
// (two buckets into App1->REG's terminal absence run, before the death
// confirms) and resumes: the concatenated DRIFT lines of the two runs must
// equal an uninterrupted run's — no alert lost, none repeated.
func TestFollowDriftResumeKeepsAlertStream(t *testing.T) {
	lines := driftCorpus()
	full := writeLog(t, lines)
	dir := writeDirXML(t)
	mkOpts := func(file string) options {
		o := followOpts(file)
		o.method = "l3"
		o.dirPath = dir
		o.drift = true
		return o
	}

	var refOut, refErr bytes.Buffer
	if err := followStream(mkOpts(full), &refOut, &refErr); err != nil {
		t.Fatal(err)
	}
	ref := driftLines(refErr.String())
	if len(ref) != 2 {
		t.Fatalf("reference run alerts = %v, want a birth and a death", ref)
	}

	// Cut at a bucket boundary inside the death's absence run (absences
	// start at bucket 24; the death confirms at 27; the cut leaves the
	// first two absences on the checkpointed side).
	cut := 0
	for i, l := range lines {
		e, err := logmodel.ParseEntry(l)
		if err != nil {
			t.Fatal(err)
		}
		if e.Time < ts(26*time.Second) {
			cut = i + 1
		}
	}
	prefixPath := writeLog(t, lines[:cut])
	ckpt := filepath.Join(t.TempDir(), "follow.ckpt")

	o1 := mkOpts(prefixPath)
	o1.resumePath = ckpt
	var out1, err1 bytes.Buffer
	if err := followStream(o1, &out1, &err1); err != nil {
		t.Fatal(err)
	}
	o2 := mkOpts(full)
	o2.resumePath = ckpt
	var out2, err2 bytes.Buffer
	if err := followStream(o2, &out2, &err2); err != nil {
		t.Fatal(err)
	}
	got := append(driftLines(err1.String()), driftLines(err2.String())...)
	if !slices.Equal(got, ref) {
		t.Errorf("kill+resume alert stream differs\ngot:  %v\nwant: %v", got, ref)
	}
}

// TestFollowResumeContinuesWhereItStopped runs follow over a prefix of the
// stream with -resume, then over the full file: the second run must pick up
// at the checkpoint (no replayed buckets) and end on the same final model as
// an uninterrupted run.
func TestFollowResumeContinuesWhereItStopped(t *testing.T) {
	lines := pairCorpus()
	full := writeLog(t, lines)

	// Uninterrupted reference.
	ref := followOpts(full)
	var refOut, refErr bytes.Buffer
	if err := followStream(ref, &refOut, &refErr); err != nil {
		t.Fatal(err)
	}

	// Cut at a bucket boundary: every line before the cut belongs to buckets
	// the prefix run closes (or flushes) completely, so its EOF flush and a
	// mid-stream kill agree on the window state.
	cut := 0
	for i, l := range lines {
		e, err := logmodel.ParseEntry(l)
		if err != nil {
			t.Fatal(err)
		}
		if e.Time < ts(3*time.Second) {
			cut = i + 1
		}
	}
	prefixPath := writeLog(t, lines[:cut])
	ckpt := filepath.Join(t.TempDir(), "follow.ckpt")

	o1 := followOpts(prefixPath)
	o1.resumePath = ckpt
	var out1, err1 bytes.Buffer
	if err := followStream(o1, &out1, &err1); err != nil {
		t.Fatal(err)
	}
	cp, err := stream.ReadCheckpointFile(ckpt)
	if err != nil || cp == nil {
		t.Fatalf("checkpoint after prefix run: %v, %v", cp, err)
	}

	// The full file has the same bytes for the prefix; resume from it.
	o2 := followOpts(full)
	o2.resumePath = ckpt
	var out2, err2 bytes.Buffer
	if err := followStream(o2, &out2, &err2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(err2.String(), "[2005-12-06T08:00:00 ..") {
		t.Errorf("resumed run re-emitted the first window:\n%s", err2.String())
	}
	// The final emitted model document must match the uninterrupted run's.
	lastDoc := func(s string) string {
		docs := strings.Split(strings.TrimSpace(s), "}\n{")
		return docs[len(docs)-1]
	}
	if lastDoc(out2.String()) != lastDoc(refOut.String()) {
		t.Errorf("final model after resume differs\nresumed: %s\nref:     %s",
			lastDoc(out2.String()), lastDoc(refOut.String()))
	}
}

func TestFollowResumeRefusals(t *testing.T) {
	o := followOpts("-")
	o.resumePath = filepath.Join(t.TempDir(), "ckpt")
	if err := followStream(o, &bytes.Buffer{}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "stdin") {
		t.Errorf("stdin resume = %v, want refusal naming stdin", err)
	}

	// A checkpoint taken after a rotation must be refused: its offset no
	// longer maps to one file.
	log := writeLog(t, pairCorpus())
	o = followOpts(log)
	o.resumePath = filepath.Join(t.TempDir(), "rotated.ckpt")
	in := stream.NewIngester(stream.Config{BucketWidth: 1000, WindowBuckets: 2})
	if err := stream.WriteCheckpointFile(o.resumePath, in.Checkpoint(10, 3)); err != nil {
		t.Fatal(err)
	}
	if err := followStream(o, &bytes.Buffer{}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "rotation") {
		t.Errorf("rotated checkpoint = %v, want refusal naming rotation", err)
	}
}

func TestFollowQuarantineFile(t *testing.T) {
	lines := pairCorpus()
	withJunk := append([]string{"junk line, no tabs"}, lines...)
	o := followOpts(writeLog(t, withJunk))
	o.quarantinePath = filepath.Join(t.TempDir(), "quarantine.log")
	var stdout, stderr bytes.Buffer
	if err := followStream(o, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	q, err := os.ReadFile(o.quarantinePath)
	if err != nil {
		t.Fatal(err)
	}
	if want := "malformed\tjunk line, no tabs\n"; string(q) != want {
		t.Errorf("quarantine file = %q, want %q", q, want)
	}
	if !strings.Contains(stderr.String(), "1 malformed, 0 oversized, 1 quarantined") {
		t.Errorf("summary does not account the quarantined line:\n%s", stderr.String())
	}
}
