package main

// Follow mode: instead of mining a finished corpus once, tail a log stream
// and re-emit the dependency model of a sliding time window as it moves.
// Pair with `tail -f | depmine -follow -` for live operation; the mode
// itself never consults the wallclock — time advances only as entry
// timestamps do, so replaying a historical file reproduces the exact same
// sequence of models (and the batch-equivalence contract of
// internal/stream guarantees each of them matches a one-shot batch run
// over the same window).
//
// The ingest path is hardened against a hostile transport (the fault model
// internal/chaos generates): transient read errors are retried with bounded
// backoff, torn .gz tails deliver their decompressed prefix, rotations of a
// tailed file are followed, malformed/oversized/late/corrupt lines are
// counted by class and optionally preserved in a quarantine file, and
// -resume checkpoints the window per closed bucket so a killed process
// restarts without replaying the stream or double-ingesting a line.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"logscape/internal/core"
	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/core/l3"
	"logscape/internal/directory"
	"logscape/internal/drift"
	"logscape/internal/hospital"
	"logscape/internal/logmodel"
	"logscape/internal/modelstore"
	"logscape/internal/sessions"
	"logscape/internal/stream"
)

// runFollow tails one wire-format log stream ("-" = stdin, ".gz"
// transparently decompressed) and, on every closed bucket, writes the
// window's model document to stdout and a delta summary against the
// previous window to stderr. With -listen, the run's metrics, the latest
// per-bucket trace and net/http/pprof are served over HTTP while it tails.
func runFollow(o options) error {
	return followStream(o, os.Stdout, os.Stderr)
}

// buildFollowMiner constructs the streaming miner for the selected method.
func buildFollowMiner(o options, wcfg stream.Config) (stream.Miner, error) {
	switch o.method {
	case "l1":
		cfg := l1.DefaultConfig()
		cfg.MinLogs = o.minlogs
		cfg.Workers = o.workers
		cfg.Metrics = o.metrics
		return stream.NewL1(wcfg, cfg), nil
	case "l2":
		cfg := l2.DefaultConfig()
		cfg.Timeout = logmodel.SecondsToMillis(o.timeout)
		if o.timeout == 0 {
			cfg.Timeout = l2.NoTimeout
		}
		cfg.Workers = o.workers
		cfg.Metrics = o.metrics
		return stream.NewL2(wcfg, sessions.Config{Metrics: o.metrics}, cfg), nil
	case "l3":
		if o.dirPath == "" {
			return nil, fmt.Errorf("l3 requires -dir")
		}
		df, err := os.Open(o.dirPath)
		if err != nil {
			return nil, err
		}
		dir, err := directory.Read(df)
		df.Close()
		if err != nil {
			return nil, err
		}
		cfg := l3.DefaultConfig()
		cfg.Workers = o.workers
		cfg.Metrics = o.metrics
		if !o.nostops {
			cfg.Stops = hospital.CanonicalStopPatterns()
		}
		return stream.NewL3(wcfg, l3.NewMiner(dir, cfg)), nil
	default:
		return nil, fmt.Errorf("follow mode supports l1, l2 and l3, not %q", o.method)
	}
}

// deltaPrinter renders the per-bucket stderr delta line: the window extent,
// the model size, and the pairs (or app→service deps) that appeared and
// disappeared since the previous window.
type deltaPrinter struct {
	w         io.Writer
	deps      bool
	prevPairs core.PairSet
	prevDeps  core.AppServiceSet
}

func (d *deltaPrinter) print(r logmodel.TimeRange, snap core.ModelDocument) {
	stamp := func(m logmodel.Millis) string {
		return m.Time().Format("2006-01-02T15:04:05")
	}
	if d.deps {
		cur := snap.DepSet()
		gone, born := core.DiffDeps(d.prevDeps, cur)
		fmt.Fprintf(d.w, "window [%s .. %s): %d deps", stamp(r.Start), stamp(r.End), len(cur))
		for _, dep := range born {
			fmt.Fprintf(d.w, " +%s->%s", dep.App, dep.Group)
		}
		for _, dep := range gone {
			fmt.Fprintf(d.w, " -%s->%s", dep.App, dep.Group)
		}
		fmt.Fprintln(d.w)
		d.prevDeps = cur
		return
	}
	cur := snap.PairSet()
	gone, born := core.DiffModels(d.prevPairs, cur)
	fmt.Fprintf(d.w, "window [%s .. %s): %d pairs", stamp(r.Start), stamp(r.End), len(cur))
	for _, p := range born {
		fmt.Fprintf(d.w, " +%s--%s", p.A, p.B)
	}
	for _, p := range gone {
		fmt.Fprintf(d.w, " -%s--%s", p.A, p.B)
	}
	fmt.Fprintln(d.w)
	d.prevPairs = cur
}

// followSource is the composed hardened input stack.
type followSource struct {
	r      io.Reader              // retry (+ gzip) composition; read this
	tailer *stream.Tailer         // non-nil for a plain file: rotation-aware
	gz     *stream.TornGzipReader // non-nil for .gz input
	close  func()
}

// rotations reports transport rotations seen so far (0 for stdin/.gz).
func (s *followSource) rotations() int64 {
	if s.tailer == nil {
		return 0
	}
	return s.tailer.Rotations()
}

// followBackoff is the CLI retry schedule: 100ms per consecutive attempt,
// capped at 500ms. Tests never reach it (their transports either succeed or
// fail non-transiently); it only shapes *when* a live stream is re-read,
// never what.
func followBackoff(attempt int) {
	if attempt > 5 {
		attempt = 5
	}
	time.Sleep(time.Duration(attempt) * 100 * time.Millisecond)
}

// openFollowSource builds the hardened read stack for one input name:
// retries below the decompressor (gzip errors are sticky), torn-tail
// tolerance for .gz, rotation-aware tailing for plain files.
func openFollowSource(o options) (*followSource, error) {
	policy := stream.RetryPolicy{MaxRetries: 8, Backoff: followBackoff}
	name := o.files[0]
	if name == "-" {
		return &followSource{
			r:     stream.NewRetryReader(os.Stdin, policy, o.metrics),
			close: func() {},
		}, nil
	}
	if strings.HasSuffix(name, ".gz") {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		gz := stream.NewTornGzipReader(stream.NewRetryReader(f, policy, o.metrics), o.metrics)
		return &followSource{r: gz, gz: gz, close: func() { f.Close() }}, nil
	}
	tl, err := stream.NewTailer(name, stream.TailerConfig{Metrics: o.metrics})
	if err != nil {
		return nil, err
	}
	return &followSource{
		r:      stream.NewRetryReader(tl, policy, o.metrics),
		tailer: tl,
		close:  func() { tl.Close() },
	}, nil
}

// followStream is runFollow with pluggable output streams (testability: the
// golden-file tests drive it directly).
func followStream(o options, stdout, stderr io.Writer) error {
	if len(o.files) != 1 {
		return fmt.Errorf("follow mode tails exactly one log stream (a file or - for stdin)")
	}
	if o.bucketSec <= 0 || o.windowN <= 0 {
		return fmt.Errorf("follow mode requires -bucket > 0 and -window > 0")
	}
	wcfg := stream.Config{
		BucketWidth:   logmodel.SecondsToMillis(o.bucketSec),
		WindowBuckets: o.windowN,
		Workers:       o.workers,
		Metrics:       o.metrics,
		// The built-in follow miners copy what they retain and the
		// checkpoint serializes window buckets before they retire, so the
		// ingester may reuse retired bucket slices.
		RecycleBuckets: true,
	}
	miner, err := buildFollowMiner(o, wcfg)
	if err != nil {
		return err
	}
	// Feature tracking feeds two consumers: the drift detector (-drift) and
	// the store's per-key score column (-store). Either one turns it on.
	var fsrc stream.FeatureSource
	if fs, ok := miner.(stream.FeatureSource); ok && (o.drift || o.storePath != "") {
		fs.TrackDrift(true)
		fsrc = fs
	}
	if o.drift && fsrc == nil {
		return fmt.Errorf("-drift is not supported for method %q", o.method)
	}

	// Open the model store before the checkpoint is restored: a light
	// (window-in-store) checkpoint needs the store to hydrate its window.
	var store *modelstore.Store
	if o.storePath != "" {
		store, err = modelstore.Open(o.storePath, modelstore.Config{
			BucketWidth:   wcfg.BucketWidth,
			WindowBuckets: wcfg.WindowBuckets,
			Metrics:       o.metrics,
		})
		if err != nil {
			return err
		}
	}

	if o.listen != "" {
		stop, err := serveObs(o.listen, o.metrics)
		if err != nil {
			return err
		}
		defer stop()
	}

	// Load the resume checkpoint, if any. A missing file is a fresh start.
	var cp *stream.Checkpoint
	if o.resumePath != "" {
		if o.files[0] == "-" {
			return fmt.Errorf("-resume requires a file input: stdin cannot be repositioned across restarts")
		}
		cp, err = stream.ReadCheckpointFile(o.resumePath)
		if err != nil {
			return err
		}
		if cp != nil && cp.Rotations > 0 {
			return fmt.Errorf("checkpoint %s predates %d rotation(s); its offset no longer maps to one file — remove it to start fresh",
				o.resumePath, cp.Rotations)
		}
	}
	if cp != nil && cp.WindowInStore {
		// The window's entries live in the store's raw segments: read them
		// back locally instead of re-tailing the source stream.
		if store == nil {
			return fmt.Errorf("checkpoint %s stores its window in a model store; rerun with the original -store DIR", o.resumePath)
		}
		if err := store.Hydrate(cp); err != nil {
			return fmt.Errorf("resume: %w", err)
		}
	}
	if cp == nil && store != nil && !store.Empty() {
		// Bucket indexes in the store are anchored to the original run's
		// origin; appending from a fresh origin would corrupt the history.
		return fmt.Errorf("store %s already holds segments but no checkpoint was found; resume with -resume, or point -store at a fresh directory", o.storePath)
	}

	var in *stream.Ingester
	if cp != nil {
		in, err = cp.Restore(wcfg, miner)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
	} else {
		in = stream.NewIngester(wcfg, miner)
	}

	// The drift detector resumes from the checkpoint's state blob: the
	// restored window buckets are replayed into the miner only, never
	// re-observed, so a kill+resume neither repeats nor drops an alert.
	var det *drift.Detector
	if o.drift {
		dcfg := drift.Config{Metrics: o.metrics}
		if cp != nil && len(cp.Drift) > 0 {
			det, err = drift.Restore(dcfg, cp.Drift)
			if err != nil {
				return fmt.Errorf("resume: %w", err)
			}
		} else {
			det = drift.NewDetector(dcfg)
		}
	}

	var quarantine io.Writer
	if o.quarantinePath != "" {
		qf, err := os.OpenFile(o.quarantinePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer qf.Close()
		quarantine = qf
	}
	feeder := stream.NewFeeder(in, stream.FeederConfig{Quarantine: quarantine, Metrics: o.metrics})

	src, err := openFollowSource(o)
	if err != nil {
		return err
	}
	defer src.close()

	// Reposition the transport at the checkpoint offset: a seek for a plain
	// file, a decompressed-byte skip for .gz (the stream is re-read from the
	// start, but nothing is re-ingested).
	var base int64
	if cp != nil {
		base = cp.Offset
		if src.tailer != nil {
			if err := src.tailer.SeekTo(cp.Offset); err != nil {
				return fmt.Errorf("resume: %w", err)
			}
		} else if _, err := io.CopyN(io.Discard, src.r, cp.Offset); err != nil {
			return fmt.Errorf("resume: skipping %d bytes: %w", cp.Offset, err)
		}
	}

	delta := &deltaPrinter{w: stderr, deps: o.method == "l3"}
	var emitErr error
	in.OnAdvance = func(b stream.Bucket) {
		if emitErr != nil {
			return
		}
		// One trace tree per delivered bucket; the latest completed one is
		// what /trace serves.
		trace := o.metrics.StartTrace(fmt.Sprintf("bucket %d", b.Index))
		span := trace.Child("snapshot")
		snap := miner.Snapshot()
		span.End()
		// The document is rendered once: the same bytes go to stdout and —
		// verbatim — into the store, which is what makes the store's
		// round-trip byte-identical to the live stream by construction.
		span = trace.Child("emit")
		var doc bytes.Buffer
		err := core.WriteModel(&doc, snap)
		if err == nil {
			_, err = stdout.Write(doc.Bytes())
		}
		span.End()
		trace.End()
		if err != nil {
			emitErr = err
			return
		}
		var feats stream.DriftFeatures
		if fsrc != nil {
			feats = fsrc.DriftFeatures()
		}
		if store != nil {
			// Evidence is serialized here, while the bucket's entries are
			// still live: with RecycleBuckets the slices may be reused once
			// OnAdvance returns, and AppendEntry copies every byte out.
			rec := modelstore.Record{Bucket: b.Index, Range: b.Range, Model: doc.Bytes()}
			for _, e := range b.Entries {
				rec.Evidence = append(rec.Evidence, logmodel.AppendEntry(nil, e))
			}
			if len(feats.Scores) > 0 {
				keys := make([]string, 0, len(feats.Scores))
				for k := range feats.Scores {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					rec.Scores = append(rec.Scores, modelstore.Score{Key: k, Value: feats.Scores[k]})
				}
			}
			if err := store.Append(rec); err != nil {
				emitErr = err
				return
			}
		}
		delta.print(in.WindowRange(), snap)
		if det != nil {
			for _, c := range det.Observe(drift.Observation{
				Bucket: b.Index, At: b.Range.Start,
				Active: feats.Active, Scores: feats.Scores, Delays: feats.Delays,
			}) {
				if store != nil {
					// The confirming bucket's record was just appended, so the
					// locator names the store's live raw segment.
					ref, ok, err := store.Locate(c.At)
					if err != nil {
						emitErr = err
						return
					}
					if ok {
						c.Segment = ref.String()
					}
				}
				fmt.Fprintln(stderr, c)
			}
		}
		if o.resumePath != "" {
			// Consumed() already covers the line that closed this bucket (it
			// sits in the checkpoint's pending set), so base+Consumed is an
			// exact resume point: no replay, no gap. With a store, the window
			// is not serialized into the checkpoint — the store's raw
			// segments already hold it (CheckpointLight).
			var next *stream.Checkpoint
			if store != nil {
				next = in.CheckpointLight(base+feeder.Consumed(), src.rotations())
			} else {
				next = in.Checkpoint(base+feeder.Consumed(), src.rotations())
			}
			if det != nil {
				blob, err := det.State()
				if err != nil {
					emitErr = fmt.Errorf("serializing drift state: %w", err)
					return
				}
				next.Drift = blob
			}
			if err := stream.WriteCheckpointFile(o.resumePath, next); err != nil {
				emitErr = fmt.Errorf("writing checkpoint: %w", err)
			}
		}
	}

	if err := feeder.Run(src.r); err != nil {
		return err
	}
	in.Flush()
	if emitErr != nil {
		return emitErr
	}

	s, fs := in.Stats(), feeder.Stats()
	fmt.Fprintf(stderr, "follow done: %d entries in %d buckets (%d late, %d corrupt, %d malformed, %d oversized, %d quarantined; %d rotations%s)\n",
		s.Accepted, s.Buckets, s.Late, s.Corrupt, fs.Malformed, fs.Oversized, fs.Quarantined,
		src.rotations(), tornSuffix(src.gz))
	printStats(o)
	return nil
}

// tornSuffix annotates the summary when a .gz stream ended in a tear.
func tornSuffix(gz *stream.TornGzipReader) string {
	if gz != nil && gz.Torn() {
		return ", torn gzip tail"
	}
	return ""
}
