package main

// Follow mode: instead of mining a finished corpus once, tail a log stream
// and re-emit the dependency model of a sliding time window as it moves.
// Pair with `tail -f | depmine -follow -` for live operation.
//
// The machinery lives in internal/follow (the same engine cmd/depmined
// hosts once per tenant stream); this file only adapts the parsed flags
// to a follow.Config, installs the CLI's retry backoff, and prints the
// end-of-run summary the engine reports back.

import (
	"fmt"
	"io"
	"os"
	"time"

	"logscape/internal/follow"
)

// runFollow tails one wire-format log stream ("-" = stdin, ".gz"
// transparently decompressed) and, on every closed bucket, writes the
// window's model document to stdout and a delta summary against the
// previous window to stderr. With -listen, the run's metrics, the latest
// per-bucket trace and net/http/pprof are served over HTTP while it tails.
func runFollow(o options) error {
	return followStream(o, os.Stdout, os.Stderr)
}

// followBackoff is the CLI retry schedule: 100ms per consecutive attempt,
// capped at 500ms. Tests never reach it (their transports either succeed or
// fail non-transiently); it only shapes *when* a live stream is re-read,
// never what.
func followBackoff(attempt int) {
	if attempt > 5 {
		attempt = 5
	}
	time.Sleep(time.Duration(attempt) * 100 * time.Millisecond)
}

// followConfig adapts the parsed flags to the engine's configuration.
func followConfig(o options) (follow.Config, error) {
	if len(o.files) != 1 {
		return follow.Config{}, fmt.Errorf("follow mode tails exactly one log stream (a file or - for stdin)")
	}
	return follow.Config{
		Method:         o.method,
		Source:         o.files[0],
		DirPath:        o.dirPath,
		MinLogs:        o.minlogs,
		TimeoutSec:     o.timeout,
		NoStops:        o.nostops,
		Workers:        o.workers,
		BucketSec:      o.bucketSec,
		WindowBuckets:  o.windowN,
		ResumePath:     o.resumePath,
		QuarantinePath: o.quarantinePath,
		StorePath:      o.storePath,
		Drift:          o.drift,
		Metrics:        o.metrics,
		Backoff:        followBackoff,
	}, nil
}

// followStream is runFollow with pluggable output streams (testability:
// the golden-file tests drive it directly).
func followStream(o options, stdout, stderr io.Writer) error {
	cfg, err := followConfig(o)
	if err != nil {
		return err
	}
	if o.listen != "" {
		stop, err := serveObs(o.listen, o.metrics)
		if err != nil {
			return err
		}
		defer stop()
	}
	res, err := follow.Run(cfg, stdout, stderr)
	if err != nil {
		return err
	}
	s, fs := res.Ingest, res.Feed
	torn := ""
	if res.TornGzip {
		torn = ", torn gzip tail"
	}
	fmt.Fprintf(stderr, "follow done: %d entries in %d buckets (%d late, %d corrupt, %d malformed, %d oversized, %d quarantined; %d rotations%s)\n",
		s.Accepted, s.Buckets, s.Late, s.Corrupt, fs.Malformed, fs.Oversized, fs.Quarantined,
		res.Rotations, torn)
	printStats(o)
	return nil
}
