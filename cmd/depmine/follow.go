package main

// Follow mode: instead of mining a finished corpus once, tail a log stream
// and re-emit the dependency model of a sliding time window as it moves.
// Pair with `tail -f | depmine -follow -` for live operation; the mode
// itself never consults the wallclock — time advances only as entry
// timestamps do, so replaying a historical file reproduces the exact same
// sequence of models (and the batch-equivalence contract of
// internal/stream guarantees each of them matches a one-shot batch run
// over the same window).

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"

	"logscape/internal/core"
	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/core/l3"
	"logscape/internal/directory"
	"logscape/internal/hospital"
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
	"logscape/internal/stream"
)

// runFollow tails one wire-format log stream ("-" = stdin, ".gz"
// transparently decompressed) and, on every closed bucket, writes the
// window's model document to stdout and a delta summary against the
// previous window to stderr. With -listen, the run's metrics, the latest
// per-bucket trace and net/http/pprof are served over HTTP while it tails.
func runFollow(o options) error {
	if len(o.files) != 1 {
		return fmt.Errorf("follow mode tails exactly one log stream (a file or - for stdin)")
	}
	if o.bucketSec <= 0 || o.windowN <= 0 {
		return fmt.Errorf("follow mode requires -bucket > 0 and -window > 0")
	}
	wcfg := stream.Config{
		BucketWidth:   logmodel.SecondsToMillis(o.bucketSec),
		WindowBuckets: o.windowN,
		Workers:       o.workers,
		Metrics:       o.metrics,
	}

	var miner stream.Miner
	switch o.method {
	case "l1":
		cfg := l1.DefaultConfig()
		cfg.MinLogs = o.minlogs
		cfg.Workers = o.workers
		cfg.Metrics = o.metrics
		miner = stream.NewL1(wcfg, cfg)
	case "l2":
		cfg := l2.DefaultConfig()
		cfg.Timeout = logmodel.SecondsToMillis(o.timeout)
		if o.timeout == 0 {
			cfg.Timeout = l2.NoTimeout
		}
		cfg.Workers = o.workers
		cfg.Metrics = o.metrics
		miner = stream.NewL2(wcfg, sessions.Config{Metrics: o.metrics}, cfg)
	case "l3":
		if o.dirPath == "" {
			return fmt.Errorf("l3 requires -dir")
		}
		df, err := os.Open(o.dirPath)
		if err != nil {
			return err
		}
		dir, err := directory.Read(df)
		df.Close()
		if err != nil {
			return err
		}
		cfg := l3.DefaultConfig()
		cfg.Workers = o.workers
		cfg.Metrics = o.metrics
		if !o.nostops {
			cfg.Stops = hospital.CanonicalStopPatterns()
		}
		miner = stream.NewL3(wcfg, l3.NewMiner(dir, cfg))
	default:
		return fmt.Errorf("follow mode supports l1, l2 and l3, not %q", o.method)
	}

	if o.listen != "" {
		stop, err := serveObs(o.listen, o.metrics)
		if err != nil {
			return err
		}
		defer stop()
	}

	in := stream.NewIngester(wcfg, miner)
	var prevPairs core.PairSet
	var prevDeps core.AppServiceSet
	var emitErr error
	in.OnAdvance = func(b stream.Bucket) {
		if emitErr != nil {
			return
		}
		// One trace tree per delivered bucket; the latest completed one is
		// what /trace serves.
		trace := o.metrics.StartTrace(fmt.Sprintf("bucket %d", b.Index))
		span := trace.Child("snapshot")
		snap := miner.Snapshot()
		span.End()
		span = trace.Child("emit")
		err := core.WriteModel(os.Stdout, snap)
		span.End()
		trace.End()
		if err != nil {
			emitErr = err
			return
		}
		r := in.WindowRange()
		if o.method == "l3" {
			cur := snap.DepSet()
			gone, born := core.DiffDeps(prevDeps, cur)
			fmt.Fprintf(os.Stderr, "window [%s .. %s): %d deps",
				r.Start.Time().Format("2006-01-02T15:04:05"),
				r.End.Time().Format("2006-01-02T15:04:05"), len(cur))
			for _, d := range born {
				fmt.Fprintf(os.Stderr, " +%s->%s", d.App, d.Group)
			}
			for _, d := range gone {
				fmt.Fprintf(os.Stderr, " -%s->%s", d.App, d.Group)
			}
			fmt.Fprintln(os.Stderr)
			prevDeps = cur
		} else {
			cur := snap.PairSet()
			gone, born := core.DiffModels(prevPairs, cur)
			fmt.Fprintf(os.Stderr, "window [%s .. %s): %d pairs",
				r.Start.Time().Format("2006-01-02T15:04:05"),
				r.End.Time().Format("2006-01-02T15:04:05"), len(cur))
			for _, p := range born {
				fmt.Fprintf(os.Stderr, " +%s--%s", p.A, p.B)
			}
			for _, p := range gone {
				fmt.Fprintf(os.Stderr, " -%s--%s", p.A, p.B)
			}
			fmt.Fprintln(os.Stderr)
			prevPairs = cur
		}
	}

	src, closeSrc, err := openStream(o.files[0])
	if err != nil {
		return err
	}
	defer closeSrc()

	rd := logmodel.NewReader(src)
	malformed := 0
	for {
		e, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A live stream may carry the odd truncated line; skip and
			// keep following rather than dying mid-tail.
			malformed++
			continue
		}
		in.Add(e)
		if emitErr != nil {
			return emitErr
		}
	}
	in.Flush()
	if emitErr != nil {
		return emitErr
	}
	s := in.Stats()
	fmt.Fprintf(os.Stderr, "follow done: %d entries in %d buckets (%d late, %d corrupt, %d malformed lines)\n",
		s.Accepted, s.Buckets, s.Late, s.Corrupt, malformed)
	printStats(o)
	return nil
}

// openStream opens the follow input: "-" is stdin, ".gz" is decompressed.
func openStream(name string) (io.Reader, func(), error) {
	if name == "-" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, nil, err
	}
	if len(name) > 3 && name[len(name)-3:] == ".gz" {
		zr, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return zr, func() { zr.Close(); f.Close() }, nil
	}
	return f, func() { f.Close() }, nil
}
