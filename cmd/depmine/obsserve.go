package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"logscape/internal/obs"
)

// writeJSON writes v as indented JSON with a trailing newline.
func writeJSON(w io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// serveObs starts the follow-mode observability endpoint on addr and
// returns a function that shuts it down:
//
//	/metrics       the full metrics document (sorted JSON)
//	/trace         the latest completed per-bucket trace tree (JSON)
//	/debug/pprof/  the standard net/http/pprof profiles
//
// The bound address is printed to stderr (addr may be ":0" for an
// ephemeral port). The handlers only read the registry — serving can never
// perturb the mined models.
func serveObs(addr string, reg *obs.Registry) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := reg.Snapshot()
		if snap.Trace == nil {
			fmt.Fprintln(w, "null")
			return
		}
		if err := writeJSON(w, snap.Trace); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux}
	// The listener goroutine lives outside internal/parallel by necessity:
	// it is I/O concurrency at the process edge, not mining work, and it
	// never touches miner state — the handlers above only read the registry.
	go srv.Serve(ln) //lint:allow bareconc HTTP serving is process-edge I/O concurrency, not mining work; handlers only read the metrics registry
	fmt.Fprintf(os.Stderr, "observability endpoint on http://%s (/metrics, /trace, /debug/pprof/)\n", ln.Addr())
	return func() { srv.Close() }, nil
}
