package main

// Integration tests for `-follow -store` and the time-travel subcommands.
// The headline contract pinned here: the segment store's round trip is
// byte-identical to the live model stream — at Workers 1 and 8, before
// and after compaction, and across a kill + compact + resume restart —
// and a store-backed resume replays the window from local segments
// without re-reading the source logs.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"logscape/internal/logmodel"
	"logscape/internal/modelstore"
	"logscape/internal/stream"
)

// bucketCorpus emits a stream of n buckets of the given width: sources
// AppA and AppB tick together in every bucket, AppC joins for alternating
// stretches of eight buckets (so the mined pair set, the diffs and the
// trajectories all move over time). A final out-of-window line closes the
// last bucket.
func bucketCorpus(n int, width time.Duration) []string {
	var lines []string
	for b := 0; b < n; b++ {
		srcs := []string{"AppA", "AppB"}
		if (b/8)%2 == 1 {
			srcs = append(srcs, "AppC")
		}
		for i := 0; i < 6; i++ {
			at := ts(time.Duration(b)*width + time.Duration(i*37)*time.Millisecond)
			for _, s := range srcs {
				lines = append(lines, line(at, s, fmt.Sprintf("tick %d", i)))
			}
		}
	}
	lines = append(lines, line(ts(time.Duration(n)*width), "AppA", "done"))
	return lines
}

// storeOpts is followOpts plus a fresh store directory: 15-minute buckets
// and a 4-bucket window, so the default hour/day/week ladder packs four
// records per raw granule and a two-day corpus crosses the raw→hour→day
// compaction thresholds inside the test.
func storeOpts(t *testing.T, file string) options {
	t.Helper()
	o := followOpts(file)
	o.bucketSec = 900
	o.windowN = 4
	o.storePath = filepath.Join(t.TempDir(), "store")
	return o
}

// splitDocs cuts a follow run's stdout into one byte slice per emitted
// model document (each document is indented JSON whose closing brace is
// the only text at column zero).
func splitDocs(t *testing.T, out []byte) [][]byte {
	t.Helper()
	var docs [][]byte
	start := 0
	for _, lineEnd := range docBoundaries(out) {
		docs = append(docs, out[start:lineEnd])
		start = lineEnd
	}
	if start != len(out) {
		t.Fatalf("%d trailing stdout bytes after the last document", len(out)-start)
	}
	return docs
}

// docBoundaries returns the offsets just past each "}\n" document close.
func docBoundaries(out []byte) []int {
	var ends []int
	for i := 0; i+1 < len(out); i++ {
		atLineStart := i == 0 || out[i-1] == '\n'
		if atLineStart && out[i] == '}' && out[i+1] == '\n' {
			ends = append(ends, i+2)
		}
	}
	return ends
}

// TestFollowStoreByteIdentity is the headline round-trip contract: every
// record the store retains — raw tier and compacted tiers alike — holds
// the exact bytes the follower emitted live for that bucket, at Workers 1
// and at Workers 8 (where the two runs' stdout and store directories must
// also be identical to each other).
func TestFollowStoreByteIdentity(t *testing.T) {
	lines := writeLog(t, bucketCorpus(200, 15*time.Minute)) // 50 hours of stream
	var streams [2][]byte
	var stores [2]string
	for i, workers := range []int{1, 8} {
		o := storeOpts(t, lines)
		o.workers = workers
		var stdout, stderr bytes.Buffer
		if err := followStream(o, &stdout, &stderr); err != nil {
			t.Fatal(err)
		}
		streams[i] = stdout.Bytes()
		stores[i] = o.storePath

		// 200 full buckets plus the final flushed partial one.
		docs := splitDocs(t, stdout.Bytes())
		if len(docs) != 201 {
			t.Fatalf("workers=%d: %d documents emitted, want 201", workers, len(docs))
		}
		st, err := modelstore.OpenRead(o.storePath)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := st.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 || len(recs) >= 201 {
			t.Fatalf("workers=%d: %d records retained, want a compacted subset", workers, len(recs))
		}
		for _, r := range recs {
			// The corpus has no empty buckets, so bucket index == emission
			// ordinal.
			if !bytes.Equal(r.Model, docs[r.Bucket]) {
				t.Fatalf("workers=%d: bucket %d: stored model differs from the live document", workers, r.Bucket)
			}
			got, ok, err := st.ModelAt(r.Range.End)
			if err != nil || !ok {
				t.Fatalf("workers=%d: ModelAt(%d) = (%v, %v)", workers, r.Range.End, ok, err)
			}
			if !bytes.Equal(got.Model, docs[r.Bucket]) {
				t.Fatalf("workers=%d: query at bucket %d's close returns different bytes", workers, r.Bucket)
			}
		}
	}
	if !bytes.Equal(streams[0], streams[1]) {
		t.Error("stdout differs between Workers 1 and 8")
	}
	d0, d1 := storeDirBytes(t, stores[0]), storeDirBytes(t, stores[1])
	if len(d0) != len(d1) {
		t.Fatalf("store file sets differ between worker counts: %d vs %d files", len(d0), len(d1))
	}
	for name, data := range d0 {
		if !bytes.Equal(d1[name], data) {
			t.Errorf("store file %s differs between Workers 1 and 8", name)
		}
	}
}

// storeDirBytes snapshots a store directory's segment files by name.
func storeDirBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestFollowStoreKillCompactResume kills the follower mid-stream (after
// compaction has already folded early granules) and resumes from the
// light checkpoint: the concatenated stdout and the final store directory
// must be byte-identical to an uninterrupted run's.
func TestFollowStoreKillCompactResume(t *testing.T) {
	lines := bucketCorpus(200, 15*time.Minute)
	full := writeLog(t, lines)

	oref := storeOpts(t, full)
	var refOut, refErr bytes.Buffer
	if err := followStream(oref, &refOut, &refErr); err != nil {
		t.Fatal(err)
	}

	// Cut at the bucket-120 boundary (30 hours in: the day-0 fold has
	// already run by then).
	cut := 0
	for i, l := range lines {
		e, err := logmodel.ParseEntry(l)
		if err != nil {
			t.Fatal(err)
		}
		if e.Time < ts(120*15*time.Minute) {
			cut = i + 1
		}
	}
	prefix := writeLog(t, lines[:cut])
	ckpt := filepath.Join(t.TempDir(), "follow.ckpt")

	o1 := storeOpts(t, prefix)
	o1.resumePath = ckpt
	var out1, err1 bytes.Buffer
	if err := followStream(o1, &out1, &err1); err != nil {
		t.Fatal(err)
	}

	// The light checkpoint must not carry the window: that is the claim
	// that resume's window comes from segments, not from the checkpoint.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"window_in_store":true`)) || bytes.Contains(raw, []byte(`"buckets"`)) {
		t.Fatalf("checkpoint is not a light checkpoint: %s", raw)
	}

	o2 := storeOpts(t, full)
	o2.storePath = o1.storePath // same store lineage
	o2.resumePath = ckpt
	var out2, err2 bytes.Buffer
	if err := followStream(o2, &out2, &err2); err != nil {
		t.Fatal(err)
	}

	got := append(append([]byte{}, out1.Bytes()...), out2.Bytes()...)
	if !bytes.Equal(got, refOut.Bytes()) {
		t.Error("kill+resume stdout differs from the uninterrupted run")
	}
	dref, dgot := storeDirBytes(t, oref.storePath), storeDirBytes(t, o2.storePath)
	if len(dref) != len(dgot) {
		t.Fatalf("store file sets differ: %d (reference) vs %d (resumed)", len(dref), len(dgot))
	}
	for name, data := range dref {
		if !bytes.Equal(dgot[name], data) {
			t.Errorf("store file %s differs after kill+compact+resume", name)
		}
	}
}

// TestFollowStoreResumeDoesNotRereadSource replaces everything the first
// run consumed with garbage of the same length before resuming: if the
// resumed process re-read any consumed byte — for the window or otherwise
// — it would ingest garbage and diverge. It must instead seek past the
// wreckage and continue byte-identically, with zero malformed lines.
func TestFollowStoreResumeDoesNotRereadSource(t *testing.T) {
	lines := bucketCorpus(40, time.Second)
	fullContent := []byte(strings.Join(lines, "\n") + "\n")
	full := writeLog(t, lines)

	o := storeOpts(t, full)
	o.bucketSec = 1
	var refOut, refErr bytes.Buffer
	if err := followStream(o, &refOut, &refErr); err != nil {
		t.Fatal(err)
	}

	cut := 0
	for i, l := range lines {
		e, err := logmodel.ParseEntry(l)
		if err != nil {
			t.Fatal(err)
		}
		if e.Time < ts(20*time.Second) {
			cut = i + 1
		}
	}
	prefix := writeLog(t, lines[:cut])
	ckpt := filepath.Join(t.TempDir(), "follow.ckpt")
	o1 := storeOpts(t, prefix)
	o1.bucketSec = 1
	o1.resumePath = ckpt
	var out1, err1 bytes.Buffer
	if err := followStream(o1, &out1, &err1); err != nil {
		t.Fatal(err)
	}

	cp, err := stream.ReadCheckpointFile(ckpt)
	if err != nil || cp == nil {
		t.Fatalf("no checkpoint after the first run: %v", err)
	}
	// The tail that refuses reads: every consumed byte becomes 'x'.
	mangled := append([]byte{}, fullContent...)
	for i := int64(0); i < cp.Offset; i++ {
		mangled[i] = 'x'
	}
	mangledPath := filepath.Join(t.TempDir(), "mangled.log")
	if err := os.WriteFile(mangledPath, mangled, 0o644); err != nil {
		t.Fatal(err)
	}

	o2 := storeOpts(t, mangledPath)
	o2.bucketSec = 1
	o2.storePath = o1.storePath
	o2.resumePath = ckpt
	var out2, err2 bytes.Buffer
	if err := followStream(o2, &out2, &err2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(err2.String(), " 0 malformed,") {
		t.Errorf("resumed run read garbage:\n%s", err2.String())
	}
	got := append(append([]byte{}, out1.Bytes()...), out2.Bytes()...)
	if !bytes.Equal(got, refOut.Bytes()) {
		t.Error("resumed-run stdout differs from the uninterrupted run")
	}
}

func TestFollowStoreRefusals(t *testing.T) {
	lines := writeLog(t, bucketCorpus(6, time.Second))

	// A second fresh run over a populated store must refuse: its origin
	// would not match the stored bucket indexes.
	o := storeOpts(t, lines)
	o.bucketSec = 1
	var stdout, stderr bytes.Buffer
	if err := followStream(o, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	o2 := storeOpts(t, lines)
	o2.bucketSec = 1
	o2.storePath = o.storePath
	if err := followStream(o2, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "already holds segments") {
		t.Errorf("fresh run over a populated store: err = %v", err)
	}

	// A light checkpoint without its store must refuse.
	lines2 := writeLog(t, bucketCorpus(6, time.Second))
	ckpt := filepath.Join(t.TempDir(), "follow.ckpt")
	o3 := storeOpts(t, lines2)
	o3.bucketSec = 1
	o3.resumePath = ckpt
	if err := followStream(o3, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	o4 := followOpts(lines2)
	o4.resumePath = ckpt
	if err := followStream(o4, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "rerun with the original -store") {
		t.Errorf("light checkpoint without -store: err = %v", err)
	}
}

// TestStoreSubcommands drives query, diff and trajectory over a store a
// follow run just wrote.
func TestStoreSubcommands(t *testing.T) {
	lines := writeLog(t, bucketCorpus(20, time.Second))
	o := storeOpts(t, lines)
	o.bucketSec = 1
	var stdout, stderr bytes.Buffer
	if err := followStream(o, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	docs := splitDocs(t, stdout.Bytes())

	// query -at the close of bucket 9 (AppC active: buckets 8..15) must
	// print that bucket's document byte-for-byte.
	at := ts(10 * time.Second)
	var q bytes.Buffer
	err := runStoreCommand("query", []string{
		"-store", o.storePath, "-at", fmt.Sprintf("%d", int64(at))}, &q)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.Bytes(), docs[9]) {
		t.Errorf("query output differs from the live document:\n got %s\nwant %s", q.Bytes(), docs[9])
	}

	// The same instant in the zone-less UTC form must parse identically.
	q.Reset()
	err = runStoreCommand("query", []string{
		"-store", o.storePath, "-at", at.Time().Format("2006-01-02T15:04:05")}, &q)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.Bytes(), docs[9]) {
		t.Error("query with a formatted timestamp returned different bytes")
	}

	// diff across AppC's arrival must show its pairs appearing.
	var d bytes.Buffer
	err = runStoreCommand("diff", []string{
		"-store", o.storePath,
		"-from", fmt.Sprintf("%d", int64(ts(4*time.Second))),
		"-to", fmt.Sprintf("%d", int64(ts(12*time.Second)))}, &d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.String(), "+ AppA--AppC") {
		t.Errorf("diff output lacks AppC's arrival:\n%s", d.String())
	}

	// trajectory of AppA--AppC flips absent → present.
	var tr bytes.Buffer
	err = runStoreCommand("trajectory", []string{
		"-store", o.storePath, "-key", "AppA--AppC"}, &tr)
	if err != nil {
		t.Fatal(err)
	}
	out := tr.String()
	if !strings.Contains(out, "\tabsent\t") || !strings.Contains(out, "\tpresent\t") {
		t.Errorf("trajectory lacks the absent→present transition:\n%s", out)
	}

	// Unknown flags and missing arguments fail loudly.
	if err := runStoreCommand("query", []string{"-store", o.storePath}, &q); err == nil {
		t.Error("query without -at accepted")
	}
	if err := runStoreCommand("diff", []string{"-store", o.storePath, "-from", "nonsense", "-to", "0"}, &d); err == nil {
		t.Error("unparseable -from accepted")
	}
	if err := runStoreCommand("trajectory", []string{}, &tr); err == nil {
		t.Error("trajectory without -store accepted")
	}
}

// TestFollowStoreDriftSegmentAnnotation: with both -drift and -store, the
// DRIFT lines carry a segment=… locator pointing at a raw segment record;
// without a store the lines keep their historical form (pinned by the
// follow_drift golden elsewhere).
func TestFollowStoreDriftSegmentAnnotation(t *testing.T) {
	o := followOpts(writeLog(t, driftCorpus()))
	o.method = "l3"
	o.dirPath = writeDirXML(t)
	o.drift = true
	o.storePath = filepath.Join(t.TempDir(), "store")
	var stdout, stderr bytes.Buffer
	if err := followStream(o, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	alerts := driftLines(stderr.String())
	if len(alerts) == 0 {
		t.Fatal("no DRIFT lines")
	}
	for _, a := range alerts {
		if !strings.Contains(a, " segment=raw-") || !strings.Contains(a, ".seg#") {
			t.Errorf("alert lacks a segment locator: %s", a)
		}
	}
}
