// Command depmine mines dependency models from log files with the paper's
// three techniques (and the Agrawal et al. baseline), optionally scoring
// the result against a reference model.
//
// Usage:
//
//	depmine -method l1|l2|l3|baseline [flags] LOGFILE...
//
// Common flags:
//
//	-dir FILE       service-directory XML (required for l3)
//	-truth FILE     reference model to score against (tab-separated pairs)
//	-dot FILE       write the mined model as a Graphviz dot graph
//
// Method-specific flags:
//
//	-timeout SEC    L2 bigram timeout (0 = infinity; default 1)
//	-minlogs N      L1 per-slot minimum log count (default 10)
//	-nostops        L3: disable the canonical stop patterns
//	-direction      L2: print the §5 direction heuristic for mined pairs
//	-workers N      mining parallelism for every method (0 = all cores,
//	                1 = sequential); results are identical for any N
//
// Observability:
//
//	-stats          print the run's metrics document (JSON) to stderr
//	-listen ADDR    follow mode: serve /metrics, /trace and /debug/pprof/
//	                on ADDR (e.g. :8080, or :0 for an ephemeral port)
//
// Follow mode (streaming):
//
//	-follow         tail one log stream (a file or - for stdin) and emit the
//	                sliding-window model on every closed bucket: a model
//	                document to stdout, a delta summary to stderr
//	-bucket SEC     bucket width in seconds (default 3600)
//	-window N       window size in buckets (default 24)
//	-resume FILE    checkpoint file: written atomically on every closed
//	                bucket, loaded on start to resume a killed follow run
//	                without replaying the stream or double-ingesting a line
//	                (refused after a file rotation, and for stdin input)
//	-quarantine FILE  append every rejected line, prefixed with its fault
//	                class (malformed, oversized, late, corrupt)
//	-drift          run the drift detector over the delivered buckets and
//	                print one DRIFT line per confirmed change point to
//	                stderr (dependency births and deaths, association-score
//	                shifts, citation-delay shifts); detector state rides in
//	                the -resume checkpoint, so a resumed run neither drops
//	                nor repeats alerts
//	-store DIR      persist every closed bucket's model + evidence to an
//	                on-disk segment store (compacted hour→day→week); with
//	                -resume, restart replays the window from local segments
//	                instead of re-reading the source logs, and DRIFT lines
//	                carry a segment=… locator
//
// Time-travel subcommands (query a store written by -follow -store):
//
//	depmine query -store DIR -at TIME          print the model document
//	                                           retained at TIME, exactly as
//	                                           it was emitted live
//	depmine diff -store DIR -from T1 -to T2    print the edge delta between
//	                                           two instants
//	depmine trajectory -store DIR -key KEY     print one dependency key's
//	                                           presence/score history
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"logscape/internal/baseline"
	"logscape/internal/core"
	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/core/l3"
	"logscape/internal/depgraph"
	"logscape/internal/directory"
	"logscape/internal/hospital"
	"logscape/internal/logmodel"
	"logscape/internal/obs"
	"logscape/internal/sessions"
)

// options carries every parsed flag plus the run's metrics registry (nil
// when observability is off).
type options struct {
	method         string
	dirPath        string
	truthPath      string
	dotPath        string
	jsonPath       string
	impact         string
	timeout        float64
	minlogs        int
	workers        int
	nostops        bool
	direction      bool
	stats          bool
	listen         string
	bucketSec      float64
	windowN        int
	resumePath     string
	quarantinePath string
	drift          bool
	storePath      string
	files          []string
	metrics        *obs.Registry
}

func main() {
	if len(os.Args) > 1 && storeCommands[os.Args[1]] {
		if err := runStoreCommand(os.Args[1], os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "depmine:", err)
			os.Exit(1)
		}
		return
	}
	var o options
	flag.StringVar(&o.method, "method", "l3", "mining technique: l1, l2, l3 or baseline")
	flag.StringVar(&o.dirPath, "dir", "", "service-directory XML (required for l3)")
	flag.StringVar(&o.truthPath, "truth", "", "reference model file to score against")
	flag.StringVar(&o.dotPath, "dot", "", "write the mined model as a Graphviz dot file")
	flag.StringVar(&o.jsonPath, "json", "", "write the mined model as a JSON model document")
	flag.StringVar(&o.impact, "impact", "", "print impact and root-cause analysis for a component")
	flag.Float64Var(&o.timeout, "timeout", 1, "L2 bigram timeout in seconds (0 = infinity)")
	flag.IntVar(&o.minlogs, "minlogs", 10, "L1 per-slot minimum log count")
	flag.BoolVar(&o.nostops, "nostops", false, "L3: disable the canonical stop patterns")
	flag.BoolVar(&o.direction, "direction", false, "L2: print direction hints for mined pairs")
	flag.IntVar(&o.workers, "workers", 0, "mining parallelism: 0 = all cores, 1 = sequential (results are identical for any value)")
	flag.BoolVar(&o.stats, "stats", false, "print the run's metrics document (JSON) to stderr")
	flag.StringVar(&o.listen, "listen", "", "follow mode: serve /metrics, /trace and /debug/pprof/ on this address")
	follow := flag.Bool("follow", false, "streaming mode: tail one log stream and emit the sliding-window model per bucket")
	flag.Float64Var(&o.bucketSec, "bucket", 3600, "follow mode: bucket width in seconds")
	flag.IntVar(&o.windowN, "window", 24, "follow mode: window size in buckets")
	flag.StringVar(&o.resumePath, "resume", "", "follow mode: checkpoint file — written per closed bucket, loaded on start to resume after a kill")
	flag.BoolVar(&o.drift, "drift", false, "follow mode: detect model drift (births, deaths, score and delay shifts) and print DRIFT lines to stderr")
	flag.StringVar(&o.quarantinePath, "quarantine", "", "follow mode: append rejected lines (malformed/oversized/late/corrupt) to this file")
	flag.StringVar(&o.storePath, "store", "", "follow mode: persist per-bucket models and evidence to this segment-store directory")
	flag.Parse()
	o.files = flag.Args()
	if len(o.files) == 0 {
		fmt.Fprintln(os.Stderr, "depmine: at least one log file is required")
		flag.Usage()
		os.Exit(2)
	}
	if o.stats || o.listen != "" {
		// The one place the wall clock enters the metrics layer: the CLI
		// edge injects obs.SystemClock; mining code only sees the registry.
		o.metrics = obs.NewWithClock(obs.SystemClock)
	}
	var err error
	if *follow {
		err = runFollow(o)
	} else {
		err = run(o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "depmine:", err)
		os.Exit(1)
	}
}

// printStats writes the metrics document to stderr when -stats is set.
func printStats(o options) {
	if !o.stats || o.metrics == nil {
		return
	}
	if err := o.metrics.WriteJSON(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "depmine: writing stats:", err)
	}
}

func run(o options) error {
	trace := o.metrics.StartTrace("depmine")
	defer trace.End()

	load := trace.Child("load")
	store, err := loadLogs(o.files)
	load.End()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %d log entries from %d file(s), %d sources\n",
		store.Len(), len(o.files), len(store.Sources()))
	span := store.Span()

	mine := trace.Child("mine " + o.method)
	var pairs core.PairSet
	var deps core.AppServiceSet
	switch o.method {
	case "l1":
		res := l1.Mine(store, span, nil, l1.Config{MinLogs: o.minlogs, Workers: o.workers, Metrics: o.metrics})
		pairs = res.DependentPairs()
	case "l2":
		ss, stats := sessions.Build(store, sessions.Config{Metrics: o.metrics})
		fmt.Fprintf(os.Stderr, "built %d sessions (%.1f%% of logs assigned)\n",
			stats.Sessions, 100*stats.AssignedShare())
		to := logmodel.SecondsToMillis(o.timeout)
		if o.timeout == 0 {
			to = l2.NoTimeout
		}
		res := l2.Mine(ss, l2.Config{Timeout: to, Workers: o.workers, Metrics: o.metrics})
		pairs = res.DependentPairs()
		if o.direction {
			hints := l2.DirectionHints(ss, pairs, to)
			for _, p := range pairs.SortedPairs() {
				h, ok := hints[p]
				if !ok {
					continue
				}
				caller := h.Caller()
				if caller == "" {
					caller = "?"
				}
				fmt.Printf("# direction %s: caller likely %s (%d vs %d runs)\n",
					p, caller, h.AFirst, h.BFirst)
			}
		}
	case "l3":
		if o.dirPath == "" {
			return fmt.Errorf("l3 requires -dir")
		}
		df, err := os.Open(o.dirPath)
		if err != nil {
			return err
		}
		dir, err := directory.Read(df)
		df.Close()
		if err != nil {
			return err
		}
		cfg := l3.DefaultConfig()
		cfg.Workers = o.workers
		cfg.Metrics = o.metrics
		if !o.nostops {
			cfg.Stops = hospital.CanonicalStopPatterns()
		}
		deps = l3.NewMiner(dir, cfg).Mine(store, logmodel.TimeRange{}).Dependencies()
	case "baseline":
		bcfg := baseline.DefaultConfig()
		bcfg.Workers = o.workers
		bcfg.Metrics = o.metrics
		res := baseline.Mine(store, span, nil, bcfg)
		pairs = res.DependentPairs()
	default:
		return fmt.Errorf("unknown method %q", o.method)
	}
	mine.End()

	emit := trace.Child("emit")
	// Print the model.
	if deps != nil {
		for _, d := range deps.SortedPairs() {
			fmt.Printf("%s\t%s\n", d.App, d.Group)
		}
	} else {
		for _, p := range pairs.SortedPairs() {
			fmt.Printf("%s\t%s\n", p.A, p.B)
		}
	}

	if o.dotPath != "" {
		if err := writeDot(o.dotPath, pairs, deps); err != nil {
			return err
		}
	}
	if o.jsonPath != "" {
		f, err := os.Create(o.jsonPath)
		if err != nil {
			return err
		}
		var doc core.ModelDocument
		params := map[string]string{"files": strings.Join(o.files, ",")}
		if deps != nil {
			doc = core.NewDepDocument(o.method, deps, params)
		} else {
			doc = core.NewPairDocument(o.method, pairs, params)
		}
		if err := core.WriteModel(f, doc); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.impact != "" {
		printImpact(o.impact, pairs, deps, o.dirPath)
	}
	emit.End()
	trace.End()
	printStats(o)
	if o.truthPath != "" {
		return score(o.truthPath, pairs, deps, store)
	}
	return nil
}

// printImpact builds the dependency graph of the mined model and prints the
// impact and root-cause sets of the given component (§1.1's motivating
// applications). For an app→service model the graph mixes application and
// service-group nodes (edges app → group), which keeps the analysis useful
// without knowing group ownership.
func printImpact(node string, pairs core.PairSet, deps core.AppServiceSet, _ string) {
	var g *depgraph.Graph
	if deps != nil {
		g = depgraph.New()
		for d := range deps {
			g.AddEdge(d.App, d.Group)
		}
	} else {
		g = depgraph.FromPairs(pairs)
	}
	fmt.Fprintf(os.Stderr, "impact of %s failing (transitively affected): %v\n",
		node, g.Impact(node))
	fmt.Fprintf(os.Stderr, "root-cause candidates when %s misbehaves: %v\n",
		node, g.RootCauses(node))
	rank := g.CriticalityRanking()
	top := rank
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Fprintf(os.Stderr, "most critical components: ")
	for i, c := range top {
		if i > 0 {
			fmt.Fprint(os.Stderr, ", ")
		}
		fmt.Fprintf(os.Stderr, "%s(%d)", c.Node, c.ImpactSize)
	}
	fmt.Fprintln(os.Stderr)
}

// loadLogs merges the given wire-format files (plain or .gz) into one
// sorted store.
func loadLogs(files []string) (*logmodel.Store, error) {
	return logmodel.ReadFiles(files)
}

// score reads a tab-separated reference model and prints the confusion.
func score(path string, pairs core.PairSet, deps core.AppServiceSet, store *logmodel.Store) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var conf core.Confusion
	if deps != nil {
		truth := make(core.AppServiceSet)
		groups := make(map[string]bool)
		for _, line := range lines {
			parts := strings.Split(line, "\t")
			if len(parts) != 2 {
				continue
			}
			truth[core.AppServicePair{App: parts[0], Group: parts[1]}] = true
			groups[parts[1]] = true
		}
		universe := len(store.Sources()) * len(groups)
		conf = core.CompareAppService(deps, truth, universe)
	} else {
		truth := make(core.PairSet)
		for _, line := range lines {
			parts := strings.Split(line, "\t")
			if len(parts) != 2 {
				continue
			}
			truth[core.MakePair(parts[0], parts[1])] = true
		}
		n := len(store.Sources())
		conf = core.ComparePairs(pairs, truth, n*(n-1)/2)
	}
	fmt.Fprintf(os.Stderr, "score: TP=%d FP=%d FN=%d precision=%.2f recall=%.2f\n",
		conf.TP, conf.FP, conf.FN, conf.Precision(), conf.Recall())
	return nil
}

// writeDot exports the mined model as a Graphviz digraph (deps) or graph
// (pairs).
func writeDot(path string, pairs core.PairSet, deps core.AppServiceSet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if deps != nil {
		fmt.Fprintln(f, "digraph dependencies {")
		fmt.Fprintln(f, "  rankdir=LR;")
		for _, d := range deps.SortedPairs() {
			fmt.Fprintf(f, "  %q -> %q;\n", d.App, d.Group)
		}
	} else {
		fmt.Fprintln(f, "graph dependencies {")
		for _, p := range pairs.SortedPairs() {
			fmt.Fprintf(f, "  %q -- %q;\n", p.A, p.B)
		}
	}
	fmt.Fprintln(f, "}")
	return nil
}
