package main

// Time-travel subcommands over a model store written by `-follow -store`:
//
//	depmine query -store DIR -at TIME          model document at TIME
//	depmine diff -store DIR -from T1 -to T2    edge delta between instants
//	depmine trajectory -store DIR -key KEY     one key's history
//
// `query` prints the retained document byte-for-byte as it was emitted
// live — the store's round-trip contract makes the two indistinguishable.

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"time"

	"logscape/internal/logmodel"
	"logscape/internal/modelstore"
)

// storeCommands names the subcommands main dispatches to runStoreCommand.
var storeCommands = map[string]bool{"query": true, "diff": true, "trajectory": true}

// stamp renders a Millis in the CLI's canonical second-resolution UTC form.
func stamp(m logmodel.Millis) string {
	return m.Time().Format("2006-01-02T15:04:05")
}

// parseWhen parses a user-supplied instant: Unix milliseconds, RFC 3339,
// or the zone-less "2006-01-02T15:04:05" form (interpreted as UTC, the
// same rendering the follower's stderr lines use).
func parseWhen(s string) (logmodel.Millis, error) {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return logmodel.Millis(n), nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return logmodel.FromTime(t), nil
	}
	if t, err := time.Parse("2006-01-02T15:04:05", s); err == nil {
		return logmodel.FromTime(t), nil
	}
	return 0, fmt.Errorf("cannot parse time %q (want Unix millis, RFC 3339, or 2006-01-02T15:04:05 UTC)", s)
}

// runStoreCommand executes one time-travel subcommand against a store
// directory. It never writes to the store: queries are side-effect free.
func runStoreCommand(cmd string, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("depmine "+cmd, flag.ContinueOnError)
	dir := fs.String("store", "", "model store directory written by -follow -store")
	at := fs.String("at", "", "query: the instant to reconstruct the model at")
	from := fs.String("from", "", "diff: the earlier instant")
	to := fs.String("to", "", "diff: the later instant")
	key := fs.String("key", "", "trajectory: drift key (A--B pair or App->GROUP dependency)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("%s requires -store DIR", cmd)
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("%s takes no positional arguments", cmd)
	}
	st, err := modelstore.OpenRead(*dir)
	if err != nil {
		return err
	}
	switch cmd {
	case "query":
		if *at == "" {
			return fmt.Errorf("query requires -at TIME")
		}
		t, err := parseWhen(*at)
		if err != nil {
			return err
		}
		rec, ok, err := st.ModelAt(t)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("no model retained at or before %s", stamp(t))
		}
		_, err = stdout.Write(rec.Model)
		return err
	case "diff":
		if *from == "" || *to == "" {
			return fmt.Errorf("diff requires -from TIME and -to TIME")
		}
		t1, err := parseWhen(*from)
		if err != nil {
			return err
		}
		t2, err := parseWhen(*to)
		if err != nil {
			return err
		}
		d, err := st.DiffAt(t1, t2)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "diff %s (bucket %d) .. %s (bucket %d):\n",
			stamp(d.From.Range.End), d.From.Bucket, stamp(d.To.Range.End), d.To.Bucket)
		n := 0
		for _, p := range d.PairsNew {
			fmt.Fprintf(stdout, "+ %s--%s\n", p.A, p.B)
			n++
		}
		for _, p := range d.PairsGone {
			fmt.Fprintf(stdout, "- %s--%s\n", p.A, p.B)
			n++
		}
		for _, p := range d.DepsNew {
			fmt.Fprintf(stdout, "+ %s->%s\n", p.App, p.Group)
			n++
		}
		for _, p := range d.DepsGone {
			fmt.Fprintf(stdout, "- %s->%s\n", p.App, p.Group)
			n++
		}
		if n == 0 {
			fmt.Fprintln(stdout, "no changes")
		}
		return nil
	case "trajectory":
		if *key == "" {
			return fmt.Errorf("trajectory requires -key KEY")
		}
		points, err := st.Trajectory(*key)
		if err != nil {
			return err
		}
		for _, p := range points {
			present := "absent"
			if p.Present {
				present = "present"
			}
			score := "-"
			if p.HasScore {
				score = strconv.FormatFloat(p.Score, 'g', 6, 64)
			}
			fmt.Fprintf(stdout, "%s\t%d\t%s\t%s\n", stamp(p.At), p.Bucket, present, score)
		}
		return nil
	}
	return fmt.Errorf("unknown store subcommand %q", cmd)
}
