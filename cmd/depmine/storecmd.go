package main

// Time-travel subcommands over a model store written by `-follow -store`:
//
//	depmine query -store DIR -at TIME          model document at TIME
//	depmine diff -store DIR -from T1 -to T2    edge delta between instants
//	depmine trajectory -store DIR -key KEY     one key's history
//
// `query` prints the retained document byte-for-byte as it was emitted
// live — the store's round-trip contract makes the two indistinguishable.
// Parsing and rendering live in internal/modelstore (ParseWhen, WriteDiff,
// WriteTrajectory), shared with depmined's per-tenant query endpoints.

import (
	"flag"
	"fmt"
	"io"

	"logscape/internal/modelstore"
)

// storeCommands names the subcommands main dispatches to runStoreCommand.
var storeCommands = map[string]bool{"query": true, "diff": true, "trajectory": true}

// runStoreCommand executes one time-travel subcommand against a store
// directory. It never writes to the store: queries are side-effect free.
func runStoreCommand(cmd string, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("depmine "+cmd, flag.ContinueOnError)
	dir := fs.String("store", "", "model store directory written by -follow -store")
	at := fs.String("at", "", "query: the instant to reconstruct the model at")
	from := fs.String("from", "", "diff: the earlier instant")
	to := fs.String("to", "", "diff: the later instant")
	key := fs.String("key", "", "trajectory: drift key (A--B pair or App->GROUP dependency)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("%s requires -store DIR", cmd)
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("%s takes no positional arguments", cmd)
	}
	st, err := modelstore.OpenRead(*dir)
	if err != nil {
		return err
	}
	switch cmd {
	case "query":
		if *at == "" {
			return fmt.Errorf("query requires -at TIME")
		}
		t, err := modelstore.ParseWhen(*at)
		if err != nil {
			return err
		}
		rec, ok, err := st.ModelAt(t)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("no model retained at or before %s", modelstore.Stamp(t))
		}
		_, err = stdout.Write(rec.Model)
		return err
	case "diff":
		if *from == "" || *to == "" {
			return fmt.Errorf("diff requires -from TIME and -to TIME")
		}
		t1, err := modelstore.ParseWhen(*from)
		if err != nil {
			return err
		}
		t2, err := modelstore.ParseWhen(*to)
		if err != nil {
			return err
		}
		d, err := st.DiffAt(t1, t2)
		if err != nil {
			return err
		}
		return modelstore.WriteDiff(stdout, d)
	case "trajectory":
		if *key == "" {
			return fmt.Errorf("trajectory requires -key KEY")
		}
		points, err := st.Trajectory(*key)
		if err != nil {
			return err
		}
		return modelstore.WriteTrajectory(stdout, points)
	}
	return fmt.Errorf("unknown store subcommand %q", cmd)
}
