// Command depmined is the multi-tenant mining daemon: many named follow
// streams — each with its own source, geometry, checkpoint, quarantine,
// drift detector and model store — run concurrently in one process,
// multiplexed over the single shared worker pool, and are administered
// and queried over an HTTP/JSON control API (see internal/daemon and
// docs/operations.md):
//
//	depmined -state /var/lib/depmined -listen 127.0.0.1:7340
//
// Every tenant's artifacts are byte-identical to a solo `depmine -follow`
// run over the same stream: multi-tenancy shares compute, never results.
// Stopping the daemon (SIGINT/SIGTERM) hard-stops every engine without
// flushing open buckets; the next start rehydrates each stream from its
// checkpoint and continues byte-exactly.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"logscape/internal/daemon"
	"logscape/internal/obs"
	"logscape/internal/parallel"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7340", "control API listen address")
	state := flag.String("state", "", "state directory, one subdirectory per stream (required)")
	pool := flag.Int("pool", 0, "shared worker-pool size, multiplexed across all streams (0 = all cores)")
	flag.Parse()
	if err := run(*listen, *state, *pool); err != nil {
		fmt.Fprintln(os.Stderr, "depmined:", err)
		os.Exit(1)
	}
}

func run(listen, state string, pool int) error {
	if state == "" {
		return fmt.Errorf("-state DIR is required")
	}
	if flag.NArg() > 0 {
		return fmt.Errorf("depmined takes no positional arguments")
	}
	if pool > 0 {
		if err := parallel.SetPoolSize(pool); err != nil {
			return err
		}
	}
	// SystemClock is injected here, at the process edge: every tenant
	// registry gets real timings, while the library defaults stay
	// deterministic for tests.
	d, err := daemon.New(daemon.Config{StateDir: state, Clock: obs.SystemClock})
	if err != nil {
		return err
	}
	if err := d.Start(); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("-listen %s: %w", listen, err)
	}
	srv := &http.Server{Handler: d.Handler()}
	go srv.Serve(ln) //lint:allow bareconc HTTP serving is process-edge I/O concurrency, not mining work; every handler goes through the daemon's per-tenant locks
	fmt.Fprintf(os.Stderr, "depmined: control API on http://%s (state %s)\n", ln.Addr(), state)

	sig := make(chan os.Signal, 1) //lint:allow bareconc the standard library's signal delivery requires a channel; this is process lifecycle, not mining fan-out
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "depmined: stopping (hard; streams resume from their checkpoints)")
	srv.Close()
	d.Kill()
	return nil
}
