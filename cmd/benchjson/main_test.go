package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sample is a verbatim-shaped go test -bench transcript: benchmark lines
// interleaved with harness noise, float and integer ns/op, and a repeated
// benchmark from -count=2.
const sample = `goos: linux
goarch: amd64
pkg: logscape
BenchmarkL1Sequential-8   	       1	123456789 ns/op	  500000 B/op	    1200 allocs/op
BenchmarkL1Parallel-8     	       1	 23456789 ns/op	  600000 B/op	    1300 allocs/op
BenchmarkStreamL2Advance-16	    5000	    245.5 ns/op	      64 B/op	       2 allocs/op
BenchmarkStreamL2Advance-16	    5000	    250.0 ns/op	      64 B/op	       3 allocs/op
PASS
ok  	logscape	4.321s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := []result{
		{Name: "BenchmarkL1Parallel", NsPerOp: 23456789, AllocsPerOp: 1300},
		{Name: "BenchmarkL1Sequential", NsPerOp: 123456789, AllocsPerOp: 1200},
		{Name: "BenchmarkStreamL2Advance", NsPerOp: 250.0, AllocsPerOp: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseBench:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseBenchStripsProcSuffixOnly(t *testing.T) {
	// A benchmark name with an embedded dash keeps everything but the
	// trailing GOMAXPROCS decoration.
	got, err := parseBench(strings.NewReader(
		"BenchmarkL3Throughput/logs-per-sec-32 10 100 ns/op 0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "BenchmarkL3Throughput/logs-per-sec" {
		t.Errorf("got %+v, want single BenchmarkL3Throughput/logs-per-sec", got)
	}
}

func TestParseBenchSkipsNoise(t *testing.T) {
	// Harness noise and the bare name-echo line of a verbose run are not
	// benchmark measurements; they must be skipped without error.
	got, err := parseBench(strings.NewReader("PASS\nok  \tlogscape\t1.0s\nBenchmarkEcho\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("expected no results, got %+v", got)
	}
}

func TestParseBenchRejectsMalformedLines(t *testing.T) {
	// A Benchmark line that made it past the prefix check must parse fully:
	// silently dropping truncated or non-finite measurements would leave a
	// half-empty document that later comparisons trust.
	cases := []struct {
		name    string
		line    string
		wantErr string
	}{
		{"no measurements", "BenchmarkNoMeasurements-8 1", "truncated"},
		{"truncated mid-pair", "BenchmarkCut-8 1 123", "truncated"},
		{"dangling value", "BenchmarkDangle-8 10 100 ns/op 42", "dangling"},
		{"bad iteration count", "BenchmarkIter-8 lots 100 ns/op", "iteration count"},
		{"bad ns/op", "BenchmarkBad-8 1 oops ns/op", "ns/op"},
		{"NaN ns/op", "BenchmarkNaN-8 1 NaN ns/op", "non-finite"},
		{"Inf ns/op", "BenchmarkInf-8 1 +Inf ns/op", "non-finite"},
		{"bad allocs/op", "BenchmarkAllocs-8 1 100 ns/op 1.5 allocs/op", "allocs/op"},
		{"pairs but no ns/op", "BenchmarkUnitless-8 1 64 B/op", "no ns/op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseBench(strings.NewReader(tc.line + "\n"))
			if err == nil {
				t.Fatalf("parseBench(%q) succeeded, want error mentioning %q", tc.line, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestCompare(t *testing.T) {
	base := []result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "BenchmarkB", NsPerOp: 2000, AllocsPerOp: 0},
	}
	cases := []struct {
		name   string
		new    []result
		tol    float64
		wantOK bool
		wantIn string // substring that must appear in the report
	}{
		{
			name: "identical passes",
			new: []result{
				{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10},
				{Name: "BenchmarkB", NsPerOp: 2000, AllocsPerOp: 0},
			},
			tol: 50, wantOK: true, wantIn: "ok   BenchmarkA",
		},
		{
			name: "within tolerance passes",
			new: []result{
				{Name: "BenchmarkA", NsPerOp: 1400, AllocsPerOp: 10},
				{Name: "BenchmarkB", NsPerOp: 2000, AllocsPerOp: 0},
			},
			tol: 50, wantOK: true, wantIn: "+40.0%",
		},
		{
			name: "beyond tolerance fails",
			new: []result{
				{Name: "BenchmarkA", NsPerOp: 1600, AllocsPerOp: 10},
				{Name: "BenchmarkB", NsPerOp: 2000, AllocsPerOp: 0},
			},
			tol: 50, wantOK: false, wantIn: "FAIL BenchmarkA: ns/op",
		},
		{
			name: "any allocs increase fails even with fast ns/op",
			new: []result{
				{Name: "BenchmarkA", NsPerOp: 500, AllocsPerOp: 11},
				{Name: "BenchmarkB", NsPerOp: 2000, AllocsPerOp: 0},
			},
			tol: 50, wantOK: false, wantIn: "allocation regression",
		},
		{
			name: "zero to one alloc fails",
			new: []result{
				{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10},
				{Name: "BenchmarkB", NsPerOp: 2000, AllocsPerOp: 1},
			},
			tol: 50, wantOK: false, wantIn: "FAIL BenchmarkB: allocs/op 0 -> 1",
		},
		{
			name: "allocs improvement passes with a note",
			new: []result{
				{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 4},
				{Name: "BenchmarkB", NsPerOp: 2000, AllocsPerOp: 0},
			},
			tol: 50, wantOK: true, wantIn: "allocs/op improved 10 -> 4",
		},
		{
			name: "missing benchmark fails",
			new: []result{
				{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10},
			},
			tol: 50, wantOK: false, wantIn: "missing from new document",
		},
		{
			name: "new benchmark passes with a note",
			new: []result{
				{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10},
				{Name: "BenchmarkB", NsPerOp: 2000, AllocsPerOp: 0},
				{Name: "BenchmarkC", NsPerOp: 7, AllocsPerOp: 0},
			},
			tol: 50, wantOK: true, wantIn: "note BenchmarkC: new benchmark",
		},
		{
			name: "zero tolerance fails any slowdown",
			new: []result{
				{Name: "BenchmarkA", NsPerOp: 1001, AllocsPerOp: 10},
				{Name: "BenchmarkB", NsPerOp: 2000, AllocsPerOp: 0},
			},
			tol: 0, wantOK: false, wantIn: "tolerance 0.0%",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			ok := compare(base, tc.new, tc.tol, &buf)
			if ok != tc.wantOK {
				t.Errorf("compare ok = %v, want %v; report:\n%s", ok, tc.wantOK, buf.String())
			}
			if !strings.Contains(buf.String(), tc.wantIn) {
				t.Errorf("report missing %q:\n%s", tc.wantIn, buf.String())
			}
		})
	}
}

func TestLoadResultsRejectsUnusable(t *testing.T) {
	// encoding/json cannot emit NaN/Inf, so guard cases are raw documents —
	// exactly what a hand-edited or corrupted baseline would look like.
	cases := []struct {
		name    string
		doc     string
		wantErr string
	}{
		{"not json", `Benchmark 1 100 ns/op`, "invalid character"},
		{"empty name", `[{"name": "", "ns_per_op": 1, "allocs_per_op": 0}]`, "empty benchmark name"},
		{"duplicate", `[{"name": "BenchmarkA", "ns_per_op": 1, "allocs_per_op": 0},
			{"name": "BenchmarkA", "ns_per_op": 2, "allocs_per_op": 0}]`, "duplicate"},
		{"zero ns/op", `[{"name": "BenchmarkA", "ns_per_op": 0, "allocs_per_op": 0}]`, "unusable ns/op"},
		{"negative ns/op", `[{"name": "BenchmarkA", "ns_per_op": -5, "allocs_per_op": 0}]`, "unusable ns/op"},
		{"NaN ns/op", `[{"name": "BenchmarkA", "ns_per_op": NaN, "allocs_per_op": 0}]`, "invalid character"},
		{"negative allocs", `[{"name": "BenchmarkA", "ns_per_op": 1, "allocs_per_op": -1}]`, "negative allocs/op"},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "doc.json")
			if err := os.WriteFile(path, []byte(tc.doc), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := loadResults(path)
			if err == nil {
				t.Fatalf("loadResults accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	if _, err := loadResults(filepath.Join(dir, "does-not-exist.json")); err == nil {
		t.Error("loadResults accepted a missing file")
	}
}

func TestLoadResultsRoundTripsParseBench(t *testing.T) {
	// What benchjson writes, compare must read back unchanged.
	parsed, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	doc := `[
  {"name": "BenchmarkL1Parallel", "ns_per_op": 23456789, "allocs_per_op": 1300},
  {"name": "BenchmarkL1Sequential", "ns_per_op": 123456789, "allocs_per_op": 1200},
  {"name": "BenchmarkStreamL2Advance", "ns_per_op": 250.0, "allocs_per_op": 3}
]`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, parsed) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", loaded, parsed)
	}
	var buf strings.Builder
	if !compare(parsed, loaded, 0, &buf) {
		t.Errorf("identical documents failed the gate:\n%s", buf.String())
	}
}
