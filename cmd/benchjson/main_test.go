package main

import (
	"reflect"
	"strings"
	"testing"
)

// sample is a verbatim-shaped go test -bench transcript: benchmark lines
// interleaved with harness noise, float and integer ns/op, and a repeated
// benchmark from -count=2.
const sample = `goos: linux
goarch: amd64
pkg: logscape
BenchmarkL1Sequential-8   	       1	123456789 ns/op	  500000 B/op	    1200 allocs/op
BenchmarkL1Parallel-8     	       1	 23456789 ns/op	  600000 B/op	    1300 allocs/op
BenchmarkStreamL2Advance-16	    5000	    245.5 ns/op	      64 B/op	       2 allocs/op
BenchmarkStreamL2Advance-16	    5000	    250.0 ns/op	      64 B/op	       3 allocs/op
PASS
ok  	logscape	4.321s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := []result{
		{Name: "BenchmarkL1Parallel", NsPerOp: 23456789, AllocsPerOp: 1300},
		{Name: "BenchmarkL1Sequential", NsPerOp: 123456789, AllocsPerOp: 1200},
		{Name: "BenchmarkStreamL2Advance", NsPerOp: 250.0, AllocsPerOp: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseBench:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseBenchStripsProcSuffixOnly(t *testing.T) {
	// A benchmark name with an embedded dash keeps everything but the
	// trailing GOMAXPROCS decoration.
	got, err := parseBench(strings.NewReader(
		"BenchmarkL3Throughput/logs-per-sec-32 10 100 ns/op 0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "BenchmarkL3Throughput/logs-per-sec" {
		t.Errorf("got %+v, want single BenchmarkL3Throughput/logs-per-sec", got)
	}
}

func TestParseBenchSkipsNoise(t *testing.T) {
	// Harness noise and the bare name-echo line of a verbose run are not
	// benchmark measurements; they must be skipped without error.
	got, err := parseBench(strings.NewReader("PASS\nok  \tlogscape\t1.0s\nBenchmarkEcho\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("expected no results, got %+v", got)
	}
}

func TestParseBenchRejectsMalformedLines(t *testing.T) {
	// A Benchmark line that made it past the prefix check must parse fully:
	// silently dropping truncated or non-finite measurements would leave a
	// half-empty document that later comparisons trust.
	cases := []struct {
		name    string
		line    string
		wantErr string
	}{
		{"no measurements", "BenchmarkNoMeasurements-8 1", "truncated"},
		{"truncated mid-pair", "BenchmarkCut-8 1 123", "truncated"},
		{"dangling value", "BenchmarkDangle-8 10 100 ns/op 42", "dangling"},
		{"bad iteration count", "BenchmarkIter-8 lots 100 ns/op", "iteration count"},
		{"bad ns/op", "BenchmarkBad-8 1 oops ns/op", "ns/op"},
		{"NaN ns/op", "BenchmarkNaN-8 1 NaN ns/op", "non-finite"},
		{"Inf ns/op", "BenchmarkInf-8 1 +Inf ns/op", "non-finite"},
		{"bad allocs/op", "BenchmarkAllocs-8 1 100 ns/op 1.5 allocs/op", "allocs/op"},
		{"pairs but no ns/op", "BenchmarkUnitless-8 1 64 B/op", "no ns/op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseBench(strings.NewReader(tc.line + "\n"))
			if err == nil {
				t.Fatalf("parseBench(%q) succeeded, want error mentioning %q", tc.line, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
