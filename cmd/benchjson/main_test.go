package main

import (
	"reflect"
	"strings"
	"testing"
)

// sample is a verbatim-shaped go test -bench transcript: benchmark lines
// interleaved with harness noise, float and integer ns/op, and a repeated
// benchmark from -count=2.
const sample = `goos: linux
goarch: amd64
pkg: logscape
BenchmarkL1Sequential-8   	       1	123456789 ns/op	  500000 B/op	    1200 allocs/op
BenchmarkL1Parallel-8     	       1	 23456789 ns/op	  600000 B/op	    1300 allocs/op
BenchmarkStreamL2Advance-16	    5000	    245.5 ns/op	      64 B/op	       2 allocs/op
BenchmarkStreamL2Advance-16	    5000	    250.0 ns/op	      64 B/op	       3 allocs/op
PASS
ok  	logscape	4.321s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := []result{
		{Name: "BenchmarkL1Parallel", NsPerOp: 23456789, AllocsPerOp: 1300},
		{Name: "BenchmarkL1Sequential", NsPerOp: 123456789, AllocsPerOp: 1200},
		{Name: "BenchmarkStreamL2Advance", NsPerOp: 250.0, AllocsPerOp: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseBench:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseBenchStripsProcSuffixOnly(t *testing.T) {
	// A benchmark name with an embedded dash keeps everything but the
	// trailing GOMAXPROCS decoration.
	got, err := parseBench(strings.NewReader(
		"BenchmarkL3Throughput/logs-per-sec-32 10 100 ns/op 0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "BenchmarkL3Throughput/logs-per-sec" {
		t.Errorf("got %+v, want single BenchmarkL3Throughput/logs-per-sec", got)
	}
}

func TestParseBenchEmptyAndMalformed(t *testing.T) {
	got, err := parseBench(strings.NewReader("PASS\nok\nBenchmarkNoMeasurements-8 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("expected no results, got %+v", got)
	}
	if _, err := parseBench(strings.NewReader("BenchmarkBad-8 1 oops ns/op\n")); err == nil {
		t.Error("expected an error for a malformed ns/op value")
	}
}
