// Command benchjson converts `go test -bench` output on stdin into the
// BENCH_PR.json document the CI bench job archives: a JSON array of
//
//	{"name": ..., "ns_per_op": ..., "allocs_per_op": ...}
//
// records sorted by benchmark name. The GOMAXPROCS suffix go test appends
// to each name (BenchmarkFoo-8) is stripped so documents from machines with
// different core counts stay comparable; when a benchmark appears more than
// once (e.g. -count=N) the last measurement wins. Non-benchmark lines are
// ignored, so the full `go test` transcript can be piped in unfiltered.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchtime 1x -benchmem . | benchjson > BENCH_PR.json
//	benchjson compare [-tol PCT] BENCH_BASELINE.json BENCH_PR.json
//
// The compare subcommand is the CI bench gate: it diffs a new measurement
// document against a committed baseline and exits non-zero when any
// benchmark regresses — ns/op beyond the -tol percentage (default 50, wide
// because shared CI runners are noisy), or allocs/op above the baseline at
// all (allocation counts are deterministic, so any increase is a real
// regression, not noise). A benchmark present in the baseline but missing
// from the new document also fails — silently dropping a gated benchmark
// must not pass the gate. New benchmarks and allocs/op improvements are
// reported but do not fail; docs/operations.md describes re-baselining.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark measurement, the element type of BENCH_PR.json.
type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// procSuffix is the -GOMAXPROCS decoration go test appends to names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark results from go test -bench output. Lines
// not starting with "Benchmark" (build output, PASS, ok) are skipped, as is
// the bare name-echo line verbose runs print. Any other Benchmark line must
// be well-formed — an integer iteration count followed by complete
// (value, unit) measurement pairs including a finite ns/op — or parsing
// fails with an error naming the line: a truncated transcript silently
// producing a half-empty BENCH_PR.json would poison every later comparison
// against it.
func parseBench(r io.Reader) ([]result, error) {
	byName := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) == 0 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if len(fields) == 1 {
			continue // the name-echo line of a verbose run
		}
		res := result{Name: procSuffix.ReplaceAllString(fields[0], "")}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("%s: bad iteration count %q in line %q", res.Name, fields[1], line)
		}
		if len(fields) < 4 {
			return nil, fmt.Errorf("%s: truncated benchmark line %q (no measurements)", res.Name, line)
		}
		if (len(fields)-2)%2 != 0 {
			return nil, fmt.Errorf("%s: dangling measurement value in line %q", res.Name, line)
		}
		// After the name and iteration count, measurements come in
		// (value, unit) pairs: "123456 ns/op", "42 allocs/op", ...
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				ns, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad ns/op %q: %w", res.Name, v, err)
				}
				if math.IsNaN(ns) || math.IsInf(ns, 0) {
					return nil, fmt.Errorf("%s: non-finite ns/op %q", res.Name, v)
				}
				res.NsPerOp = ns
				seen = true
			case "allocs/op":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad allocs/op %q: %w", res.Name, v, err)
				}
				res.AllocsPerOp = n
			}
		}
		if !seen {
			return nil, fmt.Errorf("%s: no ns/op measurement in line %q", res.Name, line)
		}
		byName[res.Name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]result, 0, len(names))
	for _, name := range names {
		out = append(out, byName[name])
	}
	return out, nil
}

// loadResults reads one benchmark JSON document, rejecting anything the
// gate cannot compare meaningfully: non-finite or negative ns/op, negative
// allocs/op, duplicate or empty names.
func loadResults(path string) ([]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	seen := make(map[string]bool, len(rs))
	for _, r := range rs {
		if r.Name == "" {
			return nil, fmt.Errorf("%s: result with empty benchmark name", path)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("%s: duplicate benchmark %s", path, r.Name)
		}
		seen[r.Name] = true
		if math.IsNaN(r.NsPerOp) || math.IsInf(r.NsPerOp, 0) || r.NsPerOp <= 0 {
			return nil, fmt.Errorf("%s: %s has unusable ns/op %v", path, r.Name, r.NsPerOp)
		}
		if r.AllocsPerOp < 0 {
			return nil, fmt.Errorf("%s: %s has negative allocs/op %d", path, r.Name, r.AllocsPerOp)
		}
	}
	return rs, nil
}

// compare diffs new against old and writes a per-benchmark report to w.
// It returns false when the gate should fail: a baseline benchmark missing
// from new, ns/op regressed beyond tol percent, or allocs/op increased.
func compare(old, new []result, tol float64, w io.Writer) bool {
	newBy := make(map[string]result, len(new))
	for _, r := range new {
		newBy[r.Name] = r
	}
	ok := true
	for _, o := range old {
		n, found := newBy[o.Name]
		delete(newBy, o.Name)
		if !found {
			fmt.Fprintf(w, "FAIL %s: in baseline but missing from new document\n", o.Name)
			ok = false
			continue
		}
		pct := 100 * (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		switch {
		case pct > tol:
			fmt.Fprintf(w, "FAIL %s: ns/op %.1f -> %.1f (%+.1f%%, tolerance %.1f%%)\n",
				o.Name, o.NsPerOp, n.NsPerOp, pct, tol)
			ok = false
		default:
			fmt.Fprintf(w, "ok   %s: ns/op %.1f -> %.1f (%+.1f%%)\n",
				o.Name, o.NsPerOp, n.NsPerOp, pct)
		}
		switch {
		case n.AllocsPerOp > o.AllocsPerOp:
			fmt.Fprintf(w, "FAIL %s: allocs/op %d -> %d (allocation regression)\n",
				o.Name, o.AllocsPerOp, n.AllocsPerOp)
			ok = false
		case n.AllocsPerOp < o.AllocsPerOp:
			fmt.Fprintf(w, "note %s: allocs/op improved %d -> %d (re-baseline to lock in)\n",
				o.Name, o.AllocsPerOp, n.AllocsPerOp)
		}
	}
	// Deterministic report order for benchmarks only present in new.
	extra := make([]string, 0, len(newBy))
	for name := range newBy {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(w, "note %s: new benchmark, not in baseline\n", name)
	}
	return ok
}

// runCompare is the compare subcommand: benchjson compare [-tol PCT] OLD NEW.
func runCompare(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	tol := fs.Float64("tol", 50, "ns/op regression tolerance in percent")
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson compare [-tol PCT] OLD.json NEW.json")
		return 2
	}
	if math.IsNaN(*tol) || math.IsInf(*tol, 0) || *tol < 0 {
		fmt.Fprintf(os.Stderr, "benchjson: unusable tolerance %v\n", *tol)
		return 2
	}
	old, err := loadResults(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	new, err := loadResults(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	if !compare(old, new, *tol, os.Stdout) {
		fmt.Fprintln(os.Stdout, "bench gate: FAIL")
		return 1
	}
	fmt.Fprintln(os.Stdout, "bench gate: ok")
	return 0
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
