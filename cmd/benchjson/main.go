// Command benchjson converts `go test -bench` output on stdin into the
// BENCH_PR.json document the CI bench job archives: a JSON array of
//
//	{"name": ..., "ns_per_op": ..., "allocs_per_op": ...}
//
// records sorted by benchmark name. The GOMAXPROCS suffix go test appends
// to each name (BenchmarkFoo-8) is stripped so documents from machines with
// different core counts stay comparable; when a benchmark appears more than
// once (e.g. -count=N) the last measurement wins. Non-benchmark lines are
// ignored, so the full `go test` transcript can be piped in unfiltered.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchtime 1x -benchmem . | benchjson > BENCH_PR.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark measurement, the element type of BENCH_PR.json.
type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// procSuffix is the -GOMAXPROCS decoration go test appends to names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark results from go test -bench output. Lines
// not starting with "Benchmark" (build output, PASS, ok) are skipped, as is
// the bare name-echo line verbose runs print. Any other Benchmark line must
// be well-formed — an integer iteration count followed by complete
// (value, unit) measurement pairs including a finite ns/op — or parsing
// fails with an error naming the line: a truncated transcript silently
// producing a half-empty BENCH_PR.json would poison every later comparison
// against it.
func parseBench(r io.Reader) ([]result, error) {
	byName := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) == 0 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if len(fields) == 1 {
			continue // the name-echo line of a verbose run
		}
		res := result{Name: procSuffix.ReplaceAllString(fields[0], "")}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("%s: bad iteration count %q in line %q", res.Name, fields[1], line)
		}
		if len(fields) < 4 {
			return nil, fmt.Errorf("%s: truncated benchmark line %q (no measurements)", res.Name, line)
		}
		if (len(fields)-2)%2 != 0 {
			return nil, fmt.Errorf("%s: dangling measurement value in line %q", res.Name, line)
		}
		// After the name and iteration count, measurements come in
		// (value, unit) pairs: "123456 ns/op", "42 allocs/op", ...
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				ns, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad ns/op %q: %w", res.Name, v, err)
				}
				if math.IsNaN(ns) || math.IsInf(ns, 0) {
					return nil, fmt.Errorf("%s: non-finite ns/op %q", res.Name, v)
				}
				res.NsPerOp = ns
				seen = true
			case "allocs/op":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad allocs/op %q: %w", res.Name, v, err)
				}
				res.AllocsPerOp = n
			}
		}
		if !seen {
			return nil, fmt.Errorf("%s: no ns/op measurement in line %q", res.Name, line)
		}
		byName[res.Name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]result, 0, len(names))
	for _, name := range names {
		out = append(out, byName[name])
	}
	return out, nil
}

func main() {
	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
