// Command logclass clusters the free-text messages of log files into
// templates with the SLCT algorithm (Vaarandi; §2.2 of the paper) — the
// preprocessing step §5 suggests for classifying an application's messages
// before mining.
//
// Usage:
//
//	logclass [-source APP] [-support N] [-top N] LOGFILE...
//
// Without -source all messages are clustered together; with it only the
// given application's messages are. Templates are printed by descending
// support, with the share of messages left unclassified (outliers).
package main

import (
	"flag"
	"fmt"
	"os"

	"logscape/internal/logmodel"
	"logscape/internal/textproc"
)

func main() {
	source := flag.String("source", "", "restrict to one log source (application)")
	support := flag.Int("support", 0, "SLCT support threshold (default: 0.2% of messages, min 10)")
	top := flag.Int("top", 25, "number of templates to print")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "logclass: at least one log file is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*source, *support, *top, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "logclass:", err)
		os.Exit(1)
	}
}

func run(source string, support, top int, files []string) error {
	store, err := logmodel.ReadFiles(files)
	if err != nil {
		return err
	}
	var messages []string
	for _, e := range store.Entries() {
		if source == "" || e.Source == source {
			messages = append(messages, e.Message)
		}
	}
	if len(messages) == 0 {
		return fmt.Errorf("no messages for source %q", source)
	}
	if support == 0 {
		support = len(messages) / 500
		if support < 10 {
			support = 10
		}
	}
	fmt.Fprintf(os.Stderr, "clustering %d messages (support %d)\n", len(messages), support)

	classifier := textproc.Train(messages, support)
	counts, outliers := classifier.ClassCounts(messages)

	type row struct {
		id, count int
	}
	rows := make([]row, 0, len(counts))
	for id, c := range counts {
		rows = append(rows, row{id, c})
	}
	for i := 1; i < len(rows); i++ { // insertion sort by count desc
		for j := i; j > 0 && rows[j].count > rows[j-1].count; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	fmt.Printf("%-8s %-8s template\n", "count", "share")
	for i, r := range rows {
		if i == top {
			fmt.Printf("... and %d more templates\n", len(rows)-top)
			break
		}
		fmt.Printf("%-8d %-7.2f%% %s\n", r.count,
			100*float64(r.count)/float64(len(messages)), classifier.Template(r.id))
	}
	fmt.Printf("outliers: %d (%.2f%%)\n", outliers, 100*float64(outliers)/float64(len(messages)))
	return nil
}
