// Command docaudit cross-checks the CLI flags the documentation mentions
// against the flags the commands actually register, so the docs cannot
// silently drift from the binaries. It is the CI `docs-audit` job.
//
// Registered flags are harvested by parsing every non-test Go file under
// cmd/ and collecting the name argument of each flag.Xxx / flag.XxxVar /
// FlagSet method call. Documented flags are harvested from the Markdown
// files' inline code spans (`-flag`); fenced code blocks are skipped —
// they quote shell transcripts whose flags (go test's -run, tail's -F)
// are not ours to validate.
//
// Two directions are enforced:
//
//  1. Every flag the docs mention must be registered by some command
//     (or be on the small allowlist of go-toolchain flags the docs
//     legitimately quote inline, e.g. `go vet -vettool`).
//  2. Every flag registered by the operator-facing commands — depmine,
//     depmined and evalrun — must be mentioned somewhere in the docs.
//
// Usage:
//
//	go run ./cmd/docaudit [repo-root]
//
// The root defaults to the current directory. Exit status 1 with one
// line per violation; silence means the docs and binaries agree.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// documentedCommands are the commands whose every flag must appear in the
// docs. The other commands (loggen, logclass, benchjson, lintscape,
// docaudit itself) are developer tooling: their flags may be documented
// but do not have to be.
var documentedCommands = map[string]bool{"depmine": true, "depmined": true, "evalrun": true}

// toolchainFlags are non-logscape flags the docs legitimately quote in
// inline code spans — go test / go vet options, mostly. Anything else
// documented-but-unregistered fails the audit.
var toolchainFlags = map[string]bool{
	"bench":     true,
	"benchmem":  true,
	"benchtime": true,
	"export":    true, // `go list -export`, quoted in DESIGN.md
	"fuzz":      true,
	"fuzztime":  true,
	"race":      true,
	"run":       true,
	"short":     true,
	"update":    true,
	"vettool":   true,
}

// flagCalls maps the flag-registration function names to the index of
// their name argument: flag.String("name", ...) has it first,
// flag.StringVar(&p, "name", ...) second. Both the package-level
// functions and *flag.FlagSet methods share these names.
var flagCalls = map[string]int{
	"Bool": 0, "BoolVar": 1, "BoolFunc": 0,
	"Int": 0, "IntVar": 1,
	"Int64": 0, "Int64Var": 1,
	"Uint": 0, "UintVar": 1,
	"Uint64": 0, "Uint64Var": 1,
	"String": 0, "StringVar": 1,
	"Float64": 0, "Float64Var": 1,
	"Duration": 0, "DurationVar": 1,
	"Func": 0, "TextVar": 1, "Var": 1,
}

// registeredFlags parses every non-test Go file under cmdDir and returns
// command name → sorted flag names.
func registeredFlags(cmdDir string) (map[string][]string, error) {
	cmds, err := os.ReadDir(cmdDir)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]string)
	for _, c := range cmds {
		if !c.IsDir() {
			continue
		}
		dir := filepath.Join(cmdDir, c.Name())
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			return nil, err
		}
		set := make(map[string]bool)
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			src, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			for _, name := range flagsInFile(f, src) {
				set[name] = true
			}
		}
		out[c.Name()] = sortedKeys(set)
	}
	return out, nil
}

// flagsInFile extracts the flag names one Go source file registers.
// Parse errors are deliberately fatal: an unparseable command source
// would silently shrink the registered set and weaken direction 2.
func flagsInFile(path string, src []byte) []string {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docaudit: %v\n", err)
		os.Exit(1)
	}
	var names []string
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		argAt, ok := flagCalls[sel.Sel.Name]
		if !ok || argAt >= len(call.Args) {
			return true
		}
		lit, ok := call.Args[argAt].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err == nil && name != "" {
			names = append(names, name)
		}
		return true
	})
	return names
}

// spanRE matches inline code spans on a single line. Markdown spans do
// not nest, so non-greedy single-backtick matching is enough for our
// docs (which use no multi-backtick spans).
var spanRE = regexp.MustCompile("`([^`]+)`")

// flagTokenRE is what counts as a documented flag inside a span: a dash,
// then lowercase letters with interior dashes (`-drift-json`). Digits
// are deliberately excluded — no logscape flag has them, and transcripts
// quote things like tail's `-n0` that are not flags of ours.
var flagTokenRE = regexp.MustCompile(`^-([a-z][a-z-]*[a-z])$`)

// documentedFlags scans Markdown files and returns flag name → files
// mentioning it. Fenced code blocks (``` ... ```) are skipped.
func documentedFlags(paths []string) (map[string][]string, error) {
	out := make(map[string][]string)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		fenced := false
		seen := make(map[string]bool)
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				fenced = !fenced
				continue
			}
			if fenced {
				continue
			}
			for _, span := range spanRE.FindAllStringSubmatch(line, -1) {
				for _, tok := range strings.FieldsFunc(span[1], func(r rune) bool {
					return r == ' ' || r == ',' || r == '/'
				}) {
					if m := flagTokenRE.FindStringSubmatch(tok); m != nil {
						seen[m[1]] = true
					}
				}
			}
		}
		for _, name := range sortedKeys(seen) {
			out[name] = append(out[name], path)
		}
	}
	return out, nil
}

// sortedKeys returns a set's keys in order, for deterministic output.
func sortedKeys(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// docFiles returns the Markdown files to audit under root: the top-level
// *.md, docs/*.md, and the examples' READMEs. Missing globs are fine;
// the audit covers what exists.
func docFiles(root string) ([]string, error) {
	var paths []string
	for _, pat := range []string{"*.md", "docs/*.md", "examples/*/README.md"} {
		m, err := filepath.Glob(filepath.Join(root, pat))
		if err != nil {
			return nil, err
		}
		paths = append(paths, m...)
	}
	sort.Strings(paths)
	return paths, nil
}

// audit runs both directions and returns the violations, one line each,
// sorted for stable output.
func audit(root string) ([]string, error) {
	registered, err := registeredFlags(filepath.Join(root, "cmd"))
	if err != nil {
		return nil, err
	}
	paths, err := docFiles(root)
	if err != nil {
		return nil, err
	}
	documented, err := documentedFlags(paths)
	if err != nil {
		return nil, err
	}

	anyCmd := make(map[string]bool)
	cmds := make([]string, 0, len(registered))
	for cmd := range registered {
		cmds = append(cmds, cmd)
	}
	sort.Strings(cmds)
	for _, cmd := range cmds {
		for _, n := range registered[cmd] {
			anyCmd[n] = true
		}
	}

	var bad []string
	docNames := make([]string, 0, len(documented))
	for name := range documented {
		docNames = append(docNames, name)
	}
	sort.Strings(docNames)
	for _, name := range docNames {
		if !anyCmd[name] && !toolchainFlags[name] {
			bad = append(bad, fmt.Sprintf(
				"documented flag -%s (in %s) is registered by no command",
				name, strings.Join(documented[name], ", ")))
		}
	}
	for _, cmd := range cmds {
		if !documentedCommands[cmd] {
			continue
		}
		for _, n := range registered[cmd] {
			if _, ok := documented[n]; !ok {
				bad = append(bad, fmt.Sprintf(
					"%s flag -%s is undocumented (mention it in README.md or docs/)",
					cmd, n))
			}
		}
	}
	sort.Strings(bad)
	return bad, nil
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	bad, err := audit(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docaudit: %v\n", err)
		os.Exit(1)
	}
	for _, line := range bad {
		fmt.Fprintln(os.Stderr, "docaudit: "+line)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "docaudit: %d violations\n", len(bad))
		os.Exit(1)
	}
}
