package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestFlagsInFile(t *testing.T) {
	src := []byte(`package main

import "flag"

func main() {
	var s string
	flag.StringVar(&s, "alpha", "", "usage")
	flag.Bool("beta", false, "usage")
	fs := flag.NewFlagSet("sub", flag.ContinueOnError)
	fs.Float64("gamma", 0, "usage")
	fs.IntVar(new(int), "delta", 0, "usage")
	_ = flag.Int64("epsilon", 0, "usage")
	println("not-a-flag") // no selector, no match
}
`)
	got := flagsInFile("test.go", src)
	want := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("flagsInFile = %v, want %v", got, want)
	}
}

func TestDocumentedFlags(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.md")
	md := strings.Join([]string{
		"Inline spans: `-alpha`, `depmine -beta 3 -gamma-x`, and `-`.",
		"Not flags: `-A--B` (uppercase), `-n0` (digit), plain -naked text.",
		"```sh",
		"cmd -fenced  # inside a code block: skipped",
		"```",
		"After the fence `-omega` counts again.",
	}, "\n")
	if err := os.WriteFile(path, []byte(md), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := documentedFlags([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"alpha":   {path},
		"beta":    {path},
		"gamma-x": {path},
		"omega":   {path},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("documentedFlags = %v, want %v", got, want)
	}
}

func TestAuditDetectsBothDirections(t *testing.T) {
	root := t.TempDir()
	depmine := filepath.Join(root, "cmd", "depmine")
	if err := os.MkdirAll(depmine, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package main

import "flag"

func main() {
	flag.String("documented", "", "usage")
	flag.String("hidden", "", "usage")
}
`
	if err := os.WriteFile(filepath.Join(depmine, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	md := "Flags: `-documented` and `-phantom`; toolchain `-race` is fine.\n"
	if err := os.WriteFile(filepath.Join(root, "README.md"), []byte(md), 0o644); err != nil {
		t.Fatal(err)
	}

	bad, err := audit(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 2 {
		t.Fatalf("audit = %v, want 2 violations", bad)
	}
	if !strings.Contains(bad[0], "-hidden") || !strings.Contains(bad[0], "undocumented") {
		t.Errorf("missing registered-but-undocumented violation: %v", bad)
	}
	if !strings.Contains(bad[1], "-phantom") || !strings.Contains(bad[1], "no command") {
		t.Errorf("missing documented-but-unregistered violation: %v", bad)
	}
}

// TestAuditRepo runs the audit over the real repository — the same check
// the CI docs-audit job runs, so a flag/docs mismatch fails locally too.
func TestAuditRepo(t *testing.T) {
	bad, err := audit("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range bad {
		t.Error(line)
	}
}
