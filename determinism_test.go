package logscape_test

// Worker-count equivalence tests: the determinism contract of
// internal/parallel says every miner must produce bit-identical results at
// Workers: 1 (the exact sequential path) and Workers: 8 (sharded fan-out).
// Each test compares the full result structures with reflect.DeepEqual and
// the serialized model documents byte for byte.

import (
	"bytes"
	"reflect"
	"testing"

	"logscape"
	"logscape/internal/baseline"
	"logscape/internal/core"
	"logscape/internal/core/l2"
	"logscape/internal/obs"
)

// serializePairs renders a pair set as a canonical model document.
func serializePairs(t *testing.T, technique string, s logscape.PairSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.WriteModel(&buf, core.NewPairDocument(technique, s, nil)); err != nil {
		t.Fatalf("serialize %s: %v", technique, err)
	}
	return buf.Bytes()
}

// serializeDeps renders a dependency set as a canonical model document.
func serializeDeps(t *testing.T, technique string, s logscape.AppServiceSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.WriteModel(&buf, core.NewDepDocument(technique, s, nil)); err != nil {
		t.Fatalf("serialize %s: %v", technique, err)
	}
	return buf.Bytes()
}

func requireSameBytes(t *testing.T, what string, seq, par []byte) {
	t.Helper()
	if !bytes.Equal(seq, par) {
		t.Errorf("%s: serialized models differ between Workers:1 and Workers:8\nseq: %s\npar: %s", what, seq, par)
	}
}

func TestL1WorkerEquivalence(t *testing.T) {
	tb := logscape.NewTestbed(11, 0.1, 1)
	store := tb.Day(0)
	cfg := logscape.L1Config{MinLogs: 8, Seed: 11}

	cfg.Workers = 1
	seq := logscape.MineL1(store, tb.DayRange(0), tb.Apps(), cfg)
	cfg.Workers = 8
	par := logscape.MineL1(store, tb.DayRange(0), tb.Apps(), cfg)

	if !reflect.DeepEqual(seq.Pairs, par.Pairs) {
		t.Error("L1 pair results differ between Workers:1 and Workers:8")
	}
	requireSameBytes(t, "l1",
		serializePairs(t, "l1", seq.DependentPairs()),
		serializePairs(t, "l1", par.DependentPairs()))
}

func TestL2WorkerEquivalence(t *testing.T) {
	tb := logscape.NewTestbed(11, 0.2, 1)
	ss, _ := logscape.BuildSessions(tb.Day(0), logscape.SessionConfig{})
	if len(ss) == 0 {
		t.Fatal("no sessions to mine")
	}

	seq := logscape.MineL2(ss, logscape.L2Config{Workers: 1}) //lint:allow cfgzero worker-count equivalence test exercises package defaults
	par := logscape.MineL2(ss, logscape.L2Config{Workers: 8}) //lint:allow cfgzero worker-count equivalence test exercises package defaults

	if !reflect.DeepEqual(seq.Types, par.Types) {
		t.Error("L2 type results differ between Workers:1 and Workers:8")
	}
	if !reflect.DeepEqual(seq.Counts, par.Counts) {
		t.Error("L2 bigram counts differ between Workers:1 and Workers:8")
	}
	requireSameBytes(t, "l2",
		serializePairs(t, "l2", seq.DependentPairs()),
		serializePairs(t, "l2", par.DependentPairs()))
}

func TestL2CountBigramsParallelEquivalence(t *testing.T) {
	tb := logscape.NewTestbed(11, 0.2, 1)
	ss, _ := logscape.BuildSessions(tb.Day(0), logscape.SessionConfig{})
	want := l2.CountBigrams(ss, logscape.MillisPerSecond)
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got := l2.CountBigramsParallel(ss, logscape.MillisPerSecond, workers)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: merged bigram counts differ from sequential", workers)
		}
	}
}

func TestL3WorkerEquivalence(t *testing.T) {
	tb := logscape.NewTestbed(11, 0.1, 1)
	store := tb.Day(0)

	seq := logscape.NewL3Miner(tb.Directory(), logscape.L3Config{
		Stops: tb.StopPatterns(), Owner: tb.GroupOwners(), Workers: 1,
	}).Mine(store, logscape.TimeRange{})
	par := logscape.NewL3Miner(tb.Directory(), logscape.L3Config{
		Stops: tb.StopPatterns(), Owner: tb.GroupOwners(), Workers: 8,
	}).Mine(store, logscape.TimeRange{})

	if !reflect.DeepEqual(seq.Evidence, par.Evidence) {
		t.Error("L3 citation evidence differs between Workers:1 and Workers:8")
	}
	requireSameBytes(t, "l3",
		serializeDeps(t, "l3", seq.Dependencies()),
		serializeDeps(t, "l3", par.Dependencies()))
}

func TestBaselineWorkerEquivalence(t *testing.T) {
	tb := logscape.NewTestbed(11, 0.2, 1)
	store := tb.Day(0)
	hour := logscape.TimeRange{
		Start: tb.DayRange(0).Start + 10*logscape.MillisPerHour,
		End:   tb.DayRange(0).Start + 11*logscape.MillisPerHour,
	}

	seq := logscape.MineBaseline(store, hour, tb.Apps(), logscape.BaselineConfig{Workers: 1}) //lint:allow cfgzero worker-count equivalence test exercises package defaults
	par := logscape.MineBaseline(store, hour, tb.Apps(), logscape.BaselineConfig{Workers: 8}) //lint:allow cfgzero worker-count equivalence test exercises package defaults

	if !reflect.DeepEqual(seq.Ordered, par.Ordered) {
		t.Error("baseline ordered-pair results differ between Workers:1 and Workers:8")
	}
	if !reflect.DeepEqual(seq.DirectedDependencies(), par.DirectedDependencies()) {
		t.Error("baseline directed dependencies differ between Workers:1 and Workers:8")
	}
	requireSameBytes(t, "baseline",
		serializePairs(t, "baseline", seq.DependentPairs()),
		serializePairs(t, "baseline", par.DependentPairs()))
}

// mineAll mines all four techniques over one testbed day with the given
// worker count and registry, returning the serialized model document per
// technique — the shared harness for the observability half of the
// determinism contract.
func mineAll(t *testing.T, tb *logscape.Testbed, workers int, reg *obs.Registry) map[string][]byte {
	t.Helper()
	store := tb.Day(0)
	out := make(map[string][]byte)

	l1res := logscape.MineL1(store, tb.DayRange(0), tb.Apps(),
		logscape.L1Config{MinLogs: 8, Seed: 11, Workers: workers, Metrics: reg})
	out["l1"] = serializePairs(t, "l1", l1res.DependentPairs())

	ss, _ := logscape.BuildSessions(store, logscape.SessionConfig{Metrics: reg})
	l2res := logscape.MineL2(ss, logscape.L2Config{Workers: workers, Metrics: reg}) //lint:allow cfgzero metrics-equivalence test exercises package defaults
	out["l2"] = serializePairs(t, "l2", l2res.DependentPairs())

	l3res := logscape.NewL3Miner(tb.Directory(), logscape.L3Config{
		Stops: tb.StopPatterns(), Owner: tb.GroupOwners(), Workers: workers, Metrics: reg,
	}).Mine(store, logscape.TimeRange{})
	out["l3"] = serializeDeps(t, "l3", l3res.Dependencies())

	hour := logscape.TimeRange{
		Start: tb.DayRange(0).Start + 10*logscape.MillisPerHour,
		End:   tb.DayRange(0).Start + 11*logscape.MillisPerHour,
	}
	bres := logscape.MineBaseline(store, hour, tb.Apps(),
		logscape.BaselineConfig{Workers: workers, Metrics: reg}) //lint:allow cfgzero metrics-equivalence test exercises package defaults
	out["baseline"] = serializePairs(t, "baseline", bres.DependentPairs())
	return out
}

// TestMetricsDoNotPerturbModels is the observability safety contract:
// mined models are byte-identical with metrics collection off (nil
// registry) and on, at Workers 1 and 8.
func TestMetricsDoNotPerturbModels(t *testing.T) {
	tb := logscape.NewTestbed(11, 0.1, 1)
	off := mineAll(t, tb, 1, nil)
	for _, workers := range []int{1, 8} {
		on := mineAll(t, tb, workers, obs.New())
		for technique, want := range off {
			if !bytes.Equal(want, on[technique]) {
				t.Errorf("%s: serialized model differs with metrics on (Workers:%d) vs off\noff: %s\non:  %s",
					technique, workers, want, on[technique])
			}
		}
	}
}

// TestMetricsCounterEquivalence is the observability determinism contract:
// the counter/gauge document (not the timing histograms) is identical at
// Workers 1 and 8, because counters count input-determined work, never
// scheduling.
func TestMetricsCounterEquivalence(t *testing.T) {
	tb := logscape.NewTestbed(11, 0.1, 1)
	reg1, reg8 := obs.New(), obs.New()
	mineAll(t, tb, 1, reg1)
	mineAll(t, tb, 8, reg8)

	doc1, err := reg1.CounterDocument()
	if err != nil {
		t.Fatalf("CounterDocument(workers=1): %v", err)
	}
	doc8, err := reg8.CounterDocument()
	if err != nil {
		t.Fatalf("CounterDocument(workers=8): %v", err)
	}
	if len(reg1.Snapshot().Counters) == 0 {
		t.Fatal("no counters collected — instrumentation not wired up")
	}
	if !bytes.Equal(doc1, doc8) {
		t.Errorf("counter documents differ between Workers:1 and Workers:8\nseq: %s\npar: %s", doc1, doc8)
	}
}

// TestBaselineWorkerEquivalenceInternal exercises the internal package
// directly across a wider worker sweep than the facade test.
func TestBaselineWorkerEquivalenceInternal(t *testing.T) {
	tb := logscape.NewTestbed(11, 0.1, 1)
	store := tb.Day(0)
	hour := logscape.TimeRange{
		Start: tb.DayRange(0).Start + 9*logscape.MillisPerHour,
		End:   tb.DayRange(0).Start + 10*logscape.MillisPerHour,
	}
	want := baseline.Mine(store, hour, nil, baseline.Config{Workers: 1}) //lint:allow cfgzero worker-count equivalence test exercises package defaults
	for _, workers := range []int{2, 3, 5, 16} {
		got := baseline.Mine(store, hour, nil, baseline.Config{Workers: workers}) //lint:allow cfgzero worker-count equivalence test exercises package defaults
		if !reflect.DeepEqual(want.Ordered, got.Ordered) {
			t.Errorf("workers=%d: results differ from sequential", workers)
		}
	}
}
