package logscape

import (
	"logscape/internal/hospital"
	"logscape/internal/logmodel"
)

// Testbed is the simulated hospital-information-system environment used by
// the paper's case study: a generated topology of applications and service
// groups with a known ground-truth dependency graph, and a workload
// generator producing a realistic centralized log stream (user sessions,
// synchronous/asynchronous call trees, clock skew, free-text noise).
//
// It stands in for proprietary production logs: generate a period, mine it
// with the three techniques, and score the results against the ground
// truth. All output is deterministic for a given seed.
type Testbed struct {
	sim  *hospital.Simulator
	topo *hospital.Topology
}

// NewTestbed creates a testbed. scale 1 reproduces a 1/100-volume replica
// of the paper's test week (roughly 100k log entries per weekday); days is
// the simulated period length (7 gives the Tue Dec 6 – Mon Dec 12 2005 week
// of table 1).
func NewTestbed(seed int64, scale float64, days int) *Testbed {
	topo := hospital.GenerateTopology(hospital.DefaultTopologyConfig(), seed)
	cfg := hospital.DefaultConfig(seed)
	if scale > 0 {
		cfg.Scale = scale
	}
	if days > 0 {
		cfg.Days = days
	}
	return &Testbed{sim: hospital.NewSimulator(cfg, topo), topo: topo}
}

// Days returns the number of simulated days.
func (t *Testbed) Days() int { return t.sim.Config().Days }

// Day generates the log stream of the i-th day (sorted store).
func (t *Testbed) Day(i int) *Store {
	store, _ := t.sim.GenerateDay(i)
	return store
}

// DayRange returns the time range of the i-th day.
func (t *Testbed) DayRange(i int) TimeRange { return t.sim.DayRange(i) }

// IsWeekend reports whether the i-th day falls on a weekend.
func (t *Testbed) IsWeekend(i int) bool { return t.sim.IsWeekend(i) }

// Directory returns the environment's service directory.
func (t *Testbed) Directory() *Directory { return t.topo.Directory() }

// StopPatterns returns the canonical ten stop patterns matching the
// environment's server-side log formats (§4.8 mines "with 10 stop
// patterns").
func (t *Testbed) StopPatterns() []StopPattern { return hospital.CanonicalStopPatterns() }

// TruePairs returns the app–app reference model (the paper's first
// reference model: unordered pairs of directly interacting applications).
func (t *Testbed) TruePairs() PairSet {
	out := make(PairSet)
	for p := range t.topo.TrueAppPairs() {
		out[p] = true
	}
	return out
}

// TrueDeps returns the app→service reference model.
func (t *Testbed) TrueDeps() AppServiceSet {
	out := make(AppServiceSet)
	for p := range t.topo.TrueAppServicePairs() {
		out[p] = true
	}
	return out
}

// Apps returns the application names of the environment.
func (t *Testbed) Apps() []string { return t.topo.AppNames() }

// GroupOwners maps every service-group id to the application implementing
// it (useful for converting app→service dependencies into app pairs).
func (t *Testbed) GroupOwners() map[string]string {
	out := make(map[string]string, len(t.topo.Groups))
	for _, g := range t.topo.Groups {
		out[g.ID] = g.Owner
	}
	return out
}

// PairUniverse returns the number of possible application pairs.
func (t *Testbed) PairUniverse() int {
	n := len(t.topo.Apps)
	return n * (n - 1) / 2
}

// DepUniverse returns the number of possible app→service dependencies.
func (t *Testbed) DepUniverse() int {
	return len(t.topo.Apps) * len(t.topo.Groups)
}

// MillisPerSecond, MillisPerHour and MillisPerDay are re-exported time
// units of the log model.
const (
	MillisPerSecond = logmodel.MillisPerSecond
	MillisPerMinute = logmodel.MillisPerMinute
	MillisPerHour   = logmodel.MillisPerHour
	MillisPerDay    = logmodel.MillisPerDay
)
