package logscape_test

// Degenerate-input contract: every miner invoked on an empty store, an
// empty time range, a single-source stream, or a single entry must return
// an empty-but-valid result — initialized maps, callable accessors, no
// panics — rather than nil maps or sorted-store panics.

import (
	"testing"

	"logscape"
	"logscape/internal/baseline"
	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/core/l3"
	"logscape/internal/directory"
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
)

// edgeStore builds a sorted store from entries (already time-ordered).
func edgeStore(entries ...logmodel.Entry) *logmodel.Store {
	s := logmodel.NewStore(len(entries))
	s.AppendAll(entries)
	s.Sort()
	return s
}

func edgeEntry(t logmodel.Millis, source, user, msg string) logmodel.Entry {
	return logmodel.Entry{Time: t, Source: source, Host: "h1", User: user,
		Severity: logmodel.SevInfo, Message: msg}
}

func edgeDirectory() *directory.Directory {
	return &directory.Directory{Version: 1, Groups: []directory.Group{
		{ID: "GRPA", RootURL: "http://srv1:8080/a"},
	}}
}

func TestMinersDegenerateInputs(t *testing.T) {
	hour := logmodel.TimeRange{Start: 0, End: logmodel.MillisPerHour}
	cases := []struct {
		name  string
		store *logmodel.Store
		r     logmodel.TimeRange
	}{
		{"empty store, empty range", logmodel.NewStore(0), logmodel.TimeRange{}},
		{"empty store, hour range", logmodel.NewStore(0), hour},
		{"zero-value store", &logmodel.Store{}, hour},
		{"single entry", edgeStore(
			edgeEntry(1000, "AppA", "u1", "calling GRPA"),
		), hour},
		{"single source", edgeStore(
			edgeEntry(1000, "AppA", "u1", "one"),
			edgeEntry(2000, "AppA", "u1", "two"),
			edgeEntry(3000, "AppA", "u1", "three"),
			edgeEntry(4000, "AppA", "u1", "four"),
		), hour},
		{"two sources, empty mining range", edgeStore(
			edgeEntry(1000, "AppA", "u1", "one"),
			edgeEntry(2000, "AppB", "u1", "two"),
		), logmodel.TimeRange{Start: 5000, End: 5000}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				// L1: result must have an initialized pair map.
				l1res := l1.Mine(tc.store, tc.r, nil, l1.Config{Workers: workers}) //lint:allow cfgzero degenerate-input test exercises package defaults
				if l1res.Pairs == nil {
					t.Error("l1: nil Pairs map")
				}
				if got := l1res.DependentPairs(); len(got) != 0 {
					t.Errorf("l1: %d dependent pairs from degenerate input", len(got))
				}

				// L2: session building and mining over whatever sessions
				// exist (typically none).
				ss, _ := sessions.Build(tc.store, sessions.Config{})
				l2res := l2.Mine(ss, l2.Config{Workers: workers}) //lint:allow cfgzero degenerate-input test exercises package defaults
				if l2res.Types == nil || l2res.Counts == nil || l2res.Counts.Joint == nil {
					t.Error("l2: nil result maps")
				}
				if got := l2res.DependentPairs(); len(got) != 0 {
					t.Errorf("l2: %d dependent pairs from degenerate input", len(got))
				}
				if hints := l2.DirectionHints(ss, l2res.DependentPairs(), logmodel.MillisPerSecond); hints == nil {
					t.Error("l2: nil direction hints")
				}

				// L3: evidence map must be initialized even with no entries.
				l3res := l3.NewMiner(edgeDirectory(), l3.Config{Workers: workers}).Mine(tc.store, tc.r) //lint:allow cfgzero degenerate-input test exercises package defaults
				if l3res.Evidence == nil {
					t.Error("l3: nil Evidence map")
				}
				if deps := l3res.Dependencies(); deps == nil {
					t.Error("l3: nil Dependencies set")
				}

				// Baseline: ordered map must be initialized; no pair can be
				// tested without two active sources in range.
				bres := baseline.Mine(tc.store, tc.r, nil, baseline.Config{Workers: workers}) //lint:allow cfgzero degenerate-input test exercises package defaults
				if bres.Ordered == nil {
					t.Error("baseline: nil Ordered map")
				}
				if got := bres.DependentPairs(); len(got) != 0 {
					t.Errorf("baseline: %d dependent pairs from degenerate input", len(got))
				}
			}
		})
	}
}

// TestZeroValueStoreUsable pins the fix for the zero-value Store: it must
// behave as a valid empty sorted store for every query the miners issue.
func TestZeroValueStoreUsable(t *testing.T) {
	var s logmodel.Store
	if !s.Sorted() {
		t.Error("zero-value store reports unsorted")
	}
	if s.Len() != 0 || len(s.Entries()) != 0 {
		t.Error("zero-value store not empty")
	}
	if got := s.Range(logmodel.TimeRange{Start: 0, End: 1000}); len(got) != 0 {
		t.Errorf("Range on zero-value store = %d entries", len(got))
	}
	if idx := s.SourceIndexRange(logmodel.TimeRange{Start: 0, End: 1000}); len(idx) != 0 {
		t.Errorf("SourceIndexRange on zero-value store = %d sources", len(idx))
	}
	if span := s.Span(); span != (logmodel.TimeRange{}) {
		t.Errorf("Span on zero-value store = %+v", span)
	}
	// In-order appends on a zero-value store must keep it sorted.
	s.Append(logmodel.Entry{Time: 1, Source: "a"})
	s.Append(logmodel.Entry{Time: 2, Source: "b"})
	if !s.Sorted() {
		t.Error("in-order appends on zero-value store left it unsorted")
	}
	// Out-of-order appends must still be detected and fixed by Sort.
	s.Append(logmodel.Entry{Time: 0, Source: "c"})
	if s.Sorted() {
		t.Error("out-of-order append not detected")
	}
	s.Sort()
	if !s.Sorted() || s.At(0).Source != "c" {
		t.Error("Sort did not restore order")
	}
}

// TestEqualCountSlotsEmptyStore covers the adaptive-slotting helper on
// degenerate input.
func TestEqualCountSlotsEmptyStore(t *testing.T) {
	r := logmodel.TimeRange{Start: 0, End: logmodel.MillisPerHour}
	slots := l1.EqualCountSlots(logmodel.NewStore(0), r, 4)
	if len(slots) != 1 || slots[0] != r {
		t.Errorf("EqualCountSlots on empty store = %v", slots)
	}
	if got := l1.EqualCountSlots(logmodel.NewStore(0), r, 0); got != nil {
		t.Errorf("EqualCountSlots with n=0 = %v", got)
	}
}

// TestFacadeEmptyStore exercises the public facade on an empty stream.
func TestFacadeEmptyStore(t *testing.T) {
	store := logmodel.NewStore(0)
	res := logscape.MineL1(store, logscape.TimeRange{}, nil, logscape.L1Config{})
	if len(res.DependentPairs()) != 0 {
		t.Error("facade L1 mined pairs from nothing")
	}
	ss, stats := logscape.BuildSessions(store, logscape.SessionConfig{})
	if len(ss) != 0 || stats.Sessions != 0 {
		t.Error("facade sessions from empty store")
	}
}
