package logscape_test

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index), plus throughput
// benchmarks for each subsystem and the ablation benchmarks of DESIGN.md §5.
//
// The per-experiment benchmarks report the reproduced headline numbers as
// custom metrics (tp/op, fp/op, ...) so `go test -bench=.` doubles as the
// EXPERIMENTS.md data source.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"logscape/internal/baseline"
	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/core/l3"
	"logscape/internal/eval"
	"logscape/internal/hospital"
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
	"logscape/internal/stream"
)

var (
	benchOnce   sync.Once
	benchRunner *eval.Runner
)

// benchSetup simulates the full test week once for all benchmarks (seed
// 2005, full 1/100 scale — the configuration of cmd/evalrun).
func benchSetup(b *testing.B) *eval.Runner {
	b.Helper()
	benchOnce.Do(func() {
		benchRunner = eval.NewRunner(eval.DefaultOptions(2005))
	})
	return benchRunner
}

// --- Experiment benchmarks (one per table and figure) ----------------------

func BenchmarkTable1LogVolume(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		total = r.Table1().Total
	}
	b.ReportMetric(float64(total), "logs/week")
}

func BenchmarkFigure1ActivitySeries(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	var corr float64
	for i := 0; i < b.N; i++ {
		corr = r.Figure1(0, logmodel.TimeRange{}).Correlation
	}
	b.ReportMetric(corr, "corr")
}

func BenchmarkFigure2Boxplots(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	pos := 0
	for i := 0; i < b.N; i++ {
		f := r.Figure2(0)
		pos = 0
		for _, d := range f.Directions {
			if d.Positive {
				pos++
			}
		}
	}
	b.ReportMetric(float64(pos), "positive-directions")
}

func BenchmarkFigure3SessionExcerpt(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(r.Figure3(0, 0, 0).Events)
	}
	b.ReportMetric(float64(n), "events")
}

func BenchmarkFigure4ContingencyTable(b *testing.B) {
	var g2 float64
	for i := 0; i < b.N; i++ {
		g2 = eval.Figure4().Test.G2
	}
	b.ReportMetric(g2, "G2")
}

func BenchmarkFigure5L1Days(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	var tp, fp int
	for i := 0; i < b.N; i++ {
		f := r.Figure5()
		tp, fp = 0, 0
		for _, d := range f.Days {
			tp += d.TP
			fp += d.FP
		}
	}
	b.ReportMetric(float64(tp)/7, "tp/day")
	b.ReportMetric(float64(fp)/7, "fp/day")
}

func BenchmarkFigure6L2Days(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	var tp, fp int
	for i := 0; i < b.N; i++ {
		f := r.Figure6()
		tp, fp = 0, 0
		for _, d := range f.Days {
			tp += d.TP
			fp += d.FP
		}
	}
	b.ReportMetric(float64(tp)/7, "tp/day")
	b.ReportMetric(float64(fp)/7, "fp/day")
}

func BenchmarkFigure7TimeoutSweep(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	var bestRatio float64
	for i := 0; i < b.N; i++ {
		f := r.Figure7(6, nil)
		bestRatio = 0
		for _, p := range f.Points {
			if ratio := p.Ratio(); ratio > bestRatio {
				bestRatio = ratio
			}
		}
	}
	b.ReportMetric(bestRatio, "best-ratio")
}

func BenchmarkTable2TimeoutTest(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	var medianRatioDiff float64
	for i := 0; i < b.N; i++ {
		t2 := r.Table2(nil)
		medianRatioDiff = t2.Rows[len(t2.Rows)-1].RatioDiffMedian
	}
	b.ReportMetric(medianRatioDiff, "tpr-gain-pp")
}

func BenchmarkFigure8L3Days(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	var unionTP, unionFP int
	for i := 0; i < b.N; i++ {
		f := r.Figure8()
		unionTP, unionFP = f.UnionTP, f.UnionFP
	}
	b.ReportMetric(float64(unionTP), "union-tp")
	b.ReportMetric(float64(unionFP), "union-fp")
}

func BenchmarkFigure9LoadStudy(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	var slope float64
	for i := 0; i < b.N; i++ {
		slope = r.Figure9(0).P1Regression.Slope
	}
	b.ReportMetric(slope, "p1-slope")
}

// --- Subsystem throughput benchmarks ---------------------------------------

func BenchmarkSimulateDay(b *testing.B) {
	topo := hospital.GenerateTopology(hospital.DefaultTopologyConfig(), 2005)
	sim := hospital.NewSimulator(hospital.DefaultConfig(2005), topo)
	b.ResetTimer()
	var logs int
	for i := 0; i < b.N; i++ {
		store, _ := sim.GenerateDay(i % 7)
		logs = store.Len()
	}
	b.ReportMetric(float64(logs), "logs")
}

func BenchmarkSessionBuild(b *testing.B) {
	r := benchSetup(b)
	store := r.Stores[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sessions.Build(store, sessions.Config{})
	}
}

func BenchmarkL1MineDay(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1.Mine(r.Stores[0], r.Sim.DayRange(0), r.AppNames(), r.Opts.L1)
	}
}

func BenchmarkL2MineDay(b *testing.B) {
	r := benchSetup(b)
	ss, _ := r.SessionsOfDay(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2.Mine(ss, r.Opts.L2)
	}
}

func BenchmarkL3MineDay(b *testing.B) {
	r := benchSetup(b)
	m := l3.NewMiner(r.Dir, l3.Config{Stops: r.Opts.Stops})
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(m.Mine(r.Stores[0], logmodel.TimeRange{}).Dependencies())
	}
	b.ReportMetric(float64(n), "deps")
}

func BenchmarkL3Throughput(b *testing.B) {
	// Per-entry scanning cost of the citation automaton.
	r := benchSetup(b)
	m := l3.NewMiner(r.Dir, l3.Config{Stops: r.Opts.Stops})
	store := r.Stores[0]
	b.SetBytes(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mine(store, logmodel.TimeRange{})
	}
	b.ReportMetric(float64(store.Len()*b.N)/b.Elapsed().Seconds(), "entries/s")
}

func BenchmarkBaselineMineHour(b *testing.B) {
	r := benchSetup(b)
	hr := logmodel.TimeRange{
		Start: r.Sim.DayRange(0).Start + 10*logmodel.MillisPerHour,
		End:   r.Sim.DayRange(0).Start + 11*logmodel.MillisPerHour,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Mine(r.Stores[0], hr, nil, baseline.Config{})
	}
}

// --- Parallel mining engine benchmarks (internal/parallel) ------------------
//
// Sequential/Parallel pairs A/B the Workers knob of each miner: Workers: 1
// is the exact sequential path, Workers: 0 fans out over GOMAXPROCS via
// internal/parallel. On a 4+ core machine the parallel variants should show
// a ≥2× speedup; results are bit-identical either way (determinism_test.go).

func benchmarkL1Workers(b *testing.B, workers int) {
	r := benchSetup(b)
	cfg := r.Opts.L1
	cfg.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1.Mine(r.Stores[0], r.Sim.DayRange(0), r.AppNames(), cfg)
	}
}

func BenchmarkL1Sequential(b *testing.B) { benchmarkL1Workers(b, 1) }
func BenchmarkL1Parallel(b *testing.B)   { benchmarkL1Workers(b, 0) }

func benchmarkL2Workers(b *testing.B, workers int) {
	r := benchSetup(b)
	ss, _ := r.SessionsOfDay(0)
	cfg := r.Opts.L2
	cfg.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2.Mine(ss, cfg)
	}
}

func BenchmarkL2Sequential(b *testing.B) { benchmarkL2Workers(b, 1) }
func BenchmarkL2Parallel(b *testing.B)   { benchmarkL2Workers(b, 0) }

func benchmarkL3Workers(b *testing.B, workers int) {
	r := benchSetup(b)
	m := l3.NewMiner(r.Dir, l3.Config{Stops: r.Opts.Stops, Workers: workers})
	store := r.Stores[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mine(store, logmodel.TimeRange{})
	}
	b.ReportMetric(float64(store.Len()*b.N)/b.Elapsed().Seconds(), "entries/s")
}

func BenchmarkL3Sequential(b *testing.B) { benchmarkL3Workers(b, 1) }
func BenchmarkL3Parallel(b *testing.B)   { benchmarkL3Workers(b, 0) }

func benchmarkBaselineWorkers(b *testing.B, workers int) {
	r := benchSetup(b)
	hr := logmodel.TimeRange{
		Start: r.Sim.DayRange(0).Start + 10*logmodel.MillisPerHour,
		End:   r.Sim.DayRange(0).Start + 11*logmodel.MillisPerHour,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Mine(r.Stores[0], hr, nil, baseline.Config{Workers: workers}) //lint:allow cfgzero benchmark measures the worker sweep over package defaults
	}
}

func BenchmarkBaselineSequential(b *testing.B) { benchmarkBaselineWorkers(b, 1) }
func BenchmarkBaselineParallel(b *testing.B)   { benchmarkBaselineWorkers(b, 0) }

// --- Ablation benchmarks (DESIGN.md §5) -------------------------------------

// ablationL1 runs L1 on day 0 with the given config and reports TP/FP.
func ablationL1(b *testing.B, cfg l1.Config) {
	r := benchSetup(b)
	if cfg.MinLogs == 0 {
		cfg.MinLogs = r.Opts.L1.MinLogs
	}
	cfg.Seed = r.Opts.Seed
	b.ResetTimer()
	var conf = r.ScorePairs(nil)
	for i := 0; i < b.N; i++ {
		res := l1.Mine(r.Stores[0], r.Sim.DayRange(0), r.AppNames(), cfg)
		conf = r.ScorePairs(res.DependentPairs())
	}
	b.ReportMetric(float64(conf.TP), "tp")
	b.ReportMetric(float64(conf.FP), "fp")
}

func BenchmarkAblationL1DistanceNearest(b *testing.B) {
	ablationL1(b, l1.Config{Distance: l1.DistNearest})
}

func BenchmarkAblationL1DistanceNext(b *testing.B) {
	ablationL1(b, l1.Config{Distance: l1.DistNext})
}

func BenchmarkAblationL1TwoSided(b *testing.B) {
	ablationL1(b, l1.Config{TwoSided: true})
}

func BenchmarkAblationL1MeanStatistic(b *testing.B) {
	ablationL1(b, l1.Config{Statistic: l1.StatMean})
}

func BenchmarkAblationL1TotalActivityRef(b *testing.B) {
	ablationL1(b, l1.Config{Reference: l1.RefTotalActivity})
}

func BenchmarkAblationL1EqualCountSlots(b *testing.B) {
	r := benchSetup(b)
	cfg := l1.Config{MinLogs: r.Opts.L1.MinLogs, Seed: r.Opts.Seed}
	slots := l1.EqualCountSlots(r.Stores[0], r.Sim.DayRange(0), 24)
	b.ResetTimer()
	var conf = r.ScorePairs(nil)
	for i := 0; i < b.N; i++ {
		res := l1.MineSlots(r.Stores[0], slots, r.AppNames(), cfg)
		conf = r.ScorePairs(res.DependentPairs())
	}
	b.ReportMetric(float64(conf.TP), "tp")
	b.ReportMetric(float64(conf.FP), "fp")
}

func BenchmarkAblationL1GlobalSlot(b *testing.B) {
	// Slotting ablation: one 24-hour slot instead of hourly slots — the
	// §3.1 time-of-day confounder makes everything correlate.
	ablationL1(b, l1.Config{SlotWidth: 24 * logmodel.MillisPerHour, ThS: 0.04})
}

func BenchmarkAblationL2MeasureG2(b *testing.B) {
	r := benchSetup(b)
	ss, _ := r.SessionsOfDay(0)
	b.ResetTimer()
	var conf = r.ScorePairs(nil)
	for i := 0; i < b.N; i++ {
		conf = r.ScorePairs(l2.Mine(ss, l2.Config{Measure: l2.MeasureG2}).DependentPairs())
	}
	b.ReportMetric(float64(conf.TP), "tp")
	b.ReportMetric(float64(conf.FP), "fp")
}

func BenchmarkAblationL2MeasurePearson(b *testing.B) {
	r := benchSetup(b)
	ss, _ := r.SessionsOfDay(0)
	b.ResetTimer()
	var conf = r.ScorePairs(nil)
	for i := 0; i < b.N; i++ {
		conf = r.ScorePairs(l2.Mine(ss, l2.Config{Measure: l2.MeasurePearson}).DependentPairs())
	}
	b.ReportMetric(float64(conf.TP), "tp")
	b.ReportMetric(float64(conf.FP), "fp")
}

func BenchmarkAblationL3WithStops(b *testing.B) {
	r := benchSetup(b)
	m := l3.NewMiner(r.Dir, l3.Config{Stops: r.Opts.Stops})
	b.ResetTimer()
	var conf = r.ScoreDeps(nil)
	for i := 0; i < b.N; i++ {
		conf = r.ScoreDeps(m.Mine(r.Stores[0], logmodel.TimeRange{}).Dependencies())
	}
	b.ReportMetric(float64(conf.TP), "tp")
	b.ReportMetric(float64(conf.FP), "fp")
}

func BenchmarkAblationL3NoStops(b *testing.B) {
	r := benchSetup(b)
	m := l3.NewMiner(r.Dir, l3.Config{})
	b.ResetTimer()
	var conf = r.ScoreDeps(nil)
	for i := 0; i < b.N; i++ {
		conf = r.ScoreDeps(m.Mine(r.Stores[0], logmodel.TimeRange{}).Dependencies())
	}
	b.ReportMetric(float64(conf.TP), "tp")
	b.ReportMetric(float64(conf.FP), "fp")
}

// BenchmarkAblationBaselineVsL1 compares the related-work baseline to L1
// on the same day and universe.
func BenchmarkAblationBaselineVsL1(b *testing.B) {
	r := benchSetup(b)
	hr := r.Sim.DayRange(0)
	b.ResetTimer()
	var conf = r.ScorePairs(nil)
	for i := 0; i < b.N; i++ {
		res := baseline.Mine(r.Stores[0], hr, r.AppNames(), baseline.Config{})
		conf = r.ScorePairs(res.DependentPairs())
	}
	b.ReportMetric(float64(conf.TP), "tp")
	b.ReportMetric(float64(conf.FP), "fp")
}

// BenchmarkDirectionHints measures the §5 direction heuristic over the
// day's dependent pairs.
func BenchmarkDirectionHints(b *testing.B) {
	r := benchSetup(b)
	ss, _ := r.SessionsOfDay(0)
	pairs := l2.Mine(ss, r.Opts.L2).DependentPairs()
	b.ResetTimer()
	var decided int
	for i := 0; i < b.N; i++ {
		hints := l2.DirectionHints(ss, pairs, logmodel.MillisPerSecond)
		decided = 0
		for _, h := range hints {
			if h.Caller() != "" {
				decided++
			}
		}
	}
	b.ReportMetric(float64(decided), "decided")
}

// BenchmarkDelayAnalysis measures the §5 causal/concurrent classifier over
// the day's dependent pair types.
func BenchmarkDelayAnalysis(b *testing.B) {
	r := benchSetup(b)
	ss, _ := r.SessionsOfDay(0)
	res := l2.Mine(ss, r.Opts.L2)
	types := make(map[l2.Bigram]bool)
	for t, tr := range res.Types {
		if tr.Significant {
			types[t] = true
		}
	}
	b.ResetTimer()
	var peaked int
	for i := 0; i < b.N; i++ {
		out := l2.ClassifyPairs(ss, types, l2.DelayConfig{})
		peaked = 0
		for _, d := range out {
			if d.Peaked {
				peaked++
			}
		}
	}
	b.ReportMetric(float64(peaked), "causal-types")
	b.ReportMetric(float64(len(types)), "types")
}

// --- Streaming benchmarks (internal/stream) ---------------------------------
//
// Stream/Batch pairs A/B the incremental window maintenance against
// re-mining every window from scratch, on the same day and window
// sequence; both report ns/advance (one advance = one bucket entering the
// window plus a full model snapshot). The incremental Advance cost scales
// with the bucket, not the window, so the stream variants stay flat as the
// WindowScaling sub-benchmarks widen the window while the batch references
// grow linearly with it.

func streamWcfg(w int) stream.Config {
	return stream.Config{
		BucketWidth:   logmodel.MillisPerHour,
		WindowBuckets: w,
		Workers:       0,
	}
}

func mkStreamL1(r *eval.Runner, wcfg stream.Config) stream.Miner {
	cfg := r.Opts.L1
	cfg.Workers = wcfg.Workers
	return stream.NewL1(wcfg, cfg)
}

func mkStreamL2(r *eval.Runner, wcfg stream.Config) stream.Miner {
	cfg := r.Opts.L2
	cfg.Workers = wcfg.Workers
	return stream.NewL2(wcfg, sessions.Config{}, cfg)
}

func mkStreamL3(r *eval.Runner, wcfg stream.Config) stream.Miner {
	return stream.NewL3(wcfg, l3.NewMiner(r.Dir, l3.Config{Stops: r.Opts.Stops, Workers: wcfg.Workers}))
}

// benchmarkStreaming replays day 0 through a fresh stream miner per
// iteration, snapshotting on every bucket advance.
func benchmarkStreaming(b *testing.B, mk func(*eval.Runner, stream.Config) stream.Miner, w int) {
	r := benchSetup(b)
	entries := r.Stores[0].Entries()
	wcfg := streamWcfg(w)
	b.ResetTimer()
	advances := 0
	for i := 0; i < b.N; i++ {
		m := mk(r, wcfg)
		in := stream.NewIngester(wcfg, m)
		advances = 0
		in.OnAdvance = func(stream.Bucket) { m.Snapshot(); advances++ }
		in.AddAll(entries)
		in.Flush()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*advances), "ns/advance")
}

// benchmarkBatchWindows is the non-incremental reference: the same window
// sequence, each window batch-mined from scratch.
func benchmarkBatchWindows(b *testing.B, mk func(*eval.Runner, stream.Config) stream.Miner, w int) {
	r := benchSetup(b)
	entries := r.Stores[0].Entries()
	wcfg := streamWcfg(w)
	m := mk(r, wcfg)
	type windowCase struct {
		store *logmodel.Store
		r     logmodel.TimeRange
	}
	var wins []windowCase
	in := stream.NewIngester(wcfg)
	in.OnAdvance = func(stream.Bucket) {
		wins = append(wins, windowCase{store: in.WindowStore(), r: in.WindowRange()})
	}
	in.AddAll(entries)
	in.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, wc := range wins {
			m.Batch(wc.store, wc.r)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(wins)), "ns/advance")
}

func BenchmarkStreamL1Advance(b *testing.B)        { benchmarkStreaming(b, mkStreamL1, 6) }
func BenchmarkStreamL1BatchReference(b *testing.B) { benchmarkBatchWindows(b, mkStreamL1, 6) }
func BenchmarkStreamL2Advance(b *testing.B)        { benchmarkStreaming(b, mkStreamL2, 6) }
func BenchmarkStreamL2BatchReference(b *testing.B) { benchmarkBatchWindows(b, mkStreamL2, 6) }
func BenchmarkStreamL3Advance(b *testing.B)        { benchmarkStreaming(b, mkStreamL3, 6) }
func BenchmarkStreamL3BatchReference(b *testing.B) { benchmarkBatchWindows(b, mkStreamL3, 6) }

// BenchmarkStreamWindowScaling widens the window with the workload fixed:
// ns/advance must stay flat for the incremental miner and grow ~linearly
// for the batch reference.
func BenchmarkStreamWindowScaling(b *testing.B) {
	for _, w := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("stream-w%d", w), func(b *testing.B) { benchmarkStreaming(b, mkStreamL1, w) })
		b.Run(fmt.Sprintf("batch-w%d", w), func(b *testing.B) { benchmarkBatchWindows(b, mkStreamL1, w) })
	}
}

// --- Ingestion hot-path benchmarks (the bench-gate set) ---------------------
//
// BenchmarkIngestE2E is the headline entries/sec/core number: the synthetic
// week rendered to wire format once, then each iteration drives the full
// parse → bucket path (Feeder line assembly, wire parsing, Ingester
// bucketing and bucket-close sorts) over the rendered bytes on one
// goroutine, so entries/s is entries/sec/core. No miners are attached: this
// isolates the ingestion ceiling everything above it rides on. The ns/op of
// this benchmark is compared against BENCH_BASELINE.json by the CI
// bench-gate job (see cmd/benchjson compare).
func BenchmarkIngestE2E(b *testing.B) {
	r := benchSetup(b)
	var buf bytes.Buffer
	entries := 0
	for d := 0; d < 7; d++ {
		if err := logmodel.WriteAll(&buf, r.Stores[d]); err != nil {
			b.Fatal(err)
		}
		entries += r.Stores[d].Len()
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var stats stream.IngestStats
	for i := 0; i < b.N; i++ {
		in := stream.NewIngester(stream.Config{
			BucketWidth:    logmodel.MillisPerHour,
			WindowBuckets:  24,
			Workers:        1,
			RecycleBuckets: true,
		})
		f := stream.NewFeeder(in, stream.FeederConfig{})
		if err := f.Run(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
		in.Flush()
		stats = in.Stats()
	}
	if stats.Accepted != entries {
		b.Fatalf("ingested %d entries, want %d", stats.Accepted, entries)
	}
	b.ReportMetric(float64(entries*b.N)/b.Elapsed().Seconds(), "entries/s")
}

// BenchmarkSlotTest measures the core L1 primitive.
func BenchmarkSlotTest(b *testing.B) {
	r := benchSetup(b)
	hr := logmodel.TimeRange{
		Start: r.Sim.DayRange(0).Start + 10*logmodel.MillisPerHour,
		End:   r.Sim.DayRange(0).Start + 11*logmodel.MillisPerHour,
	}
	idx := r.Stores[0].SourceIndexRange(hr)
	a := idx["DPIFormidoc"]
	c := idx["DPIPublication"]
	rng := rand.New(rand.NewSource(1))
	cfg := r.Opts.L1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1.SlotTest(rng, a, c, hr, cfg)
	}
}
