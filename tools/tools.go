//go:build tools

// Pinned development tools (the go.mod tools pattern, build-gated so the
// stdlib-only module never compiles or downloads them). CI installs the
// same versions via `go install <path>@<version>`; the pins live in
// .github/workflows/ci.yml as STATICCHECK_VERSION and GOVULNCHECK_VERSION
// and must be bumped together with this file:
//
//	honnef.co/go/tools/cmd/staticcheck @ 2024.1.1
//	golang.org/x/vuln/cmd/govulncheck  @ v1.1.3
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
