// Package tools pins the versions of the development tools CI installs
// (staticcheck, govulncheck). The module itself is dependency-free, so the
// canonical go.mod tools pattern — blank imports pulling the tools into
// go.sum — would add third-party modules to an otherwise stdlib-only build;
// instead tools.go (build-tagged, never compiled) records the blank imports
// and the pinned versions, and .github/workflows/ci.yml installs exactly
// those versions. Bump the pins in both files together.
package tools
