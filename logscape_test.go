package logscape_test

import (
	"bytes"
	"strings"
	"testing"

	"logscape"
)

func TestReadWriteLogsRoundTrip(t *testing.T) {
	tb := logscape.NewTestbed(3, 0.02, 1)
	store := tb.Day(0)
	var buf bytes.Buffer
	if err := logscape.WriteLogs(&buf, store); err != nil {
		t.Fatal(err)
	}
	got, err := logscape.ReadLogs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != store.Len() {
		t.Fatalf("round trip: %d vs %d entries", got.Len(), store.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.At(i) != store.At(i) {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestReadDirectory(t *testing.T) {
	tb := logscape.NewTestbed(3, 0.02, 1)
	var buf bytes.Buffer
	if err := tb.Directory().Write(&buf); err != nil {
		t.Fatal(err)
	}
	dir, err := logscape.ReadDirectory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dir.Groups) != 47 {
		t.Errorf("groups = %d", len(dir.Groups))
	}
	if _, err := logscape.ReadDirectory(strings.NewReader("junk")); err == nil {
		t.Error("expected error for junk directory")
	}
}

func TestTestbedGroundTruth(t *testing.T) {
	tb := logscape.NewTestbed(3, 0.02, 2)
	if tb.Days() != 2 {
		t.Errorf("Days = %d", tb.Days())
	}
	if got := len(tb.TrueDeps()); got != 177 {
		t.Errorf("true deps = %d", got)
	}
	if got := len(tb.Apps()); got != 54 {
		t.Errorf("apps = %d", got)
	}
	owners := tb.GroupOwners()
	if len(owners) != 47 {
		t.Errorf("owners = %d", len(owners))
	}
	for d := range tb.TrueDeps() {
		if owners[d.Group] == "" {
			t.Fatalf("dependency %v targets unknown group", d)
		}
	}
	if tb.PairUniverse() != 1431 || tb.DepUniverse() != 54*47 {
		t.Errorf("universes = %d, %d", tb.PairUniverse(), tb.DepUniverse())
	}
	if tb.IsWeekend(0) {
		t.Error("day 0 (Tuesday) flagged as weekend")
	}
	if tb.DayRange(1).Start != tb.DayRange(0).End {
		t.Error("day ranges not contiguous")
	}
}

func TestPublicEndToEndL3(t *testing.T) {
	tb := logscape.NewTestbed(5, 0.05, 1)
	m := logscape.NewL3Miner(tb.Directory(), logscape.L3Config{Stops: tb.StopPatterns()})
	deps := m.Mine(tb.Day(0), logscape.TimeRange{}).Dependencies()
	if len(deps) == 0 {
		t.Fatal("no dependencies mined")
	}
	conf := logscape.CompareAppService(deps, tb.TrueDeps(), tb.DepUniverse())
	if conf.Precision() < 0.8 {
		t.Errorf("precision = %.2f", conf.Precision())
	}
}

func TestPublicEndToEndL2(t *testing.T) {
	tb := logscape.NewTestbed(5, 0.2, 1)
	ss, stats := logscape.BuildSessions(tb.Day(0), logscape.SessionConfig{})
	if stats.Sessions == 0 {
		t.Fatal("no sessions")
	}
	pairs := logscape.MineL2(ss, logscape.L2Config{}).DependentPairs()
	if len(pairs) == 0 {
		t.Fatal("no pairs mined")
	}
	conf := logscape.ComparePairs(pairs, tb.TruePairs(), tb.PairUniverse())
	if conf.Precision() < 0.6 {
		t.Errorf("precision = %.2f (tp=%d fp=%d)", conf.Precision(), conf.TP, conf.FP)
	}
}

func TestPublicEndToEndL1(t *testing.T) {
	tb := logscape.NewTestbed(5, 0.5, 1)
	store := tb.Day(0)
	res := logscape.MineL1(store, tb.DayRange(0), tb.Apps(), logscape.L1Config{MinLogs: 8})
	pairs := res.DependentPairs()
	conf := logscape.ComparePairs(pairs, tb.TruePairs(), tb.PairUniverse())
	if conf.TP == 0 {
		t.Error("L1 found nothing on a half-scale day")
	}
	if conf.FalsePositiveRate() > 0.03 {
		t.Errorf("L1 FPR = %.3f", conf.FalsePositiveRate())
	}
}

func TestPublicBaseline(t *testing.T) {
	tb := logscape.NewTestbed(5, 0.2, 1)
	store := tb.Day(0)
	hour := logscape.TimeRange{
		Start: tb.DayRange(0).Start + 10*logscape.MillisPerHour,
		End:   tb.DayRange(0).Start + 11*logscape.MillisPerHour,
	}
	res := logscape.MineBaseline(store, hour, tb.Apps(), logscape.BaselineConfig{})
	if len(res.Ordered) == 0 {
		t.Fatal("baseline tested nothing")
	}
}

func TestMakePairFacade(t *testing.T) {
	if logscape.MakePair("z", "a") != logscape.MakePair("a", "z") {
		t.Error("MakePair not symmetric")
	}
}
