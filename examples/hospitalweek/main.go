// Hospitalweek runs the paper's §4.5–4.8 evaluation in miniature: simulate
// the full test week, mine every day with all three techniques (plus the
// Agrawal et al. baseline on one day), and print per-day true/false
// positives for each, reproducing the shape of figures 5, 6 and 8.
package main

import (
	"fmt"

	"logscape"
)

func main() {
	tb := logscape.NewTestbed(2005, 0.5, 7)
	truePairs := tb.TruePairs()
	trueDeps := tb.TrueDeps()

	l3m := logscape.NewL3Miner(tb.Directory(), logscape.L3Config{Stops: tb.StopPatterns()})

	fmt.Println("day  weekend  L1 TP/FP   L2 TP/FP   L3 TP/FP")
	for d := 0; d < tb.Days(); d++ {
		store := tb.Day(d)
		dayRange := tb.DayRange(d)

		// L1: logs as an activity measure.
		l1res := logscape.MineL1(store, dayRange, tb.Apps(), logscape.L1Config{MinLogs: 8})
		c1 := logscape.ComparePairs(l1res.DependentPairs(), truePairs, tb.PairUniverse())

		// L2: co-occurrence over user sessions.
		ss, _ := logscape.BuildSessions(store, logscape.SessionConfig{})
		l2res := logscape.MineL2(ss, logscape.L2Config{})
		c2 := logscape.ComparePairs(l2res.DependentPairs(), truePairs, tb.PairUniverse())

		// L3: free-text citations.
		deps := l3m.Mine(store, logscape.TimeRange{}).Dependencies()
		c3 := logscape.CompareAppService(deps, trueDeps, tb.DepUniverse())

		we := ""
		if tb.IsWeekend(d) {
			we = "yes"
		}
		fmt.Printf("%-4d %-8s %3d/%-3d    %3d/%-3d    %3d/%-3d\n",
			d, we, c1.TP, c1.FP, c2.TP, c2.FP, c3.TP, c3.FP)
	}

	// The related-work baseline on the first day, for comparison with L1.
	store := tb.Day(0)
	base := logscape.MineBaseline(store, tb.DayRange(0), tb.Apps(), logscape.BaselineConfig{})
	cb := logscape.ComparePairs(base.DependentPairs(), truePairs, tb.PairUniverse())
	fmt.Printf("\nAgrawal-style baseline on day 0: TP=%d FP=%d (precision %.2f)\n",
		cb.TP, cb.FP, cb.Precision())
	fmt.Println("\nThe paper's ordering holds: precision grows with the semantic")
	fmt.Println("content used, L3 > L2 > L1, while L1 needs nothing but timestamps.")
}
