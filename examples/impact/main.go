// Impact demonstrates what a mined dependency model is *for* (§1.1 of the
// paper): fault localization, impact prediction and availability
// requirements. It mines a day of simulated hospital logs with L3, builds
// the dependency graph, and answers the operational questions an on-call
// engineer would ask.
package main

import (
	"fmt"

	"logscape"
)

func main() {
	tb := logscape.NewTestbed(2005, 0.2, 1)
	store := tb.Day(0)
	m := logscape.NewL3Miner(tb.Directory(), logscape.L3Config{Stops: tb.StopPatterns()})
	deps := m.Mine(store, logscape.TimeRange{}).Dependencies()
	g := logscape.GraphFromDeps(deps, tb.GroupOwners())
	fmt.Printf("mined dependency graph: %d components, %d edges\n\n",
		len(g.Nodes()), g.NumEdges())

	// Availability requirements: which components hurt the most when down?
	fmt.Println("most critical components (by transitive impact):")
	for i, c := range g.CriticalityRanking() {
		if i == 5 {
			break
		}
		fmt.Printf("  %-20s would affect %d components\n", c.Node, c.ImpactSize)
	}

	// Impact prediction for a planned maintenance window.
	target := g.CriticalityRanking()[0].Node
	fmt.Printf("\nplanned downtime of %s would affect:\n  %v\n", target, g.Impact(target))

	// Root-cause candidates for a degraded front end.
	const sick = "DPIFormidoc"
	fmt.Printf("\n%s is slow — transitive suspects:\n  %v\n", sick, g.RootCauses(sick))

	// Architecture sanity: cycles are integration smells.
	if cycle, ok := g.Cycles(); ok {
		fmt.Printf("\nWARNING: dependency cycle: %v\n", cycle)
	} else if layers, err := g.Layers(); err == nil {
		fmt.Printf("\nthe mined graph is acyclic with %d layers", len(layers))
		fmt.Printf(" (layer 0 = pure providers: %v)\n", layers[0])
	}
}
