// Loadstudy reproduces the §4.9 experiment in miniature: using L3 as a
// dynamic ground truth, it measures per hour how many of the realized
// dependencies approaches L1 and L2 rediscover, and relates that to the
// system load — showing that L1 degrades under load while L2 does not.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"logscape"
)

// clip restricts sessions to entries inside the range, keeping fragments
// with at least two entries.
func clip(ss []logscape.Session, hr logscape.TimeRange) []logscape.Session {
	var out []logscape.Session
	for i := range ss {
		es := ss[i].Entries
		lo, hi := 0, len(es)
		for lo < hi && es[lo].Time < hr.Start {
			lo++
		}
		for hi > lo && es[hi-1].Time >= hr.End {
			hi--
		}
		if hi-lo >= 2 {
			out = append(out, logscape.Session{User: ss[i].User, Entries: es[lo:hi]})
		}
	}
	return out
}

func main() {
	tb := logscape.NewTestbed(2005, 1, 3)
	l3m := logscape.NewL3Miner(tb.Directory(), logscape.L3Config{Stops: tb.StopPatterns()})
	owners := tb.GroupOwners()
	rng := rand.New(rand.NewSource(9))

	type hourObs struct {
		logs     int
		p1, p2   float64
		realized int
	}
	var obs []hourObs

	for d := 0; d < tb.Days(); d++ {
		store := tb.Day(d)
		ss, _ := logscape.BuildSessions(store, logscape.SessionConfig{})
		for _, hr := range tb.DayRange(d).Hours() {
			logs := store.CountRange(hr)
			// Dynamic ground truth: dependencies L3 sees realized this hour,
			// as application pairs.
			pairs := make(logscape.PairSet)
			for dep := range l3m.Mine(store, hr).Dependencies() {
				owner := owners[dep.Group]
				if owner != "" && owner != dep.App && tb.TrueDeps()[dep] {
					pairs[logscape.MakePair(dep.App, owner)] = true
				}
			}
			if len(pairs) < 8 {
				continue
			}
			// L1 on the single hour.
			res1 := logscape.MineL1(store, hr, tb.Apps(), logscape.L1Config{
				MinLogs: 10, SlotWidth: hr.Duration(), ThS: 0.01, Seed: rng.Int63(),
			})
			dep1 := res1.DependentPairs()
			// L2 on the hour's sessions.
			hourSessions := clip(ss, hr)
			dep2 := logscape.MineL2(hourSessions, logscape.L2Config{}).DependentPairs()

			found1, found2 := 0, 0
			for p := range pairs {
				if dep1[p] {
					found1++
				}
				if dep2[p] {
					found2++
				}
			}
			obs = append(obs, hourObs{
				logs: logs, realized: len(pairs),
				p1: float64(found1) / float64(len(pairs)),
				p2: float64(found2) / float64(len(pairs)),
			})
		}
	}

	sort.Slice(obs, func(i, j int) bool { return obs[i].logs < obs[j].logs })
	fmt.Println("hourly observations sorted by load (number of logs):")
	fmt.Println("logs    realized  p1     p2")
	for i, o := range obs {
		if i%4 != 0 { // thin the listing
			continue
		}
		fmt.Printf("%-7d %-9d %.2f   %.2f\n", o.logs, o.realized, o.p1, o.p2)
	}
	lo, hi := obs[:len(obs)/3], obs[2*len(obs)/3:]
	mean := func(os []hourObs, f func(hourObs) float64) float64 {
		var s float64
		for _, o := range os {
			s += f(o)
		}
		return s / float64(len(os))
	}
	p1 := func(o hourObs) float64 { return o.p1 }
	p2 := func(o hourObs) float64 { return o.p2 }
	fmt.Printf("\nmean p1: %.2f at low load vs %.2f at high load (degrades under load)\n",
		mean(lo, p1), mean(hi, p1))
	fmt.Printf("mean p2: %.2f at low load vs %.2f at high load (does not degrade)\n",
		mean(lo, p2), mean(hi, p2))
	fmt.Println("\ninternal/eval.Figure9 runs the full regression analysis of §4.9,")
	fmt.Println("with testability conditioning and slope confidence intervals.")
}
