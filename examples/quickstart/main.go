// Quickstart: simulate a small day of hospital logs, mine the
// application→service dependencies with approach L3 (free-text citations
// against the service directory), and print the model with its accuracy
// against the ground truth.
package main

import (
	"fmt"

	"logscape"
)

func main() {
	// A 1/10-volume single day is plenty for a first look.
	tb := logscape.NewTestbed(42, 0.1, 1)
	store := tb.Day(0)
	fmt.Printf("simulated %d log entries from %d applications\n",
		store.Len(), len(store.Sources()))

	// L3: scan the free text of every log for citations of service
	// directory entries; stop patterns suppress server-side echoes.
	miner := logscape.NewL3Miner(tb.Directory(), logscape.L3Config{
		Stops: tb.StopPatterns(),
	})
	deps := miner.Mine(store, logscape.TimeRange{}).Dependencies()

	conf := logscape.CompareAppService(deps, tb.TrueDeps(), tb.DepUniverse())
	fmt.Printf("mined %d dependencies: precision %.2f, recall %.2f\n\n",
		len(deps), conf.Precision(), conf.Recall())

	for i, d := range deps.SortedPairs() {
		marker := " "
		if !tb.TrueDeps()[d] {
			marker = "?" // a false positive — see the paper's §4.8 taxonomy
		}
		fmt.Printf("%s %-18s -> %s\n", marker, d.App, d.Group)
		if i == 19 {
			fmt.Printf("  ... and %d more\n", len(deps)-20)
			break
		}
	}
}
