// Banking demonstrates approach L2 outside the hospital domain — the
// paper's §5 points at online banking as a setting where complete session
// traces are logged. The example builds a synthetic session corpus of a
// small online bank (login → accounts → transfer flows with a fraud check
// riding along asynchronously), mines it with the co-occurrence technique
// at several timeouts, and prints the discovered application pairs.
package main

import (
	"fmt"
	"math/rand"

	"logscape"
)

// buildCorpus simulates n online-banking sessions: the web frontend calls
// the auth service, then account queries, and on transfers the payment
// engine, which asynchronously triggers the fraud scorer.
func buildCorpus(n int, seed int64) []logscape.Session {
	rng := rand.New(rand.NewSource(seed))
	var out []logscape.Session
	for i := 0; i < n; i++ {
		user := fmt.Sprintf("cust%04d", rng.Intn(500))
		t := logscape.Millis(i) * 2 * logscape.MillisPerMinute
		var es []logscape.Entry
		log := func(dt logscape.Millis, src, msg string) {
			es = append(es, logscape.Entry{
				Time: t + dt, Source: src, Host: "web", User: user, Message: msg,
			})
		}
		// Login flow: frontend → auth.
		log(0, "WebFrontend", "login request")
		log(40, "AuthService", "credentials verified")
		log(90, "WebFrontend", "session established")
		// Account overview: frontend → accounts.
		log(4000, "WebFrontend", "account overview requested")
		log(4060, "AccountService", "balances fetched")
		// Some sessions make a transfer: frontend → payments (async fraud).
		if rng.Float64() < 0.6 {
			log(9000, "WebFrontend", "transfer submitted")
			log(9080, "PaymentEngine", "transfer queued")
			// The fraud scorer runs asynchronously, 2–8 s later.
			fraudDelay := logscape.Millis(2000 + rng.Intn(6000))
			log(9000+fraudDelay, "FraudScorer", "transaction scored")
			log(9150, "WebFrontend", "transfer confirmation shown")
		}
		// Unrelated marketing banner service appears at random moments.
		if rng.Float64() < 0.5 {
			log(logscape.Millis(rng.Intn(12000)), "BannerService", "campaign banner served")
		}
		out = append(out, logscape.Session{User: user, Entries: sorted(es)})
	}
	return out
}

func sorted(es []logscape.Entry) []logscape.Entry {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Time < es[j-1].Time; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
	return es
}

func main() {
	corpus := buildCorpus(400, 7)
	fmt.Printf("mining %d online-banking sessions\n\n", len(corpus))

	for _, timeout := range []float64{0.2, 1, 0} {
		cfg := logscape.L2Config{}
		if timeout == 0 {
			cfg.Timeout = -1 // infinity
			fmt.Println("timeout = infinity:")
		} else {
			cfg.Timeout = logscape.Millis(timeout * 1000)
			fmt.Printf("timeout = %.1fs:\n", timeout)
		}
		res := logscape.MineL2(corpus, cfg)
		for _, p := range res.DependentPairs().SortedPairs() {
			fmt.Printf("  %s -- %s\n", p.A, p.B)
		}
		fmt.Println()
	}

	fmt.Println("Note how the asynchronous FraudScorer link only appears once the")
	fmt.Println("timeout admits multi-second gaps — and how an unbounded timeout")
	fmt.Println("starts connecting unrelated services (the banner). This is the")
	fmt.Println("trade-off the paper quantifies in figure 7 and table 2.")
}
