package logscape_test

// Golden batch-vs-stream equivalence harness: the streaming miners'
// contract (internal/stream) is that after every window advance, Snapshot
// serializes byte-identically to the corresponding batch miner run over a
// store holding exactly the window's entries. The harness drives a
// simulated testbed day through the ingester bucket by bucket and checks
// the contract on every prefix window, for Workers: 1 and Workers: 8, for
// all three techniques at once. It extends the worker-equivalence suite of
// determinism_test.go into the time dimension: not just "same result for
// any worker count" but "same result no matter how the window got there".

import (
	"bytes"
	"testing"

	"logscape"
	"logscape/internal/core"
)

// serializeDoc renders a model document canonically.
func serializeDoc(t *testing.T, d core.ModelDocument) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.WriteModel(&buf, d); err != nil {
		t.Fatalf("serialize %s document: %v", d.Technique, err)
	}
	return buf.Bytes()
}

// streamRun holds the per-advance snapshots of one full ingestion run.
type streamRun struct {
	buckets   []int64
	snapshots map[string][][]byte // technique → snapshot bytes per advance
}

// runStreamDay streams one testbed day through all three miners and
// records, per advance, the snapshot bytes and — when checkBatch — compares
// them against the batch reference over the ingester's window store.
func runStreamDay(t *testing.T, workers int, checkBatch bool) streamRun {
	t.Helper()
	tb := logscape.NewTestbed(11, 0.1, 1)
	store := tb.Day(0)

	wcfg := logscape.StreamConfig{
		BucketWidth:   logscape.Millis(3600_000),
		WindowBuckets: 6,
		Workers:       workers,
	}
	miners := map[string]logscape.StreamMiner{
		"l1": logscape.NewL1Stream(wcfg, logscape.L1Config{MinLogs: 8, Seed: 11, Workers: workers}),
		"l2": logscape.NewL2Stream(wcfg, logscape.SessionConfig{}, logscape.L2Config{Workers: workers}), //lint:allow cfgzero stream-equivalence test exercises package defaults
		"l3": logscape.NewL3Stream(wcfg, logscape.NewL3Miner(tb.Directory(), logscape.L3Config{
			Stops:        tb.StopPatterns(),
			MinCitations: 1,
			Owner:        tb.GroupOwners(),
			Workers:      workers,
		})),
	}
	order := []string{"l1", "l2", "l3"}

	run := streamRun{snapshots: map[string][][]byte{}}
	ing := logscape.NewIngester(wcfg, miners["l1"], miners["l2"], miners["l3"])
	ing.OnAdvance = func(b logscape.StreamBucket) {
		run.buckets = append(run.buckets, b.Index)
		win := ing.WindowStore()
		r := ing.WindowRange()
		for _, tech := range order {
			snap := serializeDoc(t, miners[tech].Snapshot())
			run.snapshots[tech] = append(run.snapshots[tech], snap)
			if checkBatch {
				batch := serializeDoc(t, miners[tech].Batch(win, r))
				if !bytes.Equal(snap, batch) {
					t.Errorf("workers=%d %s: snapshot after bucket %d differs from batch over the same window\nstream: %s\nbatch:  %s",
						workers, tech, b.Index, snap, batch)
				}
			}
		}
	}
	ing.AddAll(store.Entries())
	ing.Flush()

	if got := len(run.buckets); got < 20 {
		t.Fatalf("workers=%d: expected ~24 bucket advances over a day, got %d", workers, got)
	}
	if s := ing.Stats(); s.Late != 0 || s.Corrupt != 0 {
		t.Errorf("workers=%d: simulator stream should ingest losslessly, got %+v", workers, s)
	}
	return run
}

// TestStreamBatchEquivalence checks the byte-equivalence contract on every
// prefix window of a simulated day, sequentially and sharded.
func TestStreamBatchEquivalence(t *testing.T) {
	seq := runStreamDay(t, 1, true)
	par := runStreamDay(t, 8, false)

	// The advance sequences and every per-advance snapshot must also agree
	// across worker counts (the determinism contract, extended to
	// streaming).
	if len(seq.buckets) != len(par.buckets) {
		t.Fatalf("advance counts differ: %d vs %d", len(seq.buckets), len(par.buckets))
	}
	for _, tech := range []string{"l1", "l2", "l3"} {
		a, b := seq.snapshots[tech], par.snapshots[tech]
		if len(a) != len(b) {
			t.Fatalf("%s: snapshot counts differ: %d vs %d", tech, len(a), len(b))
		}
		for i := range a {
			requireSameBytes(t, tech, a[i], b[i])
		}
	}

	// The mined window models must not be degenerate for the whole day:
	// at least one advance has to produce a non-empty L1/L2 model and L3
	// must find citations (otherwise the harness proves nothing).
	for _, tech := range []string{"l1", "l2", "l3"} {
		some := false
		for _, snap := range seq.snapshots[tech] {
			if bytes.Contains(snap, []byte(`"pairs"`)) || bytes.Contains(snap, []byte(`"deps"`)) {
				some = true
				break
			}
		}
		if !some {
			t.Errorf("%s: every window snapshot of the day is empty; harness is vacuous", tech)
		}
	}
}
