module logscape

go 1.22
