package eval

import (
	"math/rand"
	"sort"

	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
	"logscape/internal/stats"
)

// Figures 1–4 are the paper's illustrative figures; eval regenerates their
// underlying data from the simulation.

// Figure1Result is the data of figure 1: logs per second for two
// interacting applications over an interval.
type Figure1Result struct {
	AppA, AppB string
	Range      logmodel.TimeRange
	// SeriesA and SeriesB are per-second log counts.
	SeriesA, SeriesB []int
	// Correlation is the Pearson correlation of the two series — the
	// "periods of high and low activity are correlated" observation.
	Correlation float64
}

// bestWindow returns the sub-window of the given width in which the two
// applications are jointly most active on the day (maximizing the smaller
// of the two log counts).
func (r *Runner) bestWindow(day int, appA, appB string, width logmodel.Millis) logmodel.TimeRange {
	store := r.Stores[day]
	dayRange := r.Sim.DayRange(day)
	best := logmodel.TimeRange{Start: dayRange.Start, End: dayRange.Start + width}
	bestScore := -1
	for _, w := range dayRange.Split(width / 2) {
		win := logmodel.TimeRange{Start: w.Start, End: w.Start + width}
		if win.End > dayRange.End {
			break
		}
		na, nb := 0, 0
		for _, e := range store.Range(win) {
			switch e.Source {
			case appA:
				na++
			case appB:
				nb++
			}
		}
		score := na
		if nb < na {
			score = nb
		}
		if score > bestScore {
			bestScore = score
			best = win
		}
	}
	return best
}

// Figure1 extracts the activity series of the flavor pair (DPIFormidoc,
// DPIPublication) over the given range of a day. A zero window selects the
// ten minutes in which the pair is jointly most active.
func (r *Runner) Figure1(day int, window logmodel.TimeRange) Figure1Result {
	if window == (logmodel.TimeRange{}) {
		window = r.bestWindow(day, "DPIFormidoc", "DPIPublication", 10*logmodel.MillisPerMinute)
	}
	store := r.Stores[day]
	res := Figure1Result{
		AppA:    "DPIFormidoc",
		AppB:    "DPIPublication",
		Range:   window,
		SeriesA: store.ActivitySeries("DPIFormidoc", window, logmodel.MillisPerSecond),
		SeriesB: store.ActivitySeries("DPIPublication", window, logmodel.MillisPerSecond),
	}
	a := make([]float64, len(res.SeriesA))
	b := make([]float64, len(res.SeriesB))
	for i := range a {
		a[i] = float64(res.SeriesA[i])
		b[i] = float64(res.SeriesB[i])
	}
	res.Correlation = stats.Correlation(a, b)
	return res
}

// Figure2Result is the data of figure 2: for both orderings of the pair,
// the boxplot five-number summaries of the random sample S_r and the
// candidate sample S_b, with 95% and 99% median confidence intervals.
type Figure2Result struct {
	AppA, AppB string
	Slot       logmodel.TimeRange
	// Directions holds the two orderings: index 0 has AppA in the
	// reference role (distances measured to AppA's logs), index 1 the
	// reverse.
	Directions [2]Figure2Direction
}

// Figure2Direction is one of the two plots of figure 2.
type Figure2Direction struct {
	// Reference and Candidate name the role assignment.
	Reference, Candidate string
	// RandomBox and CandidateBox are the boxplot summaries.
	RandomBox, CandidateBox stats.FiveNum
	// RandomCI95/99 and CandidateCI95/99 are the median CIs at both
	// levels drawn in the figure.
	RandomCI95, RandomCI99, CandidateCI95, CandidateCI99 stats.CI
	// Positive reports whether the 95% candidate interval lies below the
	// random one (the dependence conclusion).
	Positive bool
}

// Figure2 reproduces figure 2 for the flavor pair: like the paper, it
// illustrates the per-slot test on an hour where the interaction is clearly
// visible. It scans the day's hours in order of joint activity and returns
// the first whose test is positive in both directions, falling back to the
// busiest hour.
func (r *Runner) Figure2(day int) Figure2Result {
	const appA, appB = "DPIPublication", "DPIFormidoc"
	store := r.Stores[day]
	hours := r.Sim.DayRange(day).Hours()
	// Order hours by the joint activity of the pair, descending.
	score := func(hr logmodel.TimeRange) int {
		na, nb := 0, 0
		for _, e := range store.Range(hr) {
			switch e.Source {
			case appA:
				na++
			case appB:
				nb++
			}
		}
		if nb < na {
			return nb
		}
		return na
	}
	sort.SliceStable(hours, func(i, j int) bool { return score(hours[i]) > score(hours[j]) })

	var fallback Figure2Result
	for i, slot := range hours {
		res := r.figure2Slot(appA, appB, store, slot)
		if i == 0 {
			fallback = res
		}
		if res.Directions[0].Positive && res.Directions[1].Positive {
			return res
		}
	}
	return fallback
}

// figure2Slot runs the figure-2 analysis for one slot.
func (r *Runner) figure2Slot(appA, appB string, store *logmodel.Store, slot logmodel.TimeRange) Figure2Result {
	res := Figure2Result{AppA: appA, AppB: appB, Slot: slot}
	idx := store.SourceIndexRange(slot)
	rng := rand.New(rand.NewSource(r.Opts.Seed ^ 0xf2))
	cfg := r.Opts.L1
	assign := [2][2]string{{appA, appB}, {appB, appA}}
	for i, pair := range assign {
		ref, cand := pair[0], pair[1]
		d := l1.DirectionTest(rng, idx[ref], idx[cand], slot, cfg)
		fd := Figure2Direction{Reference: ref, Candidate: cand}
		if len(d.RandomSample) > 0 {
			fd.RandomBox = stats.Summary(d.RandomSample)
		}
		if len(d.CandidateSample) > 0 {
			fd.CandidateBox = stats.Summary(d.CandidateSample)
		}
		if d.Valid {
			fd.RandomCI95, fd.CandidateCI95 = d.RandomCI, d.CandidateCI
			fd.Positive = d.Positive
			if ci, err := stats.MedianCI(d.RandomSample, 0.99); err == nil {
				fd.RandomCI99 = ci
			}
			if ci, err := stats.MedianCI(d.CandidateSample, 0.99); err == nil {
				fd.CandidateCI99 = ci
			}
		}
		res.Directions[i] = fd
	}
	return res
}

// Figure3Result is the data of figure 3: an excerpt of a reconstructed user
// session as (source, time) activity statements.
type Figure3Result struct {
	User string
	// Events are the first entries of the chosen session.
	Events []sessions.SourceEvent
	// Sources are the distinct sources of the excerpt in first-appearance
	// order.
	Sources []string
}

// Figure3 picks a session with at least minSources sources on the given
// day and returns its first maxEvents activity statements.
func (r *Runner) Figure3(day, minSources, maxEvents int) Figure3Result {
	if minSources == 0 {
		minSources = 4
	}
	if maxEvents == 0 {
		maxEvents = 12
	}
	ss := r.sessionsCached(day)
	for i := range ss {
		seq := ss[i].SourceSequence()
		if len(seq) > maxEvents {
			seq = seq[:maxEvents]
		}
		// The excerpt itself (not just the whole session) must span enough
		// sources to illustrate a call tree.
		var order []string
		seen := map[string]bool{}
		for _, ev := range seq {
			if !seen[ev.Source] {
				seen[ev.Source] = true
				order = append(order, ev.Source)
			}
		}
		if len(order) < minSources {
			continue
		}
		return Figure3Result{User: ss[i].User, Events: seq, Sources: order}
	}
	return Figure3Result{}
}

// Figure4Result is the contingency table of the running example (figure 4),
// regenerated through the l2 machinery rather than hard-coded.
type Figure4Result struct {
	Type  l2.Bigram
	Table stats.ContingencyTable
	Test  stats.AssociationTest
}

// Figure4 rebuilds the §3.2 running example (the session of figure 3) and
// returns the contingency table for bigram type (A2, A3).
func Figure4() Figure4Result {
	mk := func(t logmodel.Millis, src string) logmodel.Entry {
		return logmodel.Entry{Time: t, Source: src, User: "u", Severity: logmodel.SevInfo}
	}
	s := sessions.Session{User: "u", Entries: []logmodel.Entry{
		mk(0, "A2"), mk(100, "A1"), mk(200, "A2"), mk(300, "A3"),
		mk(400, "A4"), mk(500, "A2"), mk(600, "A3"), mk(700, "A4"),
		mk(1200, "A2"),
	}}
	counts := l2.CountBigrams([]sessions.Session{s}, l2.NoTimeout)
	tab := counts.Table(l2.Bigram{First: "A2", Second: "A3"})
	return Figure4Result{
		Type:  l2.Bigram{First: "A2", Second: "A3"},
		Table: tab,
		Test:  stats.TestAssociation(tab),
	}
}
