package eval

import (
	"math"

	"logscape/internal/core"
	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/core/l3"
	"logscape/internal/directory"
	"logscape/internal/hospital"
	"logscape/internal/logmodel"
	"logscape/internal/obs"
	"logscape/internal/sessions"
)

// Options configures an evaluation run.
type Options struct {
	// Seed drives topology generation and the workload.
	Seed int64
	// Scale rescales the simulated volume (1 ≙ the calibrated 1/100 of
	// HUG's production volume; see hospital.Config).
	Scale float64
	// Days is the number of simulated days (default 7, Tue Dec 6 to Mon
	// Dec 12 2005).
	Days int
	// L1 configures approach L1. MinLogs of 0 is auto-scaled to the
	// simulated volume.
	L1 l1.Config
	// L2 configures approach L2.
	L2 l2.Config
	// Sessions configures session creation for L2.
	Sessions sessions.Config
	// Stops are the stop patterns for L3 (default: the canonical ten).
	Stops []directory.StopPattern
	// Metrics, when non-nil, is propagated into every miner configuration
	// (L1, L2, Sessions, the L3 miners, the baseline) so one registry
	// collects the whole run; see internal/obs. Collection never changes
	// any result.
	Metrics *obs.Registry
}

// DefaultOptions returns the calibrated evaluation configuration.
func DefaultOptions(seed int64) Options {
	return Options{
		Seed:  seed,
		Scale: 1,
		Days:  7,
		Stops: hospital.CanonicalStopPatterns(),
	}
}

// Runner holds one simulated week and the models mined from it. Create it
// with NewRunner; the per-day stores are generated eagerly and reused by
// all experiments.
type Runner struct {
	Opts Options
	// Topo is the simulated environment (the ground truth).
	Topo *hospital.Topology
	// Sim is the workload generator.
	Sim *hospital.Simulator
	// Dir is the service directory.
	Dir *directory.Directory
	// Stores and Stats hold the generated per-day log streams.
	Stores []*logmodel.Store
	Stats  []hospital.DayStats
	// TruePairs is the app-pair reference model (§4.3, first model).
	TruePairs core.PairSet
	// TrueDeps is the app→service reference model (§4.3, second model).
	TrueDeps core.AppServiceSet
	// Owner maps group ids to owning applications.
	Owner map[string]string

	sessCache map[int][]sessions.Session
	l3Miner   *l3.Miner
}

// NewRunner simulates the week for the given options.
func NewRunner(opts Options) *Runner {
	if opts.Scale == 0 {
		opts.Scale = 1
	}
	if opts.Days == 0 {
		opts.Days = 7
	}
	if opts.Stops == nil {
		opts.Stops = hospital.CanonicalStopPatterns()
	}
	if opts.L1.MinLogs == 0 {
		opts.L1.MinLogs = AutoMinLogs(opts.Scale)
	}
	if opts.L1.Seed == 0 {
		opts.L1.Seed = opts.Seed
	}
	if opts.Metrics != nil {
		if opts.L1.Metrics == nil {
			opts.L1.Metrics = opts.Metrics
		}
		if opts.L2.Metrics == nil {
			opts.L2.Metrics = opts.Metrics
		}
		if opts.Sessions.Metrics == nil {
			opts.Sessions.Metrics = opts.Metrics
		}
	}
	topo := hospital.GenerateTopology(hospital.DefaultTopologyConfig(), opts.Seed)
	simCfg := hospital.DefaultConfig(opts.Seed)
	simCfg.Scale = opts.Scale
	simCfg.Days = opts.Days
	sim := hospital.NewSimulator(simCfg, topo)
	r := &Runner{
		Opts:      opts,
		Topo:      topo,
		Sim:       sim,
		Dir:       topo.Directory(),
		TruePairs: topo.TrueAppPairs(),
		TrueDeps:  topo.TrueAppServicePairs(),
		Owner:     make(map[string]string, len(topo.Groups)),
		sessCache: make(map[int][]sessions.Session),
	}
	for _, g := range topo.Groups {
		r.Owner[g.ID] = g.Owner
	}
	r.Stores, r.Stats = sim.GenerateAll()
	return r
}

// AutoMinLogs scales the paper's minlogs = 100 (defined against ~10 M logs
// per day) to the simulated volume (~100 k logs per day at Scale 1), with a
// floor that keeps the per-slot median test statistically meaningful.
func AutoMinLogs(scale float64) int {
	m := int(10*scale + 0.5)
	if m < 8 {
		m = 8
	}
	return m
}

// PairUniverse returns the number of possible application pairs
// ((54² − 54)/2 = 1431 in the paper).
func (r *Runner) PairUniverse() int {
	n := len(r.Topo.Apps)
	return n * (n - 1) / 2
}

// DepUniverse returns the number of possible application→service
// dependencies.
func (r *Runner) DepUniverse() int {
	return len(r.Topo.Apps) * len(r.Topo.Groups)
}

// AppNames returns the application names (the log sources considered by L1).
func (r *Runner) AppNames() []string { return r.Topo.AppNames() }

// DepsToPairs converts mined app→service dependencies into undirected
// application pairs via group ownership, dropping self pairs — the mapping
// used in §4.9 to validate L1/L2 against L3.
func (r *Runner) DepsToPairs(deps core.AppServiceSet) core.PairSet {
	out := make(core.PairSet)
	for d := range deps {
		owner, ok := r.Owner[d.Group]
		if !ok || owner == d.App {
			continue
		}
		out[core.MakePair(d.App, owner)] = true
	}
	return out
}

// MineL1Day runs approach L1 on one simulated day.
func (r *Runner) MineL1Day(day int) *l1.Result {
	return l1.Mine(r.Stores[day], r.Sim.DayRange(day), r.AppNames(), r.Opts.L1)
}

// SessionsOfDay builds the user sessions of one day.
func (r *Runner) SessionsOfDay(day int) ([]sessions.Session, sessions.Stats) {
	return sessions.Build(r.Stores[day], r.Opts.Sessions)
}

// sessionsCached returns the day's sessions, building them once.
func (r *Runner) sessionsCached(day int) []sessions.Session {
	if ss, ok := r.sessCache[day]; ok {
		return ss
	}
	ss, _ := r.SessionsOfDay(day)
	r.sessCache[day] = ss
	return ss
}

// l3MinerShared returns the runner's shared L3 miner (one citation
// automaton for the whole evaluation).
func (r *Runner) l3MinerShared() *l3.Miner {
	if r.l3Miner == nil {
		r.l3Miner = l3.NewMiner(r.Dir, l3.Config{Stops: r.Opts.Stops, Metrics: r.Opts.Metrics})
	}
	return r.l3Miner
}

// MineL2Day runs approach L2 on one simulated day with the given timeout
// (use r.Opts.L2.Timeout by passing 0).
func (r *Runner) MineL2Day(day int, timeout logmodel.Millis) *l2.Result {
	ss := r.sessionsCached(day)
	cfg := r.Opts.L2
	if timeout != 0 {
		cfg.Timeout = timeout
	}
	return l2.Mine(ss, cfg)
}

// MineL3Day runs approach L3 on one simulated day with the runner's stop
// patterns.
func (r *Runner) MineL3Day(day int) *l3.Result {
	m := l3.NewMiner(r.Dir, l3.Config{Stops: r.Opts.Stops, Metrics: r.Opts.Metrics})
	return m.Mine(r.Stores[day], r.Sim.DayRange(day))
}

// MineL3DayNoStops runs approach L3 without stop patterns (the §4.8
// ablation).
func (r *Runner) MineL3DayNoStops(day int) *l3.Result {
	m := l3.NewMiner(r.Dir, l3.Config{})
	return m.Mine(r.Stores[day], r.Sim.DayRange(day))
}

// ScorePairs scores a mined pair set against the app-pair reference model.
func (r *Runner) ScorePairs(pred core.PairSet) core.Confusion {
	return core.ComparePairs(pred, r.TruePairs, r.PairUniverse())
}

// ScoreDeps scores mined dependencies against the app→service reference
// model.
func (r *Runner) ScoreDeps(pred core.AppServiceSet) core.Confusion {
	return core.CompareAppService(pred, r.TrueDeps, r.DepUniverse())
}

// ratioOrNaN returns tp/(tp+fp) or NaN when nothing was predicted.
func ratioOrNaN(tp, fp int) float64 {
	if tp+fp == 0 {
		return math.NaN()
	}
	return float64(tp) / float64(tp+fp)
}
