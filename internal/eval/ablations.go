package eval

import (
	"fmt"
	"strings"

	"logscape/internal/baseline"
	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/core/l3"
	"logscape/internal/logmodel"
)

// AblationRow is one design-choice variant evaluated on the ablation day.
type AblationRow struct {
	// Technique groups the rows ("L1", "L2", "L3", "baseline").
	Technique string
	// Variant names the design choice.
	Variant string
	// TP and FP score the variant against the reference model.
	TP, FP int
}

// Precision returns TP/(TP+FP).
func (r AblationRow) Precision() float64 { return ratioOrNaN(r.TP, r.FP) }

// AblationsResult evaluates every DESIGN.md §5 design choice on one day of
// the simulated week, holding everything else fixed.
type AblationsResult struct {
	Day  int
	Rows []AblationRow
}

// Ablations runs the ablation suite on the given day.
func (r *Runner) Ablations(day int) AblationsResult {
	res := AblationsResult{Day: day}
	store := r.Stores[day]
	dayRange := r.Sim.DayRange(day)
	apps := r.AppNames()

	scoreL1 := func(variant string, cfg l1.Config) {
		if cfg.MinLogs == 0 {
			cfg.MinLogs = r.Opts.L1.MinLogs
		}
		cfg.Seed = r.Opts.Seed
		conf := r.ScorePairs(l1.Mine(store, dayRange, apps, cfg).DependentPairs())
		res.Rows = append(res.Rows, AblationRow{Technique: "L1", Variant: variant, TP: conf.TP, FP: conf.FP})
	}
	// 1–3: distance, sidedness, statistic (DESIGN.md §5 items 1–3).
	scoreL1("paper (nearest, one-sided, median)", l1.Config{})
	scoreL1("next-arrival distance (Li & Ma)", l1.Config{Distance: l1.DistNext})
	scoreL1("two-sided test (Li & Ma)", l1.Config{TwoSided: true})
	scoreL1("mean statistic (Li & Ma)", l1.Config{Statistic: l1.StatMean})
	// §5 future-work variants.
	scoreL1("total-activity reference (§5)", l1.Config{Reference: l1.RefTotalActivity})
	// 6: slotting.
	scoreL1("global 24h slot", l1.Config{SlotWidth: 24 * logmodel.MillisPerHour, ThS: 0.04})
	{
		cfg := l1.Config{MinLogs: r.Opts.L1.MinLogs, Seed: r.Opts.Seed}
		slots := l1.EqualCountSlots(store, dayRange, 24)
		conf := r.ScorePairs(l1.MineSlots(store, slots, apps, cfg).DependentPairs())
		res.Rows = append(res.Rows, AblationRow{Technique: "L1", Variant: "equal-count slots (§5 adaptive)", TP: conf.TP, FP: conf.FP})
	}

	// 4: association measure for L2.
	ss := r.sessionsCached(day)
	for _, m := range []struct {
		name    string
		measure l2.Measure
	}{
		{"Dunning G² (paper)", l2.MeasureG2},
		{"Pearson X²", l2.MeasurePearson},
		{"Fisher exact", l2.MeasureFisher},
	} {
		conf := r.ScorePairs(l2.Mine(ss, l2.Config{Measure: m.measure}).DependentPairs())
		res.Rows = append(res.Rows, AblationRow{Technique: "L2", Variant: m.name, TP: conf.TP, FP: conf.FP})
	}

	// 5: stop patterns for L3.
	for _, v := range []struct {
		name string
		cfg  l3.Config
	}{
		{"with stop patterns (paper)", l3.Config{Stops: r.Opts.Stops}},
		{"without stop patterns", l3.Config{}},
	} {
		deps := l3.NewMiner(r.Dir, v.cfg).Mine(store, logmodel.TimeRange{}).Dependencies()
		conf := r.ScoreDeps(deps)
		res.Rows = append(res.Rows, AblationRow{Technique: "L3", Variant: v.name, TP: conf.TP, FP: conf.FP})
	}

	// Related-work baseline on the same day and universe.
	conf := r.ScorePairs(baseline.Mine(store, dayRange, apps, baseline.Config{Metrics: r.Opts.Metrics}).DependentPairs())
	res.Rows = append(res.Rows, AblationRow{Technique: "baseline", Variant: "Agrawal delay histogram", TP: conf.TP, FP: conf.FP})

	return res
}

// String renders the ablation table.
func (a AblationsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations on day %d (DESIGN.md §5)\n", a.Day)
	b.WriteString("technique  variant                                TP   FP   precision\n")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-10s %-38s %-4d %-4d %.2f\n",
			r.Technique, r.Variant, r.TP, r.FP, r.Precision())
	}
	return b.String()
}

// Find returns the row with the given technique and variant prefix, for
// tests.
func (a AblationsResult) Find(technique, variantPrefix string) (AblationRow, bool) {
	for _, r := range a.Rows {
		if r.Technique == technique && strings.HasPrefix(r.Variant, variantPrefix) {
			return r, true
		}
	}
	return AblationRow{}, false
}
