package eval

import (
	"sort"
	"time"

	"logscape/internal/core"
	"logscape/internal/core/l2"
	"logscape/internal/logmodel"
	"logscape/internal/stats"
)

// ---------------------------------------------------------------------------
// Table 1 — days in the test period with number of logs.

// Table1Row is one day of the test period.
type Table1Row struct {
	Day     int
	Date    time.Time
	Weekend bool
	Logs    int
}

// Table1Result reproduces table 1: the per-day log volume of the test week.
type Table1Result struct {
	Rows []Table1Row
	// Total is the week's log count (56.8 M in the paper; ~1/100 here).
	Total int
}

// Table1 generates the table from the simulated week.
func (r *Runner) Table1() Table1Result {
	var res Table1Result
	for d := range r.Stores {
		row := Table1Row{
			Day:     d,
			Date:    r.Stats[d].Date,
			Weekend: r.Stats[d].Weekend,
			Logs:    r.Stats[d].TotalLogs,
		}
		res.Rows = append(res.Rows, row)
		res.Total += row.Logs
	}
	return res
}

// ---------------------------------------------------------------------------
// Figures 5, 6, 8 — per-day positive decisions of each technique.

// DayDecisions is one day's outcome for a technique: the lower (true
// positives) and upper (false positives) areas of figures 5, 6 and 8, with
// the printed true-positive ratio.
type DayDecisions struct {
	Day     int
	Date    time.Time
	Weekend bool
	TP, FP  int
	// FN is the number of reference dependencies not detected that day.
	FN int
}

// Ratio returns the ratio of true positives among the positive decisions.
func (d DayDecisions) Ratio() float64 { return ratioOrNaN(d.TP, d.FP) }

// PerDayResult aggregates a technique's per-day decisions across the week.
type PerDayResult struct {
	// Technique is "L1", "L2" or "L3".
	Technique string
	Days      []DayDecisions
	// RatioCI is the order-statistics confidence interval for the median
	// true-positive ratio across days — with 7 days its achievable level
	// is 0.984, the level the paper reports.
	RatioCI stats.CI
	// RatioCILevel is the level actually used.
	RatioCILevel float64
}

// ratioCI computes the median-ratio CI across days at the best feasible
// level ≤ 0.984.
func ratioCI(days []DayDecisions) (stats.CI, float64) {
	ratios := make([]float64, 0, len(days))
	for _, d := range days {
		if x := d.Ratio(); x == x { // skip NaN
			ratios = append(ratios, x)
		}
	}
	sort.Float64s(ratios)
	for _, level := range []float64{0.984, 0.95, 0.9, 0.75, 0.5} {
		if ci, err := stats.MedianCI(ratios, level); err == nil {
			return ci, level
		}
	}
	return stats.CI{}, 0
}

// Figure5 reproduces figure 5: per-day true and false positives of approach
// L1 with the configured thresholds.
func (r *Runner) Figure5() PerDayResult {
	res := PerDayResult{Technique: "L1"}
	for d := range r.Stores {
		conf := r.ScorePairs(r.MineL1Day(d).DependentPairs())
		res.Days = append(res.Days, DayDecisions{
			Day: d, Date: r.Stats[d].Date, Weekend: r.Stats[d].Weekend,
			TP: conf.TP, FP: conf.FP, FN: conf.FN,
		})
	}
	res.RatioCI, res.RatioCILevel = ratioCI(res.Days)
	return res
}

// Figure6 reproduces figure 6: per-day true and false positives of approach
// L2 with timeout = 1 s.
func (r *Runner) Figure6() PerDayResult {
	res := PerDayResult{Technique: "L2"}
	for d := range r.Stores {
		conf := r.ScorePairs(r.MineL2Day(d, 0).DependentPairs())
		res.Days = append(res.Days, DayDecisions{
			Day: d, Date: r.Stats[d].Date, Weekend: r.Stats[d].Weekend,
			TP: conf.TP, FP: conf.FP, FN: conf.FN,
		})
	}
	res.RatioCI, res.RatioCILevel = ratioCI(res.Days)
	return res
}

// ---------------------------------------------------------------------------
// Figure 7 — influence of the timeout on one day.

// TimeoutPoint is one timeout setting's outcome on the sweep day.
type TimeoutPoint struct {
	// Timeout in milliseconds; l2.NoTimeout stands for infinity.
	Timeout logmodel.Millis
	TP, FP  int
}

// Ratio returns the true-positive ratio at this timeout.
func (p TimeoutPoint) Ratio() float64 { return ratioOrNaN(p.TP, p.FP) }

// Figure7Result reproduces figure 7: positive decisions of L2 on the sweep
// day for different timeout values.
type Figure7Result struct {
	Day    int
	Date   time.Time
	Points []TimeoutPoint
}

// DefaultTimeoutSweep lists the timeout values of figure 7 (seconds 0.2 to
// 3 plus infinity).
func DefaultTimeoutSweep() []logmodel.Millis {
	return []logmodel.Millis{200, 300, 400, 600, 800, 1000, 1500, 2000, 3000, l2.NoTimeout}
}

// Figure7 runs the timeout sweep on the given day (the paper uses
// 12.12.2005, the last day of the week: day 6).
func (r *Runner) Figure7(day int, timeouts []logmodel.Millis) Figure7Result {
	if timeouts == nil {
		timeouts = DefaultTimeoutSweep()
	}
	res := Figure7Result{Day: day, Date: r.Stats[day].Date}
	ss, _ := r.SessionsOfDay(day)
	for _, to := range timeouts {
		cfg := r.Opts.L2
		cfg.Timeout = to
		conf := r.ScorePairs(l2.Mine(ss, cfg).DependentPairs())
		res.Points = append(res.Points, TimeoutPoint{Timeout: to, TP: conf.TP, FP: conf.FP})
	}
	return res
}

// ---------------------------------------------------------------------------
// Table 2 — median influence of the timeout across the week.

// Table2Row is the paired comparison of one finite timeout against
// infinity.
type Table2Row struct {
	Timeout logmodel.Millis
	// RatioDiff is the median of tpr_to − tpr_inf (in percentage points)
	// with its confidence interval.
	RatioDiffMedian float64
	RatioDiffCI     stats.CI
	// TPDiff is the median of tp_to − tp_inf with its confidence interval.
	TPDiffMedian float64
	TPDiffCI     stats.CI
	// WilcoxonRatioP and WilcoxonTPP are the two-sided signed-rank
	// p-values for the respective paired samples.
	WilcoxonRatioP float64
	WilcoxonTPP    float64
}

// Table2Result reproduces table 2 (§4.7): for each timeout, the paired
// median test across the seven days. The paper's finding: every finite
// timeout increases the true-positive ratio (CI strictly positive) and
// decreases the absolute number of true positives (CI strictly negative),
// with Wilcoxon p = 0.0156 when all seven days agree in sign.
type Table2Result struct {
	Rows []Table2Row
	// Level is the confidence level of the interval (0.98 in the paper).
	Level float64
}

// Table2 runs the paired timeout analysis for the given finite timeouts
// (default: 0.3, 0.6, 0.8, 1.0 seconds).
func (r *Runner) Table2(timeouts []logmodel.Millis) Table2Result {
	if timeouts == nil {
		timeouts = []logmodel.Millis{300, 600, 800, 1000}
	}
	const level = 0.98
	res := Table2Result{Level: level}

	days := len(r.Stores)
	type dayOutcome struct {
		tpr, tp float64
	}
	outcome := func(day int, to logmodel.Millis) dayOutcome {
		conf := r.ScorePairs(r.MineL2Day(day, to).DependentPairs())
		return dayOutcome{
			tpr: 100 * ratioOrNaN(conf.TP, conf.FP), // percentage points
			tp:  float64(conf.TP),
		}
	}
	inf := make([]dayOutcome, days)
	for d := 0; d < days; d++ {
		inf[d] = outcome(d, l2.NoTimeout)
	}
	for _, to := range timeouts {
		ratioDiff := make([]float64, days)
		tpDiff := make([]float64, days)
		for d := 0; d < days; d++ {
			o := outcome(d, to)
			ratioDiff[d] = o.tpr - inf[d].tpr
			tpDiff[d] = o.tp - inf[d].tp
		}
		row := Table2Row{Timeout: to}
		row.RatioDiffMedian = stats.MedianOf(ratioDiff)
		row.TPDiffMedian = stats.MedianOf(tpDiff)
		if ci, err := stats.MedianCIOf(ratioDiff, level); err == nil {
			row.RatioDiffCI = ci
		}
		if ci, err := stats.MedianCIOf(tpDiff, level); err == nil {
			row.TPDiffCI = ci
		}
		if w, err := stats.WilcoxonSignedRankDiffs(ratioDiff); err == nil {
			row.WilcoxonRatioP = w.PValue
		}
		if w, err := stats.WilcoxonSignedRankDiffs(tpDiff); err == nil {
			row.WilcoxonTPP = w.PValue
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// ---------------------------------------------------------------------------
// Figure 8 — approach L3 with error taxonomy.

// FNKind classifies a false negative of L3 per the §4.8 analysis.
type FNKind string

// False-negative kinds.
const (
	// FNRare: the dependency is real but was never exercised in the test
	// period; the paper reclassifies these as true negatives.
	FNRare FNKind = "rare (true negative)"
	// FNUnlogged: the interaction happened but the caller never logs it.
	FNUnlogged FNKind = "not logged"
	// FNWrongName: the caller logs the invocation under a wrong directory
	// id.
	FNWrongName FNKind = "wrong name"
	// FNOther: undetected for any other reason (e.g. not realized on
	// enough days).
	FNOther FNKind = "other"
)

// FPKind classifies a false positive of L3 per the §4.8 analysis.
type FPKind string

// False-positive kinds.
const (
	// FPInverted: a server-side log citing the served group survived the
	// stop patterns.
	FPInverted FPKind = "inverted (server log)"
	// FPStackTrace: an exception trace returned by an intermediary cited a
	// transitively used group.
	FPStackTrace FPKind = "transitive (stack trace)"
	// FPCoincidence: free text coincidentally matched a group id (e.g. a
	// patient name).
	FPCoincidence FPKind = "coincidence"
	// FPSimilarID: the application cited a similar but erroneous group id.
	FPSimilarID FPKind = "similar id"
	// FPOther: any other cause.
	FPOther FPKind = "other"
)

// Figure8Result reproduces figure 8 and the §4.8 error analysis.
type Figure8Result struct {
	PerDay PerDayResult
	// UnionTP, UnionFP and UnionFN are the week-union counts ("combining
	// the results from all days").
	UnionTP, UnionFP, UnionFN int
	// FNByKind and FPByKind classify the union's errors against the
	// simulator's injected phenomena.
	FNByKind map[FNKind][]core.AppServicePair
	FPByKind map[FPKind][]core.AppServicePair
	// InvertedWithoutStops is the number of inverted dependencies when
	// mining without stop patterns (24 in the paper, vs 2 with).
	InvertedWithoutStops int
}

// Figure8 runs approach L3 for every day and computes the error taxonomy.
func (r *Runner) Figure8() Figure8Result {
	res := Figure8Result{
		PerDay:   PerDayResult{Technique: "L3"},
		FNByKind: make(map[FNKind][]core.AppServicePair),
		FPByKind: make(map[FPKind][]core.AppServicePair),
	}
	union := make(core.AppServiceSet)
	for d := range r.Stores {
		deps := r.MineL3Day(d).Dependencies()
		for p := range deps {
			union[p] = true
		}
		conf := r.ScoreDeps(deps)
		res.PerDay.Days = append(res.PerDay.Days, DayDecisions{
			Day: d, Date: r.Stats[d].Date, Weekend: r.Stats[d].Weekend,
			TP: conf.TP, FP: conf.FP, FN: conf.FN,
		})
	}
	res.PerDay.RatioCI, res.PerDay.RatioCILevel = ratioCI(res.PerDay.Days)

	// Union analysis.
	ph := r.Topo.Phenomena
	rare := toSet(ph.RareEdges)
	unlogged := toSet(ph.UnloggedEdges)
	wrongName := make(core.AppServiceSet)
	for p := range ph.WrongNameEdges {
		wrongName[p] = true
	}
	similar := toSet(ph.SimilarIDPairs)
	coincidence := toSet(ph.CoincidencePairs)
	stackTrace := toSet(ph.StackTracePairs)

	for p := range union {
		if r.TrueDeps[p] {
			res.UnionTP++
			continue
		}
		res.UnionFP++
		kind := FPOther
		switch {
		case r.Owner[p.Group] == p.App:
			kind = FPInverted
		case similar[p]:
			kind = FPSimilarID
		case coincidence[p]:
			kind = FPCoincidence
		case stackTrace[p]:
			kind = FPStackTrace
		}
		res.FPByKind[kind] = append(res.FPByKind[kind], p)
	}
	for p := range r.TrueDeps {
		if union[p] {
			continue
		}
		res.UnionFN++
		kind := FNOther
		switch {
		case rare[p]:
			kind = FNRare
		case unlogged[p]:
			kind = FNUnlogged
		case wrongName[p]:
			kind = FNWrongName
		}
		res.FNByKind[kind] = append(res.FNByKind[kind], p)
	}
	for _, m := range res.FNByKind {
		sortAppServicePairs(m)
	}
	for _, m := range res.FPByKind {
		sortAppServicePairs(m)
	}

	// Ablation: without stop patterns, count inverted dependencies.
	invertedUnion := make(core.AppServiceSet)
	for d := range r.Stores {
		for p := range r.MineL3DayNoStops(d).Dependencies() {
			if r.Owner[p.Group] == p.App {
				invertedUnion[p] = true
			}
		}
	}
	res.InvertedWithoutStops = len(invertedUnion)
	return res
}

func toSet(ps []core.AppServicePair) core.AppServiceSet {
	s := make(core.AppServiceSet, len(ps))
	for _, p := range ps {
		s[p] = true
	}
	return s
}

func sortAppServicePairs(ps []core.AppServicePair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].App != ps[j].App {
			return ps[i].App < ps[j].App
		}
		return ps[i].Group < ps[j].Group
	})
}
