package eval

import (
	"math"
	"sync"
	"testing"

	"logscape/internal/core"
	"logscape/internal/core/l2"
	"logscape/internal/logmodel"
)

// The evaluation tests run on one shared full-scale week (seed 2005, the
// seed used by cmd/evalrun); everything downstream of the seed is
// deterministic, so these tests assert the *reproduced paper shapes*
// directly and act as regression tests for the whole pipeline.
var (
	runnerOnce sync.Once
	sharedRun  *Runner
)

func testRunner(t *testing.T) *Runner {
	t.Helper()
	runnerOnce.Do(func() {
		sharedRun = NewRunner(DefaultOptions(2005))
	})
	return sharedRun
}

func TestRunnerSetup(t *testing.T) {
	r := testRunner(t)
	if len(r.Topo.Apps) != 54 || len(r.Topo.Groups) != 47 {
		t.Fatalf("topology = %d apps, %d groups", len(r.Topo.Apps), len(r.Topo.Groups))
	}
	if r.PairUniverse() != 1431 {
		t.Errorf("pair universe = %d, want 1431 ((54²−54)/2)", r.PairUniverse())
	}
	if r.DepUniverse() != 54*47 {
		t.Errorf("dep universe = %d", r.DepUniverse())
	}
	if len(r.TrueDeps) != 177 {
		t.Errorf("true deps = %d, want 177", len(r.TrueDeps))
	}
	if len(r.Stores) != 7 {
		t.Fatalf("stores = %d", len(r.Stores))
	}
	for d, s := range r.Stores {
		if s.Len() == 0 || !s.Sorted() {
			t.Errorf("day %d store invalid", d)
		}
	}
}

func TestAutoMinLogs(t *testing.T) {
	if got := AutoMinLogs(1); got != 10 {
		t.Errorf("AutoMinLogs(1) = %d", got)
	}
	if got := AutoMinLogs(0.01); got != 8 {
		t.Errorf("AutoMinLogs floor = %d", got)
	}
	if got := AutoMinLogs(10); got != 100 {
		t.Errorf("AutoMinLogs(10) = %d (the paper's minlogs at full volume)", got)
	}
}

func TestDepsToPairs(t *testing.T) {
	r := testRunner(t)
	deps := core.AppServiceSet{}
	var g string
	var owner string
	for id, o := range r.Owner {
		if o != "DPIMain" {
			g, owner = id, o
			break
		}
	}
	deps[core.AppServicePair{App: "DPIMain", Group: g}] = true
	// A self pair must be dropped.
	var ownGroup string
	for id, o := range r.Owner {
		if o == owner {
			ownGroup = id
			break
		}
	}
	deps[core.AppServicePair{App: owner, Group: ownGroup}] = true
	pairs := r.DepsToPairs(deps)
	if !pairs[core.MakePair("DPIMain", owner)] {
		t.Error("pair missing")
	}
	if len(pairs) != 1 {
		t.Errorf("pairs = %v", pairs)
	}
}

// TestTable1Shape checks the table 1 reproduction: weekday/weekend volume
// ratio and the Monday peak.
func TestTable1Shape(t *testing.T) {
	r := testRunner(t)
	tab := r.Table1()
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	weekdaySum := 0
	for _, d := range []int{0, 1, 2, 3, 6} {
		if tab.Rows[d].Weekend {
			t.Errorf("day %d marked weekend", d)
		}
		weekdaySum += tab.Rows[d].Logs
	}
	mean := float64(weekdaySum) / 5
	for _, d := range []int{4, 5} {
		if !tab.Rows[d].Weekend {
			t.Errorf("day %d not marked weekend", d)
		}
		ratio := float64(tab.Rows[d].Logs) / mean
		if ratio < 0.2 || ratio > 0.5 {
			t.Errorf("weekend ratio = %.2f, want ≈ 1/3 (table 1)", ratio)
		}
	}
	if float64(tab.Rows[6].Logs) < mean {
		t.Error("Monday should be the volume peak (10.7 M in table 1)")
	}
	if tab.Total < 400000 || tab.Total > 700000 {
		t.Errorf("total = %d, want ≈ 1/100 of 56.8 M", tab.Total)
	}
	if s := tab.String(); len(s) == 0 {
		t.Error("empty rendering")
	}
}

func TestFigure1Correlated(t *testing.T) {
	r := testRunner(t)
	f := r.Figure1(0, logmodel.TimeRange{})
	if len(f.SeriesA) == 0 || len(f.SeriesA) != len(f.SeriesB) {
		t.Fatalf("series lengths %d/%d", len(f.SeriesA), len(f.SeriesB))
	}
	if f.Correlation < 0.15 {
		t.Errorf("correlation = %.2f; interacting applications must correlate (figure 1)", f.Correlation)
	}
	if s := f.String(); len(s) == 0 {
		t.Error("empty rendering")
	}
}

func TestFigure2BothDirectionsPositive(t *testing.T) {
	r := testRunner(t)
	f := r.Figure2(0)
	for i, d := range f.Directions {
		if !d.Positive {
			t.Errorf("direction %d (%s→%s) not positive", i, d.Reference, d.Candidate)
		}
		// The figure's defining feature: the candidate's 95% interval lies
		// below the random one.
		if !d.CandidateCI95.Below(d.RandomCI95) {
			t.Errorf("direction %d CIs not separated: %+v vs %+v",
				i, d.CandidateCI95, d.RandomCI95)
		}
		if d.RandomBox.Median <= 0 {
			t.Errorf("direction %d random box degenerate", i)
		}
	}
	if s := f.String(); len(s) == 0 {
		t.Error("empty rendering")
	}
}

func TestFigure3Excerpt(t *testing.T) {
	r := testRunner(t)
	f := r.Figure3(0, 0, 0)
	if len(f.Events) == 0 {
		t.Fatal("no session excerpt found")
	}
	if len(f.Sources) < 4 {
		t.Errorf("sources = %v, want ≥ 4 (a call-tree excerpt)", f.Sources)
	}
	for i := 1; i < len(f.Events); i++ {
		if f.Events[i].Time < f.Events[i-1].Time {
			t.Fatal("events out of order")
		}
	}
	if s := f.String(); len(s) == 0 {
		t.Error("empty rendering")
	}
}

// TestFigure4Exact reproduces figure 4 to the digit.
func TestFigure4Exact(t *testing.T) {
	f := Figure4()
	if f.Table.O11 != 2 || f.Table.O21 != 0 || f.Table.O12 != 1 || f.Table.O22 != 5 {
		t.Errorf("table = %+v, want O11=2 O21=0 O12=1 O22=5", f.Table)
	}
	if !f.Test.Positive {
		t.Error("running example must show attraction")
	}
	if s := f.String(); len(s) == 0 {
		t.Error("empty rendering")
	}
}

// TestFigure5Shape asserts the qualitative reproduction of figure 5: L1
// detects a modest subset of the reference model with a low error rate on
// unrelated pairs (the paper: 30–46 TPs, ≈ 2% error on 1253 unrelated
// pairs).
func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("L1 over a full week is expensive")
	}
	r := testRunner(t)
	f := r.Figure5()
	if len(f.Days) != 7 {
		t.Fatalf("days = %d", len(f.Days))
	}
	for _, d := range f.Days {
		if d.Weekend {
			continue
		}
		if d.TP < 5 || d.TP > 80 {
			t.Errorf("day %d TP = %d, want a modest subset (paper: 30–46)", d.Day, d.TP)
		}
		// Error rate on unrelated pairs ≈ 2% in the paper.
		fpRate := float64(d.FP) / 1253
		if fpRate > 0.03 {
			t.Errorf("day %d FP rate = %.3f, want ≤ ≈2%%", d.Day, fpRate)
		}
	}
	if f.RatioCI.Low <= 0.3 {
		t.Errorf("ratio CI = %+v; most L1 positives must be true", f.RatioCI)
	}
}

// TestFigure6Shape asserts figure 6: L2 finds far more dependencies than
// L1, with visible false positives and a weekend dip.
func TestFigure6Shape(t *testing.T) {
	r := testRunner(t)
	f := r.Figure6()
	weekdayTP, weekendTP := 0, 0
	weekdayFP := 0
	nWeekday, nWeekend := 0, 0
	for _, d := range f.Days {
		if d.Weekend {
			weekendTP += d.TP
			nWeekend++
		} else {
			weekdayTP += d.TP
			weekdayFP += d.FP
			nWeekday++
		}
	}
	avgWeekday := float64(weekdayTP) / float64(nWeekday)
	avgWeekend := float64(weekendTP) / float64(nWeekend)
	if avgWeekday < 50 || avgWeekday > 120 {
		t.Errorf("weekday TP mean = %.0f, want ≈ 62–74 (figure 6)", avgWeekday)
	}
	if avgWeekend >= avgWeekday {
		t.Error("weekend TP must dip (figure 6 reflects the real weekend slowdown)")
	}
	if weekdayFP == 0 {
		t.Error("L2 must show concurrency false positives (§4.6)")
	}
	if f.RatioCI.Low < 0.6 || f.RatioCI.High > 1 {
		t.Errorf("ratio CI = %+v", f.RatioCI)
	}
}

// TestFigure7Shape asserts figure 7: the absolute number of true positives
// grows toward infinite timeout while the precision peaks at a moderate
// one.
func TestFigure7Shape(t *testing.T) {
	r := testRunner(t)
	f := r.Figure7(6, nil)
	if len(f.Points) < 5 {
		t.Fatalf("points = %d", len(f.Points))
	}
	var inf TimeoutPoint
	bestFiniteRatio := 0.0
	minFiniteTP := math.MaxInt
	for _, p := range f.Points {
		if p.Timeout == l2.NoTimeout {
			inf = p
			continue
		}
		if ratio := p.Ratio(); ratio > bestFiniteRatio {
			bestFiniteRatio = ratio
		}
		if p.TP < minFiniteTP {
			minFiniteTP = p.TP
		}
	}
	if inf.TP <= minFiniteTP {
		t.Errorf("TP at infinity (%d) must exceed the most restrictive timeout (%d)", inf.TP, minFiniteTP)
	}
	if bestFiniteRatio <= inf.Ratio() {
		t.Errorf("best finite ratio %.2f must beat infinity's %.2f (figure 7)",
			bestFiniteRatio, inf.Ratio())
	}
}

// TestTable2Signs asserts the §4.7 conclusion: every finite timeout
// improves the true-positive ratio (positive median difference) and
// reduces the absolute true positives (negative median difference, CI
// strictly negative), with the exact small-sample Wilcoxon p-value 0.0156
// when all seven days agree.
func TestTable2Signs(t *testing.T) {
	r := testRunner(t)
	tab := r.Table2(nil)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row.RatioDiffMedian <= 0 {
			t.Errorf("to=%v: ratio diff median = %+.2f, want > 0", row.Timeout, row.RatioDiffMedian)
		}
		if row.TPDiffMedian >= 0 {
			t.Errorf("to=%v: tp diff median = %+.1f, want < 0", row.Timeout, row.TPDiffMedian)
		}
		if !row.TPDiffCI.StrictlyNegative() {
			t.Errorf("to=%v: tp diff CI = %+v, want strictly negative", row.Timeout, row.TPDiffCI)
		}
		if !almostEq(row.WilcoxonTPP, 0.015625, 1e-9) {
			t.Errorf("to=%v: Wilcoxon p = %v, want 0.0156 (all days agree)", row.Timeout, row.WilcoxonTPP)
		}
	}
	// The paper's headline: the ratio-diff CIs are strictly positive. With
	// the reproduction seed they are; assert it so regressions surface.
	for _, row := range tab.Rows {
		if !row.RatioDiffCI.StrictlyPositive() {
			t.Errorf("to=%v: ratio diff CI = %+v, want strictly positive (table 2)",
				row.Timeout, row.RatioDiffCI)
		}
	}
	if s := tab.String(); len(s) == 0 {
		t.Error("empty rendering")
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestFigure8Taxonomy asserts the §4.8 error analysis to the count:
// 6 rare + 7 unlogged + 3 wrong-name false negatives; 2 inverted + 5
// stack-trace + 7 coincidence + 5 similar-id false positives; 24 inverted
// dependencies without stop patterns.
func TestFigure8Taxonomy(t *testing.T) {
	r := testRunner(t)
	f := r.Figure8()
	if got := len(f.FNByKind[FNRare]); got != 6 {
		t.Errorf("rare FNs = %d, want 6", got)
	}
	if got := len(f.FNByKind[FNUnlogged]); got != 7 {
		t.Errorf("unlogged FNs = %d, want 7", got)
	}
	if got := len(f.FNByKind[FNWrongName]); got != 3 {
		t.Errorf("wrong-name FNs = %d, want 3", got)
	}
	if got := len(f.FNByKind[FNOther]); got != 0 {
		t.Errorf("unexplained FNs = %d (%v), want 0 — the paper accounts for every miss",
			got, f.FNByKind[FNOther])
	}
	if got := len(f.FPByKind[FPInverted]); got != 2 {
		t.Errorf("inverted FPs = %d, want 2", got)
	}
	if got := len(f.FPByKind[FPStackTrace]); got != 5 {
		t.Errorf("stack-trace FPs = %d, want 5", got)
	}
	if got := len(f.FPByKind[FPCoincidence]); got != 7 {
		t.Errorf("coincidence FPs = %d, want 7", got)
	}
	if got := len(f.FPByKind[FPSimilarID]); got != 5 {
		t.Errorf("similar-id FPs = %d, want 5", got)
	}
	if got := len(f.FPByKind[FPOther]); got != 0 {
		t.Errorf("unexplained FPs = %d (%v)", got, f.FPByKind[FPOther])
	}
	if f.UnionFP != 19 {
		t.Errorf("union FPs = %d, want 19", f.UnionFP)
	}
	if f.InvertedWithoutStops != 24 {
		t.Errorf("inverted without stops = %d, want 24", f.InvertedWithoutStops)
	}
	// Per-day shape: high precision, weekend dip.
	for _, d := range f.PerDay.Days {
		if d.Ratio() < 0.85 {
			t.Errorf("day %d ratio = %.2f, want ≥ 0.85 (paper CI [0.93, 0.96])", d.Day, d.Ratio())
		}
	}
	weekday, weekend := 0, 0
	for _, d := range f.PerDay.Days {
		if d.Weekend {
			weekend += d.TP
		} else {
			weekday += d.TP
		}
	}
	if float64(weekend)/2 >= float64(weekday)/5 {
		t.Error("weekend TP must be clearly below weekday TP (figure 8)")
	}
	if f.PerDay.RatioCI.Low < 0.88 {
		t.Errorf("ratio CI = %+v, want ≈ [0.93, 0.96]", f.PerDay.RatioCI)
	}
	if s := f.String(); len(s) == 0 {
		t.Error("empty rendering")
	}
}

// TestFigure9Signs asserts the §4.9 regression conclusions: the load slope
// for L1 is strictly negative, the one for L2 compatible with zero, and the
// false-positive slopes compatible with zero.
func TestFigure9Signs(t *testing.T) {
	if testing.Short() {
		t.Skip("hourly study over a full week is expensive")
	}
	r := testRunner(t)
	f := r.Figure9(0)
	if len(f.Points) < 30 {
		t.Fatalf("only %d usable hours", len(f.Points))
	}
	if !f.P1SlopeCI.StrictlyNegative() {
		t.Errorf("p1 slope CI = %+v, want strictly negative (paper: [−0.284, −0.215])", f.P1SlopeCI)
	}
	if !f.P2SlopeCI.Contains(0) {
		t.Errorf("p2 slope CI = %+v, want to contain zero (paper: [−0.025, 0.002])", f.P2SlopeCI)
	}
	if !f.FP2SlopeCI.Contains(0) {
		t.Errorf("fp2 slope CI = %+v, want to contain zero", f.FP2SlopeCI)
	}
	if len(f.ExcludedApps) == 0 {
		t.Error("apps with unlogged invocations must be excluded (§4.9 removes 4)")
	}
	// Residual normality check, as the paper's qqplot verification.
	if f.P1QQCorr < 0.9 || f.P2QQCorr < 0.9 {
		t.Errorf("residual QQ correlations %.2f/%.2f, want ≈ 1", f.P1QQCorr, f.P2QQCorr)
	}
	if s := f.String(); len(s) == 0 {
		t.Error("empty rendering")
	}
}

// TestSessionSummaryShape reproduces the §4.6 session statistics: the
// weekday/weekend session ratio of ≈ 4:1 and a single-digit assigned-log
// percentage in the paper's 7.5–11% neighborhood.
func TestSessionSummaryShape(t *testing.T) {
	r := testRunner(t)
	s := r.SessionSummary()
	if len(s.Rows) != 7 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	var weekday, weekend float64
	var nWeekday, nWeekend int
	for _, row := range s.Rows {
		if row.AssignedShare < 0.04 || row.AssignedShare > 0.20 {
			t.Errorf("day %d assigned share = %.3f, want ≈ 0.075–0.11", row.Day, row.AssignedShare)
		}
		if row.MeanLength < 4 {
			t.Errorf("day %d mean session length = %.1f", row.Day, row.MeanLength)
		}
		if row.Weekend {
			weekend += float64(row.Sessions)
			nWeekend++
		} else {
			weekday += float64(row.Sessions)
			nWeekday++
		}
	}
	ratio := (weekday / float64(nWeekday)) / (weekend / float64(nWeekend))
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("weekday/weekend session ratio = %.1f, want ≈ 4 (4000 vs 1000)", ratio)
	}
	if out := s.String(); len(out) == 0 {
		t.Error("empty rendering")
	}
}

// TestFigure8TaxonomyCrossSeed re-runs the §4.8 taxonomy at a different
// seed: the count-exact reproduction must be a property of the simulator's
// construction, not of one lucky seed.
func TestFigure8TaxonomyCrossSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a second full week")
	}
	r := NewRunner(DefaultOptions(7))
	f := r.Figure8()
	wantFN := map[FNKind]int{FNRare: 6, FNUnlogged: 7, FNWrongName: 3, FNOther: 0}
	for kind, want := range wantFN {
		if got := len(f.FNByKind[kind]); got != want {
			t.Errorf("seed 7: FN %s = %d, want %d", kind, got, want)
		}
	}
	wantFP := map[FPKind]int{FPInverted: 2, FPStackTrace: 5, FPCoincidence: 7, FPSimilarID: 5, FPOther: 0}
	for kind, want := range wantFP {
		if got := len(f.FPByKind[kind]); got != want {
			t.Errorf("seed 7: FP %s = %d, want %d", kind, got, want)
		}
	}
	if f.InvertedWithoutStops != 24 {
		t.Errorf("seed 7: inverted without stops = %d", f.InvertedWithoutStops)
	}
}

// TestPrecisionOrdering asserts the paper's headline comparison: the
// precision of the mined model grows with the semantic content used,
// L3 ≻ L2 (§6: "a performance that is proportional to the amount of
// semantic content of log messages considered").
func TestPrecisionOrdering(t *testing.T) {
	r := testRunner(t)
	l2ci := r.Figure6().RatioCI
	l3ci := r.Figure8().PerDay.RatioCI
	if (l3ci.Low+l3ci.High)/2 <= (l2ci.Low+l2ci.High)/2 {
		t.Errorf("L3 ratio CI %+v must sit above L2's %+v", l3ci, l2ci)
	}
}
