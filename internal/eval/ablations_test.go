package eval

import "testing"

// TestAblations asserts the DESIGN.md §5 design-choice relationships on the
// shared week (slow: runs seven L1 variants over a full day).
func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation suite is expensive")
	}
	r := testRunner(t)
	a := r.Ablations(0)
	get := func(technique, prefix string) AblationRow {
		t.Helper()
		row, ok := a.Find(technique, prefix)
		if !ok {
			t.Fatalf("missing ablation row %s/%s", technique, prefix)
		}
		return row
	}
	paper := get("L1", "paper")
	if paper.TP == 0 {
		t.Fatal("paper L1 variant found nothing")
	}

	// Two-sided and mean variants trade precision for recall relative to
	// the paper's robust one-sided median test.
	twoSided := get("L1", "two-sided")
	if twoSided.FP < paper.FP {
		t.Errorf("two-sided FP %d < paper FP %d", twoSided.FP, paper.FP)
	}
	mean := get("L1", "mean statistic")
	if mean.Precision() > paper.Precision() {
		t.Errorf("mean precision %.2f above the median's %.2f", mean.Precision(), paper.Precision())
	}

	// The global slot collapses under the time-of-day confounder (§3.1):
	// dramatically more positives, dreadful precision.
	global := get("L1", "global 24h slot")
	if global.FP < 10*paper.FP+50 {
		t.Errorf("global slot FP = %d; the confounder should flood it", global.FP)
	}
	if global.Precision() > 0.5 {
		t.Errorf("global slot precision = %.2f, should collapse", global.Precision())
	}

	// Equal-count (adaptive) slots stay in the paper variant's regime.
	eq := get("L1", "equal-count")
	if eq.TP == 0 {
		t.Error("equal-count slots found nothing")
	}
	if eq.Precision() < 0.5 {
		t.Errorf("equal-count precision = %.2f", eq.Precision())
	}

	// Dunning vs Pearson (§3.2): Pearson admits at least as many false
	// positives on the same corpus.
	g2 := get("L2", "Dunning")
	x2 := get("L2", "Pearson")
	if x2.FP < g2.FP {
		t.Errorf("Pearson FP %d < G² FP %d", x2.FP, g2.FP)
	}

	// Stop patterns (§4.8): equal TP, far fewer FP.
	with := get("L3", "with stop")
	without := get("L3", "without stop")
	if with.TP != without.TP {
		t.Errorf("stop patterns changed TP: %d vs %d", with.TP, without.TP)
	}
	if without.FP < with.FP+10 {
		t.Errorf("without stops FP %d not clearly above with-stops %d", without.FP, with.FP)
	}

	// The delay-histogram baseline: higher recall than L1 but far worse
	// precision under hospital-scale parallelism (the paper's critique).
	base := get("baseline", "Agrawal")
	if base.TP < paper.TP {
		t.Errorf("baseline TP %d below L1's %d", base.TP, paper.TP)
	}
	if base.Precision() > paper.Precision()/1.5 {
		t.Errorf("baseline precision %.2f not clearly below L1's %.2f",
			base.Precision(), paper.Precision())
	}
	if s := a.String(); len(s) == 0 {
		t.Error("empty rendering")
	}
}
