package eval

import (
	"fmt"
	"io"

	"logscape/internal/logmodel"
)

// ReportOptions selects what WriteReport includes.
type ReportOptions struct {
	// SkipSlow omits the expensive experiments (figure 5's full-week L1
	// run, figure 9's hourly study, the ablations).
	SkipSlow bool
	// AblationDay is the day for the ablation suite (default 0).
	AblationDay int
}

// WriteReport renders the complete evaluation as a Markdown document: the
// per-experiment renderings in paper order, preceded by a configuration
// summary. cmd/evalrun exposes it as -report; the committed EXPERIMENTS.md
// is the curated version of this output.
func (r *Runner) WriteReport(w io.Writer, opts ReportOptions) error {
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "# logscape evaluation report\n\n")
	fmt.Fprintf(bw, "Configuration: seed %d, scale %.2f, %d days; %d applications, %d service groups, %d true dependencies (%d true application pairs).\n\n",
		r.Opts.Seed, r.Opts.Scale, r.Opts.Days,
		len(r.Topo.Apps), len(r.Topo.Groups), len(r.TrueDeps), len(r.TruePairs))
	fmt.Fprintf(bw, "L1: minlogs %d, th_pr %.2f (0 = default 0.6), th_s %.2f (0 = default 0.3). Sessions and L2/L3 at package defaults unless overridden.\n\n",
		r.Opts.L1.MinLogs, r.Opts.L1.ThPr, r.Opts.L1.ThS)

	section := func(title string, body fmt.Stringer) {
		fmt.Fprintf(bw, "## %s\n\n```\n%s```\n\n", title, body)
	}
	section("Table 1 — log volume per day", r.Table1())
	section("Figure 1 — correlated activity", r.Figure1(0, logmodel.TimeRange{}))
	section("Figure 2 — L1 slot-test boxplots", r.Figure2(0))
	section("Figure 3 — session excerpt", r.Figure3(0, 0, 0))
	section("Figure 4 — running-example contingency table", Figure4())
	if !opts.SkipSlow {
		section("Figure 5 — L1 per day", r.Figure5())
	}
	section("Session creation (§4.6)", r.SessionSummary())
	section("Figure 6 — L2 per day", r.Figure6())
	section("Figure 7 — timeout sweep", r.Figure7(len(r.Stores)-1, nil))
	section("Table 2 — timeout influence", r.Table2(nil))
	section("Figure 8 — L3 per day with error taxonomy", r.Figure8())
	if !opts.SkipSlow {
		section("Figure 9 — load study", r.Figure9(0))
		section("Ablations", r.Ablations(opts.AblationDay))
		if sc, err := RunDriftExperiment(DefaultDriftOptions(r.Opts.Seed)); err != nil {
			if bw.err == nil {
				bw.err = err
			}
		} else {
			section("Drift detection — scripted incidents", sc)
		}
	}
	if r.Opts.Metrics != nil {
		// Last, so the snapshot covers every experiment above.
		fmt.Fprintf(bw, "## Metrics snapshot\n\n```json\n")
		if err := r.Opts.Metrics.WriteJSON(bw); err != nil && bw.err == nil {
			bw.err = err
		}
		fmt.Fprintf(bw, "```\n\n")
	}
	return bw.err
}

// errWriter folds write errors so report generation reads linearly.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
