package eval

import (
	"fmt"
	"strings"
	"time"
)

// SessionSummaryRow is one day of session-creation statistics.
type SessionSummaryRow struct {
	Day      int
	Date     time.Time
	Weekend  bool
	Sessions int
	// AssignedShare is the fraction of the day's logs assigned to a
	// session.
	AssignedShare float64
	// MeanLength is the mean number of logs per kept session.
	MeanLength float64
}

// SessionSummaryResult reproduces the §4.6 session statistics: "The
// session creation algorithm produced about 4000 sessions for week days
// and about 1000 on Saturday or Sunday. The percentage of logs that can be
// assigned to a session varied between 7.5 and 11% on the different days."
type SessionSummaryResult struct {
	Rows []SessionSummaryRow
}

// SessionSummary computes the per-day session statistics of the week.
func (r *Runner) SessionSummary() SessionSummaryResult {
	var res SessionSummaryResult
	for d := range r.Stores {
		ss, stats := r.SessionsOfDay(d)
		row := SessionSummaryRow{
			Day: d, Date: r.Stats[d].Date, Weekend: r.Stats[d].Weekend,
			Sessions:      stats.Sessions,
			AssignedShare: stats.AssignedShare(),
		}
		if len(ss) > 0 {
			total := 0
			for i := range ss {
				total += ss[i].Len()
			}
			row.MeanLength = float64(total) / float64(len(ss))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders the summary.
func (s SessionSummaryResult) String() string {
	var b strings.Builder
	b.WriteString("Session creation per day (§4.6)\n")
	b.WriteString("day  date        sessions  assigned  mean-len\n")
	for _, r := range s.Rows {
		we := " "
		if r.Weekend {
			we = "w"
		}
		fmt.Fprintf(&b, "%-4d %s%s %-9d %6.1f%%   %.1f\n",
			r.Day, r.Date.Format("2006-01-02"), we, r.Sessions,
			100*r.AssignedShare, r.MeanLength)
	}
	return b.String()
}
