package eval

import (
	"fmt"
	"sort"
	"strings"

	"logscape/internal/core/l2"
	"logscape/internal/logmodel"
	"logscape/internal/stats"
)

// ASCII renderings of the experiment results, in the spirit of the paper's
// tables and figures. Every result type has a String method so cmd/evalrun
// and the examples can print them directly.

func timeoutLabel(to logmodel.Millis) string {
	if to == l2.NoTimeout {
		return "inf"
	}
	return fmt.Sprintf("%.1fs", to.Seconds())
}

// String renders table 1.
func (t Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: days in test period with number of logs\n")
	b.WriteString("day        date        logs      weekend\n")
	for _, row := range t.Rows {
		we := ""
		if row.Weekend {
			we = "yes"
		}
		fmt.Fprintf(&b, "%-10d %s  %-9d %s\n", row.Day, row.Date.Format("2006-01-02"), row.Logs, we)
	}
	fmt.Fprintf(&b, "total: %d logs\n", t.Total)
	return b.String()
}

// String renders a per-day decisions figure (figures 5, 6 and 8): a bar per
// day with the true-positive (lower) and false-positive (upper) areas.
func (r PerDayResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Positive decisions per day for method %s\n", r.Technique)
	b.WriteString("day  date        TP   FP   ratio\n")
	for _, d := range r.Days {
		we := " "
		if d.Weekend {
			we = "w"
		}
		fmt.Fprintf(&b, "%-4d %s%s %-4d %-4d %.2f  %s|%s\n",
			d.Day, d.Date.Format("2006-01-02"), we, d.TP, d.FP, d.Ratio(),
			strings.Repeat("#", scaleBar(d.TP)), strings.Repeat("x", scaleBar(d.FP)))
	}
	fmt.Fprintf(&b, "median TP-ratio CI (level %.3f): [%.2f, %.2f]\n",
		r.RatioCILevel, r.RatioCI.Low, r.RatioCI.High)
	return b.String()
}

// scaleBar compresses counts into a bar length ≤ 60.
func scaleBar(n int) int {
	if n < 0 {
		return 0
	}
	if n > 150 {
		n = 150
	}
	return (n + 2) / 3
}

// String renders figure 7.
func (f Figure7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: L2 positive decisions on %s for different timeouts\n",
		f.Date.Format("2006-01-02"))
	b.WriteString("timeout  TP   FP   ratio\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%-8s %-4d %-4d %.2f\n", timeoutLabel(p.Timeout), p.TP, p.FP, p.Ratio())
	}
	return b.String()
}

// String renders table 2.
func (t Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: median timeout influences (level %.2f CIs, Wilcoxon two-sided)\n", t.Level)
	b.WriteString("to      tpr_to−tpr_inf [CI]           tp_to−tp_inf [CI]        p(tpr)   p(tp)\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-7s %+5.1f (%+5.1f, %+5.1f)    %+5.1f (%+5.1f, %+5.1f)    %.4f   %.4f\n",
			timeoutLabel(r.Timeout),
			r.RatioDiffMedian, r.RatioDiffCI.Low, r.RatioDiffCI.High,
			r.TPDiffMedian, r.TPDiffCI.Low, r.TPDiffCI.High,
			r.WilcoxonRatioP, r.WilcoxonTPP)
	}
	return b.String()
}

// String renders figure 8 with the error taxonomy.
func (f Figure8Result) String() string {
	var b strings.Builder
	b.WriteString(f.PerDay.String())
	fmt.Fprintf(&b, "union over all days: TP=%d FP=%d FN=%d\n", f.UnionTP, f.UnionFP, f.UnionFN)
	b.WriteString("false negatives by kind:\n")
	for _, kind := range []FNKind{FNRare, FNUnlogged, FNWrongName, FNOther} {
		if ps := f.FNByKind[kind]; len(ps) > 0 {
			fmt.Fprintf(&b, "  %-22s %d\n", kind, len(ps))
		}
	}
	b.WriteString("false positives by kind:\n")
	for _, kind := range []FPKind{FPInverted, FPStackTrace, FPCoincidence, FPSimilarID, FPOther} {
		if ps := f.FPByKind[kind]; len(ps) > 0 {
			fmt.Fprintf(&b, "  %-24s %d\n", kind, len(ps))
		}
	}
	fmt.Fprintf(&b, "inverted dependencies without stop patterns: %d\n", f.InvertedWithoutStops)
	return b.String()
}

// String renders figure 9.
func (f Figure9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: load study over %d hours (excluded apps: %s)\n",
		len(f.Points), strings.Join(f.ExcludedApps, ", "))
	fmt.Fprintf(&b, "p1 slope CI (95%%): [%+.3f, %+.3f]   (paper: strictly negative)\n",
		f.P1SlopeCI.Low, f.P1SlopeCI.High)
	fmt.Fprintf(&b, "p2 slope CI (95%%): [%+.3f, %+.3f]   (paper: contains zero)\n",
		f.P2SlopeCI.Low, f.P2SlopeCI.High)
	fmt.Fprintf(&b, "fp1 slope CI: [%+.3f, %+.3f], fp2 slope CI: [%+.3f, %+.3f]\n",
		f.FP1SlopeCI.Low, f.FP1SlopeCI.High, f.FP2SlopeCI.Low, f.FP2SlopeCI.High)
	fmt.Fprintf(&b, "residual QQ correlations: p1 %.3f, p2 %.3f\n", f.P1QQCorr, f.P2QQCorr)
	return b.String()
}

// String renders figure 1 as two aligned sparklines.
func (f Figure1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: logs per second, %s vs %s (corr %.2f)\n",
		f.AppA, f.AppB, f.Correlation)
	fmt.Fprintf(&b, "%-16s %s\n", f.AppA, sparkline(f.SeriesA))
	fmt.Fprintf(&b, "%-16s %s\n", f.AppB, sparkline(f.SeriesB))
	return b.String()
}

// sparkline renders a count series with height glyphs.
func sparkline(series []int) string {
	glyphs := []rune(" .:-=+*#%@")
	max := 0
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat(" ", len(series))
	}
	var b strings.Builder
	for _, v := range series {
		i := v * (len(glyphs) - 1) / max
		b.WriteRune(glyphs[i])
	}
	return b.String()
}

// String renders figure 2 as textual boxplots.
func (f Figure2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: boxplots for pair (%s, %s)\n", f.AppA, f.AppB)
	for _, d := range f.Directions {
		fmt.Fprintf(&b, "reference %s, candidate %s (positive: %v)\n",
			d.Reference, d.Candidate, d.Positive)
		fmt.Fprintf(&b, "  S_r: %s  median CI95 [%.3f, %.3f] CI99 [%.3f, %.3f]\n",
			boxLabel(d.RandomBox), d.RandomCI95.Low, d.RandomCI95.High,
			d.RandomCI99.Low, d.RandomCI99.High)
		fmt.Fprintf(&b, "  S_b: %s  median CI95 [%.3f, %.3f] CI99 [%.3f, %.3f]\n",
			boxLabel(d.CandidateBox), d.CandidateCI95.Low, d.CandidateCI95.High,
			d.CandidateCI99.Low, d.CandidateCI99.High)
	}
	return b.String()
}

func boxLabel(f5 stats.FiveNum) string {
	return fmt.Sprintf("min %.3f q1 %.3f med %.3f q3 %.3f max %.3f",
		f5.Min, f5.Q1, f5.Median, f5.Q3, f5.Max)
}

// String renders figure 3 as the paper draws it: one row per source, time
// advancing to the right.
func (f Figure3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: excerpt of a user session (user %s)\n", f.User)
	if len(f.Events) == 0 {
		b.WriteString("(no session found)\n")
		return b.String()
	}
	t0 := f.Events[0].Time
	for _, src := range f.Sources {
		fmt.Fprintf(&b, "%-20s", src)
		for _, ev := range f.Events {
			if ev.Source == src {
				fmt.Fprintf(&b, " %5.1fs", (ev.Time - t0).Seconds())
			} else {
				b.WriteString("      .")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// String renders figure 4.
func (f Figure4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: contingency table for bigram type (%s, %s)\n",
		f.Type.First, f.Type.Second)
	fmt.Fprintf(&b, "            a=%-4s a≠%s\n", f.Type.First, f.Type.First)
	fmt.Fprintf(&b, "  b=%-4s    %-6.0f %.0f\n", f.Type.Second, f.Table.O11, f.Table.O21)
	fmt.Fprintf(&b, "  b≠%-4s    %-6.0f %.0f\n", f.Type.Second, f.Table.O12, f.Table.O22)
	fmt.Fprintf(&b, "G² = %.3f, p = %.4f, positive = %v\n", f.Test.G2, f.Test.PValue, f.Test.Positive)
	return b.String()
}

// SortedKinds returns the FP kinds present in the result, in canonical
// order — convenience for reports.
func (f Figure8Result) SortedKinds() []FPKind {
	var out []FPKind
	for _, kind := range []FPKind{FPInverted, FPStackTrace, FPCoincidence, FPSimilarID, FPOther} {
		if len(f.FPByKind[kind]) > 0 {
			out = append(out, kind)
		}
	}
	return out
}

// FormatPairs renders a pair list compactly.
func FormatPairs(ps []string) string {
	sort.Strings(ps)
	return strings.Join(ps, ", ")
}
