package eval

// Scored drift detection: run the streaming pipeline with the drift
// detector over a scripted-incident corpus (hospital.DefaultIncidentSchedule)
// and score the emitted change points against the schedule's ground-truth
// change-point file — precision, recall and detection latency in buckets.
// This is the "moving landscape" experiment the batch evaluation cannot
// express: the paper's §6 names tracking model evolution over time as the
// motivation for daily mining, and the drift detector closes that loop.

import (
	"fmt"
	"sort"
	"strings"

	"logscape/internal/core/l3"
	"logscape/internal/drift"
	"logscape/internal/hospital"
	"logscape/internal/logmodel"
	"logscape/internal/stream"
)

// DriftOptions configures the scored drift-detection experiment.
type DriftOptions struct {
	// Seed drives topology and workload generation.
	Seed int64
	// Scale rescales the simulated volume (default 3). The stationary
	// workload spreads a day's sessions over 24 hours instead of the
	// diurnal curve's ~10 working hours, so the per-bucket citation volume
	// must be raised to keep dense keys dense (death eligibility) and the
	// per-bucket delay samples large enough for the KS channel to test.
	Scale float64
	// Days is the simulated period (default 6 — the default incident
	// schedule leads in with two quiet days, spans days 2–4 and detection
	// tails reach into day 5).
	Days int
	// BucketWidth and WindowBuckets set the streaming window geometry
	// (defaults: 1 h buckets, 24-bucket window).
	BucketWidth   logmodel.Millis
	WindowBuckets int
	// Detector configures the drift detector (zero fields take the
	// drift.DefaultConfig values).
	Detector drift.Config
	// MatchWindow is the maximum detection latency, in buckets, for an
	// alert to match a truth point (default 12 — a birth after an outage
	// needs the dependency to re-confirm for K consecutive buckets, which
	// for moderately dense keys can take half a day of hourly buckets).
	MatchWindow int64
	// WarmupBuckets is the detector burn-in: alerts in the first this-many
	// buckets of the stream are excluded from scoring, and the detector's
	// learning period (LearnBuckets) is aligned to it. Default 48 — the
	// two quiet lead-in days before the first scripted incident.
	WarmupBuckets int64
	// Workers bounds the L3 scan parallelism. Alerts are identical for
	// every setting.
	Workers int
}

// DefaultDriftOptions returns the calibrated experiment configuration.
func DefaultDriftOptions(seed int64) DriftOptions {
	return DriftOptions{
		Seed:          seed,
		Scale:         3,
		Days:          6,
		BucketWidth:   logmodel.MillisPerHour,
		WindowBuckets: 24,
		Detector:      drift.DefaultConfig(),
		MatchWindow:   12,
		WarmupBuckets: 48,
	}
}

func (o DriftOptions) withDefaults() DriftOptions {
	def := DefaultDriftOptions(o.Seed)
	if o.Scale == 0 {
		o.Scale = def.Scale
	}
	if o.Days == 0 {
		o.Days = def.Days
	}
	if o.BucketWidth == 0 {
		o.BucketWidth = def.BucketWidth
	}
	if o.WindowBuckets == 0 {
		o.WindowBuckets = def.WindowBuckets
	}
	if o.MatchWindow == 0 {
		o.MatchWindow = def.MatchWindow
	}
	if o.WarmupBuckets == 0 {
		o.WarmupBuckets = def.WarmupBuckets
	}
	return o
}

// DriftTruthScore is the scoring outcome for one ground-truth change point.
type DriftTruthScore struct {
	Truth hospital.TruthPoint `json:"truth"`
	// Bucket is the truth point's bucket index on the detector's grid.
	Bucket int64 `json:"bucket"`
	// Detected reports whether any alert matched; Latency is the earliest
	// matching alert's detection latency in buckets (-1 if undetected) and
	// MatchedKey that alert's key.
	Detected   bool   `json:"detected"`
	Latency    int64  `json:"latency_buckets"`
	MatchedKey string `json:"matched_key,omitempty"`
}

// DriftScorecard is the scored outcome of one drift experiment.
type DriftScorecard struct {
	Seed        int64           `json:"seed"`
	Days        int             `json:"days"`
	BucketWidth logmodel.Millis `json:"bucket_width"`
	// TotalAlerts counts every emitted alert; ScoredAlerts those after the
	// warm-up; MatchedAlerts the scored alerts matching some truth point.
	TotalAlerts   int `json:"total_alerts"`
	ScoredAlerts  int `json:"scored_alerts"`
	MatchedAlerts int `json:"matched_alerts"`
	// Precision is MatchedAlerts/ScoredAlerts (1 when nothing was scored);
	// Recall the fraction of truth points detected; MedianLatency the
	// median detection latency over detected truth points, in buckets.
	Precision     float64 `json:"precision"`
	Recall        float64 `json:"recall"`
	MedianLatency float64 `json:"median_latency_buckets"`
	// TruthPoints holds the per-truth-point outcomes; FalseAlerts the
	// scored alerts that matched nothing.
	TruthPoints []DriftTruthScore   `json:"truth_points"`
	FalseAlerts []drift.ChangePoint `json:"false_alerts,omitempty"`
}

// RunDriftExperiment simulates the scripted-incident corpus, streams it
// through the L3 pipeline with drift detection on, and scores the alerts
// against the schedule's ground truth.
func RunDriftExperiment(opts DriftOptions) (*DriftScorecard, error) {
	opts = opts.withDefaults()
	alerts, truth, start, err := runDriftStream(opts, true)
	if err != nil {
		return nil, err
	}
	return scoreDrift(opts, start, truth, alerts), nil
}

// runDriftStream simulates the stationary corpus — with the scripted
// incident schedule or incident-free as a control — and streams it through
// the L3 pipeline with the drift detector attached, returning the emitted
// alerts, the ground-truth change points and the stream origin.
func runDriftStream(opts DriftOptions, withIncidents bool) (
	[]drift.ChangePoint, []hospital.TruthPoint, logmodel.Millis, error) {

	opts = opts.withDefaults()
	topo := hospital.GenerateTopology(hospital.DefaultTopologyConfig(), opts.Seed)
	simCfg := hospital.DefaultConfig(opts.Seed)
	simCfg.Scale = opts.Scale
	simCfg.Days = opts.Days
	// The scripted incidents are the ONLY change points: the workload is
	// generated stationary so the weekly and diurnal rhythms cannot mimic
	// births and deaths (an overnight lull of a sparse dependency is
	// indistinguishable from an outage at bucket scale).
	simCfg.Stationary = true
	if withIncidents {
		simCfg.Incidents = hospital.DefaultIncidentSchedule(topo, simCfg.Start)
		if len(simCfg.Incidents) == 0 {
			return nil, nil, 0, fmt.Errorf("eval: empty incident schedule for seed %d", opts.Seed)
		}
	}
	sim := hospital.NewSimulator(simCfg, topo)
	truth := sim.TruthPoints()

	owner := make(map[string]string, len(topo.Groups))
	for _, g := range topo.Groups {
		owner[g.ID] = g.Owner
	}
	l3cfg := l3.DefaultConfig()
	l3cfg.Stops = hospital.CanonicalStopPatterns()
	l3cfg.Owner = owner
	l3cfg.Workers = opts.Workers
	wcfg := stream.Config{BucketWidth: opts.BucketWidth, WindowBuckets: opts.WindowBuckets}
	miner := stream.NewL3(wcfg, l3.NewMiner(topo.Directory(), l3cfg))
	miner.TrackDrift(true)
	dcfg := opts.Detector
	if dcfg.LearnBuckets == 0 {
		// Keys first sighted before the scoring warm-up ends predate the
		// run: confirming them is catch-up, not drift.
		dcfg.LearnBuckets = int(opts.WarmupBuckets)
	}
	det := drift.NewDetector(dcfg)

	var alerts []drift.ChangePoint
	in := stream.NewIngester(wcfg, miner)
	in.OnAdvance = func(b stream.Bucket) {
		f := miner.DriftFeatures()
		alerts = append(alerts, det.Observe(drift.Observation{
			// Absolute bucket numbering (the grid is floor-aligned), so
			// truth bucket indices do not depend on the stream's origin.
			Bucket: int64(b.Range.Start / opts.BucketWidth),
			At:     b.Range.Start,
			Active: f.Active,
			Delays: f.Delays,
		})...)
	}
	for d := 0; d < opts.Days; d++ {
		store, _ := sim.GenerateDay(d)
		in.AddBatch(store.Entries())
	}
	in.Flush()

	return alerts, truth, simCfg.Start, nil
}

// scoreDrift matches alerts against truth points: an alert matches a truth
// point when the kinds agree, the alert's key is one of the truth point's,
// and the alert fires within MatchWindow buckets at or after the truth
// bucket. Precision counts matched scored alerts; recall counts truth
// points with at least one match; latency is the earliest match per truth
// point.
func scoreDrift(opts DriftOptions, start logmodel.Millis,
	truth []hospital.TruthPoint, alerts []drift.ChangePoint) *DriftScorecard {

	sc := &DriftScorecard{
		Seed:          opts.Seed,
		Days:          opts.Days,
		BucketWidth:   opts.BucketWidth,
		TotalAlerts:   len(alerts),
		Precision:     1,
		MedianLatency: -1,
	}
	warmEnd := int64(start/opts.BucketWidth) + opts.WarmupBuckets
	var scored []drift.ChangePoint
	for _, a := range alerts {
		if a.Bucket >= warmEnd {
			scored = append(scored, a)
		}
	}
	sc.ScoredAlerts = len(scored)
	matched := make([]bool, len(scored))

	var latencies []int64
	for _, p := range truth {
		ts := DriftTruthScore{
			Truth:   p,
			Bucket:  int64(p.At / opts.BucketWidth),
			Latency: -1,
		}
		keys := make(map[string]bool, len(p.Keys))
		for _, k := range p.Keys {
			keys[k] = true
		}
		for i, a := range scored {
			lat := a.Bucket - ts.Bucket
			if string(a.Kind) != p.Kind || lat < 0 || lat > opts.MatchWindow || !keys[a.Key] {
				continue
			}
			matched[i] = true
			if !ts.Detected || lat < ts.Latency {
				ts.Detected, ts.Latency, ts.MatchedKey = true, lat, a.Key
			}
		}
		if ts.Detected {
			latencies = append(latencies, ts.Latency)
		}
		sc.TruthPoints = append(sc.TruthPoints, ts)
	}

	for i, a := range scored {
		if matched[i] {
			sc.MatchedAlerts++
		} else {
			sc.FalseAlerts = append(sc.FalseAlerts, a)
		}
	}
	if sc.ScoredAlerts > 0 {
		sc.Precision = float64(sc.MatchedAlerts) / float64(sc.ScoredAlerts)
	}
	if len(truth) > 0 {
		detected := 0
		for _, ts := range sc.TruthPoints {
			if ts.Detected {
				detected++
			}
		}
		sc.Recall = float64(detected) / float64(len(truth))
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		n := len(latencies)
		if n%2 == 1 {
			sc.MedianLatency = float64(latencies[n/2])
		} else {
			sc.MedianLatency = float64(latencies[n/2-1]+latencies[n/2]) / 2
		}
	}
	return sc
}

// String renders the scorecard as the report section body.
func (sc *DriftScorecard) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scripted-incident drift detection (seed %d, %d days, %v buckets)\n",
		sc.Seed, sc.Days, sc.BucketWidth)
	fmt.Fprintf(&b, "alerts: %d total, %d scored after warm-up, %d matched\n",
		sc.TotalAlerts, sc.ScoredAlerts, sc.MatchedAlerts)
	fmt.Fprintf(&b, "precision %.3f  recall %.3f  median latency %.1f buckets\n\n",
		sc.Precision, sc.Recall, sc.MedianLatency)
	for _, ts := range sc.TruthPoints {
		status := "missed"
		if ts.Detected {
			status = fmt.Sprintf("detected +%d via %s", ts.Latency, ts.MatchedKey)
		}
		fmt.Fprintf(&b, "  %-11s %-12s bucket %-6d (%d keys) %s\n",
			ts.Truth.Incident, ts.Truth.Kind, ts.Bucket, len(ts.Truth.Keys), status)
	}
	for _, a := range sc.FalseAlerts {
		fmt.Fprintf(&b, "  false alert: %s\n", a)
	}
	return b.String()
}
