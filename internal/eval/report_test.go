package eval

import (
	"strings"
	"testing"
)

func TestWriteReportFast(t *testing.T) {
	r := testRunner(t)
	var b strings.Builder
	if err := r.WriteReport(&b, ReportOptions{SkipSlow: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# logscape evaluation report",
		"Table 1", "Figure 4", "Figure 6", "Table 2", "Figure 8",
		"median TP-ratio CI",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "Figure 5") || strings.Contains(out, "Ablations") {
		t.Error("SkipSlow did not skip the slow sections")
	}
}

func TestWriteReportPropagatesErrors(t *testing.T) {
	r := testRunner(t)
	w := &failingWriter{failAfter: 100}
	if err := r.WriteReport(w, ReportOptions{SkipSlow: true}); err == nil {
		t.Error("write error not propagated")
	}
}

type failingWriter struct {
	n         int
	failAfter int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > f.failAfter {
		return 0, errFail
	}
	return len(p), nil
}

var errFail = errFailType{}

type errFailType struct{}

func (errFailType) Error() string { return "synthetic write failure" }
