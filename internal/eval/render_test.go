package eval

import (
	"math/rand"
	"strings"
	"testing"

	"logscape/internal/core/l2"
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
)

func newDetRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestTimeoutLabel(t *testing.T) {
	if got := timeoutLabel(l2.NoTimeout); got != "inf" {
		t.Errorf("inf label = %q", got)
	}
	if got := timeoutLabel(1500); got != "1.5s" {
		t.Errorf("1.5s label = %q", got)
	}
	if got := timeoutLabel(300); got != "0.3s" {
		t.Errorf("0.3s label = %q", got)
	}
}

func TestScaleBar(t *testing.T) {
	if scaleBar(-1) != 0 {
		t.Error("negative")
	}
	if scaleBar(0) != 0 {
		t.Error("zero")
	}
	if scaleBar(3) != 1 {
		t.Errorf("3 → %d", scaleBar(3))
	}
	if scaleBar(1000) != scaleBar(150) {
		t.Error("cap")
	}
	if scaleBar(150) > 60 {
		t.Errorf("bar too long: %d", scaleBar(150))
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]int{0, 0, 0}); got != "   " {
		t.Errorf("flat = %q", got)
	}
	got := sparkline([]int{0, 5, 10})
	if len([]rune(got)) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0] != ' ' {
		t.Errorf("zero glyph = %q", got[0])
	}
	if got[2] != '@' {
		t.Errorf("max glyph = %q", got[2])
	}
}

func TestFormatPairs(t *testing.T) {
	if got := FormatPairs([]string{"b", "a"}); got != "a, b" {
		t.Errorf("FormatPairs = %q", got)
	}
}

func TestPerDayResultString(t *testing.T) {
	r := PerDayResult{Technique: "LX", Days: []DayDecisions{
		{Day: 0, TP: 10, FP: 2},
		{Day: 1, TP: 0, FP: 0, Weekend: true},
	}}
	s := r.String()
	if !strings.Contains(s, "LX") || !strings.Contains(s, "10") {
		t.Errorf("render = %q", s)
	}
}

func TestClipSessions(t *testing.T) {
	mk := func(ts ...logmodel.Millis) sessions.Session {
		var es []logmodel.Entry
		for _, x := range ts {
			es = append(es, logmodel.Entry{Time: x, Source: "S"})
		}
		return sessions.Session{User: "u", Entries: es}
	}
	ss := []sessions.Session{
		mk(10, 20, 30, 40),
		mk(5, 50),    // only one entry inside → dropped
		mk(100, 110), // fully outside → dropped
	}
	hr := logmodel.TimeRange{Start: 15, End: 45}
	out := clipSessions(ss, hr)
	if len(out) != 1 {
		t.Fatalf("clipped = %d sessions", len(out))
	}
	if out[0].Len() != 3 || out[0].Entries[0].Time != 20 {
		t.Errorf("clip = %+v", out[0].Entries)
	}
}

func TestDefaultTimeoutSweep(t *testing.T) {
	sweep := DefaultTimeoutSweep()
	if sweep[len(sweep)-1] != l2.NoTimeout {
		t.Error("sweep must end with infinity")
	}
	for i := 1; i < len(sweep)-1; i++ {
		if sweep[i] <= sweep[i-1] {
			t.Error("finite timeouts must be increasing")
		}
	}
}

func TestSampleUnrelatedPairs(t *testing.T) {
	r := testRunner(t)
	rng := newDetRand()
	pairs := r.sampleUnrelatedPairs(rng, 50)
	if len(pairs) != 50 {
		t.Fatalf("sampled %d", len(pairs))
	}
	for _, p := range pairs {
		if r.TruePairs[p] {
			t.Fatalf("sampled true pair %v", p)
		}
		if p.A == p.B {
			t.Fatalf("self pair %v", p)
		}
	}
}
