// Package eval reproduces the paper's case study (§4): it simulates the
// HUG test week, runs the three mining techniques and the baseline, scores
// them against the topology's reference models, and regenerates every table
// and figure of the evaluation section as structured results with ASCII
// renderings.
//
// The experiment index in DESIGN.md maps each table/figure to the function
// here that regenerates it (Table1, Figure1 … Figure9, Table2) and to the
// corresponding benchmark in the repository root.
package eval
