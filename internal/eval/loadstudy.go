package eval

import (
	"math/rand"

	"logscape/internal/core"
	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
	"logscape/internal/stats"
)

// Figure 9 — influence of the system's load (§4.9).
//
// For each hour of the week, approach L3 identifies the dependency
// relationships actually realized in that hour (the dynamic ground truth);
// p1 and p2 are the fractions of those relationships that approaches L1 and
// L2 rediscover in the same hour. Regressing p1 and p2 on the hourly log
// count reproduces the paper's finding: the slope confidence interval is
// strictly negative for L1 and contains zero for L2.

// HourPoint is one hour's observation.
type HourPoint struct {
	Day  int
	Hour int
	// Logs is the hour's log count (the load measure).
	Logs int
	// Realized is the number of L3-realized application pairs in the hour.
	Realized int
	// P1 and P2 are the rediscovery fractions of L1 and L2.
	P1, P2 float64
	// FP1 and FP2 are the false-positive fractions among positives.
	FP1, FP2 float64
}

// Figure9Result is the §4.9 load study.
type Figure9Result struct {
	Points []HourPoint
	// P1Regression and P2Regression regress p1 and p2 on the rescaled load
	// (log count divided by its maximum, as in the paper's left plot).
	P1Regression, P2Regression stats.Regression
	// P1SlopeCI and P2SlopeCI are the 95% confidence intervals for the
	// linear factors ([−0.284, −0.215] and [−0.025, 0.002] in the paper).
	P1SlopeCI, P2SlopeCI stats.CI
	// FP1SlopeCI and FP2SlopeCI regress the false-positive fractions on
	// load (the paper: both contain zero).
	FP1SlopeCI, FP2SlopeCI stats.CI
	// P1QQCorr and P2QQCorr are the normal-QQ correlations of the
	// residuals (the paper verifies the model "by the means of normal
	// qqplots for the residuals").
	P1QQCorr, P2QQCorr float64
	// ExcludedApps are the applications removed from the L3 ground truth
	// because they do not log all of their invocations (§4.9 removes 4).
	ExcludedApps []string
}

// Figure9 runs the load study over every hour of the simulated week.
// MinRealized is the minimum number of realized pairs for an hour to be
// used (hours with nearly no activity yield meaningless fractions);
// 5 is used when 0 is passed.
func (r *Runner) Figure9(minRealized int) Figure9Result {
	if minRealized == 0 {
		minRealized = 5
	}
	var res Figure9Result

	// Exclude applications with unlogged invocations from the ground
	// truth, as the paper does ("We eliminate 4 applications which do not
	// log all of their invocations to increase reliability of the output
	// of L3").
	excluded := make(map[string]bool)
	for _, p := range r.Topo.Phenomena.UnloggedEdges {
		if !excluded[p.App] {
			excluded[p.App] = true
			res.ExcludedApps = append(res.ExcludedApps, p.App)
		}
	}

	rng := rand.New(rand.NewSource(r.Opts.Seed ^ 0xf19))
	l1cfg := r.Opts.L1
	for day := range r.Stores {
		store := r.Stores[day]
		for h, hr := range r.Sim.DayRange(day).Hours() {
			logs := store.CountRange(hr)
			// Hourly L3 ground truth: realized dependencies, as app pairs.
			deps := r.hourL3(store, hr)
			pairs := make(core.PairSet)
			for p := range deps {
				if excluded[p.App] || !r.TrueDeps[p] {
					continue
				}
				owner := r.Owner[p.Group]
				if owner == p.App || excluded[owner] {
					continue
				}
				pairs[core.MakePair(p.App, owner)] = true
			}
			if len(pairs) < minRealized {
				continue
			}
			idx := store.SourceIndexRange(hr)

			// L1 on the single hour: one slot test per realized pair. The
			// denominator is restricted to pairs that are *testable* in the
			// hour (both applications reach minlogs, the paper's support
			// notion): at 1/100 of HUG's volume, quiet hours would
			// otherwise measure data starvation rather than the
			// parallelism interference the experiment is about.
			// Iterate in sorted order: eligible1 feeds SlotTest, which
			// consumes the shared rng, so map-range order would leak into
			// the sampled slots and make runs non-reproducible.
			eligible1 := make([]core.Pair, 0, len(pairs))
			for _, p := range pairs.SortedPairs() {
				if len(idx[p.A]) >= l1cfg.MinLogs && len(idx[p.B]) >= l1cfg.MinLogs {
					eligible1 = append(eligible1, p)
				}
			}
			found1, fp1, testedFP1 := 0, 0, 0
			for _, p := range eligible1 {
				if l1.SlotTest(rng, idx[p.A], idx[p.B], hr, l1cfg) {
					found1++
				}
			}
			// L1 false-positive fraction on a sample of unrelated,
			// equally-eligible pairs.
			for _, q := range r.sampleUnrelatedPairs(rng, 30) {
				if len(idx[q.A]) < l1cfg.MinLogs || len(idx[q.B]) < l1cfg.MinLogs {
					continue
				}
				testedFP1++
				if l1.SlotTest(rng, idx[q.A], idx[q.B], hr, l1cfg) {
					fp1++
				}
			}

			// L2 on the hour's sessions, over realized pairs whose logs
			// actually co-occur in those sessions (at least MinJoint
			// adjacent occurrences regardless of timeout) — the analogue
			// of the minlogs support restriction for L1 above.
			hourSessions := clipSessions(r.sessionsCached(day), hr)
			allCounts := l2.CountBigrams(hourSessions, l2.NoTimeout)
			minJoint := r.Opts.L2.MinJoint
			if minJoint == 0 {
				minJoint = 3
			}
			eligible2 := make([]core.Pair, 0, len(pairs))
			for _, p := range pairs.SortedPairs() {
				joint := allCounts.Joint[l2.Bigram{First: p.A, Second: p.B}] +
					allCounts.Joint[l2.Bigram{First: p.B, Second: p.A}]
				if joint >= minJoint {
					eligible2 = append(eligible2, p)
				}
			}
			l2res := l2.Mine(hourSessions, r.Opts.L2)
			dep2 := l2res.DependentPairs()
			found2, fp2 := 0, 0
			for _, p := range eligible2 {
				if dep2[p] {
					found2++
				}
			}
			for p := range dep2 {
				if !r.TruePairs[p] {
					fp2++
				}
			}
			if len(eligible1) < minRealized || len(eligible2) < minRealized {
				continue
			}
			pt := HourPoint{
				Day: day, Hour: h, Logs: logs, Realized: len(pairs),
				P1: float64(found1) / float64(len(eligible1)),
				P2: float64(found2) / float64(len(eligible2)),
			}
			if tot := found1 + fp1; testedFP1 > 0 && tot > 0 {
				pt.FP1 = float64(fp1) / float64(tot)
			}
			if n := len(dep2); n > 0 {
				pt.FP2 = float64(fp2) / float64(n)
			}
			res.Points = append(res.Points, pt)
		}
	}

	// Regressions on rescaled load.
	maxLogs := 0.0
	for _, p := range res.Points {
		if float64(p.Logs) > maxLogs {
			maxLogs = float64(p.Logs)
		}
	}
	if maxLogs == 0 || len(res.Points) < 3 {
		return res
	}
	x := make([]float64, len(res.Points))
	y1 := make([]float64, len(res.Points))
	y2 := make([]float64, len(res.Points))
	f1 := make([]float64, len(res.Points))
	f2 := make([]float64, len(res.Points))
	for i, p := range res.Points {
		x[i] = float64(p.Logs) / maxLogs
		y1[i], y2[i] = p.P1, p.P2
		f1[i], f2[i] = p.FP1, p.FP2
	}
	if reg, err := stats.LinearRegression(x, y1); err == nil {
		res.P1Regression = reg
		res.P1SlopeCI = reg.SlopeCI(0.95)
		res.P1QQCorr = stats.QQCorrelation(reg.Residuals)
	}
	if reg, err := stats.LinearRegression(x, y2); err == nil {
		res.P2Regression = reg
		res.P2SlopeCI = reg.SlopeCI(0.95)
		res.P2QQCorr = stats.QQCorrelation(reg.Residuals)
	}
	if reg, err := stats.LinearRegression(x, f1); err == nil {
		res.FP1SlopeCI = reg.SlopeCI(0.95)
	}
	if reg, err := stats.LinearRegression(x, f2); err == nil {
		res.FP2SlopeCI = reg.SlopeCI(0.95)
	}
	return res
}

// hourL3 mines L3 on one hour of a store.
func (r *Runner) hourL3(store *logmodel.Store, hr logmodel.TimeRange) core.AppServiceSet {
	return r.l3MinerShared().Mine(store, hr).Dependencies()
}

// sampleUnrelatedPairs draws up to n application pairs outside the
// reference model.
func (r *Runner) sampleUnrelatedPairs(rng *rand.Rand, n int) []core.Pair {
	apps := r.AppNames()
	out := make([]core.Pair, 0, n)
	for tries := 0; len(out) < n && tries < 20*n; tries++ {
		a := apps[rng.Intn(len(apps))]
		b := apps[rng.Intn(len(apps))]
		if a == b {
			continue
		}
		p := core.MakePair(a, b)
		if r.TruePairs[p] {
			continue
		}
		out = append(out, p)
	}
	return out
}

// clipSessions restricts sessions to entries inside the range, keeping
// fragments with at least two entries.
func clipSessions(ss []sessions.Session, hr logmodel.TimeRange) []sessions.Session {
	var out []sessions.Session
	for i := range ss {
		es := ss[i].Entries
		lo, hi := 0, len(es)
		for lo < hi && es[lo].Time < hr.Start {
			lo++
		}
		for hi > lo && es[hi-1].Time >= hr.End {
			hi--
		}
		if hi-lo >= 2 {
			out = append(out, sessions.Session{User: ss[i].User, Entries: es[lo:hi]})
		}
	}
	return out
}
