package eval

import (
	"fmt"
	"reflect"
	"testing"

	"logscape/internal/obs"
)

// TestStationaryWeekFlagsNothing is the false-alarm property: a stationary,
// incident-free week must raise zero alerts across ten seeds. The learning
// horizon is stretched to cover the whole stream so genuine novelty — a
// rare dependency first exercised mid-week — is absorbed as catch-up rather
// than announced as a birth; everything still armed (deaths of established
// keys, flicker births, delay shifts) must stay quiet on stationary traffic.
func TestStationaryWeekFlagsNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("ten seven-day simulations")
	}
	for seed := int64(1); seed <= 10; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			opts := DefaultDriftOptions(seed)
			opts.Days = 7
			opts.Detector.LearnBuckets = opts.Days * 24
			alerts, truth, _, err := runDriftStream(opts, false)
			if err != nil {
				t.Fatal(err)
			}
			if len(truth) != 0 {
				t.Fatalf("incident-free run has %d truth points", len(truth))
			}
			for _, a := range alerts {
				t.Errorf("false alarm: %s", a)
			}
		})
	}
}

// TestDriftExperimentScorecard asserts the detection-quality floors of the
// scored scripted-incident experiment, and that the alerts are identical
// at any worker count and with metrics on or off.
func TestDriftExperimentScorecard(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day scripted-incident simulation")
	}
	base, err := RunDriftExperiment(DefaultDriftOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("scorecard:\n%s", base)
	if base.Precision < 0.9 {
		t.Errorf("precision = %.3f, want >= 0.9", base.Precision)
	}
	if base.Recall < 0.8 {
		t.Errorf("recall = %.3f, want >= 0.8", base.Recall)
	}
	k := base.TruthPoints
	if len(k) == 0 {
		t.Fatal("no truth points scored")
	}
	// Median detection latency within K+2 buckets of the scripted onset.
	maxLatency := float64(DefaultDriftOptions(1).Detector.K + 2)
	if base.MedianLatency < 0 || base.MedianLatency > maxLatency {
		t.Errorf("median latency = %.1f buckets, want [0, %.0f]", base.MedianLatency, maxLatency)
	}

	// Same corpus with maximal scan parallelism and metrics collection on:
	// the scorecard (alerts included) must be identical.
	opts := DefaultDriftOptions(1)
	opts.Workers = 8
	opts.Detector.Metrics = obs.New()
	par, err := RunDriftExperiment(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, par) {
		t.Errorf("scorecard differs with Workers=8 + metrics:\n%s\nvs\n%s", base, par)
	}
	if par.String() != base.String() {
		t.Error("rendered scorecards differ across worker counts")
	}
}
