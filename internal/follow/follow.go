package follow

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"logscape/internal/core"
	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/core/l3"
	"logscape/internal/directory"
	"logscape/internal/drift"
	"logscape/internal/hospital"
	"logscape/internal/logmodel"
	"logscape/internal/modelstore"
	"logscape/internal/obs"
	"logscape/internal/sessions"
	"logscape/internal/stream"
)

// Config parameterizes one follow engine run. The zero value is not
// runnable: Method, Source, BucketSec and WindowBuckets are required.
type Config struct {
	// Method selects the streaming miner: "l1", "l2" or "l3".
	Method string
	// Source names the log stream: a file path, "-" for stdin, or a .gz
	// file (decompressed transparently, torn tails tolerated).
	Source string
	// DirPath is the service-directory XML, required for l3.
	DirPath string
	// MinLogs is the L1 per-slot minimum log count.
	MinLogs int
	// TimeoutSec is the L2 bigram timeout in seconds (0 = infinity).
	TimeoutSec float64
	// NoStops disables the canonical L3 stop patterns.
	NoStops bool
	// Workers bounds per-bucket mining parallelism; output is identical
	// for any value (0 = all cores via the shared pool, 1 = sequential).
	Workers int
	// BucketSec is the bucket width in seconds; WindowBuckets the window
	// size in buckets.
	BucketSec     float64
	WindowBuckets int
	// ResumePath, when set, checkpoints the window per closed bucket and
	// resumes from an existing checkpoint on start.
	ResumePath string
	// QuarantinePath, when set, appends every rejected line prefixed with
	// its fault class.
	QuarantinePath string
	// StorePath, when set, persists per-bucket models and evidence to a
	// segment-store directory and switches checkpoints to the light
	// (window-in-store) form.
	StorePath string
	// Drift runs the drift detector over delivered buckets and prints one
	// DRIFT line per confirmed change point to stderr.
	Drift bool
	// Metrics, when non-nil, collects the run's counters, gauges and
	// traces. Collection never perturbs emitted models.
	Metrics *obs.Registry
	// Backoff, when non-nil, is the retry schedule for transient read
	// errors (the CLI installs a capped sleep; tests leave it nil).
	Backoff func(attempt int)
	// Wait is the tailer's quiescent-EOF hook for plain-file sources:
	// return true to keep tailing (live mode), false to end the stream.
	// nil ends at first quiescent EOF — the one-shot replay the CLI uses.
	Wait func() bool
	// Stop, when non-nil, is polled before every transport read; once it
	// returns true the engine returns without flushing the open bucket —
	// the SIGKILL-equivalent a daemon needs for exact resume (a flush
	// would emit a partial-bucket document an uninterrupted run never
	// emits). Stop does not interrupt a read blocked inside Wait; a live
	// stream's Wait hook must consult the same signal.
	Stop func() bool
	// AdvanceLock, when non-nil, is held around every bucket emission
	// (document write, store append, delta line, drift alerts, checkpoint,
	// Progress). A daemon points it at the tenant's mutex so queries never
	// observe a half-written advance.
	AdvanceLock sync.Locker
	// Progress, when non-nil, is called after every delivered bucket
	// (inside AdvanceLock) with the run's cumulative position.
	Progress func(Progress)
}

// Progress is the per-bucket position report delivered to Config.Progress.
type Progress struct {
	// Buckets is the number of closed buckets delivered so far.
	Buckets int
	// Consumed is the logical stream offset past the last processed line.
	Consumed int64
	// LastIndex is the index of the just-delivered bucket; WindowEnd the
	// end of its time range.
	LastIndex int64
	WindowEnd logmodel.Millis
}

// Result summarizes a finished engine run — the numbers the CLI's
// "follow done" line and the daemon's status document render.
type Result struct {
	// Stopped reports the run ended via Config.Stop (no flush, no final
	// partial-bucket document) rather than at end of stream.
	Stopped bool
	// Ingest and Feed are the ingester's and feeder's accounting.
	Ingest stream.IngestStats
	Feed   stream.FeedStats
	// Rotations counts transport rotations; TornGzip reports a .gz stream
	// that ended in a torn tail.
	Rotations int64
	TornGzip  bool
}

// buildMiner constructs the streaming miner for the configured method.
func buildMiner(cfg Config, wcfg stream.Config) (stream.Miner, error) {
	switch cfg.Method {
	case "l1":
		c := l1.DefaultConfig()
		c.MinLogs = cfg.MinLogs
		c.Workers = cfg.Workers
		c.Metrics = cfg.Metrics
		return stream.NewL1(wcfg, c), nil
	case "l2":
		c := l2.DefaultConfig()
		c.Timeout = logmodel.SecondsToMillis(cfg.TimeoutSec)
		if cfg.TimeoutSec == 0 {
			c.Timeout = l2.NoTimeout
		}
		c.Workers = cfg.Workers
		c.Metrics = cfg.Metrics
		return stream.NewL2(wcfg, sessions.Config{Metrics: cfg.Metrics}, c), nil
	case "l3":
		if cfg.DirPath == "" {
			return nil, fmt.Errorf("l3 requires a service directory")
		}
		df, err := os.Open(cfg.DirPath)
		if err != nil {
			return nil, err
		}
		dir, err := directory.Read(df)
		df.Close()
		if err != nil {
			return nil, err
		}
		c := l3.DefaultConfig()
		c.Workers = cfg.Workers
		c.Metrics = cfg.Metrics
		if !cfg.NoStops {
			c.Stops = hospital.CanonicalStopPatterns()
		}
		return stream.NewL3(wcfg, l3.NewMiner(dir, c)), nil
	default:
		return nil, fmt.Errorf("follow mode supports l1, l2 and l3, not %q", cfg.Method)
	}
}

// deltaPrinter renders the per-bucket stderr delta line: the window
// extent, the model size, and the pairs (or app→service deps) that
// appeared and disappeared since the previous window.
type deltaPrinter struct {
	w         io.Writer
	deps      bool
	prevPairs core.PairSet
	prevDeps  core.AppServiceSet
}

func (d *deltaPrinter) print(r logmodel.TimeRange, snap core.ModelDocument) {
	stamp := func(m logmodel.Millis) string {
		return m.Time().Format("2006-01-02T15:04:05")
	}
	if d.deps {
		cur := snap.DepSet()
		gone, born := core.DiffDeps(d.prevDeps, cur)
		fmt.Fprintf(d.w, "window [%s .. %s): %d deps", stamp(r.Start), stamp(r.End), len(cur))
		for _, dep := range born {
			fmt.Fprintf(d.w, " +%s->%s", dep.App, dep.Group)
		}
		for _, dep := range gone {
			fmt.Fprintf(d.w, " -%s->%s", dep.App, dep.Group)
		}
		fmt.Fprintln(d.w)
		d.prevDeps = cur
		return
	}
	cur := snap.PairSet()
	gone, born := core.DiffModels(d.prevPairs, cur)
	fmt.Fprintf(d.w, "window [%s .. %s): %d pairs", stamp(r.Start), stamp(r.End), len(cur))
	for _, p := range born {
		fmt.Fprintf(d.w, " +%s--%s", p.A, p.B)
	}
	for _, p := range gone {
		fmt.Fprintf(d.w, " -%s--%s", p.A, p.B)
	}
	fmt.Fprintln(d.w)
	d.prevPairs = cur
}

// source is the composed hardened input stack.
type source struct {
	r      io.Reader              // retry (+ gzip) composition; read this
	tailer *stream.Tailer         // non-nil for a plain file: rotation-aware
	gz     *stream.TornGzipReader // non-nil for .gz input
	close  func()
}

// rotations reports transport rotations seen so far (0 for stdin/.gz).
func (s *source) rotations() int64 {
	if s.tailer == nil {
		return 0
	}
	return s.tailer.Rotations()
}

// openSource builds the hardened read stack for the configured input:
// retries below the decompressor (gzip errors are sticky), torn-tail
// tolerance for .gz, rotation-aware tailing for plain files.
func openSource(cfg Config) (*source, error) {
	policy := stream.RetryPolicy{MaxRetries: 8, Backoff: cfg.Backoff}
	name := cfg.Source
	if name == "-" {
		return &source{
			r:     stream.NewRetryReader(os.Stdin, policy, cfg.Metrics),
			close: func() {},
		}, nil
	}
	if strings.HasSuffix(name, ".gz") {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		gz := stream.NewTornGzipReader(stream.NewRetryReader(f, policy, cfg.Metrics), cfg.Metrics)
		return &source{r: gz, gz: gz, close: func() { f.Close() }}, nil
	}
	tl, err := stream.NewTailer(name, stream.TailerConfig{Wait: cfg.Wait, Metrics: cfg.Metrics})
	if err != nil {
		return nil, err
	}
	return &source{
		r:      stream.NewRetryReader(tl, policy, cfg.Metrics),
		tailer: tl,
		close:  func() { tl.Close() },
	}, nil
}

// stopReader polls stop before every read, turning a raised stop signal
// into a clean end of stream at the next read boundary. The engine then
// distinguishes a stop-EOF from a real one via the same signal and skips
// the end-of-stream flush.
type stopReader struct {
	r    io.Reader
	stop func() bool
}

func (s *stopReader) Read(p []byte) (int, error) {
	if s.stop() {
		return 0, io.EOF
	}
	return s.r.Read(p)
}

// lockAdvance acquires the advance lock, if one is configured.
func lockAdvance(cfg Config) func() {
	if cfg.AdvanceLock == nil {
		return func() {}
	}
	cfg.AdvanceLock.Lock()
	return cfg.AdvanceLock.Unlock
}

// Run executes one follow engine to completion: model documents go to
// stdout, delta lines and DRIFT alerts to stderr. It returns when the
// stream ends (one-shot EOF, or a live stream's Wait hook returning
// false), when Config.Stop is raised, or on the first error.
func Run(cfg Config, stdout, stderr io.Writer) (Result, error) {
	var res Result
	if cfg.Source == "" {
		return res, fmt.Errorf("follow mode tails exactly one log stream (a file or - for stdin)")
	}
	if cfg.BucketSec <= 0 || cfg.WindowBuckets <= 0 {
		return res, fmt.Errorf("follow mode requires -bucket > 0 and -window > 0")
	}
	wcfg := stream.Config{
		BucketWidth:   logmodel.SecondsToMillis(cfg.BucketSec),
		WindowBuckets: cfg.WindowBuckets,
		Workers:       cfg.Workers,
		Metrics:       cfg.Metrics,
		// The built-in follow miners copy what they retain and the
		// checkpoint serializes window buckets before they retire, so the
		// ingester may reuse retired bucket slices.
		RecycleBuckets: true,
	}
	miner, err := buildMiner(cfg, wcfg)
	if err != nil {
		return res, err
	}
	// Feature tracking feeds two consumers: the drift detector (Drift) and
	// the store's per-key score column (StorePath). Either one turns it on.
	var fsrc stream.FeatureSource
	if fs, ok := miner.(stream.FeatureSource); ok && (cfg.Drift || cfg.StorePath != "") {
		fs.TrackDrift(true)
		fsrc = fs
	}
	if cfg.Drift && fsrc == nil {
		return res, fmt.Errorf("drift detection is not supported for method %q", cfg.Method)
	}

	// Open the model store before the checkpoint is restored: a light
	// (window-in-store) checkpoint needs the store to hydrate its window.
	var store *modelstore.Store
	if cfg.StorePath != "" {
		store, err = modelstore.Open(cfg.StorePath, modelstore.Config{
			BucketWidth:   wcfg.BucketWidth,
			WindowBuckets: wcfg.WindowBuckets,
			Metrics:       cfg.Metrics,
		})
		if err != nil {
			return res, err
		}
	}

	// Load the resume checkpoint, if any. A missing file is a fresh start.
	var cp *stream.Checkpoint
	if cfg.ResumePath != "" {
		if cfg.Source == "-" {
			return res, fmt.Errorf("resume requires a file input: stdin cannot be repositioned across restarts")
		}
		cp, err = stream.ReadCheckpointFile(cfg.ResumePath)
		if err != nil {
			return res, err
		}
		if cp != nil && cp.Rotations > 0 {
			return res, fmt.Errorf("checkpoint %s predates %d rotation(s); its offset no longer maps to one file — remove it to start fresh",
				cfg.ResumePath, cp.Rotations)
		}
	}
	if cp != nil && cp.WindowInStore {
		// The window's entries live in the store's raw segments: read them
		// back locally instead of re-tailing the source stream.
		if store == nil {
			return res, fmt.Errorf("checkpoint %s stores its window in a model store; rerun with the original -store DIR", cfg.ResumePath)
		}
		if err := store.Hydrate(cp); err != nil {
			return res, fmt.Errorf("resume: %w", err)
		}
	}
	if cp == nil && store != nil && !store.Empty() {
		// Bucket indexes in the store are anchored to the original run's
		// origin; appending from a fresh origin would corrupt the history.
		return res, fmt.Errorf("store %s already holds segments but no checkpoint was found; resume with a checkpoint, or point the store at a fresh directory", cfg.StorePath)
	}

	var in *stream.Ingester
	if cp != nil {
		in, err = cp.Restore(wcfg, miner)
		if err != nil {
			return res, fmt.Errorf("resume: %w", err)
		}
	} else {
		in = stream.NewIngester(wcfg, miner)
	}

	// The drift detector resumes from the checkpoint's state blob: the
	// restored window buckets are replayed into the miner only, never
	// re-observed, so a kill+resume neither repeats nor drops an alert.
	var det *drift.Detector
	if cfg.Drift {
		dcfg := drift.Config{Metrics: cfg.Metrics}
		if cp != nil && len(cp.Drift) > 0 {
			det, err = drift.Restore(dcfg, cp.Drift)
			if err != nil {
				return res, fmt.Errorf("resume: %w", err)
			}
		} else {
			det = drift.NewDetector(dcfg)
		}
	}

	var quarantine io.Writer
	if cfg.QuarantinePath != "" {
		qf, err := os.OpenFile(cfg.QuarantinePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return res, err
		}
		defer qf.Close()
		quarantine = qf
	}
	feeder := stream.NewFeeder(in, stream.FeederConfig{Quarantine: quarantine, Metrics: cfg.Metrics})

	src, err := openSource(cfg)
	if err != nil {
		return res, err
	}
	defer src.close()

	// Reposition the transport at the checkpoint offset: a seek for a plain
	// file, a decompressed-byte skip for .gz (the stream is re-read from the
	// start, but nothing is re-ingested).
	var base int64
	if cp != nil {
		base = cp.Offset
		if src.tailer != nil {
			if err := src.tailer.SeekTo(cp.Offset); err != nil {
				return res, fmt.Errorf("resume: %w", err)
			}
		} else if _, err := io.CopyN(io.Discard, src.r, cp.Offset); err != nil {
			return res, fmt.Errorf("resume: skipping %d bytes: %w", cp.Offset, err)
		}
	}

	delta := &deltaPrinter{w: stderr, deps: cfg.Method == "l3"}
	if cp != nil {
		// Seed the delta baseline from the restored window: the previous
		// run's last delta was printed against exactly this model, so the
		// resumed run's first delta line shows only what actually changed —
		// the concatenated delta stream is byte-identical to an
		// uninterrupted run's.
		snap := miner.Snapshot()
		if delta.deps {
			delta.prevDeps = snap.DepSet()
		} else {
			delta.prevPairs = snap.PairSet()
		}
	}
	var emitErr error
	in.OnAdvance = func(b stream.Bucket) {
		if emitErr != nil {
			return
		}
		defer lockAdvance(cfg)()
		// One trace tree per delivered bucket; the latest completed one is
		// what /trace serves.
		trace := cfg.Metrics.StartTrace(fmt.Sprintf("bucket %d", b.Index))
		span := trace.Child("snapshot")
		snap := miner.Snapshot()
		span.End()
		// The document is rendered once: the same bytes go to stdout and —
		// verbatim — into the store, which is what makes the store's
		// round-trip byte-identical to the live stream by construction.
		span = trace.Child("emit")
		var doc bytes.Buffer
		err := core.WriteModel(&doc, snap)
		if err == nil {
			_, err = stdout.Write(doc.Bytes())
		}
		span.End()
		trace.End()
		if err != nil {
			emitErr = err
			return
		}
		var feats stream.DriftFeatures
		if fsrc != nil {
			feats = fsrc.DriftFeatures()
		}
		if store != nil {
			// Evidence is serialized here, while the bucket's entries are
			// still live: with RecycleBuckets the slices may be reused once
			// OnAdvance returns, and AppendEntry copies every byte out.
			rec := modelstore.Record{Bucket: b.Index, Range: b.Range, Model: doc.Bytes()}
			for _, e := range b.Entries {
				rec.Evidence = append(rec.Evidence, logmodel.AppendEntry(nil, e))
			}
			if len(feats.Scores) > 0 {
				keys := make([]string, 0, len(feats.Scores))
				for k := range feats.Scores {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					rec.Scores = append(rec.Scores, modelstore.Score{Key: k, Value: feats.Scores[k]})
				}
			}
			if err := store.Append(rec); err != nil {
				emitErr = err
				return
			}
		}
		delta.print(in.WindowRange(), snap)
		if det != nil {
			for _, c := range det.Observe(drift.Observation{
				Bucket: b.Index, At: b.Range.Start,
				Active: feats.Active, Scores: feats.Scores, Delays: feats.Delays,
			}) {
				if store != nil {
					// The confirming bucket's record was just appended, so the
					// locator names the store's live raw segment.
					ref, ok, err := store.Locate(c.At)
					if err != nil {
						emitErr = err
						return
					}
					if ok {
						c.Segment = ref.String()
					}
				}
				fmt.Fprintln(stderr, c)
			}
		}
		if cfg.ResumePath != "" {
			// Consumed() already covers the line that closed this bucket (it
			// sits in the checkpoint's pending set), so base+Consumed is an
			// exact resume point: no replay, no gap. With a store, the window
			// is not serialized into the checkpoint — the store's raw
			// segments already hold it (CheckpointLight).
			var next *stream.Checkpoint
			if store != nil {
				next = in.CheckpointLight(base+feeder.Consumed(), src.rotations())
			} else {
				next = in.Checkpoint(base+feeder.Consumed(), src.rotations())
			}
			if det != nil {
				blob, err := det.State()
				if err != nil {
					emitErr = fmt.Errorf("serializing drift state: %w", err)
					return
				}
				next.Drift = blob
			}
			if err := stream.WriteCheckpointFile(cfg.ResumePath, next); err != nil {
				emitErr = fmt.Errorf("writing checkpoint: %w", err)
			}
		}
		if cfg.Progress != nil {
			s := in.Stats()
			cfg.Progress(Progress{
				Buckets:   s.Buckets,
				Consumed:  base + feeder.Consumed(),
				LastIndex: b.Index,
				WindowEnd: b.Range.End,
			})
		}
	}

	r := src.r
	if cfg.Stop != nil {
		r = &stopReader{r: src.r, stop: cfg.Stop}
	}
	if err := feeder.Run(r); err != nil {
		return res, err
	}
	fill := func() {
		res.Ingest = in.Stats()
		res.Feed = feeder.Stats()
		res.Rotations = src.rotations()
		res.TornGzip = src.gz != nil && src.gz.Torn()
	}
	if cfg.Stop != nil && cfg.Stop() {
		// A raised stop is the SIGKILL-equivalent: no flush, so no
		// partial-bucket document an uninterrupted run would not emit —
		// the next run resumes from the last checkpoint and re-reads the
		// open bucket's lines instead.
		res.Stopped = true
		fill()
		return res, emitErr
	}
	in.Flush()
	fill()
	return res, emitErr
}
