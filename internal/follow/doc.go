// Package follow is the reusable streaming-follow engine: it composes the
// hardened ingest stack (internal/stream), the incremental miners, the
// drift detector and the model store into one run loop that tails a log
// stream and emits the sliding-window model document per closed bucket.
//
// cmd/depmine's -follow mode is a thin adapter over Run; cmd/depmined
// hosts many concurrent engines — one per tenant stream — which is why
// the engine is a package and not CLI code: every hook a daemon needs
// (cooperative stop, tail-wait, per-bucket progress, an advance lock for
// read-your-writes queries) is a Config field, and everything the CLI
// prints after a run (the summary line, the metrics document) derives
// from the returned Result instead of being written by the engine.
//
// The determinism contract holds per engine: the model documents written
// to stdout, the checkpoint files and the store directory are a pure
// function of the stream's accepted entries and geometry — independent of
// the Workers knob, of metrics collection, and of whatever other engines
// share the process (they share only the internal/parallel helper pool,
// which never influences results). See DESIGN.md §15.
package follow
