package pointproc

import (
	"math"
	"math/rand"
	"sort"

	"logscape/internal/logmodel"
)

// DistNearest returns dist(t, A) as defined by equation (1) of the paper:
// the smallest absolute difference between t and any point of the sorted
// sequence a. It returns math.MaxInt64 (as Millis) for an empty sequence.
func DistNearest(t logmodel.Millis, a []logmodel.Millis) logmodel.Millis {
	n := len(a)
	if n == 0 {
		return logmodel.Millis(math.MaxInt64)
	}
	i := sort.Search(n, func(j int) bool { return a[j] >= t })
	best := logmodel.Millis(math.MaxInt64)
	if i < n {
		best = a[i] - t
	}
	if i > 0 {
		if d := t - a[i-1]; d < best {
			best = d
		}
	}
	return best
}

// DistNext returns the distance from t to the next arrival in a at or after
// t — the variant used by Li & Ma's original algorithm, kept for the
// ablation in DESIGN.md (§5.2). It returns math.MaxInt64 when no later
// arrival exists.
func DistNext(t logmodel.Millis, a []logmodel.Millis) logmodel.Millis {
	n := len(a)
	i := sort.Search(n, func(j int) bool { return a[j] >= t })
	if i == n {
		return logmodel.Millis(math.MaxInt64)
	}
	return a[i] - t
}

// DistanceSample computes dist(p, a) for every point p of points, using the
// given distance function (DistNearest or DistNext), and returns the
// distances as float64 seconds. Points whose distance is undefined
// (MaxInt64) are skipped.
func DistanceSample(points, a []logmodel.Millis,
	dist func(logmodel.Millis, []logmodel.Millis) logmodel.Millis) []float64 {
	out := make([]float64, 0, len(points))
	for _, p := range points {
		d := dist(p, a)
		if d == logmodel.Millis(math.MaxInt64) {
			continue
		}
		out = append(out, d.Seconds())
	}
	return out
}

// UniformPoints draws n independent uniform random points in [r.Start,
// r.End) — the random sample S_r of §3.1. The result is unsorted.
func UniformPoints(rng *rand.Rand, r logmodel.TimeRange, n int) []logmodel.Millis {
	d := int64(r.Duration())
	if d <= 0 || n <= 0 {
		return nil
	}
	out := make([]logmodel.Millis, n)
	for i := range out {
		out[i] = r.Start + logmodel.Millis(rng.Int63n(d))
	}
	return out
}

// Subsample returns at most n points of a chosen uniformly without
// replacement, preserving order — the subsampling of B in §3.1 that bounds
// the cost of the per-slot test. When len(a) ≤ n the original slice is
// returned unchanged.
func Subsample(rng *rand.Rand, a []logmodel.Millis, n int) []logmodel.Millis {
	if n <= 0 {
		return nil
	}
	if len(a) <= n {
		return a
	}
	// Floyd's algorithm for a sorted sample of indices.
	chosen := make(map[int]bool, n)
	for j := len(a) - n; j < len(a); j++ {
		k := rng.Intn(j + 1)
		if chosen[k] {
			chosen[j] = true
		} else {
			chosen[k] = true
		}
	}
	idx := make([]int, 0, n)
	for k := range chosen {
		idx = append(idx, k)
	}
	sort.Ints(idx)
	out := make([]logmodel.Millis, n)
	for i, k := range idx {
		out[i] = a[k]
	}
	return out
}

// Homogeneous generates a homogeneous Poisson process with the given rate
// (events per second) over r. The result is sorted.
func Homogeneous(rng *rand.Rand, r logmodel.TimeRange, rate float64) []logmodel.Millis {
	if rate <= 0 || r.End <= r.Start {
		return nil
	}
	var out []logmodel.Millis
	t := float64(r.Start)
	for {
		t += rng.ExpFloat64() / rate * 1000 // rate is per second, t in ms
		if t >= float64(r.End) {
			return out
		}
		out = append(out, logmodel.Millis(t))
	}
}

// IntensityFunc maps a time to an instantaneous rate in events per second.
type IntensityFunc func(t logmodel.Millis) float64

// NonHomogeneous generates a non-homogeneous Poisson process over r with
// the given intensity function by thinning against maxRate (events per
// second), which must dominate the intensity everywhere on r; intensities
// above maxRate are clipped. The result is sorted.
func NonHomogeneous(rng *rand.Rand, r logmodel.TimeRange, intensity IntensityFunc, maxRate float64) []logmodel.Millis {
	if maxRate <= 0 || r.End <= r.Start {
		return nil
	}
	var out []logmodel.Millis
	t := float64(r.Start)
	for {
		t += rng.ExpFloat64() / maxRate * 1000
		if t >= float64(r.End) {
			return out
		}
		m := logmodel.Millis(t)
		if rng.Float64()*maxRate < intensity(m) {
			out = append(out, m)
		}
	}
}

// MergeSorted merges two sorted timestamp sequences into one sorted
// sequence.
func MergeSorted(a, b []logmodel.Millis) []logmodel.Millis {
	out := make([]logmodel.Millis, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// CountInRange returns the number of points of the sorted sequence a that
// fall in [r.Start, r.End).
func CountInRange(a []logmodel.Millis, r logmodel.TimeRange) int {
	lo := sort.Search(len(a), func(i int) bool { return a[i] >= r.Start })
	hi := sort.Search(len(a), func(i int) bool { return a[i] >= r.End })
	return hi - lo
}

// SliceRange returns the sub-slice of the sorted sequence a inside
// [r.Start, r.End), sharing backing storage.
func SliceRange(a []logmodel.Millis, r logmodel.TimeRange) []logmodel.Millis {
	lo := sort.Search(len(a), func(i int) bool { return a[i] >= r.Start })
	hi := sort.Search(len(a), func(i int) bool { return a[i] >= r.End })
	return a[lo:hi]
}
