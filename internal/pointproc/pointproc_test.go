package pointproc

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"logscape/internal/logmodel"
)

func TestDistNearest(t *testing.T) {
	a := []logmodel.Millis{10, 20, 50}
	cases := []struct {
		t    logmodel.Millis
		want logmodel.Millis
	}{
		{0, 10}, {10, 0}, {14, 4}, {16, 4}, {20, 0}, {30, 10}, {40, 10}, {60, 10}, {1000, 950},
	}
	for _, c := range cases {
		if got := DistNearest(c.t, a); got != c.want {
			t.Errorf("DistNearest(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	if got := DistNearest(5, nil); got != logmodel.Millis(math.MaxInt64) {
		t.Errorf("empty sequence: %d", got)
	}
}

func TestDistNext(t *testing.T) {
	a := []logmodel.Millis{10, 20, 50}
	cases := []struct {
		t    logmodel.Millis
		want logmodel.Millis
	}{
		{0, 10}, {10, 0}, {11, 9}, {21, 29}, {50, 0},
	}
	for _, c := range cases {
		if got := DistNext(c.t, a); got != c.want {
			t.Errorf("DistNext(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	if got := DistNext(51, a); got != logmodel.Millis(math.MaxInt64) {
		t.Errorf("past end: %d", got)
	}
}

// TestDistNearestMatchesBruteForce is a property test against the O(n)
// definition in equation (1).
func TestDistNearestMatchesBruteForce(t *testing.T) {
	f := func(seed int64, tRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		a := make([]logmodel.Millis, n)
		for i := range a {
			a[i] = logmodel.Millis(rng.Intn(10000))
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		tt := logmodel.Millis(tRaw)
		want := logmodel.Millis(math.MaxInt64)
		for _, x := range a {
			d := x - tt
			if d < 0 {
				d = -d
			}
			if d < want {
				want = d
			}
		}
		return DistNearest(tt, a) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDistanceSample(t *testing.T) {
	a := []logmodel.Millis{1000, 3000}
	pts := []logmodel.Millis{0, 2000, 5000}
	got := DistanceSample(pts, a, DistNearest)
	want := []float64{1, 1, 2}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] { //lint:allow floateq distances here are exact small integers in float64
			t.Errorf("sample[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// DistNext drops the last point (no later arrival).
	gotNext := DistanceSample(pts, a, DistNext)
	if len(gotNext) != 2 || gotNext[0] != 1 || gotNext[1] != 1 {
		t.Errorf("next sample = %v", gotNext)
	}
}

func TestUniformPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := logmodel.TimeRange{Start: 100, End: 1100}
	pts := UniformPoints(rng, r, 1000)
	if len(pts) != 1000 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("point %d outside range", p)
		}
	}
	// Rough uniformity: mean near the midpoint.
	var sum float64
	for _, p := range pts {
		sum += float64(p)
	}
	mean := sum / 1000
	if mean < 500 || mean > 700 {
		t.Errorf("mean = %v, want ≈ 600", mean)
	}
	if got := UniformPoints(rng, logmodel.TimeRange{Start: 5, End: 5}, 10); got != nil {
		t.Error("empty range should yield nil")
	}
	if got := UniformPoints(rng, r, 0); got != nil {
		t.Error("n=0 should yield nil")
	}
}

func TestSubsample(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]logmodel.Millis, 100)
	for i := range a {
		a[i] = logmodel.Millis(i)
	}
	got := Subsample(rng, a, 10)
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("subsample not strictly increasing (duplicates or disorder)")
		}
	}
	// n ≥ len(a): identity.
	same := Subsample(rng, a, 200)
	if len(same) != 100 {
		t.Errorf("oversized subsample len = %d", len(same))
	}
	if got := Subsample(rng, a, 0); got != nil {
		t.Error("n=0 should yield nil")
	}
}

func TestSubsampleUnbiased(t *testing.T) {
	// Each element should be selected with probability ≈ n/len(a).
	rng := rand.New(rand.NewSource(3))
	a := make([]logmodel.Millis, 20)
	for i := range a {
		a[i] = logmodel.Millis(i)
	}
	counts := make([]int, 20)
	const trials = 5000
	for i := 0; i < trials; i++ {
		for _, p := range Subsample(rng, a, 5) {
			counts[int(p)]++
		}
	}
	for i, c := range counts {
		p := float64(c) / trials
		if p < 0.20 || p > 0.30 {
			t.Errorf("element %d selected with p = %.3f, want ≈ 0.25", i, p)
		}
	}
}

func TestHomogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := logmodel.TimeRange{Start: 0, End: 1000 * logmodel.MillisPerSecond}
	pts := Homogeneous(rng, r, 5) // expect ≈ 5000 events
	if len(pts) < 4500 || len(pts) > 5500 {
		t.Errorf("event count = %d, want ≈ 5000", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] < pts[i-1] {
			t.Fatal("not sorted")
		}
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatal("point outside range")
		}
	}
	if got := Homogeneous(rng, r, 0); got != nil {
		t.Error("zero rate should yield nil")
	}
}

func TestNonHomogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := logmodel.TimeRange{Start: 0, End: 1000 * logmodel.MillisPerSecond}
	// Intensity 10/s in the first half, 0 in the second.
	intensity := func(t logmodel.Millis) float64 {
		if t < r.End/2 {
			return 10
		}
		return 0
	}
	pts := NonHomogeneous(rng, r, intensity, 10)
	if len(pts) < 4500 || len(pts) > 5500 {
		t.Errorf("event count = %d, want ≈ 5000", len(pts))
	}
	for _, p := range pts {
		if p >= r.End/2 {
			t.Fatalf("event at %d in zero-intensity half", p)
		}
	}
	if got := NonHomogeneous(rng, r, intensity, 0); got != nil {
		t.Error("zero maxRate should yield nil")
	}
}

func TestMergeSorted(t *testing.T) {
	a := []logmodel.Millis{1, 3, 5}
	b := []logmodel.Millis{2, 3, 6}
	got := MergeSorted(a, b)
	want := []logmodel.Millis{1, 2, 3, 3, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("merged[%d] = %v", i, got[i])
		}
	}
	if got := MergeSorted(nil, b); len(got) != 3 {
		t.Error("merge with nil")
	}
}

func TestCountInRangeSliceRange(t *testing.T) {
	a := []logmodel.Millis{10, 20, 30, 40}
	r := logmodel.TimeRange{Start: 15, End: 40}
	if n := CountInRange(a, r); n != 2 {
		t.Errorf("CountInRange = %d", n)
	}
	s := SliceRange(a, r)
	if len(s) != 2 || s[0] != 20 || s[1] != 30 {
		t.Errorf("SliceRange = %v", s)
	}
	if n := CountInRange(a, logmodel.TimeRange{Start: 100, End: 200}); n != 0 {
		t.Errorf("out-of-range count = %d", n)
	}
}
