// Package pointproc provides the point-process machinery behind approach L1
// and the workload simulator: nearest-arrival distances on sorted timestamp
// sequences, uniform random sampling over an interval, subsampling, and
// Poisson process generation (homogeneous, and non-homogeneous by
// thinning).
//
// Timestamp sequences are the per-source log sequences of
// logmodel.Store.SourceIndex: sorted slices of logmodel.Millis.
//
// See DESIGN.md §3 (System inventory).
package pointproc
