package analyzers_test

import (
	"testing"

	"logscape/internal/analysis/runner"
	"logscape/internal/analyzers"
)

// TestDogfood runs the full analyzer suite over this module itself,
// test files included, and requires a clean bill: every finding must be
// either fixed or carry a justified //lint:allow. This is the same code
// path as `lintscape -tests ./...` (the CLI and this test share
// internal/analysis/runner), so the module cannot merge code that its
// own linter rejects.
func TestDogfood(t *testing.T) {
	if testing.Short() {
		t.Skip("dogfood run type-checks the whole module; skipped in -short")
	}
	res, err := runner.Run(analyzers.All(), runner.Options{
		Dir:      "../..", // module root, relative to this package
		Patterns: []string{"./..."},
		Tests:    true,
		Known:    analyzers.Names(),
	})
	if err != nil {
		t.Fatalf("runner.Run: %v", err)
	}
	for _, f := range res.Findings {
		t.Error(f.String())
	}
	if t.Failed() {
		t.Log("fix the finding or justify it with //lint:allow <analyzer> <why>")
	}
}
