// Package analyzers is the registry of the lintscape suite: the
// per-package syntactic analyzers plus the program-level dataflow
// analyzers built on internal/analysis/dataflow.
package analyzers

import (
	"logscape/internal/analysis"
	"logscape/internal/analyzers/allowaudit"
	"logscape/internal/analyzers/bareconc"
	"logscape/internal/analyzers/cfgzero"
	"logscape/internal/analyzers/doclint"
	"logscape/internal/analyzers/floateq"
	"logscape/internal/analyzers/maporder"
	"logscape/internal/analyzers/recycleuse"
	"logscape/internal/analyzers/taintorder"
	"logscape/internal/analyzers/viewescape"
	"logscape/internal/analyzers/wallclock"
)

// All returns the full analyzer suite in stable (alphabetical) order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		allowaudit.Analyzer,
		bareconc.Analyzer,
		cfgzero.Analyzer,
		doclint.Analyzer,
		floateq.Analyzer,
		maporder.Analyzer,
		recycleuse.Analyzer,
		taintorder.Analyzer,
		viewescape.Analyzer,
		wallclock.Analyzer,
	}
}

// Names returns the analyzer names, for directive validation.
func Names() map[string]bool {
	names := make(map[string]bool)
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

func init() {
	// The directive audit validates analyzer names against the registry;
	// injecting the set here avoids an import cycle.
	allowaudit.Known = Names()
}
