package analyzers

import (
	"logscape/internal/analysis"
	"logscape/internal/analyzers/bareconc"
	"logscape/internal/analyzers/cfgzero"
	"logscape/internal/analyzers/doclint"
	"logscape/internal/analyzers/floateq"
	"logscape/internal/analyzers/maporder"
	"logscape/internal/analyzers/wallclock"
)

// All returns the full analyzer suite in stable (alphabetical) order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		bareconc.Analyzer,
		cfgzero.Analyzer,
		doclint.Analyzer,
		floateq.Analyzer,
		maporder.Analyzer,
		wallclock.Analyzer,
	}
}

// Names returns the analyzer names, for directive validation.
func Names() map[string]bool {
	names := make(map[string]bool)
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}
