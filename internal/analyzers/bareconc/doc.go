// Package bareconc defines an analyzer that forbids hand-rolled
// concurrency outside internal/parallel.
//
// The miners' determinism contract (bit-identical results for every
// Workers setting) holds because all fan-out goes through the shared
// engine, which fixes output positions by input index or shard order. A
// raw `go` statement, a sync.WaitGroup or an ad-hoc channel fan-out
// anywhere else reintroduces scheduling order into results, so the
// analyzer flags them all and steers to parallel.Map / parallel.MapShards.
// internal/parallel itself is exempted through the driver's severity
// configuration, not in the analyzer, so fixtures and new call sites stay
// uniformly checked.
//
// See DESIGN.md §8 (Static invariants).
package bareconc
