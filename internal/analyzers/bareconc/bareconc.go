package bareconc

import (
	"go/ast"
	"go/types"

	"logscape/internal/analysis"
)

// Analyzer flags bare go statements, sync.WaitGroup uses and channel
// creation outside the shared parallel engine.
var Analyzer = &analysis.Analyzer{
	Name: "bareconc",
	Doc: "forbid hand-rolled concurrency (go statements, sync.WaitGroup, channel fan-out) " +
		"outside internal/parallel; route fan-out through parallel.Map or parallel.MapShards " +
		"so the deterministic ordered-merge contract keeps holding",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "bare go statement outside internal/parallel; use parallel.Map or parallel.MapShards")
		case *ast.SelectorExpr:
			if isPkgSymbol(pass, n, "sync", "WaitGroup") {
				pass.Reportf(n.Pos(), "sync.WaitGroup outside internal/parallel; use the shared worker pool instead")
			}
		case *ast.CallExpr:
			if isMakeChan(pass, n) {
				pass.Reportf(n.Pos(), "channel fan-out outside internal/parallel; shard work with parallel.MapShards instead")
			}
		}
		return true
	})
	return nil, nil
}

// isPkgSymbol reports whether sel is a reference to pkgPath.name.
func isPkgSymbol(pass *analysis.Pass, sel *ast.SelectorExpr, pkgPath, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == pkgPath
}

// isMakeChan reports whether call is make(chan ...).
func isMakeChan(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return false
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.IsType() {
		_, isChan := tv.Type.Underlying().(*types.Chan)
		return isChan
	}
	// Syntactic fallback when type info is incomplete.
	_, isChan := call.Args[0].(*ast.ChanType)
	return isChan
}
