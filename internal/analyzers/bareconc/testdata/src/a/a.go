// Fixture for the bareconc analyzer: hand-rolled fan-out is flagged,
// sanctioned use is either routed through the shared engine (not visible
// here) or carries a justified allow directive.
package a

import "sync"

func fanOut(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup // want `sync\.WaitGroup outside internal/parallel`
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want `bare go statement outside internal/parallel`
			defer wg.Done()
			out[i] = i * i
		}(i)
	}
	wg.Wait()
	return out
}

func chanFanOut(n int) int {
	results := make(chan int, n) // want `channel fan-out outside internal/parallel`
	total := 0
	for i := 0; i < n; i++ {
		results <- i
	}
	for i := 0; i < n; i++ {
		total += <-results
	}
	return total
}

// makeSlice shows that non-channel makes stay unflagged.
func makeSlice(n int) []int {
	return make([]int, n)
}

// allowedDaemon shows the sanctioned escape hatch: a justified directive.
func allowedDaemon(f func()) {
	go f() //lint:allow bareconc one-shot signal-handler goroutine, not miner fan-out
}
