package bareconc_test

import (
	"testing"

	"logscape/internal/analysis/analysistest"
	"logscape/internal/analyzers/bareconc"
)

func TestBareconc(t *testing.T) {
	analysistest.Run(t, bareconc.Analyzer, "a")
}
