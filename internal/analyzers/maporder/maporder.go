package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"logscape/internal/analysis"
)

// Analyzer flags order-sensitive folds over map iteration.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops whose body appends to a slice without a subsequent sort, " +
		"writes output, or folds into a non-commutative accumulator (string concatenation, " +
		"floating-point accumulation) — map iteration order is randomized and such folds make " +
		"mined output depend on it",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, fn := range functionsOf(file) {
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

// functionsOf collects every function body in the file (declarations and
// literals).
func functionsOf(file *ast.File) []ast.Node {
	var fns []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fns = append(fns, n)
		}
		return true
	})
	return fns
}

func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// checkFunc inspects the map-range loops whose nearest enclosing function
// is fn.
func checkFunc(pass *analysis.Pass, fn ast.Node) {
	body := funcBody(fn)
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			// Nested functions are visited on their own.
			return n == fn
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && isMap(tv.Type) {
				checkMapRange(pass, body, n)
			}
		}
		return true
	})
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange flags the order-sensitive statements inside one map-range
// body. funcBody is the body of the enclosing function, used to look for a
// sort after the loop.
func checkMapRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	sorted := sortsAfter(funcBody, rng.End())
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, n, sorted)
		case *ast.CallExpr:
			if name, ok := writeCallName(n); ok {
				pass.Reportf(n.Pos(), "%s writes output in map iteration order; iterate sorted keys instead", name)
			}
		}
		return true
	})
}

// checkAssign flags appends (unless a later sort normalizes the order) and
// non-commutative compound assignments inside a map-range body.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, sortedAfter bool) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		if !sortedAfter && hasAppend(pass, as.Rhs) {
			pass.Reportf(as.Pos(), "append in map iteration order without a subsequent sort; sort the result or iterate sorted keys")
		}
	case token.SUB_ASSIGN, token.QUO_ASSIGN:
		pass.Reportf(as.Pos(), "%s folds a non-commutative accumulator in map iteration order; iterate sorted keys instead", as.Tok)
	case token.ADD_ASSIGN, token.MUL_ASSIGN:
		// Integer += / *= commute exactly; string += concatenates in
		// visit order and float += / *= round in visit order.
		if len(as.Lhs) == 1 && isOrderSensitiveAccumulator(pass, as.Lhs[0]) {
			pass.Reportf(as.Pos(), "%s folds a non-commutative accumulator (string or floating point) in map iteration order; iterate sorted keys instead", as.Tok)
		}
	}
}

func isOrderSensitiveAccumulator(pass *analysis.Pass, lhs ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[lhs]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsString|types.IsFloat|types.IsComplex) != 0
}

func hasAppend(pass *analysis.Pass, exprs []ast.Expr) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// writeNames are method/function names that emit output directly.
var writeNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteRune": true, "WriteByte": true,
}

func writeCallName(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !writeNames[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

// sortsAfter reports whether the function body contains a sort call
// positioned after pos — the "subsequent sort" that makes an append safe.
// A sort call is any call whose callee name mentions sort (sort.Strings,
// slices.SortFunc, a local sortPairs helper, ...).
func sortsAfter(body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if strings.Contains(strings.ToLower(calleeName(call)), "sort") {
			found = true
			return false
		}
		return true
	})
	return found
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return ""
}
