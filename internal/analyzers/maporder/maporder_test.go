package maporder_test

import (
	"testing"

	"logscape/internal/analysis/analysistest"
	"logscape/internal/analyzers/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "a")
}
