// Package maporder defines an analyzer that catches Go's classic silent
// determinism breaker: folding map iteration order into an ordered result.
//
// Ranging over a map is fine when the body is commutative (set inserts,
// integer counting). It silently breaks the repo's bit-identical-output
// contract when the body appends to a slice that is never sorted
// afterwards, writes output directly, or folds into an accumulator whose
// operation is order-sensitive (string concatenation; floating-point
// accumulation, which is not associative). The analyzer flags exactly
// those three shapes and stands down for appends when the enclosing
// function visibly sorts afterwards.
//
// See DESIGN.md §8 (Static invariants).
package maporder
