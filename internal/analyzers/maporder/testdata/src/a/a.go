// Fixture for the maporder analyzer: order-sensitive folds over map
// iteration are flagged; commutative folds, sorted appends and justified
// directives stay quiet.
package a

import (
	"fmt"
	"sort"
	"strings"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append in map iteration order without a subsequent sort`
	}
	return keys
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `writes output in map iteration order`
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `writes output in map iteration order`
	}
	return b.String()
}

func badFloatFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `non-commutative accumulator`
	}
	return sum
}

func badConcat(m map[string]string) string {
	out := ""
	for _, v := range m {
		out += v // want `non-commutative accumulator`
	}
	return out
}

func badSubtract(m map[string]int) int {
	n := 0
	for _, v := range m {
		n -= v // want `non-commutative accumulator`
	}
	return n
}

// goodSortedAppend is the sanctioned pattern: collect, then sort.
func goodSortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodCount folds commutatively (integer addition) — allowed.
func goodCount(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodSetInsert builds a set — allowed, no order dependence.
func goodSetInsert(m map[string]int) map[int]bool {
	out := make(map[int]bool)
	for _, v := range m {
		out[v] = true
	}
	return out
}

// goodSliceRange ranges a slice, which iterates in index order.
func goodSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// allowedDirective shows the escape hatch for a caller-normalized result.
func allowedDirective(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //lint:allow maporder caller treats the result as an unordered set
	}
	return keys
}
