// Helper fixture package: Keep retains entries, making it a summarized
// escape route for cross-package interprocedural flows.
package b

import "logscape/internal/logmodel"

var kept []logmodel.Entry

// Keep retains e beyond the call.
func Keep(e logmodel.Entry) { // wantfact `param#0 escapes`
	kept = append(kept, e)
}
