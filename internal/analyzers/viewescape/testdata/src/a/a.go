// Fixture for the viewescape analyzer: view-mode entries must not outlive
// the read buffer; durable copies and intern-mode parses stay quiet.
package a

import (
	"strings"

	"b"

	"logscape/internal/logmodel"
)

var retained []logmodel.Entry
var messages []string
var out chan logmodel.Entry

var table = logmodel.NewIntern()

// badStore retains a view-mode entry in a package-level slice.
func badStore(line []byte) {
	e, err := logmodel.ParseEntryBytes(line, nil)
	if err != nil {
		return
	}
	retained = append(retained, e) // want `view-mode entry \(ParseEntryBytes with nil Intern\) escapes via assignment to package-level variable retained`
}

// badField retains a string field derived from a view-mode entry.
func badField(line []byte) {
	e, err := logmodel.ParseEntryBytes(line, nil)
	if err != nil {
		return
	}
	messages = append(messages, e.Message) // want `view-mode entry .* escapes via assignment to package-level variable messages`
}

// badSend ships a view-mode entry across a channel while the producer
// still owns (and will reuse) the buffer.
func badSend(line []byte) {
	e, _ := logmodel.ParseEntryBytes(line, nil)
	out <- e // want `view-mode entry .* escapes via channel send`
}

// badInto taints through the out-parameter form.
func badInto(line []byte) {
	var e logmodel.Entry
	if err := logmodel.ParseEntryBytesInto(&e, line, nil); err != nil {
		return
	}
	retained = append(retained, e) // want `view-mode entry \(ParseEntryBytesInto with nil Intern\) escapes via assignment to package-level variable retained`
}

// keep is a helper that retains its argument; the analyzer summarizes it.
func keep(e logmodel.Entry) { // wantfact `param#0 escapes`
	retained = append(retained, e)
}

// badViaHelper escapes through an in-package helper call.
func badViaHelper(line []byte) {
	e, _ := logmodel.ParseEntryBytes(line, nil)
	keep(e) // want `view-mode entry .* escapes via call to keep`
}

// badViaOtherPackage escapes through a helper in another package.
func badViaOtherPackage(line []byte) {
	e, _ := logmodel.ParseEntryBytes(line, nil)
	b.Keep(e) // want `view-mode entry .* escapes via call to Keep`
}

// goodIntern parses in intern mode: the entry is durable by contract.
func goodIntern(line []byte) {
	e, err := logmodel.ParseEntryBytes(line, table)
	if err != nil {
		return
	}
	retained = append(retained, e)
}

// goodClone retains a durable deep copy.
func goodClone(line []byte) {
	e, _ := logmodel.ParseEntryBytes(line, nil)
	retained = append(retained, e.Clone())
}

// goodCloneField copies the one field it keeps.
func goodCloneField(line []byte) {
	e, _ := logmodel.ParseEntryBytes(line, nil)
	messages = append(messages, strings.Clone(e.Message))
}

// goodConsume uses the view entry immediately — the zero-copy fast path.
func goodConsume(line []byte) int {
	e, err := logmodel.ParseEntryBytes(line, nil)
	if err != nil {
		return 0
	}
	return len(e.Message) + int(e.Time)
}

// goodValueField retains a pointer-free field: no buffer is aliased.
var lastTime logmodel.Millis

func goodValueField(line []byte) {
	e, _ := logmodel.ParseEntryBytes(line, nil)
	lastTime = e.Time
}
