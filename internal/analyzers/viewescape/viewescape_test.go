package viewescape_test

import (
	"testing"

	"logscape/internal/analysis/analysistest"
	"logscape/internal/analyzers/viewescape"
)

func TestViewEscape(t *testing.T) {
	analysistest.RunProgram(t, viewescape.Analyzer, "a", "b")
}
