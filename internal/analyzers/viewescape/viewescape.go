// Package viewescape enforces the view-mode half of the DESIGN.md §12
// ownership contract: an Entry produced by ParseEntryBytes/ParseEntryBytesInto
// with a nil Intern table aliases the read buffer, so it (and anything
// derived from its fields) must not outlive the buffer — no stores into
// heap-reachable structures, package-level variables or channels, directly
// or through any chain of in-module calls.
//
// The analyzer is interprocedural: it runs the internal/analysis/dataflow
// engine with a taint spec whose sources are statically-nil-Intern parse
// calls, whose sanitizers are the sanctioned durable-copy idioms
// (strings.Clone, Intern.Bytes, Entry.Clone), and whose sinks are
// heap-crossing stores and channel sends. Helper functions that store their
// parameters are summarized, so passing a view-mode entry into a helper
// that retains it flags at the call site.
package viewescape

import (
	"fmt"

	"logscape/internal/analysis"
	"logscape/internal/analysis/dataflow"
)

const logmodelPath = "logscape/internal/logmodel"

// Analyzer flags view-mode parse results escaping their read buffer.
var Analyzer = &analysis.Analyzer{
	Name: "viewescape",
	Doc: "forbid retaining view-mode parse results: ParseEntryBytes/ParseEntryBytesInto with a " +
		"nil Intern return entries whose strings alias the read buffer, valid only until the " +
		"buffer is reused; storing them (or values derived from their fields) into heap " +
		"structures, globals or channels needs a durable copy first — strings.Clone, " +
		"Intern.Bytes or Entry.Clone (DESIGN.md §12)",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	prog := dataflow.BuildProgram(pass.Fset, pass.Units)
	dataflow.Analyze(spec, prog, pass)
	return nil
}

var spec = &dataflow.Spec{
	Name:          "viewescape",
	ElementsAlias: true, // view-entry fields alias the buffer; loads propagate
	HeapStores:    true,
	ChanSend:      true,
	Borrowed:      true,

	Source: func(ci *dataflow.CallInfo) (dataflow.SourceTaint, bool) {
		switch {
		case ci.CalleeIs(logmodelPath, "ParseEntryBytes"):
			// ParseEntryBytes(line, nil): the Entry result is a view.
			if len(ci.Call.Args) == 2 && ci.IsNil(ci.Call.Args[1]) {
				return dataflow.SourceTaint{
					Reason:  "view-mode entry (ParseEntryBytes with nil Intern)",
					Results: 1 << 0,
				}, true
			}
		case ci.CalleeIs(logmodelPath, "ParseEntryBytesInto"):
			// ParseEntryBytesInto(&e, line, nil): *e becomes a view.
			if len(ci.Call.Args) == 3 && ci.IsNil(ci.Call.Args[2]) {
				return dataflow.SourceTaint{
					Reason:  "view-mode entry (ParseEntryBytesInto with nil Intern)",
					PtrArgs: 1 << 0,
				}, true
			}
		}
		return dataflow.SourceTaint{}, false
	},

	Sanitize: func(ci *dataflow.CallInfo) (dataflow.SanitizeEffect, bool) {
		switch {
		case ci.CalleeIs("strings", "Clone"),
			ci.CalleeIs(logmodelPath, "Clone"), // Entry.Clone / Store.Clone
			ci.CalleeIs(logmodelPath, "Bytes"): // Intern.Bytes copies into the arena
			return dataflow.SanitizeEffect{Results: 1 << 0}, true
		case ci.CalleeIs(logmodelPath, "ParseEntryBytes") &&
			len(ci.Call.Args) == 2 && !ci.IsNil(ci.Call.Args[1]):
			// Intern mode: the result is durable by contract, whatever the
			// engine concludes about the implementation's internals.
			return dataflow.SanitizeEffect{Results: 1 << 0}, true
		case ci.CalleeIs(logmodelPath, "ParseEntryBytesInto") &&
			len(ci.Call.Args) == 3 && !ci.IsNil(ci.Call.Args[2]):
			return dataflow.SanitizeEffect{PtrArgs: 1 << 0}, true
		}
		return dataflow.SanitizeEffect{}, false
	},

	Message: func(src, sink string) string {
		return fmt.Sprintf("%s escapes via %s; the entry aliases the read buffer — make a durable copy first (strings.Clone, Intern.Bytes or Entry.Clone; DESIGN.md §12)", src, sink)
	},
}
