package wallclock

import (
	"go/ast"
	"go/types"

	"logscape/internal/analysis"
)

// banned are the time package functions that read the machine clock,
// directly (Now/Since/Until) or through timers that fire off it
// (NewTimer/NewTicker/Tick/After).
var banned = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"NewTimer": true, "NewTicker": true, "Tick": true, "After": true,
}

// Analyzer flags reads of the wall clock.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since/time.Until and the timer constructors " +
		"time.NewTimer/time.NewTicker/time.Tick/time.After in mining code: all time must " +
		"derive from log-entry timestamps so that mined models are a pure function of the " +
		"input; allowlist real timing code per call site with //lint:allow wallclock <why>",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !banned[sel.Sel.Name] {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkgName.Imported().Path() == "time" {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock; derive time from log-entry timestamps (logmodel.Millis)", sel.Sel.Name)
		}
		return true
	})
	return nil, nil
}
