// Package wallclock defines an analyzer that keeps wall-clock time out of
// the mining pipeline.
//
// Mined models must be a pure function of the logs: every timestamp the
// miners reason about derives from log-entry time (logmodel.Millis), never
// from the machine clock — otherwise re-mining the same corpus gives
// different sessions, slots and delays. The analyzer flags time.Now,
// time.Since and time.Until. Genuine timing code (CLI progress output in
// cmd/, harness measurement in internal/eval) opts out per call site with
// a justified `//lint:allow wallclock` directive.
//
// See DESIGN.md §8 (Static invariants).
package wallclock
