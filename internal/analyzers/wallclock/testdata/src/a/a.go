// Fixture for the wallclock analyzer: machine-clock reads are flagged;
// log-derived time and justified timing code stay quiet.
package a

import "time"

type millis int64

type entry struct {
	Time millis
}

func badNow() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func badUntil(t1 time.Time) time.Duration {
	return time.Until(t1) // want `time\.Until reads the wall clock`
}

// goodLogTime derives time from log entries — the sanctioned source.
func goodLogTime(entries []entry) millis {
	if len(entries) == 0 {
		return 0
	}
	return entries[len(entries)-1].Time - entries[0].Time
}

// goodConversion uses the time package without reading the clock.
func goodConversion(m millis) time.Duration {
	return time.Duration(m) * time.Millisecond
}

// allowedTiming is the sanctioned escape hatch for real timing code.
func allowedTiming(f func()) time.Duration {
	start := time.Now() //lint:allow wallclock harness timing output, not mining input
	f()
	return time.Since(start) //lint:allow wallclock harness timing output, not mining input
}

func badTimer() *time.Timer {
	return time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
}

func badTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
}

func badTick() <-chan time.Time {
	return time.Tick(time.Second) // want `time\.Tick reads the wall clock`
}

func badAfter() <-chan time.Time {
	return time.After(time.Second) // want `time\.After reads the wall clock`
}

// allowedShutdownTimer is the escape hatch for real scheduling code.
func allowedShutdownTimer() *time.Timer {
	return time.NewTimer(time.Second) //lint:allow wallclock shutdown deadline, not mining input
}
