package wallclock_test

import (
	"testing"

	"logscape/internal/analysis/analysistest"
	"logscape/internal/analyzers/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "a")
}
