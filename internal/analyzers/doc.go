// Package analyzers registers lintscape's analyzer suite: the static
// invariants that keep the determinism & concurrency contract a
// compile-time property of the repository. See DESIGN.md §"Static
// invariants" for the invariant each analyzer encodes.
package analyzers
