package analyzers_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logscape/internal/analysis"
	"logscape/internal/analyzers"
)

// TestAllowDirectivesJustified audits every //lint:allow directive in the
// module: each must name known analyzers and carry a justification on the
// same line. A suppression without a recorded reason is unreviewable, so
// this test fails the build on it.
func TestAllowDirectivesJustified(t *testing.T) {
	root := moduleRoot(t)
	known := analyzers.Names()
	known["all"] = true

	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Analyzer fixtures under testdata contain intentionally
			// malformed directives; those are exercised by the analyzers'
			// own tests, not by this audit.
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for _, dir := range analysis.ParseDirectives(rel, src) {
			if len(dir.Analyzers) == 0 {
				t.Errorf("%s:%d: allow directive names no analyzer", rel, dir.Line)
				continue
			}
			for _, a := range dir.Analyzers {
				if !known[a] {
					t.Errorf("%s:%d: allow directive names unknown analyzer %q", rel, dir.Line, a)
				}
			}
			if dir.Justification == "" {
				t.Errorf("%s:%d: allow directive lacks a justification on the same line", rel, dir.Line)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// moduleRoot walks up from the test's working directory to the directory
// holding go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
