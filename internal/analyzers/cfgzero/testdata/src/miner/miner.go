// Fixture dependency for cfgzero: a miner-shaped Config (Workers knob
// plus threshold fields), imported by the use package.
package miner

// Config mirrors the miner configuration shape: a Workers knob plus
// threshold fields.
type Config struct {
	MinLogs int
	Alpha   float64
	Workers int
}

// DefaultConfig fills the calibrated thresholds.
func DefaultConfig() Config {
	return Config{MinLogs: 100, Alpha: 0.05}
}

// Other is a non-Config struct with a Workers field; out of scope.
type Other struct {
	Workers int
}

// Mine consumes a config.
func Mine(c Config) int { return c.MinLogs * c.Workers }
