// Fixture for the cfgzero analyzer: a Config literal that only sets
// Workers is flagged; literals that also pin a threshold, default-based
// construction and justified directives stay quiet.
package use

import "miner"

func bad(workers int) int {
	return miner.Mine(miner.Config{Workers: workers}) // want `miner\.Config literal sets Workers but every threshold field is left zero`
}

func badVar(workers int) miner.Config {
	cfg := miner.Config{ // want `miner\.Config literal sets Workers`
		Workers: workers,
	}
	return cfg
}

// goodExplicit pins a threshold alongside Workers — allowed.
func goodExplicit(workers int) int {
	return miner.Mine(miner.Config{Workers: workers, MinLogs: 10})
}

// goodDefaults starts from the package defaults and overrides Workers —
// the recommended remediation.
func goodDefaults(workers int) int {
	cfg := miner.DefaultConfig()
	cfg.Workers = workers
	return miner.Mine(cfg)
}

// goodZero constructs the all-defaults config; nothing half-initialized.
func goodZero() int {
	return miner.Mine(miner.Config{})
}

// goodOther: structs not named Config are out of scope.
func goodOther(workers int) miner.Other {
	return miner.Other{Workers: workers}
}

// allowedDirective shows the escape hatch for deliberate defaults.
func allowedDirective(workers int) int {
	return miner.Mine(miner.Config{Workers: workers}) //lint:allow cfgzero worker-count equivalence test exercises package defaults
}
