package cfgzero

import (
	"go/ast"
	"go/types"

	"logscape/internal/analysis"
)

// Analyzer flags Config literals that set Workers but no threshold field.
var Analyzer = &analysis.Analyzer{
	Name: "cfgzero",
	Doc: "flag miner Config composite literals that set Workers while leaving every " +
		"threshold field zero; half-initialized configs silently inherit defaults — set the " +
		"thresholds explicitly or start from the package's DefaultConfig()",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[lit]
		if !ok || !isWorkersConfig(tv.Type) {
			return true
		}
		setsWorkers, setsOther := false, false
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				// Positional literals set every field; nothing to flag.
				return true
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Workers" {
				setsWorkers = true
			} else {
				setsOther = true
			}
		}
		if setsWorkers && !setsOther {
			pass.Reportf(lit.Pos(), "%s literal sets Workers but every threshold field is left zero; set thresholds explicitly or start from DefaultConfig()", typeLabel(tv.Type))
		}
		return true
	})
	return nil, nil
}

// isWorkersConfig reports whether t is a struct type named Config with an
// int field named Workers — the shape shared by all miner configurations.
func isWorkersConfig(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Config" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Workers" {
			b, ok := f.Type().Underlying().(*types.Basic)
			return ok && b.Info()&types.IsInteger != 0
		}
	}
	return false
}

func typeLabel(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return t.String()
	}
	if pkg := named.Obj().Pkg(); pkg != nil {
		return pkg.Name() + "." + named.Obj().Name()
	}
	return named.Obj().Name()
}
