package cfgzero_test

import (
	"testing"

	"logscape/internal/analysis/analysistest"
	"logscape/internal/analyzers/cfgzero"
)

func TestCfgzero(t *testing.T) {
	analysistest.Run(t, cfgzero.Analyzer, "use")
}
