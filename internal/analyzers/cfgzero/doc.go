// Package cfgzero defines an analyzer that catches half-initialized miner
// configurations at call sites.
//
// Every miner Config pairs a Workers knob with threshold fields (minlogs,
// alpha, timeouts, ...). A literal that sets Workers and nothing else is
// the classic half-initialized config: the author tuned the parallelism
// and silently inherited whatever the zero-value defaults happen to be —
// which withDefaults may or may not fill the way they expect, and which
// drifts when defaults change. The analyzer flags such literals; the fix
// is to set the thresholds explicitly or start from the package's
// DefaultConfig() and override Workers.
//
// See DESIGN.md §8 (Static invariants).
package cfgzero
