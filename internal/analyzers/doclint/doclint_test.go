package doclint_test

import (
	"testing"

	"logscape/internal/analysis/analysistest"
	"logscape/internal/analyzers/doclint"
)

func TestDoclint(t *testing.T) {
	analysistest.Run(t, doclint.Analyzer, "nodoc", "doc")
}
