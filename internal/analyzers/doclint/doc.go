// Package doclint defines an analyzer that requires a package comment on
// every package.
//
// The repository's documentation contract (ISSUE: operator handbook) says
// a reader must be able to run `go doc` on any package and learn what it
// is for and which invariants it upholds. The analyzer flags packages in
// which no file carries a package doc comment. In-package _test.go files
// and external _test packages are exempt: test code documents itself
// through test names. The fix is a doc comment in the package's primary
// file or a dedicated doc.go.
//
// See DESIGN.md §8 (Static invariants).
package doclint
