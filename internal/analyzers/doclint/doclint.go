package doclint

import (
	"go/ast"
	"strings"

	"logscape/internal/analysis"
)

// Analyzer flags packages that have no package doc comment.
var Analyzer = &analysis.Analyzer{
	Name: "doclint",
	Doc: "require a package comment on every package so `go doc` explains its purpose " +
		"and invariants; add a doc comment to the primary file or a dedicated doc.go " +
		"(test files and _test packages are exempt)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.Pkg.Name(), "_test") {
		return nil, nil
	}
	// The diagnostic anchors to the package clause of the alphabetically
	// first non-test file, so the finding position is deterministic no
	// matter the load order.
	var first *ast.File
	firstName := ""
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return nil, nil
		}
		if first == nil || name < firstName {
			first, firstName = f, name
		}
	}
	if first == nil {
		// Test-only compilation unit.
		return nil, nil
	}
	pass.Reportf(first.Package,
		"package %s has no package comment; document its purpose in the primary file or a doc.go",
		pass.Pkg.Name())
	return nil, nil
}
