package doc

import "testing"

// TestExported keeps a _test.go file in the fixture: test files are exempt
// from the package-comment requirement and never satisfy it either.
func TestExported(t *testing.T) {
	if Exported() != 1 {
		t.Fatal("Exported")
	}
}
