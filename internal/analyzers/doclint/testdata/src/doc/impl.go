package doc

// Exported lives in an undocumented file, which is fine: the package
// comment in doc.go covers the whole package.
func Exported() int { return 1 }
