// Package doc demonstrates the satisfied contract: a dedicated doc.go
// carrying the package comment keeps every other file free of it.
package doc
