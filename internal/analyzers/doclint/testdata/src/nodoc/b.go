package nodoc // want `package nodoc has no package comment`

// Exported is documented, but the package itself is not: the analyzer
// reports at the package clause of the alphabetically first non-test file
// (this one — b.go sorts before c.go).
func Exported() int { return 1 }
