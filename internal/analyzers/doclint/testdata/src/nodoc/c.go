package nodoc

// Other shows that later files earn no second diagnostic: one finding per
// package, at the first file.
func Other() int { return 2 }
