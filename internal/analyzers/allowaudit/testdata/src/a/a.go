// Fixture for the allowaudit analyzer: well-formed directives are quiet,
// misspelled names and missing rationale are findings.
package a

import "time"

// goodAllow: known analyzer, justification present.
func goodAllow() time.Time {
	return time.Now() //lint:allow wallclock harness timing, not mining input
}

// goodAllowList: multiple analyzers and "all" are accepted.
func goodAllowList() time.Time {
	return time.Now() //lint:allow wallclock,floateq benchmark scaffolding
}

func goodAllowAll() time.Time {
	return time.Now() //lint:allow all generated fixture, exempt wholesale
}

// badUnknown misspells the analyzer name: the directive suppresses nothing.
func badUnknown() time.Time {
	return time.Now() //lint:allow wallclok fat-fingered name // want `unknown analyzer "wallclok"`
}

// badNoWhy gives no justification.
func badNoWhy() time.Time {
	return time.Now() //lint:allow wallclock // want `without a justification`
}

// badEmpty has no analyzer list at all.
func badEmpty() time.Time {
	return time.Now() //lint:allow // want `without an analyzer list`
}

// goodBorrowed: known dataflow analyzer, params and note present.
//
//lint:borrowed recycleuse buf the caller reuses the buffer between calls
func goodBorrowed(buf []byte) int {
	return len(buf)
}

// badBorrowedUnknown names an unregistered analyzer.
//
//lint:borrowed recycluse buf typo in the analyzer name // want `unknown analyzer "recycluse"`
func badBorrowedUnknown(buf []byte) int {
	return len(buf)
}

// badBorrowedNoParams lists no parameter names.
//
//lint:borrowed recycleuse // want `without parameter names`
func badBorrowedNoParams(buf []byte) int {
	return len(buf)
}

// badBorrowedNoNote gives no ownership note.
//
//lint:borrowed viewescape buf // want `without an ownership note`
func badBorrowedNoNote(buf []byte) int {
	return len(buf)
}
