// Package allowaudit validates the lint directives themselves: every
// //lint:allow needs a known analyzer list and a justification, every
// //lint:borrowed needs a known dataflow analyzer, parameter names and an
// ownership note. An unjustified or misspelled directive silently disables
// (or fails to disable) checking, so the audit is itself an analyzer — and
// the one analyzer whose findings //lint:allow can never suppress.
package allowaudit

import (
	"go/token"
	"sort"
	"strings"

	"logscape/internal/analysis"
)

// Known is the set of valid analyzer names directives may reference. The
// registry (internal/analyzers) populates it at init; it is a package
// variable rather than a constructor argument so that the registry can
// list this analyzer without an import cycle.
var Known map[string]bool

// Analyzer flags malformed or unknown-name lint directives.
var Analyzer = &analysis.Analyzer{
	Name: analysis.AuditAnalyzerName,
	Doc: "validate //lint:allow and //lint:borrowed directives: analyzer names must be " +
		"registered (or \"all\" for allow), allow directives need a justification, borrowed " +
		"annotations need parameter names and an ownership note; a malformed directive " +
		"suppresses nothing and is itself a finding that no directive can suppress",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	names := make([]string, 0, len(pass.Sources))
	for name := range pass.Sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src := pass.Sources[name]
		for _, d := range analysis.ParseDirectives(name, src) {
			at := linePos(pass.Fset, name, d.Line)
			if len(d.Analyzers) == 0 {
				pass.Reportf(at, "//lint:allow without an analyzer list; write //lint:allow <analyzer> <why>")
				continue
			}
			for _, a := range d.Analyzers {
				if a != "all" && !Known[a] {
					pass.Reportf(at, "//lint:allow names unknown analyzer %q (known: %s)", a, knownList())
				}
			}
			if d.Justification == "" {
				pass.Reportf(at, "//lint:allow %s without a justification; say why the finding is acceptable", strings.Join(d.Analyzers, ","))
			}
		}
		for _, b := range analysis.ParseBorrowed(name, src) {
			at := linePos(pass.Fset, name, b.Line)
			if len(b.Analyzers) == 0 {
				pass.Reportf(at, "//lint:borrowed without an analyzer list; write //lint:borrowed <analyzer> <param> <why>")
				continue
			}
			for _, a := range b.Analyzers {
				// "all" is not meaningful for borrowed: each dataflow
				// analyzer assigns its own ownership semantics.
				if !Known[a] {
					pass.Reportf(at, "//lint:borrowed names unknown analyzer %q (known: %s)", a, knownList())
				}
			}
			if len(b.Params) == 0 {
				pass.Reportf(at, "//lint:borrowed %s without parameter names", strings.Join(b.Analyzers, ","))
				continue
			}
			if b.Note == "" {
				pass.Reportf(at, "//lint:borrowed %s %s without an ownership note; say who owns the memory", strings.Join(b.Analyzers, ","), strings.Join(b.Params, ","))
			}
		}
	}
	return nil, nil
}

// knownList renders the known analyzer names for error messages.
func knownList() string {
	names := make([]string, 0, len(Known))
	for n := range Known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// linePos resolves file:line to a token.Pos through the pass file set, so
// the finding carries a real position even though the scan is textual.
func linePos(fset *token.FileSet, name string, line int) token.Pos {
	var tf *token.File
	fset.Iterate(func(f *token.File) bool {
		if f.Name() == name {
			tf = f
			return false
		}
		return true
	})
	if tf == nil || line < 1 || line > tf.LineCount() {
		return token.NoPos
	}
	return tf.LineStart(line)
}
