package allowaudit_test

import (
	"testing"

	"logscape/internal/analysis/analysistest"
	"logscape/internal/analyzers"
	"logscape/internal/analyzers/allowaudit"
)

func TestAllowAudit(t *testing.T) {
	allowaudit.Known = analyzers.Names()
	analysistest.Run(t, allowaudit.Analyzer, "a")
}
