// Package taintorder is the dataflow upgrade of maporder: instead of
// flagging syntax inside range-over-map bodies, it taints every value
// derived from map iteration order (range over a map, maps.Keys/Values/All)
// and flags only when the taint actually reaches an order-sensitive sink —
// output writers, non-commutative accumulators, or RNG seeding. Sorting
// (any callee whose name mentions "sort", matching maporder's heuristic)
// launders the taint, wherever it happens: in the same function, in a
// helper, or on a value returned through any chain of in-module calls.
//
// Order-taint is a value property, not an aliasing property: it survives
// copies, conversions, operators and external calls (strings.Join of keys
// collected in map order is still in map order), which is why the spec
// runs the engine in value mode.
package taintorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"logscape/internal/analysis"
	"logscape/internal/analysis/dataflow"
)

// Analyzer flags map-iteration-order values reaching order-sensitive sinks.
var Analyzer = &analysis.Analyzer{
	Name: "taintorder",
	Doc: "flag values derived from map iteration order (range over a map, maps.Keys/Values/All) " +
		"that reach an output writer, a non-commutative accumulator (string/float/complex " +
		"+= or any -= /=), or RNG seeding without an intervening sort — interprocedural: " +
		"taint follows values through helpers and returns; any call whose name mentions " +
		"\"sort\" canonicalizes",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	prog := dataflow.BuildProgram(pass.Fset, pass.Units)
	dataflow.Analyze(spec, prog, pass)
	return nil
}

// writeNames are output calls, mirroring maporder's write set.
var writeNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteRune": true, "WriteByte": true,
}

// rngNames seed or construct random sources; feeding them map-order data
// makes the stream's determinism depend on iteration order.
var rngNames = map[string]bool{"Seed": true, "NewSource": true}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// qualifiedName renders pkg.Name for the sort heuristic, so sort.Strings
// matches on its package just as slices.Sort matches on its name.
func qualifiedName(fn *types.Func) string {
	if pkg := fn.Pkg(); pkg != nil {
		return pkg.Name() + "." + fn.Name()
	}
	return fn.Name()
}

var spec = &dataflow.Spec{
	Name:      "taintorder",
	ValueMode: true,
	Borrowed:  true,

	RangeSource: func(unit *analysis.ProgramUnit, rng *ast.RangeStmt) (string, bool) {
		if t := unit.Info.TypeOf(rng.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				return "map iteration order", true
			}
		}
		return "", false
	},

	Source: func(ci *dataflow.CallInfo) (dataflow.SourceTaint, bool) {
		if ci.CalleeIs("maps", "Keys") || ci.CalleeIs("maps", "Values") || ci.CalleeIs("maps", "All") {
			return dataflow.SourceTaint{Reason: "map iteration order", Results: 1 << 0}, true
		}
		return dataflow.SourceTaint{}, false
	},

	Sanitize: func(ci *dataflow.CallInfo) (dataflow.SanitizeEffect, bool) {
		if ci.Callee != nil && strings.Contains(strings.ToLower(qualifiedName(ci.Callee)), "sort") {
			// Sorting canonicalizes everything it touches: results, and
			// arguments sorted in place (sort.Strings, slices.Sort).
			return dataflow.SanitizeEffect{Results: ^uint64(0), Args: ^uint64(0)}, true
		}
		return dataflow.SanitizeEffect{}, false
	},

	CallSink: func(ci *dataflow.CallInfo) (string, bool) {
		if ci.Callee == nil {
			return "", false
		}
		if writeNames[ci.Callee.Name()] {
			return fmt.Sprintf("output write (%s)", ci.Callee.Name()), true
		}
		if rngNames[ci.Callee.Name()] {
			if pkg := ci.Callee.Pkg(); pkg != nil && isRandPkg(pkg.Path()) {
				return fmt.Sprintf("RNG seeding (rand.%s)", ci.Callee.Name()), true
			}
		}
		return "", false
	},

	AccumSink: func(op token.Token, t types.Type) bool {
		switch op {
		case token.SUB_ASSIGN, token.QUO_ASSIGN:
			return true
		case token.ADD_ASSIGN, token.MUL_ASSIGN:
			// Integer += / *= commute exactly; string += concatenates in
			// visit order and float += / *= round in visit order.
			if t == nil {
				return false
			}
			b, ok := t.Underlying().(*types.Basic)
			return ok && b.Info()&(types.IsString|types.IsFloat|types.IsComplex) != 0
		}
		return false
	},

	Message: func(src, sink string) string {
		return fmt.Sprintf("value derived from %s reaches %s; iteration order is randomized — sort or canonicalize before the value becomes output", src, sink)
	},
}
