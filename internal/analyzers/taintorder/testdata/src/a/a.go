// Fixture for the taintorder analyzer: map-iteration-order values must be
// sorted before reaching output, non-commutative folds, or RNG seeds.
package a

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
)

// badJoin emits keys joined in map order: the taint survives append,
// strings.Join and the fmt call chain.
func badJoin(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	fmt.Println(strings.Join(keys, ",")) // want `map iteration order reaches output write \(Println\)`
}

// goodJoin sorts first: the sort launders the taint.
func goodJoin(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println(strings.Join(keys, ","))
}

// keysOf returns keys in map iteration order; the summary records the
// tainted result so callers inherit it.
func keysOf(m map[string]int) []string { // wantfact `result#0 tainted: map iteration order`
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// badViaHelper writes helper-collected keys without sorting.
func badViaHelper(m map[string]int, w io.Writer) {
	for _, k := range keysOf(m) {
		fmt.Fprintln(w, k) // want `map iteration order reaches output write \(Fprintln\)`
	}
}

// goodViaHelper sorts the helper's result before writing.
func goodViaHelper(m map[string]int, w io.Writer) {
	ks := keysOf(m)
	sort.Strings(ks)
	for _, k := range ks {
		fmt.Fprintln(w, k)
	}
}

// badFloatFold accumulates floats in map order: rounding differs per run.
func badFloatFold(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `map iteration order reaches order-sensitive accumulation \(\+=\)`
	}
	return total
}

// goodIntFold is commutative: integer addition is exact.
func goodIntFold(m map[string]int) int {
	var total int
	for _, v := range m {
		total += v
	}
	return total
}

// badConcat builds a string in map order.
func badConcat(m map[string]int) string {
	var s string
	for k := range m {
		s += k // want `map iteration order reaches order-sensitive accumulation \(\+=\)`
	}
	return s
}

// badSub subtracts in map order: never commutative.
func badSub(m map[string]int) int {
	n := 1 << 20
	for _, v := range m {
		n -= v // want `map iteration order reaches order-sensitive accumulation \(-=\)`
	}
	return n
}

// badSeed derives an RNG seed from whichever key iteration yields first —
// a different seed every run.
func badSeed(m map[string]int) *rand.Rand {
	var seed int64
	for k := range m {
		seed = int64(k[0])
		break
	}
	return rand.New(rand.NewSource(seed)) // want `map iteration order reaches RNG seeding \(rand\.NewSource\)`
}

// goodLen: the length of a map-derived container is a property of the
// container, not of assembly order.
func goodLen(m map[string]int, w io.Writer) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	fmt.Fprintf(w, "%d keys\n", len(keys))
}

// goodCountFold: integer addition is exact and commutative, so the total
// is order-independent even though each addend came from iteration.
func goodCountFold(m map[string][]int, w io.Writer) {
	total := 0
	for _, vs := range m {
		total += len(vs)
	}
	fmt.Fprintln(w, total)
}

// goodMapRebuild: maps impose no observable order — storing
// iteration-derived keys into another map and reading it back by key is
// canonical. (Iterating idx would re-introduce the taint at that range.)
func goodMapRebuild(m map[string]int) int {
	idx := make(map[string]int, len(m))
	for k, v := range m {
		idx[k] = v * 2
	}
	return idx["a"]
}

// badWriteDirect writes inside the loop body.
func badWriteDirect(m map[string]int, w io.Writer) {
	for k := range m {
		io.WriteString(w, k) // want `map iteration order reaches output write \(WriteString\)`
	}
}

// goodSortedSlice passes through a sorting helper in another function.
func sortKeys(keys []string) []string {
	sort.Strings(keys)
	return keys
}

func goodViaSortHelper(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	fmt.Println(strings.Join(sortKeys(keys), ","))
}

// allowedDebugDump is the sanctioned escape hatch for debug output whose
// order genuinely does not matter.
func allowedDebugDump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) //lint:allow taintorder debug dump, order irrelevant
	}
}
