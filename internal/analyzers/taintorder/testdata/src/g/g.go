// Regression fixture: a method that collects map keys into a receiver
// field and sorts them before returning must not re-taint the receiver
// at call sites. The first bug class this caught: ParamOut recorded the
// pre-sort store through the receiver, so a second call to Nodes saw a
// tainted receiver and its result-from-receiver flow revived the taint.
// Sanitizing a parameter chain now also clears its pending ParamOut.
package g

import (
	"fmt"
	"io"
	"sort"
)

// Graph mirrors the shape of internal/depgraph: an adjacency map plus a
// cached, sorted node list.
type Graph struct {
	succ  map[string][]string
	nodes []string
}

// Nodes stores map-iteration keys through the receiver, then sorts them.
// The sort canonicalizes the receiver-visible memory, so neither the
// result nor the receiver carries order-taint out of the call.
func (g *Graph) Nodes() []string { // wantfact `result#0 from param#0`
	if g.nodes == nil {
		seen := make(map[string]bool)
		for n := range g.succ {
			seen[n] = true
		}
		for n := range seen {
			g.nodes = append(g.nodes, n)
		}
		sort.Strings(g.nodes)
	}
	return g.nodes
}

// Layers calls Nodes twice on the same receiver: the second call must not
// observe taint left behind by the first.
func (g *Graph) Layers() [][]string {
	depth := make(map[string]int)
	maxDepth := 0
	for _, n := range g.Nodes() {
		if depth[n] > maxDepth {
			maxDepth = depth[n]
		}
	}
	layers := make([][]string, maxDepth+1)
	for _, n := range g.Nodes() {
		layers[depth[n]] = append(layers[depth[n]], n)
	}
	for _, l := range layers {
		sort.Strings(l)
	}
	return layers
}

// goodUse prints values that are deterministic by construction. Layers
// itself calls Nodes twice, so any leftover receiver taint from the first
// call would surface here.
func goodUse(w io.Writer) {
	g := &Graph{succ: map[string][]string{"a": {"b"}}}
	layers := g.Layers()
	fmt.Fprintf(w, "%d layers, first %v\n", len(layers), layers[0])
}

// Collect is the control: the same store-through-receiver path without
// the sort, so the ParamOut record must survive.
func (g *Graph) Collect() []string { // wantfact `\*param#0 tainted: map iteration order`
	for n := range g.succ {
		g.nodes = append(g.nodes, n)
	}
	return g.nodes
}

// badUse revives the taint exactly the way the regression did: the first
// call taints the local receiver through ParamOut, the second call's
// result-from-receiver flow carries it to the writer.
func badUse(w io.Writer) {
	g := &Graph{succ: map[string][]string{"a": {"b"}}}
	g.Collect()
	for _, n := range g.Collect() {
		fmt.Fprintln(w, n) // want `map iteration order reaches output write \(Fprintln\)`
	}
}
