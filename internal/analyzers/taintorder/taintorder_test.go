package taintorder_test

import (
	"testing"

	"logscape/internal/analysis/analysistest"
	"logscape/internal/analyzers/taintorder"
)

func TestTaintOrder(t *testing.T) {
	analysistest.RunProgram(t, taintorder.Analyzer, "a", "g")
}
