package floateq_test

import (
	"testing"

	"logscape/internal/analysis/analysistest"
	"logscape/internal/analyzers/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, floateq.Analyzer, "a")
}
