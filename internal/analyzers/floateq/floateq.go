package floateq

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"logscape/internal/analysis"
)

// Analyzer flags == and != between computed floating-point expressions.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= between floating-point expressions except against sentinel literals " +
		"(constants) and the x != x NaN probe; use a tolerance comparison such as " +
		"stats.ApproxEqual instead",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		if !isFloat(pass, bin.X) || !isFloat(pass, bin.Y) {
			return true
		}
		// Sentinel comparison: one side is a compile-time constant.
		if isConst(pass, bin.X) || isConst(pass, bin.Y) {
			return true
		}
		// The canonical NaN probe compares an expression with itself.
		if exprString(pass.Fset, bin.X) == exprString(pass.Fset, bin.Y) {
			return true
		}
		pass.Reportf(bin.Pos(), "floating-point %s between computed values; use a tolerance comparison (e.g. stats.ApproxEqual)", bin.Op)
		return true
	})
	return nil, nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
