// Fixture for the floateq analyzer: equality between computed floats is
// flagged; sentinel-literal comparisons, the NaN probe, integer equality
// and justified exact ties stay quiet.
package a

func badEqual(a, b float64) bool {
	return a == b // want `floating-point == between computed values`
}

func badNotEqual(a, b float64) bool {
	return a != b // want `floating-point != between computed values`
}

func badComputed(xs []float64) bool {
	return sum(xs) == mean(xs)*float64(len(xs)) // want `floating-point == between computed values`
}

// goodSentinelZero compares against a stored sentinel literal — allowed.
func goodSentinelZero(x float64) bool {
	return x == 0
}

// goodSentinelHalf: any constant is a sentinel.
func goodSentinelHalf(p float64) bool {
	return p != 0.5
}

const tieBreak = 1.5

// goodNamedConstant: named constants are sentinels too.
func goodNamedConstant(x float64) bool {
	return x == tieBreak
}

// goodNaNProbe is the canonical self-comparison NaN test — allowed.
func goodNaNProbe(x float64) bool {
	return x != x
}

// goodInts: integer equality is exact and out of scope.
func goodInts(a, b int) bool {
	return a == b
}

// allowedExactTie shows the escape hatch for intentional exact equality.
func allowedExactTie(a, b float64) bool {
	return a == b //lint:allow floateq exact tie grouping over already-stored values
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return sum(xs) / float64(len(xs))
}
