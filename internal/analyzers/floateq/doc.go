// Package floateq defines an analyzer that flags direct floating-point
// equality.
//
// Exact == / != between computed floating-point values is almost always a
// latent bug: two mathematically equal expressions rarely compare equal
// after rounding, and the result can differ between optimization levels.
// Comparisons against sentinel literals (x == 0, p == 0.5 — values stored,
// never computed) are idiomatic and stay allowed, as does the x != x NaN
// probe. Everything else should go through a tolerance helper such as
// stats.ApproxEqual, or carry a justified //lint:allow floateq when exact
// equality is the point (e.g. midrank tie grouping).
//
// See DESIGN.md §8 (Static invariants).
package floateq
