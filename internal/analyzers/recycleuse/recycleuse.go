// Package recycleuse enforces the bucket-recycling half of the DESIGN.md
// §12 ownership contract: under Config.RecycleBuckets the ingester reuses
// the Entries slice of every bucket that retires from the window, so code
// receiving a stream.Bucket (miners' Advance, OnAdvance hooks, helpers
// they call) must not retain the slice — only element copies are durable.
// The same borrowed-buffer rule applies to the Feeder's line buffers,
// annotated //lint:borrowed recycleuse at the declaration.
//
// The analyzer runs the internal/analysis/dataflow engine with
// element-copy semantics: ranging over a pooled slice and copying entries
// out is clean (Entry values are self-contained once interned), but
// storing the slice header itself — or the whole Bucket — into anything
// that outlives the call flags, through any chain of in-module calls.
package recycleuse

import (
	"fmt"
	"go/types"

	"logscape/internal/analysis"
	"logscape/internal/analysis/dataflow"
)

const streamPath = "logscape/internal/stream"

// Analyzer flags retention of pooled bucket slices and borrowed buffers.
var Analyzer = &analysis.Analyzer{
	Name: "recycleuse",
	Doc: "forbid retaining the Entries slice of a stream.Bucket (or a whole Bucket, or a " +
		"//lint:borrowed buffer) beyond the receiving call: under Config.RecycleBuckets the " +
		"ingester reuses retired bucket slices, so only element copies are durable — copy " +
		"what you keep (append to a fresh slice) instead of keeping the slice (DESIGN.md §12)",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	prog := dataflow.BuildProgram(pass.Fset, pass.Units)
	dataflow.Analyze(spec, prog, pass)
	return nil
}

// isBucket reports whether t is stream.Bucket or *stream.Bucket.
func isBucket(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Bucket" && obj.Pkg() != nil && obj.Pkg().Path() == streamPath
}

var spec = &dataflow.Spec{
	Name: "recycleuse",
	// Element loads are durable copies: an Entry copied out of a pooled
	// slice survives recycling (its strings live in the intern arena).
	// Only the slice header (and the Bucket carrying it) is pooled.
	ElementsAlias: false,
	HeapStores:    true,
	// Buckets legitimately travel over channels (the ingester delivers
	// them); the recycle barrier is window retirement, not the send.
	ChanSend: false,
	// A miner retaining the bucket in its own receiver state is the
	// violation — report at the store, not as a caller out-flow.
	ParamStores: true,
	Borrowed:    true,

	ParamSource: func(fn *dataflow.Func, i int, v *types.Var) (string, bool) {
		if isBucket(v.Type()) {
			return "pooled bucket (Config.RecycleBuckets)", true
		}
		return "", false
	},

	Sanitize: func(ci *dataflow.CallInfo) (dataflow.SanitizeEffect, bool) {
		if ci.CalleeIs("slices", "Clone") {
			return dataflow.SanitizeEffect{Results: 1 << 0}, true
		}
		return dataflow.SanitizeEffect{}, false
	},

	Message: func(src, sink string) string {
		return fmt.Sprintf("%s is retained via %s; the slice is reused after the bucket retires from the window — copy the entries you keep (DESIGN.md §12)", src, sink)
	},
}
