package recycleuse_test

import (
	"testing"

	"logscape/internal/analysis/analysistest"
	"logscape/internal/analyzers/recycleuse"
)

func TestRecycleUse(t *testing.T) {
	analysistest.RunProgram(t, recycleuse.Analyzer, "a")
}
