// Fixture for the recycleuse analyzer: pooled bucket slices and borrowed
// buffers must not be retained; element copies and aggregates stay quiet.
package a

import (
	"logscape/internal/logmodel"
	"logscape/internal/stream"
)

var savedEntries []logmodel.Entry
var savedBucket stream.Bucket
var savedLine []byte

type miner struct {
	history [][]logmodel.Entry
	last    stream.Bucket
	total   int
}

// badKeepSlice retains the pooled Entries slice itself.
func (m *miner) badKeepSlice(b stream.Bucket) {
	m.history = append(m.history, b.Entries) // want `pooled bucket \(Config\.RecycleBuckets\) is retained via store through parameter m`
}

// badKeepBucket retains the whole bucket (carrying the pooled slice).
func (m *miner) badKeepBucket(b stream.Bucket) {
	m.last = b // want `pooled bucket .* is retained via store through parameter m`
}

// badGlobal retains the slice in a package-level variable.
func badGlobal(b stream.Bucket) {
	savedEntries = b.Entries // want `pooled bucket .* is retained via assignment to package-level variable savedEntries`
}

// stash is a helper that retains its argument; the analyzer summarizes it.
func stash(entries []logmodel.Entry) { // wantfact `param#0 escapes`
	savedEntries = entries
}

// badViaHelper retains the slice through an in-package helper.
func badViaHelper(b stream.Bucket) {
	stash(b.Entries) // want `pooled bucket .* is retained via call to stash`
}

// badPointer retains through a *Bucket parameter.
func badPointer(b *stream.Bucket) {
	savedBucket = *b // want `pooled bucket .* is retained via assignment to package-level variable savedBucket`
}

// goodCopy keeps a durable copy of the entries.
func (m *miner) goodCopy(b stream.Bucket) {
	m.history = append(m.history, append([]logmodel.Entry(nil), b.Entries...))
}

// goodAggregate consumes element copies — the sanctioned pattern.
func (m *miner) goodAggregate(b stream.Bucket) {
	for _, e := range b.Entries {
		if e.Severity >= logmodel.SevError {
			m.total++
		}
	}
}

// goodFrame retains the pointer-free frame of the bucket, not the slice.
func (m *miner) goodFrame(b stream.Bucket) {
	m.last = stream.Bucket{Index: b.Index, Range: b.Range}
}

// goodElement retains a single entry copy.
func goodElement(b stream.Bucket) {
	if len(b.Entries) > 0 {
		savedEntries = append(savedEntries, b.Entries[0])
	}
}

// badBorrowed retains a borrowed line buffer.
//
//lint:borrowed recycleuse buf the feeder reuses the line buffer between calls
func badBorrowed(buf []byte) {
	savedLine = buf // want `borrowed parameter "buf" is retained via assignment to package-level variable savedLine`
}

// goodBorrowedCopy copies the borrowed buffer before keeping it.
//
//lint:borrowed recycleuse buf the feeder reuses the line buffer between calls
func goodBorrowedCopy(buf []byte) {
	savedLine = append([]byte(nil), buf...)
}
