package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// sortPairs orders a pair slice lexicographically.
func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

// sortAppServicePairs orders a dependency slice lexicographically.
func sortAppServicePairs(ps []AppServicePair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].App != ps[j].App {
			return ps[i].App < ps[j].App
		}
		return ps[i].Group < ps[j].Group
	})
}

// ModelDocument is the on-disk form of a mined dependency model: either an
// undirected application-pair model (approaches L1/L2) or a directed
// application→service model (approach L3), with free-form metadata about
// how it was mined. It is what cmd/depmine writes and downstream tooling
// (visualization, diffing against previous weeks) consumes.
type ModelDocument struct {
	// Technique identifies the miner ("l1", "l2", "l3", "baseline", ...).
	Technique string `json:"technique"`
	// Params records the mining parameters as free-form strings.
	Params map[string]string `json:"params,omitempty"`
	// Pairs is the undirected model (nil for app→service models).
	Pairs []Pair `json:"pairs,omitempty"`
	// Deps is the directed model (nil for pair models).
	Deps []AppServicePair `json:"deps,omitempty"`
}

// NewPairDocument builds a document from a pair set, sorted.
func NewPairDocument(technique string, s PairSet, params map[string]string) ModelDocument {
	return ModelDocument{Technique: technique, Params: params, Pairs: s.SortedPairs()}
}

// NewDepDocument builds a document from a dependency set, sorted.
func NewDepDocument(technique string, s AppServiceSet, params map[string]string) ModelDocument {
	return ModelDocument{Technique: technique, Params: params, Deps: s.SortedPairs()}
}

// PairSet reconstructs the pair set of the document.
func (d ModelDocument) PairSet() PairSet {
	out := make(PairSet, len(d.Pairs))
	for _, p := range d.Pairs {
		out[MakePair(p.A, p.B)] = true
	}
	return out
}

// DepSet reconstructs the dependency set of the document.
func (d ModelDocument) DepSet() AppServiceSet {
	out := make(AppServiceSet, len(d.Deps))
	for _, p := range d.Deps {
		out[p] = true
	}
	return out
}

// Validate checks structural invariants: a technique name, and exactly one
// of Pairs/Deps populated (both empty is allowed: an empty model).
func (d ModelDocument) Validate() error {
	if d.Technique == "" {
		return fmt.Errorf("core: model document without technique")
	}
	if len(d.Pairs) > 0 && len(d.Deps) > 0 {
		return fmt.Errorf("core: model document with both pairs and deps")
	}
	for _, p := range d.Pairs {
		if p.A == "" || p.B == "" || p.A > p.B {
			return fmt.Errorf("core: malformed pair %+v", p)
		}
	}
	for _, p := range d.Deps {
		if p.App == "" || p.Group == "" {
			return fmt.Errorf("core: malformed dependency %+v", p)
		}
	}
	return nil
}

// WriteModel writes the document as indented JSON.
func WriteModel(w io.Writer, d ModelDocument) error {
	if err := d.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadModel reads and validates a model document.
func ReadModel(r io.Reader) (ModelDocument, error) {
	var d ModelDocument
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return ModelDocument{}, fmt.Errorf("core: decode model: %w", err)
	}
	if err := d.Validate(); err != nil {
		return ModelDocument{}, err
	}
	return d, nil
}

// DiffModels compares two pair models and returns the pairs only in a and
// only in b — the "what changed since last week" view a moving landscape
// needs.
func DiffModels(a, b PairSet) (onlyA, onlyB []Pair) {
	for p := range a {
		if !b[p] {
			onlyA = append(onlyA, p)
		}
	}
	for p := range b {
		if !a[p] {
			onlyB = append(onlyB, p)
		}
	}
	sortPairs(onlyA)
	sortPairs(onlyB)
	return onlyA, onlyB
}

// DiffDeps is DiffModels for directed dependency models.
func DiffDeps(a, b AppServiceSet) (onlyA, onlyB []AppServicePair) {
	for p := range a {
		if !b[p] {
			onlyA = append(onlyA, p)
		}
	}
	for p := range b {
		if !a[p] {
			onlyB = append(onlyB, p)
		}
	}
	sortAppServicePairs(onlyA)
	sortAppServicePairs(onlyB)
	return onlyA, onlyB
}
