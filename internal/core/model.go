package core

import (
	"fmt"
	"sort"
)

// Pair is an unordered pair of application names, normalized so A < B.
// Approaches L1 and L2 produce models over Pairs; the paper's first
// reference model is a set of dependent Pairs (§4.3).
type Pair struct {
	A string `json:"a"`
	B string `json:"b"`
}

// MakePair returns the normalized unordered pair of a and b.
func MakePair(a, b string) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// String renders the pair.
func (p Pair) String() string { return fmt.Sprintf("{%s, %s}", p.A, p.B) }

// AppServicePair is a directed dependency of an application on a
// service-directory entry — the element of approach L3's model and of the
// paper's second reference model (§4.3).
type AppServicePair struct {
	App   string `json:"app"`
	Group string `json:"group"`
}

// String renders the dependency.
func (p AppServicePair) String() string { return fmt.Sprintf("%s -> %s", p.App, p.Group) }

// PairSet is a set of unordered application pairs.
type PairSet map[Pair]bool

// SortedPairs returns the set's elements in lexicographic order.
func (s PairSet) SortedPairs() []Pair {
	out := make([]Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// AppServiceSet is a set of application→service dependencies.
type AppServiceSet map[AppServicePair]bool

// SortedPairs returns the set's elements in lexicographic order.
func (s AppServiceSet) SortedPairs() []AppServicePair {
	out := make([]AppServicePair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].App != out[j].App {
			return out[i].App < out[j].App
		}
		return out[i].Group < out[j].Group
	})
	return out
}

// Confusion compares a mined set of positives against a reference model
// restricted to a universe of possible decisions.
type Confusion struct {
	// TP, FP, FN, TN are the confusion-matrix counts.
	TP, FP, FN, TN int
}

// Precision returns TP / (TP + FP), or 0 when nothing was predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN), or 0 when the reference is empty.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FalsePositiveRate returns FP / (FP + TN), the classification error on
// unrelated pairs the paper quotes for approach L1 ("a number of 25 false
// positives would result in an error rate of only 2%").
func (c Confusion) FalsePositiveRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// ComparePairs scores predicted pairs against the true pairs over a
// universe of n possible pairs (TN is derived from n).
func ComparePairs(predicted, truth PairSet, universe int) Confusion {
	var c Confusion
	for p := range predicted {
		if truth[p] {
			c.TP++
		} else {
			c.FP++
		}
	}
	for p := range truth {
		if !predicted[p] {
			c.FN++
		}
	}
	c.TN = universe - c.TP - c.FP - c.FN
	if c.TN < 0 {
		c.TN = 0
	}
	return c
}

// CompareAppService scores predicted dependencies against the truth over a
// universe of n possible (app, group) combinations.
func CompareAppService(predicted, truth AppServiceSet, universe int) Confusion {
	var c Confusion
	for p := range predicted {
		if truth[p] {
			c.TP++
		} else {
			c.FP++
		}
	}
	for p := range truth {
		if !predicted[p] {
			c.FN++
		}
	}
	c.TN = universe - c.TP - c.FP - c.FN
	if c.TN < 0 {
		c.TN = 0
	}
	return c
}
