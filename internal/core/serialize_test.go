package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestModelDocumentRoundTripPairs(t *testing.T) {
	s := PairSet{
		MakePair("B", "A"): true,
		MakePair("C", "A"): true,
	}
	doc := NewPairDocument("l2", s, map[string]string{"timeout": "1s"})
	var buf bytes.Buffer
	if err := WriteModel(&buf, doc); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Technique != "l2" || got.Params["timeout"] != "1s" {
		t.Errorf("metadata = %+v", got)
	}
	if !reflect.DeepEqual(got.PairSet(), s) {
		t.Errorf("pairs = %v", got.PairSet())
	}
}

func TestModelDocumentRoundTripDeps(t *testing.T) {
	s := AppServiceSet{
		{App: "A", Group: "G1"}: true,
		{App: "B", Group: "G2"}: true,
	}
	doc := NewDepDocument("l3", s, nil)
	var buf bytes.Buffer
	if err := WriteModel(&buf, doc); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.DepSet(), s) {
		t.Errorf("deps = %v", got.DepSet())
	}
}

func TestModelDocumentValidate(t *testing.T) {
	cases := []ModelDocument{
		{}, // no technique
		{Technique: "x", Pairs: []Pair{{A: "B", B: "A"}}},                                                 // unsorted pair
		{Technique: "x", Pairs: []Pair{{A: "", B: "A"}}},                                                  // empty member
		{Technique: "x", Deps: []AppServicePair{{App: "", Group: "G"}}},                                   // empty app
		{Technique: "x", Pairs: []Pair{{A: "A", B: "B"}}, Deps: []AppServicePair{{App: "A", Group: "G"}}}, // both
	}
	for i, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	ok := ModelDocument{Technique: "l1"}
	if err := ok.Validate(); err != nil {
		t.Errorf("empty model: %v", err)
	}
}

func TestReadModelErrors(t *testing.T) {
	if _, err := ReadModel(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := ReadModel(strings.NewReader(`{"pairs":[{"A":"x","B":"y"}]}`)); err == nil {
		t.Error("expected validation error (no technique)")
	}
}

func TestDiffModels(t *testing.T) {
	a := PairSet{MakePair("A", "B"): true, MakePair("A", "C"): true}
	b := PairSet{MakePair("A", "B"): true, MakePair("B", "C"): true}
	onlyA, onlyB := DiffModels(a, b)
	if !reflect.DeepEqual(onlyA, []Pair{{A: "A", B: "C"}}) {
		t.Errorf("onlyA = %v", onlyA)
	}
	if !reflect.DeepEqual(onlyB, []Pair{{A: "B", B: "C"}}) {
		t.Errorf("onlyB = %v", onlyB)
	}
	ea, eb := DiffModels(a, a)
	if ea != nil || eb != nil {
		t.Errorf("self diff = %v, %v", ea, eb)
	}
}

func TestDiffDeps(t *testing.T) {
	a := AppServiceSet{{App: "A", Group: "G"}: true}
	b := AppServiceSet{{App: "A", Group: "H"}: true}
	onlyA, onlyB := DiffDeps(a, b)
	if len(onlyA) != 1 || onlyA[0].Group != "G" {
		t.Errorf("onlyA = %v", onlyA)
	}
	if len(onlyB) != 1 || onlyB[0].Group != "H" {
		t.Errorf("onlyB = %v", onlyB)
	}
}
