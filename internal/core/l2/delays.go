package l2

import (
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
	"logscape/internal/stats"
)

// Delay analysis — the improvement the paper's §5 sketches for L2: "apply
// algorithms like the ones presented in [1, 3, 25] to analyze typical
// delays between logs. In case of L2, this might help to distinguish
// frequent co-occurrences due to concurrency from those that are causally
// related."
//
// For a bigram type (A, B), a causal interaction produces delays
// concentrated around the service latency, while mere concurrent use
// produces delays close to uniform over the observation window. The
// distinction is the same chi-squared uniformity argument Agrawal et al.
// use (internal/baseline), applied to within-session adjacencies.

// DelayResult is the delay analysis of one bigram type.
type DelayResult struct {
	Type Bigram
	// Samples is the number of in-window delays observed.
	Samples int64
	// X2, DF and PValue are the uniformity test outcome.
	X2     float64
	DF     int
	PValue float64
	// Peaked reports whether uniformity was rejected — evidence that the
	// co-occurrence is causal rather than concurrent.
	Peaked bool
	// MedianDelay is the median observed delay in seconds (the "typical
	// delay" of a causal pair).
	MedianDelay float64
}

// DelayConfig parameterizes the analysis. The zero value uses a 2 s window
// with 20 bins at significance 0.001 and at least 30 samples.
type DelayConfig struct {
	// Window is the maximal delay considered.
	Window logmodel.Millis
	// Bins is the number of histogram bins.
	Bins int
	// Alpha is the significance level for rejecting uniformity.
	Alpha float64
	// MinSamples is the minimum number of delays needed for a verdict.
	MinSamples int
}

func (c DelayConfig) withDefaults() DelayConfig {
	if c.Window == 0 {
		c.Window = 2 * logmodel.MillisPerSecond
	}
	if c.Bins == 0 {
		c.Bins = 20
	}
	if c.Alpha == 0 {
		c.Alpha = 0.001
	}
	if c.MinSamples == 0 {
		c.MinSamples = 30
	}
	return c
}

// AnalyzeDelays collects the delays of all in-window adjacencies of type t
// across the session corpus and tests them against uniformity.
func AnalyzeDelays(ss []sessions.Session, t Bigram, cfg DelayConfig) DelayResult {
	cfg = cfg.withDefaults()
	h := stats.NewHistogram(0, cfg.Window.Seconds(), cfg.Bins)
	var delays []float64
	for i := range ss {
		es := ss[i].Entries
		for j := 1; j < len(es); j++ {
			if es[j-1].Source != t.First || es[j].Source != t.Second {
				continue
			}
			d := es[j].Time - es[j-1].Time
			if d < 0 || d > cfg.Window {
				continue
			}
			h.Add(d.Seconds())
			delays = append(delays, d.Seconds())
		}
	}
	res := DelayResult{Type: t, Samples: h.N()}
	if len(delays) > 0 {
		res.MedianDelay = stats.MedianOf(delays)
	}
	if res.Samples < int64(cfg.MinSamples) {
		return res
	}
	u, err := stats.ChiSquaredUniformity(h)
	if err != nil {
		return res
	}
	res.X2, res.DF, res.PValue = u.X2, u.DF, u.PValue
	res.Peaked = u.NonUniform(cfg.Alpha)
	return res
}

// ClassifyPairs runs the delay analysis for both orderings of every pair
// and reports which pairs look causal (peaked in at least one ordering).
// Pairs with insufficient samples map to false.
func ClassifyPairs(ss []sessions.Session, pairs map[Bigram]bool, cfg DelayConfig) map[Bigram]DelayResult {
	out := make(map[Bigram]DelayResult, len(pairs))
	for t := range pairs {
		out[t] = AnalyzeDelays(ss, t, cfg)
	}
	return out
}
