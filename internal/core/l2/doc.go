// Package l2 implements the paper's approach L2 (§3.2): mining user
// sessions with the co-occurrence statistics used for collocation
// extraction in natural language processing.
//
// Each session is an ordered sequence of activity statements by
// applications. All pairs of immediately succeeding logs with different
// sources form bigrams; a configurable timeout drops bigrams spanning a
// long silence (typically distinct user actions). For every observed bigram
// type (A, B) a 2×2 contingency table is built over all bigrams, and
// Dunning's log-likelihood ratio test decides association (Evert's UCS
// notation; §3.2 and figure 4). Significant types with positive association
// yield dependent application pairs; the undirected union over both
// directions is the mined model.
//
// The package also implements the §5 direction heuristic ("counting the
// number of times the first element of the first pair of the given type is
// an instance of A, respectively B, in a sequence of logs that is not
// interrupted by a pause of at least the length of the timeout parameter").
//
// See DESIGN.md §5 (Key design decisions).
package l2
