package l2

import (
	"sort"

	"logscape/internal/core"
	"logscape/internal/logmodel"
	"logscape/internal/obs"
	"logscape/internal/parallel"
	"logscape/internal/sessions"
	"logscape/internal/stats"
)

// Measure selects the association statistic.
type Measure int

const (
	// MeasureG2 is Dunning's log-likelihood ratio (the paper's choice).
	MeasureG2 Measure = iota
	// MeasurePearson is Pearson's X² (ablation; misbehaves on skewed
	// tables).
	MeasurePearson
	// MeasureFisher is Fisher's exact test (one-sided) — the statistically
	// safe choice for small corpora where the asymptotic tests' expected
	// counts fall below a few per cell, at higher computational cost.
	MeasureFisher
)

// NoTimeout disables the bigram gap timeout (the paper's "infinity").
const NoTimeout logmodel.Millis = -1

// Config parameterizes the miner. The zero value is replaced by the §4.6
// settings.
type Config struct {
	// Timeout is the maximal gap between two logs forming a bigram
	// (default 1 s, the paper's best setting; NoTimeout disables it).
	Timeout logmodel.Millis
	// Alpha is the significance level of the association test (default
	// 0.05). Note that G² is extensive in the corpus size: at the paper's
	// volume (hundreds of logs per session, millions per day) systematic
	// co-occurrences reach huge statistics and the exact level hardly
	// matters; at reduced simulation scales a stricter level trades false
	// positives for recall (see the ablation benchmarks).
	Alpha float64
	// MinJoint is the minimum joint count O11 for a type to be considered
	// (default 3; guards the asymptotic test against one-off adjacencies).
	MinJoint float64
	// Measure selects the association statistic (default MeasureG2).
	Measure Measure
	// Workers bounds the mining parallelism (session sharding for bigram
	// counting and the per-type association pass): 0 selects GOMAXPROCS, 1
	// forces the exact sequential path. Results are identical for every
	// setting: all bigram counts are integers, so the shard-ordered merge
	// of partial contingency tables is exact.
	Workers int
	// Metrics, when non-nil, collects per-stage counters and timing
	// histograms (see internal/obs). Collection never changes the mined
	// model, and counter values are identical for every Workers setting.
	Metrics *obs.Registry
}

// DefaultConfig returns the paper's calibrated configuration with every
// threshold field set explicitly — the sanctioned base for call sites that
// only want to tune Workers (see the cfgzero analyzer).
func DefaultConfig() Config {
	return Config{}.withDefaults()
}

func (c Config) withDefaults() Config {
	if c.Timeout == 0 {
		c.Timeout = logmodel.MillisPerSecond
	}
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.MinJoint == 0 {
		c.MinJoint = 3
	}
	return c
}

// Bigram is a directed pair of immediately succeeding log sources.
type Bigram struct{ First, Second string }

// ExtractBigrams returns the bigrams of one session under the given
// timeout: consecutive entries with different sources whose gap does not
// exceed the timeout (§3.2; bigrams with a = b are ignored).
func ExtractBigrams(s *sessions.Session, timeout logmodel.Millis) []Bigram {
	var out []Bigram
	es := s.Entries
	for i := 1; i < len(es); i++ {
		if timeout >= 0 && es[i].Time-es[i-1].Time > timeout {
			continue
		}
		if es[i-1].Source == es[i].Source {
			continue
		}
		out = append(out, Bigram{First: es[i-1].Source, Second: es[i].Source})
	}
	return out
}

// Counts aggregates bigram occurrences over a session corpus.
type Counts struct {
	// Joint counts each bigram type.
	Joint map[Bigram]float64
	// First and Second are the marginal counts of each source in first,
	// respectively second, position.
	First, Second map[string]float64
	// Total is the number of bigrams.
	Total float64
}

// NewCounts returns an empty aggregation.
func NewCounts() *Counts {
	return &Counts{
		Joint:  make(map[Bigram]float64),
		First:  make(map[string]float64),
		Second: make(map[string]float64),
	}
}

// CountBigrams tallies the bigrams of all sessions under the timeout.
func CountBigrams(ss []sessions.Session, timeout logmodel.Millis) *Counts {
	c := NewCounts()
	for i := range ss {
		c.Add(ExtractBigrams(&ss[i], timeout))
	}
	return c
}

// Add tallies the given bigram occurrences. All counts are integer-valued
// floats, so repeated Add/Remove round trips are exact.
func (c *Counts) Add(bs []Bigram) {
	for _, b := range bs {
		c.Joint[b]++
		c.First[b.First]++
		c.Second[b.Second]++
		c.Total++
	}
}

// Remove untallies bigram occurrences previously added with Add. Keys whose
// count returns to zero are deleted, so an incrementally maintained Counts
// stays structurally identical (reflect.DeepEqual) to a from-scratch tally
// of the surviving sessions — the invariant the streaming miner's
// batch-equivalence contract rests on. Counts are integer-valued floats, so
// the zero test is exact.
func (c *Counts) Remove(bs []Bigram) {
	for _, b := range bs {
		c.Joint[b]--
		if c.Joint[b] == 0 { //lint:allow floateq integer-valued counts, subtraction is exact so the zero test is too
			delete(c.Joint, b)
		}
		c.First[b.First]--
		if c.First[b.First] == 0 { //lint:allow floateq integer-valued counts, subtraction is exact so the zero test is too
			delete(c.First, b.First)
		}
		c.Second[b.Second]--
		if c.Second[b.Second] == 0 { //lint:allow floateq integer-valued counts, subtraction is exact so the zero test is too
			delete(c.Second, b.Second)
		}
		c.Total--
	}
}

// CountBigramsParallel is CountBigrams over session shards: each of up to
// workers shards tallies its contiguous sub-slice of sessions, and the
// partial counts are summed in shard order. Counts are integer-valued, so
// the merged result equals the sequential one exactly; workers ≤ 1 runs
// CountBigrams unchanged.
func CountBigramsParallel(ss []sessions.Session, timeout logmodel.Millis, workers int) *Counts {
	return countBigramsMetered(ss, timeout, workers, nil)
}

// countBigramsMetered is CountBigramsParallel with per-shard busy-time
// collection (histograms only — the shard count depends on workers, so no
// counter may derive from it).
func countBigramsMetered(ss []sessions.Session, timeout logmodel.Millis, workers int, m *obs.Registry) *Counts {
	parts := parallel.MapShards(workers, len(ss),
		obs.MeterShards(m, "l2.count_shards", func(lo, hi int) *Counts {
			return CountBigrams(ss[lo:hi], timeout)
		}))
	if len(parts) == 0 {
		return CountBigrams(nil, timeout)
	}
	merged := parts[0]
	for _, p := range parts[1:] {
		// Counts are integer-valued floats, so this fold is exact and
		// commutative; map-range merge order cannot change the result.
		for b, n := range p.Joint {
			merged.Joint[b] += n //lint:allow maporder,taintorder integer-valued counts, addition is exact and commutative
		}
		for s, n := range p.First {
			merged.First[s] += n //lint:allow maporder,taintorder integer-valued counts, addition is exact and commutative
		}
		for s, n := range p.Second {
			merged.Second[s] += n //lint:allow maporder,taintorder integer-valued counts, addition is exact and commutative
		}
		merged.Total += p.Total
	}
	return merged
}

// Table builds the 2×2 contingency table of a bigram type (figure 4 of the
// paper): O11 counts bigrams (A, B), O12 bigrams (A, ¬B), O21 (¬A, B), O22
// the rest.
func (c *Counts) Table(t Bigram) stats.ContingencyTable {
	o11 := c.Joint[t]
	r1 := c.First[t.First]
	c1 := c.Second[t.Second]
	return stats.ContingencyTable{
		O11: o11,
		O12: r1 - o11,
		O21: c1 - o11,
		O22: c.Total - r1 - c1 + o11,
	}
}

// TypeResult is the association outcome for one bigram type.
type TypeResult struct {
	Type  Bigram
	Table stats.ContingencyTable
	// Statistic is the association statistic (G² or X² per Config).
	Statistic float64
	// PValue is its asymptotic chi-squared (1 df) p-value.
	PValue float64
	// Positive reports attraction (O11 above expectation).
	Positive bool
	// Significant is the final per-type decision.
	Significant bool
}

// Result is the mined model.
type Result struct {
	// Types holds the per-bigram-type outcomes.
	Types map[Bigram]TypeResult
	// Counts is the underlying aggregation.
	Counts *Counts
	// Config is the effective configuration.
	Config Config
}

// DependentPairs returns the undirected union of significant types.
func (r *Result) DependentPairs() core.PairSet {
	out := make(core.PairSet)
	for t, tr := range r.Types {
		if tr.Significant {
			out[core.MakePair(t.First, t.Second)] = true
		}
	}
	return out
}

// Mine runs approach L2 over the session corpus. Sessions are sharded for
// bigram counting and the per-type association tests fan out over the same
// worker pool; results are identical for every Config.Workers setting.
func Mine(ss []sessions.Session, cfg Config) *Result {
	cfg = cfg.withDefaults()
	defer cfg.Metrics.Timer("l2.mine_ns")()
	cfg.Metrics.Counter("l2.sessions").Add(int64(len(ss)))
	counts := countBigramsMetered(ss, cfg.Timeout, parallel.Workers(cfg.Workers), cfg.Metrics)
	cfg.Metrics.Counter("l2.bigrams").Add(int64(counts.Total))
	return ResultFromCounts(counts, cfg)
}

// ResultFromCounts runs the per-type association tests over an existing
// bigram aggregation — the second half of Mine, split out so an
// incrementally maintained Counts (internal/stream) yields the exact model
// a batch run over the same corpus would. The tests fan out over
// Config.Workers; counts is retained in the result, not modified.
func ResultFromCounts(counts *Counts, cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{Types: make(map[Bigram]TypeResult), Counts: counts, Config: cfg}
	types := make([]Bigram, 0, len(counts.Joint))
	for t := range counts.Joint {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool {
		if types[i].First != types[j].First {
			return types[i].First < types[j].First
		}
		return types[i].Second < types[j].Second
	})
	significant := int64(0)
	for _, tr := range parallel.Map(parallel.Workers(cfg.Workers), len(types),
		obs.Meter(cfg.Metrics, "l2.association_tests", func(i int) TypeResult {
			return testType(counts, types[i], cfg)
		})) {
		if tr.Significant {
			significant++
		}
		res.Types[tr.Type] = tr
	}
	cfg.Metrics.Counter("l2.significant_types").Add(significant)
	return res
}

// testType runs the configured association test on one bigram type.
func testType(counts *Counts, t Bigram, cfg Config) TypeResult {
	tab := counts.Table(t)
	tr := TypeResult{
		Type:     t,
		Table:    tab,
		Positive: stats.PositiveAssociation(tab),
	}
	switch cfg.Measure {
	case MeasurePearson:
		tr.Statistic = stats.PearsonX2(tab)
		tr.PValue = stats.ChiSquaredSF(tr.Statistic, 1)
	case MeasureFisher:
		one, _ := stats.FisherExact(tab)
		// The exact test is inherently one-sided toward attraction; use
		// the p-value directly and record it as the statistic's stand-in.
		tr.PValue = one
		tr.Statistic = -one
	default:
		tr.Statistic = stats.LogLikelihoodG2(tab)
		tr.PValue = stats.ChiSquaredSF(tr.Statistic, 1)
	}
	tr.Significant = tr.Positive && tab.O11 >= cfg.MinJoint && tr.PValue < cfg.Alpha
	return tr
}

// DirectionHint is the §5 heuristic's evidence for one dependent pair.
type DirectionHint struct {
	Pair core.Pair
	// AFirst counts the runs in which the first bigram of the pair's type
	// had Pair.A in first position; BFirst likewise for Pair.B.
	AFirst, BFirst int
}

// Caller returns the heuristic's guess for the invoking side, or "" when
// the evidence is balanced.
func (d DirectionHint) Caller() string {
	switch {
	case d.AFirst > d.BFirst:
		return d.Pair.A
	case d.BFirst > d.AFirst:
		return d.Pair.B
	default:
		return ""
	}
}

// DirectionHints applies the §5 direction heuristic to the given dependent
// pairs: sessions are cut into runs not interrupted by a pause of at least
// the timeout, and for each run the first adjacency of each pair votes for
// the source that appeared first.
func DirectionHints(ss []sessions.Session, pairs core.PairSet, timeout logmodel.Millis) map[core.Pair]DirectionHint {
	out := make(map[core.Pair]DirectionHint, len(pairs))
	for p := range pairs {
		out[p] = DirectionHint{Pair: p}
	}
	for i := range ss {
		es := ss[i].Entries
		runStart := 0
		for j := 1; j <= len(es); j++ {
			if j < len(es) && (timeout < 0 || es[j].Time-es[j-1].Time <= timeout) {
				continue
			}
			scoreRun(es[runStart:j], out)
			runStart = j
		}
	}
	return out
}

// scoreRun registers the first adjacency of every tracked pair in the run.
func scoreRun(es []logmodel.Entry, hints map[core.Pair]DirectionHint) {
	seen := make(map[core.Pair]bool)
	for i := 1; i < len(es); i++ {
		a, b := es[i-1].Source, es[i].Source
		if a == b {
			continue
		}
		p := core.MakePair(a, b)
		h, tracked := hints[p]
		if !tracked || seen[p] {
			continue
		}
		seen[p] = true
		if a == p.A {
			h.AFirst++
		} else {
			h.BFirst++
		}
		hints[p] = h
	}
}
