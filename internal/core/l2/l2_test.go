package l2

import (
	"reflect"
	"testing"

	"logscape/internal/core"
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
)

// figure3Session reproduces the running example of §3.2 (figure 3): A2
// calls A1, then twice A3, which in turn calls A4. Timestamps in
// milliseconds, the final gap exceeding 0.5 s.
func figure3Session() sessions.Session {
	mk := func(t logmodel.Millis, src string) logmodel.Entry {
		return logmodel.Entry{Time: t, Source: src, User: "u", Severity: logmodel.SevInfo}
	}
	return sessions.Session{User: "u", Entries: []logmodel.Entry{
		mk(0, "A2"),
		mk(100, "A1"),
		mk(200, "A2"),
		mk(300, "A3"),
		mk(400, "A4"),
		mk(500, "A2"),
		mk(600, "A3"),
		mk(700, "A4"),
		mk(1400, "A2"), // gap of 0.7 s to the previous log
	}}
}

func TestExtractBigramsRunningExample(t *testing.T) {
	s := figure3Session()
	got := ExtractBigrams(&s, NoTimeout)
	want := []Bigram{
		{"A2", "A1"}, {"A1", "A2"}, {"A2", "A3"}, {"A3", "A4"},
		{"A4", "A2"}, {"A2", "A3"}, {"A3", "A4"}, {"A4", "A2"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("bigrams = %v\nwant %v", got, want)
	}
}

func TestExtractBigramsTimeout(t *testing.T) {
	s := figure3Session()
	// §3.2: "the last bigram (A4, A2) would be ignored for any timeout
	// value between 0 and 0.5 seconds" — here the final gap is 0.7 s.
	got := ExtractBigrams(&s, logmodel.SecondsToMillis(0.5))
	if len(got) != 7 {
		t.Fatalf("bigrams = %d, want 7", len(got))
	}
	for _, b := range got {
		if b == (Bigram{"A4", "A2"}) && got[len(got)-1] == b {
			// the earlier (A4, A2) at gap 0.1 s must remain
			break
		}
	}
	last := got[len(got)-1]
	if last != (Bigram{"A3", "A4"}) {
		t.Errorf("last bigram = %v, want {A3 A4}", last)
	}
}

func TestExtractBigramsSkipsSameSource(t *testing.T) {
	mk := func(t logmodel.Millis, src string) logmodel.Entry {
		return logmodel.Entry{Time: t, Source: src}
	}
	s := sessions.Session{Entries: []logmodel.Entry{
		mk(0, "A"), mk(1, "A"), mk(2, "B"),
	}}
	got := ExtractBigrams(&s, NoTimeout)
	if len(got) != 1 || got[0] != (Bigram{"A", "B"}) {
		t.Errorf("bigrams = %v", got)
	}
}

// TestFigure4Table reproduces figure 4 exactly: the contingency table for
// bigram type (A2, A3) over the 8 bigrams of the running example.
func TestFigure4Table(t *testing.T) {
	s := figure3Session()
	counts := CountBigrams([]sessions.Session{s}, NoTimeout)
	if counts.Total != 8 {
		t.Fatalf("total bigrams = %v, want 8", counts.Total)
	}
	tab := counts.Table(Bigram{"A2", "A3"})
	if tab.O11 != 2 || tab.O21 != 0 || tab.O12 != 1 || tab.O22 != 5 {
		t.Errorf("table = %+v, want O11=2 O21=0 O12=1 O22=5 (figure 4)", tab)
	}
}

func TestCountBigramsMarginals(t *testing.T) {
	s := figure3Session()
	counts := CountBigrams([]sessions.Session{s}, NoTimeout)
	if counts.First["A2"] != 3 {
		t.Errorf("First[A2] = %v", counts.First["A2"])
	}
	if counts.Second["A3"] != 2 {
		t.Errorf("Second[A3] = %v", counts.Second["A3"])
	}
	// Marginal sums equal the total.
	var f, sec float64
	for _, v := range counts.First {
		f += v //lint:allow maporder,taintorder integer-valued counts, addition is exact and commutative
	}
	for _, v := range counts.Second {
		sec += v //lint:allow maporder,taintorder integer-valued counts, addition is exact and commutative
	}
	if f != counts.Total || sec != counts.Total { //lint:allow floateq integer-valued counts, marginal identity must be exact
		t.Errorf("marginal sums %v/%v != total %v", f, sec, counts.Total)
	}
}

// corpusWithDependency builds a session corpus where A→B adjacencies are
// systematic and X, Y are independent fillers.
func corpusWithDependency(n int) []sessions.Session {
	var out []sessions.Session
	srcs := []string{"X", "Y", "Z", "W"}
	for i := 0; i < n; i++ {
		var es []logmodel.Entry
		t := logmodel.Millis(i) * logmodel.MillisPerMinute
		for j := 0; j < 6; j++ {
			es = append(es, logmodel.Entry{Time: t, Source: "A"})
			es = append(es, logmodel.Entry{Time: t + 50, Source: "B"})
			filler := srcs[(i+j)%len(srcs)]
			es = append(es, logmodel.Entry{Time: t + 300, Source: filler})
			t += 600
		}
		out = append(out, sessions.Session{User: "u", Entries: es})
	}
	return out
}

func TestMineFindsDependency(t *testing.T) {
	corpus := corpusWithDependency(30)
	res := Mine(corpus, Config{})
	dep := res.DependentPairs()
	if !dep[core.MakePair("A", "B")] {
		tr := res.Types[Bigram{"A", "B"}]
		t.Errorf("A-B not found: %+v", tr)
	}
	// Fillers follow B systematically too (B→filler adjacency), but each
	// individual filler is diluted; the strongly significant pair must be
	// A-B. At minimum, unrelated filler-filler pairs must be absent.
	if dep[core.MakePair("X", "Y")] {
		t.Error("filler pair X-Y flagged")
	}
}

func TestMineRespectsMinJoint(t *testing.T) {
	// A single strong adjacency occurring twice: below MinJoint=3.
	s := sessions.Session{Entries: []logmodel.Entry{
		{Time: 0, Source: "P"}, {Time: 1, Source: "Q"},
		{Time: 100, Source: "P"}, {Time: 101, Source: "Q"},
		{Time: 200, Source: "R"}, {Time: 300, Source: "S"},
	}}
	res := Mine([]sessions.Session{s}, Config{})
	if res.DependentPairs()[core.MakePair("P", "Q")] {
		t.Error("pair with O11=2 passed MinJoint=3")
	}
}

func TestMinePearsonAblation(t *testing.T) {
	corpus := corpusWithDependency(30)
	g2 := Mine(corpus, Config{Measure: MeasureG2})
	x2 := Mine(corpus, Config{Measure: MeasurePearson})
	if !g2.DependentPairs()[core.MakePair("A", "B")] ||
		!x2.DependentPairs()[core.MakePair("A", "B")] {
		t.Error("both measures must find the strong pair")
	}
	// Pearson inflates statistics on skewed tables: its statistic for the
	// same type must be at least G²'s here (systematic attraction).
	tg := g2.Types[Bigram{"A", "B"}]
	tx := x2.Types[Bigram{"A", "B"}]
	if tg.Statistic <= 0 || tx.Statistic <= 0 {
		t.Error("non-positive statistics")
	}
}

func TestMineFisherMeasure(t *testing.T) {
	corpus := corpusWithDependency(30)
	res := Mine(corpus, Config{Measure: MeasureFisher})
	if !res.DependentPairs()[core.MakePair("A", "B")] {
		t.Errorf("Fisher measure missed the strong pair: %+v", res.Types[Bigram{"A", "B"}])
	}
	// Fisher is more conservative than the asymptotic tests on small
	// corpora: it must not flag more pairs than G² at the same alpha.
	g2 := Mine(corpus, Config{Measure: MeasureG2})
	if len(res.DependentPairs()) > len(g2.DependentPairs()) {
		t.Errorf("Fisher pairs %d > G² pairs %d", len(res.DependentPairs()), len(g2.DependentPairs()))
	}
}

func TestMineEmptyCorpus(t *testing.T) {
	res := Mine(nil, Config{})
	if len(res.Types) != 0 || len(res.DependentPairs()) != 0 {
		t.Error("empty corpus should mine nothing")
	}
}

func TestDirectionHints(t *testing.T) {
	corpus := corpusWithDependency(20)
	pairs := core.PairSet{core.MakePair("A", "B"): true}
	hints := DirectionHints(corpus, pairs, logmodel.SecondsToMillis(0.2))
	h := hints[core.MakePair("A", "B")]
	if h.Caller() != "A" {
		t.Errorf("caller = %q (AFirst=%d BFirst=%d)", h.Caller(), h.AFirst, h.BFirst)
	}
	if h.AFirst == 0 {
		t.Error("no runs scored")
	}
}

func TestDirectionHintBalanced(t *testing.T) {
	h := DirectionHint{Pair: core.MakePair("A", "B"), AFirst: 3, BFirst: 3}
	if h.Caller() != "" {
		t.Errorf("balanced hint caller = %q", h.Caller())
	}
	h.BFirst = 5
	if h.Caller() != "B" {
		t.Errorf("caller = %q", h.Caller())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Timeout != logmodel.MillisPerSecond || c.Alpha != 0.05 || c.MinJoint != 3 {
		t.Errorf("defaults = %+v", c)
	}
	// NoTimeout must survive withDefaults.
	c2 := Config{Timeout: NoTimeout}.withDefaults()
	if c2.Timeout != NoTimeout {
		t.Errorf("NoTimeout overwritten: %v", c2.Timeout)
	}
}
