package l2

import (
	"math/rand"
	"testing"

	"logscape/internal/logmodel"
	"logscape/internal/sessions"
)

// delayCorpus builds sessions where A→B adjacencies have a tight latency
// (causal) while C→D adjacencies have uniformly random gaps (concurrent).
func delayCorpus(n int, seed int64) []sessions.Session {
	rng := rand.New(rand.NewSource(seed))
	var out []sessions.Session
	for i := 0; i < n; i++ {
		var es []logmodel.Entry
		t := logmodel.Millis(i) * logmodel.MillisPerMinute
		for j := 0; j < 4; j++ {
			es = append(es, logmodel.Entry{Time: t, Source: "A"})
			es = append(es, logmodel.Entry{Time: t + logmodel.Millis(40+rng.Intn(30)), Source: "B"})
			t += 3000
			es = append(es, logmodel.Entry{Time: t, Source: "C"})
			es = append(es, logmodel.Entry{Time: t + logmodel.Millis(rng.Intn(2000)), Source: "D"})
			t += 5000
		}
		out = append(out, sessions.Session{User: "u", Entries: es})
	}
	return out
}

func TestAnalyzeDelaysCausal(t *testing.T) {
	ss := delayCorpus(30, 1)
	res := AnalyzeDelays(ss, Bigram{"A", "B"}, DelayConfig{})
	if res.Samples < 100 {
		t.Fatalf("samples = %d", res.Samples)
	}
	if !res.Peaked {
		t.Errorf("causal pair not peaked: %+v", res)
	}
	if res.MedianDelay < 0.03 || res.MedianDelay > 0.08 {
		t.Errorf("median delay = %v, want ≈ 0.055 s", res.MedianDelay)
	}
}

func TestAnalyzeDelaysConcurrent(t *testing.T) {
	ss := delayCorpus(30, 2)
	res := AnalyzeDelays(ss, Bigram{"C", "D"}, DelayConfig{})
	if res.Samples < 100 {
		t.Fatalf("samples = %d", res.Samples)
	}
	if res.Peaked {
		t.Errorf("concurrent pair flagged as causal: %+v", res)
	}
}

func TestAnalyzeDelaysInsufficientSamples(t *testing.T) {
	ss := delayCorpus(2, 3)
	res := AnalyzeDelays(ss, Bigram{"A", "B"}, DelayConfig{MinSamples: 1000})
	if res.Peaked {
		t.Error("verdict without enough samples")
	}
}

func TestClassifyPairs(t *testing.T) {
	ss := delayCorpus(30, 4)
	pairs := map[Bigram]bool{
		{First: "A", Second: "B"}: true,
		{First: "C", Second: "D"}: true,
	}
	out := ClassifyPairs(ss, pairs, DelayConfig{})
	if !out[Bigram{"A", "B"}].Peaked {
		t.Error("A→B should be causal")
	}
	if out[Bigram{"C", "D"}].Peaked {
		t.Error("C→D should be concurrent")
	}
}

func TestDelayConfigDefaults(t *testing.T) {
	c := DelayConfig{}.withDefaults()
	if c.Window != 2*logmodel.MillisPerSecond || c.Bins != 20 || c.MinSamples != 30 {
		t.Errorf("defaults = %+v", c)
	}
}
