package core

import (
	"reflect"
	"testing"
)

func TestMakePair(t *testing.T) {
	if p := MakePair("Z", "A"); p.A != "A" || p.B != "Z" {
		t.Errorf("MakePair = %+v", p)
	}
	if MakePair("A", "Z") != MakePair("Z", "A") {
		t.Error("not symmetric")
	}
	if s := MakePair("B", "A").String(); s != "{A, B}" {
		t.Errorf("String = %q", s)
	}
}

func TestAppServicePairString(t *testing.T) {
	p := AppServicePair{App: "A", Group: "S"}
	if p.String() != "A -> S" {
		t.Errorf("String = %q", p.String())
	}
}

func TestSortedPairs(t *testing.T) {
	s := PairSet{
		MakePair("B", "C"): true,
		MakePair("A", "B"): true,
		MakePair("A", "C"): true,
	}
	got := s.SortedPairs()
	want := []Pair{{A: "A", B: "B"}, {A: "A", B: "C"}, {A: "B", B: "C"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortedPairs = %v", got)
	}
}

func TestSortedAppServicePairs(t *testing.T) {
	s := AppServiceSet{
		{App: "B", Group: "X"}: true,
		{App: "A", Group: "Y"}: true,
		{App: "A", Group: "X"}: true,
	}
	got := s.SortedPairs()
	want := []AppServicePair{{App: "A", Group: "X"}, {App: "A", Group: "Y"}, {App: "B", Group: "X"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortedPairs = %v", got)
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 30, FP: 10, FN: 70, TN: 890}
	if p := c.Precision(); p != 0.75 {
		t.Errorf("Precision = %v", p)
	}
	if r := c.Recall(); r != 0.3 {
		t.Errorf("Recall = %v", r)
	}
	if f := c.F1(); f < 0.42 || f > 0.43 {
		t.Errorf("F1 = %v", f)
	}
	if fpr := c.FalsePositiveRate(); fpr < 0.011 || fpr > 0.0112 {
		t.Errorf("FPR = %v", fpr)
	}
	var zero Confusion
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 || zero.FalsePositiveRate() != 0 {
		t.Error("zero confusion metrics should be 0")
	}
}

func TestComparePairs(t *testing.T) {
	truth := PairSet{MakePair("A", "B"): true, MakePair("A", "C"): true}
	predicted := PairSet{MakePair("A", "B"): true, MakePair("B", "C"): true}
	c := ComparePairs(predicted, truth, 10)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 7 {
		t.Errorf("confusion = %+v", c)
	}
	// Universe smaller than counts clamps TN at 0.
	c2 := ComparePairs(predicted, truth, 2)
	if c2.TN != 0 {
		t.Errorf("clamped TN = %d", c2.TN)
	}
}

func TestCompareAppService(t *testing.T) {
	truth := AppServiceSet{{App: "A", Group: "S"}: true}
	predicted := AppServiceSet{{App: "A", Group: "S"}: true, {App: "A", Group: "T"}: true}
	c := CompareAppService(predicted, truth, 100)
	if c.TP != 1 || c.FP != 1 || c.FN != 0 || c.TN != 98 {
		t.Errorf("confusion = %+v", c)
	}
}
