package l3

import (
	"logscape/internal/core"
	"logscape/internal/directory"
	"logscape/internal/logmodel"
	"logscape/internal/obs"
	"logscape/internal/parallel"
)

// Config parameterizes the miner.
type Config struct {
	// Stops are the stop patterns (§3.3). Nil mines without stop patterns
	// (the ablation of §4.8, where inverted false positives rise from 2 to
	// 24).
	Stops []directory.StopPattern
	// MinCitations is the number of citing logs required per dependency
	// (default 1, the paper's rule).
	MinCitations int
	// SelfCitations, when true, keeps citations of groups owned by the
	// citing application itself. The paper's model excludes them (an
	// application does not "depend on" its own entry; such logs are
	// server-side echoes) — but the ablation without stop patterns needs
	// them visible.
	SelfCitations bool
	// Owner maps a group id to the application owning it; used to exclude
	// self-citations. May be nil when SelfCitations is true.
	Owner map[string]string
	// Workers bounds the scanning parallelism: the store's entry range is
	// cut into contiguous shards, each scanned by one worker, and the
	// per-shard citation evidence is merged in time (shard) order. 0
	// selects GOMAXPROCS, 1 forces the exact sequential path. Results are
	// identical for every setting.
	Workers int
	// Metrics, when non-nil, collects per-stage counters and timing
	// histograms (see internal/obs). Collection never changes the mined
	// model, and counter values are identical for every Workers setting.
	Metrics *obs.Registry
}

// DefaultConfig returns the paper's calibrated configuration with every
// threshold field set explicitly — the sanctioned base for call sites that
// only want to tune Workers (see the cfgzero analyzer). L3's only threshold
// is MinCitations; Stops and Owner stay nil because they are corpus-specific
// inputs, not thresholds.
func DefaultConfig() Config {
	return Config{MinCitations: 1}
}

// Evidence is the citation evidence for one mined dependency.
type Evidence struct {
	Pair core.AppServicePair
	// Count is the number of citing log entries.
	Count int
	// First and Last are the timestamps of the first and last citation.
	First, Last logmodel.Millis
	// Stopped is the number of additional citations that were suppressed
	// by stop patterns (diagnostic; suppressed citations do not count
	// toward Count).
	Stopped int
}

// Result is the mined model with evidence.
type Result struct {
	// Evidence holds the per-dependency citation evidence, keyed by pair.
	// Pairs whose Count is below MinCitations are retained for diagnostics
	// but excluded from Dependencies.
	Evidence map[core.AppServicePair]*Evidence
	// Config is the effective configuration.
	Config Config
}

// Dependencies returns the mined set of application → service
// dependencies.
func (r *Result) Dependencies() core.AppServiceSet {
	min := r.Config.MinCitations
	if min == 0 {
		min = 1
	}
	out := make(core.AppServiceSet)
	for p, ev := range r.Evidence {
		if ev.Count >= min {
			out[p] = true
		}
	}
	return out
}

// Miner is a reusable L3 miner for one directory and configuration; the
// citation scanner (an Aho–Corasick automaton over all group ids and URL
// fragments) is built once.
type Miner struct {
	cfg     Config
	scanner *directory.CitationScanner
}

// NewMiner builds a miner for the directory.
func NewMiner(dir *directory.Directory, cfg Config) *Miner {
	if cfg.MinCitations == 0 {
		cfg.MinCitations = 1
	}
	return &Miner{cfg: cfg, scanner: directory.NewCitationScanner(dir, cfg.Stops)}
}

// Mine scans all entries of the store (restricted to r when r is non-zero)
// and returns the mined model. The entry range is sharded across
// Config.Workers workers (the citation automaton is a read-only DFA, shared
// by all of them) and the per-shard evidence is merged in time order, so
// the result is identical for every worker count.
func (m *Miner) Mine(store *logmodel.Store, r logmodel.TimeRange) *Result {
	entries := store.Entries()
	if r != (logmodel.TimeRange{}) {
		entries = store.Range(r)
	}
	defer m.cfg.Metrics.Timer("l3.mine_ns")()
	res := &Result{Evidence: make(map[core.AppServicePair]*Evidence), Config: m.cfg}
	parts := parallel.MapShards(parallel.Workers(m.cfg.Workers), len(entries),
		obs.MeterShards(m.cfg.Metrics, "l3.scan_shards", func(lo, hi int) map[core.AppServicePair]*Evidence {
			return m.Scan(entries[lo:hi])
		}))
	if len(parts) == 1 {
		res.Evidence = parts[0]
		return res
	}
	for _, part := range parts {
		MergeEvidence(res.Evidence, part)
	}
	return res
}

// Config returns the miner's effective configuration.
func (m *Miner) Config() Config { return m.cfg }

// Scan runs the sequential citation scan over one contiguous, time-ordered
// entry shard — the incremental unit of L3 state: per-bucket evidence maps
// folded in time order with MergeEvidence reproduce a sequential scan of
// the concatenated entries exactly.
func (m *Miner) Scan(entries []logmodel.Entry) map[core.AppServicePair]*Evidence {
	// Scanned/citation counts are sums over entries, so sharding the entry
	// range cannot change them — they stay in the worker-count-independent
	// counter document.
	scanned := m.cfg.Metrics.Counter("l3.entries_scanned")
	cited := m.cfg.Metrics.Counter("l3.citations")
	stoppedC := m.cfg.Metrics.Counter("l3.stopped_citations")
	scanned.Add(int64(len(entries)))
	out := make(map[core.AppServicePair]*Evidence)
	for i := range entries {
		e := &entries[i]
		cits := m.scanner.Citations(e.Message)
		if cits == nil {
			continue
		}
		stopped := m.scanner.Stopped(e.Source, e.Message)
		for _, id := range cits {
			if !m.cfg.SelfCitations && m.cfg.Owner != nil && m.cfg.Owner[id] == e.Source {
				continue
			}
			p := core.AppServicePair{App: e.Source, Group: id}
			ev := out[p]
			if ev == nil {
				ev = &Evidence{Pair: p, First: e.Time, Last: e.Time}
				out[p] = ev
			}
			if stopped {
				ev.Stopped++
				stoppedC.Inc()
				continue
			}
			if ev.Count == 0 {
				ev.First = e.Time
			}
			ev.Count++
			cited.Inc()
			ev.Last = e.Time
		}
	}
	return out
}

// ScanTimes runs the citation scan over one contiguous, time-ordered entry
// shard and returns the timestamps of every counted citation per
// dependency, in entry order. Counting rules match Scan exactly (stopped
// and self-citations are excluded), so len(times) == Evidence.Count for
// each pair. It is a second pass used by the drift detector's delay
// channel; it records no metrics.
func (m *Miner) ScanTimes(entries []logmodel.Entry) map[core.AppServicePair][]logmodel.Millis {
	out := make(map[core.AppServicePair][]logmodel.Millis)
	for i := range entries {
		e := &entries[i]
		cits := m.scanner.Citations(e.Message)
		if cits == nil {
			continue
		}
		if m.scanner.Stopped(e.Source, e.Message) {
			continue
		}
		for _, id := range cits {
			if !m.cfg.SelfCitations && m.cfg.Owner != nil && m.cfg.Owner[id] == e.Source {
				continue
			}
			p := core.AppServicePair{App: e.Source, Group: id}
			out[p] = append(out[p], e.Time)
		}
	}
	return out
}

// MergeEvidence folds the evidence of a later shard into dst. Invariant of
// Scan: when Count > 0, First/Last span the counted citations; when
// Count == 0 (only stopped citations), First == Last == the first citation.
// Folding shards in time order preserves exactly that invariant, so the
// merged evidence matches a sequential scan field for field. src is never
// mutated and no *Evidence of src is retained in dst (inserts copy), so the
// streaming miner can fold the same per-bucket maps on every Snapshot.
func MergeEvidence(dst, src map[core.AppServicePair]*Evidence) {
	for p, sv := range src {
		dv := dst[p]
		if dv == nil {
			cp := *sv
			dst[p] = &cp
			continue
		}
		if sv.Count > 0 {
			if dv.Count == 0 {
				dv.First = sv.First
			}
			dv.Last = sv.Last
		}
		dv.Count += sv.Count
		dv.Stopped += sv.Stopped
	}
}

// OwnerMap builds the group → owner map for Config.Owner from parallel
// slices of group ids and owner names.
func OwnerMap(ids, owners []string) map[string]string {
	m := make(map[string]string, len(ids))
	for i := range ids {
		m[ids[i]] = owners[i]
	}
	return m
}
