package l3

import (
	"testing"

	"logscape/internal/core"
	"logscape/internal/directory"
	"logscape/internal/hospital"
	"logscape/internal/logmodel"
)

func testDir() *directory.Directory {
	return &directory.Directory{
		Version: 1,
		Groups: []directory.Group{
			{ID: "DPINOTIFICATION", RootURL: "http://notif.hug.local:9999/myurl",
				Services: []directory.Service{{Name: "notify"}}},
			{ID: "UPSRV", RootURL: "http://upsrv.hug.local/up",
				Services: []directory.Service{{Name: "lookup"}}},
			{ID: "UPSRV2", RootURL: "http://upsrv.hug.local/up2",
				Services: []directory.Service{{Name: "lookup"}}},
		},
	}
}

func storeOf(entries ...logmodel.Entry) *logmodel.Store {
	s := logmodel.NewStore(len(entries))
	s.AppendAll(entries)
	s.Sort()
	return s
}

func e(t logmodel.Millis, src, msg string) logmodel.Entry {
	return logmodel.Entry{Time: t, Source: src, Message: msg, Severity: logmodel.SevInfo}
}

func TestMineBasicCitation(t *testing.T) {
	store := storeOf(
		e(10, "DPIFormidoc", "Invoke externalService [fct [notify] server [notif.hug.local:9999/myurl]]"),
		e(20, "DPIFormidoc", "(DPINOTIFICATION) notify( $myparams )"),
		e(30, "OtherApp", "nothing cited here"),
	)
	m := NewMiner(testDir(), Config{})
	res := m.Mine(store, logmodel.TimeRange{})
	deps := res.Dependencies()
	want := core.AppServicePair{App: "DPIFormidoc", Group: "DPINOTIFICATION"}
	if !deps[want] {
		t.Fatalf("deps = %v", deps)
	}
	if len(deps) != 1 {
		t.Errorf("deps = %v", deps)
	}
	ev := res.Evidence[want]
	if ev.Count != 2 || ev.First != 10 || ev.Last != 20 {
		t.Errorf("evidence = %+v", ev)
	}
}

func TestMineStopPatterns(t *testing.T) {
	stops := []directory.StopPattern{{Contains: "serving request "}}
	store := storeOf(
		e(10, "NotifServer", "serving request notify for group DPINOTIFICATION"),
		e(20, "ClientApp", "(DPINOTIFICATION) notify( $x )"),
	)
	// Without stop patterns: both the server's self-citation (inverted)
	// and the client citation appear.
	m := NewMiner(testDir(), Config{})
	deps := m.Mine(store, logmodel.TimeRange{}).Dependencies()
	if len(deps) != 2 {
		t.Fatalf("without stops: deps = %v", deps)
	}
	// With the stop pattern the server log is suppressed.
	m2 := NewMiner(testDir(), Config{Stops: stops})
	res := m2.Mine(store, logmodel.TimeRange{})
	deps2 := res.Dependencies()
	if len(deps2) != 1 || !deps2[core.AppServicePair{App: "ClientApp", Group: "DPINOTIFICATION"}] {
		t.Fatalf("with stops: deps = %v", deps2)
	}
	// The suppressed citation is recorded as diagnostics.
	ev := res.Evidence[core.AppServicePair{App: "NotifServer", Group: "DPINOTIFICATION"}]
	if ev == nil || ev.Stopped != 1 || ev.Count != 0 {
		t.Errorf("stopped evidence = %+v", ev)
	}
}

func TestMineWrongNameScenario(t *testing.T) {
	// The §4.8 wrong-name case: the caller cites UPSRV while depending on
	// UPSRV2 — L3 must report UPSRV (the false positive + false negative
	// the paper analyzes), not UPSRV2.
	store := storeOf(
		e(10, "LegacyApp", "calling UPSRV.lookup for case 123456"),
	)
	m := NewMiner(testDir(), Config{})
	deps := m.Mine(store, logmodel.TimeRange{}).Dependencies()
	if !deps[core.AppServicePair{App: "LegacyApp", Group: "UPSRV"}] {
		t.Error("UPSRV citation missed")
	}
	if deps[core.AppServicePair{App: "LegacyApp", Group: "UPSRV2"}] {
		t.Error("UPSRV2 must not be inferred from a UPSRV citation")
	}
}

func TestMineMinCitations(t *testing.T) {
	store := storeOf(
		e(10, "App", "(UPSRV) lookup( $x )"),
		e(20, "App", "(UPSRV) lookup( $y )"),
		e(30, "App2", "(UPSRV2) lookup( $z )"),
	)
	m := NewMiner(testDir(), Config{MinCitations: 2})
	deps := m.Mine(store, logmodel.TimeRange{}).Dependencies()
	if !deps[core.AppServicePair{App: "App", Group: "UPSRV"}] {
		t.Error("pair with 2 citations missing")
	}
	if deps[core.AppServicePair{App: "App2", Group: "UPSRV2"}] {
		t.Error("pair with 1 citation kept despite MinCitations=2")
	}
}

func TestMineOwnerExclusion(t *testing.T) {
	store := storeOf(
		e(10, "UpServer", "UPSRV lookup t=12ms rc=0"), // self-citation, unstoppable style
		e(20, "Client", "(UPSRV) lookup( $x )"),
	)
	owner := map[string]string{"UPSRV": "UpServer", "UPSRV2": "UpServer"}
	m := NewMiner(testDir(), Config{Owner: owner})
	deps := m.Mine(store, logmodel.TimeRange{}).Dependencies()
	if deps[core.AppServicePair{App: "UpServer", Group: "UPSRV"}] {
		t.Error("self-citation kept despite owner exclusion")
	}
	if !deps[core.AppServicePair{App: "Client", Group: "UPSRV"}] {
		t.Error("client citation lost")
	}
	// With SelfCitations the exclusion is disabled.
	m2 := NewMiner(testDir(), Config{Owner: owner, SelfCitations: true})
	deps2 := m2.Mine(store, logmodel.TimeRange{}).Dependencies()
	if !deps2[core.AppServicePair{App: "UpServer", Group: "UPSRV"}] {
		t.Error("SelfCitations did not keep the self-citation")
	}
}

func TestMineTimeRange(t *testing.T) {
	store := storeOf(
		e(10, "A", "(UPSRV) lookup()"),
		e(5000, "B", "(UPSRV2) lookup()"),
	)
	m := NewMiner(testDir(), Config{})
	deps := m.Mine(store, logmodel.TimeRange{Start: 0, End: 1000}).Dependencies()
	if len(deps) != 1 || !deps[core.AppServicePair{App: "A", Group: "UPSRV"}] {
		t.Errorf("range-restricted deps = %v", deps)
	}
}

func TestOwnerMap(t *testing.T) {
	m := OwnerMap([]string{"G1", "G2"}, []string{"A", "B"})
	if m["G1"] != "A" || m["G2"] != "B" {
		t.Errorf("OwnerMap = %v", m)
	}
}

// TestMineOnSimulatedDay is the integration checkpoint: on a full-scale
// simulated weekday, L3 must recover the vast majority of realized
// dependencies with high precision (figure 8: ratio of true positives
// ≈ 0.93–0.96 with stop patterns).
func TestMineOnSimulatedDay(t *testing.T) {
	topo := hospital.GenerateTopology(hospital.DefaultTopologyConfig(), 41)
	sim := hospital.NewSimulator(hospital.DefaultConfig(41), topo)
	store, _ := sim.GenerateDay(0)
	m := NewMiner(topo.Directory(), Config{Stops: hospital.CanonicalStopPatterns()})
	deps := m.Mine(store, logmodel.TimeRange{}).Dependencies()
	truth := topo.TrueAppServicePairs()
	tp, fp := 0, 0
	for p := range deps {
		if truth[core.AppServicePair{App: p.App, Group: p.Group}] {
			tp++
		} else {
			fp++
		}
	}
	if tp < 100 {
		t.Errorf("true positives = %d, want > 100 on a weekday", tp)
	}
	ratio := float64(tp) / float64(tp+fp)
	if ratio < 0.85 {
		t.Errorf("precision = %.3f (tp=%d fp=%d), want ≥ 0.85", ratio, tp, fp)
	}
}
