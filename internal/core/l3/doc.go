// Package l3 implements the paper's approach L3 (§3.3): discovering
// application → service dependencies by finding citations of
// service-directory entries in the free text of log messages.
//
// Although every developer logs remote invocations in their own format, the
// cited element — the directory group id or its root URL — is almost always
// present, "as this kind of information is crucial for debugging and
// tracing purposes". The decision rule is deliberately simple: if, and only
// if, there are logs from application A referring to service group S, A
// depends on S. Stop patterns suppress server-side logs that would
// otherwise invert the direction (the callee logging the same call).
//
// See DESIGN.md §5 (Key design decisions).
package l3
