// Package core defines the dependency-model vocabulary shared by the three
// mining techniques of the paper and their evaluation: application pairs,
// application→service dependencies, and mined models with per-decision
// diagnostics.
//
// The techniques themselves live in the subpackages:
//
//   - core/l1 — logs as an activity measure (§3.1): a slotted, robust
//     median-distance test between the log point processes of two
//     applications.
//   - core/l2 — co-occurrence statistics over user sessions (§3.2): bigram
//     contingency tables tested with Dunning's log-likelihood ratio.
//   - core/l3 — free-text analysis against the service directory (§3.3):
//     citation mining with stop patterns.
//
// See DESIGN.md §3 (System inventory).
package core
