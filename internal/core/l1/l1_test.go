package l1

import (
	"math/rand"
	"testing"

	"logscape/internal/core"
	"logscape/internal/logmodel"
	"logscape/internal/pointproc"
)

// makeDependentPair generates two log sequences where B's logs trail A's by
// a small latency — the signature of a synchronous interaction.
func makeDependentPair(rng *rand.Rand, slot logmodel.TimeRange, rate float64) (a, b []logmodel.Millis) {
	a = pointproc.Homogeneous(rng, slot, rate)
	b = make([]logmodel.Millis, 0, len(a))
	for _, t := range a {
		b = append(b, t+logmodel.Millis(10+rng.Intn(50)))
	}
	return a, b
}

func hourSlot() logmodel.TimeRange {
	return logmodel.TimeRange{Start: 0, End: logmodel.MillisPerHour}
}

func TestDirectionTestDependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	slot := hourSlot()
	a, b := makeDependentPair(rng, slot, 0.2) // ~720 logs/h
	res := DirectionTest(rng, a, b, slot, Config{})
	if !res.Valid {
		t.Fatal("test invalid")
	}
	if !res.Positive {
		t.Errorf("dependent pair not positive: CI_b = %+v, CI_r = %+v",
			res.CandidateCI, res.RandomCI)
	}
	if res.Farther {
		t.Error("dependent pair reported farther")
	}
	if len(res.RandomSample) == 0 || len(res.CandidateSample) == 0 {
		t.Error("samples empty")
	}
}

func TestDirectionTestIndependent(t *testing.T) {
	slot := hourSlot()
	positives := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		a := pointproc.Homogeneous(rng, slot, 0.2)
		b := pointproc.Homogeneous(rng, slot, 0.2)
		res := DirectionTest(rng, a, b, slot, Config{})
		if res.Valid && res.Positive {
			positives++
		}
	}
	// Independent Poisson processes: positives should be rare (the test is
	// conservative: both CIs estimate the same median).
	if positives > trials/5 {
		t.Errorf("independent pairs positive in %d/%d trials", positives, trials)
	}
}

func TestSlotTestBothDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	slot := hourSlot()
	a, b := makeDependentPair(rng, slot, 0.2)
	if !SlotTest(rng, a, b, slot, Config{}) {
		t.Error("dependent pair failed the slot test")
	}
	// One-sided sequence vs an unrelated one.
	c := pointproc.Homogeneous(rng, slot, 0.2)
	pos := 0
	for i := 0; i < 20; i++ {
		if SlotTest(rng, a, c, slot, Config{}) {
			pos++
		}
	}
	if pos > 4 {
		t.Errorf("independent slot test positive %d/20", pos)
	}
}

func TestDirectionTestTooFewPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	slot := hourSlot()
	a := []logmodel.Millis{100}
	b := []logmodel.Millis{200, 300}
	res := DirectionTest(rng, a, b, slot, Config{})
	if res.Valid {
		t.Error("test with 2 candidate points should be invalid (median CI infeasible)")
	}
	if SlotTest(rng, a, b, slot, Config{}) {
		t.Error("slot test must be negative when invalid")
	}
}

func TestDistNextVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	slot := hourSlot()
	a, b := makeDependentPair(rng, slot, 0.2)
	// With DistNext, distances of B to A measure the time to A's *next*
	// log; B trails A so these are large (~gap), while random points are
	// uniformly placed — B should NOT look closer in this direction, but
	// A to B should.
	res := DirectionTest(rng, b, a, slot, Config{Distance: DistNext})
	if !res.Valid {
		t.Fatal("invalid")
	}
	if !res.Positive {
		t.Error("A's logs should precede B's: distance to next B log is small")
	}
}

func TestPairResultDerived(t *testing.T) {
	pr := PairResult{Slots: 24, Support: 12, Positive: 9}
	if pr.Ratio() != 0.75 {
		t.Errorf("Ratio = %v", pr.Ratio())
	}
	if pr.SupportFraction() != 0.5 {
		t.Errorf("SupportFraction = %v", pr.SupportFraction())
	}
	var zero PairResult
	if zero.Ratio() != 0 || zero.SupportFraction() != 0 {
		t.Error("zero result derived values")
	}
}

// buildStore creates a store from per-source timestamp sequences.
func buildStore(seqs map[string][]logmodel.Millis) *logmodel.Store {
	s := logmodel.NewStore(0)
	for src, ts := range seqs {
		for _, t := range ts {
			s.Append(logmodel.Entry{Time: t, Source: src, Severity: logmodel.SevInfo})
		}
	}
	s.Sort()
	return s
}

func TestMineEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	day := logmodel.TimeRange{Start: 0, End: 6 * logmodel.MillisPerHour}
	// A and B interact; C is independent; D is too quiet to support.
	a := pointproc.Homogeneous(rng, day, 0.1)
	b := make([]logmodel.Millis, 0, len(a))
	for _, ts := range a {
		b = append(b, ts+logmodel.Millis(10+rng.Intn(40)))
	}
	c := pointproc.Homogeneous(rng, day, 0.1)
	d := pointproc.Homogeneous(rng, day, 0.002)
	store := buildStore(map[string][]logmodel.Millis{"A": a, "B": b, "C": c, "D": d})

	cfg := Config{MinLogs: 50, Seed: 7}
	res := Mine(store, day, nil, cfg)
	dep := res.DependentPairs()
	if !dep[core.MakePair("A", "B")] {
		ab := res.Pairs[core.MakePair("A", "B")]
		t.Errorf("A-B not dependent: %+v (ratio %.2f, support %.2f)",
			ab, ab.Ratio(), ab.SupportFraction())
	}
	if dep[core.MakePair("A", "C")] || dep[core.MakePair("B", "C")] {
		t.Error("independent pair flagged")
	}
	// D never reaches MinLogs: support must be 0 for its pairs.
	for p, pr := range res.Pairs {
		if (p.A == "D" || p.B == "D") && pr.Support != 0 {
			t.Errorf("pair %v has support %d", p, pr.Support)
		}
	}
	// All pairs initialized.
	if len(res.Pairs) != 6 {
		t.Errorf("pairs = %d, want C(4,2)=6", len(res.Pairs))
	}
	for _, pr := range res.Pairs {
		if pr.Slots != 6 {
			t.Errorf("slots = %d", pr.Slots)
		}
	}
}

func TestMineDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	day := logmodel.TimeRange{Start: 0, End: 2 * logmodel.MillisPerHour}
	a := pointproc.Homogeneous(rng, day, 0.1)
	b := pointproc.Homogeneous(rng, day, 0.1)
	store := buildStore(map[string][]logmodel.Millis{"A": a, "B": b})
	cfg := Config{MinLogs: 50, Seed: 123}
	r1 := Mine(store, day, nil, cfg)
	r2 := Mine(store, day, nil, cfg)
	p := core.MakePair("A", "B")
	if r1.Pairs[p] != r2.Pairs[p] {
		t.Error("mining not deterministic for a fixed seed")
	}
}

func TestMineExplicitSources(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	day := logmodel.TimeRange{Start: 0, End: logmodel.MillisPerHour}
	a := pointproc.Homogeneous(rng, day, 0.1)
	store := buildStore(map[string][]logmodel.Millis{"A": a, "B": a, "C": a})
	res := Mine(store, day, []string{"A", "B"}, Config{MinLogs: 10})
	if len(res.Pairs) != 1 {
		t.Errorf("pairs = %d, want 1 (restricted sources)", len(res.Pairs))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SlotWidth != logmodel.MillisPerHour || c.MinLogs != 100 ||
		c.ThPr != 0.6 || c.ThS != 0.3 || c.Level != 0.95 || c.SampleSize != 400 {
		t.Errorf("defaults = %+v", c)
	}
}
