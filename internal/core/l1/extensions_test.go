package l1

import (
	"math/rand"
	"testing"

	"logscape/internal/core"
	"logscape/internal/logmodel"
	"logscape/internal/pointproc"
)

func TestStatMeanVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	slot := hourSlot()
	a, b := makeDependentPair(rng, slot, 0.2)
	res := DirectionTest(rng, a, b, slot, Config{Statistic: StatMean})
	if !res.Valid || !res.Positive {
		t.Errorf("mean-statistic test on dependent pair: %+v", res)
	}
	// Independent pairs stay negative under the mean variant too.
	pos := 0
	for i := 0; i < 20; i++ {
		c := pointproc.Homogeneous(rng, slot, 0.2)
		d := pointproc.Homogeneous(rng, slot, 0.2)
		if r := DirectionTest(rng, c, d, slot, Config{Statistic: StatMean}); r.Valid && r.Positive {
			pos++
		}
	}
	if pos > 5 {
		t.Errorf("independent positives = %d/20 under mean statistic", pos)
	}
}

// TestMeanStatisticOutlierSensitivity shows why the paper prefers the
// median: a few extreme distances (e.g. a burst gap) destroy the mean
// test's separation but not the median test's.
func TestMeanStatisticOutlierSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	slot := hourSlot()
	a, b := makeDependentPair(rng, slot, 0.05)
	// Contaminate B with a cluster of points far from any A log: a long
	// quiet stretch at the end of the slot.
	far := slot.End - 10
	for i := 0; i < len(b)/6; i++ {
		b = append(b, far-logmodel.Millis(i))
	}
	sortMillis(b)
	cfgMedian := Config{Statistic: StatMedian, Seed: 1}
	cfgMean := Config{Statistic: StatMean, Seed: 1}
	medianPos, meanPos := 0, 0
	for i := 0; i < 10; i++ {
		if d := DirectionTest(rng, a, b, slot, cfgMedian); d.Valid && d.Positive {
			medianPos++
		}
		if d := DirectionTest(rng, a, b, slot, cfgMean); d.Valid && d.Positive {
			meanPos++
		}
	}
	if medianPos < meanPos {
		t.Errorf("median positives %d < mean positives %d under contamination", medianPos, meanPos)
	}
	if medianPos < 7 {
		t.Errorf("median test should survive contamination: %d/10", medianPos)
	}
}

func sortMillis(xs []logmodel.Millis) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestRefTotalActivity: with a strong diurnal trend, two unrelated
// applications both following the trend fool the uniform reference but not
// the total-activity reference.
func TestRefTotalActivity(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	day := logmodel.TimeRange{Start: 0, End: 4 * logmodel.MillisPerHour}
	// Intensity concentrated in the first hour: everything is busy then.
	intensity := func(ts logmodel.Millis) float64 {
		if ts < logmodel.MillisPerHour {
			return 0.6
		}
		return 0.01
	}
	a := pointproc.NonHomogeneous(rng, day, intensity, 0.6)
	b := pointproc.NonHomogeneous(rng, day, intensity, 0.6)
	total := pointproc.MergeSorted(a, b)
	// Extra background following the same trend.
	bg := pointproc.NonHomogeneous(rng, day, intensity, 0.6)
	total = pointproc.MergeSorted(total, bg)

	uniformPos, activityPos := 0, 0
	const trials = 12
	for i := 0; i < trials; i++ {
		if DirectionTest(rng, a, b, day, Config{}).Positive {
			uniformPos++
		}
		d := DirectionTestRef(rng, a, b, total, day, Config{Reference: RefTotalActivity})
		if d.Positive {
			activityPos++
		}
	}
	// The uniform reference mistakes the shared trend for dependence; the
	// total-activity reference absorbs it.
	if uniformPos < trials/2 {
		t.Errorf("uniform reference positives = %d/%d; trend should fool it", uniformPos, trials)
	}
	if activityPos >= uniformPos {
		t.Errorf("total-activity reference (%d) should beat uniform (%d)", activityPos, uniformPos)
	}
}

func TestResampleJitteredBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	slot := logmodel.TimeRange{Start: 1000, End: 5000}
	total := []logmodel.Millis{1000, 1100, 4900, 4999}
	pts := resampleJittered(rng, total, slot, 500, 500)
	if len(pts) != 500 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if !slot.Contains(p) {
			t.Fatalf("point %d outside slot", p)
		}
	}
}

func TestEqualCountSlots(t *testing.T) {
	store := logmodel.NewStore(0)
	// 300 entries in the first hour, 30 in the remaining 23 hours.
	r := logmodel.TimeRange{Start: 0, End: 24 * logmodel.MillisPerHour}
	for i := 0; i < 300; i++ {
		store.Append(logmodel.Entry{Time: logmodel.Millis(i) * 12000, Source: "A"})
	}
	for i := 0; i < 30; i++ {
		store.Append(logmodel.Entry{
			Time: logmodel.MillisPerHour + logmodel.Millis(i)*46*logmodel.MillisPerMinute, Source: "B"})
	}
	store.Sort()
	slots := EqualCountSlots(store, r, 10)
	if len(slots) == 0 || len(slots) > 10 {
		t.Fatalf("slots = %d", len(slots))
	}
	// Coverage: contiguous from r.Start to r.End.
	if slots[0].Start != r.Start || slots[len(slots)-1].End != r.End {
		t.Errorf("slots do not cover the range: %v", slots)
	}
	for i := 1; i < len(slots); i++ {
		if slots[i].Start != slots[i-1].End {
			t.Fatalf("slots not contiguous at %d", i)
		}
	}
	// Adaptivity: the busy first hour must be split into several slots.
	busy := 0
	for _, s := range slots {
		if s.End <= logmodel.MillisPerHour {
			busy++
		}
	}
	if busy < 5 {
		t.Errorf("busy hour got %d slots, want most of them", busy)
	}
	if got := EqualCountSlots(store, r, 0); got != nil {
		t.Error("n=0 should be nil")
	}
	empty := logmodel.NewStore(0)
	empty.Sort()
	if got := EqualCountSlots(empty, r, 5); len(got) != 1 || got[0] != r {
		t.Errorf("empty store slots = %v", got)
	}
}

func TestMineSlotsEqualCount(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	day := logmodel.TimeRange{Start: 0, End: 6 * logmodel.MillisPerHour}
	a := pointproc.Homogeneous(rng, day, 0.1)
	b := make([]logmodel.Millis, 0, len(a))
	for _, ts := range a {
		b = append(b, ts+logmodel.Millis(10+rng.Intn(40)))
	}
	store := buildStore(map[string][]logmodel.Millis{"A": a, "B": b})
	slots := EqualCountSlots(store, day, 6)
	res := MineSlots(store, slots, nil, Config{MinLogs: 50, Seed: 39})
	if !res.DependentPairs()[core.MakePair("A", "B")] {
		t.Errorf("A-B not found with equal-count slots: %+v", res.Pairs[core.MakePair("A", "B")])
	}
}

// TestMineParallelDeterminism: the parallel slot scheduler must not affect
// results — two runs (and a GOMAXPROCS=1-equivalent run via MineSlots with
// one slot at a time) agree exactly.
func TestMineParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	day := logmodel.TimeRange{Start: 0, End: 8 * logmodel.MillisPerHour}
	seqs := map[string][]logmodel.Millis{}
	for _, src := range []string{"A", "B", "C", "D", "E"} {
		seqs[src] = pointproc.Homogeneous(rng, day, 0.05)
	}
	store := buildStore(seqs)
	cfg := Config{MinLogs: 30, Seed: 77}
	r1 := Mine(store, day, nil, cfg)
	r2 := Mine(store, day, nil, cfg)
	for p, pr1 := range r1.Pairs {
		if pr2 := r2.Pairs[p]; pr1 != pr2 {
			t.Fatalf("pair %v differs: %+v vs %+v", p, pr1, pr2)
		}
	}
	// Sequential per-slot mining matches the parallel run slot by slot.
	slots := day.Split(cfg.withDefaults().SlotWidth)
	totalPos := map[core.Pair]int{}
	for _, slot := range slots {
		rs := MineSlots(store, []logmodel.TimeRange{slot}, nil, cfg)
		for p, pr := range rs.Pairs {
			totalPos[p] += pr.Positive
		}
	}
	for p, pr := range r1.Pairs {
		if totalPos[p] != pr.Positive {
			t.Fatalf("pair %v: sequential positives %d vs parallel %d", p, totalPos[p], pr.Positive)
		}
	}
}

func TestPairSeedDistinct(t *testing.T) {
	p1 := core.MakePair("A", "B")
	p2 := core.MakePair("A", "C")
	if pairSeed(1, 0, p1) == pairSeed(1, 0, p2) {
		t.Error("different pairs share a seed")
	}
	if pairSeed(1, 0, p1) == pairSeed(1, 1, p1) {
		t.Error("different slots share a seed")
	}
	if pairSeed(1, 0, p1) == pairSeed(2, 0, p1) {
		t.Error("different base seeds collide")
	}
	if pairSeed(1, 0, p1) != pairSeed(1, 0, p1) {
		t.Error("seed not deterministic")
	}
}
