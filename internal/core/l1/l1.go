package l1

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"

	"logscape/internal/core"
	"logscape/internal/logmodel"
	"logscape/internal/obs"
	"logscape/internal/parallel"
	"logscape/internal/pointproc"
	"logscape/internal/stats"
)

// DistanceKind selects the distance definition used by the slot test.
type DistanceKind int

const (
	// DistNearest is the paper's distance: to the nearest arrival
	// (equation 1).
	DistNearest DistanceKind = iota
	// DistNext is Li & Ma's distance: to the next arrival.
	DistNext
)

// StatisticKind selects the location statistic the slot test compares.
type StatisticKind int

const (
	// StatMedian is the paper's choice: a robust order-statistics interval
	// for the median.
	StatMedian StatisticKind = iota
	// StatMean is Li & Ma's original choice: a Student-t interval for the
	// mean (sensitive to the heavy-tailed distance distributions of real
	// log streams; kept for the DESIGN.md §5 ablation).
	StatMean
)

// ReferenceKind selects the null model the candidate sample is compared
// against.
type ReferenceKind int

const (
	// RefUniform draws the random points uniformly over the slot — the
	// paper's homogeneous reference.
	RefUniform ReferenceKind = iota
	// RefTotalActivity draws the random points proportionally to the
	// overall log intensity (jittered resampling of all log timestamps in
	// the slot) — the paper's §5 suggestion for handling non-stationarity:
	// "instead of comparing the distance to B of logs in A with a
	// homogenous process, we could use a non-homogenous process whose
	// intensity is proportional to the total number of logs".
	RefTotalActivity
)

// Config parameterizes the miner. The zero value is replaced by the paper's
// §4.5 settings.
type Config struct {
	// SlotWidth is the width of the local test slots (default one hour,
	// giving n = 24 slots per day).
	SlotWidth logmodel.Millis
	// MinLogs is the minimum number of logs each application must have in
	// a slot for the slot to count (default 100; the paper's minlogs).
	MinLogs int
	// ThPr is the threshold on the ratio of positive slots (default 0.6).
	ThPr float64
	// ThS is the threshold on the support fraction s/n (default 0.3).
	ThS float64
	// Level is the confidence level of the per-slot median intervals
	// (default 0.95, as in §3.1).
	Level float64
	// SampleSize bounds both the random sample S_r and the subsample of B
	// (default 100 points per slot and direction).
	SampleSize int
	// Distance selects the distance definition (default DistNearest).
	Distance DistanceKind
	// TwoSided, when true, also accepts slots where B is significantly
	// *farther* from A than random (Li & Ma's two-sided test; ablation).
	TwoSided bool
	// Statistic selects the location statistic (default StatMedian).
	Statistic StatisticKind
	// Reference selects the null model (default RefUniform).
	Reference ReferenceKind
	// ReferenceJitter is the jitter applied to resampled timestamps when
	// Reference is RefTotalActivity (default 5 s).
	ReferenceJitter logmodel.Millis
	// Seed drives the random sampling.
	Seed int64
	// Workers bounds the slot-level mining parallelism: 0 selects
	// GOMAXPROCS, 1 forces the exact sequential path (for A/B testing).
	// Results are bit-identical for every setting.
	Workers int
	// Metrics, when non-nil, collects per-stage counters and timing
	// histograms (see internal/obs). Collection never changes the mined
	// model, and counter values are identical for every Workers setting.
	Metrics *obs.Registry
}

// DefaultConfig returns the paper's calibrated configuration with every
// threshold field set explicitly — the sanctioned base for call sites that
// only want to tune Workers (see the cfgzero analyzer).
func DefaultConfig() Config {
	return Config{}.withDefaults()
}

// withDefaults fills zero fields with the paper's settings.
func (c Config) withDefaults() Config {
	if c.SlotWidth == 0 {
		c.SlotWidth = logmodel.MillisPerHour
	}
	if c.MinLogs == 0 {
		c.MinLogs = 100
	}
	if c.ThPr == 0 {
		c.ThPr = 0.6
	}
	if c.ThS == 0 {
		c.ThS = 0.3
	}
	if c.Level == 0 {
		c.Level = 0.95
	}
	if c.ReferenceJitter == 0 {
		c.ReferenceJitter = 5 * logmodel.MillisPerSecond
	}
	if c.SampleSize == 0 {
		c.SampleSize = 400
	}
	return c
}

// DirectionResult captures one direction of the per-slot test, with the
// data behind figure 2 of the paper (two boxplots with median confidence
// intervals).
type DirectionResult struct {
	// RandomSample and CandidateSample are the sorted distance samples S_r
	// and S_b, in seconds.
	RandomSample, CandidateSample []float64
	// RandomCI and CandidateCI are the median confidence intervals.
	RandomCI, CandidateCI stats.CI
	// Positive reports whether CandidateCI lies entirely below RandomCI.
	Positive bool
	// Farther reports whether CandidateCI lies entirely above RandomCI
	// (used by the two-sided variant).
	Farther bool
	// Valid reports whether both intervals could be computed.
	Valid bool
}

// DirectionTest performs one direction of the slot test: are the points of
// b closer to the sequence a than random points of the slot are? Both
// sequences must be sorted. The uniform reference is used; see
// DirectionTestRef for the non-homogeneous variant.
func DirectionTest(rng *rand.Rand, a, b []logmodel.Millis, slot logmodel.TimeRange, cfg Config) DirectionResult {
	return DirectionTestRef(rng, a, b, nil, slot, cfg)
}

// DirectionTestRef is DirectionTest with an explicit total-activity
// sequence for the RefTotalActivity reference (ignored under RefUniform;
// falls back to uniform when total is empty).
func DirectionTestRef(rng *rand.Rand, a, b, total []logmodel.Millis, slot logmodel.TimeRange, cfg Config) DirectionResult {
	cfg = cfg.withDefaults()
	dist := pointproc.DistNearest
	if cfg.Distance == DistNext {
		dist = pointproc.DistNext
	}
	var random []logmodel.Millis
	if cfg.Reference == RefTotalActivity && len(total) > 0 {
		random = resampleJittered(rng, total, slot, cfg.SampleSize, cfg.ReferenceJitter)
	} else {
		random = pointproc.UniformPoints(rng, slot, cfg.SampleSize)
	}
	sub := pointproc.Subsample(rng, b, cfg.SampleSize)
	sr := pointproc.DistanceSample(random, a, dist)
	sb := pointproc.DistanceSample(sub, a, dist)
	sort.Float64s(sr)
	sort.Float64s(sb)
	res := DirectionResult{RandomSample: sr, CandidateSample: sb}
	ciFor := func(sorted []float64) (stats.CI, error) {
		if cfg.Statistic == StatMean {
			return stats.MeanCI(sorted, cfg.Level)
		}
		return stats.MedianCI(sorted, cfg.Level)
	}
	ciR, errR := ciFor(sr)
	ciB, errB := ciFor(sb)
	if errR != nil || errB != nil {
		return res
	}
	res.RandomCI, res.CandidateCI = ciR, ciB
	res.Valid = true
	res.Positive = ciB.Below(ciR)
	res.Farther = ciR.Below(ciB)
	return res
}

// resampleJittered draws n points by resampling the total-activity
// timestamps with uniform jitter of ±j, clamped to the slot — an empirical
// non-homogeneous reference process whose intensity follows the overall
// load.
func resampleJittered(rng *rand.Rand, total []logmodel.Millis, slot logmodel.TimeRange, n int, j logmodel.Millis) []logmodel.Millis {
	out := make([]logmodel.Millis, n)
	for i := range out {
		t := total[rng.Intn(len(total))] + logmodel.Millis(rng.Int63n(int64(2*j+1))) - j
		if t < slot.Start {
			t = slot.Start
		}
		if t >= slot.End {
			t = slot.End - 1
		}
		out[i] = t
	}
	return out
}

// SlotTest runs the test in both directions for one slot and reports
// whether the slot is positive (both directions positive, per §3.1: "the
// test ... is positive in both directions").
func SlotTest(rng *rand.Rand, a, b []logmodel.Millis, slot logmodel.TimeRange, cfg Config) bool {
	return SlotTestRef(rng, a, b, nil, slot, cfg)
}

// SlotTestRef is SlotTest with an explicit total-activity sequence for the
// RefTotalActivity reference.
func SlotTestRef(rng *rand.Rand, a, b, total []logmodel.Millis, slot logmodel.TimeRange, cfg Config) bool {
	cfg = cfg.withDefaults()
	d1 := DirectionTestRef(rng, b, a, total, slot, cfg) // distances of A's logs to B
	if !d1.Valid || !(d1.Positive || cfg.TwoSided && d1.Farther) {
		return false
	}
	d2 := DirectionTestRef(rng, a, b, total, slot, cfg) // distances of B's logs to A
	return d2.Valid && (d2.Positive || cfg.TwoSided && d2.Farther)
}

// PairResult is the slotted outcome for one application pair.
type PairResult struct {
	Pair core.Pair
	// Slots is the total number of slots n.
	Slots int
	// Support is the number s of slots where both applications reached
	// MinLogs.
	Support int
	// Positive is the number p of supported slots whose test was positive
	// in both directions.
	Positive int
	// Dependent is the final decision: pr ≥ ThPr and s/n ≥ ThS.
	Dependent bool
}

// Ratio returns pr = p/s, the ratio of positive tests among the supported
// slots (0 when the support is empty).
func (r PairResult) Ratio() float64 {
	if r.Support == 0 {
		return 0
	}
	return float64(r.Positive) / float64(r.Support)
}

// SupportFraction returns s/n.
func (r PairResult) SupportFraction() float64 {
	if r.Slots == 0 {
		return 0
	}
	return float64(r.Support) / float64(r.Slots)
}

// Result is the mined model over all application pairs.
type Result struct {
	// Pairs holds the per-pair outcomes, keyed by normalized pair.
	Pairs map[core.Pair]PairResult
	// Config is the effective configuration.
	Config Config
}

// DependentPairs returns the set of pairs declared dependent.
func (r *Result) DependentPairs() core.PairSet {
	out := make(core.PairSet)
	for p, pr := range r.Pairs {
		if pr.Dependent {
			out[p] = true
		}
	}
	return out
}

// pairSeed derives a deterministic RNG seed for one (slot, pair) test, so
// mining results do not depend on iteration order or parallel scheduling.
// The slot is identified by its absolute start time, not its index in the
// window: a slot's outcome is then a function of the slot's content alone,
// which lets the streaming miner (internal/stream) cache per-slot outcomes
// across window advances and still reproduce the batch result byte for
// byte.
func pairSeed(base int64, slotStart logmodel.Millis, p core.Pair) int64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(base))
	binary.LittleEndian.PutUint64(buf[8:], uint64(slotStart))
	h.Write(buf[:])
	io.WriteString(h, p.A)
	h.Write([]byte{0})
	io.WriteString(h, p.B)
	return int64(h.Sum64())
}

// EqualCountSlots divides the range into n slots holding approximately
// equal numbers of log entries — the simple adaptive-slotting strategy the
// paper's §5 suggests for the stationarity issue ("one could create time
// slots adaptively"): busy periods get shorter slots, quiet nights longer
// ones. The returned slots cover r exactly.
func EqualCountSlots(store *logmodel.Store, r logmodel.TimeRange, n int) []logmodel.TimeRange {
	if n <= 0 {
		return nil
	}
	entries := store.Range(r)
	if len(entries) == 0 {
		return []logmodel.TimeRange{r}
	}
	out := make([]logmodel.TimeRange, 0, n)
	per := len(entries) / n
	if per == 0 {
		per = 1
	}
	start := r.Start
	for i := per; i < len(entries); i += per {
		end := entries[i].Time
		if end <= start {
			continue
		}
		out = append(out, logmodel.TimeRange{Start: start, End: end})
		start = end
		if len(out) == n-1 {
			break
		}
	}
	out = append(out, logmodel.TimeRange{Start: start, End: r.End})
	return out
}

// Mine runs approach L1 over the given time range of the store. Sources
// lists the applications to consider (all store sources when nil). Slots
// are processed in parallel (Config.Workers); results are deterministic
// for a fixed Config.Seed regardless of worker count or scheduling.
func Mine(store *logmodel.Store, r logmodel.TimeRange, sources []string, cfg Config) *Result {
	return MineSlots(store, r.Split(cfg.withDefaults().SlotWidth), sources, cfg)
}

// MineSlots is Mine over an explicit slot partition (e.g. EqualCountSlots).
func MineSlots(store *logmodel.Store, slots []logmodel.TimeRange, sources []string, cfg Config) *Result {
	cfg = cfg.withDefaults()
	defer cfg.Metrics.Timer("l1.mine_ns")()
	if sources == nil {
		sources = store.Sources()
	}
	// Fan the slots out over the shared worker pool; outcome positions are
	// fixed by slot index, so the fold below is scheduling-independent. The
	// per-slot computation runs sequentially (inner Workers: 1) — the slots
	// themselves are the unit of parallelism here.
	inner := cfg
	inner.Workers = 1
	outcomes := parallel.Map(parallel.Workers(cfg.Workers), len(slots),
		obs.Meter(cfg.Metrics, "l1.slots", func(si int) []SlotOutcome {
			return SlotOutcomes(store.Range(slots[si]), slots[si], sources, inner)
		}))
	return FoldOutcomes(sources, len(slots), outcomes, cfg)
}

// SlotOutcome is the outcome of the per-slot test for one eligible pair —
// the unit of incremental L1 state: a slot's outcomes depend only on the
// slot's entries and the absolute slot range, never on the slot's position
// in the window.
type SlotOutcome struct {
	Pair     core.Pair
	Positive bool
}

// SlotOutcomes runs the slot test for every eligible pair of one slot over
// the slot's entries (which must be time-sorted and lie within the slot).
// sources restricts the applications considered; nil means every source
// appearing in the slot. Pairs fan out over Config.Workers; outcomes are
// returned in lexicographic pair order regardless of the worker count.
func SlotOutcomes(entries []logmodel.Entry, slot logmodel.TimeRange, sources []string, cfg Config) []SlotOutcome {
	cfg = cfg.withDefaults()
	idx := make(map[string][]logmodel.Millis)
	for i := range entries {
		e := &entries[i]
		idx[e.Source] = append(idx[e.Source], e.Time)
	}
	if sources == nil {
		sources = make([]string, 0, len(idx))
		for s := range idx {
			sources = append(sources, s)
		}
		sort.Strings(sources)
	}
	var eligible []string
	for _, s := range sources {
		if len(idx[s]) >= cfg.MinLogs {
			eligible = append(eligible, s)
		}
	}
	var total []logmodel.Millis
	if cfg.Reference == RefTotalActivity {
		total = make([]logmodel.Millis, len(entries))
		for k := range entries {
			total[k] = entries[k].Time
		}
	}
	pairs := make([]core.Pair, 0, len(eligible)*(len(eligible)-1)/2)
	for i := range eligible {
		for j := i + 1; j < len(eligible); j++ {
			pairs = append(pairs, core.MakePair(eligible[i], eligible[j]))
		}
	}
	positive := cfg.Metrics.Counter("l1.positive_slots")
	return parallel.Map(parallel.Workers(cfg.Workers), len(pairs),
		obs.Meter(cfg.Metrics, "l1.pair_tests", func(k int) SlotOutcome {
			p := pairs[k]
			rng := rand.New(rand.NewSource(pairSeed(cfg.Seed, slot.Start, p)))
			o := SlotOutcome{
				Pair:     p,
				Positive: SlotTestRef(rng, idx[p.A], idx[p.B], total, slot, cfg),
			}
			if o.Positive {
				positive.Inc()
			}
			return o
		}))
}

// FoldOutcomes tallies per-slot outcome lists into the final Result: support
// and positive counts per pair, then the §3.1 threshold decision over slots
// total slots. sources, when non-nil, pre-initializes every pair so
// support/ratio diagnostics are well-defined even for never-supported pairs;
// the dependent set is unaffected (an unsupported pair never clears ThPr).
// The fold is pure integer tallying, so it is independent of the order in
// which equal outcome lists were produced.
func FoldOutcomes(sources []string, slots int, outcomes [][]SlotOutcome, cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{Pairs: make(map[core.Pair]PairResult), Config: cfg}
	for i := range sources {
		for j := i + 1; j < len(sources); j++ {
			p := core.MakePair(sources[i], sources[j])
			res.Pairs[p] = PairResult{Pair: p, Slots: slots}
		}
	}
	for _, out := range outcomes {
		for _, o := range out {
			pr, ok := res.Pairs[o.Pair]
			if !ok {
				pr = PairResult{Pair: o.Pair, Slots: slots}
			}
			pr.Support++
			if o.Positive {
				pr.Positive++
			}
			res.Pairs[o.Pair] = pr
		}
	}
	dependent := int64(0)
	for p, pr := range res.Pairs {
		pr.Dependent = pr.Ratio() >= cfg.ThPr && pr.SupportFraction() >= cfg.ThS
		if pr.Dependent {
			dependent++
		}
		res.Pairs[p] = pr
	}
	cfg.Metrics.Counter("l1.dependent_pairs").Add(dependent)
	return res
}
