// Package l1 implements the paper's approach L1 (§3.1): discovering
// dependencies between applications by treating their logs as a pure
// activity measure.
//
// For an ordered pair of applications (A, B), the technique compares the
// typical distance of B's log timestamps to the *nearest* log of A against
// the typical distance of uniformly random points to A. Distances are
// summarized by their median with a robust order-statistics confidence
// interval (Le Boudec); B is "closer than random" when its interval lies
// entirely below the random one. Because the overall system load makes even
// unrelated applications correlate over long horizons, the test is applied
// locally per time slot (one hour) and the local outcomes are combined: a
// pair is declared dependent when the ratio of positive slots pr and the
// support s (the fraction of slots where both applications logged at least
// MinLogs entries) clear the thresholds th_pr and th_s.
//
// The test is one-sided and uses the distance to the nearest arrival; the
// original two-sided, next-arrival variant of Li & Ma (ICDM'04) is
// available through Config for the ablations in DESIGN.md.
package l1
