// Package chaos is a deterministic, seed-driven fault injector for log
// streams. It rewrites a clean sequence of wire-format lines into a Script —
// an op-by-op description of what a hostile transport delivers: truncated
// records, corrupted bytes, duplicated lines, bounded timestamp reordering
// and clock skew, file rotations, torn gzip trailers and burst stalls.
//
// Everything is a pure function of (input lines, Schedule): the same seed
// replays the same faults byte for byte, so a failing property case is a
// reproducible unit test, not an anecdote. Scripts are played through two
// transports — an in-memory Reader and an FSRunner that drives a real file
// for stream.Tailer — which deliver identical logical byte streams for the
// same script.
//
// The package exists to pin the hardened-ingest contract: for any seeded
// fault schedule, the streaming model snapshot stays byte-identical to a
// batch mine over exactly the entries the ingest path accepted.
package chaos

import (
	"bytes"
	"compress/gzip"

	"logscape/internal/logmodel"
)

// rng is a splitmix64 generator: tiny, fast, and fully determined by its
// seed. math/rand is deliberately avoided — its global state and historical
// algorithm changes make seeds non-portable across toolchains.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). n must be positive.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// hit reports a per-mille probability draw.
func (r *rng) hit(perMille int) bool {
	if perMille <= 0 {
		return false
	}
	return r.intn(1000) < perMille
}

// Schedule is a composable fault schedule. The zero value injects nothing;
// each field arms one fault class. Probabilities are per mille (deterministic
// integer draws — no floating point anywhere in the injector).
type Schedule struct {
	// Seed drives every random draw. Same seed, same faults.
	Seed uint64

	// TruncatePerMille cuts a line mid-record at a random byte position,
	// keeping the newline: the stream carries a short, malformed record.
	TruncatePerMille int
	// CorruptPerMille XORs one random byte of the line with a random
	// non-zero mask. The result may still parse — the parser decides.
	CorruptPerMille int
	// DuplicatePerMille emits the line a second time, immediately.
	DuplicatePerMille int

	// ReorderWindow bounds timestamp reordering: each line may be displaced
	// by at most ReorderWindow positions (a bounded forward-swap shuffle).
	// 0 disables reordering.
	ReorderWindow int
	// SkewMaxMillis applies a clock-skew rewrite: each parseable line's
	// timestamp is shifted by a uniform draw from [−SkewMaxMillis,
	// +SkewMaxMillis] and the line re-rendered. 0 disables skew.
	SkewMaxMillis int64

	// RotateEveryLines inserts a file rotation after every N delivered
	// lines. 0 disables rotation.
	RotateEveryLines int
	// StallPerMille inserts a burst stall — one transient read error —
	// before a line.
	StallPerMille int

	// Gzip compresses the delivered stream; TornTail additionally cuts the
	// compressed stream short of its trailer. TornTail implies Gzip faults
	// only make sense on the in-memory transport — FSRunner refuses gzip
	// scripts.
	Gzip     bool
	TornTail bool
}

// OpKind discriminates script operations.
type OpKind int

// The operation kinds a Script is built from.
const (
	// OpWrite delivers bytes.
	OpWrite OpKind = iota
	// OpRotate rotates the transport's file (rename + recreate). A no-op on
	// the in-memory transport, which models the reader that follows across
	// rotations.
	OpRotate
	// OpStall delivers one transient read error.
	OpStall
)

// Op is one transport operation.
type Op struct {
	Kind OpKind
	Data []byte // OpWrite only
}

// Script is a fully materialized fault run: the exact operation sequence a
// transport plays. Scripts are deterministic values — safe to replay, diff
// and embed in failing-test reports.
type Script struct {
	Ops []Op
	// Gzip marks the stream as gzip-compressed by the transport; TornCut is
	// the number of trailing compressed bytes to withhold (0 = clean
	// trailer).
	Gzip    bool
	TornCut int
}

// Lines returns the logical plain-text payload of the script: the
// concatenation of all OpWrite data, before any gzip framing.
func (s *Script) Lines() []byte {
	var buf bytes.Buffer
	for _, op := range s.Ops {
		if op.Kind == OpWrite {
			buf.Write(op.Data)
		}
	}
	return buf.Bytes()
}

// Inject rewrites lines (without trailing newlines) into a fault Script
// according to the schedule. The rewrite is a pure function of its
// arguments.
func Inject(lines []string, s Schedule) *Script {
	r := newRNG(s.Seed)
	out := make([]string, len(lines))
	copy(out, lines)

	// Clock skew first: rewrite timestamps of parseable lines.
	if s.SkewMaxMillis > 0 {
		for i, l := range out {
			e, err := logmodel.ParseEntry(l)
			if err != nil {
				continue
			}
			span := 2*s.SkewMaxMillis + 1
			e.Time += logmodel.Millis(int64(r.next()%uint64(span)) - s.SkewMaxMillis)
			out[i] = logmodel.FormatEntry(e)
		}
	}
	// Bounded reordering: displace each line at most ReorderWindow slots.
	if s.ReorderWindow > 0 {
		for i := range out {
			maxJ := i + s.ReorderWindow
			if maxJ >= len(out) {
				maxJ = len(out) - 1
			}
			if maxJ > i {
				j := i + r.intn(maxJ-i+1)
				out[i], out[j] = out[j], out[i]
			}
		}
	}

	sc := &Script{Gzip: s.Gzip || s.TornTail}
	delivered := 0
	emit := func(l string) {
		b := make([]byte, 0, len(l)+1)
		b = append(b, l...)
		b = append(b, '\n')
		sc.Ops = append(sc.Ops, Op{Kind: OpWrite, Data: b})
		delivered++
		if s.RotateEveryLines > 0 && delivered%s.RotateEveryLines == 0 {
			sc.Ops = append(sc.Ops, Op{Kind: OpRotate})
		}
	}
	for _, l := range out {
		if r.hit(s.StallPerMille) {
			sc.Ops = append(sc.Ops, Op{Kind: OpStall})
		}
		mangled := l
		if len(mangled) > 0 && r.hit(s.TruncatePerMille) {
			mangled = mangled[:r.intn(len(mangled))]
		}
		if len(mangled) > 0 && r.hit(s.CorruptPerMille) {
			b := []byte(mangled)
			b[r.intn(len(b))] ^= byte(1 + r.intn(255))
			mangled = string(b)
		}
		emit(mangled)
		if r.hit(s.DuplicatePerMille) {
			emit(mangled)
		}
	}
	if sc.Gzip && s.TornTail {
		// Decide the cut now so the script stays a deterministic value: up
		// to 12 bytes off the end removes the trailer (8 bytes) and can bite
		// into the deflate stream.
		sc.TornCut = 1 + r.intn(12)
	}
	return sc
}

// gzipBytes renders the script's compressed stream (Gzip scripts only),
// already shortened by TornCut.
func (s *Script) gzipBytes() []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(s.Lines()); err != nil {
		panic("chaos: in-memory gzip write failed: " + err.Error())
	}
	if err := zw.Close(); err != nil {
		panic("chaos: in-memory gzip close failed: " + err.Error())
	}
	b := buf.Bytes()
	cut := s.TornCut
	if cut > len(b) {
		cut = len(b)
	}
	return b[:len(b)-cut]
}
