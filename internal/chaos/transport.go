package chaos

import (
	"errors"
	"fmt"
	"io"
	"os"

	"logscape/internal/stream"
)

// Reader plays a Script as an io.Reader: the in-memory transport. OpWrite
// data is delivered in order, each OpStall surfaces exactly one transient
// read error (stream.IsTransient), and OpRotate is a no-op — the in-memory
// stream models a reader that already follows across rotations, so the
// logical byte sequence is the rotation-free concatenation. Gzip scripts
// deliver the compressed (and possibly torn) stream, with stalls mapped to
// evenly spaced byte positions.
type Reader struct {
	ops []Op
	cur []byte
	// gzip mode
	gzip    bool
	gz      []byte
	pos     int
	stallAt []int // ascending byte positions still owed a stall
}

// NewReader returns a transport playing the script from the start.
func NewReader(s *Script) *Reader { return NewReaderAt(s, 0) }

// NewReaderAt returns a transport resuming at the given logical byte offset
// — the position a stream.Checkpoint records. Stalls scheduled before the
// offset are considered already suffered and are dropped. Gzip scripts only
// support offset 0: a compressed stream has no resumable plain offset, which
// is exactly why the CLI refuses -resume on .gz input.
func NewReaderAt(s *Script, offset int64) *Reader {
	if s.Gzip {
		if offset != 0 {
			panic("chaos: NewReaderAt with non-zero offset on a gzip script")
		}
		gz := s.gzipBytes()
		stalls := 0
		for _, op := range s.Ops {
			if op.Kind == OpStall {
				stalls++
			}
		}
		r := &Reader{gzip: true, gz: gz}
		for k := 1; k <= stalls; k++ {
			r.stallAt = append(r.stallAt, len(gz)*k/(stalls+1))
		}
		return r
	}
	r := &Reader{}
	skip := offset
	for i, op := range s.Ops {
		if op.Kind != OpWrite {
			if skip == 0 {
				r.ops = append(r.ops, s.Ops[i:]...)
				return r
			}
			continue // stall/rotate before the resume point: already played
		}
		if skip >= int64(len(op.Data)) {
			skip -= int64(len(op.Data))
			continue
		}
		r.cur = op.Data[skip:]
		skip = 0
		r.ops = s.Ops[i+1:]
		return r
	}
	if skip > 0 {
		panic(fmt.Sprintf("chaos: resume offset %d beyond script payload", offset))
	}
	return r
}

// errStall is the transient error a burst stall surfaces.
var errStall = stream.Transient(errors.New("chaos: burst stall"))

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.gzip {
		return r.readGzip(p)
	}
	for {
		if len(r.cur) > 0 {
			n := copy(p, r.cur)
			r.cur = r.cur[n:]
			return n, nil
		}
		if len(r.ops) == 0 {
			return 0, io.EOF
		}
		op := r.ops[0]
		r.ops = r.ops[1:]
		switch op.Kind {
		case OpWrite:
			r.cur = op.Data
		case OpStall:
			return 0, errStall
		case OpRotate:
			// Rotation is invisible to a concatenated logical stream.
		}
	}
}

// readGzip delivers the compressed stream with positional stalls.
func (r *Reader) readGzip(p []byte) (int, error) {
	if len(r.stallAt) > 0 && r.stallAt[0] <= r.pos {
		r.stallAt = r.stallAt[1:]
		return 0, errStall
	}
	if r.pos >= len(r.gz) {
		return 0, io.EOF
	}
	end := len(r.gz)
	if len(r.stallAt) > 0 && r.stallAt[0] < end {
		end = r.stallAt[0]
	}
	n := copy(p, r.gz[r.pos:end])
	r.pos += n
	return n, nil
}

// FSRunner plays a plain script against a real file, one operation per Step
// call — shaped to be a stream.TailerConfig Wait hook, which makes the
// tailing loop single-goroutine and fully deterministic: the tailer drains
// to EOF, Step mutates the filesystem, the tailer looks again.
type FSRunner struct {
	path      string
	ops       []Op
	i         int
	rotations int
	err       error
}

// NewFSRunner creates (or truncates) the target file and returns a runner
// for the script. Gzip scripts are refused: the file transport models a live
// rotating log, which is plain text by construction.
func NewFSRunner(path string, s *Script) (*FSRunner, error) {
	if s.Gzip {
		return nil, errors.New("chaos: FSRunner cannot play a gzip script")
	}
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		return nil, err
	}
	return &FSRunner{path: path, ops: s.Ops}, nil
}

// Err returns the first filesystem error Step encountered, if any.
func (r *FSRunner) Err() error { return r.err }

// Rotations returns how many rotations have been played so far.
func (r *FSRunner) Rotations() int { return r.rotations }

// Step plays the next operation and reports whether more remain. It is the
// Wait hook for a Tailer following the runner's file: OpWrite appends,
// OpRotate renames the live file aside and recreates it, OpStall performs
// nothing (the tailer simply polls again — a real stall is just time).
func (r *FSRunner) Step() bool {
	if r.err != nil || r.i >= len(r.ops) {
		return false
	}
	op := r.ops[r.i]
	r.i++
	switch op.Kind {
	case OpWrite:
		f, err := os.OpenFile(r.path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			r.err = err
			return false
		}
		if _, err := f.Write(op.Data); err != nil {
			f.Close()
			r.err = err
			return false
		}
		if err := f.Close(); err != nil {
			r.err = err
			return false
		}
	case OpRotate:
		r.rotations++
		if err := os.Rename(r.path, fmt.Sprintf("%s.%d", r.path, r.rotations)); err != nil {
			r.err = err
			return false
		}
		if err := os.WriteFile(r.path, nil, 0o644); err != nil {
			r.err = err
			return false
		}
	case OpStall:
		// Nothing to do: a stall on a file is the absence of new data.
	}
	return true
}
