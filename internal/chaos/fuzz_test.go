package chaos

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"logscape/internal/core"
	"logscape/internal/stream"
)

// FuzzChaosIngest drives the hardened pipeline with fuzzer-chosen input
// lines under a fuzzer-seeded fault schedule. Invariants: nothing panics,
// the streaming snapshot equals the batch reference over the window at
// Workers 1 and 8, the two worker counts agree byte for byte, and — when the
// stream closed at least two buckets on a resumable (non-gzip) transport —
// a simulated kill + resume lands on the same snapshots as the
// uninterrupted run.
func FuzzChaosIngest(f *testing.F) {
	clean := strings.Join(corpusLines(40), "\n")
	f.Add(uint64(1), clean)
	f.Add(uint64(2), "not a log line\n"+clean)
	f.Add(uint64(3), clean+"\n2005-12-06T08:00:00.000Z\tA\th\tu\tINFO\ttail")
	f.Add(uint64(99), "")

	f.Fuzz(func(t *testing.T, seed uint64, data string) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		lines := strings.Split(data, "\n")
		if len(lines) > 200 {
			lines = lines[:200]
		}
		// Derive a moderate fault mix from the seed; every class can arm.
		r := newRNG(seed)
		s := Schedule{
			Seed:              seed,
			TruncatePerMille:  r.intn(300),
			CorruptPerMille:   r.intn(300),
			DuplicatePerMille: r.intn(300),
			ReorderWindow:     r.intn(5),
			SkewMaxMillis:     int64(r.intn(2500)),
			RotateEveryLines:  r.intn(9),
			StallPerMille:     r.intn(250),
			Gzip:              seed%3 == 0,
			TornTail:          seed%9 == 0,
		}
		sc := Inject(lines, s)

		r1 := runScript(t, sc, 1)
		r8 := runScript(t, sc, 8)
		checkRun(t, "workers=1", r1)
		checkRun(t, "workers=8", r8)
		if !reflect.DeepEqual(r1.snaps, r8.snaps) || r1.stats != r8.stats {
			t.Fatalf("worker counts disagree: %+v vs %+v", r1.stats, r8.stats)
		}

		if sc.Gzip || r1.stats.Buckets < 2 {
			return
		}
		// Kill + resume: checkpoint at the first bucket close, replay the
		// rest of the fault stream from the recorded offset.
		wcfg := stream.Config{BucketWidth: 1000, WindowBuckets: 4, Workers: 1}
		pre := stream.NewIngester(wcfg, chaosMiners(wcfg)...)
		fd := stream.NewFeeder(pre, stream.FeederConfig{})
		var cp *stream.Checkpoint
		pre.OnAdvance = func(stream.Bucket) {
			if cp == nil {
				cp = pre.Checkpoint(fd.Consumed(), 0)
			}
		}
		if err := fd.Run(hardenedSource(NewReader(sc), sc)); err != nil {
			t.Fatalf("pre-kill run: %v", err)
		}
		if cp == nil {
			t.Fatal("buckets closed but no checkpoint taken")
		}
		postMiners := chaosMiners(wcfg)
		resumed, err := cp.Restore(wcfg, postMiners...)
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		f2 := stream.NewFeeder(resumed, stream.FeederConfig{})
		if err := f2.Run(hardenedSource(NewReaderAt(sc, cp.Offset), sc)); err != nil {
			t.Fatalf("resumed run: %v", err)
		}
		resumed.Flush()
		for i, m := range postMiners {
			var buf bytes.Buffer
			if err := core.WriteModel(&buf, m.Snapshot()); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), r1.snaps[i]) {
				t.Fatalf("miner %d: resumed snapshot diverges from uninterrupted run\nresumed: %s\nref:     %s",
					i, buf.Bytes(), r1.snaps[i])
			}
		}
		if resumed.Stats() != r1.stats {
			t.Fatalf("resumed stats = %+v, want %+v", resumed.Stats(), r1.stats)
		}
	})
}
