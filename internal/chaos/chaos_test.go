package chaos

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"logscape/internal/core"
	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/core/l3"
	"logscape/internal/directory"
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
	"logscape/internal/stream"
)

// corpusLines renders n clean wire-format lines: overlapping sessions across
// three sources and users, with periodic registry citations so every miner
// layer has something to find before the injector mangles the stream.
func corpusLines(n int) []string {
	srcs := []string{"DPIFormidoc", "AppB", "AppC"}
	users := []string{"u1", "u2", "u3"}
	var lines []string
	for i := 0; i < n; i++ {
		e := logmodel.Entry{
			Time:     logmodel.Millis(1000 + i*137),
			Source:   srcs[i%3],
			Host:     "host1",
			User:     users[(i/2)%3],
			Severity: logmodel.SevInfo,
			Message:  "step work",
		}
		if i%7 == 0 {
			e.Message = "GET http://reg.hug/reg/list"
		}
		lines = append(lines, logmodel.FormatEntry(e))
	}
	return lines
}

var chaosDir = &directory.Directory{Version: 1, Groups: []directory.Group{
	{ID: "DPIREG", RootURL: "http://reg.hug/reg"},
}}

func chaosMiners(wcfg stream.Config) []stream.Miner {
	l1cfg := l1.DefaultConfig()
	l1cfg.MinLogs = 2
	l1cfg.SampleSize = 8
	return []stream.Miner{
		stream.NewL1(wcfg, l1cfg),
		stream.NewL2(wcfg, sessions.Config{MaxGap: 500, MinEntries: 2, MinSources: 2},
			l2.Config{MinJoint: 1, Alpha: 0.05, Timeout: 500, Measure: l2.MeasureG2}),
		stream.NewL3(wcfg, l3.NewMiner(chaosDir, l3.DefaultConfig())),
	}
}

// chaosRun is the outcome of one hardened-pipeline run over a script.
type chaosRun struct {
	snaps [][]byte // per-miner streaming snapshot, serialized
	batch [][]byte // per-miner batch reference over the window, serialized
	stats stream.IngestStats
	feed  stream.FeedStats
}

// stalls counts the script's stall ops.
func stalls(sc *Script) int {
	n := 0
	for _, op := range sc.Ops {
		if op.Kind == OpStall {
			n++
		}
	}
	return n
}

// hardenedSource composes the hardened read stack over a raw transport:
// retry below, torn-gzip above (gzip errors are sticky, so retries must
// happen underneath the decompressor).
func hardenedSource(raw io.Reader, sc *Script) io.Reader {
	rr := stream.NewRetryReader(raw, stream.RetryPolicy{MaxRetries: stalls(sc) + 1}, nil)
	if sc.Gzip {
		return stream.NewTornGzipReader(rr, nil)
	}
	return rr
}

// runScript drives one full pipeline over the script's in-memory transport.
func runScript(t *testing.T, sc *Script, workers int) chaosRun {
	t.Helper()
	return runSource(t, hardenedSource(NewReader(sc), sc), workers)
}

// runSource drives one full pipeline over an already-composed source.
func runSource(t *testing.T, src io.Reader, workers int) chaosRun {
	t.Helper()
	wcfg := stream.Config{BucketWidth: 1000, WindowBuckets: 4, Workers: workers}
	miners := chaosMiners(wcfg)
	in := stream.NewIngester(wcfg, miners...)
	f := stream.NewFeeder(in, stream.FeederConfig{})
	if err := f.Run(src); err != nil {
		t.Fatalf("feeder run: %v", err)
	}
	in.Flush()

	r := chaosRun{stats: in.Stats(), feed: f.Stats()}
	win, tr := in.WindowStore(), in.WindowRange()
	for _, m := range miners {
		var sb, bb bytes.Buffer
		if err := core.WriteModel(&sb, m.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if err := core.WriteModel(&bb, m.Batch(win, tr)); err != nil {
			t.Fatal(err)
		}
		r.snaps = append(r.snaps, sb.Bytes())
		r.batch = append(r.batch, bb.Bytes())
	}
	return r
}

// checkRun asserts the headline contract on one run: every miner's
// streaming snapshot is byte-identical to its batch reference over exactly
// the accepted (windowed) entries.
func checkRun(t *testing.T, tag string, r chaosRun) {
	t.Helper()
	for i := range r.snaps {
		if !bytes.Equal(r.snaps[i], r.batch[i]) {
			t.Errorf("%s: miner %d snapshot diverges from batch\nstream: %s\nbatch:  %s",
				tag, i, r.snaps[i], r.batch[i])
		}
	}
}

func TestInjectIsDeterministic(t *testing.T) {
	lines := corpusLines(60)
	s := Schedule{Seed: 7, TruncatePerMille: 200, CorruptPerMille: 200,
		DuplicatePerMille: 150, ReorderWindow: 3, SkewMaxMillis: 700,
		RotateEveryLines: 10, StallPerMille: 100}
	a, b := Inject(lines, s), Inject(lines, s)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed and schedule produced different scripts")
	}
	s2 := s
	s2.Seed = 8
	if bytes.Equal(Inject(lines, s2).Lines(), a.Lines()) {
		t.Fatal("different seeds produced identical fault streams")
	}
	if rot, st := countKinds(a); rot == 0 || st == 0 {
		t.Fatalf("schedule armed rotations and stalls but script has rot=%d stall=%d", rot, st)
	}
}

func countKinds(sc *Script) (rotates, stallOps int) {
	for _, op := range sc.Ops {
		switch op.Kind {
		case OpRotate:
			rotates++
		case OpStall:
			stallOps++
		}
	}
	return
}

func TestCleanScriptRoundTrips(t *testing.T) {
	// Zero schedule: the transport must deliver the input byte-for-byte and
	// the pipeline must accept every line.
	lines := corpusLines(30)
	sc := Inject(lines, Schedule{})
	got, err := io.ReadAll(NewReader(sc))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, l := range lines {
		want.WriteString(l)
		want.WriteByte('\n')
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("zero schedule mangled the stream")
	}
	r := runScript(t, sc, 1)
	if r.stats.Accepted != 30 || r.feed.Malformed != 0 {
		t.Errorf("clean run stats = %+v / %+v, want 30 accepted, none malformed", r.stats, r.feed)
	}
	checkRun(t, "clean", r)
}

// TestChaosEquivalenceMem is the property suite: across seeds and fault
// mixes, at Workers 1 and 8, the streaming snapshot equals the batch
// reference and is byte-identical across worker counts.
func TestChaosEquivalenceMem(t *testing.T) {
	lines := corpusLines(120)
	schedules := []Schedule{
		{Seed: 1, TruncatePerMille: 250},
		{Seed: 2, CorruptPerMille: 250},
		{Seed: 3, DuplicatePerMille: 300},
		{Seed: 4, ReorderWindow: 5, SkewMaxMillis: 1500},
		{Seed: 5, StallPerMille: 200, RotateEveryLines: 9},
		{Seed: 6, Gzip: true, StallPerMille: 150},
		{Seed: 7, Gzip: true, TornTail: true},
		{Seed: 8, TruncatePerMille: 120, CorruptPerMille: 120, DuplicatePerMille: 120,
			ReorderWindow: 4, SkewMaxMillis: 900, RotateEveryLines: 11, StallPerMille: 120},
		{Seed: 9, TruncatePerMille: 120, CorruptPerMille: 120, DuplicatePerMille: 120,
			ReorderWindow: 4, SkewMaxMillis: 900, StallPerMille: 120, Gzip: true, TornTail: true},
	}
	for _, s := range schedules {
		t.Run(fmt.Sprintf("seed%d", s.Seed), func(t *testing.T) {
			sc := Inject(lines, s)
			r1 := runScript(t, sc, 1)
			r8 := runScript(t, sc, 8)
			checkRun(t, "workers=1", r1)
			checkRun(t, "workers=8", r8)
			if !reflect.DeepEqual(r1.snaps, r8.snaps) {
				t.Error("snapshots differ between Workers 1 and 8")
			}
			if r1.stats != r8.stats || r1.feed != r8.feed {
				t.Errorf("accounting differs across worker counts: %+v/%+v vs %+v/%+v",
					r1.stats, r1.feed, r8.stats, r8.feed)
			}
			if s.Seed >= 8 && r1.stats.Accepted == 0 {
				t.Error("combined schedule rejected everything; property is vacuous")
			}
		})
	}
}

// TestChaosBatchedIngestEquivalence plays a fault schedule through the bulk
// ReadBatch → AddBatch path that batch loaders use and pins it against the
// per-line Feeder reference: identical miner snapshots, identical ingest
// accounting, at Workers 1 and 8. The schedule uses every line-preserving
// fault (duplication, reordering, skew, rotation, stalls) — line-tearing
// faults are the Feeder's domain, since logmodel.Reader treats a malformed
// line as a stream error rather than a quarantinable reject. The batched
// ingester also runs with RecycleBuckets on, so bucket-slice recycling is
// pinned to have no observable effect on the mined model.
func TestChaosBatchedIngestEquivalence(t *testing.T) {
	lines := corpusLines(120)
	sc := Inject(lines, Schedule{Seed: 41, DuplicatePerMille: 200, ReorderWindow: 4,
		SkewMaxMillis: 1200, RotateEveryLines: 9, StallPerMille: 150})
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			ref := runScript(t, sc, workers)
			if ref.stats.Late == 0 {
				t.Error("skew produced no late entries; verdict equivalence is vacuous")
			}

			wcfg := stream.Config{BucketWidth: 1000, WindowBuckets: 4, Workers: workers,
				RecycleBuckets: true}
			miners := chaosMiners(wcfg)
			in := stream.NewIngester(wcfg, miners...)
			lr := logmodel.NewReader(hardenedSource(NewReader(sc), sc))
			var batch [32]logmodel.Entry
			for {
				n, err := lr.ReadBatch(batch[:])
				in.AddBatch(batch[:n])
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("batched read: %v", err)
				}
			}
			in.Flush()

			if s := in.Stats(); s != ref.stats {
				t.Errorf("batched ingest stats = %+v, feeder reference %+v", s, ref.stats)
			}
			got := chaosRun{stats: in.Stats()}
			win, tr := in.WindowStore(), in.WindowRange()
			for _, m := range miners {
				var sb, bb bytes.Buffer
				if err := core.WriteModel(&sb, m.Snapshot()); err != nil {
					t.Fatal(err)
				}
				if err := core.WriteModel(&bb, m.Batch(win, tr)); err != nil {
					t.Fatal(err)
				}
				got.snaps = append(got.snaps, sb.Bytes())
				got.batch = append(got.batch, bb.Bytes())
			}
			checkRun(t, "batched", got)
			if !reflect.DeepEqual(got.snaps, ref.snaps) {
				t.Errorf("batched snapshots diverge from feeder reference\nbatched: %s\nfeeder:  %s",
					bytes.Join(got.snaps, []byte("|")), bytes.Join(ref.snaps, []byte("|")))
			}
		})
	}
}

// TestChaosEquivalenceTailerFS plays a rotating fault script through a real
// file followed by a Tailer and pins two things: the tailer survives the
// rotations, and the result is byte-identical to the in-memory transport of
// the same script.
func TestChaosEquivalenceTailerFS(t *testing.T) {
	lines := corpusLines(90)
	for _, s := range []Schedule{
		{Seed: 21, RotateEveryLines: 7},
		{Seed: 22, RotateEveryLines: 5, TruncatePerMille: 200, CorruptPerMille: 150, StallPerMille: 150},
	} {
		t.Run(fmt.Sprintf("seed%d", s.Seed), func(t *testing.T) {
			sc := Inject(lines, s)
			path := filepath.Join(t.TempDir(), "chaos.log")
			runner, err := NewFSRunner(path, sc)
			if err != nil {
				t.Fatal(err)
			}
			tl, err := stream.NewTailer(path, stream.TailerConfig{Wait: runner.Step})
			if err != nil {
				t.Fatal(err)
			}
			defer tl.Close()

			fsRun := runSource(t, tl, 1)
			if runner.Err() != nil {
				t.Fatalf("fs runner: %v", runner.Err())
			}
			if int(tl.Rotations()) != runner.Rotations() || runner.Rotations() == 0 {
				t.Errorf("tailer saw %d rotations, runner played %d (want equal, nonzero)",
					tl.Rotations(), runner.Rotations())
			}
			memRun := runScript(t, sc, 1)
			checkRun(t, "fs", fsRun)
			if !reflect.DeepEqual(fsRun, memRun) {
				t.Errorf("file transport diverges from memory transport\nfs:  %+v\nmem: %+v", fsRun, memRun)
			}
		})
	}
}

// TestChaosKillResume simulates a kill after a checkpoint and a -resume
// restart: the resumed pipeline, reading the same fault stream from the
// checkpoint offset, must land on snapshots byte-identical to an
// uninterrupted run.
func TestChaosKillResume(t *testing.T) {
	lines := corpusLines(120)
	sc := Inject(lines, Schedule{Seed: 31, TruncatePerMille: 150, CorruptPerMille: 100,
		DuplicatePerMille: 100, ReorderWindow: 3, SkewMaxMillis: 600, StallPerMille: 120})
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			ref := runScript(t, sc, workers)

			wcfg := stream.Config{BucketWidth: 1000, WindowBuckets: 4, Workers: workers}
			preMiners := chaosMiners(wcfg)
			pre := stream.NewIngester(wcfg, preMiners...)
			f := stream.NewFeeder(pre, stream.FeederConfig{})
			var cp *stream.Checkpoint
			closed := 0
			pre.OnAdvance = func(stream.Bucket) {
				closed++
				if closed == 2 {
					cp = pre.Checkpoint(f.Consumed(), 0)
				}
			}
			if err := f.Run(hardenedSource(NewReader(sc), sc)); err != nil {
				t.Fatal(err)
			}
			if cp == nil {
				t.Fatal("stream closed fewer than 2 buckets; no checkpoint taken")
			}
			// Kill: everything after the checkpoint is lost. Resume from the
			// persisted state and the recorded offset.
			path := filepath.Join(t.TempDir(), "follow.ckpt")
			if err := stream.WriteCheckpointFile(path, cp); err != nil {
				t.Fatal(err)
			}
			loaded, err := stream.ReadCheckpointFile(path)
			if err != nil {
				t.Fatal(err)
			}
			postMiners := chaosMiners(wcfg)
			resumed, err := loaded.Restore(wcfg, postMiners...)
			if err != nil {
				t.Fatal(err)
			}
			f2 := stream.NewFeeder(resumed, stream.FeederConfig{})
			if err := f2.Run(hardenedSource(NewReaderAt(sc, loaded.Offset), sc)); err != nil {
				t.Fatal(err)
			}
			resumed.Flush()

			var got [][]byte
			for _, m := range postMiners {
				var buf bytes.Buffer
				if err := core.WriteModel(&buf, m.Snapshot()); err != nil {
					t.Fatal(err)
				}
				got = append(got, buf.Bytes())
			}
			if !reflect.DeepEqual(got, ref.snaps) {
				t.Errorf("resumed snapshots diverge from uninterrupted run\nresumed: %s\nref:     %s",
					bytes.Join(got, []byte("|")), bytes.Join(ref.snaps, []byte("|")))
			}
			if s := resumed.Stats(); s != ref.stats {
				t.Errorf("resumed stats = %+v, want %+v", s, ref.stats)
			}
		})
	}
}

func TestReaderAtMidLineOffset(t *testing.T) {
	// A resume offset always sits on a line boundary in practice, but the
	// transport itself must honor any byte offset exactly.
	sc := Inject([]string{"alpha", "beta"}, Schedule{})
	got, err := io.ReadAll(NewReader(sc))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off <= len(got); off++ {
		rest, err := io.ReadAll(stream.NewRetryReader(NewReaderAt(sc, int64(off)),
			stream.RetryPolicy{MaxRetries: 4}, nil))
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if !bytes.Equal(rest, got[off:]) {
			t.Fatalf("offset %d read %q, want %q", off, rest, got[off:])
		}
	}
}
