package depgraph

import (
	"reflect"
	"testing"

	"logscape/internal/core"
	"logscape/internal/hospital"
)

// chain builds A→B→C plus D→B.
func chain() *Graph {
	g := New()
	g.AddEdge("A", "B")
	g.AddEdge("B", "C")
	g.AddEdge("D", "B")
	return g
}

func TestBasicStructure(t *testing.T) {
	g := chain()
	if !reflect.DeepEqual(g.Nodes(), []string{"A", "B", "C", "D"}) {
		t.Errorf("Nodes = %v", g.Nodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if !reflect.DeepEqual(g.DependsOn("A"), []string{"B"}) {
		t.Errorf("DependsOn(A) = %v", g.DependsOn("A"))
	}
	if !reflect.DeepEqual(g.Dependents("B"), []string{"A", "D"}) {
		t.Errorf("Dependents(B) = %v", g.Dependents("B"))
	}
	// Duplicates and self edges collapse.
	g.AddEdge("A", "B")
	g.AddEdge("A", "A")
	if g.NumEdges() != 3 {
		t.Errorf("after dup/self: NumEdges = %d", g.NumEdges())
	}
}

func TestImpactAndRootCauses(t *testing.T) {
	g := chain()
	// C fails → B, and through B both A and D, are affected.
	if got := g.Impact("C"); !reflect.DeepEqual(got, []string{"A", "B", "D"}) {
		t.Errorf("Impact(C) = %v", got)
	}
	if got := g.Impact("A"); len(got) != 0 {
		t.Errorf("Impact(A) = %v", got)
	}
	// A misbehaves → suspects are B and C.
	if got := g.RootCauses("A"); !reflect.DeepEqual(got, []string{"B", "C"}) {
		t.Errorf("RootCauses(A) = %v", got)
	}
	if got := g.RootCauses("C"); len(got) != 0 {
		t.Errorf("RootCauses(C) = %v", got)
	}
}

func TestCriticalityRanking(t *testing.T) {
	g := chain()
	r := g.CriticalityRanking()
	if r[0].Node != "C" || r[0].ImpactSize != 3 {
		t.Errorf("top criticality = %+v", r[0])
	}
	if r[1].Node != "B" || r[1].ImpactSize != 2 {
		t.Errorf("second = %+v", r[1])
	}
	// A and D tie at zero; alphabetical.
	if r[2].Node != "A" || r[3].Node != "D" {
		t.Errorf("tail = %+v, %+v", r[2], r[3])
	}
}

func TestCycles(t *testing.T) {
	g := chain()
	if c, ok := g.Cycles(); ok {
		t.Errorf("acyclic graph reported cycle %v", c)
	}
	g.AddEdge("C", "A") // A→B→C→A
	c, ok := g.Cycles()
	if !ok {
		t.Fatal("cycle not detected")
	}
	if len(c) != 3 {
		t.Errorf("cycle = %v", c)
	}
	// Witness must be an actual cycle.
	for i := range c {
		from, to := c[i], c[(i+1)%len(c)]
		found := false
		for _, s := range g.succ[from] {
			if s == to {
				found = true
			}
		}
		if !found {
			t.Errorf("cycle %v has no edge %s→%s", c, from, to)
		}
	}
}

func TestLayers(t *testing.T) {
	g := chain()
	layers, err := g.Layers()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"C"}, {"B"}, {"A", "D"}}
	if !reflect.DeepEqual(layers, want) {
		t.Errorf("Layers = %v", layers)
	}
	g.AddEdge("C", "A")
	if _, err := g.Layers(); err == nil {
		t.Error("cyclic graph should not layer")
	}
}

func TestFromDeps(t *testing.T) {
	deps := core.AppServiceSet{
		{App: "GUI", Group: "SVC"}:     true,
		{App: "GUI", Group: "UNKNOWN"}: true, // skipped
		{App: "Owner", Group: "OWN"}:   true, // self, skipped
	}
	owners := map[string]string{"SVC": "Owner", "OWN": "Owner"}
	g := FromDeps(deps, owners)
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if !reflect.DeepEqual(g.DependsOn("GUI"), []string{"Owner"}) {
		t.Errorf("DependsOn = %v", g.DependsOn("GUI"))
	}
}

func TestFromPairs(t *testing.T) {
	pairs := core.PairSet{core.MakePair("A", "B"): true}
	g := FromPairs(pairs)
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d (undirected pair → both directions)", g.NumEdges())
	}
}

// TestOnMinedModel exercises the graph on a real mined L3 model: the most
// critical components should be widely-used backend services, and the
// ground-truth graph should be (almost always) layerable.
func TestOnMinedModel(t *testing.T) {
	topo := hospital.GenerateTopology(hospital.DefaultTopologyConfig(), 8)
	owners := map[string]string{}
	for _, g := range topo.Groups {
		owners[g.ID] = g.Owner
	}
	g := FromDeps(topo.TrueAppServicePairs(), owners)
	if len(g.Nodes()) < 30 {
		t.Fatalf("nodes = %d", len(g.Nodes()))
	}
	rank := g.CriticalityRanking()
	if rank[0].ImpactSize < 5 {
		t.Errorf("top component impact = %d, want a widely-used service", rank[0].ImpactSize)
	}
	// GUI applications are pure consumers: nothing depends on them.
	for _, gui := range []string{"DPIMain", "DPIViewer", "WardBoard"} {
		if deps := g.Dependents(gui); len(deps) != 0 {
			t.Errorf("dependents of GUI app %s = %v", gui, deps)
		}
	}
}
