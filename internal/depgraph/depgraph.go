package depgraph

import (
	"fmt"
	"sort"

	"logscape/internal/core"
)

// Graph is a directed dependency graph: an edge A → B means "A depends on
// B" (A invokes B's services).
type Graph struct {
	// succ[a] lists the components a depends on.
	succ map[string][]string
	// pred[b] lists the components depending on b.
	pred map[string][]string
	// nodes is the sorted node set.
	nodes []string
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{succ: make(map[string][]string), pred: make(map[string][]string)}
}

// FromDeps builds a graph from an application→service model, resolving
// each service group to its owning application via owners. Dependencies on
// unknown groups and self-dependencies are skipped.
func FromDeps(deps core.AppServiceSet, owners map[string]string) *Graph {
	g := New()
	for d := range deps {
		owner, ok := owners[d.Group]
		if !ok || owner == d.App {
			continue
		}
		g.AddEdge(d.App, owner)
	}
	return g
}

// FromPairs builds an *undirected* approximation from a pair model: each
// pair contributes edges in both directions (approaches L1/L2 do not
// discover direction; see §5 of the paper).
func FromPairs(pairs core.PairSet) *Graph {
	g := New()
	for p := range pairs {
		g.AddEdge(p.A, p.B)
		g.AddEdge(p.B, p.A)
	}
	return g
}

// AddEdge records "from depends on to". Duplicate edges collapse.
func (g *Graph) AddEdge(from, to string) {
	if from == to {
		return
	}
	for _, s := range g.succ[from] {
		if s == to {
			return
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	g.nodes = nil // invalidate cache
}

// Nodes returns the sorted node set.
func (g *Graph) Nodes() []string {
	if g.nodes == nil {
		seen := make(map[string]bool)
		for n := range g.succ {
			seen[n] = true
		}
		for n := range g.pred {
			seen[n] = true
		}
		g.nodes = make([]string, 0, len(seen))
		for n := range seen {
			g.nodes = append(g.nodes, n)
		}
		sort.Strings(g.nodes)
	}
	return g.nodes
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, ss := range g.succ {
		n += len(ss)
	}
	return n
}

// DependsOn returns the components node directly depends on, sorted.
func (g *Graph) DependsOn(node string) []string {
	out := append([]string(nil), g.succ[node]...)
	sort.Strings(out)
	return out
}

// Dependents returns the components directly depending on node, sorted.
func (g *Graph) Dependents(node string) []string {
	out := append([]string(nil), g.pred[node]...)
	sort.Strings(out)
	return out
}

// Impact returns every component transitively depending on node — the set
// affected when node fails (impact prediction). The node itself is not
// included. The result is sorted.
func (g *Graph) Impact(node string) []string {
	return g.closure(node, g.pred)
}

// RootCauses returns every component node transitively depends on — the
// candidate set when node misbehaves (root cause analysis). Sorted.
func (g *Graph) RootCauses(node string) []string {
	return g.closure(node, g.succ)
}

// closure walks edges from start and returns all reachable nodes, sorted.
func (g *Graph) closure(start string, edges map[string][]string) []string {
	seen := map[string]bool{start: true}
	stack := append([]string(nil), edges[start]...)
	var out []string
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		stack = append(stack, edges[n]...)
	}
	sort.Strings(out)
	return out
}

// CriticalityRanking orders the nodes by the size of their impact set,
// descending — the components whose availability matters most (§1.1:
// "service availability requirements determination"). Ties break
// alphabetically.
func (g *Graph) CriticalityRanking() []Criticality {
	out := make([]Criticality, 0, len(g.Nodes()))
	for _, n := range g.Nodes() {
		out = append(out, Criticality{Node: n, ImpactSize: len(g.Impact(n))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ImpactSize != out[j].ImpactSize {
			return out[i].ImpactSize > out[j].ImpactSize
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Criticality is one entry of the criticality ranking.
type Criticality struct {
	Node       string
	ImpactSize int
}

// Cycles reports whether the graph contains a dependency cycle and returns
// one witness cycle (as a node sequence) if so. Mutual or circular
// dependencies are architectural smells worth surfacing.
func (g *Graph) Cycles() ([]string, bool) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	parent := make(map[string]string)
	var cycle []string
	var dfs func(n string) bool
	dfs = func(n string) bool {
		color[n] = gray
		// Deterministic order.
		next := append([]string(nil), g.succ[n]...)
		sort.Strings(next)
		for _, m := range next {
			switch color[m] {
			case white:
				parent[m] = n
				if dfs(m) {
					return true
				}
			case gray:
				// Reconstruct the cycle m → ... → n → m.
				cycle = []string{m}
				for x := n; x != m; x = parent[x] {
					cycle = append(cycle, x)
				}
				// Reverse to dependency order.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[n] = black
		return false
	}
	for _, n := range g.Nodes() {
		if color[n] == white && dfs(n) {
			return cycle, true
		}
	}
	return nil, false
}

// Layers returns a topological layering of an acyclic graph: layer 0 holds
// the components depending on nothing (pure providers), each further layer
// depends only on earlier ones. It returns an error when the graph has a
// cycle.
func (g *Graph) Layers() ([][]string, error) {
	if c, ok := g.Cycles(); ok {
		return nil, fmt.Errorf("depgraph: dependency cycle: %v", c)
	}
	depth := make(map[string]int)
	var depthOf func(n string) int
	depthOf = func(n string) int {
		if d, ok := depth[n]; ok {
			return d
		}
		d := 0
		for _, m := range g.succ[n] {
			if dd := depthOf(m) + 1; dd > d {
				d = dd
			}
		}
		depth[n] = d
		return d
	}
	maxDepth := 0
	for _, n := range g.Nodes() {
		if d := depthOf(n); d > maxDepth {
			maxDepth = d
		}
	}
	layers := make([][]string, maxDepth+1)
	for _, n := range g.Nodes() {
		layers[depth[n]] = append(layers[depth[n]], n)
	}
	for _, l := range layers {
		sort.Strings(l)
	}
	return layers, nil
}
