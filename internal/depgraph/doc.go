// Package depgraph turns mined dependency models into the artifacts the
// paper's introduction motivates: beyond being "a support for both manual
// and automated fault localization, a dependency model has various useful
// applications including fault detection, impact prediction and service
// availability requirements determination" (§1.1).
//
// A Graph is built from a directed application→service model (approach
// L3) plus the group→owner mapping, or directly from directed application
// edges. It offers impact analysis (who is affected when a component
// fails), root-cause candidate sets (what a degraded component might be
// suffering from), topological layering, and cycle detection.
//
// See DESIGN.md §3 (System inventory).
package depgraph
