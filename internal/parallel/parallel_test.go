package parallel

import (
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestMapOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		got := Map(workers, 10, func(i int) int { return i * i })
		want := []int{0, 1, 4, 9, 16, 25, 36, 49, 64, 81}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: Map = %v", workers, got)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Errorf("Map over empty input = %v, want nil", got)
	}
	if got := Map(4, -1, func(i int) int { return i }); got != nil {
		t.Errorf("Map over negative n = %v, want nil", got)
	}
}

func TestMapCallsEachIndexOnce(t *testing.T) {
	const n = 1000
	var calls [n]int32
	Map(8, n, func(i int) struct{} {
		atomic.AddInt32(&calls[i], 1)
		return struct{}{}
	})
	for i, c := range calls {
		if c != 1 {
			t.Fatalf("index %d called %d times", i, c)
		}
	}
}

func TestForEach(t *testing.T) {
	out := make([]int, 50)
	ForEach(4, len(out), func(i int) { out[i] = i + 1 })
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestShards(t *testing.T) {
	tests := []struct {
		workers, n int
		want       []Shard
	}{
		{1, 5, []Shard{{0, 5}}},
		{2, 5, []Shard{{0, 3}, {3, 5}}},
		{3, 7, []Shard{{0, 3}, {3, 5}, {5, 7}}},
		{4, 4, []Shard{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{8, 3, []Shard{{0, 1}, {1, 2}, {2, 3}}},
		{0, 4, []Shard{{0, 4}}},
		{3, 0, nil},
	}
	for _, tc := range tests {
		got := Shards(tc.workers, tc.n)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Shards(%d, %d) = %v, want %v", tc.workers, tc.n, got, tc.want)
		}
	}
}

func TestShardsPartition(t *testing.T) {
	for workers := 1; workers <= 10; workers++ {
		for n := 1; n <= 40; n++ {
			shards := Shards(workers, n)
			next := 0
			for _, sh := range shards {
				if sh.Lo != next {
					t.Fatalf("Shards(%d,%d): gap at %d", workers, n, next)
				}
				if sh.Len() < 1 {
					t.Fatalf("Shards(%d,%d): empty shard %v", workers, n, sh)
				}
				next = sh.Hi
			}
			if next != n {
				t.Fatalf("Shards(%d,%d): covers [0,%d), want [0,%d)", workers, n, next, n)
			}
			if len(shards) > workers && workers >= 1 {
				t.Fatalf("Shards(%d,%d): %d shards", workers, n, len(shards))
			}
		}
	}
}

func TestMapShardsOrderedMerge(t *testing.T) {
	// Summing contiguous shard ranges in order must reproduce the
	// sequential prefix structure regardless of worker count.
	const n = 237
	want := Map(1, n, func(i int) int { return i })
	for _, workers := range []int{1, 2, 5, 16} {
		parts := MapShards(workers, n, func(lo, hi int) []int {
			out := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out
		})
		var merged []int
		for _, p := range parts {
			merged = append(merged, p...)
		}
		if !reflect.DeepEqual(merged, want) {
			t.Errorf("workers=%d: ordered merge differs", workers)
		}
	}
}

func TestMapShardsEmpty(t *testing.T) {
	if got := MapShards(4, 0, func(lo, hi int) int { return 1 }); got != nil {
		t.Errorf("MapShards over empty input = %v, want nil", got)
	}
}

func TestMapShardsSingleShardInline(t *testing.T) {
	// The single-shard path must run fn exactly once over the whole range.
	calls := 0
	got := MapShards(1, 9, func(lo, hi int) [2]int {
		calls++
		return [2]int{lo, hi}
	})
	if calls != 1 || len(got) != 1 || got[0] != [2]int{0, 9} {
		t.Errorf("single shard: calls=%d got=%v", calls, got)
	}
}

func TestMapMoreWorkersThanItems(t *testing.T) {
	// Workers far above the item count must neither deadlock nor call any
	// index more than once; clampWorkers caps the pool at n.
	var calls [3]int32
	got := Map(64, len(calls), func(i int) int {
		atomic.AddInt32(&calls[i], 1)
		return i * 10
	})
	if want := []int{0, 10, 20}; !reflect.DeepEqual(got, want) {
		t.Errorf("Map(64, 3) = %v, want %v", got, want)
	}
	for i, c := range calls {
		if c != 1 {
			t.Errorf("index %d called %d times", i, c)
		}
	}
	if parts := MapShards(64, 3, func(lo, hi int) int { return hi - lo }); len(parts) > 3 {
		t.Errorf("MapShards(64, 3) produced %d shards", len(parts))
	}
}

func TestMapShardsZeroItemsMergeSafe(t *testing.T) {
	// Zero items yield nil partials; folding them with a non-nil merge must
	// be a no-op, not a panic — miners always fold whatever comes back.
	parts := MapShards(4, 0, func(lo, hi int) map[string]int {
		return map[string]int{"x": hi - lo}
	})
	if parts != nil {
		t.Fatalf("MapShards over zero items = %v, want nil", parts)
	}
	merged := map[string]int{}
	for _, p := range parts {
		for k, v := range p {
			merged[k] += v //lint:allow maporder integer counts in a test, addition is exact and commutative
		}
	}
	if len(merged) != 0 {
		t.Errorf("merge over zero partials = %v, want empty", merged)
	}
}

func TestMapPanicPropagation(t *testing.T) {
	// A panic in a worker must surface on the calling goroutine, carry the
	// original value, and be the lowest-index panic (what the sequential
	// path would raise) — on both the inline and the parallel path.
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if r != "boom 3" {
					t.Errorf("workers=%d: recovered %v, want \"boom 3\"", workers, r)
				}
			}()
			Map(workers, 10, func(i int) int {
				if i >= 3 {
					panic(fmt.Sprintf("boom %d", i))
				}
				return i
			})
		}()
	}
}

func TestMapShardsPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
			}()
			MapShards(workers, 8, func(lo, hi int) int {
				panic("shard boom")
			})
		}()
	}
}
