package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Config-style worker knob: n ≥ 1 is used as given;
// n ≤ 0 selects runtime.GOMAXPROCS(0), i.e. "as many as the hardware
// allows".
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// clampWorkers bounds the worker count by the amount of work.
func clampWorkers(workers, n int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// firstPanic collects worker panics and keeps the one with the lowest item
// index, so the value re-raised on the caller is the same one the
// sequential path would have raised — panic identity is part of the
// determinism contract, not just results.
type firstPanic struct {
	mu    sync.Mutex
	set   bool
	index int
	value any
}

func (p *firstPanic) record(i int, v any) {
	p.mu.Lock()
	if !p.set || i < p.index {
		p.set, p.index, p.value = true, i, v
	}
	p.mu.Unlock()
}

func (p *firstPanic) repanic() {
	if p.set {
		panic(p.value)
	}
}

// Map computes out[i] = fn(i) for every i in [0, n) using the calling
// goroutine plus at most workers−1 helpers recruited from the shared
// process pool (see pool.go), and returns the results in index order.
// Work items are handed out dynamically (an atomic cursor), so uneven
// per-item cost balances across workers; determinism is unaffected
// because each result is stored at its input index — how many helpers
// actually joined changes timing only, never output. workers ≤ 1 (or
// n ≤ 1) runs inline on the calling goroutine. n ≤ 0 yields nil. If fn
// panics, every remaining item still runs and the panic with the lowest
// item index is re-raised on the calling goroutine — exactly what the
// sequential path would raise.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var fp firstPanic
	var next atomic.Int64
	loop := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						fp.record(i, r)
					}
				}()
				out[i] = fn(i)
			}()
		}
	}
	helpers := sharedPool().recruit(workers-1, loop)
	loop()
	helpers.Wait()
	fp.repanic()
	return out
}

// ForEach runs fn(i) for every i in [0, n) using at most workers
// goroutines, for loop bodies that write their results through the index
// themselves (e.g. into a caller-allocated slice).
func ForEach(workers, n int, fn func(i int)) {
	Map(workers, n, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}

// Shard is a contiguous index range [Lo, Hi) of some indexed input.
type Shard struct{ Lo, Hi int }

// Len returns the number of indices in the shard.
func (s Shard) Len() int { return s.Hi - s.Lo }

// Shards partitions [0, n) into at most workers near-equal contiguous
// shards, in ascending index order. Every index belongs to exactly one
// shard; shard sizes differ by at most one. n ≤ 0 yields nil.
func Shards(workers, n int) []Shard {
	if n <= 0 {
		return nil
	}
	workers = clampWorkers(workers, n)
	out := make([]Shard, 0, workers)
	per, rem := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + per
		if w < rem {
			hi++
		}
		out = append(out, Shard{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// MapShards partitions [0, n) into at most workers contiguous shards,
// computes one partial result per shard concurrently (the calling
// goroutine plus idle helpers recruited from the shared pool), and
// returns the partials in shard order (ascending Lo). The caller folds
// the partials left to right, which makes the merged output a function of
// the input alone — the ordered-merge half of the determinism contract.
// Shard geometry derives from the workers knob alone, never from how many
// helpers actually joined, so the partials are identical at any pool
// occupancy. A single shard (workers ≤ 1 or n small) runs fn(0, n)
// inline, which is exactly the sequential path. n ≤ 0 yields nil. If fn
// panics, the remaining shards still run and the panic with the lowest
// shard index is re-raised on the calling goroutine.
func MapShards[T any](workers, n int, fn func(lo, hi int) T) []T {
	shards := Shards(workers, n)
	if len(shards) == 0 {
		return nil
	}
	if len(shards) == 1 {
		return []T{fn(0, n)}
	}
	var fp firstPanic
	out := make([]T, len(shards))
	var next atomic.Int64
	loop := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(shards) {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						fp.record(i, r)
					}
				}()
				out[i] = fn(shards[i].Lo, shards[i].Hi)
			}()
		}
	}
	helpers := sharedPool().recruit(len(shards)-1, loop)
	loop()
	helpers.Wait()
	fp.repanic()
	return out
}
