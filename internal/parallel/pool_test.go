package parallel

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestPoolMapEquivalence pins the shared-pool contract: results are
// identical whether helpers joined or not, at every worker count.
func TestPoolMapEquivalence(t *testing.T) {
	const n = 1000
	want := Map(1, n, func(i int) int { return i * i })
	for _, w := range []int{2, 4, 8, 64} {
		got := Map(w, n, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

// TestPoolNestedMap runs Map calls inside Map items: nesting must neither
// deadlock (recruitment only ever hands work to provably idle helpers)
// nor perturb results.
func TestPoolNestedMap(t *testing.T) {
	outer := Map(8, 16, func(i int) int {
		inner := Map(8, 32, func(j int) int { return i*100 + j })
		sum := 0
		for _, v := range inner {
			sum += v
		}
		return sum
	})
	for i, got := range outer {
		want := 0
		for j := 0; j < 32; j++ {
			want += i*100 + j
		}
		if got != want {
			t.Fatalf("nested out[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestPoolSaturation floods the pool with many concurrent MapShards calls
// (mimicking a daemon full of tenant streams) and checks every call's
// ordered merge stays correct even when most calls find no idle helper.
func TestPoolSaturation(t *testing.T) {
	const streams = 32
	results := Map(streams, streams, func(s int) int {
		partials := MapShards(8, 4096, func(lo, hi int) int {
			sum := 0
			for i := lo; i < hi; i++ {
				sum += s + i
			}
			return sum
		})
		total := 0
		for _, p := range partials {
			total += p
		}
		return total
	})
	for s, got := range results {
		want := 0
		for i := 0; i < 4096; i++ {
			want += s + i
		}
		if got != want {
			t.Fatalf("stream %d total = %d, want %d", s, got, want)
		}
	}
}

// TestPoolPanicIdentity: the lowest-index panic is re-raised on the caller
// even when the panicking item ran on a pool helper.
func TestPoolPanicIdentity(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a panic")
		}
		if s, ok := r.(string); !ok || s != "item 3" {
			t.Fatalf("recovered %v, want the lowest-index panic \"item 3\"", r)
		}
	}()
	var ran atomic.Int64
	Map(8, 64, func(i int) int {
		ran.Add(1)
		if i >= 3 && i <= 10 {
			panic("item " + string(rune('0'+i%10)))
		}
		return i
	})
}

// TestSetPoolSizeAfterStart: once the pool runs, resizing is refused with
// an error that names the live helper count.
func TestSetPoolSizeAfterStart(t *testing.T) {
	Map(2, 8, func(i int) int { return i }) // force the pool to start
	err := SetPoolSize(4)
	if err == nil || !strings.Contains(err.Error(), "already runs") {
		t.Fatalf("SetPoolSize after start = %v, want refusal", err)
	}
	s := Stats()
	if s.Helpers < 1 {
		t.Fatalf("Stats().Helpers = %d, want ≥ 1 after first parallel call", s.Helpers)
	}
}
