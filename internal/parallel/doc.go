// Package parallel provides the shared concurrency primitives of the
// miners: a bounded worker pool with index-sharded fan-out and a
// deterministic, ordered merge of per-shard partial results.
//
// Every miner in the tree (approaches L1–L3 and the Agrawal et al.
// baseline) exposes a Workers knob in its Config and routes its hot loop
// through this package, so there is exactly one concurrency idiom to
// reason about. The contract is strict determinism: for a fixed input and
// configuration the mined result is bit-identical for every worker count,
// because output positions are fixed by input index (Map) or shard order
// (MapShards) — never by goroutine scheduling or map iteration order.
// Workers == 1 degenerates to a plain inline loop on the calling
// goroutine, preserving the exact sequential path for A/B testing.
//
// See DESIGN.md §6 (Concurrency model).
package parallel
