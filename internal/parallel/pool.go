package parallel

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The shared helper pool.
//
// Map and MapShards used to spawn fresh goroutines per call, which is fine
// for one miner per process but multiplies into pool-per-stream behaviour
// the moment many follow streams mine concurrently (a daemon hosting N
// tenants would run up to N×Workers goroutines at once). Instead the
// package now owns one process-wide pool of helper goroutines, sized to
// the hardware (or to SetPoolSize), and every Map/MapShards call recruits
// *idle* helpers from it:
//
//   - the calling goroutine always works through the item cursor itself,
//     so a call makes progress even when every helper is busy serving
//     other streams — recruitment is strictly an accelerator;
//   - recruitment is a non-blocking handoff on an unbuffered channel: it
//     succeeds only when a helper is parked in receive at that instant,
//     so a task is never queued behind a busy helper and the pool can
//     never deadlock, even for nested Map calls running on pool helpers;
//   - the per-call Workers knob still caps how many helpers one call may
//     recruit (workers−1, plus the caller), so a tenant configured with
//     Workers=1 stays sequential no matter how idle the pool is.
//
// Determinism is untouched by any of this: results are written through
// their input index and shard geometry derives from the Workers knob
// alone, so how many helpers actually joined — zero or all — can change
// only the wall-clock time, never a byte of output.

// helperTask is one recruited unit of work: run the loop, then signal the
// recruiting call's WaitGroup.
type helperTask struct {
	run  func()
	done *sync.WaitGroup
}

// pool is the process-wide helper pool. offers is unbuffered on purpose:
// see the package comment above — a successful send proves a helper was
// idle, which is what makes recruitment deadlock-free.
type pool struct {
	offers chan helperTask
	size   int
}

var (
	poolMu     sync.Mutex
	poolShared *pool
	poolSize   int // 0: default to Workers(0) at first use

	// poolHandoffs counts tasks picked up by pool helpers; poolMisses
	// counts recruitment offers no idle helper accepted. Observability
	// only (the split is timing-dependent); neither influences results.
	poolHandoffs atomic.Int64
	poolMisses   atomic.Int64
)

// SetPoolSize fixes the shared pool's helper count before first use.
// n ≤ 0 selects the hardware default (GOMAXPROCS). Once the pool has
// started — lazily, on the first parallel call with workers > 1 — the
// size is immutable and SetPoolSize returns an error: resizing a live
// pool would orphan parked helpers mid-recruitment for no operational
// gain (callers size it once at process start, e.g. depmined -pool).
func SetPoolSize(n int) error {
	poolMu.Lock()
	defer poolMu.Unlock()
	if poolShared != nil {
		return fmt.Errorf("parallel: the shared pool already runs %d helpers; set the size before the first parallel call", poolShared.size)
	}
	poolSize = n
	return nil
}

// PoolStats describes the shared pool: its helper count (0 until the pool
// has lazily started) and the cumulative recruitment outcomes.
type PoolStats struct {
	Helpers  int   `json:"helpers"`
	Handoffs int64 `json:"handoffs"`
	Misses   int64 `json:"misses"`
}

// Stats returns the shared pool's current statistics.
func Stats() PoolStats {
	poolMu.Lock()
	defer poolMu.Unlock()
	s := PoolStats{Handoffs: poolHandoffs.Load(), Misses: poolMisses.Load()}
	if poolShared != nil {
		s.Helpers = poolShared.size
	}
	return s
}

// sharedPool returns the process pool, starting its helpers on first use.
func sharedPool() *pool {
	poolMu.Lock()
	defer poolMu.Unlock()
	if poolShared == nil {
		size := Workers(poolSize)
		poolShared = &pool{offers: make(chan helperTask), size: size}
		for i := 0; i < size; i++ {
			go poolShared.helper()
		}
	}
	return poolShared
}

// helper is one pool goroutine: park in receive, run what arrives, repeat.
// Helpers live for the process lifetime — the pool is process-global
// infrastructure, like the runtime's own scheduler threads.
func (p *pool) helper() {
	for t := range p.offers {
		t.run()
		t.done.Done()
	}
}

// recruit offers run to at most k idle helpers and returns the WaitGroup
// that joins whichever helpers accepted. It never blocks: an offer that
// finds no parked helper is dropped (the caller's own loop still drains
// every item). The first failed offer ends recruitment — with an
// unbuffered channel a failure means no helper is parked right now, so
// further offers would almost surely fail too, and run's cursor sharing
// makes extra helpers a bonus, not a need.
func (p *pool) recruit(k int, run func()) *sync.WaitGroup {
	var wg sync.WaitGroup
	t := helperTask{run: run, done: &wg}
	for i := 0; i < k; i++ {
		wg.Add(1)
		select {
		case p.offers <- t:
			poolHandoffs.Add(1)
		default:
			wg.Done()
			poolMisses.Add(int64(k - i))
			return &wg
		}
	}
	return &wg
}
