package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Registry holds the named instruments of one run. The zero value is not
// usable; construct with New or NewWithClock. A nil *Registry is the
// sanctioned "metrics off" collector: every method on it (and on the nil
// instruments it hands out) is a no-op, so instrumented code never needs a
// nil check.
//
// All instruments are safe for concurrent use; lookups are create-on-first-
// use and return the same instrument for the same name thereafter.
type Registry struct {
	clock func() int64 // monotonic nanoseconds; nil = timings disabled

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	trace    *Span // last completed root span
}

// New returns a registry without a clock: counters and gauges collect
// normally, every duration observes as zero. This is the configuration the
// equivalence tests use — with no clock, even histogram contents are a pure
// function of the input.
func New() *Registry {
	return NewWithClock(nil)
}

// NewWithClock returns a registry whose timings are read from clock
// (monotonic nanoseconds). Pass SystemClock at a process edge for real
// measurements; pass nil to disable timings.
func NewWithClock(clock func() int64) *Registry {
	return &Registry{
		clock:    clock,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// now reads the registry clock (0 without one).
func (r *Registry) now() int64 {
	if r == nil || r.clock == nil {
		return 0
	}
	return r.clock()
}

// Counter returns the named counter, creating it on first use. Nil registry
// yields a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil registry
// yields a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Nil
// registry yields a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Timer starts timing a section and returns the function that stops it,
// recording the elapsed nanoseconds into the named histogram:
//
//	defer reg.Timer("l2.mine_ns")()
//
// Without a clock the observation is recorded with a zero duration, so
// histogram counts stay meaningful either way.
func (r *Registry) Timer(name string) func() {
	if r == nil {
		return func() {}
	}
	h := r.Histogram(name)
	start := r.now()
	return func() { h.Observe(r.now() - start) }
}

// Counter is a monotonically increasing count of work done. Counter values
// are part of the determinism contract: for a fixed input and configuration
// they must be identical at every worker count, which holds as long as
// increments count input-determined work (entries, pairs, tests), never
// scheduling artifacts (shards, retries, queue depths — put those in
// histograms).
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time level (live sessions, window occupancy). Like
// counters, gauge values must be input-determined at snapshot points.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value (no-op on nil).
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n, which may be negative (no-op on nil).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of exponential histogram buckets: bucket i
// counts observations v with bitlen(v) == i, i.e. v in [2^(i-1), 2^i).
// 64 buckets cover every non-negative int64; negative observations clamp
// into bucket 0.
const histBuckets = 64

// Histogram aggregates a distribution of int64 observations (typically
// durations in nanoseconds) into power-of-two buckets with count, sum, min
// and max. Histograms are the one instrument allowed to hold
// scheduling-dependent values (per-shard busy time, queue waits), so they
// are excluded from the cross-worker-count equality the counters must
// satisfy.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// bucketOf returns the bucket index of v: the bit length of v, clamping
// negatives to 0.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	if n >= histBuckets {
		n = histBuckets - 1
	}
	return n
}

// Meter instruments the body of an index fan-out (parallel.Map /
// parallel.ForEach) for one named stage: it counts items into
// "<stage>.items", and records per-item busy time into "<stage>.busy_ns"
// and the queue wait from fan-out creation to item start into
// "<stage>.wait_ns". The item count equals the fan-out size, so the counter
// is worker-count independent; the timings are not and live in histograms.
// With a nil registry the body is returned unchanged (zero overhead).
func Meter[T any](r *Registry, stage string, fn func(i int) T) func(i int) T {
	if r == nil {
		return fn
	}
	items := r.Counter(stage + ".items")
	busy := r.Histogram(stage + ".busy_ns")
	wait := r.Histogram(stage + ".wait_ns")
	created := r.now()
	return func(i int) T {
		t0 := r.now()
		out := fn(i)
		busy.Observe(r.now() - t0)
		wait.Observe(t0 - created)
		items.Inc()
		return out
	}
}

// Classes returns one counter per class name under a shared prefix, keyed
// by class for direct indexing — the per-fault-class drop accounting of the
// hardened ingest path: Classes(r, "ingest.lines_", "malformed", ...) maps
// "malformed" to the counter "ingest.lines_malformed". Class counts must
// stay input-determined, like every counter. A nil registry yields a map of
// nil (no-op) counters, so callers index and increment unconditionally.
func Classes(r *Registry, prefix string, names ...string) map[string]*Counter {
	out := make(map[string]*Counter, len(names))
	for _, name := range names {
		out[name] = r.Counter(prefix + name)
	}
	return out
}

// MeterShards instruments the body of a shard fan-out (parallel.MapShards)
// for one named stage, recording per-shard busy time into
// "<stage>.busy_ns". Unlike Meter it deliberately keeps no counter: the
// number of shards depends on the Workers setting, and counters must not.
func MeterShards[T any](r *Registry, stage string, fn func(lo, hi int) T) func(lo, hi int) T {
	if r == nil {
		return fn
	}
	busy := r.Histogram(stage + ".busy_ns")
	return func(lo, hi int) T {
		t0 := r.now()
		out := fn(lo, hi)
		busy.Observe(r.now() - t0)
		return out
	}
}
