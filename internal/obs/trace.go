package obs

import "sync"

// Span is one node of a run's timing tree: a named section with a start and
// end offset (registry-clock nanoseconds) and ordered children. Spans are
// created with Registry.StartTrace and Span.Child and closed with End; a
// root span publishes itself to the registry on End, becoming the trace
// returned by Snapshot (last completed root wins).
//
// Child creation and End are safe for concurrent use, but the intended
// shape is one span per pipeline stage on the orchestrating goroutine —
// per-item work belongs in Meter histograms, not spans.
type Span struct {
	reg    *Registry
	parent *Span
	name   string
	start  int64

	mu       sync.Mutex
	end      int64
	done     bool
	children []*Span
}

// StartTrace opens a root span. On a nil registry it returns nil, and every
// Span method is nil-receiver safe, so call sites need no guards.
func (r *Registry) StartTrace(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, name: name, start: r.now()}
}

// Child opens a sub-span under s (no-op, returning nil, on a nil span).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{reg: s.reg, parent: s, name: name, start: s.reg.now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, recording its end offset. Ending a root span stores
// it as the registry's current trace. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.end = s.reg.now()
	s.mu.Unlock()
	if s.parent == nil {
		s.reg.mu.Lock()
		s.reg.trace = s
		s.reg.mu.Unlock()
	}
}

// SpanSnapshot is the immutable, JSON-ready form of a span tree.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	StartNS    int64          `json:"start_ns"`
	DurationNS int64          `json:"duration_ns"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// snapshot converts the span tree rooted at s. Open spans are reported with
// the current clock reading as their provisional end.
func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	end := s.end
	if !s.done {
		end = s.reg.now()
	}
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	out := SpanSnapshot{Name: s.name, StartNS: s.start, DurationNS: end - s.start}
	for _, c := range kids {
		out.Children = append(out.Children, c.snapshot())
	}
	return out
}
