package obs

import (
	"sort"
	"sync"
)

// Tenants is a named collection of registries — one per tenant stream of a
// multi-stream process (cmd/depmined). Each tenant's instruments live in
// its own registry, so one stream's counters never mix with a neighbor's:
// per-tenant metric isolation is the observability half of the tenant
// determinism contract. Lookups are create-on-first-use, like the registry
// instruments themselves. A nil *Tenants hands out nil registries, which
// are the sanctioned "metrics off" collectors.
type Tenants struct {
	clock func() int64

	mu sync.Mutex
	m  map[string]*Registry
}

// NewTenants returns an empty tenant collection whose registries read
// timings from clock (nil disables timings, the deterministic-test
// configuration).
func NewTenants(clock func() int64) *Tenants {
	return &Tenants{clock: clock, m: make(map[string]*Registry)}
}

// Get returns the named tenant's registry, creating it on first use. A nil
// collection yields a nil (no-op) registry.
func (t *Tenants) Get(name string) *Registry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.m[name]
	if r == nil {
		r = NewWithClock(t.clock)
		t.m[name] = r
	}
	return r
}

// Drop discards the named tenant's registry; the next Get starts fresh.
// No-op on nil or when the tenant was never seen.
func (t *Tenants) Drop(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.m, name)
	t.mu.Unlock()
}

// Names returns the known tenant names in sorted order (nil collection:
// none) — the stable iteration order every aggregate snapshot uses.
func (t *Tenants) Names() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]string, 0, len(t.m))
	for name := range t.m {
		out = append(out, name)
	}
	t.mu.Unlock()
	sort.Strings(out)
	return out
}
