package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"logscape/internal/obs"
	"logscape/internal/parallel"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *obs.Registry
	r.Counter("c").Add(5)
	r.Counter("c").Inc()
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(-2)
	r.Histogram("h").Observe(3)
	r.Timer("t")()
	r.StartTrace("root").Child("kid").End()
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 || s.Trace != nil {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil WriteJSON produced invalid JSON: %q", buf.String())
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := obs.New()
	const goroutines, perG = 8, 10000
	parallel.ForEach(goroutines, goroutines, func(i int) {
		c := r.Counter("shared")
		g := r.Gauge("level")
		h := r.Histogram("lat")
		for j := 0; j < perG; j++ {
			c.Inc()
			g.Add(1)
			h.Observe(int64(j))
		}
	})
	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("level").Value(); got != goroutines*perG {
		t.Fatalf("gauge = %d, want %d", got, goroutines*perG)
	}
	h := r.Snapshot().Histograms["lat"]
	if h.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count, goroutines*perG)
	}
	if h.Min != 0 || h.Max != perG-1 {
		t.Fatalf("histogram min/max = %d/%d, want 0/%d", h.Min, h.Max, perG-1)
	}
	var total int64
	for _, n := range h.Buckets {
		total += n
	}
	if total != h.Count {
		t.Fatalf("bucket sum = %d, want %d", total, h.Count)
	}
}

func TestSnapshotSortOrderStable(t *testing.T) {
	// Populate two registries with the same instruments in opposite
	// creation order; serialized snapshots must be byte-identical.
	names := []string{"zeta", "alpha", "mid", "beta"}
	fill := func(order []string) []byte {
		r := obs.New()
		for _, n := range order {
			r.Counter("c." + n).Add(int64(len(n)))
			r.Gauge("g." + n).Set(int64(len(n)))
			r.Histogram("h." + n).Observe(int64(len(n)))
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	fwd := fill(names)
	rev := make([]string, len(names))
	for i, n := range names {
		rev[len(names)-1-i] = n
	}
	if got := fill(rev); !bytes.Equal(fwd, got) {
		t.Fatalf("snapshot depends on creation order:\n%s\nvs\n%s", fwd, got)
	}
	// Keys must appear in sorted order in the raw bytes.
	doc := string(fwd)
	if strings.Index(doc, "c.alpha") > strings.Index(doc, "c.zeta") {
		t.Fatalf("counter keys not sorted:\n%s", doc)
	}
}

func TestCounterDocumentExcludesHistograms(t *testing.T) {
	r := obs.New()
	r.Counter("work").Add(3)
	r.Gauge("live").Set(2)
	r.Histogram("busy_ns").Observe(12345)
	b, err := r.CounterDocument()
	if err != nil {
		t.Fatalf("CounterDocument: %v", err)
	}
	if strings.Contains(string(b), "busy_ns") {
		t.Fatalf("counter document leaks histograms:\n%s", b)
	}
	if !strings.Contains(string(b), `"work": 3`) {
		t.Fatalf("counter document missing counter:\n%s", b)
	}
}

func TestTraceTree(t *testing.T) {
	var tick int64
	clock := func() int64 { tick += 10; return tick }
	r := obs.NewWithClock(clock)
	root := r.StartTrace("run")
	a := root.Child("ingest")
	a.End()
	b := root.Child("mine")
	b1 := b.Child("l2")
	b1.End()
	b.End()
	root.End()

	s := r.Snapshot()
	if s.Trace == nil {
		t.Fatal("no trace in snapshot")
	}
	tr := *s.Trace
	if tr.Name != "run" || len(tr.Children) != 2 {
		t.Fatalf("root = %+v", tr)
	}
	if tr.Children[0].Name != "ingest" || tr.Children[1].Name != "mine" {
		t.Fatalf("children out of order: %+v", tr.Children)
	}
	if len(tr.Children[1].Children) != 1 || tr.Children[1].Children[0].Name != "l2" {
		t.Fatalf("grandchildren wrong: %+v", tr.Children[1])
	}
	if tr.DurationNS <= 0 {
		t.Fatalf("root duration = %d, want > 0", tr.DurationNS)
	}
	for _, c := range tr.Children {
		if c.StartNS < tr.StartNS {
			t.Fatalf("child starts before parent: %+v", tr)
		}
	}
	// End is idempotent and a second root replaces the first.
	root.End()
	r.StartTrace("second").End()
	if got := r.Snapshot().Trace.Name; got != "second" {
		t.Fatalf("last completed root = %q, want second", got)
	}
}

func TestTimerAndClocklessHistogram(t *testing.T) {
	var tick int64
	r := obs.NewWithClock(func() int64 { tick += 100; return tick })
	stop := r.Timer("phase_ns")
	stop()
	h := r.Snapshot().Histograms["phase_ns"]
	if h.Count != 1 || h.Sum <= 0 {
		t.Fatalf("timed histogram = %+v", h)
	}

	// Without a clock, durations observe as zero but counts still tick.
	r2 := obs.New()
	r2.Timer("phase_ns")()
	h2 := r2.Snapshot().Histograms["phase_ns"]
	if h2.Count != 1 || h2.Sum != 0 {
		t.Fatalf("clockless histogram = %+v", h2)
	}
}

func TestMeterCountsItems(t *testing.T) {
	r := obs.New()
	fn := obs.Meter(r, "stage", func(i int) int { return i * i })
	out := parallel.Map(4, 100, fn)
	for i, v := range out {
		if v != i*i {
			t.Fatalf("meter changed result at %d: %d", i, v)
		}
	}
	if got := r.Counter("stage.items").Value(); got != 100 {
		t.Fatalf("stage.items = %d, want 100", got)
	}
	// Nil registry returns the function unchanged.
	base := func(i int) int { return i }
	if wrapped := obs.Meter[int](nil, "s", base); wrapped(7) != 7 {
		t.Fatal("nil-registry Meter broke the function")
	}
}

func TestMeterShardsKeepsNoCounter(t *testing.T) {
	r := obs.New()
	fn := obs.MeterShards(r, "shards", func(lo, hi int) int { return hi - lo })
	parallel.MapShards(4, 100, fn)
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatalf("MeterShards created counters: %v", s.Counters)
	}
	if s.Histograms["shards.busy_ns"].Count == 0 {
		t.Fatal("MeterShards recorded no busy time")
	}
}

func TestSystemClockMonotonic(t *testing.T) {
	a := obs.SystemClock()
	b := obs.SystemClock()
	if a < 0 || b < a {
		t.Fatalf("SystemClock not monotonic: %d then %d", a, b)
	}
}

func TestClassesCounters(t *testing.T) {
	r := obs.New()
	cs := obs.Classes(r, "ingest.lines_", "malformed", "oversized", "quarantined")
	if len(cs) != 3 {
		t.Fatalf("Classes returned %d counters, want 3", len(cs))
	}
	cs["malformed"].Add(2)
	cs["oversized"].Inc()
	if got := r.Counter("ingest.lines_malformed").Value(); got != 2 {
		t.Errorf("ingest.lines_malformed = %d, want 2", got)
	}
	if got := r.Counter("ingest.lines_oversized").Value(); got != 1 {
		t.Errorf("ingest.lines_oversized = %d, want 1", got)
	}
	if got := r.Counter("ingest.lines_quarantined").Value(); got != 0 {
		t.Errorf("ingest.lines_quarantined = %d, want 0", got)
	}
}

func TestClassesNilRegistry(t *testing.T) {
	cs := obs.Classes(nil, "x.", "a", "b")
	if len(cs) != 2 {
		t.Fatalf("Classes returned %d counters, want 2", len(cs))
	}
	cs["a"].Inc() // must be a safe no-op
	if got := cs["b"].Value(); got != 0 {
		t.Errorf("nil-registry counter value = %d, want 0", got)
	}
}
