package obs

import "time"

// processStart anchors SystemClock so its readings are small monotonic
// offsets rather than absolute times.
var processStart = time.Now() //lint:allow wallclock SystemClock is the single sanctioned wall-clock edge of the metrics layer; mining code only ever receives it as an injected clock

// SystemClock returns monotonic nanoseconds since process start. It is the
// one place the observability layer touches the wall clock: CLIs pass it to
// NewWithClock at the process edge, mining code only ever sees the injected
// func. Tests and equivalence harnesses use New() (no clock) instead.
func SystemClock() int64 {
	return int64(time.Since(processStart)) //lint:allow wallclock SystemClock is the single sanctioned wall-clock edge of the metrics layer; mining code only ever receives it as an injected clock
}
