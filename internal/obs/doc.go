// Package obs is the pipeline's deterministic observability layer: a
// registry of named counters, gauges and duration histograms, a lightweight
// span tracer, and a stable JSON snapshot of both — the numbers behind
// `depmine -stats`, the `/metrics` and `/trace` endpoints of follow mode,
// and the metrics section of evalrun's report.
//
// Two properties make the layer safe to thread through the whole mining
// pipeline:
//
//   - Collection never perturbs results. A nil *Registry is a valid no-op
//     collector (every method is nil-receiver safe), so un-instrumented
//     runs pay nothing, and instrumented runs only ever *add* counts —
//     mined models are byte-identical with metrics on or off, at any
//     worker count (asserted by determinism_test.go).
//   - Counter and gauge values are themselves deterministic: they count
//     work that is a pure function of the input (entries ingested, pairs
//     tested, G² evaluations), never scheduling. Only histograms may hold
//     timings (worker busy time, queue waits), and only when a clock is
//     injected; the wall clock enters through exactly one sanctioned edge,
//     SystemClock (see the wallclock analyzer).
//
// See DESIGN.md §10 "Observability" for the metric name inventory and the
// snapshot JSON schema, and docs/operations.md for the operator's view.
package obs
