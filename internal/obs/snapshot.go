package obs

import (
	"encoding/json"
	"io"
	"strconv"
)

// HistogramSnapshot is the immutable form of one histogram. Buckets maps
// the *upper bound* of each occupied power-of-two bucket (as a decimal
// string, "1", "2", "4", …) to its count; empty buckets are omitted so the
// document stays small. Min/Max are meaningful only when Count > 0.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Min     int64            `json:"min"`
	Max     int64            `json:"max"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot is the full metrics document of a registry at one instant: every
// counter, gauge and histogram plus the last completed trace. Its JSON
// encoding is stable — encoding/json emits map keys in sorted order, and
// all other fields are scalars or ordered slices — so two snapshots with
// equal contents serialize byte-identically.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Trace      *SpanSnapshot                `json:"trace,omitempty"`
}

// Snapshot captures the registry's current state. On a nil registry it
// returns an empty (but fully initialized) document, so callers can always
// serialize the result.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return out
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	trace := r.trace
	r.mu.Unlock()

	for k, c := range counters {
		out.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		out.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		out.Histograms[k] = h.snapshot()
	}
	if trace != nil {
		t := trace.snapshot()
		out.Trace = &t
	}
	return out
}

// CounterDocument returns just the counters and gauges as sorted JSON —
// the part of the document that must be identical across worker counts.
func (r *Registry) CounterDocument() ([]byte, error) {
	s := r.Snapshot()
	return json.MarshalIndent(struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}{s.Counters, s.Gauges}, "", "  ")
}

// WriteJSON writes the snapshot as indented JSON with a trailing newline.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Min:     h.min.Load(),
		Max:     h.max.Load(),
		Buckets: map[string]int64{},
	}
	if out.Count == 0 {
		out.Min, out.Max = 0, 0
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			out.Buckets[bucketLabel(i)] = n
		}
	}
	return out
}

// bucketLabel renders bucket i's upper bound 2^i as a decimal string
// (bucket 0 holds only v <= 0 and is labelled "0").
func bucketLabel(i int) string {
	if i == 0 {
		return "0"
	}
	return strconv.FormatUint(uint64(1)<<uint(i), 10)
}
