package stats

import (
	"fmt"
	"math"
)

// ContingencyTable is a 2×2 contingency table in the notation of Evert's
// work on word co-occurrence (the UCS toolkit the paper's approach L2 builds
// on). For a bigram type (A, B) extracted from log sessions:
//
//	O11 — bigrams whose first element is A and second is B
//	O12 — first element is A, second is not B
//	O21 — first element is not A, second is B
//	O22 — neither
//
// Figure 4 of the paper shows the table for the running example's bigram
// type (A2, A3): O11 = 2, O21 = 0, O12 = 1, O22 = 5.
type ContingencyTable struct {
	O11, O12, O21, O22 float64
}

// N returns the total number of observations in the table.
func (t ContingencyTable) N() float64 { return t.O11 + t.O12 + t.O21 + t.O22 }

// R1 returns the first row marginal (first element is A).
func (t ContingencyTable) R1() float64 { return t.O11 + t.O12 }

// R2 returns the second row marginal.
func (t ContingencyTable) R2() float64 { return t.O21 + t.O22 }

// C1 returns the first column marginal (second element is B).
func (t ContingencyTable) C1() float64 { return t.O11 + t.O21 }

// C2 returns the second column marginal.
func (t ContingencyTable) C2() float64 { return t.O12 + t.O22 }

// Expected returns the expected counts (E11, E12, E21, E22) under the null
// hypothesis of independence of rows and columns.
func (t ContingencyTable) Expected() (e11, e12, e21, e22 float64) {
	n := t.N()
	if n == 0 {
		return 0, 0, 0, 0
	}
	e11 = t.R1() * t.C1() / n
	e12 = t.R1() * t.C2() / n
	e21 = t.R2() * t.C1() / n
	e22 = t.R2() * t.C2() / n
	return
}

// Valid reports whether the table has non-negative cells and a positive
// total.
func (t ContingencyTable) Valid() bool {
	return t.O11 >= 0 && t.O12 >= 0 && t.O21 >= 0 && t.O22 >= 0 && t.N() > 0
}

// String renders the table in the layout of figure 4.
func (t ContingencyTable) String() string {
	return fmt.Sprintf("[[%g %g] [%g %g]]", t.O11, t.O21, t.O12, t.O22)
}

// xlogx returns x·log(x) with the convention 0·log 0 = 0.
func xlogx(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * math.Log(x)
}

// LogLikelihoodG2 returns Dunning's log-likelihood ratio statistic G² for
// the table ("Accurate methods for the statistics of surprise and
// coincidence", Computational Linguistics 1993 — reference [14] of the
// paper). Under independence G² follows asymptotically a chi-squared
// distribution with one degree of freedom, and it behaves much better than
// Pearson's X² on the heavily skewed tables typical of co-occurrence data,
// which is why approach L2 adopts it.
//
// G² = 2 · Σ O·log(O/E), computed in the entropy form that is numerically
// exact for zero cells.
func LogLikelihoodG2(t ContingencyTable) float64 {
	n := t.N()
	if n == 0 {
		return 0
	}
	g2 := 2 * (xlogx(t.O11) + xlogx(t.O12) + xlogx(t.O21) + xlogx(t.O22) -
		xlogx(t.R1()) - xlogx(t.R2()) - xlogx(t.C1()) - xlogx(t.C2()) +
		xlogx(n))
	if g2 < 0 {
		// Guard against negative rounding residue for near-independent
		// tables.
		return 0
	}
	return g2
}

// PearsonX2 returns Pearson's chi-squared statistic X² for the table. It is
// provided for the ablation comparing Dunning's test against the "more
// common test by Pearson" the paper mentions. Tables with a zero marginal
// yield 0.
func PearsonX2(t ContingencyTable) float64 {
	n := t.N()
	if n == 0 {
		return 0
	}
	den := t.R1() * t.R2() * t.C1() * t.C2()
	if den == 0 {
		return 0
	}
	d := t.O11*t.O22 - t.O12*t.O21
	return n * d * d / den
}

// OddsRatio returns the sample odds ratio O11·O22 / (O12·O21). It returns
// +Inf when the denominator is zero and the numerator positive, and NaN for
// a 0/0 table.
func OddsRatio(t ContingencyTable) float64 {
	num := t.O11 * t.O22
	den := t.O12 * t.O21
	return num / den
}

// Dice returns the Dice coefficient 2·O11 / (R1 + C1), a simple association
// measure from the collocation-extraction literature.
func Dice(t ContingencyTable) float64 {
	den := t.R1() + t.C1()
	if den == 0 {
		return 0
	}
	return 2 * t.O11 / den
}

// PointwiseMI returns the pointwise mutual information log(O11/E11). It
// returns −Inf when O11 = 0 and NaN for an empty table.
func PointwiseMI(t ContingencyTable) float64 {
	e11, _, _, _ := t.Expected()
	return math.Log(t.O11 / e11)
}

// PositiveAssociation reports whether the observed joint count exceeds its
// expectation under independence, i.e. whether the association, if any, is
// attraction rather than repulsion. Both G² and X² are two-sided statistics,
// so a one-sided collocation decision must combine them with this check.
func PositiveAssociation(t ContingencyTable) bool {
	e11, _, _, _ := t.Expected()
	return t.O11 > e11
}

// AssociationTest is the outcome of a one-sided association test on a 2×2
// contingency table.
type AssociationTest struct {
	Table ContingencyTable
	// G2 is Dunning's log-likelihood ratio statistic.
	G2 float64
	// PValue is the two-sided asymptotic p-value of G2 (chi-squared, 1 df).
	PValue float64
	// Positive indicates attraction (O11 above expectation).
	Positive bool
}

// TestAssociation computes Dunning's test for the table.
func TestAssociation(t ContingencyTable) AssociationTest {
	g2 := LogLikelihoodG2(t)
	return AssociationTest{
		Table:    t,
		G2:       g2,
		PValue:   ChiSquaredSF(g2, 1),
		Positive: PositiveAssociation(t),
	}
}

// Significant reports whether the test indicates a positive association at
// significance level alpha (e.g. 0.01).
func (a AssociationTest) Significant(alpha float64) bool {
	return a.Positive && a.PValue < alpha
}
