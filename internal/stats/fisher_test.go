package stats

import (
	"math"
	"testing"
)

func TestFisherExactKnownValue(t *testing.T) {
	// Fisher's original tea-tasting table: [[3,1],[1,3]].
	// One-sided p = P(X ≥ 3) = (C(4,3)C(4,1) + C(4,4)C(4,0)) / C(8,4)
	//             = (16 + 1) / 70 = 0.242857...
	tab := ContingencyTable{O11: 3, O12: 1, O21: 1, O22: 3}
	one, two := FisherExact(tab)
	if !almostEqual(one, 17.0/70.0, 1e-12) {
		t.Errorf("one-sided p = %v, want %v", one, 17.0/70.0)
	}
	// Two-sided doubles by symmetry here.
	if !almostEqual(two, 34.0/70.0, 1e-12) {
		t.Errorf("two-sided p = %v, want %v", two, 34.0/70.0)
	}
}

func TestFisherExactExtremeTable(t *testing.T) {
	// Perfect association: one-sided p = 1/C(8,4).
	tab := ContingencyTable{O11: 4, O12: 0, O21: 0, O22: 4}
	one, _ := FisherExact(tab)
	if !almostEqual(one, 1.0/70.0, 1e-12) {
		t.Errorf("p = %v, want 1/70", one)
	}
}

func TestFisherExactDegenerate(t *testing.T) {
	cases := []ContingencyTable{
		{},                               // empty
		{O11: 0, O12: 0, O21: 3, O22: 3}, // zero row margin
		{O11: 0, O12: 3, O21: 0, O22: 3}, // zero column margin
		{O11: 2, O12: 3, O21: 4, O22: 0}, // full row — valid but check no panic
	}
	for i, tab := range cases {
		one, two := FisherExact(tab)
		if math.IsNaN(one) || math.IsNaN(two) || one < 0 || one > 1 || two < 0 || two > 1 {
			t.Errorf("case %d: p = %v, %v", i, one, two)
		}
	}
	if one, two := FisherExact(ContingencyTable{O11: -1, O12: 1, O21: 1, O22: 1}); one != 1 || two != 1 {
		t.Error("negative cell should give p = 1")
	}
}

func TestFisherAgreesWithG2LargeCounts(t *testing.T) {
	// For large balanced tables the exact and asymptotic p-values converge.
	tab := ContingencyTable{O11: 60, O12: 40, O21: 40, O22: 60}
	one, _ := FisherExact(tab)
	g2p := ChiSquaredSF(LogLikelihoodG2(tab), 1) / 2 // one-sided
	if ratio := one / g2p; ratio < 0.5 || ratio > 2 {
		t.Errorf("Fisher %v vs G²/2 %v diverge", one, g2p)
	}
}

func TestFisherMoreConservativeSmallCounts(t *testing.T) {
	// On a tiny table the asymptotic test overstates significance; the
	// exact test must give the larger (honest) p-value.
	tab := ContingencyTable{O11: 3, O12: 0, O21: 1, O22: 4}
	one, _ := FisherExact(tab)
	g2p := ChiSquaredSF(LogLikelihoodG2(tab), 1) / 2
	if one <= g2p {
		t.Errorf("exact p %v not above asymptotic %v on a tiny table", one, g2p)
	}
}

func TestFisherOneSidedDirection(t *testing.T) {
	// Repulsion (O11 below expectation): one-sided attraction p near 1.
	tab := ContingencyTable{O11: 0, O12: 5, O21: 5, O22: 0}
	one, _ := FisherExact(tab)
	if one < 0.99 {
		t.Errorf("repulsed table one-sided p = %v", one)
	}
}
