package stats

import "math"

// This file implements the special functions underlying the hypothesis
// tests: the standard normal distribution, the regularized incomplete gamma
// function (for chi-squared tail probabilities) and the regularized
// incomplete beta function (for Student's t).

// NormalCDF returns P(Z ≤ z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalSF returns the survival function P(Z > z) for a standard normal Z.
func NormalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// NormalQuantile returns the p-quantile of the standard normal distribution
// using Acklam's rational approximation refined by one Halley step, giving
// close to machine precision across (0, 1). It panics for p outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile requires p in (0, 1)")
	}
	// Coefficients of Acklam's approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One step of Halley's method against the exact CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// GammaP returns the regularized lower incomplete gamma function P(a, x).
// It panics for a ≤ 0 or x < 0.
func GammaP(a, x float64) float64 {
	if a <= 0 || x < 0 {
		panic("stats: GammaP requires a > 0 and x ≥ 0")
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// GammaQ returns the regularized upper incomplete gamma function Q(a, x).
func GammaQ(a, x float64) float64 {
	if a <= 0 || x < 0 {
		panic("stats: GammaQ requires a > 0 and x ≥ 0")
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaCF(a, x)
}

// gammaSeries evaluates P(a, x) by its power series, valid for x < a+1.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCF evaluates Q(a, x) by its continued fraction (modified Lentz),
// valid for x ≥ a+1.
func gammaCF(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquaredCDF returns P(X ≤ x) for a chi-squared variable with df degrees
// of freedom.
func ChiSquaredCDF(x float64, df int) float64 {
	if x <= 0 {
		return 0
	}
	return GammaP(float64(df)/2, x/2)
}

// ChiSquaredSF returns the tail probability P(X > x) for a chi-squared
// variable with df degrees of freedom — the p-value of an observed statistic.
func ChiSquaredSF(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return GammaQ(float64(df)/2, x/2)
}

// BetaInc returns the regularized incomplete beta function I_x(a, b).
// It panics for a ≤ 0, b ≤ 0 or x outside [0, 1].
func BetaInc(a, b, x float64) float64 {
	if a <= 0 || b <= 0 || x < 0 || x > 1 {
		panic("stats: BetaInc requires a, b > 0 and x in [0, 1]")
	}
	if x == 0 {
		return 0
	}
	if x == 1 {
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for BetaInc (modified Lentz).
func betaCF(a, b, x float64) float64 {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 500; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T ≤ t) for Student's t distribution with df degrees
// of freedom.
func StudentTCDF(t float64, df int) float64 {
	if df <= 0 {
		panic("stats: StudentTCDF requires df > 0")
	}
	v := float64(df)
	x := v / (v + t*t)
	p := 0.5 * BetaInc(v/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTQuantile returns the p-quantile of Student's t distribution with
// df degrees of freedom, computed by bisection on the CDF.
func StudentTQuantile(p float64, df int) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: StudentTQuantile requires p in (0, 1)")
	}
	if p == 0.5 {
		return 0
	}
	// Bracket using the normal quantile scaled generously.
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(lo)) {
			break
		}
	}
	return (lo + hi) / 2
}

// LogChoose returns log(n choose k) using log-gamma, valid for large n.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk1, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk1
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	return math.Exp(LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// BinomialCDF returns P(X ≤ k) for X ~ Binomial(n, p), computed through the
// regularized incomplete beta function for numerical stability at large n.
func BinomialCDF(n, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	return BetaInc(float64(n-k), float64(k+1), 1-p)
}
