package stats

// Property-based tests backing the streaming miners' incremental tallies:
// the statistics consumed downstream (G²/X² over contingency tables, the
// order-statistics median CI, the Wilcoxon signed-rank test) must be
// bit-identical whether their inputs were maintained incrementally through
// random add/retire sequences or recomputed from scratch. Failures shrink
// deterministically: each property is a pure function of (seed, number of
// ops), so the harness replays ever-shorter prefixes of the same seeded
// sequence and reports the minimal failing one.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// checkPrefixes runs property(seed, n) for the full sequence and, on
// failure, replays shorter prefixes of the same seed to report the minimal
// failing length — shrinking by seed replay, no example corpus needed.
func checkPrefixes(t *testing.T, seed int64, ops int, property func(seed int64, ops int) error) {
	t.Helper()
	if err := property(seed, ops); err == nil {
		return
	}
	min := ops
	for n := 1; n <= ops; n++ {
		if property(seed, n) != nil {
			min = n
			break
		}
	}
	err := property(seed, min)
	t.Fatalf("property failed (seed %d); minimal failing prefix: %d ops: %v", seed, min, err)
}

// intTally is the incremental tally under test: integer-valued float counts
// over observation types, mirroring how the streaming L2 miner maintains
// its bigram aggregation (add on session growth, remove on retirement,
// delete-on-zero).
type intTally struct {
	counts map[int]float64
	total  float64
}

func newIntTally() *intTally { return &intTally{counts: make(map[int]float64)} }

func (c *intTally) add(k int) { c.counts[k]++; c.total++ }

func (c *intTally) remove(k int) {
	c.counts[k]--
	if c.counts[k] == 0 { //lint:allow floateq integer-valued counts, subtraction is exact so the zero test is too
		delete(c.counts, k)
	}
	c.total--
}

// tableOf derives a 2×2 table for type k against the rest of the tally.
func (c *intTally) tableOf(k, universe int) ContingencyTable {
	o11 := c.counts[k]
	return ContingencyTable{
		O11: o11,
		O12: c.counts[(k+1)%universe],
		O21: c.counts[(k+2)%universe],
		O22: c.total - o11 - c.counts[(k+1)%universe] - c.counts[(k+2)%universe],
	}
}

// TestIncrementalTalliesMatchRecomputation drives random add/retire
// sequences and requires the incremental tally — and every association
// statistic computed from it — to equal a from-scratch recomputation of the
// surviving observations, bit for bit.
func TestIncrementalTalliesMatchRecomputation(t *testing.T) {
	const universe = 5
	property := func(seed int64, ops int) error {
		rng := rand.New(rand.NewSource(seed))
		inc := newIntTally()
		var live []int // surviving observations, in arrival order
		for op := 0; op < ops; op++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				// Retire in FIFO order, like a sliding window.
				k := live[0]
				live = live[1:]
				inc.remove(k)
			} else {
				k := rng.Intn(universe)
				live = append(live, k)
				inc.add(k)
			}

			scratch := newIntTally()
			for _, k := range live {
				scratch.add(k)
			}
			if len(inc.counts) != len(scratch.counts) || inc.total != scratch.total { //lint:allow floateq integer-valued counts compare exactly
				return errf("op %d: tally sizes diverge: %v vs %v", op, inc.counts, scratch.counts)
			}
			for k := 0; k < universe; k++ {
				ti, ts := inc.tableOf(k, universe), scratch.tableOf(k, universe)
				if ti != ts {
					return errf("op %d: tables diverge for type %d: %v vs %v", op, k, ti, ts)
				}
				if !ti.Valid() {
					continue
				}
				gi, gs := LogLikelihoodG2(ti), LogLikelihoodG2(ts)
				xi, xs := PearsonX2(ti), PearsonX2(ts)
				if gi != gs || xi != xs { //lint:allow floateq identical tables must give identical statistics bitwise
					return errf("op %d: statistics diverge for type %d: G² %v vs %v, X² %v vs %v", op, k, gi, gs, xi, xs)
				}
				ai, as := TestAssociation(ti), TestAssociation(ts)
				if ai != as {
					return errf("op %d: association tests diverge for type %d", op, k)
				}
			}
		}
		return nil
	}
	for seed := int64(1); seed <= 20; seed++ {
		checkPrefixes(t, seed, 400, property)
	}
}

// sortedSet is an incrementally maintained sorted multiset of float64
// samples — the shape of the L1 distance samples a sliding window would
// maintain by insertion and deletion instead of re-sorting.
type sortedSet struct{ xs []float64 }

func (s *sortedSet) insert(x float64) {
	i := sort.SearchFloat64s(s.xs, x)
	s.xs = append(s.xs, 0)
	copy(s.xs[i+1:], s.xs[i:])
	s.xs[i] = x
}

func (s *sortedSet) delete(x float64) {
	i := sort.SearchFloat64s(s.xs, x)
	s.xs = append(s.xs[:i], s.xs[i+1:]...)
}

// TestIncrementalOrderStatisticsMatchResort maintains a sorted sample by
// insertion/deletion through random add/retire sequences and requires the
// median CI and the Wilcoxon signed-rank test over it to equal the ones
// over a freshly sorted copy of the surviving samples — bitwise, including
// error/no-error agreement on degenerate samples.
func TestIncrementalOrderStatisticsMatchResort(t *testing.T) {
	property := func(seed int64, ops int) error {
		rng := rand.New(rand.NewSource(seed))
		inc := &sortedSet{}
		var live []float64
		for op := 0; op < ops; op++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				x := live[i]
				live = append(live[:i], live[i+1:]...)
				inc.delete(x)
			} else {
				// A discrete value grid produces ties, exercising the
				// duplicate paths of insert/delete and the zero/tied-rank
				// paths of Wilcoxon.
				x := float64(rng.Intn(9)-4) / 2
				live = append(live, x)
				inc.insert(x)
			}

			scratch := SortedCopy(live)
			if len(inc.xs) != len(scratch) {
				return errf("op %d: lengths diverge: %d vs %d", op, len(inc.xs), len(scratch))
			}
			for i := range scratch {
				if inc.xs[i] != scratch[i] { //lint:allow floateq same multiset must sort identically
					return errf("op %d: samples diverge at %d: %v vs %v", op, i, inc.xs, scratch)
				}
			}
			ciI, errI := MedianCI(inc.xs, 0.95)
			ciS, errS := MedianCI(scratch, 0.95)
			if (errI == nil) != (errS == nil) || ciI != ciS {
				return errf("op %d: median CIs diverge: %v (%v) vs %v (%v)", op, ciI, errI, ciS, errS)
			}
			// The Wilcoxon check is throttled: in the exact regime (≤ 20
			// non-zero diffs) each call enumerates up to 2^20 sign
			// assignments, so checking every op would dominate the suite.
			if op%5 == 0 || len(scratch) < 8 {
				wI, errI := WilcoxonSignedRankDiffs(inc.xs)
				wS, errS := WilcoxonSignedRankDiffs(scratch)
				if (errI == nil) != (errS == nil) || !wilcoxonEqual(wI, wS) {
					return errf("op %d: Wilcoxon results diverge: %+v (%v) vs %+v (%v)", op, wI, errI, wS, errS)
				}
			}
		}
		return nil
	}
	for seed := int64(1); seed <= 20; seed++ {
		checkPrefixes(t, seed, 300, property)
	}
}

// wilcoxonEqual compares results bitwise, treating NaN fields as equal to
// themselves (degenerate all-zero samples).
func wilcoxonEqual(a, b WilcoxonResult) bool {
	eq := func(x, y float64) bool {
		return x == y || math.IsNaN(x) && math.IsNaN(y) //lint:allow floateq bitwise reproducibility is the property under test
	}
	return a.N == b.N && a.Exact == b.Exact &&
		eq(a.WPlus, b.WPlus) && eq(a.WMinus, b.WMinus) && eq(a.PValue, b.PValue)
}

// errf builds a property-violation error.
func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
