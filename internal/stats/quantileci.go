package stats

import (
	"math"
	"sort"
)

// CI is a two-sided confidence interval at the given confidence level.
type CI struct {
	Low, High float64
	// Level is the nominal confidence level requested, e.g. 0.95. The
	// achieved coverage of an order-statistic interval is at least Level
	// (it is a conservative, distribution-free interval).
	Level float64
}

// Contains reports whether v lies inside the interval (inclusive).
func (ci CI) Contains(v float64) bool { return v >= ci.Low && v <= ci.High }

// StrictlyPositive reports whether the whole interval lies above zero.
func (ci CI) StrictlyPositive() bool { return ci.Low > 0 }

// StrictlyNegative reports whether the whole interval lies below zero.
func (ci CI) StrictlyNegative() bool { return ci.High < 0 }

// Below reports whether this interval lies entirely below other, i.e. its
// upper bound is smaller than other's lower bound. This is the comparison
// approach L1 performs between the distance sample of the candidate
// dependent application and the random-point sample (§3.1: "If the upper
// bound of CI_b is below the lower bound for CI_r ...").
func (ci CI) Below(other CI) bool { return ci.High < other.Low }

// Width returns High − Low.
func (ci CI) Width() float64 { return ci.High - ci.Low }

// QuantileCIIndices returns 1-based order-statistic indices (j, k) such
// that [x_(j), x_(k)] is a distribution-free confidence interval for the
// p-quantile with coverage ≥ level. The interval follows Le Boudec's
// construction (the order-statistics method cited as [9] in the paper):
// P(x_(j) ≤ q_p ≤ x_(k)) = P(j ≤ B < k) with B ~ Binomial(n, p), and (j, k)
// are chosen as the tightest symmetric pair around np achieving the level.
//
// For n below exactSearchLimit the pair is found by exact binomial search;
// beyond that the normal approximation
//
//	j = ⌊np − z·√(np(1−p))⌋, k = ⌈np + z·√(np(1−p))⌉ + 1
//
// is used. It returns ErrShortSample when no valid pair exists (the sample
// is too small to support the requested level, e.g. n < 6 for the median at
// 95%).
func QuantileCIIndices(n int, p, level float64) (j, k int, err error) {
	if n <= 0 {
		return 0, 0, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		return 0, 0, ErrBadLevel
	}
	if p <= 0 || p >= 1 {
		return 0, 0, ErrBadLevel
	}
	// Feasibility: the widest possible interval [x_(1), x_(n)] has coverage
	// P(1 ≤ B ≤ n−1) = 1 − p^n − (1−p)^n.
	maxCover := 1 - math.Pow(p, float64(n)) - math.Pow(1-p, float64(n))
	if maxCover < level {
		return 0, 0, ErrShortSample
	}
	const exactSearchLimit = 2000
	if n > exactSearchLimit {
		z := NormalQuantile(1 - (1-level)/2)
		np := float64(n) * p
		sd := math.Sqrt(np * (1 - p))
		j = int(math.Floor(np - z*sd))
		k = int(math.Ceil(np+z*sd)) + 1
		if j < 1 {
			j = 1
		}
		if k > n {
			k = n
		}
		return j, k, nil
	}
	// Exact search: start from the symmetric pair around np and widen the
	// side that gains the most coverage until the level is reached.
	np := float64(n) * p
	j = int(math.Floor(np))
	if j < 1 {
		j = 1
	}
	if j > n {
		j = n
	}
	k = j + 1
	if k > n {
		k = n
		j = n - 1
		if j < 1 {
			return 0, 0, ErrShortSample
		}
	}
	cover := func(j, k int) float64 {
		// P(j ≤ B ≤ k−1) = CDF(k−1) − CDF(j−1)
		return BinomialCDF(n, k-1, p) - BinomialCDF(n, j-1, p)
	}
	for cover(j, k) < level {
		canLeft := j > 1
		canRight := k < n
		if !canLeft && !canRight {
			return 0, 0, ErrShortSample
		}
		gainLeft, gainRight := -1.0, -1.0
		if canLeft {
			gainLeft = BinomialPMF(n, j-1, p)
		}
		if canRight {
			gainRight = BinomialPMF(n, k-1, p)
		}
		if gainLeft >= gainRight {
			j--
		} else {
			k++
		}
	}
	return j, k, nil
}

// QuantileCI returns a distribution-free confidence interval for the
// p-quantile of the distribution underlying the sorted sample, with coverage
// at least level. The sample must be sorted in non-decreasing order.
func QuantileCI(sorted []float64, p, level float64) (CI, error) {
	j, k, err := QuantileCIIndices(len(sorted), p, level)
	if err != nil {
		return CI{}, err
	}
	return CI{Low: sorted[j-1], High: sorted[k-1], Level: level}, nil
}

// MedianCI returns a distribution-free confidence interval for the median of
// the distribution underlying the sorted sample, with coverage ≥ level.
// This is the "robust order statistics method" of the paper's approach L1.
func MedianCI(sorted []float64, level float64) (CI, error) {
	return QuantileCI(sorted, 0.5, level)
}

// MedianCIOf sorts a copy of xs and returns MedianCI of the result.
func MedianCIOf(xs []float64, level float64) (CI, error) {
	return MedianCI(SortedCopy(xs), level)
}

// PairedMedianTest performs the median test the paper applies in §4.7: for
// paired samples (a_i, b_i) it computes a distribution-free confidence
// interval at the given level for the median of the differences a_i − b_i.
// The null hypothesis of a zero (or opposite-signed) median is rejected when
// the interval is strictly positive, respectively strictly negative.
type PairedMedianTest struct {
	// Median is the sample median of the differences.
	Median float64
	// CI is the order-statistic confidence interval for the median
	// difference.
	CI CI
}

// NewPairedMedianTest computes the paired median test for samples a and b at
// the given confidence level. It returns ErrMismatch when the samples have
// different lengths and ErrShortSample when the sample is too small to
// support the level.
func NewPairedMedianTest(a, b []float64, level float64) (PairedMedianTest, error) {
	if len(a) != len(b) {
		return PairedMedianTest{}, ErrMismatch
	}
	if len(a) == 0 {
		return PairedMedianTest{}, ErrEmpty
	}
	d := make([]float64, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	sort.Float64s(d)
	ci, err := MedianCI(d, level)
	if err != nil {
		return PairedMedianTest{}, err
	}
	return PairedMedianTest{Median: Median(d), CI: ci}, nil
}
