package stats

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		name      string
		a, b, tol float64
		want      bool
	}{
		{"identical", 1.5, 1.5, 0, true},
		{"within absolute tol near zero", 1e-12, 2e-12, 1e-11, true},
		{"outside absolute tol near zero", 0, 1e-6, 1e-9, false},
		{"within relative tol", 1e9, 1e9 * (1 + 1e-12), 1e-9, true},
		{"outside relative tol", 1e9, 1e9 * 1.01, 1e-9, false},
		{"rounding noise", 0.1 + 0.2, 0.3, 1e-12, true},
		{"nan left", math.NaN(), 1, 1, false},
		{"nan both", math.NaN(), math.NaN(), 1, false},
		{"same infinity", math.Inf(1), math.Inf(1), 1e-9, true},
		{"opposite infinities", math.Inf(1), math.Inf(-1), 1e-9, false},
		{"zero tol demands exact", 1, math.Nextafter(1, 2), 0, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("%s: ApproxEqual(%v, %v, %v) = %v, want %v",
				c.name, c.a, c.b, c.tol, got, c.want)
		}
	}
}
