package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestQuantileCIIndicesErrors(t *testing.T) {
	if _, _, err := QuantileCIIndices(0, 0.5, 0.95); err != ErrEmpty {
		t.Errorf("n=0: err = %v", err)
	}
	for _, lvl := range []float64{0, 1, -1, 2} {
		if _, _, err := QuantileCIIndices(100, 0.5, lvl); err != ErrBadLevel {
			t.Errorf("level=%v: err = %v", lvl, err)
		}
	}
	for _, p := range []float64{0, 1} {
		if _, _, err := QuantileCIIndices(100, p, 0.95); err != ErrBadLevel {
			t.Errorf("p=%v: err = %v", p, err)
		}
	}
	// n=5 cannot support a 95% median CI: coverage of [x_(1),x_(5)] is
	// 1 − 2·(1/2)^5 = 0.9375 < 0.95.
	if _, _, err := QuantileCIIndices(5, 0.5, 0.95); err != ErrShortSample {
		t.Errorf("n=5: err = %v", err)
	}
	// n=6 can: 1 − 2/64 = 0.96875.
	j, k, err := QuantileCIIndices(6, 0.5, 0.95)
	if err != nil {
		t.Fatalf("n=6: %v", err)
	}
	if j != 1 || k != 6 {
		t.Errorf("n=6: (j,k) = (%d,%d), want (1,6)", j, k)
	}
}

func TestMedianCIKnownIndices(t *testing.T) {
	// Le Boudec's table gives for n=10, level 0.95 the interval
	// [x_(2), x_(9)] with exact coverage 0.9785.
	j, k, err := QuantileCIIndices(10, 0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	cover := BinomialCDF(10, k-1, 0.5) - BinomialCDF(10, j-1, 0.5)
	if cover < 0.95 {
		t.Errorf("coverage %v < level", cover)
	}
	if j > 5 || k < 6 {
		t.Errorf("interval (%d,%d) does not straddle the median index", j, k)
	}
	// The exact search yields the tightest choice: removing one order
	// statistic from either side must drop coverage below the level.
	if BinomialCDF(10, k-1, 0.5)-BinomialCDF(10, j, 0.5) >= 0.95 &&
		BinomialCDF(10, k-2, 0.5)-BinomialCDF(10, j-1, 0.5) >= 0.95 {
		t.Errorf("interval (%d,%d) is not tight", j, k)
	}
}

func TestMedianCIPaperN7(t *testing.T) {
	// The paper computes 98.4%-level CIs from 7 per-day values: with n=7
	// the extreme interval [x_(1), x_(7)] has coverage 1 − 2/128 = 0.984375,
	// which is exactly why the paper reports "0.984 level" intervals.
	j, k, err := QuantileCIIndices(7, 0.5, 0.984)
	if err != nil {
		t.Fatal(err)
	}
	if j != 1 || k != 7 {
		t.Errorf("(j,k) = (%d,%d), want (1,7)", j, k)
	}
	if _, _, err := QuantileCIIndices(7, 0.5, 0.985); err != ErrShortSample {
		t.Errorf("n=7 at 0.985 should be infeasible, got err = %v", err)
	}
}

func TestMedianCIValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	ci, err := MedianCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Low >= ci.High {
		t.Errorf("degenerate CI %+v", ci)
	}
	if !ci.Contains(5.5) {
		t.Errorf("CI %+v does not contain the sample median", ci)
	}
	if ci.Level != 0.95 {
		t.Errorf("Level = %v", ci.Level)
	}
}

func TestMedianCIOfUnsorted(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7, 2, 8, 4, 6, 10}
	ci, err := MedianCIOf(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MedianCI([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.95)
	if ci != want {
		t.Errorf("MedianCIOf = %+v, want %+v", ci, want)
	}
	if xs[0] != 9 {
		t.Error("MedianCIOf mutated its input")
	}
}

func TestQuantileCINormalApproxAgreement(t *testing.T) {
	// For n just under and over the exact-search limit the two methods
	// should produce nearby indices.
	jE, kE, err := QuantileCIIndices(2000, 0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	jA, kA, err := QuantileCIIndices(2001, 0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if abs(jE-jA) > 3 || abs(kE-kA) > 3 {
		t.Errorf("exact (%d,%d) vs approx (%d,%d) disagree", jE, kE, jA, kA)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestMedianCICoverage is a Monte-Carlo property test: across repeated
// exponential samples, the share of intervals containing the true median
// must be at least the nominal level (the order-statistic CI is
// conservative).
func TestMedianCICoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const (
		trials = 2000
		n      = 41
		level  = 0.95
	)
	trueMedian := 0.6931471805599453 // ln 2 for Exp(1)
	hit := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = rng.ExpFloat64()
		}
		sort.Float64s(xs)
		ci, err := MedianCI(xs, level)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Contains(trueMedian) {
			hit++
		}
	}
	coverage := float64(hit) / trials
	if coverage < level-0.02 {
		t.Errorf("empirical coverage %.3f below nominal %.2f", coverage, level)
	}
}

func TestCIRelations(t *testing.T) {
	a := CI{Low: 1, High: 2, Level: 0.95}
	b := CI{Low: 3, High: 4, Level: 0.95}
	if !a.Below(b) || b.Below(a) {
		t.Error("Below misordered")
	}
	if !a.StrictlyPositive() {
		t.Error("StrictlyPositive")
	}
	neg := CI{Low: -2, High: -1}
	if !neg.StrictlyNegative() || neg.StrictlyPositive() {
		t.Error("StrictlyNegative")
	}
	if a.Width() != 1 {
		t.Errorf("Width = %v", a.Width())
	}
	if !a.Contains(1) || !a.Contains(2) || a.Contains(2.1) {
		t.Error("Contains bounds")
	}
}

func TestPairedMedianTest(t *testing.T) {
	// All positive differences of magnitude ~2: the CI must be strictly
	// positive.
	a := []float64{5, 6, 7, 8, 9, 10, 11, 12, 13, 14}
	b := []float64{3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	res, err := NewPairedMedianTest(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if res.Median != 2 {
		t.Errorf("Median = %v", res.Median)
	}
	if !res.CI.StrictlyPositive() {
		t.Errorf("CI = %+v, want strictly positive", res.CI)
	}
	if _, err := NewPairedMedianTest(a, b[:3], 0.95); err != ErrMismatch {
		t.Errorf("mismatch err = %v", err)
	}
	if _, err := NewPairedMedianTest(nil, nil, 0.95); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	if _, err := NewPairedMedianTest(a[:3], b[:3], 0.95); err != ErrShortSample {
		t.Errorf("short err = %v", err)
	}
}
