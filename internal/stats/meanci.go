package stats

import "math"

// MeanCI returns the Student-t confidence interval for the mean of xs at
// the given level. It backs the Li & Ma variant of the L1 slot test (their
// ICDM'04 algorithm tests a difference of means; the paper replaces it with
// the robust median test). It returns ErrShortSample for fewer than two
// points and ErrBadLevel for a level outside (0, 1).
func MeanCI(xs []float64, level float64) (CI, error) {
	if level <= 0 || level >= 1 {
		return CI{}, ErrBadLevel
	}
	n := len(xs)
	if n < 2 {
		return CI{}, ErrShortSample
	}
	m := Mean(xs)
	se := StdDev(xs) / math.Sqrt(float64(n))
	t := StudentTQuantile(1-(1-level)/2, n-1)
	return CI{Low: m - t*se, High: m + t*se, Level: level}, nil
}

// TrimmedMean returns the mean of xs after removing the lowest and highest
// frac fraction of the sorted sample (frac in [0, 0.5)); a robustness
// middle ground between mean and median used by diagnostics.
func TrimmedMean(sorted []float64, frac float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if frac < 0 {
		frac = 0
	}
	k := int(frac * float64(n))
	if 2*k >= n {
		return Median(sorted)
	}
	return Mean(sorted[k : n-k])
}
