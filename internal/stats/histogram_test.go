package stats

import (
	"math/rand"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(10)
	h.Add(11)
	if h.N() != 10 {
		t.Errorf("N = %d", h.N())
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d = %d", i, c)
		}
	}
	if h.Bins() != 10 || h.BinWidth() != 1 {
		t.Errorf("Bins/BinWidth = %d/%v", h.Bins(), h.BinWidth())
	}
}

func TestHistogramEdgeExactlyHigh(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0)           // first bin
	h.Add(0.999999999) // last bin, not overflow
	if h.Counts[0] != 1 || h.Counts[3] != 1 || h.Overflow != 0 {
		t.Errorf("counts = %v overflow = %d", h.Counts, h.Overflow)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 5) },
		func() { NewHistogram(2, 1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestChiSquaredUniformityUniformData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := NewHistogram(0, 1, 20)
	for i := 0; i < 5000; i++ {
		h.Add(rng.Float64())
	}
	res, err := ChiSquaredUniformity(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.NonUniform(0.001) {
		t.Errorf("uniform data rejected: %+v", res)
	}
	if res.DF != 19 {
		t.Errorf("DF = %d", res.DF)
	}
}

func TestChiSquaredUniformityPeakedData(t *testing.T) {
	// The Agrawal-baseline signal: dependent delays concentrate in few bins.
	rng := rand.New(rand.NewSource(4))
	h := NewHistogram(0, 1, 20)
	for i := 0; i < 5000; i++ {
		h.Add(0.1 + 0.01*rng.NormFloat64())
	}
	res, err := ChiSquaredUniformity(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NonUniform(0.001) {
		t.Errorf("peaked data not rejected: %+v", res)
	}
}

func TestChiSquaredUniformityMergesSparseBins(t *testing.T) {
	h := NewHistogram(0, 1, 64)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ { // 100/64 < 5 per bin → merge
		h.Add(rng.Float64())
	}
	res, err := ChiSquaredUniformity(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF >= 63 {
		t.Errorf("DF = %d, expected merged bins", res.DF)
	}
	if res.N != 100 {
		t.Errorf("N = %d", res.N)
	}
}

func TestChiSquaredUniformityShortSample(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for i := 0; i < 5; i++ {
		h.Add(0.5)
	}
	if _, err := ChiSquaredUniformity(h); err != ErrShortSample {
		t.Errorf("err = %v", err)
	}
}

func TestEntropy(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Entropy() != 0 {
		t.Error("entropy of empty histogram")
	}
	// Uniform over 4 bins → entropy = ln 4.
	for i := 0; i < 4; i++ {
		h.Counts[i] = 10
	}
	if got := h.Entropy(); !almostEqual(got, 1.3862943611198906, 1e-12) {
		t.Errorf("Entropy = %v", got)
	}
	// Single bin → entropy 0.
	h2 := NewHistogram(0, 1, 4)
	h2.Counts[2] = 100
	if got := h2.Entropy(); got != 0 {
		t.Errorf("Entropy single bin = %v", got)
	}
}

func TestUniformityNullCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const trials = 500
	rejected := 0
	for i := 0; i < trials; i++ {
		h := NewHistogram(0, 1, 10)
		for j := 0; j < 500; j++ {
			h.Add(rng.Float64())
		}
		res, err := ChiSquaredUniformity(h)
		if err != nil {
			t.Fatal(err)
		}
		if res.NonUniform(0.05) {
			rejected++
		}
	}
	rate := float64(rejected) / trials
	if rate > 0.09 {
		t.Errorf("null rejection rate = %.3f", rate)
	}
}
