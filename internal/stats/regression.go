package stats

import "math"

// Regression is the result of an ordinary least squares fit of the simple
// linear model y = Intercept + Slope·x. The paper uses this in §4.9 to
// regress the hourly detection percentages p1 and p2 of approaches L1 and
// L2 on the system load (number of logs) and inspects the confidence
// interval of the slope.
type Regression struct {
	Slope, Intercept float64
	// SlopeSE is the standard error of the slope estimate.
	SlopeSE float64
	// InterceptSE is the standard error of the intercept estimate.
	InterceptSE float64
	// R2 is the coefficient of determination.
	R2 float64
	// ResidualSD is the residual standard deviation (√(SSE/(n−2))).
	ResidualSD float64
	// N is the number of points fitted.
	N int
	// Residuals are y_i − ŷ_i in input order.
	Residuals []float64
}

// LinearRegression fits y = a + b·x by ordinary least squares. It returns
// ErrMismatch for samples of different length and ErrShortSample for fewer
// than three points (the slope CI needs n−2 ≥ 1 degrees of freedom).
func LinearRegression(x, y []float64) (Regression, error) {
	if len(x) != len(y) {
		return Regression{}, ErrMismatch
	}
	n := len(x)
	if n < 3 {
		return Regression{}, ErrShortSample
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return Regression{}, ErrShortSample
	}
	b := sxy / sxx
	a := my - b*mx
	res := make([]float64, n)
	var sse, sst float64
	for i := range x {
		fit := a + b*x[i]
		r := y[i] - fit
		res[i] = r
		sse += r * r
		dy := y[i] - my
		sst += dy * dy
	}
	df := float64(n - 2)
	s := math.Sqrt(sse / df)
	r2 := 0.0
	if sst > 0 {
		r2 = 1 - sse/sst
	}
	return Regression{
		Slope:       b,
		Intercept:   a,
		SlopeSE:     s / math.Sqrt(sxx),
		InterceptSE: s * math.Sqrt(1/float64(n)+mx*mx/sxx),
		R2:          r2,
		ResidualSD:  s,
		N:           n,
		Residuals:   res,
	}, nil
}

// SlopeCI returns the confidence interval for the slope at the given level,
// using Student's t with n−2 degrees of freedom.
func (r Regression) SlopeCI(level float64) CI {
	t := StudentTQuantile(1-(1-level)/2, r.N-2)
	return CI{Low: r.Slope - t*r.SlopeSE, High: r.Slope + t*r.SlopeSE, Level: level}
}

// InterceptCI returns the confidence interval for the intercept at the given
// level.
func (r Regression) InterceptCI(level float64) CI {
	t := StudentTQuantile(1-(1-level)/2, r.N-2)
	return CI{Low: r.Intercept - t*r.InterceptSE, High: r.Intercept + t*r.InterceptSE, Level: level}
}

// Predict returns the fitted value at x.
func (r Regression) Predict(x float64) float64 { return r.Intercept + r.Slope*x }

// QQPoint is one point of a normal quantile-quantile plot.
type QQPoint struct {
	// Theoretical is the standard normal quantile for the plotting position.
	Theoretical float64
	// Sample is the corresponding standardized order statistic.
	Sample float64
}

// NormalQQ returns normal QQ-plot data for xs, standardized to zero mean and
// unit variance, using plotting positions (i − 0.5)/n. The paper verifies
// the §4.9 regression model "by the means of normal qqplots for the
// residuals"; eval reproduces that check numerically via QQCorrelation.
func NormalQQ(xs []float64) []QQPoint {
	n := len(xs)
	if n == 0 {
		return nil
	}
	sorted := SortedCopy(xs)
	m, sd := Mean(sorted), StdDev(sorted)
	if sd == 0 {
		sd = 1
	}
	pts := make([]QQPoint, n)
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / float64(n)
		pts[i] = QQPoint{
			Theoretical: NormalQuantile(p),
			Sample:      (sorted[i] - m) / sd,
		}
	}
	return pts
}

// QQCorrelation returns the Pearson correlation between the theoretical and
// sample quantiles of a normal QQ plot of xs — a scalar normality check
// (values near 1 indicate approximately normal residuals).
func QQCorrelation(xs []float64) float64 {
	pts := NormalQQ(xs)
	if len(pts) < 2 {
		return 0
	}
	tx := make([]float64, len(pts))
	sx := make([]float64, len(pts))
	for i, p := range pts {
		tx[i] = p.Theoretical
		sx[i] = p.Sample
	}
	return Correlation(tx, sx)
}

// Correlation returns the Pearson correlation coefficient of x and y. It
// returns 0 when either sample is constant or the lengths differ.
func Correlation(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxx, syy, sxy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
