// Package stats implements the statistical machinery the logscape miners
// and the evaluation harness rely on.
//
// The paper builds on a small number of classical tools that have no
// counterpart in the Go standard library, so they are implemented here from
// scratch:
//
//   - robust, non-parametric confidence intervals for the median (and any
//     quantile) based on order statistics, following Le Boudec's
//     "Performance Evaluation of Computer and Communication Systems"
//     (the method cited as [9] in the paper and used by approaches L1
//     and the per-day evaluation);
//   - association tests on 2x2 contingency tables, in particular Dunning's
//     log-likelihood ratio statistic G² (used by approach L2) and Pearson's
//     X² for comparison;
//   - the Wilcoxon signed rank test (used in §4.7 to confirm the timeout
//     influence);
//   - simple linear regression with a confidence interval for the slope
//     (used in §4.9 to quantify the influence of system load);
//   - chi-squared goodness-of-fit against the uniform distribution (used by
//     the Agrawal et al. delay-histogram baseline).
//
// Supporting special functions (regularized incomplete gamma and beta,
// normal quantiles) are implemented with standard series/continued-fraction
// expansions and are accurate to well beyond the needs of the hypothesis
// tests above.
//
// All functions are deterministic and allocation-conscious; functions that
// need randomness take an explicit *rand.Rand.
//
// See DESIGN.md §3 (System inventory).
package stats
