package stats

import "math"

// ApproxEqual reports whether a and b agree within tol, using an absolute
// comparison near zero and a relative one otherwise. It is the sanctioned
// replacement for `==` on computed floats (see the floateq analyzer):
// statistics derived through different — but mathematically equivalent —
// summation orders can differ in the last bits, and exact comparison turns
// that rounding noise into behavior. NaN is equal to nothing; both infinities
// compare equal only to themselves.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //lint:allow floateq fast path and infinity handling need the exact comparison
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // unequal infinities, or one infinite operand
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale <= 1 {
		return diff <= tol
	}
	return diff <= tol*scale
}
