package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestWilcoxonPaperValue reproduces the §4.7 statement: "The p-value of the
// signed wilcoxon rank sum test is 0.0156 for any two samples of size 7,
// such that the values of the one are always below the corresponding value
// of the other".
func TestWilcoxonPaperValue(t *testing.T) {
	a := []float64{0.75, 0.74, 0.73, 0.77, 0.78, 0.72, 0.76}
	b := []float64{0.70, 0.69, 0.71, 0.72, 0.73, 0.68, 0.70}
	res, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Error("n=7 should use the exact distribution")
	}
	if !almostEqual(res.PValue, 2.0/128.0, 1e-12) {
		t.Errorf("p = %v, want 0.015625", res.PValue)
	}
	if res.WMinus != 0 || res.WPlus != 28 {
		t.Errorf("W+ = %v, W− = %v", res.WPlus, res.WMinus)
	}
}

func TestWilcoxonErrors(t *testing.T) {
	if _, err := WilcoxonSignedRank([]float64{1}, []float64{1, 2}); err != ErrMismatch {
		t.Errorf("mismatch err = %v", err)
	}
	if _, err := WilcoxonSignedRank(nil, nil); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	// All differences zero → nothing to rank.
	if _, err := WilcoxonSignedRank([]float64{1, 2}, []float64{1, 2}); err != ErrEmpty {
		t.Errorf("all-zero err = %v", err)
	}
}

func TestWilcoxonSymmetricSample(t *testing.T) {
	// Perfectly symmetric differences: W+ ≈ W−, p-value large.
	diffs := []float64{-3, -2, -1, 1, 2, 3}
	res, err := WilcoxonSignedRankDiffs(diffs)
	if err != nil {
		t.Fatal(err)
	}
	if res.WPlus != res.WMinus { //lint:allow floateq rank sums are small exact halves, symmetry must hold bit for bit
		t.Errorf("W+ = %v, W− = %v", res.WPlus, res.WMinus)
	}
	if res.PValue < 0.9 {
		t.Errorf("p = %v for symmetric sample", res.PValue)
	}
}

func TestWilcoxonTies(t *testing.T) {
	// Tied absolute values receive midranks; must not panic or produce NaN.
	diffs := []float64{1, 1, -1, 2, 2, -2, 3}
	res, err := WilcoxonSignedRankDiffs(diffs)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.PValue) || res.PValue <= 0 || res.PValue > 1 {
		t.Errorf("p = %v", res.PValue)
	}
	// Sum of ranks preserved: W+ + W− = n(n+1)/2 even with midranks.
	if got := res.WPlus + res.WMinus; !almostEqual(got, 28, 1e-12) {
		t.Errorf("rank sum = %v", got)
	}
}

func TestWilcoxonKnownSmallCase(t *testing.T) {
	// n=5 all positive: one-tailed 1/32, two-sided 2/32 = 0.0625.
	diffs := []float64{1, 2, 3, 4, 5}
	res, err := WilcoxonSignedRankDiffs(diffs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.PValue, 2.0/32.0, 1e-12) {
		t.Errorf("p = %v, want 0.0625", res.PValue)
	}
}

func TestWilcoxonDropsZeros(t *testing.T) {
	res, err := WilcoxonSignedRankDiffs([]float64{0, 0, 1, 2, 3, 4, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 5 {
		t.Errorf("N = %d, want 5 after dropping zeros", res.N)
	}
	if !almostEqual(res.PValue, 2.0/32.0, 1e-12) {
		t.Errorf("p = %v", res.PValue)
	}
}

func TestWilcoxonNormalApproxLargeN(t *testing.T) {
	// A clearly shifted large sample must give a tiny p-value via the
	// normal path.
	rng := rand.New(rand.NewSource(3))
	n := 100
	diffs := make([]float64, n)
	for i := range diffs {
		diffs[i] = rng.NormFloat64() + 1.5
	}
	res, err := WilcoxonSignedRankDiffs(diffs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("n=100 should use the normal approximation")
	}
	if res.PValue > 1e-6 {
		t.Errorf("p = %v for strongly shifted sample", res.PValue)
	}
}

func TestWilcoxonNullCalibration(t *testing.T) {
	// Under the null (symmetric differences) the rejection rate at 5%
	// should be ≈ 5% (slightly conservative for discrete small-n).
	rng := rand.New(rand.NewSource(11))
	const trials = 2000
	rejected := 0
	for i := 0; i < trials; i++ {
		diffs := make([]float64, 15)
		for j := range diffs {
			diffs[j] = rng.NormFloat64()
		}
		res, err := WilcoxonSignedRankDiffs(diffs)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 0.05 {
			rejected++
		}
	}
	rate := float64(rejected) / trials
	if rate > 0.08 {
		t.Errorf("null rejection rate = %.3f, want ≤ 0.05 + slack", rate)
	}
}

func TestExactMatchesNormalApproxModerateN(t *testing.T) {
	// At n=20 (the crossover), exact and normal p-values should agree
	// reasonably for a moderate shift.
	rng := rand.New(rand.NewSource(5))
	diffs := make([]float64, 20)
	for i := range diffs {
		diffs[i] = rng.NormFloat64() + 0.5
	}
	exact, err := WilcoxonSignedRankDiffs(diffs)
	if err != nil {
		t.Fatal(err)
	}
	diffs21 := append(append([]float64{}, diffs...), 0.4)
	approx, err := WilcoxonSignedRankDiffs(diffs21)
	if err != nil {
		t.Fatal(err)
	}
	if exact.PValue <= 0 || approx.PValue <= 0 {
		t.Fatalf("p-values: exact %v approx %v", exact.PValue, approx.PValue)
	}
	ratio := exact.PValue / approx.PValue
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("exact (%v) and approx (%v) p-values diverge", exact.PValue, approx.PValue)
	}
}
