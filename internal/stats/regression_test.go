package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearRegressionExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	r, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r.Slope, 2, 1e-12) || !almostEqual(r.Intercept, 1, 1e-12) {
		t.Errorf("fit = %v + %v·x", r.Intercept, r.Slope)
	}
	if !almostEqual(r.R2, 1, 1e-12) {
		t.Errorf("R² = %v", r.R2)
	}
	if !almostEqual(r.ResidualSD, 0, 1e-9) {
		t.Errorf("ResidualSD = %v", r.ResidualSD)
	}
	for _, res := range r.Residuals {
		if !almostEqual(res, 0, 1e-9) {
			t.Errorf("residual = %v", res)
		}
	}
	if p := r.Predict(10); !almostEqual(p, 21, 1e-12) {
		t.Errorf("Predict(10) = %v", p)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err != ErrMismatch {
		t.Errorf("mismatch err = %v", err)
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1, 2}); err != ErrShortSample {
		t.Errorf("short err = %v", err)
	}
	// Constant x has no identifiable slope.
	if _, err := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); err != ErrShortSample {
		t.Errorf("constant-x err = %v", err)
	}
}

func TestSlopeCICoversTruth(t *testing.T) {
	// Monte-Carlo calibration of the 95% slope CI.
	rng := rand.New(rand.NewSource(17))
	const trials = 1000
	hit := 0
	for i := 0; i < trials; i++ {
		n := 30
		x := make([]float64, n)
		y := make([]float64, n)
		for j := 0; j < n; j++ {
			x[j] = float64(j)
			y[j] = 2 + 0.5*x[j] + rng.NormFloat64()
		}
		r, err := LinearRegression(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if r.SlopeCI(0.95).Contains(0.5) {
			hit++
		}
	}
	cov := float64(hit) / trials
	if cov < 0.92 || cov > 0.98 {
		t.Errorf("slope CI coverage = %.3f, want ≈ 0.95", cov)
	}
}

func TestSlopeCISignDetection(t *testing.T) {
	// A strongly negative relationship must give a strictly negative CI;
	// pure noise must give a CI containing zero (the §4.9 test pattern).
	rng := rand.New(rand.NewSource(23))
	n := 100
	x := make([]float64, n)
	yNeg := make([]float64, n)
	yNoise := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i) / float64(n)
		yNeg[i] = 1 - 0.8*x[i] + 0.02*rng.NormFloat64()
		yNoise[i] = 0.5 + 0.02*rng.NormFloat64()
	}
	rNeg, err := LinearRegression(x, yNeg)
	if err != nil {
		t.Fatal(err)
	}
	if ci := rNeg.SlopeCI(0.95); !ci.StrictlyNegative() {
		t.Errorf("negative-slope CI = %+v", ci)
	}
	rNoise, err := LinearRegression(x, yNoise)
	if err != nil {
		t.Fatal(err)
	}
	if ci := rNoise.SlopeCI(0.95); !ci.Contains(0) {
		t.Errorf("noise slope CI = %+v, should contain 0", ci)
	}
}

// TestRegressionRecovery is a property test: for any non-degenerate line,
// fitting noise-free points recovers the parameters.
func TestRegressionRecovery(t *testing.T) {
	f := func(a, b int8) bool {
		slope := float64(b)
		intercept := float64(a)
		x := []float64{0, 1, 2, 3, 4, 5}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = intercept + slope*x[i]
		}
		r, err := LinearRegression(x, y)
		if err != nil {
			return false
		}
		return almostEqual(r.Slope, slope, 1e-8) && almostEqual(r.Intercept, intercept, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterceptCI(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	y := make([]float64, len(x))
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		y[i] = 3 + 0*x[i] + 0.01*rng.NormFloat64()
	}
	r, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if ci := r.InterceptCI(0.95); !ci.Contains(3) {
		t.Errorf("intercept CI = %+v", ci)
	}
}

func TestNormalQQ(t *testing.T) {
	if pts := NormalQQ(nil); pts != nil {
		t.Error("NormalQQ(nil) should be nil")
	}
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 5
	}
	pts := NormalQQ(xs)
	if len(pts) != 200 {
		t.Fatalf("len = %d", len(pts))
	}
	// Theoretical quantiles must be increasing and symmetric around 0.
	for i := 1; i < len(pts); i++ {
		if pts[i].Theoretical <= pts[i-1].Theoretical {
			t.Fatal("theoretical quantiles not increasing")
		}
	}
	if corr := QQCorrelation(xs); corr < 0.99 {
		t.Errorf("QQ correlation for normal data = %v", corr)
	}
	// Strongly bimodal data correlates worse than normal data.
	bimodal := make([]float64, 200)
	for i := range bimodal {
		if i%2 == 0 {
			bimodal[i] = -10 + 0.01*rng.NormFloat64()
		} else {
			bimodal[i] = 10 + 0.01*rng.NormFloat64()
		}
	}
	if cb, cn := QQCorrelation(bimodal), QQCorrelation(xs); cb >= cn {
		t.Errorf("bimodal QQ corr %v not below normal %v", cb, cn)
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if c := Correlation(x, x); !almostEqual(c, 1, 1e-12) {
		t.Errorf("self correlation = %v", c)
	}
	y := []float64{4, 3, 2, 1}
	if c := Correlation(x, y); !almostEqual(c, -1, 1e-12) {
		t.Errorf("anti correlation = %v", c)
	}
	if c := Correlation(x, []float64{5, 5, 5, 5}); c != 0 {
		t.Errorf("constant correlation = %v", c)
	}
	if c := Correlation(x, x[:2]); c != 0 {
		t.Errorf("mismatched correlation = %v", c)
	}
}

func TestQQCorrelationDegenerate(t *testing.T) {
	if c := QQCorrelation([]float64{1}); c != 0 {
		t.Errorf("QQCorrelation singleton = %v", c)
	}
	// Constant sample: sd guard kicks in, correlation of constant = 0.
	if c := QQCorrelation([]float64{2, 2, 2, 2}); c != 0 {
		t.Errorf("QQCorrelation constant = %v", c)
	}
	_ = math.Pi // keep math import for symmetry with sibling tests
}
