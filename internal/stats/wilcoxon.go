package stats

import (
	"math"
	"sort"
)

// WilcoxonResult is the outcome of a Wilcoxon signed rank test.
type WilcoxonResult struct {
	// WPlus is the sum of the ranks of the positive differences.
	WPlus float64
	// WMinus is the sum of the ranks of the negative differences.
	WMinus float64
	// N is the number of non-zero differences actually ranked.
	N int
	// PValue is the two-sided p-value. For N ≤ exactWilcoxonLimit it is
	// computed exactly by enumerating all 2^N sign assignments (which
	// handles ties in the absolute values correctly); beyond that a normal
	// approximation with tie correction is used.
	PValue float64
	// Exact reports whether PValue came from the exact enumeration.
	Exact bool
}

// exactWilcoxonLimit is the largest number of non-zero differences for which
// the sign-flip distribution is enumerated exactly (2^20 ≈ 1M terms).
const exactWilcoxonLimit = 20

// WilcoxonSignedRank performs the paired, two-sided Wilcoxon signed rank
// test on samples a and b, testing the null hypothesis that the median of
// the differences a_i − b_i is zero. Zero differences are dropped
// (Wilcoxon's original treatment); tied absolute differences receive
// midranks.
//
// The paper uses this test in §4.7 with n = 7 paired days: when all seven
// differences share the same sign the exact two-sided p-value is
// 2·(1/2⁷) = 0.015625, the value reported in the text.
func WilcoxonSignedRank(a, b []float64) (WilcoxonResult, error) {
	if len(a) != len(b) {
		return WilcoxonResult{}, ErrMismatch
	}
	diffs := make([]float64, 0, len(a))
	for i := range a {
		d := a[i] - b[i]
		if d != 0 {
			diffs = append(diffs, d)
		}
	}
	return wilcoxonFromDiffs(diffs)
}

// WilcoxonSignedRankDiffs runs the test directly on a sample of differences.
func WilcoxonSignedRankDiffs(diffs []float64) (WilcoxonResult, error) {
	nz := make([]float64, 0, len(diffs))
	for _, d := range diffs {
		if d != 0 {
			nz = append(nz, d)
		}
	}
	return wilcoxonFromDiffs(nz)
}

func wilcoxonFromDiffs(diffs []float64) (WilcoxonResult, error) {
	n := len(diffs)
	if n == 0 {
		return WilcoxonResult{}, ErrEmpty
	}
	type absDiff struct {
		abs float64
		pos bool
	}
	ads := make([]absDiff, n)
	for i, d := range diffs {
		ads[i] = absDiff{abs: math.Abs(d), pos: d > 0}
	}
	sort.Slice(ads, func(i, j int) bool { return ads[i].abs < ads[j].abs })
	// Midranks for ties.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && ads[j].abs == ads[i].abs { //lint:allow floateq midrank tie grouping requires exact equality of stored values
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		i = j
	}
	var wPlus, wMinus float64
	for i, ad := range ads {
		if ad.pos {
			wPlus += ranks[i]
		} else {
			wMinus += ranks[i]
		}
	}
	res := WilcoxonResult{WPlus: wPlus, WMinus: wMinus, N: n}
	if n <= exactWilcoxonLimit {
		res.PValue = exactSignFlipP(ranks, math.Min(wPlus, wMinus))
		res.Exact = true
	} else {
		res.PValue = wilcoxonNormalP(ranks, wPlus)
	}
	return res, nil
}

// exactSignFlipP enumerates all 2^n assignments of signs to the ranked
// absolute differences and returns the two-sided p-value: the probability
// that min(W+, W−) is at most the observed wMin.
func exactSignFlipP(ranks []float64, wMin float64) float64 {
	n := len(ranks)
	total := Sum(ranks)
	count := 0
	limit := 1 << uint(n)
	const eps = 1e-9
	for mask := 0; mask < limit; mask++ {
		var wp float64
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				wp += ranks[i]
			}
		}
		wm := total - wp
		if math.Min(wp, wm) <= wMin+eps {
			count++
		}
	}
	return float64(count) / float64(limit)
}

// wilcoxonNormalP returns the two-sided normal-approximation p-value with
// tie correction and continuity correction.
func wilcoxonNormalP(ranks []float64, wPlus float64) float64 {
	n := float64(len(ranks))
	mean := n * (n + 1) / 4
	// Variance with tie correction: Var = Σ r_i² / 4 (midranks encode the
	// tie correction already, since Σ r_i² = n(n+1)(2n+1)/6 − Σ(t³−t)/12
	// scaled by 4).
	var sumSq float64
	for _, r := range ranks {
		sumSq += r * r
	}
	sd := math.Sqrt(sumSq / 4)
	if sd == 0 {
		return 1
	}
	z := wPlus - mean
	// Continuity correction toward the mean.
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= sd
	return 2 * NormalSF(math.Abs(z))
}
