package stats

import (
	"errors"
	"math"
	"sort"
)

// Common errors returned by the package.
var (
	// ErrEmpty indicates an empty input sample.
	ErrEmpty = errors.New("stats: empty sample")
	// ErrBadLevel indicates a confidence level outside (0, 1).
	ErrBadLevel = errors.New("stats: confidence level must be in (0, 1)")
	// ErrShortSample indicates a sample too small for the requested method.
	ErrShortSample = errors.New("stats: sample too small")
	// ErrMismatch indicates paired samples of different lengths.
	ErrMismatch = errors.New("stats: paired samples have different lengths")
)

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	// Kahan summation: the evaluation harness sums long series of small
	// per-slot values where naive summation loses precision.
	var sum, c float64
	for _, x := range xs {
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs. It returns 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 for samples of size < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs. It panics on an empty sample.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty sample.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sorted reports whether xs is sorted in non-decreasing order.
func Sorted(xs []float64) bool { return sort.Float64sAreSorted(xs) }

// SortedCopy returns a sorted copy of xs, leaving xs untouched.
func SortedCopy(xs []float64) []float64 {
	ys := make([]float64, len(xs))
	copy(ys, xs)
	sort.Float64s(ys)
	return ys
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of the sorted sample using
// linear interpolation between order statistics (type 7, the R default).
// The input must be sorted; Quantile panics on an empty sample.
func Quantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: Quantile of empty sample")
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	frac := h - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Median returns the median of the sorted sample.
func Median(sorted []float64) float64 { return Quantile(sorted, 0.5) }

// MedianOf sorts a copy of xs and returns its median.
func MedianOf(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: MedianOf empty sample")
	}
	return Median(SortedCopy(xs))
}

// FiveNum is the five-number summary backing a boxplot: the sample extremes,
// the quartiles and the median (figure 2 of the paper shows boxplots of the
// distance samples used by approach L1).
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// Summary returns the five-number summary of the sorted sample.
func Summary(sorted []float64) FiveNum {
	return FiveNum{
		Min:    sorted[0],
		Q1:     Quantile(sorted, 0.25),
		Median: Median(sorted),
		Q3:     Quantile(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
	}
}

// IQR returns the interquartile range of the summary.
func (f FiveNum) IQR() float64 { return f.Q3 - f.Q1 }
