package stats

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestSumKahan(t *testing.T) {
	xs := make([]float64, 0, 10001)
	xs = append(xs, 1e16)
	for i := 0; i < 10000; i++ {
		xs = append(xs, 1)
	}
	got := Sum(xs)
	if got != 1e16+10000 {
		t.Errorf("Sum = %v, want %v", got, 1e16+10000.0)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	// Sample variance with n-1 denominator: ss = 32, 32/7.
	if v := Variance(xs); !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if v := Variance([]float64{1}); v != 0 {
		t.Errorf("Variance of singleton = %v, want 0", v)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v, want 0", m)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if m := Min(xs); m != -1 {
		t.Errorf("Min = %v", m)
	}
	if m := Max(xs); m != 5 {
		t.Errorf("Max = %v", m)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("Quantile singleton = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("Median even = %v, want 2.5", m)
	}
	if m := MedianOf([]float64{3, 1, 2}); m != 2 {
		t.Errorf("MedianOf = %v, want 2", m)
	}
}

func TestSummary(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	s := Summary(xs)
	if s.Min != 1 || s.Max != 9 || s.Median != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if s.Q1 != 3 || s.Q3 != 7 {
		t.Errorf("quartiles = %v, %v", s.Q1, s.Q3)
	}
	if s.IQR() != 4 {
		t.Errorf("IQR = %v", s.IQR())
	}
}

func TestSortedCopyLeavesInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	ys := SortedCopy(xs)
	if xs[0] != 3 {
		t.Error("SortedCopy mutated its input")
	}
	if !Sorted(ys) {
		t.Error("SortedCopy result not sorted")
	}
}

func TestNormalCDFValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999, 1 - 1e-10} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); !almostEqual(got, p, 1e-10*math.Max(1, 1/p)) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if z := NormalQuantile(0.975); !almostEqual(z, 1.959963984540054, 1e-9) {
		t.Errorf("z(0.975) = %v", z)
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestGammaPQComplement(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 10, 100} {
		for _, x := range []float64{0.1, 1, 5, 50, 200} {
			p, q := GammaP(a, x), GammaQ(a, x)
			if !almostEqual(p+q, 1, 1e-12) {
				t.Errorf("P+Q(a=%v,x=%v) = %v", a, x, p+q)
			}
		}
	}
}

func TestChiSquaredKnownValues(t *testing.T) {
	// Critical values: P(X² ≤ 3.841459) = 0.95 for df=1,
	// P(X² ≤ 5.991465) = 0.95 for df=2.
	if got := ChiSquaredCDF(3.841458820694124, 1); !almostEqual(got, 0.95, 1e-9) {
		t.Errorf("ChiSquaredCDF df=1 = %v", got)
	}
	if got := ChiSquaredCDF(5.991464547107979, 2); !almostEqual(got, 0.95, 1e-9) {
		t.Errorf("ChiSquaredCDF df=2 = %v", got)
	}
	if got := ChiSquaredSF(6.634896601021214, 1); !almostEqual(got, 0.01, 1e-9) {
		t.Errorf("ChiSquaredSF df=1 = %v", got)
	}
	if ChiSquaredCDF(-1, 3) != 0 || ChiSquaredSF(-1, 3) != 1 {
		t.Error("chi-squared at negative x")
	}
}

func TestStudentT(t *testing.T) {
	// t(0.975, df=5) = 2.570582; t(0.99, df=2) = 6.964557.
	if got := StudentTQuantile(0.975, 5); !almostEqual(got, 2.5705818366147395, 1e-6) {
		t.Errorf("t(0.975, 5) = %v", got)
	}
	if got := StudentTQuantile(0.99, 2); !almostEqual(got, 6.964556734283257, 1e-6) {
		t.Errorf("t(0.99, 2) = %v", got)
	}
	if got := StudentTCDF(0, 7); got != 0.5 {
		t.Errorf("StudentTCDF(0) = %v", got)
	}
	// Symmetry.
	if a, b := StudentTCDF(-1.3, 9), 1-StudentTCDF(1.3, 9); !almostEqual(a, b, 1e-12) {
		t.Errorf("t symmetry: %v vs %v", a, b)
	}
	// Converges to normal for large df.
	if a, b := StudentTCDF(1.2, 100000), NormalCDF(1.2); !almostEqual(a, b, 1e-4) {
		t.Errorf("t large-df: %v vs normal %v", a, b)
	}
}

func TestBetaIncKnownValues(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := BetaInc(1, 1, x); !almostEqual(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_0.5(a,a) = 0.5 by symmetry.
	for _, a := range []float64{0.5, 2, 7.5} {
		if got := BetaInc(a, a, 0.5); !almostEqual(got, 0.5, 1e-12) {
			t.Errorf("I_0.5(%v,%v) = %v", a, a, got)
		}
	}
}

func TestBinomial(t *testing.T) {
	// Binomial(10, 0.5): P(X=5) = 252/1024.
	if got := BinomialPMF(10, 5, 0.5); !almostEqual(got, 252.0/1024.0, 1e-12) {
		t.Errorf("BinomialPMF = %v", got)
	}
	// CDF as sum of PMFs.
	for k := -1; k <= 11; k++ {
		var want float64
		for i := 0; i <= k && i <= 10; i++ {
			want += BinomialPMF(10, i, 0.3)
		}
		if k >= 10 {
			want = 1
		}
		if got := BinomialCDF(10, k, 0.3); !almostEqual(got, want, 1e-10) {
			t.Errorf("BinomialCDF(10,%d,0.3) = %v, want %v", k, got, want)
		}
	}
	// Degenerate p.
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 3, 0) != 0 {
		t.Error("PMF p=0")
	}
	if BinomialPMF(5, 5, 1) != 1 || BinomialPMF(5, 3, 1) != 0 {
		t.Error("PMF p=1")
	}
}

func TestLogChoose(t *testing.T) {
	if got := LogChoose(10, 3); !almostEqual(got, math.Log(120), 1e-12) {
		t.Errorf("LogChoose(10,3) = %v", got)
	}
	if !math.IsInf(LogChoose(5, 7), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("LogChoose out of range should be -Inf")
	}
}
