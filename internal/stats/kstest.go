package stats

import (
	"math"
	"sort"
)

// KSResult is the outcome of a one-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the KS statistic: the supremum distance between the empirical
	// and the hypothesized CDF.
	D float64
	// PValue is the asymptotic p-value (Kolmogorov distribution with the
	// finite-n correction of Stephens).
	PValue float64
	// N is the sample size.
	N int
}

// KSTestUniform tests whether the sample xs is drawn from the uniform
// distribution on [low, high). It is the distribution-free alternative to
// the binned chi-squared uniformity test used by the Agrawal baseline and
// the L2 delay analysis — preferable for small samples where binning
// wastes power. It returns ErrEmpty for an empty sample and ErrBadLevel
// for high ≤ low.
func KSTestUniform(xs []float64, low, high float64) (KSResult, error) {
	if len(xs) == 0 {
		return KSResult{}, ErrEmpty
	}
	if high <= low {
		return KSResult{}, ErrBadLevel
	}
	u := make([]float64, 0, len(xs))
	for _, x := range xs {
		v := (x - low) / (high - low)
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		u = append(u, v)
	}
	sort.Float64s(u)
	return ksAgainstCDF(u, func(x float64) float64 { return x }), nil
}

// KSTestCDF tests the sorted sample against an arbitrary continuous CDF.
func KSTestCDF(sorted []float64, cdf func(float64) float64) (KSResult, error) {
	if len(sorted) == 0 {
		return KSResult{}, ErrEmpty
	}
	return ksAgainstCDF(sorted, cdf), nil
}

// KSTestTwoSample tests whether two sorted samples were drawn from the
// same distribution (two-sample Kolmogorov–Smirnov). D is the supremum
// distance between the two empirical CDFs; the p-value uses the Kolmogorov
// asymptotic with the effective sample size n·m/(n+m) and Stephens'
// finite-sample adjustment — the correction that makes the test honest
// when the reference CDF is itself estimated from a sample, which the
// one-sample form (KSTestCDF against an empirical reference) is not.
func KSTestTwoSample(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, ErrEmpty
	}
	na, nb := float64(len(a)), float64(len(b))
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			if b[j] <= a[i] {
				// Tied value: advance both runs of it before comparing the
				// CDFs (a step shared by both samples is not a distance).
				x := a[i]
				for i < len(a) && a[i] <= x {
					i++
				}
				for j < len(b) && b[j] <= x {
					j++
				}
			} else {
				i++
			}
		} else {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	ne := na * nb / (na + nb)
	sqrtNe := math.Sqrt(ne)
	lambda := (sqrtNe + 0.12 + 0.11/sqrtNe) * d
	return KSResult{D: d, PValue: ksSurvival(lambda), N: int(ne)}, nil
}

// ksAgainstCDF computes D and its p-value for a sorted sample.
func ksAgainstCDF(sorted []float64, cdf func(float64) float64) KSResult {
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	// Stephens' finite-sample adjustment.
	sqrtN := math.Sqrt(n)
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	return KSResult{D: d, PValue: ksSurvival(lambda), N: len(sorted)}
}

// ksSurvival evaluates the Kolmogorov distribution tail
// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2k²λ²).
func ksSurvival(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// NonUniform reports whether the test rejects the hypothesized distribution
// at significance level alpha.
func (k KSResult) NonUniform(alpha float64) bool { return k.PValue < alpha }
