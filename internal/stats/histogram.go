package stats

import "math"

// Histogram is a fixed-width binned count of a sample over [Low, High). It
// backs the Agrawal et al. delay-histogram baseline (§2.1 of the paper):
// delays between the activity of dependent components pile up in a few bins
// while delays of independent components are close to uniform.
type Histogram struct {
	Low, High float64
	Counts    []int64
	// Underflow and Overflow count observations outside [Low, High).
	Underflow, Overflow int64
}

// NewHistogram creates a histogram with the given number of bins covering
// [low, high). It panics for bins ≤ 0 or high ≤ low.
func NewHistogram(low, high float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram requires bins > 0")
	}
	if high <= low {
		panic("stats: NewHistogram requires high > low")
	}
	return &Histogram{Low: low, High: high, Counts: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Low:
		h.Underflow++
	case x >= h.High:
		h.Overflow++
	default:
		i := int((x - h.Low) / (h.High - h.Low) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // guard against floating point edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// N returns the number of in-range observations.
func (h *Histogram) N() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Counts) }

// BinWidth returns the width of one bin.
func (h *Histogram) BinWidth() float64 { return (h.High - h.Low) / float64(len(h.Counts)) }

// UniformityResult is the outcome of a chi-squared goodness-of-fit test of a
// histogram against the uniform distribution.
type UniformityResult struct {
	// X2 is the chi-squared statistic Σ (O−E)²/E.
	X2 float64
	// DF is the degrees of freedom (bins − 1).
	DF int
	// PValue is the tail probability of X2.
	PValue float64
	// N is the number of observations tested.
	N int64
}

// ChiSquaredUniformity tests the in-range counts of h against a uniform
// distribution over the bins. Bins are merged pairwise from the right when
// the expected count per bin would fall below 5 (the usual validity
// condition). It returns ErrShortSample when fewer than two effective bins
// or fewer than 10 observations remain.
func ChiSquaredUniformity(h *Histogram) (UniformityResult, error) {
	n := h.N()
	if n < 10 {
		return UniformityResult{}, ErrShortSample
	}
	counts := make([]int64, len(h.Counts))
	copy(counts, h.Counts)
	// Merge adjacent bins until expected ≥ 5.
	for len(counts) > 1 && float64(n)/float64(len(counts)) < 5 {
		merged := make([]int64, 0, (len(counts)+1)/2)
		for i := 0; i < len(counts); i += 2 {
			if i+1 < len(counts) {
				merged = append(merged, counts[i]+counts[i+1])
			} else {
				merged = append(merged, counts[i])
			}
		}
		counts = merged
	}
	k := len(counts)
	if k < 2 {
		return UniformityResult{}, ErrShortSample
	}
	e := float64(n) / float64(k)
	var x2 float64
	for _, c := range counts {
		d := float64(c) - e
		x2 += d * d / e
	}
	df := k - 1
	return UniformityResult{X2: x2, DF: df, PValue: ChiSquaredSF(x2, df), N: n}, nil
}

// NonUniform reports whether the test rejects uniformity at significance
// level alpha.
func (u UniformityResult) NonUniform(alpha float64) bool { return u.PValue < alpha }

// Entropy returns the empirical Shannon entropy (nats) of the in-range bin
// distribution; a secondary non-uniformity indicator used by the baseline's
// diagnostics.
func (h *Histogram) Entropy() float64 {
	n := float64(h.N())
	if n == 0 {
		return 0
	}
	var e float64
	for _, c := range h.Counts {
		if c > 0 {
			p := float64(c) / n
			e -= p * math.Log(p)
		}
	}
	return e
}
