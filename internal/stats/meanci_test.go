package stats

import (
	"math/rand"
	"testing"
)

func TestMeanCIBasics(t *testing.T) {
	if _, err := MeanCI([]float64{1}, 0.95); err != ErrShortSample {
		t.Errorf("short err = %v", err)
	}
	for _, lvl := range []float64{0, 1} {
		if _, err := MeanCI([]float64{1, 2, 3}, lvl); err != ErrBadLevel {
			t.Errorf("level %v err = %v", lvl, err)
		}
	}
	ci, err := MeanCI([]float64{1, 2, 3, 4, 5}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(3) {
		t.Errorf("CI %+v does not contain the sample mean", ci)
	}
	if ci.Level != 0.95 {
		t.Errorf("Level = %v", ci.Level)
	}
}

func TestMeanCICoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const trials = 2000
	hit := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 20)
		for j := range xs {
			xs[j] = 5 + 2*rng.NormFloat64()
		}
		ci, err := MeanCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Contains(5) {
			hit++
		}
	}
	cov := float64(hit) / trials
	if cov < 0.93 || cov > 0.97 {
		t.Errorf("coverage = %.3f, want ≈ 0.95", cov)
	}
}

// TestMeanVsMedianRobustness demonstrates why the paper replaced Li & Ma's
// mean with the median: one extreme outlier blows up the mean interval but
// barely moves the median interval.
func TestMeanVsMedianRobustness(t *testing.T) {
	xs := make([]float64, 0, 41)
	for i := 0; i < 40; i++ {
		xs = append(xs, 1+float64(i%7)*0.1)
	}
	xs = append(xs, 1e6) // heavy-tailed contamination
	sorted := SortedCopy(xs)
	meanCI, err := MeanCI(sorted, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	medCI, err := MedianCI(sorted, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if meanCI.Width() < 100*medCI.Width() {
		t.Errorf("mean CI width %v not blown up vs median %v", meanCI.Width(), medCI.Width())
	}
	if medCI.High > 2 {
		t.Errorf("median CI %+v should ignore the outlier", medCI)
	}
}

func TestTrimmedMean(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 100}
	if got := TrimmedMean(sorted, 0.2); got != 3 {
		t.Errorf("TrimmedMean(0.2) = %v, want 3", got)
	}
	if got := TrimmedMean(sorted, 0); got != 22 {
		t.Errorf("TrimmedMean(0) = %v, want mean 22", got)
	}
	// Over-trimming degenerates to the median.
	if got := TrimmedMean(sorted, 0.5); got != 3 {
		t.Errorf("TrimmedMean(0.5) = %v", got)
	}
	if got := TrimmedMean(nil, 0.1); got != 0 {
		t.Errorf("TrimmedMean(nil) = %v", got)
	}
	if got := TrimmedMean(sorted, -1); got != 22 {
		t.Errorf("negative frac = %v", got)
	}
}
