package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFigure4RunningExample reproduces figure 4 of the paper: the
// contingency table for bigram type (A2, A3) in the running example session,
// with counts O11=2, O21=0, O12=1, O22=5.
func TestFigure4RunningExample(t *testing.T) {
	tab := ContingencyTable{O11: 2, O21: 0, O12: 1, O22: 5}
	if n := tab.N(); n != 8 {
		t.Fatalf("N = %v, want 8 (the running example has 8 bigrams)", n)
	}
	if tab.R1() != 3 || tab.C1() != 2 {
		t.Errorf("marginals R1=%v C1=%v", tab.R1(), tab.C1())
	}
	e11, _, _, _ := tab.Expected()
	if !almostEqual(e11, 3.0*2.0/8.0, 1e-12) {
		t.Errorf("E11 = %v", e11)
	}
	if !PositiveAssociation(tab) {
		t.Error("the running example pair must show attraction")
	}
	g2 := LogLikelihoodG2(tab)
	if g2 <= 0 {
		t.Errorf("G² = %v, want > 0", g2)
	}
	res := TestAssociation(tab)
	if res.G2 != g2 || !res.Positive { //lint:allow floateq both sides computed by the same call, identity must be exact
		t.Errorf("TestAssociation = %+v", res)
	}
	if res.PValue <= 0 || res.PValue >= 1 {
		t.Errorf("p-value = %v", res.PValue)
	}
}

func TestG2KnownValue(t *testing.T) {
	// Dunning's statistic for a strongly associated table, checked against
	// a hand computation of 2·Σ O log(O/E).
	tab := ContingencyTable{O11: 10, O12: 2, O21: 3, O22: 85}
	e11, e12, e21, e22 := tab.Expected()
	want := 2 * (10*math.Log(10/e11) + 2*math.Log(2/e12) +
		3*math.Log(3/e21) + 85*math.Log(85/e22))
	if got := LogLikelihoodG2(tab); !almostEqual(got, want, 1e-9) {
		t.Errorf("G² = %v, want %v", got, want)
	}
}

func TestG2IndependentTableIsZero(t *testing.T) {
	// Perfectly independent table: O == E everywhere.
	tab := ContingencyTable{O11: 10, O12: 20, O21: 30, O22: 60}
	if g2 := LogLikelihoodG2(tab); !almostEqual(g2, 0, 1e-9) {
		t.Errorf("G² = %v for independent table", g2)
	}
	if x2 := PearsonX2(tab); !almostEqual(x2, 0, 1e-9) {
		t.Errorf("X² = %v for independent table", x2)
	}
	if PositiveAssociation(tab) {
		t.Error("independent table shows attraction")
	}
}

func TestG2ZeroCells(t *testing.T) {
	// Zero cells must not produce NaN thanks to 0·log 0 = 0.
	tables := []ContingencyTable{
		{O11: 0, O12: 5, O21: 5, O22: 5},
		{O11: 5, O12: 0, O21: 0, O22: 5},
		{O11: 3, O12: 0, O21: 0, O22: 0},
		{O11: 0, O12: 0, O21: 0, O22: 4},
	}
	for _, tab := range tables {
		g2 := LogLikelihoodG2(tab)
		if math.IsNaN(g2) || g2 < 0 {
			t.Errorf("G²(%v) = %v", tab, g2)
		}
	}
}

func TestG2EmptyTable(t *testing.T) {
	var tab ContingencyTable
	if g2 := LogLikelihoodG2(tab); g2 != 0 {
		t.Errorf("G² of empty table = %v", g2)
	}
	if tab.Valid() {
		t.Error("empty table reported valid")
	}
}

func TestPearsonX2KnownValue(t *testing.T) {
	// Classic shortcut formula check: X² = N(ad−bc)²/(R1 R2 C1 C2).
	tab := ContingencyTable{O11: 20, O12: 10, O21: 5, O22: 65}
	n := 100.0
	d := 20*65 - 10*5
	want := n * float64(d*d) / (30 * 70 * 25 * 75)
	if got := PearsonX2(tab); !almostEqual(got, want, 1e-9) {
		t.Errorf("X² = %v, want %v", got, want)
	}
}

func TestPearsonX2ZeroMarginal(t *testing.T) {
	tab := ContingencyTable{O11: 0, O12: 0, O21: 5, O22: 5}
	if got := PearsonX2(tab); got != 0 {
		t.Errorf("X² with zero marginal = %v", got)
	}
}

// TestG2VsPearsonSkewed demonstrates Dunning's point (the reason the paper
// prefers G²): on heavily skewed tables with a rare joint event, Pearson's
// X² wildly overestimates significance relative to G².
func TestG2VsPearsonSkewed(t *testing.T) {
	tab := ContingencyTable{O11: 2, O12: 1, O21: 1, O22: 10000}
	g2 := LogLikelihoodG2(tab)
	x2 := PearsonX2(tab)
	if x2 <= g2 {
		t.Errorf("expected X² (%v) ≫ G² (%v) on skewed table", x2, g2)
	}
	if x2 < 10*g2 {
		t.Errorf("X²/G² = %v, expected dramatic inflation", x2/g2)
	}
}

func TestOddsRatioDice(t *testing.T) {
	tab := ContingencyTable{O11: 8, O12: 2, O21: 4, O22: 16}
	if or := OddsRatio(tab); !almostEqual(or, 16, 1e-12) {
		t.Errorf("OddsRatio = %v", or)
	}
	if d := Dice(tab); !almostEqual(d, 2*8.0/(10+12), 1e-12) {
		t.Errorf("Dice = %v", d)
	}
	if d := Dice(ContingencyTable{O22: 4}); d != 0 {
		t.Errorf("Dice zero marginals = %v", d)
	}
	if or := OddsRatio(ContingencyTable{O11: 1, O22: 1}); !math.IsInf(or, 1) {
		t.Errorf("OddsRatio zero denominator = %v", or)
	}
}

func TestPointwiseMI(t *testing.T) {
	tab := ContingencyTable{O11: 10, O12: 20, O21: 30, O22: 60}
	if mi := PointwiseMI(tab); !almostEqual(mi, 0, 1e-12) {
		t.Errorf("PMI of independent table = %v", mi)
	}
	if mi := PointwiseMI(ContingencyTable{O11: 0, O12: 5, O21: 5, O22: 5}); !math.IsInf(mi, -1) {
		t.Errorf("PMI with O11=0 = %v", mi)
	}
}

func TestSignificant(t *testing.T) {
	strong := TestAssociation(ContingencyTable{O11: 50, O12: 5, O21: 5, O22: 500})
	if !strong.Significant(0.01) {
		t.Errorf("strong association not significant: %+v", strong)
	}
	// Repulsion: O11 far below expectation must not be "significant" for
	// the one-sided collocation decision even though G² is large.
	repulsed := TestAssociation(ContingencyTable{O11: 0, O12: 100, O21: 100, O22: 10})
	if repulsed.Significant(0.05) {
		t.Errorf("repulsion reported as positive association: %+v", repulsed)
	}
}

// TestG2Properties checks invariances of G² under the table symmetries that
// must not change the strength of association.
func TestG2Properties(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		tab := ContingencyTable{O11: float64(a), O12: float64(b), O21: float64(c), O22: float64(d)}
		if tab.N() == 0 {
			return true
		}
		g2 := LogLikelihoodG2(tab)
		if math.IsNaN(g2) || g2 < 0 {
			return false
		}
		// Transpose invariance.
		tr := ContingencyTable{O11: tab.O11, O12: tab.O21, O21: tab.O12, O22: tab.O22}
		if !almostEqual(LogLikelihoodG2(tr), g2, 1e-9*(1+g2)) {
			return false
		}
		// Swapping both rows and columns (relabelling A→¬A, B→¬B) is also
		// invariant.
		sw := ContingencyTable{O11: tab.O22, O12: tab.O21, O21: tab.O12, O22: tab.O11}
		return almostEqual(LogLikelihoodG2(sw), g2, 1e-9*(1+g2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestG2ScaleMonotone: scaling all cells by k scales G² by exactly k
// (likelihood ratios are extensive in the sample size).
func TestG2ScaleMonotone(t *testing.T) {
	tab := ContingencyTable{O11: 6, O12: 3, O21: 2, O22: 20}
	g2 := LogLikelihoodG2(tab)
	for _, k := range []float64{2, 5, 10} {
		scaled := ContingencyTable{O11: k * tab.O11, O12: k * tab.O12, O21: k * tab.O21, O22: k * tab.O22}
		if got := LogLikelihoodG2(scaled); !almostEqual(got, k*g2, 1e-9*k*g2) {
			t.Errorf("G²(k=%v) = %v, want %v", k, got, k*g2)
		}
	}
}

// TestG2NullDistribution: under independence, the rejection rate at level
// alpha should be close to alpha (asymptotic chi-squared calibration).
func TestG2NullDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const trials = 3000
	const n = 400
	rejected := 0
	for i := 0; i < trials; i++ {
		var tab ContingencyTable
		for j := 0; j < n; j++ {
			r := rng.Float64() < 0.3
			c := rng.Float64() < 0.2
			switch {
			case r && c:
				tab.O11++
			case r:
				tab.O12++
			case c:
				tab.O21++
			default:
				tab.O22++
			}
		}
		if ChiSquaredSF(LogLikelihoodG2(tab), 1) < 0.05 {
			rejected++
		}
	}
	rate := float64(rejected) / trials
	if rate > 0.08 || rate < 0.02 {
		t.Errorf("null rejection rate = %.3f, want ≈ 0.05", rate)
	}
}

func TestContingencyString(t *testing.T) {
	tab := ContingencyTable{O11: 2, O12: 1, O21: 0, O22: 5}
	if s := tab.String(); s != "[[2 0] [1 5]]" {
		t.Errorf("String = %q", s)
	}
}
