package stats

import "math"

// FisherExact computes Fisher's exact test for a 2×2 contingency table
// with fixed margins. It returns the one-sided p-value for attraction
// (P[X ≥ O11] under the hypergeometric null) and the two-sided p-value
// (sum of all table probabilities not exceeding the observed one).
//
// The asymptotic G² and X² tests need expected counts of a few per cell;
// at small corpus sizes (short sessions, single hours) Fisher's exact test
// is the statistically safe alternative for approach L2, at higher cost.
// Cells are rounded to integers; negative cells yield p-values of 1.
func FisherExact(t ContingencyTable) (oneSided, twoSided float64) {
	a := int(t.O11 + 0.5)
	b := int(t.O12 + 0.5)
	c := int(t.O21 + 0.5)
	d := int(t.O22 + 0.5)
	if a < 0 || b < 0 || c < 0 || d < 0 {
		return 1, 1
	}
	r1 := a + b
	c1 := a + c
	n := a + b + c + d
	if n == 0 || r1 == 0 || c1 == 0 || r1 == n || c1 == n {
		return 1, 1
	}
	// Hypergeometric support for the O11 cell.
	lo := r1 + c1 - n
	if lo < 0 {
		lo = 0
	}
	hi := r1
	if c1 < hi {
		hi = c1
	}
	// log P(X = k) with margins fixed.
	logP := func(k int) float64 {
		return LogChoose(c1, k) + LogChoose(n-c1, r1-k) - LogChoose(n, r1)
	}
	pObs := logP(a)
	var one, two float64
	const eps = 1e-9
	for k := lo; k <= hi; k++ {
		p := math.Exp(logP(k))
		if k >= a {
			one += p
		}
		if logP(k) <= pObs+eps {
			two += p
		}
	}
	if one > 1 {
		one = 1
	}
	if two > 1 {
		two = 1
	}
	return one, two
}
