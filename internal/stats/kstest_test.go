package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestKSTestUniformAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 2 + 3*rng.Float64() // uniform on [2, 5)
	}
	res, err := KSTestUniform(xs, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.NonUniform(0.01) {
		t.Errorf("uniform sample rejected: %+v", res)
	}
	if res.N != 500 {
		t.Errorf("N = %d", res.N)
	}
}

func TestKSTestUniformRejectsPeaked(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 0.3 + 0.02*rng.NormFloat64()
	}
	res, err := KSTestUniform(xs, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NonUniform(0.001) {
		t.Errorf("peaked sample accepted: %+v", res)
	}
	if res.D < 0.2 {
		t.Errorf("D = %v", res.D)
	}
}

func TestKSTestErrors(t *testing.T) {
	if _, err := KSTestUniform(nil, 0, 1); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	if _, err := KSTestUniform([]float64{1}, 1, 1); err != ErrBadLevel {
		t.Errorf("bad range err = %v", err)
	}
	if _, err := KSTestCDF(nil, nil); err != ErrEmpty {
		t.Errorf("empty CDF err = %v", err)
	}
}

func TestKSTestCDFNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	sorted := SortedCopy(xs)
	res, err := KSTestCDF(sorted, func(x float64) float64 { return NormalCDF(x) })
	if err != nil {
		t.Fatal(err)
	}
	if res.NonUniform(0.01) {
		t.Errorf("normal sample rejected against normal CDF: %+v", res)
	}
	// The same sample against a shifted CDF must be rejected.
	res2, _ := KSTestCDF(sorted, func(x float64) float64 { return NormalCDF(x - 1) })
	if !res2.NonUniform(0.001) {
		t.Errorf("shifted CDF accepted: %+v", res2)
	}
}

func TestKSNullCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const trials = 1000
	rejected := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 50)
		for j := range xs {
			xs[j] = rng.Float64()
		}
		res, err := KSTestUniform(xs, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 0.05 {
			rejected++
		}
	}
	rate := float64(rejected) / trials
	if rate > 0.08 || rate < 0.02 {
		t.Errorf("null rejection rate = %.3f, want ≈ 0.05", rate)
	}
}

func TestKSSurvivalBounds(t *testing.T) {
	if p := ksSurvival(0); p != 1 {
		t.Errorf("Q(0) = %v", p)
	}
	if p := ksSurvival(10); p > 1e-10 {
		t.Errorf("Q(10) = %v", p)
	}
	// Known value: Q(0.8276) ≈ 0.5 (the Kolmogorov distribution median).
	if p := ksSurvival(0.8276); p < 0.48 || p > 0.52 {
		t.Errorf("Q(median) = %v", p)
	}
}

func TestKSTestTwoSampleSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, 200)
	b := make([]float64, 150)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	sort.Float64s(a)
	sort.Float64s(b)
	res, err := KSTestTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.01 {
		t.Errorf("same-distribution samples rejected: %+v", res)
	}
}

func TestKSTestTwoSampleShiftRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 2
	}
	sort.Float64s(a)
	sort.Float64s(b)
	res, err := KSTestTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue >= 0.001 {
		t.Errorf("2-sigma shift not rejected: %+v", res)
	}
	if res.D <= 0.3 {
		t.Errorf("D = %v, want a large distance", res.D)
	}
}

func TestKSTestTwoSampleTiesAndErrors(t *testing.T) {
	// Identical discrete samples: zero distance, p-value 1.
	a := []float64{1, 1, 2, 2, 3}
	res, err := KSTestTwoSample(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 0 {
		t.Errorf("identical samples: D = %v, want 0", res.D)
	}
	if _, err := KSTestTwoSample(nil, a); err == nil {
		t.Error("empty first sample accepted")
	}
	if _, err := KSTestTwoSample(a, nil); err == nil {
		t.Error("empty second sample accepted")
	}
}

func TestKSTestTwoSampleNullCalibration(t *testing.T) {
	// Under the null, P(p < 0.05) should be near 0.05 — the effective-n
	// correction is what keeps the small-sample two-sample form honest.
	rng := rand.New(rand.NewSource(13))
	reject := 0
	const trials = 400
	for tr := 0; tr < trials; tr++ {
		a := make([]float64, 12)
		b := make([]float64, 36)
		for i := range a {
			a[i] = rng.Float64()
		}
		for i := range b {
			b[i] = rng.Float64()
		}
		sort.Float64s(a)
		sort.Float64s(b)
		res, err := KSTestTwoSample(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 0.05 {
			reject++
		}
	}
	rate := float64(reject) / trials
	if rate > 0.10 {
		t.Errorf("null rejection rate %.3f at alpha 0.05: anti-conservative", rate)
	}
}
