package logmodel

import (
	"bytes"
	"fmt"
	"strings"
	"time"
	"unsafe"
)

// This file is the allocation-free twin of the wire format in wire.go:
// ParseEntryBytes and AppendEntry produce byte-for-byte the same results as
// ParseEntry and FormatEntry (a property pinned by FuzzParseBytes and the
// differential tests in wirebytes_test.go) without the per-entry garbage —
// no strings.SplitN, no time.Parse on the fast path, no fmt.Sprintf.
// DESIGN.md §12 describes the ownership and aliasing rules.

// byteView returns a string sharing b's backing array — zero-copy, so the
// caller must guarantee the bytes are never modified for the lifetime of the
// string (arena bytes are write-once; view-mode parse results alias the
// caller's buffer and inherit its lifetime).
func byteView(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// internChunk is the arena chunk size: large enough that a chunk turnover
// (one allocation) happens every few hundred entries, small enough that an
// almost-full chunk abandoned for an oversized message wastes little.
const internChunk = 64 << 10

// internMaxEntries caps the intern table. A hostile stream with unbounded
// distinct Source/Host/User values must not turn the table into a memory
// leak; past the cap, new distinct values fall back to plain copies (still
// correct, just one allocation per occurrence).
const internMaxEntries = 1 << 16

// Intern is the string table + copy arena that makes ParseEntryBytes
// allocation-free in steady state. Source, Host and User values are
// deduplicated: each distinct value is copied once into the arena and every
// later occurrence returns the same string header with zero allocations.
// Messages are not deduplicated (they are mostly distinct) but are
// unescape-copied into the arena, so the input line is never modified and
// the returned Entry owns durable strings.
//
// An Intern is not safe for concurrent use. Its strings stay valid forever
// (arena chunks are abandoned when full, never reused), so entries parsed
// with a shared Intern may outlive it. The zero value is ready to use.
type Intern struct {
	tab   map[string]string
	trip  map[string]internTriple
	chunk []byte

	// Single-entry caches exploiting stream locality. Real streams are
	// near-sorted, so consecutive lines almost always share the timestamp's
	// minute prefix; session bursts repeat the same (source, host, user)
	// triple back to back. Both caches only short-circuit work — every hit
	// returns exactly what the slow path would have.
	tsValid  bool
	tsPrefix [17]byte // "YYYY-MM-DDTHH:MM:" of the cached minute
	tsBase   int64    // epoch millis at second 0 of that minute
	// 4-way triple cache, round-robin replacement (tripNext points at the
	// next victim). Real streams interleave a handful of active sessions, so
	// a few recent triples cover half the lines a one-entry cache misses.
	tripLen  [4]int // 0 marks an empty way
	tripKey  [4][64]byte
	tripVal  [4]internTriple
	tripNext int
}

// internTriple caches one distinct (source, host, user) combination under
// its composite "src\thost\tuser" key — the three fields are adjacent in a
// wire line, so the key is a single subslice and one map hit replaces
// three.
type internTriple struct {
	source, host, user string
}

// NewIntern returns an empty intern table.
func NewIntern() *Intern {
	return &Intern{
		tab:  make(map[string]string, 64),
		trip: make(map[string]internTriple, 64),
	}
}

// reserve guarantees at least n free bytes in the current arena chunk,
// starting a fresh chunk if needed. Old chunks are abandoned, not reused:
// strings already handed out keep pointing into them.
func (it *Intern) reserve(n int) {
	if cap(it.chunk)-len(it.chunk) < n {
		c := internChunk
		if n > c {
			c = n
		}
		it.chunk = make([]byte, 0, c)
	}
}

// copyBytes appends b to the arena and returns a string view of the copy.
func (it *Intern) copyBytes(b []byte) string {
	it.reserve(len(b))
	start := len(it.chunk)
	it.chunk = append(it.chunk, b...)
	return byteView(it.chunk[start:len(it.chunk):len(it.chunk)])
}

// Bytes returns the interned string equal to b, copying it into the arena
// on first sight. The compiler-recognized m[string(b)] form makes the hit
// path allocation-free.
func (it *Intern) Bytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if it.tab == nil {
		it.tab = make(map[string]string, 64)
	}
	if s, ok := it.tab[string(b)]; ok {
		return s
	}
	s := it.copyBytes(b)
	if len(it.tab) < internMaxEntries {
		it.tab[s] = s
	}
	return s
}

// triple interns the (source, host, user) combination at once. key is the
// composite "src\thost\tuser" slice of the wire line (unambiguous — fields
// cannot contain tabs); src, host, user are its three fields.
func (it *Intern) triple(key, src, host, user []byte) (string, string, string) {
	for w := range it.tripLen {
		if len(key) == it.tripLen[w] && string(key) == string(it.tripKey[w][:it.tripLen[w]]) {
			v := &it.tripVal[w]
			return v.source, v.host, v.user
		}
	}
	if it.trip == nil {
		it.trip = make(map[string]internTriple, 64)
	}
	v, ok := it.trip[string(key)]
	if !ok {
		v = internTriple{it.Bytes(src), it.Bytes(host), it.Bytes(user)}
		if len(it.trip) < internMaxEntries {
			it.trip[it.copyBytes(key)] = v
		}
	}
	if len(key) <= len(it.tripKey[0]) {
		w := it.tripNext
		it.tripNext = (w + 1) & 3
		copy(it.tripKey[w][:], key)
		it.tripLen[w] = len(key)
		it.tripVal[w] = v
	}
	return v.source, v.host, v.user
}

// message unescape-copies a raw wire-format message field into the arena.
// The input is left untouched — callers that quarantine raw lines (the
// hardened feeder) depend on that.
func (it *Intern) message(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	it.reserve(len(b))
	start := len(it.chunk)
	if bytes.IndexByte(b, '\\') < 0 {
		it.chunk = append(it.chunk, b...)
	} else {
		it.chunk = unescapeAppend(it.chunk, b)
	}
	return byteView(it.chunk[start:len(it.chunk):len(it.chunk)])
}

// unescapeAppend appends the unescaped form of m to dst, mirroring
// unescapeMessage byte for byte: \t \n \r \\ collapse, an invalid escape
// keeps the backslash and the following byte, a trailing lone backslash is
// preserved. Output length never exceeds len(m), so unescaping in place via
// unescapeAppend(b[:0], b) cannot reallocate and every write lands at or
// before the read position.
func unescapeAppend(dst, m []byte) []byte {
	for i := 0; i < len(m); i++ {
		c := m[i]
		if c != '\\' {
			dst = append(dst, c)
			continue
		}
		if i+1 >= len(m) {
			dst = append(dst, '\\')
			break
		}
		i++
		switch m[i] {
		case 't':
			dst = append(dst, '\t')
		case 'n':
			dst = append(dst, '\n')
		case 'r':
			dst = append(dst, '\r')
		case '\\':
			dst = append(dst, '\\')
		default:
			dst = append(dst, '\\', m[i])
		}
	}
	return dst
}

// ParseEntryBytes parses one wire-format line without allocating in steady
// state. It is equivalent to ParseEntry: the same Entry on success, an error
// for exactly the same inputs (with matching messages).
//
// Ownership depends on it:
//
//   - it != nil (intern mode): line is never modified; Source/Host/User are
//     interned and Message is unescape-copied into the arena, so the Entry is
//     durable — safe to retain after the read buffer is reused.
//   - it == nil (view mode): the message field is unescaped in place
//     (modifying line) and all string fields alias line's backing array. The
//     Entry is only valid until the buffer is reused; this is the zero-copy
//     mode for callers that consume the entry immediately.
func ParseEntryBytes(line []byte, it *Intern) (Entry, error) {
	var e Entry
	if err := ParseEntryBytesInto(&e, line, it); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// ParseEntryBytesInto is ParseEntryBytes writing through a pointer, for hot
// loops that reuse one Entry variable: an Entry is 80 bytes, and parsing
// through a pointer avoids copying it on return for every line of a stream.
// On success every field of *e is overwritten; on error *e is unspecified.
func ParseEntryBytesInto(e *Entry, line []byte, it *Intern) error {
	// Locate the five field separators. The timestamp field is fixed-width
	// in the canonical UTC form, so its tab is usually found with a single
	// byte test; the rest use IndexByte.
	var tabs [5]int
	pos := 0
	if len(line) > 24 && line[24] == '\t' {
		tabs[0] = 24
		pos = 25
	}
	for i := 0; i < 5; i++ {
		if i == 0 && pos != 0 {
			continue
		}
		j := bytes.IndexByte(line[pos:], '\t')
		if j < 0 {
			return fmt.Errorf("logmodel: malformed line: %d fields, want 6", i+1)
		}
		tabs[i] = pos + j
		pos += j + 1
	}
	var f [5][]byte
	f[0] = line[:tabs[0]]
	for i := 1; i < 5; i++ {
		f[i] = line[tabs[i-1]+1 : tabs[i]]
	}
	rest := line[tabs[4]+1:]
	var ts Millis
	var ok bool
	if it != nil {
		ts, ok = it.parseTime(f[0])
	} else {
		ts, ok = parseWireTime(f[0])
	}
	if !ok {
		// The fast path is strict: anything it rejects goes through
		// time.Parse so acceptance (and the error text) matches ParseEntry
		// exactly, including exotica like comma fractional separators or
		// out-of-range zone offsets.
		t, err := time.Parse(timeLayout, string(f[0]))
		if err != nil {
			return fmt.Errorf("logmodel: bad timestamp %q: %w", f[0], err)
		}
		ts = FromTime(t)
	}
	sev, ok := parseSeverityBytes(f[4])
	if !ok {
		return fmt.Errorf("logmodel: unknown severity %q", f[4])
	}
	if len(f[1]) == 0 {
		return fmt.Errorf("logmodel: empty source field")
	}
	e.Time, e.Severity = ts, sev
	if it != nil {
		// f[1..3] are adjacent subslices of line; the composite slice
		// spanning them is the triple-intern key.
		key := line[tabs[0]+1 : tabs[3]]
		e.Source, e.Host, e.User = it.triple(key, f[1], f[2], f[3])
		e.Message = it.message(rest)
	} else {
		e.Source = byteView(f[1])
		e.Host = byteView(f[2])
		e.User = byteView(f[3])
		if bytes.IndexByte(rest, '\\') >= 0 {
			rest = unescapeAppend(rest[:0], rest)
		}
		e.Message = byteView(rest)
	}
	return nil
}

// parseSeverityBytes is ParseSeverity over bytes, allocation-free.
func parseSeverityBytes(b []byte) (Severity, bool) {
	for i := range severityNames {
		if string(b) == severityNames[i] {
			return Severity(i), true
		}
	}
	return 0, false
}

// AppendEntry appends e as one wire-format line (without trailing newline)
// to dst and returns the extended slice — the allocation-free form of
// FormatEntry. dst must not alias e's string fields.
func AppendEntry(dst []byte, e Entry) []byte {
	dst = appendWireTime(dst, e.Time)
	dst = append(dst, '\t')
	dst = append(dst, e.Source...)
	dst = append(dst, '\t')
	dst = append(dst, e.Host...)
	dst = append(dst, '\t')
	dst = append(dst, e.User...)
	dst = append(dst, '\t')
	if int(e.Severity) < len(severityNames) {
		dst = append(dst, severityNames[e.Severity]...)
	} else {
		dst = fmt.Appendf(dst, "SEV(%d)", uint8(e.Severity))
	}
	dst = append(dst, '\t')
	return appendEscaped(dst, e.Message)
}

// appendEscaped appends m with wire-format escaping, mirroring
// escapeMessage: tab, newline, carriage return and backslash are
// backslash-escaped; everything else is copied verbatim.
func appendEscaped(dst []byte, m string) []byte {
	if !strings.ContainsAny(m, "\t\n\r\\") {
		return append(dst, m...)
	}
	for i := 0; i < len(m); i++ {
		switch c := m[i]; c {
		case '\t':
			dst = append(dst, '\\', 't')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\\':
			dst = append(dst, '\\', '\\')
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// --- fixed-layout timestamp codec ------------------------------------------
//
// The wire timestamp is TimeLayout ("2006-01-02T15:04:05.000Z07:00"):
// RFC3339 with exactly three fractional digits. The fast parser below
// accepts only the canonical shapes — 24 bytes ending in 'Z' or 29 bytes
// with a ±hh:mm offset, every digit and separator in its slot, every field
// in range — and computes the epoch arithmetically. Anything else falls back
// to time.Parse in ParseEntryBytes, so the fast path can be strict without
// changing what the format accepts. The formatter emits the UTC 'Z' shape
// for years 0000–9999 (everything FormatEntry can produce via Time().UTC())
// and falls back to time.Format outside that.

// parseTime is parseWireTime with a one-minute memo: when b shares the
// cached "YYYY-MM-DDTHH:MM:" prefix of a previously parsed canonical UTC
// timestamp, only the seconds and milliseconds digits are parsed and the
// cached minute epoch supplies the rest. Prefix equality covers every digit
// and separator the full parser validated when it populated the cache, so a
// hit computes exactly the full parser's value.
func (it *Intern) parseTime(b []byte) (Millis, bool) {
	if len(b) == 24 && b[23] == 'Z' && b[19] == '.' && it.tsValid &&
		string(b[:17]) == string(it.tsPrefix[:]) {
		sec, ok1 := dig2(b, 17)
		ms, ok2 := dig3(b, 20)
		if ok1 && ok2 && sec <= 59 {
			return Millis(it.tsBase + int64(sec)*1000 + int64(ms)), true
		}
		return 0, false
	}
	ts, ok := parseWireTime(b)
	if ok && len(b) == 24 {
		sec, _ := dig2(b, 17)
		ms, _ := dig3(b, 20)
		copy(it.tsPrefix[:], b[:17])
		it.tsBase = int64(ts) - int64(sec)*1000 - int64(ms)
		it.tsValid = true
	}
	return ts, ok
}

// parseWireTime parses the canonical wire timestamp shapes. ok is false for
// anything the strict fast path does not cover.
func parseWireTime(b []byte) (Millis, bool) {
	n := len(b)
	if n != 24 && n != 29 {
		return 0, false
	}
	if b[4] != '-' || b[7] != '-' || b[10] != 'T' ||
		b[13] != ':' || b[16] != ':' || b[19] != '.' {
		return 0, false
	}
	year, ok1 := dig4(b, 0)
	month, ok2 := dig2(b, 5)
	day, ok3 := dig2(b, 8)
	hour, ok4 := dig2(b, 11)
	min, ok5 := dig2(b, 14)
	sec, ok6 := dig2(b, 17)
	ms, ok7 := dig3(b, 20)
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7) {
		return 0, false
	}
	if month < 1 || month > 12 || day < 1 || day > daysIn(month, year) ||
		hour > 23 || min > 59 || sec > 59 {
		return 0, false
	}
	offset := 0
	if n == 29 {
		if b[26] != ':' {
			return 0, false
		}
		oh, okh := dig2(b, 24)
		om, okm := dig2(b, 27)
		if !okh || !okm || oh > 23 || om > 59 {
			return 0, false
		}
		offset = oh*3600 + om*60
		switch b[23] {
		case '+':
		case '-':
			offset = -offset
		default:
			return 0, false
		}
	} else if b[23] != 'Z' {
		return 0, false
	}
	unix := daysFromCivil(year, month, day)*86400 +
		int64(hour*3600+min*60+sec) - int64(offset)
	return Millis(unix*1000 + int64(ms)), true
}

// appendWireTime appends m in TimeLayout (UTC), matching
// m.Time().Format(timeLayout) exactly.
func appendWireTime(dst []byte, m Millis) []byte {
	ms := int64(m)
	sec := floorDiv(ms, 1000)
	msp := int(ms - sec*1000)
	days := floorDiv(sec, 86400)
	rem := int(sec - days*86400)
	year, month, day := civilFromDays(days)
	if year < 0 || year > 9999 {
		// time.Format pads years outside [0, 9999] differently (sign,
		// variable width); rare enough to delegate.
		return append(dst, m.Time().Format(timeLayout)...)
	}
	dst = pad4(dst, year)
	dst = append(dst, '-')
	dst = pad2(dst, month)
	dst = append(dst, '-')
	dst = pad2(dst, day)
	dst = append(dst, 'T')
	dst = pad2(dst, rem/3600)
	dst = append(dst, ':')
	dst = pad2(dst, rem/60%60)
	dst = append(dst, ':')
	dst = pad2(dst, rem%60)
	dst = append(dst, '.')
	dst = pad3(dst, msp)
	return append(dst, 'Z')
}

func dig2(b []byte, i int) (int, bool) {
	c0, c1 := b[i]-'0', b[i+1]-'0'
	if c0 > 9 || c1 > 9 {
		return 0, false
	}
	return int(c0)*10 + int(c1), true
}

func dig3(b []byte, i int) (int, bool) {
	hi, ok1 := dig2(b, i)
	c2 := b[i+2] - '0'
	if !ok1 || c2 > 9 {
		return 0, false
	}
	return hi*10 + int(c2), true
}

func dig4(b []byte, i int) (int, bool) {
	hi, ok1 := dig2(b, i)
	lo, ok2 := dig2(b, i+2)
	if !ok1 || !ok2 {
		return 0, false
	}
	return hi*100 + lo, true
}

func pad2(dst []byte, v int) []byte {
	return append(dst, byte('0'+v/10), byte('0'+v%10))
}

func pad3(dst []byte, v int) []byte {
	return append(dst, byte('0'+v/100), byte('0'+v/10%10), byte('0'+v%10))
}

func pad4(dst []byte, v int) []byte {
	return append(dst, byte('0'+v/1000), byte('0'+v/100%10),
		byte('0'+v/10%10), byte('0'+v%10))
}

func isLeap(y int) bool {
	return y%4 == 0 && (y%100 != 0 || y%400 == 0)
}

func daysIn(month, year int) int {
	switch month {
	case 4, 6, 9, 11:
		return 30
	case 2:
		if isLeap(year) {
			return 29
		}
		return 28
	}
	return 31
}

// floorDiv is division rounding toward −∞ (Go's / rounds toward zero).
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// daysFromCivil converts a proleptic Gregorian date to days since the Unix
// epoch (Howard Hinnant's civil-days algorithm).
func daysFromCivil(y, m, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	era := floorDiv(yy, 400)
	yoe := yy - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468
}

// civilFromDays is the inverse of daysFromCivil.
func civilFromDays(z int64) (year, month, day int) {
	z += 719468
	era := floorDiv(z, 146097)
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	day = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		month = int(mp + 3)
	} else {
		month = int(mp - 9)
	}
	if month <= 2 {
		y++
	}
	return int(y), month, day
}
