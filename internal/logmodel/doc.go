// Package logmodel defines logscape's view of a centralized logging system:
// the log entry, a canonical line-oriented wire format, and an in-memory
// store with the per-source and per-period indexes the mining techniques
// need.
//
// The model mirrors the minimal assumptions of the paper (§1.3): every
// technique requires at most that a log identifies its source and time of
// creation in a structured way; approach L2 additionally uses the user and
// client-host fields to build sessions, and approach L3 reads the free-text
// message. Timestamps carry a resolution of one millisecond, like the HUG
// logging system described in §4.2.
//
// See DESIGN.md §3 (System inventory).
package logmodel
