//go:build race

package logmodel

// raceEnabled gates allocation-budget tests: the race runtime's
// instrumentation allocates, making testing.AllocsPerRun counts meaningless.
const raceEnabled = true
