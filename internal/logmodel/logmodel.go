package logmodel

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"time"
)

// Millis is a point in time, in milliseconds since the Unix epoch — the
// resolution of the HUG logging system's client-side timestamp.
type Millis int64

// MillisPerSecond, MillisPerHour and MillisPerDay convert between units.
const (
	MillisPerSecond Millis = 1000
	MillisPerMinute        = 60 * MillisPerSecond
	MillisPerHour          = 60 * MillisPerMinute
	MillisPerDay           = 24 * MillisPerHour
)

// FromTime converts a time.Time to Millis.
func FromTime(t time.Time) Millis { return Millis(t.UnixMilli()) }

// Time converts m to a time.Time in UTC.
func (m Millis) Time() time.Time { return time.UnixMilli(int64(m)).UTC() }

// Seconds returns m as a floating-point number of seconds.
func (m Millis) Seconds() float64 { return float64(m) / 1000 }

// SecondsToMillis converts a duration in seconds to Millis, rounding to the
// nearest millisecond.
func SecondsToMillis(s float64) Millis { return Millis(s*1000 + 0.5) }

// Severity classifies a log entry. The mining techniques ignore it, but a
// realistic log stream carries it and the simulator emits all levels.
type Severity uint8

// Severity levels, from least to most severe.
const (
	SevDebug Severity = iota
	SevInfo
	SevWarn
	SevError
)

var severityNames = [...]string{"DEBUG", "INFO", "WARN", "ERROR"}

// String returns the canonical upper-case name of the severity.
func (s Severity) String() string {
	if int(s) < len(severityNames) {
		return severityNames[s]
	}
	return fmt.Sprintf("SEV(%d)", uint8(s))
}

// ParseSeverity parses a canonical severity name.
func ParseSeverity(s string) (Severity, error) {
	for i, n := range severityNames {
		if s == n {
			return Severity(i), nil
		}
	}
	return 0, fmt.Errorf("logmodel: unknown severity %q", s)
}

// Entry is one log message in the centralized logging system.
type Entry struct {
	// Time is the client-side creation timestamp (§4.2: the server-side
	// reception timestamp is unusable due to client-side buffering).
	Time Millis
	// Source identifies the emitting component — an application or service
	// module name. This is the only structured field approach L1 uses.
	Source string
	// Host is the client machine the entry originated from.
	Host string
	// User is the authenticated user on whose behalf the source was acting,
	// or empty for system activity. Together with Host it drives session
	// creation for approach L2.
	User string
	// Severity is the log level.
	Severity Severity
	// Message is the unstructured free-text part, mined by approach L3.
	Message string
}

// Clone returns a durable deep copy of e: every string field is copied off
// whatever backing array it aliased. It is the sanctioned way to retain an
// entry produced by view-mode parsing (ParseEntryBytes with a nil Intern)
// beyond the lifetime of the read buffer — see the ownership contract in
// DESIGN.md §12. Entries produced by intern-mode parsing are already
// durable and do not need cloning.
func (e Entry) Clone() Entry {
	e.Source = strings.Clone(e.Source)
	e.Host = strings.Clone(e.Host)
	e.User = strings.Clone(e.User)
	e.Message = strings.Clone(e.Message)
	return e
}

// TimeRange is a half-open interval [Start, End) of Millis.
type TimeRange struct {
	Start, End Millis
}

// Contains reports whether t falls inside the range.
func (r TimeRange) Contains(t Millis) bool { return t >= r.Start && t < r.End }

// Duration returns End − Start.
func (r TimeRange) Duration() Millis { return r.End - r.Start }

// Hours splits the range into consecutive one-hour sub-ranges. A trailing
// partial hour is included.
func (r TimeRange) Hours() []TimeRange {
	return r.Split(MillisPerHour)
}

// Split splits the range into consecutive sub-ranges of the given width. A
// trailing partial range is included; an empty or inverted range yields nil.
func (r TimeRange) Split(width Millis) []TimeRange {
	if width <= 0 || r.End <= r.Start {
		return nil
	}
	var out []TimeRange
	for s := r.Start; s < r.End; s += width {
		e := s + width
		if e > r.End {
			e = r.End
		}
		out = append(out, TimeRange{Start: s, End: e})
	}
	return out
}

// Day returns the i-th 24-hour day of the range (0-based), assuming the
// range starts at a day boundary.
func (r TimeRange) Day(i int) TimeRange {
	s := r.Start + Millis(i)*MillisPerDay
	e := s + MillisPerDay
	if e > r.End {
		e = r.End
	}
	return TimeRange{Start: s, End: e}
}

// Days returns the number of whole or partial days in the range.
func (r TimeRange) Days() int {
	if r.End <= r.Start {
		return 0
	}
	return int((r.Duration() + MillisPerDay - 1) / MillisPerDay)
}

// Store is an in-memory collection of log entries with the indexes the
// miners need: the entries ordered by time and, per source, the ordered
// timestamp sequence (the "log sequences" A and B of §3.1).
//
// A Store is built by appending entries and then calling Sort (or by using
// Append on already-ordered input, which keeps the store sorted cheaply).
// The query methods require a sorted store and panic otherwise; this is a
// programming error, not an input error. The zero value is a valid empty
// store: an empty store is trivially sorted, so every miner invoked on it
// (or on an empty TimeRange) returns an empty-but-valid result.
type Store struct {
	entries []Entry
	// unsorted records that an out-of-order Append happened since the last
	// Sort. Inverted so the zero-value Store counts as sorted.
	unsorted bool
}

// NewStore returns an empty store with the given capacity hint.
func NewStore(capacity int) *Store {
	return &Store{entries: make([]Entry, 0, capacity)}
}

// Append adds an entry. Appending in non-decreasing time order keeps the
// store sorted; out-of-order appends mark it unsorted until Sort is called.
func (s *Store) Append(e Entry) {
	if n := len(s.entries); n > 0 && e.Time < s.entries[n-1].Time {
		s.unsorted = true
	}
	s.entries = append(s.entries, e)
}

// AppendAll adds all entries of es in one bulk append. Order is checked
// once per batch — the boundary against the current tail plus a single scan
// of es — instead of per-entry, so an already-unsorted store (or a store
// made unsorted by the batch) pays no further compares.
func (s *Store) AppendAll(es []Entry) {
	if len(es) == 0 {
		return
	}
	if !s.unsorted {
		prev := es[0].Time
		if n := len(s.entries); n > 0 && prev < s.entries[n-1].Time {
			s.unsorted = true
		} else {
			for i := 1; i < len(es); i++ {
				if es[i].Time < prev {
					s.unsorted = true
					break
				}
				prev = es[i].Time
			}
		}
	}
	s.entries = append(s.entries, es...)
}

// Len returns the number of entries.
func (s *Store) Len() int { return len(s.entries) }

// Sort orders the entries by time (stable, preserving emission order of
// simultaneous entries).
func (s *Store) Sort() {
	if !s.unsorted {
		return
	}
	slices.SortStableFunc(s.entries, func(a, b Entry) int {
		switch {
		case a.Time < b.Time:
			return -1
		case a.Time > b.Time:
			return 1
		}
		return 0
	})
	s.unsorted = false
}

// Sorted reports whether the store is currently time-ordered.
func (s *Store) Sorted() bool { return !s.unsorted }

func (s *Store) mustBeSorted() {
	if s.unsorted {
		panic("logmodel: store must be sorted; call Sort first")
	}
}

// Entries returns the store's entries. The slice is shared, not copied;
// callers must not modify it.
func (s *Store) Entries() []Entry {
	return s.entries
}

// At returns the i-th entry in time order.
func (s *Store) At(i int) Entry {
	s.mustBeSorted()
	return s.entries[i]
}

// Range returns the sub-slice of entries with Time in [r.Start, r.End).
// The result shares backing storage with the store.
func (s *Store) Range(r TimeRange) []Entry {
	s.mustBeSorted()
	lo := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Time >= r.Start })
	hi := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Time >= r.End })
	return s.entries[lo:hi]
}

// CountRange returns the number of entries in the time range.
func (s *Store) CountRange(r TimeRange) int { return len(s.Range(r)) }

// Span returns the time range covered by the store: [first, last+1ms).
// An empty store yields the zero range.
func (s *Store) Span() TimeRange {
	s.mustBeSorted()
	if len(s.entries) == 0 {
		return TimeRange{}
	}
	return TimeRange{Start: s.entries[0].Time, End: s.entries[len(s.entries)-1].Time + 1}
}

// Sources returns the distinct sources appearing in the store, sorted
// lexicographically.
func (s *Store) Sources() []string {
	seen := make(map[string]bool)
	for i := range s.entries {
		seen[s.entries[i].Source] = true
	}
	out := make([]string, 0, len(seen))
	for src := range seen {
		out = append(out, src)
	}
	sort.Strings(out)
	return out
}

// SourceIndex maps every source to its ordered sequence of log timestamps —
// the representation approach L1 operates on. Entries must be sorted.
func (s *Store) SourceIndex() map[string][]Millis {
	s.mustBeSorted()
	idx := make(map[string][]Millis)
	for i := range s.entries {
		e := &s.entries[i]
		idx[e.Source] = append(idx[e.Source], e.Time)
	}
	return idx
}

// SourceIndexRange is SourceIndex restricted to a time range.
func (s *Store) SourceIndexRange(r TimeRange) map[string][]Millis {
	sub := s.Range(r)
	idx := make(map[string][]Millis)
	for i := range sub {
		e := &sub[i]
		idx[e.Source] = append(idx[e.Source], e.Time)
	}
	return idx
}

// CountBySource returns the number of entries per source.
func (s *Store) CountBySource() map[string]int {
	c := make(map[string]int)
	for i := range s.entries {
		c[s.entries[i].Source]++
	}
	return c
}

// ActivitySeries returns, for the given source, the number of logs per
// bucket of the given width across the range — the data behind figure 1 of
// the paper (logs per second for two interacting applications).
func (s *Store) ActivitySeries(source string, r TimeRange, bucket Millis) []int {
	if bucket <= 0 {
		panic("logmodel: ActivitySeries requires bucket > 0")
	}
	n := int((r.Duration() + bucket - 1) / bucket)
	if n <= 0 {
		return nil
	}
	counts := make([]int, n)
	for _, e := range s.Range(r) {
		if e.Source == source {
			counts[int((e.Time-r.Start)/bucket)]++
		}
	}
	return counts
}

// Filter returns a new store holding the entries satisfying pred, in the
// same order. The result is sorted iff the receiver is.
func (s *Store) Filter(pred func(*Entry) bool) *Store {
	out := NewStore(s.Len() / 2)
	for i := range s.entries {
		if pred(&s.entries[i]) {
			out.entries = append(out.entries, s.entries[i])
		}
	}
	out.unsorted = s.unsorted
	return out
}

// FilterSource returns a new store with only the given source's entries.
func (s *Store) FilterSource(source string) *Store {
	return s.Filter(func(e *Entry) bool { return e.Source == source })
}

// Clone returns a deep copy of the store.
func (s *Store) Clone() *Store {
	es := make([]Entry, len(s.entries))
	copy(es, s.entries)
	return &Store{entries: es, unsorted: s.unsorted}
}

// escapeMessage makes a message safe for the tab-separated wire format. It
// operates on bytes, not runes, so messages that are not valid UTF-8 pass
// through unaltered instead of being replaced with U+FFFD (found by
// FuzzReadLogs: real log streams carry arbitrary bytes).
func escapeMessage(m string) string {
	if !strings.ContainsAny(m, "\t\n\r\\") {
		return m
	}
	var b strings.Builder
	b.Grow(len(m) + 8)
	for i := 0; i < len(m); i++ {
		switch c := m[i]; c {
		case '\t':
			b.WriteString(`\t`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// unescapeMessage reverses escapeMessage. Byte-oriented for the same
// reason.
func unescapeMessage(m string) string {
	if !strings.ContainsRune(m, '\\') {
		return m
	}
	var b strings.Builder
	b.Grow(len(m))
	esc := false
	for i := 0; i < len(m); i++ {
		c := m[i]
		if esc {
			switch c {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte('\\')
				b.WriteByte(c)
			}
			esc = false
			continue
		}
		if c == '\\' {
			esc = true
			continue
		}
		b.WriteByte(c)
	}
	if esc {
		b.WriteByte('\\')
	}
	return b.String()
}
