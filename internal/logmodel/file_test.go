package logmodel

import (
	"os"
	"path/filepath"
	"testing"
)

func osStat(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func writeRaw(name, content string) error {
	return os.WriteFile(name, []byte(content), 0o644)
}

func fileTestStore() *Store {
	s := NewStore(0)
	for i := 0; i < 50; i++ {
		s.Append(Entry{Time: Millis(i * 100), Source: "App", Host: "h",
			User: "u", Severity: SevInfo, Message: "message with\ttab"})
	}
	return s
}

func TestWriteReadFilePlain(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "day.log")
	s := fileTestStore()
	if err := WriteFile(name, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if got.At(i) != s.At(i) {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestWriteReadFileGzip(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "day.log")
	zipped := filepath.Join(dir, "day.log.gz")
	s := fileTestStore()
	if err := WriteFile(plain, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(zipped, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("gz len = %d", got.Len())
	}
	// The compressed file must actually be smaller (highly repetitive
	// content).
	ps, zs := fileSize(t, plain), fileSize(t, zipped)
	if zs >= ps {
		t.Errorf("gz size %d not below plain %d", zs, ps)
	}
}

func fileSize(t *testing.T, name string) int64 {
	t.Helper()
	st, err := osStat(name)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestReadFilesMerges(t *testing.T) {
	dir := t.TempDir()
	a := NewStore(0)
	a.Append(Entry{Time: 10, Source: "A", Severity: SevInfo})
	b := NewStore(0)
	b.Append(Entry{Time: 5, Source: "B", Severity: SevInfo})
	na := filepath.Join(dir, "a.log")
	nb := filepath.Join(dir, "b.log.gz")
	if err := WriteFile(na, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(nb, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFiles([]string{na, nb})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.At(0).Source != "B" {
		t.Errorf("merged = %d entries, first %v", got.Len(), got.At(0))
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile("/nonexistent/file.log"); err == nil {
		t.Error("expected error for missing file")
	}
	// A non-gzip file with .gz suffix must fail cleanly.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.gz")
	if err := writeRaw(bad, "not gzip"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Error("expected gzip header error")
	}
	if _, err := ReadFiles([]string{bad}); err == nil {
		t.Error("ReadFiles should propagate the error")
	}
}
