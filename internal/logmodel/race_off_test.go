//go:build !race

package logmodel

// raceEnabled gates allocation-budget tests; see race_on_test.go.
const raceEnabled = false
