package logmodel

import (
	"testing"
)

// The wire micro-benchmarks are the allocation half of the CI bench gate:
// their allocs/op are deterministic (unlike the end-to-end ingest benchmark,
// whose count breathes with GC timing), so cmd/benchjson compare pins them
// exactly while ns/op gets a tolerance. Keep their names stable — they are
// referenced by BENCH_BASELINE.json and .github/workflows/ci.yml.

var benchLines = [][]byte{
	[]byte("2005-12-06T08:00:00.000Z\tDPIFormidoc\tws-034\tu0117\tINFO\topen form F-207"),
	[]byte("2005-12-06T08:00:00.250Z\tMEDFolder\tws-034\tu0117\tINFO\tfetch folder 88213"),
	[]byte("2005-12-06T08:00:01.000Z\tADTCore\tsrv-01\t\tWARN\tqueue depth 17"),
	[]byte("2005-12-06T08:00:02.750Z\tLabRouter\tws-112\tu0093\tDEBUG\troute specimen \\t tabbed"),
}

func BenchmarkWireParseBytes(b *testing.B) {
	it := NewIntern()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseEntryBytes(benchLines[i&3], it); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireParseBytesView(b *testing.B) {
	// View mode over lines without escapes: the input is not rewritten, so
	// reusing the same lines across iterations is sound.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseEntryBytes(benchLines[i&1], nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireAppendEntry(b *testing.B) {
	it := NewIntern()
	var es [4]Entry
	for i, l := range benchLines {
		e, err := ParseEntryBytes(l, it)
		if err != nil {
			b.Fatal(err)
		}
		es[i] = e
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendEntry(buf[:0], es[i&3])
	}
	_ = buf
}

func BenchmarkWireParseEntry(b *testing.B) {
	// The string-based compatibility path, for comparison against the
	// byte-slice fast path in bench diffs.
	lines := make([]string, len(benchLines))
	for i, l := range benchLines {
		lines[i] = string(l)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseEntry(lines[i&3]); err != nil {
			b.Fatal(err)
		}
	}
}
