package logmodel

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestFormatParseRoundTrip(t *testing.T) {
	e := Entry{
		Time:     FromTime(mustTime(t, "2005-12-06T08:30:15.123Z")),
		Source:   "DPIFormidoc",
		Host:     "pc1234",
		User:     "mdupont",
		Severity: SevWarn,
		Message:  "Invoke externalService [fct [notify] server [myserver.hcuge.ch:9999/myurl]]",
	}
	line := FormatEntry(e)
	got, err := ParseEntry(line)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, e)
	}
}

func mustTime(t *testing.T, s string) time.Time {
	t.Helper()
	parsed, err := time.Parse(time.RFC3339, s)
	if err != nil {
		t.Fatal(err)
	}
	return parsed
}

func TestMessageEscaping(t *testing.T) {
	messages := []string{
		"plain",
		"with\ttab",
		"with\nnewline",
		"with\rcarriage",
		"back\\slash",
		"\\t literal backslash-t",
		"mixed\t\n\\\r end",
		"",
		"trailing backslash\\",
	}
	for _, m := range messages {
		e := Entry{Time: 1000, Source: "S", Severity: SevInfo, Message: m}
		line := FormatEntry(e)
		if strings.ContainsAny(line[strings.LastIndex(line, "\t")+1:], "\n\r") {
			t.Errorf("escaped message contains raw control chars: %q", line)
		}
		got, err := ParseEntry(line)
		if err != nil {
			t.Fatalf("message %q: %v", m, err)
		}
		if got.Message != m {
			t.Errorf("message round trip: got %q, want %q", got.Message, m)
		}
	}
}

// TestEscapeProperty: escape/unescape is the identity for arbitrary strings.
func TestEscapeProperty(t *testing.T) {
	f := func(m string) bool {
		return unescapeMessage(escapeMessage(m)) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseEntryErrors(t *testing.T) {
	cases := []string{
		"", // no fields
		"2005-12-06T08:00:00.000Z\tA\th\tu\tINFO",   // five fields
		"notadate\tA\th\tu\tINFO\tmsg",              // bad timestamp
		"2005-12-06T08:00:00.000Z\tA\th\tu\tX\tm",   // bad severity
		"2005-12-06T08:00:00.000Z\t\th\tu\tINFO\tm", // empty source
	}
	for _, line := range cases {
		if _, err := ParseEntry(line); err == nil {
			t.Errorf("ParseEntry(%q) succeeded, want error", line)
		}
	}
}

func TestWriterReader(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 100; i++ {
		s.Append(Entry{
			Time: Millis(i * 137), Source: "App", Host: "h", User: "u",
			Severity: Severity(i % 4), Message: "msg\twith tab",
		})
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 100 {
		t.Fatalf("read %d entries", got.Len())
	}
	for i := 0; i < 100; i++ {
		if got.At(i) != s.At(i) {
			t.Fatalf("entry %d: %+v != %+v", i, got.At(i), s.At(i))
		}
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	in := "\n" + FormatEntry(Entry{Time: 1, Source: "A", Severity: SevInfo}) + "\n\n"
	s, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestReaderReportsLineNumber(t *testing.T) {
	in := FormatEntry(Entry{Time: 1, Source: "A", Severity: SevInfo}) + "\nbroken line\n"
	_, err := ReadAll(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line 2 mention", err)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		if err := w.Write(Entry{Time: Millis(i), Source: "A", Severity: SevInfo}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 5 {
		t.Errorf("output lines = %d", lines)
	}
}

// TestEntryRoundTripProperty: arbitrary entries survive the wire format
// (modulo the millisecond timestamp resolution and non-empty source, which
// the generator respects).
func TestEntryRoundTripProperty(t *testing.T) {
	f := func(ts int64, src, host, user uint8, sev uint8, msg string) bool {
		e := Entry{
			Time:     Millis(ts % (1 << 40)), // keep within time.Time's formattable range
			Source:   "src" + string(rune('A'+src%26)),
			Host:     "h" + string(rune('a'+host%26)),
			User:     "u" + string(rune('a'+user%26)),
			Severity: Severity(sev % 4),
			Message:  msg,
		}
		if e.Time < 0 {
			e.Time = -e.Time
		}
		got, err := ParseEntry(FormatEntry(e))
		return err == nil && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	a := NewStore(0)
	a.Append(mkEntry(1, "A"))
	a.Append(mkEntry(5, "A"))
	b := NewStore(0)
	b.Append(mkEntry(2, "B"))
	b.Append(mkEntry(4, "B"))
	m := Merge(a, b)
	if m.Len() != 4 {
		t.Fatalf("merged Len = %d", m.Len())
	}
	want := []Millis{1, 2, 4, 5}
	for i, w := range want {
		if m.At(i).Time != w {
			t.Errorf("entry %d time = %v, want %v", i, m.At(i).Time, w)
		}
	}
	if empty := Merge(); empty.Len() != 0 {
		t.Error("Merge() should be empty")
	}
}
