package logmodel

import (
	"testing"
	"time"
)

func TestMillisConversions(t *testing.T) {
	ts := time.Date(2005, 12, 6, 8, 30, 15, 123e6, time.UTC)
	m := FromTime(ts)
	if got := m.Time(); !got.Equal(ts) {
		t.Errorf("round trip: %v != %v", got, ts)
	}
	if s := Millis(1500).Seconds(); s != 1.5 {
		t.Errorf("Seconds = %v", s)
	}
	if m := SecondsToMillis(1.5); m != 1500 {
		t.Errorf("SecondsToMillis = %v", m)
	}
	if m := SecondsToMillis(0.9999); m != 1000 {
		t.Errorf("SecondsToMillis rounding = %v", m)
	}
}

func TestSeverity(t *testing.T) {
	for _, s := range []Severity{SevDebug, SevInfo, SevWarn, SevError} {
		parsed, err := ParseSeverity(s.String())
		if err != nil || parsed != s {
			t.Errorf("round trip %v: %v, %v", s, parsed, err)
		}
	}
	if _, err := ParseSeverity("TRACE"); err == nil {
		t.Error("expected error for unknown severity")
	}
	if s := Severity(9).String(); s != "SEV(9)" {
		t.Errorf("unknown severity String = %q", s)
	}
}

func TestTimeRange(t *testing.T) {
	r := TimeRange{Start: 0, End: 3 * MillisPerHour}
	if !r.Contains(0) || r.Contains(3*MillisPerHour) || !r.Contains(MillisPerHour) {
		t.Error("Contains half-open semantics")
	}
	hours := r.Hours()
	if len(hours) != 3 {
		t.Fatalf("Hours = %d", len(hours))
	}
	if hours[1].Start != MillisPerHour || hours[1].End != 2*MillisPerHour {
		t.Errorf("hour 1 = %+v", hours[1])
	}
	// Partial trailing window.
	r2 := TimeRange{Start: 0, End: MillisPerHour + MillisPerMinute}
	if got := r2.Hours(); len(got) != 2 || got[1].Duration() != MillisPerMinute {
		t.Errorf("partial hours = %+v", got)
	}
	if got := (TimeRange{Start: 5, End: 5}).Hours(); got != nil {
		t.Errorf("empty range Hours = %v", got)
	}
	if got := r.Split(0); got != nil {
		t.Errorf("zero width Split = %v", got)
	}
	week := TimeRange{Start: 0, End: 7 * MillisPerDay}
	if week.Days() != 7 {
		t.Errorf("Days = %d", week.Days())
	}
	d2 := week.Day(2)
	if d2.Start != 2*MillisPerDay || d2.End != 3*MillisPerDay {
		t.Errorf("Day(2) = %+v", d2)
	}
	if (TimeRange{}).Days() != 0 {
		t.Error("empty Days")
	}
}

func mkEntry(t Millis, src string) Entry {
	return Entry{Time: t, Source: src, Host: "h1", User: "u1", Severity: SevInfo, Message: "m"}
}

func TestStoreAppendSort(t *testing.T) {
	s := NewStore(0)
	if !s.Sorted() {
		t.Error("empty store should be sorted")
	}
	s.Append(mkEntry(10, "A"))
	s.Append(mkEntry(20, "B"))
	if !s.Sorted() {
		t.Error("in-order appends should stay sorted")
	}
	s.Append(mkEntry(5, "C"))
	if s.Sorted() {
		t.Error("out-of-order append should mark unsorted")
	}
	s.Sort()
	if !s.Sorted() || s.At(0).Source != "C" {
		t.Errorf("after Sort: first = %+v", s.At(0))
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStoreAppendAll(t *testing.T) {
	// In-order batches (internally sorted, each starting at or after the
	// previous tail) must keep the store sorted.
	s := NewStore(0)
	s.AppendAll([]Entry{mkEntry(10, "A"), mkEntry(20, "B")})
	s.AppendAll(nil)
	s.AppendAll([]Entry{mkEntry(20, "C"), mkEntry(30, "D")})
	if !s.Sorted() {
		t.Error("in-order batches should stay sorted")
	}
	if s.Len() != 4 || s.At(2).Source != "C" {
		t.Errorf("bulk append order wrong: len=%d entries=%+v", s.Len(), s.Entries())
	}

	// A batch starting before the store's tail must mark it unsorted.
	s.AppendAll([]Entry{mkEntry(5, "E")})
	if s.Sorted() {
		t.Error("batch starting before the tail should mark the store unsorted")
	}

	// Internal disorder inside one batch must mark it unsorted too.
	s2 := NewStore(0)
	s2.AppendAll([]Entry{mkEntry(10, "A"), mkEntry(5, "B"), mkEntry(20, "C")})
	if s2.Sorted() {
		t.Error("internally unsorted batch should mark the store unsorted")
	}
	s2.Sort()
	if s2.At(0).Source != "B" || s2.Len() != 3 {
		t.Errorf("Sort after bulk append: %+v", s2.Entries())
	}

	// Equivalence with per-entry Append on a random interleaving.
	es := []Entry{mkEntry(3, "x"), mkEntry(1, "y"), mkEntry(2, "z"), mkEntry(1, "w")}
	bulk, single := NewStore(0), NewStore(0)
	bulk.AppendAll(es)
	for _, e := range es {
		single.Append(e)
	}
	bulk.Sort()
	single.Sort()
	for i := 0; i < single.Len(); i++ {
		if bulk.At(i) != single.At(i) {
			t.Fatalf("entry %d: bulk %+v vs single %+v", i, bulk.At(i), single.At(i))
		}
	}
}

func TestStoreSortStable(t *testing.T) {
	s := NewStore(0)
	s.Append(mkEntry(10, "first"))
	s.Append(mkEntry(10, "second"))
	s.Append(mkEntry(5, "zero"))
	s.Sort()
	if s.At(1).Source != "first" || s.At(2).Source != "second" {
		t.Error("Sort is not stable for equal timestamps")
	}
}

func TestStoreUnsortedPanics(t *testing.T) {
	s := NewStore(0)
	s.Append(mkEntry(10, "A"))
	s.Append(mkEntry(5, "B"))
	defer func() {
		if recover() == nil {
			t.Error("Range on unsorted store should panic")
		}
	}()
	s.Range(TimeRange{Start: 0, End: 100})
}

func TestStoreRange(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 10; i++ {
		s.Append(mkEntry(Millis(i*10), "A"))
	}
	got := s.Range(TimeRange{Start: 20, End: 50})
	if len(got) != 3 {
		t.Fatalf("Range len = %d", len(got))
	}
	if got[0].Time != 20 || got[2].Time != 40 {
		t.Errorf("Range bounds: %v..%v", got[0].Time, got[2].Time)
	}
	if n := s.CountRange(TimeRange{Start: 0, End: 1000}); n != 10 {
		t.Errorf("CountRange = %d", n)
	}
	if n := s.CountRange(TimeRange{Start: 95, End: 99}); n != 0 {
		t.Errorf("empty CountRange = %d", n)
	}
}

func TestStoreSpan(t *testing.T) {
	s := NewStore(0)
	if sp := s.Span(); sp != (TimeRange{}) {
		t.Errorf("empty Span = %+v", sp)
	}
	s.Append(mkEntry(100, "A"))
	s.Append(mkEntry(200, "B"))
	sp := s.Span()
	if sp.Start != 100 || sp.End != 201 {
		t.Errorf("Span = %+v", sp)
	}
	if !sp.Contains(200) {
		t.Error("Span must contain the last entry")
	}
}

func TestStoreSources(t *testing.T) {
	s := NewStore(0)
	s.Append(mkEntry(1, "B"))
	s.Append(mkEntry(2, "A"))
	s.Append(mkEntry(3, "B"))
	got := s.Sources()
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Sources = %v", got)
	}
	counts := s.CountBySource()
	if counts["B"] != 2 || counts["A"] != 1 {
		t.Errorf("CountBySource = %v", counts)
	}
}

func TestSourceIndex(t *testing.T) {
	s := NewStore(0)
	s.Append(mkEntry(1, "A"))
	s.Append(mkEntry(2, "B"))
	s.Append(mkEntry(3, "A"))
	idx := s.SourceIndex()
	if len(idx["A"]) != 2 || idx["A"][0] != 1 || idx["A"][1] != 3 {
		t.Errorf("SourceIndex[A] = %v", idx["A"])
	}
	sub := s.SourceIndexRange(TimeRange{Start: 2, End: 4})
	if len(sub["A"]) != 1 || sub["A"][0] != 3 || len(sub["B"]) != 1 {
		t.Errorf("SourceIndexRange = %v", sub)
	}
}

func TestActivitySeries(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 10; i++ {
		s.Append(mkEntry(Millis(i*500), "A")) // one every 0.5 s
	}
	r := TimeRange{Start: 0, End: 5000}
	series := s.ActivitySeries("A", r, MillisPerSecond)
	if len(series) != 5 {
		t.Fatalf("series len = %d", len(series))
	}
	for i, c := range series {
		if c != 2 {
			t.Errorf("bucket %d = %d, want 2", i, c)
		}
	}
	if got := s.ActivitySeries("B", r, MillisPerSecond); len(got) != 5 || got[0] != 0 {
		t.Errorf("series for absent source = %v", got)
	}
	if got := s.ActivitySeries("A", TimeRange{Start: 5, End: 5}, MillisPerSecond); got != nil {
		t.Errorf("empty range series = %v", got)
	}
}

func TestActivitySeriesPanicsOnZeroBucket(t *testing.T) {
	s := NewStore(0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.ActivitySeries("A", TimeRange{End: 10}, 0)
}

func TestFilter(t *testing.T) {
	s := NewStore(0)
	s.Append(mkEntry(1, "A"))
	s.Append(mkEntry(2, "B"))
	s.Append(mkEntry(3, "A"))
	got := s.FilterSource("A")
	if got.Len() != 2 || got.At(0).Time != 1 || got.At(1).Time != 3 {
		t.Errorf("FilterSource = %+v", got.Entries())
	}
	if !got.Sorted() {
		t.Error("filtered store lost sortedness")
	}
	sev := s.Filter(func(e *Entry) bool { return e.Severity == SevInfo })
	if sev.Len() != 3 {
		t.Errorf("severity filter = %d", sev.Len())
	}
	// Filtering an unsorted store keeps it unsorted.
	u := NewStore(0)
	u.Append(mkEntry(5, "X"))
	u.Append(mkEntry(1, "X"))
	if u.FilterSource("X").Sorted() {
		t.Error("unsorted filter reported sorted")
	}
}

func TestClone(t *testing.T) {
	s := NewStore(0)
	s.Append(mkEntry(1, "A"))
	c := s.Clone()
	c.Append(mkEntry(2, "B"))
	if s.Len() != 1 || c.Len() != 2 {
		t.Errorf("Clone not independent: %d vs %d", s.Len(), c.Len())
	}
}
