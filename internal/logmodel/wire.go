package logmodel

import (
	"bufio"
	"fmt"
	"io"
)

// The wire format is one entry per line, tab-separated:
//
//	<RFC3339-millis timestamp> \t <source> \t <host> \t <user> \t <severity> \t <message>
//
// Tabs, newlines and backslashes inside the message are backslash-escaped.
// The format is intentionally trivial: the paper's point is that the miners
// need almost no structure, so the substrate should not either.
//
// The hot-path implementations — ParseEntryBytes, AppendEntry and the
// intern table — live in wirebytes.go; this file keeps the string-based
// API and the stream Reader/Writer on top of them.

// TimeLayout is RFC3339 with millisecond precision, the timestamp format of
// the wire format. Exported so tooling that rewrites wire lines in place
// (e.g. the chaos injector's clock-skew fault) shares the exact layout.
const TimeLayout = "2006-01-02T15:04:05.000Z07:00"

// timeLayout is the internal alias TimeLayout grew out of.
const timeLayout = TimeLayout

// FormatEntry renders an entry as one wire-format line (without trailing
// newline).
func FormatEntry(e Entry) string {
	return string(AppendEntry(make([]byte, 0, 64+len(e.Source)+len(e.Host)+len(e.User)+len(e.Message)), e))
}

// ParseEntry parses one wire-format line.
func ParseEntry(line string) (Entry, error) {
	// View-mode parse over a private copy of the line: the returned fields
	// alias the copy, which nothing else references, so the Entry is as
	// durable as with the old per-field copies — at one allocation instead
	// of several. Bulk callers should use ParseEntryBytes with an Intern.
	return ParseEntryBytes([]byte(line), nil)
}

// Writer streams entries to an io.Writer in wire format.
type Writer struct {
	bw    *bufio.Writer
	buf   []byte
	count int
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one entry.
func (w *Writer) Write(e Entry) error {
	w.buf = AppendEntry(w.buf[:0], e)
	w.buf = append(w.buf, '\n')
	if _, err := w.bw.Write(w.buf); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of entries written so far.
func (w *Writer) Count() int { return w.count }

// Flush flushes buffered output. It must be called before the underlying
// writer is closed.
func (w *Writer) Flush() error { return w.bw.Flush() }

// WriteAll writes all entries of the store to w in wire format.
func WriteAll(w io.Writer, s *Store) error {
	lw := NewWriter(w)
	for _, e := range s.Entries() {
		if err := lw.Write(e); err != nil {
			return err
		}
	}
	return lw.Flush()
}

// maxLineBytes caps one wire-format line, matching the scanner limit the
// Reader historically used (and stream.MaxLineBytes on the hardened path).
const maxLineBytes = 1 << 22

// Reader streams entries from an io.Reader in wire format. Entries share an
// intern table: repeated Source/Host/User values are allocated once per
// distinct value and messages are copied out of the read buffer, so every
// returned Entry is durable.
type Reader struct {
	br   *bufio.Reader
	line int
	// long accumulates a line that outgrew the bufio buffer.
	long []byte
	it   *Intern
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16), it: NewIntern()}
}

// readLine returns the next physical line — without its newline, and
// without a final carriage return — or io.EOF after the last line. The
// returned slice is only valid until the next call.
func (r *Reader) readLine() ([]byte, error) {
	r.long = r.long[:0]
	for {
		chunk, err := r.br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			if len(r.long)+len(chunk) > maxLineBytes {
				return nil, bufio.ErrTooLong
			}
			r.long = append(r.long, chunk...)
			continue
		}
		if err != nil && err != io.EOF {
			return nil, err
		}
		line := chunk
		if len(r.long) > 0 {
			r.long = append(r.long, chunk...)
			line = r.long
		}
		if len(line) == 0 {
			return nil, io.EOF
		}
		if line[len(line)-1] == '\n' {
			line = line[:len(line)-1]
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		return line, nil
	}
}

// Read returns the next entry, or io.EOF at end of input. Blank lines are
// skipped. Parse errors include the line number.
func (r *Reader) Read() (Entry, error) {
	for {
		line, err := r.readLine()
		if err != nil {
			return Entry{}, err
		}
		r.line++
		if len(line) == 0 {
			continue
		}
		e, err := ParseEntryBytes(line, r.it)
		if err != nil {
			return Entry{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		return e, nil
	}
}

// ReadBatch fills dst with up to len(dst) entries, returning how many were
// read. The final batch returns n > 0 together with io.EOF when the input
// ends mid-batch; a subsequent call returns (0, io.EOF). Batching amortizes
// per-entry call overhead for bulk loaders (see ReadAll and the stream
// ingest path).
func (r *Reader) ReadBatch(dst []Entry) (int, error) {
	for n := 0; n < len(dst); n++ {
		e, err := r.Read()
		if err != nil {
			return n, err
		}
		dst[n] = e
	}
	return len(dst), nil
}

// ReadAll reads all entries from r into a new store and sorts it.
func ReadAll(r io.Reader) (*Store, error) {
	s := NewStore(1024)
	lr := NewReader(r)
	var batch [512]Entry
	for {
		n, err := lr.ReadBatch(batch[:])
		s.AppendAll(batch[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	s.Sort()
	return s, nil
}

// Merge combines several sorted stores into one sorted store.
func Merge(stores ...*Store) *Store {
	total := 0
	for _, s := range stores {
		total += s.Len()
	}
	out := NewStore(total)
	for _, s := range stores {
		out.AppendAll(s.Entries())
	}
	out.Sort()
	return out
}
