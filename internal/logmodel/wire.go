package logmodel

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// The wire format is one entry per line, tab-separated:
//
//	<RFC3339-millis timestamp> \t <source> \t <host> \t <user> \t <severity> \t <message>
//
// Tabs, newlines and backslashes inside the message are backslash-escaped.
// The format is intentionally trivial: the paper's point is that the miners
// need almost no structure, so the substrate should not either.

// TimeLayout is RFC3339 with millisecond precision, the timestamp format of
// the wire format. Exported so tooling that rewrites wire lines in place
// (e.g. the chaos injector's clock-skew fault) shares the exact layout.
const TimeLayout = "2006-01-02T15:04:05.000Z07:00"

// timeLayout is the internal alias TimeLayout grew out of.
const timeLayout = TimeLayout

// FormatEntry renders an entry as one wire-format line (without trailing
// newline).
func FormatEntry(e Entry) string {
	return fmt.Sprintf("%s\t%s\t%s\t%s\t%s\t%s",
		e.Time.Time().Format(timeLayout),
		e.Source, e.Host, e.User, e.Severity, escapeMessage(e.Message))
}

// ParseEntry parses one wire-format line.
func ParseEntry(line string) (Entry, error) {
	parts := strings.SplitN(line, "\t", 6)
	if len(parts) != 6 {
		return Entry{}, fmt.Errorf("logmodel: malformed line: %d fields, want 6", len(parts))
	}
	ts, err := time.Parse(timeLayout, parts[0])
	if err != nil {
		return Entry{}, fmt.Errorf("logmodel: bad timestamp %q: %w", parts[0], err)
	}
	sev, err := ParseSeverity(parts[4])
	if err != nil {
		return Entry{}, err
	}
	if parts[1] == "" {
		return Entry{}, fmt.Errorf("logmodel: empty source field")
	}
	return Entry{
		Time:     FromTime(ts),
		Source:   parts[1],
		Host:     parts[2],
		User:     parts[3],
		Severity: sev,
		Message:  unescapeMessage(parts[5]),
	}, nil
}

// Writer streams entries to an io.Writer in wire format.
type Writer struct {
	bw    *bufio.Writer
	count int
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one entry.
func (w *Writer) Write(e Entry) error {
	if _, err := w.bw.WriteString(FormatEntry(e)); err != nil {
		return err
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of entries written so far.
func (w *Writer) Count() int { return w.count }

// Flush flushes buffered output. It must be called before the underlying
// writer is closed.
func (w *Writer) Flush() error { return w.bw.Flush() }

// WriteAll writes all entries of the store to w in wire format.
func WriteAll(w io.Writer, s *Store) error {
	lw := NewWriter(w)
	for _, e := range s.Entries() {
		if err := lw.Write(e); err != nil {
			return err
		}
	}
	return lw.Flush()
}

// Reader streams entries from an io.Reader in wire format.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	return &Reader{sc: sc}
}

// Read returns the next entry, or io.EOF at end of input. Blank lines are
// skipped. Parse errors include the line number.
func (r *Reader) Read() (Entry, error) {
	for r.sc.Scan() {
		r.line++
		line := r.sc.Text()
		if line == "" {
			continue
		}
		e, err := ParseEntry(line)
		if err != nil {
			return Entry{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		return e, nil
	}
	if err := r.sc.Err(); err != nil {
		return Entry{}, err
	}
	return Entry{}, io.EOF
}

// ReadAll reads all entries from r into a new store and sorts it.
func ReadAll(r io.Reader) (*Store, error) {
	s := NewStore(1024)
	lr := NewReader(r)
	for {
		e, err := lr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		s.Append(e)
	}
	s.Sort()
	return s, nil
}

// Merge combines several sorted stores into one sorted store.
func Merge(stores ...*Store) *Store {
	total := 0
	for _, s := range stores {
		total += s.Len()
	}
	out := NewStore(total)
	for _, s := range stores {
		out.AppendAll(s.Entries())
	}
	out.Sort()
	return out
}
