package logmodel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
	"unsafe"
)

// unsafeStringData exposes a string's backing pointer so the tests can
// assert that interned values share storage, not just content.
func unsafeStringData(s string) *byte { return unsafe.StringData(s) }

// The tests here pin the two contracts wirebytes.go lives by: byte-for-byte
// equivalence with the string-based wire functions, and zero steady-state
// allocations per entry. DESIGN.md §12 documents both.

// wireLines is the differential corpus: canonical lines, every escape form,
// non-UTF-8 bytes, exotic-but-legal timestamps, and a malformed line per
// error class.
var wireLines = []string{
	"2005-12-06T08:00:00.000Z\tDPIFormidoc\tws-034\tu0117\tINFO\topen form F-207",
	"2005-12-06T08:00:00.250Z\tMEDFolder\tws-034\tu0117\tDEBUG\tfetch folder 88213",
	"2005-12-06T08:00:01.000Z\tADTCore\tsrv-01\t\tWARN\tqueue depth 17",
	"2005-12-06T08:00:01.000Z\tADTCore\tsrv-01\t\tERROR\t",
	"2005-12-06T08:00:01.000Z\tADTCore\tsrv-01\t\tFATAL\tdown",
	"1999-12-31T23:59:59.999Z\tY2K\th\tu\tINFO\tboundary",
	"2000-02-29T12:00:00.000Z\tLeap\th\tu\tINFO\tleap day",
	"2005-12-06T08:00:00.000+01:00\tOffset\th\tu\tINFO\tpositive offset",
	"2005-12-06T08:00:00.000-09:30\tOffset\th\tu\tINFO\tnegative offset",
	"0001-01-01T00:00:00.000Z\tAncient\th\tu\tINFO\tyear one",
	"9999-12-31T23:59:59.999Z\tFar\th\tu\tINFO\tlast representable formatted year",
	"2005-12-06T08:00:00.000Z\tEsc\th\tu\tINFO\ttab\\there",
	"2005-12-06T08:00:00.000Z\tEsc\th\tu\tINFO\tnew\\nline and \\\\ backslash and \\r",
	"2005-12-06T08:00:00.000Z\tEsc\th\tu\tINFO\tbad escape \\x kept",
	"2005-12-06T08:00:00.000Z\tEsc\th\tu\tINFO\ttrailing backslash \\",
	"2005-12-06T08:00:00.000Z\tBin\th\tu\tINFO\tnon-utf8 \xff\xfe bytes",
	"2005-12-06T08:00:00.000Z\t\xffSrc\t\xfeH\t\xfdU\tINFO\tnon-utf8 fields",
	// Malformed: field-count, timestamp, severity, empty source.
	"2005-12-06T08:00:00.000Z\tonly\tfive\tfields\tINFO",
	"not-a-timestamp\ts\th\tu\tINFO\tmsg",
	"2005-13-06T08:00:00.000Z\ts\th\tu\tINFO\tbad month",
	"2005-02-29T08:00:00.000Z\ts\th\tu\tINFO\tbad leap day",
	"2005-12-06T08:00:60.000Z\ts\th\tu\tINFO\tbad second",
	"2005-12-06T08:00:00,000Z\ts\th\tu\tINFO\tcomma fraction",
	"2005-12-06T08:00:00.000+25:00\ts\th\tu\tINFO\tout-of-range offset hour",
	"2005-12-06T08:00:00.000Z\ts\th\tu\tNOTICE\tunknown severity",
	"2005-12-06T08:00:00.000Z\t\th\tu\tINFO\tempty source",
	"",
	"\t\t\t\t\t",
}

// TestParseEntryBytesDifferential pins ParseEntryBytes (both modes) to
// ParseEntry: the same Entry on success, an error for exactly the same
// inputs with the same message.
func TestParseEntryBytesDifferential(t *testing.T) {
	it := NewIntern()
	for _, line := range wireLines {
		want, wantErr := ParseEntry(line)

		interned := []byte(line)
		got, gotErr := ParseEntryBytes(interned, it)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("intern mode disagreement on %q: ParseEntry err %v, ParseEntryBytes err %v",
				line, wantErr, gotErr)
		}
		if wantErr != nil && gotErr.Error() != wantErr.Error() {
			t.Fatalf("error text differs on %q:\n ParseEntry:      %v\n ParseEntryBytes: %v",
				line, wantErr, gotErr)
		}
		if wantErr == nil && got != want {
			t.Fatalf("intern mode entry differs on %q:\n want %+v\n got  %+v", line, want, got)
		}
		if string(interned) != line {
			t.Fatalf("intern mode modified its input: %q -> %q", line, interned)
		}

		view := []byte(line)
		got, gotErr = ParseEntryBytes(view, nil)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("view mode disagreement on %q: %v vs %v", line, wantErr, gotErr)
		}
		if wantErr == nil && got != want {
			t.Fatalf("view mode entry differs on %q:\n want %+v\n got  %+v", line, want, got)
		}
	}
}

// TestParseEntryBytesIntoMatches pins the pointer variant to the value
// variant, including the reused-variable case where stale fields must be
// overwritten.
func TestParseEntryBytesIntoMatches(t *testing.T) {
	it := NewIntern()
	e := Entry{Source: "stale", Host: "stale", User: "stale", Message: "stale", Severity: SevError, Time: 42}
	for _, line := range wireLines {
		want, wantErr := ParseEntryBytes([]byte(line), it)
		err := ParseEntryBytesInto(&e, []byte(line), it)
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("Into disagreement on %q: %v vs %v", line, wantErr, err)
		}
		if err == nil && e != want {
			t.Fatalf("Into entry differs on %q:\n want %+v\n got  %+v", line, want, e)
		}
	}
}

// TestAppendEntryDifferential pins AppendEntry to the fmt-based formatting
// FormatEntry historically produced, reimplemented here as the reference.
func TestAppendEntryDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	es := []Entry{
		{Time: 0, Source: "s", Host: "h", User: "u", Severity: SevInfo, Message: "m"},
		{Time: -1, Source: "s", Severity: SevDebug},
		{Time: 1133856000000, Source: "a b", Host: "h/h", User: "", Severity: SevError,
			Message: "tab\there new\nline \\ cr\r end"},
		{Time: 1133856000000, Source: "s", Severity: Severity(200), Message: "unknown severity"},
		{Time: -62135596800000, Source: "s", Severity: SevWarn, Message: "year 1"},
		{Time: 253402300799999, Source: "s", Severity: SevWarn, Message: "year 9999"},
		{Time: 253402300800000, Source: "s", Severity: SevWarn, Message: "year 10000: formatter fallback"},
		{Time: -62167219200001, Source: "s", Severity: SevWarn, Message: "before year 0: formatter fallback"},
	}
	for i := 0; i < 200; i++ {
		es = append(es, Entry{
			Time:     Millis(rng.Int63n(2*253402300800000) - 253402300800000),
			Source:   "src",
			Severity: SevInfo,
			Message:  "m",
		})
	}
	for _, e := range es {
		sev := e.Severity.String()
		want := fmt.Sprintf("%s\t%s\t%s\t%s\t%s\t%s",
			e.Time.Time().Format(TimeLayout), e.Source, e.Host, e.User, sev, escapeMessage(e.Message))
		got := string(AppendEntry(nil, e))
		if got != want {
			t.Fatalf("AppendEntry differs for %+v:\n want %q\n got  %q", e, want, got)
		}
		if f := FormatEntry(e); f != want {
			t.Fatalf("FormatEntry differs for %+v:\n want %q\n got  %q", e, want, f)
		}
	}
}

// TestWireTimeCodecDifferential sweeps the fixed-layout timestamp codec
// against the time package on random and boundary instants.
func TestWireTimeCodecDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ms := []int64{0, -1, 1, -62167219200000, 253402300799999, 951826154321, -10, 86400000}
	for i := 0; i < 5000; i++ {
		ms = append(ms, rng.Int63n(2*253402300800000)-253402300800000)
	}
	for _, m := range ms {
		want := Millis(m).Time().Format(TimeLayout)
		got := string(appendWireTime(nil, Millis(m)))
		if got != want {
			t.Fatalf("appendWireTime(%d) = %q, want %q", m, got, want)
		}
		// Round-trip through the strict parser for the canonical 24-byte
		// form; years outside [0, 9999] format with a sign prefix, which the
		// strict parser correctly leaves to the time.Parse fallback.
		if len(want) == 24 {
			back, ok := parseWireTime([]byte(want))
			if !ok {
				t.Fatalf("parseWireTime rejected its own formatter's output %q", want)
			}
			if back != Millis(m) {
				t.Fatalf("parseWireTime(%q) = %d, want %d", want, back, m)
			}
		}
	}
	// Offset forms: the parser must agree with time.Parse.
	for _, s := range []string{
		"2005-12-06T08:00:00.000+01:00",
		"2005-12-06T08:00:00.000-09:30",
		"2005-12-06T08:00:00.000+23:59",
	} {
		want, err := time.Parse(TimeLayout, s)
		if err != nil {
			t.Fatalf("time.Parse(%q): %v", s, err)
		}
		got, ok := parseWireTime([]byte(s))
		if !ok {
			t.Fatalf("parseWireTime rejected %q", s)
		}
		if got != FromTime(want) {
			t.Fatalf("parseWireTime(%q) = %d, want %d", s, got, FromTime(want))
		}
	}
}

// TestInternDedup checks that repeated values share one interned copy and
// that the table cap degrades to per-occurrence copies, not errors.
func TestInternDedup(t *testing.T) {
	it := NewIntern()
	a := it.Bytes([]byte("DPIFormidoc"))
	b := it.Bytes([]byte("DPIFormidoc"))
	if a != b {
		t.Fatalf("interned values differ: %q vs %q", a, b)
	}
	// Same backing pointer, not just equal content.
	if unsafeStringData(a) != unsafeStringData(b) {
		t.Fatal("interned copies do not share storage")
	}
	if got := it.Bytes(nil); got != "" {
		t.Fatalf("interning empty bytes = %q, want \"\"", got)
	}
	s1, h1, u1 := it.triple([]byte("s\th\tu"), []byte("s"), []byte("h"), []byte("u"))
	s2, h2, u2 := it.triple([]byte("s\th\tu"), []byte("s"), []byte("h"), []byte("u"))
	if s1 != s2 || h1 != h2 || u1 != u2 {
		t.Fatal("triple intern returned different values for the same key")
	}
	if unsafeStringData(s1) != unsafeStringData(s2) {
		t.Fatal("triple-interned source does not share storage")
	}
}

// TestInternDurability checks the headline ownership property: entries
// parsed in intern mode stay intact after the input buffer is reused.
func TestInternDurability(t *testing.T) {
	it := NewIntern()
	buf := []byte("2005-12-06T08:00:00.000Z\tSrc\tHost\tUser\tINFO\ta message with \\t escape")
	e, err := ParseEntryBytes(buf, it)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 'X'
	}
	if e.Source != "Src" || e.Host != "Host" || e.User != "User" || e.Message != "a message with \t escape" {
		t.Fatalf("interned entry corrupted by buffer reuse: %+v", e)
	}
}

// TestViewModeAliasing documents view mode's contract: fields alias the
// input buffer, and only the message region may be rewritten (unescaping).
func TestViewModeAliasing(t *testing.T) {
	buf := []byte("2005-12-06T08:00:00.000Z\tSrc\tHost\tUser\tINFO\tplain message")
	orig := string(buf)
	e, err := ParseEntryBytes(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != orig {
		t.Fatalf("escape-free line modified in view mode: %q", buf)
	}
	buf[25] = 'X' // first byte of the source field
	if e.Source != "Xrc" {
		t.Fatalf("view-mode source does not alias the buffer: %q", e.Source)
	}
}

// TestUnescapeAppendMatchesUnescapeMessage pins the byte-level unescaper to
// the string one, including in-place operation.
func TestUnescapeAppendMatchesUnescapeMessage(t *testing.T) {
	cases := []string{
		"", "plain", "a\\tb", "a\\nb\\rc", "\\\\", "\\", "x\\", "\\x", "\\t\\t\\t",
		"mixed \\t and \\q and \\\\ and trailing \\",
		"non-utf8 \xff\\t\xfe",
	}
	for _, c := range cases {
		want := unescapeMessage(c)
		if got := string(unescapeAppend(nil, []byte(c))); got != want {
			t.Fatalf("unescapeAppend(%q) = %q, want %q", c, got, want)
		}
		b := []byte(c)
		if got := string(unescapeAppend(b[:0], b)); got != want {
			t.Fatalf("in-place unescapeAppend(%q) = %q, want %q", c, got, want)
		}
	}
}

// --- allocation budgets ----------------------------------------------------

// TestParseEntryBytesAllocFree pins the steady-state allocation budget of
// the ingest hot path: zero allocations per entry for view-mode parsing, and
// amortized-zero for intern mode (one arena chunk per ~2k messages is the
// only allowed source).
func TestParseEntryBytesAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	line := []byte("2005-12-06T08:00:00.000Z\tDPIFormidoc\tws-034\tu0117\tINFO\topen form F-207")

	view := testing.AllocsPerRun(1000, func() {
		if _, err := ParseEntryBytes(line, nil); err != nil {
			t.Fatal(err)
		}
	})
	if view != 0 {
		t.Fatalf("view-mode ParseEntryBytes allocates %v/op, want 0", view)
	}

	it := NewIntern()
	if _, err := ParseEntryBytes(line, it); err != nil { // warm the tables
		t.Fatal(err)
	}
	interned := testing.AllocsPerRun(5000, func() {
		if _, err := ParseEntryBytes(line, it); err != nil {
			t.Fatal(err)
		}
	})
	// The 15-byte message lands in the 64KiB arena: one chunk allocation per
	// ~4300 parses. Anything above that amortized rate is a regression.
	if interned > 0.01 {
		t.Fatalf("intern-mode ParseEntryBytes allocates %v/op, want amortized ~0", interned)
	}

	var e Entry
	into := testing.AllocsPerRun(1000, func() {
		if err := ParseEntryBytesInto(&e, line, nil); err != nil {
			t.Fatal(err)
		}
	})
	if into != 0 {
		t.Fatalf("view-mode ParseEntryBytesInto allocates %v/op, want 0", into)
	}
}

// TestAppendEntryAllocFree pins AppendEntry to zero allocations with a
// pre-sized destination.
func TestAppendEntryAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	e := Entry{Time: 1133856000000, Source: "DPIFormidoc", Host: "ws-034",
		User: "u0117", Severity: SevInfo, Message: "open form F-207"}
	buf := make([]byte, 0, 256)
	n := testing.AllocsPerRun(1000, func() {
		buf = AppendEntry(buf[:0], e)
	})
	if n != 0 {
		t.Fatalf("AppendEntry allocates %v/op into a pre-sized buffer, want 0", n)
	}
}

// --- batched reader --------------------------------------------------------

// TestReadBatch checks that batched reads see exactly the stream's entries
// in order, across batch sizes that do and do not divide the entry count.
func TestReadBatch(t *testing.T) {
	var sb strings.Builder
	var want []Entry
	for i := 0; i < 10; i++ {
		e := Entry{Time: Millis(1000 * i), Source: fmt.Sprintf("s%d", i), Severity: SevInfo,
			Message: fmt.Sprintf("m%d", i)}
		want = append(want, e)
		sb.WriteString(FormatEntry(e))
		sb.WriteByte('\n')
	}
	for _, size := range []int{1, 3, 10, 64} {
		r := NewReader(strings.NewReader(sb.String()))
		buf := make([]Entry, size)
		var got []Entry
		for {
			n, err := r.ReadBatch(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				break
			}
		}
		if len(got) != len(want) {
			t.Fatalf("batch size %d: got %d entries, want %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch size %d entry %d: got %+v want %+v", size, i, got[i], want[i])
			}
		}
	}
}

// TestReaderLongLine checks the ReadSlice spill path: lines longer than the
// reader's internal buffer parse intact, and lines beyond maxLineBytes fail
// with bufio.ErrTooLong rather than buffering unboundedly.
func TestReaderLongLine(t *testing.T) {
	long := strings.Repeat("x", 1<<17) // past the 64KiB bufio buffer
	e := Entry{Time: 0, Source: "s", Severity: SevInfo, Message: long}
	r := NewReader(strings.NewReader(FormatEntry(e) + "\n"))
	got, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Message != long {
		t.Fatalf("long message mangled: len %d want %d", len(got.Message), len(long))
	}
}

func TestEntryCloneDetachesFromBuffer(t *testing.T) {
	line := []byte("2004-03-01T00:00:00.000Z\tsrc\thostA\tuserB\tINFO\thello world")
	e, err := ParseEntryBytes(line, nil) // view mode: fields alias line
	if err != nil {
		t.Fatal(err)
	}
	c := e.Clone()
	for i := range line {
		line[i] = 'x' // clobber the buffer, as a reader reusing it would
	}
	if c.Source != "src" || c.Host != "hostA" || c.User != "userB" || c.Message != "hello world" {
		t.Errorf("clone aliases the clobbered buffer: %+v", c)
	}
	if c.Time != e.Time || c.Severity != e.Severity {
		t.Errorf("clone changed value fields: %+v vs %+v", c, e)
	}
}
