package logmodel

import (
	"compress/gzip"
	"os"
	"strings"
)

// File helpers with transparent gzip support: centralized log archives are
// almost always compressed (the paper's environment accumulates more than a
// terabyte of logs per year), so the tooling reads and writes ".gz" files
// directly.

// WriteFile writes the store to the named file in wire format, gzipped when
// the name ends in ".gz".
func WriteFile(name string, s *Store) (err error) {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if strings.HasSuffix(name, ".gz") {
		zw := gzip.NewWriter(f)
		if err := WriteAll(zw, s); err != nil {
			zw.Close()
			return err
		}
		return zw.Close()
	}
	return WriteAll(f, s)
}

// ReadFile reads a wire-format log file into a sorted store, transparently
// decompressing when the name ends in ".gz".
func ReadFile(name string) (*Store, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(name, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		return ReadAll(zr)
	}
	return ReadAll(f)
}

// ReadFiles reads and merges several log files into one sorted store.
func ReadFiles(names []string) (*Store, error) {
	stores := make([]*Store, 0, len(names))
	for _, name := range names {
		s, err := ReadFile(name)
		if err != nil {
			return nil, err
		}
		stores = append(stores, s)
	}
	return Merge(stores...), nil
}
