package logmodel

// Native fuzz coverage for the wire-format parser, complementing the
// testing/quick round-trip properties in wire_test.go. Seed corpora live
// under testdata/fuzz/.

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadLogs feeds arbitrary byte streams to the wire-format reader. The
// invariants: ReadAll never panics, and any stream it accepts round-trips —
// writing the parsed store and reading it back reproduces every entry
// exactly (timestamps normalize to millisecond UTC, messages through the
// escape/unescape pair).
func FuzzReadLogs(f *testing.F) {
	f.Add("2005-12-06T08:00:00.000Z\tDPIFormidoc\thost1\tu17\tINFO\thello world")
	f.Add("2005-12-06T08:00:00.000Z\tA\t\t\tDEBUG\ttabbed\\tmessage\n" +
		"2005-12-06T08:00:01.500Z\tB\th\tu\tERROR\tline\\nbreak and back\\\\slash")
	f.Add("2005-12-06T23:59:59.999+01:00\tApp2\thost\t\tWARN\toffset timestamp")
	f.Add("\n\n2005-12-06T08:00:00.000Z\tX\th\tu\tINFO\tafter blank lines\n\n")
	f.Add("not a log line")
	f.Add("2005-12-06T08:00:00.000Z\tonly\tfive\tfields\tINFO")
	f.Add("2005-12-06T08:00:02.000Z\tLate\th\tu\tINFO\tsecond\n" +
		"2005-12-06T08:00:01.000Z\tEarly\th\tu\tINFO\tfirst")
	f.Fuzz(func(t *testing.T, data string) {
		store, err := ReadAll(strings.NewReader(data))
		if err != nil {
			return // malformed input is rejected, not a bug
		}
		if !store.Sorted() {
			t.Fatal("ReadAll returned an unsorted store")
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, store); err != nil {
			t.Fatalf("write parsed store: %v", err)
		}
		got, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("reparse serialized store: %v\nserialized:\n%s", err, buf.String())
		}
		if got.Len() != store.Len() {
			t.Fatalf("round trip changed entry count: %d -> %d", store.Len(), got.Len())
		}
		for i := 0; i < store.Len(); i++ {
			if got.At(i) != store.At(i) {
				t.Fatalf("entry %d changed in round trip:\n was %+v\n now %+v",
					i, store.At(i), got.At(i))
			}
		}
	})
}

// FuzzParseEntry narrows the fuzz target to the single-line parser: a line
// that parses must format back to a line that parses to the same entry.
func FuzzParseEntry(f *testing.F) {
	f.Add("2005-12-06T08:00:00.000Z\tDPIFormidoc\thost1\tu17\tINFO\thello")
	f.Add("2005-12-06T08:00:00.000Z\tA\tB\tC\tERROR\t")
	f.Add("x\ty\tz\tw\tINFO\tbad time")
	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseEntry(line)
		if err != nil {
			return
		}
		again, err := ParseEntry(FormatEntry(e))
		if err != nil {
			t.Fatalf("formatted entry does not reparse: %v\nline: %q", err, FormatEntry(e))
		}
		if again != e {
			t.Fatalf("format/parse round trip changed entry:\n was %+v\n now %+v", e, again)
		}
	})
}

// FuzzParseBytes is the differential target pinning the allocation-free
// parser to the string parser: on every input both either produce the same
// Entry or both fail (with the same message), intern mode never modifies the
// input line, and every parsed entry survives an AppendEntry round trip.
func FuzzParseBytes(f *testing.F) {
	f.Add("2005-12-06T08:00:00.000Z\tDPIFormidoc\thost1\tu17\tINFO\thello")
	f.Add("2005-12-06T08:00:00.000Z\tA\tB\tC\tERROR\t")
	f.Add("x\ty\tz\tw\tINFO\tbad time")
	f.Add("2005-12-06T08:00:00.000+05:30\tS\th\tu\tWARN\toffset form")
	f.Add("2005-12-06T08:00:00,000Z\tS\th\tu\tINFO\tcomma fraction")
	f.Add("9999-12-31T23:59:59.999Z\tS\th\tu\tDEBUG\tmax formatted year")
	f.Add("2005-12-06T08:00:00.000Z\tS\th\tu\tINFO\tesc \\t\\n\\r\\\\ bad \\q end \\")
	f.Add("2005-12-06T08:00:00.000Z\t\xff\x00\t\xfe\t\x01\tINFO\tnon-utf8 \xff fields")
	f.Add("2005-12-06T08:00:00.000Z\tS\th\tu\tNOTICE\tunknown severity")
	f.Add("2005-12-06T08:00:00.000Z\t\th\tu\tINFO\tempty source")
	sharedIntern := NewIntern()
	f.Fuzz(func(t *testing.T, line string) {
		want, wantErr := ParseEntry(line)

		raw := []byte(line)
		got, gotErr := ParseEntryBytes(raw, sharedIntern)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("parser disagreement on %q:\n ParseEntry:      %v\n ParseEntryBytes: %v",
				line, wantErr, gotErr)
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("error text differs on %q:\n ParseEntry:      %v\n ParseEntryBytes: %v",
					line, wantErr, gotErr)
			}
			return
		}
		if got != want {
			t.Fatalf("intern-mode entry differs on %q:\n want %+v\n got  %+v", line, want, got)
		}
		if string(raw) != line {
			t.Fatalf("intern mode modified its input: %q -> %q", line, raw)
		}

		view, viewErr := ParseEntryBytes([]byte(line), nil)
		if viewErr != nil {
			t.Fatalf("view mode rejected %q accepted by intern mode: %v", line, viewErr)
		}
		if view != want {
			t.Fatalf("view-mode entry differs on %q:\n want %+v\n got  %+v", line, want, view)
		}

		// Round trip: the wire form of a parsed entry reparses to the same
		// entry, through the byte-slice writer and parser.
		wire := AppendEntry(nil, got)
		again, err := ParseEntryBytes(wire, nil)
		if err != nil {
			t.Fatalf("AppendEntry output does not reparse: %v\nwire: %q", err, wire)
		}
		if again != got {
			t.Fatalf("AppendEntry round trip changed entry:\n was %+v\n now %+v", got, again)
		}
	})
}
