// Package drift turns the per-bucket model stream of internal/stream into
// change-point decisions: "the landscape moved here". It watches three
// channels of the stream —
//
//   - presence: which dependency keys had evidence in each delivered
//     bucket, run through a persistence filter (a key must appear or
//     vanish for K consecutive buckets before a birth or death is
//     declared, with a per-key adaptive allowance for its habitual
//     appearance gaps);
//   - score: a per-key association-score trajectory (the L2 G² statistic
//     over the sliding window), monitored with a two-sided CUSUM against
//     a trailing reference window;
//   - delay: per-bucket citation-delay samples (L3), compared against a
//     pooled trailing reference sample with a Kolmogorov–Smirnov test.
//
// The detector is strictly sequential and a pure function of the
// observation sequence: feeding the same observations yields the same
// ChangePoints byte for byte, at any mining worker count and with metrics
// on or off (the inputs carry those invariants; the detector adds no
// randomness, no wall clock and no map-order dependence). Checkpoint and
// Restore serialize the full detector state so a killed follow process
// resumes with the exact alert stream an uninterrupted run would have
// produced.
package drift
