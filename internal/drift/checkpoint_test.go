package drift

import (
	"bytes"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"logscape/internal/logmodel"
)

// syntheticStream generates a seeded observation stream exercising all
// three detector channels: eight keys with densities from dense to sparse,
// a mid-stream death (key 7), a delay-distribution shift (key 6) and a
// score level shift (key 5). The same seed always yields the same stream.
func syntheticStream(seed int64, n int) []Observation {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Observation, 0, n)
	for b := 0; b < n; b++ {
		o := Observation{
			Bucket: int64(b),
			At:     logmodel.Millis(b) * logmodel.MillisPerHour,
		}
		for k := 0; k < 8; k++ {
			key := fmt.Sprintf("App%d->GRP%d", k, k)
			p := 0.95 - 0.1*float64(k)
			if k == 7 && b > n/2 {
				p = 0 // scripted death
			}
			if rng.Float64() >= p {
				continue
			}
			o.Active = append(o.Active, key)
			center := 100 * float64(k+1)
			if k == 6 && b > 2*n/3 {
				center *= 4 // scripted delay shift
			}
			samples := make([]float64, 5+rng.Intn(8))
			for i := range samples {
				samples[i] = center * (0.5 + rng.Float64())
			}
			if o.Delays == nil {
				o.Delays = map[string][]float64{}
				o.Scores = map[string]float64{}
			}
			o.Delays[key] = samples
			s := float64(k) + 0.2*rng.NormFloat64()
			if k == 5 && b > 3*n/4 {
				s += 10 // scripted score shift
			}
			o.Scores[key] = s
		}
		out = append(out, o)
	}
	return out
}

// TestCheckpointRestoreMatchesUninterrupted is the resume-equivalence
// property: checkpointing a detector mid-stream and restoring it must yield
// byte-identical final state and an identical alert sequence to the
// uninterrupted run, across ten seeds and seed-dependent split points.
func TestCheckpointRestoreMatchesUninterrupted(t *testing.T) {
	const buckets = 120
	for seed := int64(1); seed <= 10; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := Config{}

			ref := NewDetector(cfg)
			var refAlerts []ChangePoint
			for _, o := range syntheticStream(seed, buckets) {
				refAlerts = append(refAlerts, ref.Observe(o)...)
			}
			refState, err := ref.State()
			if err != nil {
				t.Fatal(err)
			}
			if len(refAlerts) == 0 {
				t.Fatal("synthetic stream raised no alerts; the property is vacuous")
			}

			cut := 20 + int(seed)*9 // split points spread over the stream
			split := NewDetector(cfg)
			stream := syntheticStream(seed, buckets)
			var alerts []ChangePoint
			for _, o := range stream[:cut] {
				alerts = append(alerts, split.Observe(o)...)
			}
			blob, err := split.State()
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := Restore(cfg, blob)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range stream[cut:] {
				alerts = append(alerts, resumed.Observe(o)...)
			}
			if !slices.Equal(alerts, refAlerts) {
				t.Errorf("alerts after restore at bucket %d differ\ngot:  %v\nwant: %v",
					cut, alerts, refAlerts)
			}
			gotState, err := resumed.State()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotState, refState) {
				t.Errorf("final state after restore at bucket %d differs\ngot:  %s\nwant: %s",
					cut, gotState, refState)
			}
		})
	}
}
