package drift

import (
	"encoding/json"
	"fmt"
	"sort"
)

// stateVersion guards the serialized detector state format.
const stateVersion = 1

// detectorState is the serializable form of a Detector: every map is
// flattened into a key-sorted slice so the encoding is canonical — the
// same detector state always marshals to the same bytes, which is what the
// resume-equivalence and checkpoint property tests pin.
type detectorState struct {
	Version  int             `json:"version"`
	Seq      int64           `json:"seq"`
	Presence []presenceEntry `json:"presence,omitempty"`
	Scores   []scoreEntry    `json:"scores,omitempty"`
	Delays   []delayEntry    `json:"delays,omitempty"`
}

type presenceEntry struct {
	Key   string        `json:"key"`
	State presenceState `json:"state"`
}

type scoreEntry struct {
	Key   string     `json:"key"`
	State scoreState `json:"state"`
}

type delayEntry struct {
	Key   string     `json:"key"`
	State delayState `json:"state"`
}

// State serializes the detector's full state. Feeding a detector restored
// from this state the remaining observations yields byte-identical alerts
// (and byte-identical subsequent states) to the uninterrupted run.
func (d *Detector) State() ([]byte, error) {
	st := detectorState{
		Version: stateVersion,
		Seq:     d.seq,
	}
	for _, key := range sortedKeys(d.presence) {
		st.Presence = append(st.Presence, presenceEntry{Key: key, State: *d.presence[key]})
	}
	for _, key := range sortedKeys(d.scores) {
		st.Scores = append(st.Scores, scoreEntry{Key: key, State: *d.scores[key]})
	}
	for _, key := range sortedKeys(d.delays) {
		st.Delays = append(st.Delays, delayEntry{Key: key, State: *d.delays[key]})
	}
	return json.Marshal(st)
}

// Restore rebuilds a detector from serialized state. cfg must match the
// configuration the state was taken under; the caller owns that contract
// (the state carries runs and references, not thresholds).
func Restore(cfg Config, data []byte) (*Detector, error) {
	var st detectorState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("drift: state: %w", err)
	}
	if st.Version != stateVersion {
		return nil, fmt.Errorf("drift: state version %d, want %d", st.Version, stateVersion)
	}
	d := NewDetector(cfg)
	d.seq = st.Seq
	for _, e := range st.Presence {
		s := e.State
		d.presence[e.Key] = &s
	}
	for _, e := range st.Scores {
		s := e.State
		d.scores[e.Key] = &s
	}
	for _, e := range st.Delays {
		s := e.State
		d.delays[e.Key] = &s
	}
	return d, nil
}

// sortedKeys returns the sorted keys of a map with string keys.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
