package drift

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"logscape/internal/logmodel"
	"logscape/internal/obs"
)

// ob builds an observation for sequential bucket b.
func ob(b int64, active ...string) Observation {
	return Observation{Bucket: b, At: logmodel.Millis(b) * logmodel.MillisPerHour, Active: active}
}

func kinds(cps []ChangePoint) []string {
	var out []string
	for _, c := range cps {
		out = append(out, string(c.Kind)+" "+c.Key)
	}
	return out
}

func TestWarmStartIsSilent(t *testing.T) {
	d := NewDetector(Config{K: 3})
	for b := int64(0); b < 10; b++ {
		if cps := d.Observe(ob(b, "A--B", "C--D")); len(cps) != 0 {
			t.Fatalf("bucket %d: unexpected alerts %v for keys present from the start", b, kinds(cps))
		}
	}
}

func TestBirthNeedsKConsecutiveBuckets(t *testing.T) {
	d := NewDetector(Config{K: 3})
	d.Observe(ob(0, "A--B")) // warm-start key keeps the detector honest
	// Brand-new key: birth on the Kth consecutive bucket, not before.
	d.Observe(ob(1, "A--B", "N--P"))
	if cps := d.Observe(ob(2, "A--B", "N--P")); len(cps) != 0 {
		t.Fatalf("2-bucket run alerted early: %v", kinds(cps))
	}
	cps := d.Observe(ob(3, "A--B", "N--P"))
	if len(cps) != 1 || cps[0].Kind != Birth || cps[0].Key != "N--P" {
		t.Fatalf("want birth of N--P, got %v", kinds(cps))
	}
	if cps[0].Onset != 1 {
		t.Fatalf("birth onset = %d, want 1 (start of the confirming run)", cps[0].Onset)
	}
}

func TestFlickeringKeyConfirmsSilently(t *testing.T) {
	d := NewDetector(Config{K: 3})
	d.Observe(ob(0, "A--B"))
	// A sporadic key whose first run breaks before confirming: when it
	// finally strings K buckets together, that is the detector catching up
	// with an old, intermittent dependency — not the landscape moving.
	d.Observe(ob(1, "A--B", "N--P"))
	d.Observe(ob(2, "A--B", "N--P"))
	d.Observe(ob(3, "A--B")) // run broken: N--P flickered unconfirmed
	d.Observe(ob(4, "A--B", "N--P"))
	d.Observe(ob(5, "A--B", "N--P"))
	if cps := d.Observe(ob(6, "A--B", "N--P")); len(cps) != 0 {
		t.Fatalf("flickering key's first confirmation alerted: %v", kinds(cps))
	}
	// A steady stretch raises its presence rate into fast-death territory.
	for b := int64(7); b <= 20; b++ {
		if cps := d.Observe(ob(b, "A--B", "N--P")); len(cps) != 0 {
			t.Fatalf("bucket %d: steady presence alerted: %v", b, kinds(cps))
		}
	}
	// Once confirmed it is a real dependency: its death is announced...
	var death []ChangePoint
	for b := int64(21); b < 28 && len(death) == 0; b++ {
		death = d.Observe(ob(b, "A--B"))
	}
	if len(death) != 1 || death[0].Kind != Death || death[0].Key != "N--P" {
		t.Fatalf("want death of N--P, got %v", kinds(death))
	}
	// ...and so is its rebirth: ever-confirmed keys always alert.
	var rebirth []ChangePoint
	for b := int64(28); b < 32 && len(rebirth) == 0; b++ {
		rebirth = d.Observe(ob(b, "A--B", "N--P"))
	}
	if len(rebirth) != 1 || rebirth[0].Kind != Birth || rebirth[0].Key != "N--P" {
		t.Fatalf("want rebirth of N--P, got %v", kinds(rebirth))
	}
}

func TestDeathNeedsKConsecutiveAbsences(t *testing.T) {
	// DeathAlpha 1e-3 puts the rate-adaptive threshold for a fully dense
	// key at exactly K, isolating the persistence-filter behaviour.
	// RefBuckets 2 keeps the young-key guard (2·RefBuckets observations
	// before the fast death path opens) below the five buckets fed here.
	d := NewDetector(Config{K: 3, RefBuckets: 2, DeathAlpha: 1e-3})
	for b := int64(0); b < 5; b++ {
		d.Observe(ob(b, "A--B"))
	}
	// Key vanishes: death on the 3rd consecutive absence.
	if cps := d.Observe(ob(5)); len(cps) != 0 {
		t.Fatalf("1 absence alerted: %v", kinds(cps))
	}
	if cps := d.Observe(ob(6)); len(cps) != 0 {
		t.Fatalf("2 absences alerted: %v", kinds(cps))
	}
	cps := d.Observe(ob(7))
	if len(cps) != 1 || cps[0].Kind != Death || cps[0].Key != "A--B" {
		t.Fatalf("want death of A--B, got %v", kinds(cps))
	}
	if cps[0].Onset != 5 {
		t.Fatalf("death onset = %d, want 5", cps[0].Onset)
	}
	// Rebirth after the outage ends is announced.
	d.Observe(ob(8, "A--B"))
	d.Observe(ob(9, "A--B"))
	cps = d.Observe(ob(10, "A--B"))
	if len(cps) != 1 || cps[0].Kind != Birth {
		t.Fatalf("want rebirth, got %v", kinds(cps))
	}
}

func TestSparseKeysNeedLongerSilence(t *testing.T) {
	d := NewDetector(Config{K: 3, RefBuckets: 12})
	// Dense key, confirmed at warm start, with occasional one-bucket gaps:
	// present everywhere except buckets 12 and 16. The gaps dent its
	// smoothed presence rate, which stretches the death threshold past K.
	for b := int64(0); b < 18; b++ {
		var cps []ChangePoint
		if b == 12 || b == 16 {
			cps = d.Observe(ob(b))
		} else {
			cps = d.Observe(ob(b, "A--B"))
		}
		if len(cps) != 0 {
			t.Fatalf("bucket %d: occasional gap alerted: %v", b, kinds(cps))
		}
	}
	// When it truly vanishes, death waits for an absence run implausible
	// at the dented rate — 6 buckets here, not the dense-key K=3.
	for b := int64(18); b < 23; b++ {
		if cps := d.Observe(ob(b)); len(cps) != 0 {
			t.Fatalf("bucket %d: death before the rate-adaptive threshold: %v", b, kinds(cps))
		}
	}
	cps := d.Observe(ob(23))
	if len(cps) != 1 || cps[0].Kind != Death {
		t.Fatalf("want death after rate-adaptive threshold, got %v", kinds(cps))
	}
}

func TestOneOffKeyNeverAlerts(t *testing.T) {
	d := NewDetector(Config{K: 3, RefBuckets: 4})
	d.Observe(ob(0, "A--B"))
	for b := int64(1); b < 30; b++ {
		var cps []ChangePoint
		if b == 5 || b == 17 {
			cps = d.Observe(ob(b, "A--B", "ONE--OFF"))
		} else {
			cps = d.Observe(ob(b, "A--B"))
		}
		if len(cps) != 0 {
			t.Fatalf("bucket %d: one-off citation alerted: %v", b, kinds(cps))
		}
	}
}

func TestScoreShiftCUSUM(t *testing.T) {
	d := NewDetector(Config{K: 3, RefBuckets: 8, CUSUMThreshold: 5})
	score := func(b int64, x float64) []ChangePoint {
		return d.Observe(Observation{
			Bucket: b, At: logmodel.Millis(b) * logmodel.MillisPerHour,
			Active: []string{"A--B"},
			Scores: map[string]float64{"A--B": x},
		})
	}
	// Stable regime with mild jitter: no alarms.
	vals := []float64{10, 11, 9, 10, 10.5, 9.5, 10, 11, 9, 10, 10, 9.8, 10.2, 10}
	b := int64(0)
	for _, x := range vals {
		if cps := score(b, x); len(cps) != 0 {
			t.Fatalf("stable scores alerted: %v", kinds(cps))
		}
		b++
	}
	// Step change: the G² score triples and stays there.
	var fired *ChangePoint
	for i := 0; i < 8 && fired == nil; i++ {
		cps := score(b, 30)
		b++
		if len(cps) == 1 {
			fired = &cps[0]
		}
	}
	if fired == nil {
		t.Fatal("sustained score step never tripped the CUSUM")
	}
	if fired.Kind != ScoreShift || fired.Key != "A--B" {
		t.Fatalf("want score-shift of A--B, got %v", *fired)
	}
	// And having re-learned the new regime, it stays quiet.
	for i := 0; i < 12; i++ {
		if cps := score(b, 30); len(cps) != 0 {
			t.Fatalf("post-alarm steady state alerted again: %v", kinds(cps))
		}
		b++
	}
}

func TestDelayShiftKS(t *testing.T) {
	d := NewDetector(Config{K: 3, RefBuckets: 8, KSAlpha: 0.01, MinDelaySamples: 8})
	rng := rand.New(rand.NewSource(7))
	sample := func(center float64) []float64 {
		xs := make([]float64, 12)
		for i := range xs {
			xs[i] = center * (0.8 + 0.4*rng.Float64())
		}
		return xs
	}
	feed := func(b int64, center float64) []ChangePoint {
		return d.Observe(Observation{
			Bucket: b, At: logmodel.Millis(b) * logmodel.MillisPerHour,
			Active: []string{"App->GRP"},
			Delays: map[string][]float64{"App->GRP": sample(center)},
		})
	}
	b := int64(0)
	for i := 0; i < 10; i++ {
		if cps := feed(b, 1000); len(cps) != 0 {
			t.Fatalf("stable delays alerted: %v", kinds(cps))
		}
		b++
	}
	// Failover: delays triple. The channel is a persistence filter like the
	// presence one: the shift run must span DelayRuns buckets (its pooled
	// samples rejecting against the pre-shift reference) before the alarm.
	onset := b
	for i := 0; i < 2; i++ {
		if cps := feed(b, 3000); len(cps) != 0 {
			t.Fatalf("%d-bucket shift run alerted early: %v", i+1, kinds(cps))
		}
		b++
	}
	cps := feed(b, 3000)
	if len(cps) != 1 || cps[0].Kind != DelayShift || cps[0].Key != "App->GRP" {
		t.Fatalf("want delay-shift, got %v", kinds(cps))
	}
	if cps[0].Onset != onset {
		t.Fatalf("delay-shift onset = %d, want %d (first shifted bucket)", cps[0].Onset, onset)
	}
	b++
	// Reference was flushed; the shifted regime settles without a storm.
	for i := 0; i < 10; i++ {
		if cps := feed(b, 3000); len(cps) != 0 {
			t.Fatalf("post-shift steady state alerted again: %v", kinds(cps))
		}
		b++
	}
}

// randomObservation builds a pseudo-random observation over a small key
// universe — shared by the determinism and checkpoint tests.
func randomObservation(rng *rand.Rand, b int64) Observation {
	o := Observation{Bucket: b, At: logmodel.Millis(b) * logmodel.MillisPerHour}
	for k := 0; k < 6; k++ {
		key := fmt.Sprintf("app%d--svc%d", k, k)
		if rng.Float64() < 0.6 {
			o.Active = append(o.Active, key)
			if o.Scores == nil {
				o.Scores = map[string]float64{}
				o.Delays = map[string][]float64{}
			}
			o.Scores[key] = rng.Float64() * 40
			n := rng.Intn(12)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.Float64() * 2000
			}
			o.Delays[key] = xs
		}
	}
	return o
}

func TestObserveDeterministic(t *testing.T) {
	run := func() ([]ChangePoint, []byte) {
		d := NewDetector(Config{K: 2, RefBuckets: 5})
		rng := rand.New(rand.NewSource(42))
		var all []ChangePoint
		for b := int64(0); b < 200; b++ {
			all = append(all, d.Observe(randomObservation(rng, b))...)
		}
		st, err := d.State()
		if err != nil {
			t.Fatal(err)
		}
		return all, st
	}
	a1, s1 := run()
	a2, s2 := run()
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Fatal("same observations produced different alerts")
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("same observations produced different serialized state")
	}
}

func TestCheckpointRestoreByteIdentical(t *testing.T) {
	cfg := Config{K: 2, RefBuckets: 5}
	full := NewDetector(cfg)
	rng := rand.New(rand.NewSource(99))
	obs := make([]Observation, 120)
	for b := range obs {
		obs[b] = randomObservation(rng, int64(b))
	}
	var fullAlerts []ChangePoint
	var mid []byte
	for b, o := range obs {
		fullAlerts = append(fullAlerts, full.Observe(o)...)
		if b == 59 {
			st, err := full.State()
			if err != nil {
				t.Fatal(err)
			}
			mid = st
		}
	}
	restored, err := Restore(cfg, mid)
	if err != nil {
		t.Fatal(err)
	}
	var resumedAlerts []ChangePoint
	for _, o := range obs[60:] {
		resumedAlerts = append(resumedAlerts, restored.Observe(o)...)
	}
	// The resumed run must produce exactly the tail of the full run's
	// alerts and end in byte-identical state.
	var tail []ChangePoint
	for _, c := range fullAlerts {
		if c.Bucket >= 60 {
			tail = append(tail, c)
		}
	}
	if fmt.Sprint(tail) != fmt.Sprint(resumedAlerts) {
		t.Fatalf("resumed alerts diverge:\nfull tail: %v\nresumed:   %v", tail, resumedAlerts)
	}
	fs, err := full.State()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := restored.State()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fs, rs) {
		t.Fatalf("final state diverges after restore:\nfull:     %s\nrestored: %s", fs, rs)
	}
}

func TestRestoreRejectsBadState(t *testing.T) {
	if _, err := Restore(Config{}, []byte("{")); err == nil {
		t.Fatal("malformed state restored")
	}
	if _, err := Restore(Config{}, []byte(`{"version":99}`)); err == nil {
		t.Fatal("future version restored")
	}
}

func TestMetricsCountAlertsWithoutChangingThem(t *testing.T) {
	run := func(r *obs.Registry) []ChangePoint {
		d := NewDetector(Config{K: 2, RefBuckets: 5, Metrics: r})
		rng := rand.New(rand.NewSource(5))
		var all []ChangePoint
		for b := int64(0); b < 150; b++ {
			all = append(all, d.Observe(randomObservation(rng, b))...)
		}
		return all
	}
	reg := obs.New()
	withMetrics := run(reg)
	without := run(nil)
	if fmt.Sprint(withMetrics) != fmt.Sprint(without) {
		t.Fatal("metrics on/off changed the alerts")
	}
	var counted int64
	for _, name := range []string{"drift.birth", "drift.death", "drift.score_shift", "drift.delay_shift"} {
		counted += reg.Counter(name).Value()
	}
	if counted != int64(len(withMetrics)) {
		t.Fatalf("drift.* counters sum to %d, want %d alerts", counted, len(withMetrics))
	}
}

func TestChangePointString(t *testing.T) {
	c := ChangePoint{
		Bucket: 12, At: 0,
		Onset: 9, Kind: Death, Key: "DPIMain->PDS", Score: 3,
	}
	want := "DRIFT [1970-01-01T00:00:00] death DPIMain->PDS (onset bucket 9, score 3)"
	if got := c.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestKeyHelpers(t *testing.T) {
	if PairKey("b", "a") != "a--b" || PairKey("a", "b") != "a--b" {
		t.Fatal("PairKey not canonical")
	}
	if DepKey("App", "GRP") != "App->GRP" {
		t.Fatal("DepKey wrong")
	}
}
