package drift

import (
	"fmt"
	"math"
	"sort"

	"logscape/internal/logmodel"
	"logscape/internal/obs"
	"logscape/internal/stats"
)

// Config parameterizes the detector. The zero value of every field selects
// the default, so Config{} is usable as-is.
type Config struct {
	// K is the persistence threshold: a key must be present (absent) for K
	// consecutive delivered buckets before a birth (death) is declared.
	// This is the sparse-noise filter — one-off citations (a coincidence
	// patient name, a single stack trace) occupy one bucket and never
	// survive it. Default 3.
	K int
	// RefBuckets is the trailing reference length: the score channel keeps
	// this many trailing score values per key, the delay channel pools this
	// many trailing per-bucket samples, and the presence channel averages
	// each key's appearance rate over a 4·RefBuckets horizon. Default 12.
	RefBuckets int
	// DeathAlpha calibrates the adaptive death threshold: a confirmed key
	// is declared dead after the shortest absence run whose probability
	// under the key's own presence rate falls below DeathAlpha (never
	// fewer than K buckets). Only keys dense enough that the run stays
	// within 2·K buckets are eligible for this fast death: a moderate-rate
	// key's citations cluster by session, so its real gaps run far longer
	// than independence predicts and any run-length test short enough to be
	// useful would false-alarm on them. Everything sparser is declared dead
	// only at the 4·RefBuckets cap — two full reference horizons of silence
	// is a death for any key. Default 1e-5.
	DeathAlpha float64
	// LearnBuckets is the learning period: a key first sighted before this
	// many buckets have been observed is assumed to predate the detector —
	// its first confirmation is silent, like the warm-start keys of the
	// very first bucket. Sparse long-standing dependencies can take many
	// buckets to string K consecutive appearances together; announcing
	// them as births would report the detector's own catch-up as drift.
	// Default 1 (only the first bucket's keys are warm).
	LearnBuckets int
	// CUSUMThreshold is the alarm level of the two-sided CUSUM on
	// normalized score deviations; CUSUMSlack is the per-step slack (the
	// "k" of the classical chart) in the same z-units. Defaults 6 and 0.5.
	CUSUMThreshold, CUSUMSlack float64
	// MinScoreRef is the minimum number of trailing score values before
	// the CUSUM starts judging deviations. Default 6.
	MinScoreRef int
	// KSAlpha is the significance level of the delay-distribution KS test;
	// MinDelaySamples is the minimum size of both the current bucket's
	// sample and the pooled reference before the test runs; DelayRuns is
	// the persistence threshold of the channel — a shift run must span
	// this many consecutive buckets, with the run's pooled samples
	// rejecting against the pre-shift reference, before a delay shift is
	// declared. One or two buckets dominated by a single chatty session
	// (sessions straddle a bucket boundary) can reject spectacularly on
	// their own, but such clustering does not persist; a real regime
	// change (failover retries, a slow replica) shifts every subsequent
	// bucket. Defaults 1e-3, 8 and 3.
	KSAlpha         float64
	MinDelaySamples int
	DelayRuns       int
	// Metrics receives the drift.* counter class (one counter per change
	// kind). A nil registry disables metrics; it never changes the alerts.
	Metrics *obs.Registry
}

// DefaultConfig returns the default detector configuration.
func DefaultConfig() Config {
	return Config{
		K:               3,
		RefBuckets:      12,
		DeathAlpha:      1e-5,
		LearnBuckets:    1,
		CUSUMThreshold:  6,
		CUSUMSlack:      0.5,
		MinScoreRef:     6,
		KSAlpha:         1e-3,
		MinDelaySamples: 8,
		DelayRuns:       3,
	}
}

func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.K == 0 {
		c.K = def.K
	}
	if c.RefBuckets == 0 {
		c.RefBuckets = def.RefBuckets
	}
	if c.DeathAlpha == 0 {
		c.DeathAlpha = def.DeathAlpha
	}
	if c.LearnBuckets == 0 {
		c.LearnBuckets = def.LearnBuckets
	}
	if c.CUSUMThreshold == 0 {
		c.CUSUMThreshold = def.CUSUMThreshold
	}
	if c.CUSUMSlack == 0 {
		c.CUSUMSlack = def.CUSUMSlack
	}
	if c.MinScoreRef == 0 {
		c.MinScoreRef = def.MinScoreRef
	}
	if c.KSAlpha == 0 {
		c.KSAlpha = def.KSAlpha
	}
	if c.MinDelaySamples == 0 {
		c.MinDelaySamples = def.MinDelaySamples
	}
	if c.DelayRuns == 0 {
		c.DelayRuns = def.DelayRuns
	}
	return c
}

// Observation is the drift-relevant projection of one delivered bucket.
// Active lists the keys with evidence in the bucket itself (not the whole
// window); Scores carries per-key window-level association scores (L2 G²);
// Delays carries per-key citation-delay samples of the bucket (L3
// inter-citation gaps, in milliseconds). Scores and Delays may be nil for
// techniques without those channels.
type Observation struct {
	// Bucket is the delivered bucket's index on the ingester's grid; At is
	// the start of its time range.
	Bucket int64
	At     logmodel.Millis
	Active []string
	Scores map[string]float64
	Delays map[string][]float64
}

// Kind classifies a change point.
type Kind string

// The four change kinds.
const (
	Birth      Kind = "birth"
	Death      Kind = "death"
	ScoreShift Kind = "score-shift"
	DelayShift Kind = "delay-shift"
)

// ChangePoint is one detected model change.
type ChangePoint struct {
	// Bucket and At identify the delivered bucket that confirmed the
	// change; Onset is the bucket index where the change began (the start
	// of the presence run, or the bucket whose statistic tripped the
	// alarm).
	Bucket int64           `json:"bucket"`
	At     logmodel.Millis `json:"at"`
	Onset  int64           `json:"onset"`
	Kind   Kind            `json:"kind"`
	// Key names the affected dependency: "A--B" for undirected pairs,
	// "App->GROUP" for app→service dependencies.
	Key string `json:"key"`
	// Score quantifies the change: the run length for births and deaths,
	// the CUSUM statistic for score shifts, the KS D statistic for delay
	// shifts.
	Score float64 `json:"score"`
	// Segment, when set, points at the persisted model-store record of
	// the confirming bucket ("raw-…seg#3"), so an operator can jump from
	// the alert to the retained model and evidence. The detector never
	// fills it — the follower annotates change-points when it runs with a
	// store; without one the field stays empty and the alert line keeps
	// its historical form.
	Segment string `json:"segment,omitempty"`
}

// String renders the canonical one-line alert form. A segment reference,
// when present, is appended as a trailing locator.
func (c ChangePoint) String() string {
	s := fmt.Sprintf("DRIFT [%s] %s %s (onset bucket %d, score %.3g)",
		c.At.Time().Format("2006-01-02T15:04:05"), c.Kind, c.Key, c.Onset, c.Score)
	if c.Segment != "" {
		s += " segment=" + c.Segment
	}
	return s
}

// PairKey returns the drift key of an undirected pair ("A--B").
func PairKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "--" + b
}

// DepKey returns the drift key of an app→service dependency ("App->GROUP").
func DepKey(app, group string) string { return app + "->" + group }

// presenceState is the per-key state of the persistence filter.
type presenceState struct {
	// Confirmed reports the key's current model-level status: present
	// (true) after a confirmed birth or warm start, absent after a
	// confirmed death.
	Confirmed bool `json:"confirmed"`
	// RunPresent and RunAbsent count the current run of consecutive
	// delivered buckets with and without the key.
	RunPresent int `json:"run_present"`
	RunAbsent  int `json:"run_absent"`
	// RunStart is the bucket index where the current run started.
	RunStart int64 `json:"run_start"`
	// WarmStart marks a presence run that began during the learning
	// period (LearnBuckets): its confirmation is silent — the key
	// predates the detector, and announcing it as a birth would report
	// the detector's own catch-up as drift.
	WarmStart bool `json:"warm_start,omitempty"`
	// Rate is the key's smoothed per-bucket presence rate: an exact
	// running mean while SeenBuckets is below the 4·RefBuckets horizon
	// (no initialization bias — a young key's rate is exactly its observed
	// frequency), an exponential mean at that horizon afterwards. RunRate
	// freezes it at the start of the current absence run, so the run is
	// judged against the rate the key held before it went silent (the
	// live rate decays during the run and would inflate the death
	// threshold mid-outage).
	Rate        float64 `json:"rate"`
	RunRate     float64 `json:"run_rate,omitempty"`
	SeenBuckets int64   `json:"seen_buckets,omitempty"`
	// Flickered marks a key whose earlier presence runs ended without
	// confirming; EverConfirmed marks a key that has confirmed before. A
	// flickering key's first confirmation is silent — a sporadic key that
	// eventually strings K lucky buckets together is the detector finally
	// catching up with an old dependency, not the landscape moving. A
	// birth is announced only for keys that are genuinely new (first run
	// confirms) or that return after an announced death (EverConfirmed).
	Flickered     bool `json:"flickered,omitempty"`
	EverConfirmed bool `json:"ever_confirmed,omitempty"`
}

// scoreState is the per-key state of the CUSUM score channel.
type scoreState struct {
	// Ring holds the trailing reference scores, oldest first.
	Ring []float64 `json:"ring,omitempty"`
	// Pos and Neg are the one-sided CUSUM accumulators; PosOnset and
	// NegOnset record the bucket where each last rose from zero.
	Pos      float64 `json:"pos,omitempty"`
	Neg      float64 `json:"neg,omitempty"`
	PosOnset int64   `json:"pos_onset,omitempty"`
	NegOnset int64   `json:"neg_onset,omitempty"`
	// Idle counts consecutive observations without a score for this key.
	Idle int `json:"idle,omitempty"`
}

// delayState is the per-key state of the KS delay channel.
type delayState struct {
	// Ref holds the trailing per-bucket delay samples (each sorted),
	// oldest first.
	Ref [][]float64 `json:"ref,omitempty"`
	// Idle counts consecutive observations without a sample for this key.
	Idle int `json:"idle,omitempty"`
	// Pending counts the rejecting votes of the current candidate shift
	// run; Held accumulates every bucket of the run, held out of the
	// reference until the run resolves (confirmed: they seed the
	// post-shift reference; rejected: they rejoin it). Pool accumulates
	// the individually-untestable buckets since the run's last vote: they
	// combine into the next vote's candidate, then move to Held — a
	// bucket never votes twice. PendingOnset is the run's first bucket.
	Pending      int         `json:"pending,omitempty"`
	PendingOnset int64       `json:"pending_onset,omitempty"`
	Held         [][]float64 `json:"held,omitempty"`
	Pool         [][]float64 `json:"pool,omitempty"`
}

// Detector is the sequential change-point detector. It is not safe for
// concurrent use; feed it delivered buckets in order.
type Detector struct {
	cfg      Config
	seq      int64
	presence map[string]*presenceState
	scores   map[string]*scoreState
	delays   map[string]*delayState
	counters map[string]*obs.Counter
}

// NewDetector builds a detector with the given configuration.
func NewDetector(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{
		cfg:      cfg,
		presence: make(map[string]*presenceState),
		scores:   make(map[string]*scoreState),
		delays:   make(map[string]*delayState),
		counters: obs.Classes(cfg.Metrics, "drift.", "birth", "death", "score_shift", "delay_shift"),
	}
}

// Config returns the detector's effective configuration.
func (d *Detector) Config() Config { return d.cfg }

// counterName maps a change kind to its drift.* counter class name.
func counterName(k Kind) string {
	switch k {
	case ScoreShift:
		return "score_shift"
	case DelayShift:
		return "delay_shift"
	default:
		return string(k)
	}
}

// Observe feeds one delivered bucket's observation and returns the change
// points it confirms, sorted by (kind, key). The returned slice is owned by
// the caller.
func (d *Detector) Observe(ob Observation) []ChangePoint {
	var cps []ChangePoint
	emit := func(kind Kind, key string, onset int64, score float64) {
		cps = append(cps, ChangePoint{
			Bucket: ob.Bucket, At: ob.At, Onset: onset,
			Kind: kind, Key: key, Score: score,
		})
	}

	cps = append(cps, d.observePresence(ob)...)
	d.observeScores(ob, emit)
	d.observeDelays(ob, emit)

	sort.Slice(cps, func(i, j int) bool {
		if cps[i].Kind != cps[j].Kind {
			return cps[i].Kind < cps[j].Kind
		}
		return cps[i].Key < cps[j].Key
	})
	for _, c := range cps {
		d.counters[counterName(c.Kind)].Inc()
	}
	d.seq++
	return cps
}

// deathRun returns the absence-run length that declares a key dead, given
// the presence rate it held when the run began: the smallest m ≥ K with
// (1-rate)^m ≤ DeathAlpha. A run that long is implausible under the key's
// own stationary behaviour — but only if the key is dense enough that m
// stays within 2·K buckets. Below that density the independence assumption
// breaks down (citations cluster by session, so real gaps run far longer
// than geometric), and such keys fall back to the 4·RefBuckets cap. The
// same cap applies while the key has fewer than 2·RefBuckets observations
// behind it: three lucky appearances of a sporadic key put its running
// mean at 1.0, and trusting that estimate would kill (and later resurrect,
// as an announced rebirth) keys the detector has barely met.
func (d *Detector) deathRun(st *presenceState) int {
	limit := 4 * d.cfg.RefBuckets
	if st.SeenBuckets < int64(2*d.cfg.RefBuckets) {
		return limit
	}
	q := 1 - st.RunRate
	if q < 0.05 {
		// Floor the per-bucket miss probability: even the densest key
		// deserves more than the bare K silent buckets.
		q = 0.05
	}
	if q >= 1 {
		return limit
	}
	m := int(math.Ceil(math.Log(d.cfg.DeathAlpha) / math.Log(q)))
	if m > 2*d.cfg.K {
		return limit
	}
	if m < d.cfg.K {
		return d.cfg.K
	}
	return m
}

// updateRate folds one presence observation (1 present, 0 absent) into the
// key's smoothed rate: a running mean until 4·RefBuckets observations, an
// exponential mean with that horizon afterwards.
func (d *Detector) updateRate(st *presenceState, x float64) {
	st.SeenBuckets++
	n := st.SeenBuckets
	if horizon := int64(4 * d.cfg.RefBuckets); n > horizon {
		n = horizon
	}
	st.Rate += (x - st.Rate) / float64(n)
}

// observePresence runs the persistence filter over the bucket's active set.
func (d *Detector) observePresence(ob Observation) []ChangePoint {
	learning := d.seq < int64(d.cfg.LearnBuckets)
	active := make(map[string]bool, len(ob.Active))
	keys := append([]string(nil), ob.Active...)
	sort.Strings(keys)
	var cps []ChangePoint

	for _, key := range keys {
		if active[key] {
			continue // duplicate in Active
		}
		active[key] = true
		st := d.presence[key]
		if st == nil {
			st = &presenceState{RunStart: ob.Bucket, WarmStart: learning}
			d.presence[key] = st
		}
		if st.RunAbsent > 0 {
			st.RunAbsent = 0
			st.RunPresent = 0
			st.RunStart = ob.Bucket
			st.WarmStart = false
		}
		d.updateRate(st, 1)
		st.RunPresent++
		if !st.Confirmed && st.RunPresent >= d.cfg.K {
			st.Confirmed = true
			announce := !st.WarmStart && (st.EverConfirmed || !st.Flickered)
			st.EverConfirmed = true
			if announce {
				cps = append(cps, ChangePoint{
					Bucket: ob.Bucket, At: ob.At, Onset: st.RunStart,
					Kind: Birth, Key: key, Score: float64(st.RunPresent),
				})
			}
		}
	}

	// Absent keys, in sorted order for deterministic state evolution and
	// emission.
	tracked := make([]string, 0, len(d.presence))
	for key := range d.presence {
		if !active[key] {
			tracked = append(tracked, key)
		}
	}
	sort.Strings(tracked)
	for _, key := range tracked {
		st := d.presence[key]
		if !st.Confirmed && st.RunPresent > 0 {
			st.Flickered = true
		}
		st.RunPresent = 0
		st.RunAbsent++
		if st.RunAbsent == 1 {
			st.RunStart = ob.Bucket
			st.WarmStart = false
			st.RunRate = st.Rate
		}
		d.updateRate(st, 0)
		if st.Confirmed {
			if st.RunAbsent >= d.deathRun(st) {
				st.Confirmed = false
				cps = append(cps, ChangePoint{
					Bucket: ob.Bucket, At: ob.At, Onset: st.RunStart,
					Kind: Death, Key: key, Score: float64(st.RunAbsent),
				})
			}
		} else if st.RunAbsent > 8*d.cfg.RefBuckets {
			// Unconfirmed and long gone: forget the key to bound state.
			// The horizon is generous on purpose — it also carries the
			// Flickered bit, and forgetting it too eagerly would let a
			// sporadic key re-register as brand new and fake a birth.
			delete(d.presence, key)
		}
	}
	return cps
}

// observeScores runs the two-sided CUSUM on each key's score trajectory.
func (d *Detector) observeScores(ob Observation, emit func(Kind, string, int64, float64)) {
	keys := make([]string, 0, len(ob.Scores))
	for key := range ob.Scores {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		x := ob.Scores[key]
		ss := d.scores[key]
		if ss == nil {
			ss = &scoreState{}
			d.scores[key] = ss
		}
		ss.Idle = 0
		if len(ss.Ring) >= d.cfg.MinScoreRef {
			mean, sd := meanStd(ss.Ring)
			// Floor the scale so a near-constant reference cannot turn
			// rounding jitter into alarms.
			floor := 0.05*math.Abs(mean) + 1e-9
			if sd < floor {
				sd = floor
			}
			z := (x - mean) / sd
			if ss.Pos <= 0 {
				ss.PosOnset = ob.Bucket
			}
			if ss.Neg <= 0 {
				ss.NegOnset = ob.Bucket
			}
			ss.Pos = math.Max(0, ss.Pos+z-d.cfg.CUSUMSlack)
			ss.Neg = math.Max(0, ss.Neg-z-d.cfg.CUSUMSlack)
			if ss.Pos >= d.cfg.CUSUMThreshold || ss.Neg >= d.cfg.CUSUMThreshold {
				stat, onset := ss.Pos, ss.PosOnset
				if ss.Neg > ss.Pos {
					stat, onset = ss.Neg, ss.NegOnset
				}
				emit(ScoreShift, key, onset, stat)
				// Re-learn the reference from the post-change regime.
				ss.Ring = ss.Ring[:0]
				ss.Pos, ss.Neg = 0, 0
			}
		}
		ss.Ring = append(ss.Ring, x)
		if len(ss.Ring) > d.cfg.RefBuckets {
			ss.Ring = append(ss.Ring[:0], ss.Ring[1:]...)
		}
	}
	d.gcScores(ob.Scores)
}

// gcScores ages out score state for keys that stopped being scored.
func (d *Detector) gcScores(cur map[string]float64) {
	keys := make([]string, 0, len(d.scores))
	for key := range d.scores {
		if _, ok := cur[key]; !ok {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		ss := d.scores[key]
		ss.Idle++
		if ss.Idle > 2*d.cfg.RefBuckets {
			delete(d.scores, key)
		}
	}
}

// expirePending bounds a pending shift run's lifetime: a run that can
// neither confirm nor clear within a reference window's worth of buckets is
// abandoned as noise and its buckets returned to the reference — otherwise
// a perpetually-ambiguous key would hold its reference frozen forever.
func (d *Detector) expirePending(ds *delayState) {
	if len(ds.Held)+len(ds.Pool) < d.cfg.RefBuckets {
		return
	}
	ds.Ref = append(append(ds.Ref, ds.Held...), ds.Pool...)
	ds.Held, ds.Pool, ds.Pending = nil, nil, 0
	if len(ds.Ref) > d.cfg.RefBuckets {
		ds.Ref = append(ds.Ref[:0], ds.Ref[len(ds.Ref)-d.cfg.RefBuckets:]...)
	}
}

// observeDelays runs the KS test of each key's bucket sample against its
// pooled trailing reference.
func (d *Detector) observeDelays(ob Observation, emit func(Kind, string, int64, float64)) {
	keys := make([]string, 0, len(ob.Delays))
	for key := range ob.Delays {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		sample := ob.Delays[key]
		if len(sample) == 0 {
			continue
		}
		ds := d.delays[key]
		if ds == nil {
			ds = &delayState{}
			d.delays[key] = ds
		}
		ds.Idle = 0
		cur := append([]float64(nil), sample...)
		sort.Float64s(cur)
		// The current bucket is the candidate whenever it is large enough
		// to test on its own: each vote of a pending shift run must then
		// reject independently, so one freak bucket (a single chatty slow
		// session) cannot carry the run by contaminating a pooled sample.
		// Only when the bucket alone is too small does it combine with the
		// run's other unvoted small buckets — sparse keys still accumulate
		// evidence, but samples that already voted never vote again.
		cand := cur
		if len(cur) < d.cfg.MinDelaySamples && len(ds.Pool) > 0 {
			cand = pool(append(append([][]float64(nil), ds.Pool...), cur))
		}
		ref := pool(ds.Ref)
		tested, rejected, cleared, dstat := false, false, false, 0.0
		// The reference must span several buckets as well as enough pooled
		// samples: a single-bucket reference is one session's view of the
		// world, and judging the next bucket against it alarms on ordinary
		// session-to-session variation (the freak-bucket problem, mirrored
		// onto the reference side).
		if len(cand) >= d.cfg.MinDelaySamples && len(ref) >= d.cfg.MinDelaySamples &&
			len(ds.Ref) >= d.cfg.RefBuckets/2 {
			res, err := stats.KSTestTwoSample(cand, ref)
			if err == nil {
				tested = true
				rejected = res.PValue < d.cfg.KSAlpha
				dstat = res.D
				// Cancelling a pending run demands more than failing to
				// reject: small post-shift buckets often land between α and
				// plain agreement, and treating that as proof of noise would
				// kill real runs one marginal bucket at a time. Only a
				// clearly-compatible sample (p two orders above α) resolves
				// the run; anything in between parks and waits.
				cleared = res.PValue >= 100*d.cfg.KSAlpha
			}
		}
		switch {
		case rejected:
			if ds.Pending == 0 {
				// The pool is empty at the first vote (pooling starts only
				// once a run is pending), so the run begins here.
				ds.PendingOnset = ob.Bucket
			}
			ds.Pending++
			// The vote's buckets are held out of the reference: the next
			// vote must be judged against the same pre-shift regime.
			ds.Held = append(append(ds.Held, ds.Pool...), cur)
			ds.Pool = nil
			if ds.Pending < d.cfg.DelayRuns {
				continue
			}
			emit(DelayShift, key, ds.PendingOnset, dstat)
			// Flush the reference and re-learn from the shifted regime so
			// one persistent shift yields one alarm, not a storm. The
			// confirming run is the new regime's first taste — seed with it.
			ds.Ref = append(ds.Ref[:0], ds.Held...)
			ds.Held, ds.Pending = nil, 0
		case cleared || ds.Pending == 0:
			// A clear acceptance (or any non-rejection while no run is
			// pending) resolves the run as noise: its buckets rejoin the
			// reference in order.
			ds.Ref = append(append(append(ds.Ref, ds.Held...), ds.Pool...), cur)
			ds.Held, ds.Pool, ds.Pending = nil, nil, 0
		case tested:
			// Inconclusive while pending: the sample was consumed by a full
			// test, so it may not vote again — park it with the run and let
			// later buckets decide.
			ds.Held = append(append(ds.Held, ds.Pool...), cur)
			ds.Pool = nil
			d.expirePending(ds)
			continue
		default:
			// Untestable while a run is pending: park the bucket in the
			// pool and wait for enough samples to cast the next vote.
			ds.Pool = append(ds.Pool, cur)
			d.expirePending(ds)
			continue
		}
		if len(ds.Ref) > d.cfg.RefBuckets {
			ds.Ref = append(ds.Ref[:0], ds.Ref[len(ds.Ref)-d.cfg.RefBuckets:]...)
		}
	}
	d.gcDelays(ob.Delays)
}

// gcDelays ages out delay state for keys that stopped producing samples.
func (d *Detector) gcDelays(cur map[string][]float64) {
	keys := make([]string, 0, len(d.delays))
	for key := range d.delays {
		if _, ok := cur[key]; !ok {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		ds := d.delays[key]
		ds.Idle++
		if ds.Idle > 2*d.cfg.RefBuckets {
			delete(d.delays, key)
		}
	}
}

// meanStd returns the mean and population standard deviation of xs.
func meanStd(xs []float64) (float64, float64) {
	n := float64(len(xs))
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / n
	var ss float64
	for _, x := range xs {
		dx := x - mean
		ss += dx * dx
	}
	return mean, math.Sqrt(ss / n)
}

// pool merges the per-bucket reference samples into one sorted sample.
func pool(ref [][]float64) []float64 {
	var n int
	for _, r := range ref {
		n += len(r)
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, 0, n)
	for _, r := range ref {
		out = append(out, r...)
	}
	sort.Float64s(out)
	return out
}
