package stream

// Per-bucket drift features. Each stream miner can expose the observables
// the drift detector (internal/drift) consumes for the bucket it last
// advanced over: the keys active in that bucket, per-key association-score
// levels, and per-key delay samples. Feature tracking is off by default —
// the ingest hot path stays allocation-free unless a caller opts in with
// TrackDrift(true) — and tracked features are a pure function of the
// delivered bucket, so they are identical for every worker count.

import (
	"sort"

	"logscape/internal/core/l2"
	"logscape/internal/drift"
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
)

// DriftFeatures are one bucket's drift observables. Active is sorted and
// deduplicated; keys use the drift package's canonical forms (PairKey for
// undirected pairs, DepKey for directed dependencies).
type DriftFeatures struct {
	// Active lists the keys present in the bucket.
	Active []string
	// Scores maps keys to their current association-score level (L2: the
	// maximum G² statistic over the pair's bigram types in the window).
	Scores map[string]float64
	// Delays maps keys to the bucket's delay samples in milliseconds (L3:
	// gaps between successive citations of the dependency).
	Delays map[string][]float64
}

// FeatureSource is implemented by stream miners that can expose drift
// features.
type FeatureSource interface {
	// TrackDrift enables or disables feature tracking for subsequent
	// Advance calls.
	TrackDrift(on bool)
	// DriftFeatures returns the features of the last advanced bucket. The
	// returned slices and maps are fresh copies.
	DriftFeatures() DriftFeatures
}

// TrackDrift implements FeatureSource.
func (m *L1Stream) TrackDrift(on bool) { m.trackDrift = on }

// DriftFeatures returns the positive pair outcomes of the last bucket.
func (m *L1Stream) DriftFeatures() DriftFeatures {
	return DriftFeatures{Active: append([]string(nil), m.lastActive...)}
}

// TrackDrift implements FeatureSource.
func (m *L2Stream) TrackDrift(on bool) { m.trackDrift = on }

// DriftFeatures returns the pairs with new bigram activity in the last
// bucket and the current window-level association scores of every bigram
// type (the level the score channel's CUSUM monitors).
func (m *L2Stream) DriftFeatures() DriftFeatures {
	f := DriftFeatures{Active: append([]string(nil), m.lastActive...)}
	res := l2.ResultFromCounts(m.counts, m.cfg)
	f.Scores = make(map[string]float64, len(res.Types))
	for t, tr := range res.Types {
		if tr.Statistic < 0 {
			continue // Fisher records -p as a stand-in, not a level
		}
		key := drift.PairKey(t.First, t.Second)
		if tr.Statistic > f.Scores[key] {
			f.Scores[key] = tr.Statistic
		}
	}
	return f
}

// newBigramKeys extracts the pair keys whose bigram activity grew in the
// appended deltas: the multiset difference of each delta's added versus
// removed bigrams (a session re-emitted unchanged contributes nothing).
func newBigramKeys(ds []sessions.SessionDelta, timeout logmodel.Millis) []string {
	set := make(map[string]bool)
	for _, d := range ds {
		removed := make(map[l2.Bigram]int)
		if d.Removed != nil {
			for _, bg := range l2.ExtractBigrams(d.Removed, timeout) {
				removed[bg]++
			}
		}
		if d.Added == nil {
			continue
		}
		for _, bg := range l2.ExtractBigrams(d.Added, timeout) {
			if removed[bg] > 0 {
				removed[bg]--
				continue
			}
			set[drift.PairKey(bg.First, bg.Second)] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TrackDrift implements FeatureSource. Delay tracking adds a second
// citation scan per bucket.
func (m *L3Stream) TrackDrift(on bool) { m.trackDrift = on }

// DriftFeatures returns the dependencies cited in the last bucket and
// their citation-gap samples.
func (m *L3Stream) DriftFeatures() DriftFeatures {
	f := DriftFeatures{Active: append([]string(nil), m.lastActive...)}
	if len(m.lastDelays) > 0 {
		f.Delays = make(map[string][]float64, len(m.lastDelays))
		for k, v := range m.lastDelays {
			f.Delays[k] = append([]float64(nil), v...) //lint:allow maporder per-key sample copy; each slice's order comes from the scan, not the map
		}
	}
	return f
}
