package stream

import (
	"bytes"
	"fmt"
	"slices"
	"testing"

	"logscape/internal/core/l3"
	"logscape/internal/directory"
	"logscape/internal/drift"
	"logscape/internal/logmodel"
)

// FuzzDriftStream interprets the fuzz input as an incident schedule — one
// byte per bucket, each bit toggling one app→group dependency for that
// bucket, the high bits modulating citation spacing — renders it as a log
// stream and runs it through the L3 pipeline with the drift detector at
// scan parallelism 1 and 8. Invariants: nothing panics, and the alert
// sequence and final serialized detector state are identical at every
// worker count (drift features are a pure function of the delivered
// bucket, so parallelism must never leak into alerts).
func FuzzDriftStream(f *testing.F) {
	// Steady presence, then a death and a rebirth.
	f.Add(bytes.Repeat([]byte{0x0f}, 24))
	f.Add(append(append(bytes.Repeat([]byte{0xff}, 12), bytes.Repeat([]byte{0x00}, 8)...),
		bytes.Repeat([]byte{0xff}, 8)...))
	// Flickering sparse keys and shifting delay spacing.
	f.Add([]byte{0x01, 0x00, 0x81, 0x00, 0x41, 0xc1, 0x21, 0xa1, 0x61, 0xe1, 0x11, 0x91})
	f.Add([]byte("incident schedule bytes"))
	f.Add([]byte{})

	dir := &directory.Directory{Version: 1, Groups: []directory.Group{
		{ID: "GRPA", RootURL: "http://grpa.hug/a"},
		{ID: "GRPB", RootURL: "http://grpb.hug/b"},
	}}
	urls := []string{"http://grpa.hug/a/list", "http://grpb.hug/b/save"}
	base := logmodel.Millis(1133857200000) // 2005-12-06 08:00:00 UTC

	f.Fuzz(func(t *testing.T, schedule []byte) {
		if len(schedule) > 64 {
			schedule = schedule[:64]
		}
		run := func(workers int) ([]drift.ChangePoint, []byte) {
			wcfg := Config{BucketWidth: logmodel.MillisPerSecond, WindowBuckets: 4}
			l3cfg := l3.DefaultConfig()
			l3cfg.Workers = workers
			miner := NewL3(wcfg, l3.NewMiner(dir, l3cfg))
			miner.TrackDrift(true)
			det := drift.NewDetector(drift.Config{
				K: 2, RefBuckets: 4, MinDelaySamples: 4, DelayRuns: 2,
			})
			var alerts []drift.ChangePoint
			in := NewIngester(wcfg, miner)
			in.OnAdvance = func(b Bucket) {
				feat := miner.DriftFeatures()
				alerts = append(alerts, det.Observe(drift.Observation{
					Bucket: b.Index,
					At:     b.Range.Start,
					Active: feat.Active,
					Scores: feat.Scores,
					Delays: feat.Delays,
				})...)
			}
			for i, v := range schedule {
				at := base + logmodel.Millis(i)*logmodel.MillisPerSecond
				gap := logmodel.Millis(10 + 5*int64(v>>4))
				for a := 0; a < 4; a++ {
					for g := 0; g < 2; g++ {
						if v&(1<<(a*2+g)) == 0 {
							continue
						}
						app := fmt.Sprintf("App%d", a)
						for k := logmodel.Millis(0); k < 3; k++ {
							in.Add(logmodel.Entry{
								Time:     at + logmodel.Millis(a)*3 + k*gap,
								Source:   app,
								Host:     "h1",
								User:     "u1",
								Severity: logmodel.SevInfo,
								Message:  "GET " + urls[g],
							})
						}
					}
				}
			}
			in.Flush()
			state, err := det.State()
			if err != nil {
				t.Fatalf("workers=%d: serializing detector state: %v", workers, err)
			}
			return alerts, state
		}

		seqAlerts, seqState := run(1)
		parAlerts, parState := run(8)
		if !slices.Equal(seqAlerts, parAlerts) {
			t.Fatalf("alerts differ across worker counts\nworkers=1: %v\nworkers=8: %v",
				seqAlerts, parAlerts)
		}
		if !bytes.Equal(seqState, parState) {
			t.Fatalf("detector state differs across worker counts\nworkers=1: %s\nworkers=8: %s",
				seqState, parState)
		}
	})
}
