package stream

import (
	"logscape/internal/core"
	"logscape/internal/logmodel"
	"logscape/internal/obs"
)

// MaxAbsTime bounds the timestamps the ingester accepts: entries outside
// (−MaxAbsTime, MaxAbsTime) are dropped as corrupt. The bound (≈ ±36 million
// years around the epoch) keeps every internal time computation — bucket
// indexing, window starts, retirement cutoffs — free of int64 overflow for
// any sane bucket configuration, which matters because the wire format
// happily parses arbitrary int64 timestamps (found while fuzzing the
// ingester with FuzzReadLogs corpus inputs).
const MaxAbsTime logmodel.Millis = 1 << 60

// Config parameterizes the sliding window. The zero value is replaced by
// defaults matching the batch miners' slotting: one-hour buckets, a
// 24-bucket (one day) window.
type Config struct {
	// BucketWidth is the width of one ingest bucket. It is also the L1 slot
	// width: the streaming L1 miner tests each bucket as one slot.
	BucketWidth logmodel.Millis
	// WindowBuckets is the number of buckets W the window spans.
	WindowBuckets int
	// Workers bounds the per-bucket mining parallelism (the L1 pair tests
	// of a closing bucket, the association tests of an L2 snapshot): 0
	// selects GOMAXPROCS, 1 forces the sequential path. Snapshots are
	// byte-identical for every setting.
	Workers int
	// Metrics, when non-nil, collects ingestion counters (entries accepted/
	// late/corrupt, buckets closed) and the window-occupancy gauges (see
	// internal/obs). Collection never changes delivered buckets or
	// snapshots.
	Metrics *obs.Registry
	// RecycleBuckets lets the ingester reuse the entry slices of buckets
	// that retired from the window as scratch for new buckets, removing the
	// dominant steady-state allocation of the ingest path. Opt-in because
	// it sharpens the Bucket ownership contract: with recycling on, every
	// consumer (miners, OnAdvance) must treat Bucket.Entries as invalid
	// once the bucket leaves the window — retaining the slice would observe
	// it being overwritten. The built-in stream miners copy what they keep,
	// so cmd/depmine enables this; leave it off when attaching miners with
	// unknown retention. Delivered buckets and snapshots are byte-identical
	// either way.
	RecycleBuckets bool
}

// DefaultConfig returns the default window configuration with every field
// set explicitly.
func DefaultConfig() Config {
	return Config{}.withDefaults()
}

func (c Config) withDefaults() Config {
	if c.BucketWidth == 0 {
		c.BucketWidth = logmodel.MillisPerHour
	}
	if c.WindowBuckets == 0 {
		c.WindowBuckets = 24
	}
	return c
}

// Bucket is one closed ingest bucket: the entries of the half-open time
// range [Range.Start, Range.End), sorted by time (stable, preserving
// arrival order of simultaneous entries — the same order a batch
// logmodel.Store sort produces). Index counts buckets from the stream
// origin; indexes are strictly increasing across Advance calls but may
// jump, because empty buckets are never delivered.
type Bucket struct {
	Index   int64
	Range   logmodel.TimeRange
	Entries []logmodel.Entry
}

// Miner is an incremental miner over the sliding window.
//
// Advance feeds the next closed bucket; implementations retire all state
// older than WindowBuckets behind it (handling index jumps across empty
// buckets) in O(bucket) time. Snapshot returns the current window's model
// document; the contract is byte equivalence with Batch over a store
// holding exactly the window's entries. Batch runs the corresponding batch
// miner — the reference implementation Snapshot is tested against.
type Miner interface {
	Advance(b Bucket)
	Snapshot() core.ModelDocument
	Batch(store *logmodel.Store, r logmodel.TimeRange) core.ModelDocument
}

// window tracks the bucket arithmetic shared by the stream miners: the
// last delivered bucket and the derived window extent.
type window struct {
	cfg     Config
	started bool
	last    Bucket
}

// observe records a delivered bucket. Only the index and range are kept:
// retaining b whole would pin b.Entries, which the ingester recycles once
// the bucket retires from the window (Config.RecycleBuckets, DESIGN.md
// §12).
func (w *window) observe(b Bucket) {
	if w.started && b.Index <= w.last.Index {
		panic("stream: Advance requires strictly increasing bucket indexes")
	}
	w.started = true
	w.last = Bucket{Index: b.Index, Range: b.Range}
}

// lo returns the first bucket index still inside the window.
func (w *window) lo() int64 {
	lo := w.last.Index - int64(w.cfg.WindowBuckets) + 1
	if lo < 0 {
		lo = 0
	}
	return lo
}

// buckets returns the number of bucket slots the window currently spans
// (less than WindowBuckets during warm-up, 0 before the first bucket).
func (w *window) buckets() int {
	if !w.started {
		return 0
	}
	return int(w.last.Index - w.lo() + 1)
}

// timeRange returns the window's time extent [start of bucket lo, end of
// the last bucket).
func (w *window) timeRange() logmodel.TimeRange {
	if !w.started {
		return logmodel.TimeRange{}
	}
	end := w.last.Range.End
	return logmodel.TimeRange{
		Start: end - logmodel.Millis(w.buckets())*w.cfg.BucketWidth,
		End:   end,
	}
}
