// Package stream implements bounded-memory incremental mining over a
// sliding window of log buckets — the "moving" half of mapping a moving
// landscape. Where cmd/depmine loads a finished corpus and mines it once,
// this package consumes a live, append-mostly log stream: an Ingester cuts
// the stream into fixed-width time buckets, and per-technique stream miners
// (L1Stream, L2Stream, L3Stream) maintain just enough state to answer "what
// is the dependency model of the last W buckets" at any time.
//
// The package's contract is batch equivalence: after every Advance, a
// miner's Snapshot is byte-identical (as a serialized core.ModelDocument)
// to running the corresponding batch miner over a store holding exactly the
// window's entries. The per-technique state is chosen so that Advance costs
// O(bucket), not O(window):
//
//   - L1 keeps the per-slot test outcomes of each window bucket. Slot
//     outcomes depend only on the slot's entries and its absolute time
//     range (the RNG seed hashes the slot start, not the slot index), so a
//     bucket's outcomes are computed once when it enters the window and
//     replayed unchanged by every later Snapshot; Snapshot just re-folds
//     the W outcome lists.
//   - L2 keeps a sessions.Tracker (incremental per-user session runs that
//     span bucket boundaries) and an l2.Counts bigram aggregation updated
//     from the tracker's session deltas. Snapshot re-runs only the per-type
//     association tests.
//   - L3 keeps the per-bucket citation evidence maps; Snapshot folds them
//     in time order with l3.MergeEvidence.
//
// All snapshots are deterministic and worker-count independent, like the
// batch miners (see DESIGN.md §9).
package stream
