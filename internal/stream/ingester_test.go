package stream

import (
	"math"
	"reflect"
	"testing"

	"logscape/internal/logmodel"
)

func at(t logmodel.Millis, src string) logmodel.Entry {
	return logmodel.Entry{Time: t, Source: src, Host: "h"}
}

// collect wires a recording callback into a fresh ingester.
func collect(cfg Config) (*Ingester, *[]Bucket) {
	var out []Bucket
	in := NewIngester(cfg)
	in.OnAdvance = func(b Bucket) { out = append(out, b) }
	return in, &out
}

func TestIngesterBucketing(t *testing.T) {
	w := logmodel.Millis(1000)
	in, got := collect(Config{BucketWidth: w, WindowBuckets: 3})
	in.AddAll([]logmodel.Entry{
		at(1500, "A"), // origin aligns to 1000; bucket 0 = [1000, 2000)
		at(1999, "B"),
		at(1400, "C"), // out of order within the open bucket: kept, sorted
		at(2000, "D"), // closes bucket 0
		at(900, "E"),  // before a closed bucket: late
		at(5500, "F"), // jumps over empty buckets 2..4 to bucket 4
	})
	in.Flush()

	if len(*got) != 3 {
		t.Fatalf("delivered %d buckets, want 3 (indexes 0, 1, 4)", len(*got))
	}
	b0, b1, b4 := (*got)[0], (*got)[1], (*got)[2]
	if b0.Index != 0 || b1.Index != 1 || b4.Index != 4 {
		t.Errorf("bucket indexes = %d, %d, %d; want 0, 1, 4", b0.Index, b1.Index, b4.Index)
	}
	if b0.Range != (logmodel.TimeRange{Start: 1000, End: 2000}) {
		t.Errorf("bucket 0 range = %+v, want [1000, 2000)", b0.Range)
	}
	wantOrder := []string{"C", "A", "B"}
	var order []string
	for _, e := range b0.Entries {
		order = append(order, e.Source)
	}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Errorf("bucket 0 entry order = %v, want %v (stable time sort)", order, wantOrder)
	}
	if s := in.Stats(); s.Late != 1 || s.Accepted != 5 || s.Buckets != 3 {
		t.Errorf("stats = %+v, want Late:1 Accepted:5 Buckets:3", s)
	}
	// Window after the jump holds indexes ≥ 2, i.e. only bucket 4.
	if r := in.WindowRange(); r != (logmodel.TimeRange{Start: 3000, End: 6000}) {
		t.Errorf("window range = %+v, want [3000, 6000)", r)
	}
	if n := in.WindowStore().Len(); n != 1 {
		t.Errorf("window store has %d entries, want 1 (only bucket 4 remains)", n)
	}
}

func TestIngesterFlushSemantics(t *testing.T) {
	in, got := collect(Config{BucketWidth: 1000, WindowBuckets: 4})
	in.Add(at(100, "A"))
	in.Flush()
	in.Add(at(200, "B")) // same bucket as the flushed one: late
	in.Flush()           // nothing open: no-op
	in.Add(at(1200, "C"))
	in.Flush()
	if len(*got) != 2 {
		t.Fatalf("delivered %d buckets, want 2", len(*got))
	}
	if s := in.Stats(); s.Late != 1 || s.Accepted != 2 {
		t.Errorf("stats = %+v, want Late:1 Accepted:2", s)
	}
}

func TestIngesterCorruptTimestamps(t *testing.T) {
	in, got := collect(Config{BucketWidth: 1000, WindowBuckets: 2})
	in.AddAll([]logmodel.Entry{
		at(-MaxAbsTime, "A"),
		at(MaxAbsTime, "B"),
		at(MaxAbsTime-1, "C"), // just inside the bound: accepted
	})
	in.Flush()
	if s := in.Stats(); s.Corrupt != 2 || s.Accepted != 1 {
		t.Errorf("stats = %+v, want Corrupt:2 Accepted:1", s)
	}
	if len(*got) != 1 || len((*got)[0].Entries) != 1 {
		t.Fatalf("expected one bucket with the single accepted entry, got %+v", *got)
	}
}

func TestIngesterTimestampClampBoundaries(t *testing.T) {
	// Regression pin for the ±2^60 ms clamp: the accepted range is the open
	// interval (−MaxAbsTime, MaxAbsTime). The extremes of int64 must be
	// rejected too — bucket-index arithmetic on them would overflow.
	if MaxAbsTime != 1<<60 {
		t.Fatalf("MaxAbsTime = %d, want 1<<60; the boundary cases below pin that value", int64(MaxAbsTime))
	}
	cases := []struct {
		name string
		ts   logmodel.Millis
		want Verdict
	}{
		{"MinInt64", logmodel.Millis(math.MinInt64), VerdictCorrupt},
		{"MaxInt64", logmodel.Millis(math.MaxInt64), VerdictCorrupt},
		{"-2^60", -MaxAbsTime, VerdictCorrupt},
		{"+2^60", MaxAbsTime, VerdictCorrupt},
		{"-(2^60-1)", -(MaxAbsTime - 1), VerdictAccepted},
		{"+(2^60-1)", MaxAbsTime - 1, VerdictAccepted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := NewIngester(Config{BucketWidth: 1000, WindowBuckets: 2})
			if got := in.Add(at(tc.ts, "A")); got != tc.want {
				t.Errorf("Add(%d) = %v, want %v", int64(tc.ts), got, tc.want)
			}
		})
	}
}

func TestIngesterNegativeTimes(t *testing.T) {
	// The bucket grid must align toward −∞ so pre-epoch streams bucket
	// consistently.
	in, got := collect(Config{BucketWidth: 1000, WindowBuckets: 4})
	in.AddAll([]logmodel.Entry{at(-1500, "A"), at(-400, "B"), at(600, "C")})
	in.Flush()
	if len(*got) != 3 {
		t.Fatalf("delivered %d buckets, want 3", len(*got))
	}
	if r := (*got)[0].Range; r != (logmodel.TimeRange{Start: -2000, End: -1000}) {
		t.Errorf("first bucket range = %+v, want [-2000, -1000)", r)
	}
	if r := in.WindowRange(); r != (logmodel.TimeRange{Start: -2000, End: 1000}) {
		t.Errorf("window range = %+v, want [-2000, 1000)", r)
	}
}

func TestWindowArithmetic(t *testing.T) {
	w := window{cfg: Config{BucketWidth: 10, WindowBuckets: 3}.withDefaults()}
	if n := w.buckets(); n != 0 {
		t.Errorf("empty window spans %d buckets, want 0", n)
	}
	w.observe(Bucket{Index: 0, Range: logmodel.TimeRange{Start: 0, End: 10}})
	if n, r := w.buckets(), w.timeRange(); n != 1 || r != (logmodel.TimeRange{Start: 0, End: 10}) {
		t.Errorf("warm-up window = %d buckets %+v, want 1 [0, 10)", n, r)
	}
	w.observe(Bucket{Index: 7, Range: logmodel.TimeRange{Start: 70, End: 80}})
	if n, r := w.buckets(), w.timeRange(); n != 3 || r != (logmodel.TimeRange{Start: 50, End: 80}) {
		t.Errorf("post-jump window = %d buckets %+v, want 3 [50, 80)", n, r)
	}
	defer func() {
		if recover() == nil {
			t.Error("observe accepted a non-increasing bucket index")
		}
	}()
	w.observe(Bucket{Index: 7})
}
