package stream

import (
	"fmt"
	"io"
	"os"

	"logscape/internal/obs"
)

// TailerConfig parameterizes a Tailer.
type TailerConfig struct {
	// Wait is consulted when the current file is exhausted and no rotation
	// is pending: return true to re-check for new data or a rotation, false
	// to end the stream. nil ends at first quiescent EOF (one-shot replay —
	// the depmine -follow default). The hook doubles as the deterministic
	// scheduling point of the chaos harness: its FS transport advances the
	// fault script inside Wait, so tailing stays single-goroutine and
	// reproducible.
	Wait func() bool
	// Metrics, when non-nil, collects ingest.rotations (log file replaced
	// under the same name) and ingest.truncations (file shrank in place,
	// i.e. copytruncate-style rotation).
	Metrics *obs.Registry
}

// Tailer reads a log file like `tail -F` reads it: sequentially to EOF,
// then — instead of stopping — it detects the two rotation shapes a
// production logger produces and keeps going:
//
//   - rename rotation: the path now names a different file (new inode);
//     the tailer reopens the path and continues from its start;
//   - copytruncate rotation: the same file shrank below the read offset;
//     the tailer rewinds to the start.
//
// Rotation checks happen only at EOF of the current file, so nothing
// written before a rename is ever skipped (the old handle is drained
// first). Tailer implements io.Reader and is not safe for concurrent use.
type Tailer struct {
	path   string
	cfg    TailerConfig
	f      *os.File
	offset int64

	rotations   int64
	truncations int64
	mRot, mTrun *obs.Counter
}

// NewTailer opens path for tailing.
func NewTailer(path string, cfg TailerConfig) (*Tailer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &Tailer{
		path:  path,
		cfg:   cfg,
		f:     f,
		mRot:  cfg.Metrics.Counter("ingest.rotations"),
		mTrun: cfg.Metrics.Counter("ingest.truncations"),
	}, nil
}

// Offset returns the read position in the current file.
func (t *Tailer) Offset() int64 { return t.offset }

// Rotations returns the number of rotations (rename or truncate) seen.
func (t *Tailer) Rotations() int64 { return t.rotations + t.truncations }

// SeekTo positions the read offset in the current file — the resume path:
// a Checkpoint's offset is only valid against the same file content, so
// SeekTo verifies the file still reaches off and refuses otherwise rather
// than silently reading from the wrong place.
func (t *Tailer) SeekTo(off int64) error {
	fi, err := t.f.Stat()
	if err != nil {
		return err
	}
	if off < 0 || off > fi.Size() {
		return fmt.Errorf("stream: resume offset %d beyond file %s (%d bytes); the file was rotated or truncated since the checkpoint — cold-start with a window replay instead", off, t.path, fi.Size())
	}
	if _, err := t.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	t.offset = off
	return nil
}

// Close closes the current file handle.
func (t *Tailer) Close() error { return t.f.Close() }

// Read implements io.Reader.
func (t *Tailer) Read(p []byte) (int, error) {
	for {
		n, err := t.f.Read(p)
		if n > 0 {
			t.offset += int64(n)
			return n, nil
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		// EOF on the current handle: rotated, truncated, or just quiescent.
		switch rotated, err := t.check(); {
		case err != nil:
			return 0, err
		case rotated:
			continue
		}
		if t.cfg.Wait != nil && t.cfg.Wait() {
			continue
		}
		return 0, io.EOF
	}
}

// check looks for a rotation at EOF and repositions if one happened.
func (t *Tailer) check() (rotated bool, err error) {
	pathInfo, statErr := os.Stat(t.path)
	if statErr != nil {
		// The path is momentarily absent — mid-rename rotation. Not an
		// error: the Wait loop will re-check once the new file exists.
		return false, nil
	}
	openInfo, err := t.f.Stat()
	if err != nil {
		return false, err
	}
	if !os.SameFile(pathInfo, openInfo) {
		// Rename rotation: reopen the path (the new file) from the start.
		nf, err := os.Open(t.path)
		if err != nil {
			return false, err
		}
		t.f.Close()
		t.f = nf
		t.offset = 0
		t.rotations++
		t.mRot.Inc()
		return true, nil
	}
	if pathInfo.Size() < t.offset {
		// Copytruncate rotation: same file, shrunk under us.
		if _, err := t.f.Seek(0, io.SeekStart); err != nil {
			return false, err
		}
		t.offset = 0
		t.truncations++
		t.mTrun.Inc()
		return true, nil
	}
	return false, nil
}
