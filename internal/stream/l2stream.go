package stream

import (
	"sort"

	"logscape/internal/core"
	"logscape/internal/core/l2"
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
)

// L2Stream is the incremental L2 miner. Sessions span bucket boundaries, so
// the window state is a sessions.Tracker (per-user gap-free runs of which
// only the leading and trailing ones move) plus an l2.Counts bigram
// aggregation kept in sync through the tracker's session deltas: when a
// session grows at the tail or loses retired entries at the head, its old
// bigrams are removed and its new ones added — all counts are
// integer-valued, so the incremental aggregation stays structurally equal
// to a from-scratch tally of the window's sessions. Snapshot re-runs only
// the per-type association tests over the maintained counts.
type L2Stream struct {
	win     window
	cfg     l2.Config
	scfg    sessions.Config
	tracker *sessions.Tracker
	counts  *l2.Counts
	// users holds the distinct users of each window bucket, in index
	// order — the affected-user lists handed to Tracker.Retire so
	// retirement touches only the users of leaving buckets.
	users []bucketUsers
	// trackDrift enables per-bucket drift features (see drift.go).
	trackDrift bool
	lastActive []string
}

type bucketUsers struct {
	index int64
	users []string
}

// NewL2 builds a streaming L2 miner with the given session-creation and
// association configurations.
func NewL2(wcfg Config, scfg sessions.Config, cfg l2.Config) *L2Stream {
	if cfg.Timeout == 0 {
		// The incremental bigram extraction must use the same effective
		// timeout the association pass will; resolve the default once.
		cfg.Timeout = l2.DefaultConfig().Timeout
	}
	return &L2Stream{
		win:     window{cfg: wcfg.withDefaults()},
		cfg:     cfg,
		scfg:    scfg,
		tracker: sessions.NewTracker(scfg),
		counts:  l2.NewCounts(),
	}
}

// Advance retires the entries that left the window, appends the bucket's
// entries, and folds the resulting session deltas into the bigram counts.
// Cost: O(bucket + touched sessions) — interior sessions are never
// revisited.
func (m *L2Stream) Advance(b Bucket) {
	m.win.observe(b)

	// Retire everything before the new window start. Only users appearing
	// in the leaving buckets can be affected; collecting them from the
	// per-bucket lists (and sorting the union) keeps retirement both
	// O(bucket) and deterministic.
	lo := m.win.lo()
	cutoff := m.win.timeRange().Start
	drop := 0
	affected := make(map[string]bool)
	for drop < len(m.users) && m.users[drop].index < lo {
		for _, u := range m.users[drop].users {
			affected[u] = true
		}
		drop++
	}
	if drop > 0 {
		m.users = m.users[drop:]
		names := make([]string, 0, len(affected))
		for u := range affected {
			names = append(names, u)
		}
		sort.Strings(names)
		m.apply(m.tracker.Retire(cutoff, names))
	}

	ds := m.tracker.Append(b.Entries)
	m.apply(ds)
	if m.trackDrift {
		m.lastActive = newBigramKeys(ds, m.cfg.Timeout)
	}
	if us := distinctUsers(b.Entries); len(us) > 0 {
		m.users = append(m.users, bucketUsers{index: b.Index, users: us})
	}
}

// apply folds session deltas into the bigram counts.
func (m *L2Stream) apply(ds []sessions.SessionDelta) {
	timeout := m.cfg.Timeout
	for _, d := range ds {
		if d.Removed != nil {
			m.counts.Remove(l2.ExtractBigrams(d.Removed, timeout))
		}
		if d.Added != nil {
			m.counts.Add(l2.ExtractBigrams(d.Added, timeout))
		}
	}
}

// Snapshot runs the association tests over the maintained counts.
func (m *L2Stream) Snapshot() core.ModelDocument {
	res := l2.ResultFromCounts(m.counts, m.cfg)
	return core.NewPairDocument("l2", res.DependentPairs(), nil)
}

// Batch is the reference: batch session creation and batch L2 mining over
// the store (restricted to r when non-zero).
func (m *L2Stream) Batch(store *logmodel.Store, r logmodel.TimeRange) core.ModelDocument {
	if r != (logmodel.TimeRange{}) {
		store = store.Filter(func(e *logmodel.Entry) bool { return r.Contains(e.Time) })
	}
	ss, _ := sessions.Build(store, m.scfg)
	res := l2.Mine(ss, m.cfg)
	return core.NewPairDocument("l2", res.DependentPairs(), nil)
}

// distinctUsers returns the sorted distinct non-empty users of es.
func distinctUsers(es []logmodel.Entry) []string {
	seen := make(map[string]bool)
	for i := range es {
		if u := es[i].User; u != "" {
			seen[u] = true
		}
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
