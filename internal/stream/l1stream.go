package stream

import (
	"logscape/internal/core"
	"logscape/internal/core/l1"
	"logscape/internal/drift"
	"logscape/internal/logmodel"
)

// L1Stream is the incremental L1 miner: each window bucket is one L1 time
// slot, and the per-slot pair-test outcomes are cached when the bucket
// enters the window. That caching is sound because a slot's outcomes are a
// function of the slot's entries and its absolute time range only — the
// test RNG is seeded from the slot's start time, not its position in the
// window — so sliding the window never changes an interior slot's
// outcomes. Snapshot re-folds the ≤ W cached outcome lists (integer
// tallying, no re-mining).
type L1Stream struct {
	win window
	cfg l1.Config
	// outs holds one cached outcome list per non-empty window bucket, in
	// index order.
	outs []indexedOutcomes
	// trackDrift enables per-bucket drift features (see drift.go).
	trackDrift bool
	lastActive []string
}

type indexedOutcomes struct {
	index    int64
	outcomes []l1.SlotOutcome
}

// NewL1 builds a streaming L1 miner. The slot width is the window's bucket
// width; cfg.SlotWidth is overwritten accordingly (batch equivalence is
// against l1.Mine with the same slotting). cfg.Workers bounds the pair
// tests of an advancing bucket.
func NewL1(scfg Config, cfg l1.Config) *L1Stream {
	scfg = scfg.withDefaults()
	cfg.SlotWidth = scfg.BucketWidth
	return &L1Stream{win: window{cfg: scfg}, cfg: cfg}
}

// Advance mines the bucket as one slot and retires buckets that left the
// window. Cost: one slot's pair tests — O(bucket), independent of W.
func (m *L1Stream) Advance(b Bucket) {
	m.win.observe(b)
	outcomes := l1.SlotOutcomes(b.Entries, b.Range, nil, m.cfg)
	if len(outcomes) > 0 {
		m.outs = append(m.outs, indexedOutcomes{index: b.Index, outcomes: outcomes})
	}
	if m.trackDrift {
		m.lastActive = m.lastActive[:0]
		for _, o := range outcomes {
			if o.Positive {
				m.lastActive = append(m.lastActive, drift.PairKey(o.Pair.A, o.Pair.B))
			}
		}
	}
	lo := m.win.lo()
	drop := 0
	for drop < len(m.outs) && m.outs[drop].index < lo {
		drop++
	}
	m.outs = m.outs[drop:]
}

// Snapshot folds the cached slot outcomes into the window's L1 model
// document. Passing nil sources to the fold leaves never-supported pairs
// out of the diagnostics, which cannot change the dependent set (an
// unsupported pair never clears the positive-ratio threshold) and hence
// not the document.
func (m *L1Stream) Snapshot() core.ModelDocument {
	lists := make([][]l1.SlotOutcome, len(m.outs))
	for i := range m.outs {
		lists[i] = m.outs[i].outcomes
	}
	res := l1.FoldOutcomes(nil, m.win.buckets(), lists, m.cfg)
	return core.NewPairDocument("l1", res.DependentPairs(), nil)
}

// Batch is the reference: batch-mine the store over the window range with
// the same configuration.
func (m *L1Stream) Batch(store *logmodel.Store, r logmodel.TimeRange) core.ModelDocument {
	res := l1.Mine(store, r, nil, m.cfg)
	return core.NewPairDocument("l1", res.DependentPairs(), nil)
}
