package stream

import (
	"bytes"
	"strings"
	"testing"

	"logscape/internal/core"
	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/core/l3"
	"logscape/internal/directory"
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
)

// FuzzIngester feeds arbitrary wire-format text to the full streaming
// pipeline. Lines are parsed individually (parse failures are skipped, so
// the fuzzer can splice entries freely) and delivered in input order —
// including out-of-order timestamps, far jumps, entries landing exactly on
// bucket boundaries, and the extreme timestamps the wire parser happily
// accepts. Invariants: nothing panics, and after the final flush every
// miner's Snapshot still equals its batch reference over the ingester's
// window store. The seeds reuse the FuzzReadLogs corpus shapes plus
// streaming-specific ones; small buckets and MinLogs/MinJoint floors keep
// the miners non-trivially exercised at fuzz scale.
func FuzzIngester(f *testing.F) {
	f.Add("2005-12-06T08:00:00.000Z\tDPIFormidoc\thost1\tu17\tINFO\thello world")
	f.Add("2005-12-06T08:00:00.000Z\tA\t\t\tDEBUG\ttabbed\\tmessage\n" +
		"2005-12-06T08:00:01.500Z\tB\th\tu\tERROR\tline\\nbreak and back\\\\slash")
	f.Add("2005-12-06T23:59:59.999+01:00\tApp2\thost\t\tWARN\toffset timestamp")
	f.Add("\n\n2005-12-06T08:00:00.000Z\tX\th\tu\tINFO\tafter blank lines\n\n")
	f.Add("not a log line")
	f.Add("2005-12-06T08:00:02.000Z\tLate\th\tu\tINFO\tsecond\n" +
		"2005-12-06T08:00:01.000Z\tEarly\th\tu\tINFO\tfirst")
	// A session riding a bucket boundary, citations, and a far jump.
	f.Add("2005-12-06T08:00:00.999Z\tA\th\tu1\tINFO\tcall DPIREG start\n" +
		"2005-12-06T08:00:01.000Z\tB\th\tu1\tINFO\ton the boundary\n" +
		"2005-12-06T08:00:01.001Z\tA\th\tu1\tINFO\tGET /reg/list\n" +
		"2005-12-06T08:00:01.010Z\tB\th\tu1\tINFO\tdone\n" +
		"2005-12-07T09:00:00.000Z\tA\th\tu1\tINFO\tnext day entirely")
	// Extreme timestamps the wire format can produce.
	f.Add("0001-01-01T00:00:00.000Z\tA\th\tu\tINFO\tancient\n" +
		"9999-12-31T23:59:59.999Z\tB\th\tu\tINFO\tfar future")

	dir := &directory.Directory{Version: 1, Groups: []directory.Group{
		{ID: "DPIREG", RootURL: "http://reg.hug/reg"},
	}}

	f.Fuzz(func(t *testing.T, data string) {
		wcfg := Config{BucketWidth: logmodel.MillisPerSecond, WindowBuckets: 4}
		l1cfg := l1.DefaultConfig()
		l1cfg.MinLogs = 2
		l1cfg.SampleSize = 8
		miners := []Miner{
			NewL1(wcfg, l1cfg),
			NewL2(wcfg, sessions.Config{MaxGap: 500, MinEntries: 2, MinSources: 2},
				l2.Config{MinJoint: 1, Alpha: 0.05, Timeout: 500, Measure: l2.MeasureG2}),
			NewL3(wcfg, l3.NewMiner(dir, l3.DefaultConfig())),
		}
		in := NewIngester(wcfg, miners...)
		for _, line := range strings.Split(data, "\n") {
			e, err := logmodel.ParseEntry(line)
			if err != nil {
				continue
			}
			in.Add(e)
		}
		in.Flush()

		win, r := in.WindowStore(), in.WindowRange()
		for _, m := range miners {
			snap, batch := m.Snapshot(), m.Batch(win, r)
			var sb, bb bytes.Buffer
			if err := core.WriteModel(&sb, snap); err != nil {
				t.Fatalf("serialize snapshot: %v", err)
			}
			if err := core.WriteModel(&bb, batch); err != nil {
				t.Fatalf("serialize batch: %v", err)
			}
			if !bytes.Equal(sb.Bytes(), bb.Bytes()) {
				t.Fatalf("%s: stream snapshot diverges from batch over the window\nstream: %s\nbatch:  %s\ninput: %q",
					snap.Technique, sb.String(), bb.String(), data)
			}
		}
	})
}
