package stream

import (
	"encoding/json"
	"fmt"
	"os"

	"logscape/internal/logmodel"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// Checkpoint is a serializable snapshot of an Ingester's window state plus
// the transport position it corresponds to: everything a killed follow
// process needs to resume without replaying the whole stream and without
// double-ingesting a single line. Entries are stored as wire-format lines
// (byte slices, base64 in JSON, so messages that are not valid UTF-8
// survive the round trip — encoding/json would otherwise mangle them).
//
// The checkpoint deliberately holds no miner state: miners are rebuilt on
// restore by replaying the window's buckets through Advance. The streaming
// contract — Snapshot is a pure function of the window's entries — makes
// that replay exact, and pinning one serialization per miner would couple
// the format to every miner's internals.
type Checkpoint struct {
	Version int `json:"version"`
	// Offset is the logical stream position just past the last processed
	// line (Feeder.Consumed at checkpoint time): resume by skipping exactly
	// this many decompressed bytes, or seeking to it in a plain file.
	Offset int64 `json:"offset"`
	// Rotations is the tailer's rotation count at checkpoint time. A plain
	// Offset is only seekable while it is 0 — after a rotation the offset
	// no longer maps to one file.
	Rotations int64 `json:"rotations"`

	// BucketWidth and WindowBuckets pin the window geometry; restore
	// refuses a mismatching Config instead of mis-bucketing silently.
	BucketWidth   logmodel.Millis `json:"bucket_width"`
	WindowBuckets int             `json:"window_buckets"`

	Origin  logmodel.Millis    `json:"origin"`
	Cur     int64              `json:"cur"`
	Open    bool               `json:"open"`
	Pending [][]byte           `json:"pending,omitempty"`
	Buckets []CheckpointBucket `json:"buckets,omitempty"`
	Stats   IngestStats        `json:"stats"`

	// WindowInStore marks a light checkpoint (CheckpointLight): the window
	// buckets were not serialized because a model store holds the same
	// entries as raw-segment evidence. Restore refuses such a checkpoint
	// until a hydrator (modelstore.Store.Hydrate) has filled Buckets back
	// in and cleared the flag — restoring with a silently empty window
	// would drop the miners' state instead of failing loudly.
	WindowInStore bool `json:"window_in_store,omitempty"`

	// Drift carries the drift detector's serialized state (drift.State),
	// when the follower runs with drift detection on. The ingester itself
	// neither produces nor consumes it: replaying the window's buckets
	// through the miners must NOT re-feed the detector (those buckets were
	// observed before the checkpoint), so the caller restores the detector
	// from this blob instead.
	Drift json.RawMessage `json:"drift,omitempty"`
}

// CheckpointBucket is one delivered window bucket in checkpoint form. Its
// time range is not stored: it is derived from Origin + Index·BucketWidth.
type CheckpointBucket struct {
	Index   int64    `json:"index"`
	Entries [][]byte `json:"entries"`
}

// Checkpoint captures the ingester's current window state. offset and
// rotations describe the transport position (see the field docs); callers
// typically take a checkpoint inside OnAdvance, right after a bucket
// closed, with offset = Feeder.Consumed().
func (in *Ingester) Checkpoint(offset, rotations int64) *Checkpoint {
	c := &Checkpoint{
		Version:       checkpointVersion,
		Offset:        offset,
		Rotations:     rotations,
		BucketWidth:   in.cfg.BucketWidth,
		WindowBuckets: in.cfg.WindowBuckets,
		Origin:        in.origin,
		Cur:           in.cur,
		Open:          in.open,
		Stats:         in.stats,
	}
	if !in.started {
		c.Cur = -1 // sentinel: no origin fixed yet
	}
	if n := len(in.pending); n > 0 {
		c.Pending = make([][]byte, 0, n)
		for _, e := range in.pending {
			c.Pending = append(c.Pending, logmodel.AppendEntry(nil, e))
		}
	}
	for _, b := range in.win {
		cb := CheckpointBucket{Index: b.Index}
		if n := len(b.Entries); n > 0 {
			cb.Entries = make([][]byte, 0, n)
		}
		for _, e := range b.Entries {
			cb.Entries = append(cb.Entries, logmodel.AppendEntry(nil, e))
		}
		c.Buckets = append(c.Buckets, cb)
	}
	return c
}

// CheckpointLight captures the ingester's state like Checkpoint but skips
// the window buckets and marks the result WindowInStore. It is the O(1)
// form for store-backed followers: the window's entries already live in
// the model store's raw segments, so serializing them again into every
// checkpoint would write the window twice per bucket. Pending entries
// (the open bucket) are still included — they have not been delivered,
// so no store record holds them.
func (in *Ingester) CheckpointLight(offset, rotations int64) *Checkpoint {
	c := &Checkpoint{
		Version:       checkpointVersion,
		Offset:        offset,
		Rotations:     rotations,
		BucketWidth:   in.cfg.BucketWidth,
		WindowBuckets: in.cfg.WindowBuckets,
		Origin:        in.origin,
		Cur:           in.cur,
		Open:          in.open,
		Stats:         in.stats,
		WindowInStore: true,
	}
	if !in.started {
		c.Cur = -1 // sentinel: no origin fixed yet
	}
	if n := len(in.pending); n > 0 {
		c.Pending = make([][]byte, 0, n)
		for _, e := range in.pending {
			c.Pending = append(c.Pending, logmodel.AppendEntry(nil, e))
		}
	}
	return c
}

// Restore rebuilds an ingester (and the given freshly constructed miners)
// from the checkpoint: window buckets are replayed through every miner's
// Advance in index order, pending entries are reinstated, and the window
// gauges are re-set. The miners must be new — replay on top of existing
// state would double-count. Metric counters restart from zero (a resumed
// process is a new process); IngestStats continuity comes from the
// checkpoint itself.
func (c *Checkpoint) Restore(cfg Config, miners ...Miner) (*Ingester, error) {
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("stream: checkpoint version %d, want %d", c.Version, checkpointVersion)
	}
	if c.WindowInStore {
		return nil, fmt.Errorf("stream: checkpoint window lives in the model store; hydrate it from segments before restoring")
	}
	cfg = cfg.withDefaults()
	if cfg.BucketWidth != c.BucketWidth || cfg.WindowBuckets != c.WindowBuckets {
		return nil, fmt.Errorf("stream: checkpoint window geometry %dms×%d does not match configured %dms×%d",
			c.BucketWidth, c.WindowBuckets, cfg.BucketWidth, cfg.WindowBuckets)
	}
	in := NewIngester(cfg, miners...)
	in.stats = c.Stats
	if c.Cur < 0 {
		return in, nil // checkpointed before the first accepted entry
	}
	in.started = true
	in.origin = c.Origin
	in.cur = c.Cur
	in.open = c.Open

	// One intern table across the whole restore: the replayed window and the
	// pending bucket share Source/Host/User values just like live ingest.
	it := logmodel.NewIntern()
	var err error
	in.pending, err = parseLines(c.Pending, it)
	if err != nil {
		return nil, fmt.Errorf("stream: checkpoint pending: %w", err)
	}
	last := int64(-1)
	winEntries := int64(0)
	for _, cb := range c.Buckets {
		if cb.Index <= last {
			return nil, fmt.Errorf("stream: checkpoint buckets out of order (%d after %d)", cb.Index, last)
		}
		last = cb.Index
		es, err := parseLines(cb.Entries, it)
		if err != nil {
			return nil, fmt.Errorf("stream: checkpoint bucket %d: %w", cb.Index, err)
		}
		start := c.Origin + logmodel.Millis(cb.Index)*cfg.BucketWidth
		b := Bucket{
			Index:   cb.Index,
			Range:   logmodel.TimeRange{Start: start, End: start + cfg.BucketWidth},
			Entries: es,
		}
		in.win = append(in.win, b)
		winEntries += int64(len(es))
		for _, m := range in.miners {
			m.Advance(b)
		}
	}
	in.mWinBuckets.Set(int64(len(in.win)))
	in.mWinEntries.Set(winEntries)
	return in, nil
}

// parseLines decodes wire-format lines back into entries, interning through
// it (the JSON-decoded line buffers are left unmodified and free to be
// collected).
func parseLines(lines [][]byte, it *logmodel.Intern) ([]logmodel.Entry, error) {
	if len(lines) == 0 {
		return nil, nil
	}
	es := make([]logmodel.Entry, 0, len(lines))
	for _, l := range lines {
		e, err := logmodel.ParseEntryBytes(l, it)
		if err != nil {
			return nil, err
		}
		es = append(es, e)
	}
	return es, nil
}

// WriteCheckpointFile atomically persists the checkpoint: write to a
// sibling temp file, fsync-free rename over the target. A crash mid-write
// leaves the previous checkpoint intact — resume never sees a torn file.
func WriteCheckpointFile(path string, c *Checkpoint) error {
	data, err := json.Marshal(c)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCheckpointFile loads a checkpoint written by WriteCheckpointFile.
// A missing file returns (nil, nil): "no checkpoint yet" is the normal
// first-run state, not an error.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("stream: checkpoint %s: %w", path, err)
	}
	return &c, nil
}
