package stream

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logscape/internal/obs"
)

// tailHarness drives a Tailer deterministically: Wait executes the next
// scripted filesystem step, so tailing stays single-goroutine.
type tailHarness struct {
	t     *testing.T
	path  string
	steps []func()
	i     int
}

func (h *tailHarness) append(s string) func() {
	return func() {
		h.t.Helper()
		f, err := os.OpenFile(h.path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			h.t.Fatal(err)
		}
		if _, err := f.WriteString(s); err != nil {
			h.t.Fatal(err)
		}
		f.Close()
	}
}

func (h *tailHarness) rotate() func() {
	n := 0
	return func() {
		h.t.Helper()
		n++
		if err := os.Rename(h.path, h.path+".1"); err != nil {
			h.t.Fatal(err)
		}
		if err := os.WriteFile(h.path, nil, 0o644); err != nil {
			h.t.Fatal(err)
		}
	}
}

func (h *tailHarness) truncate(s string) func() {
	return func() {
		h.t.Helper()
		if err := os.WriteFile(h.path, []byte(s), 0o644); err != nil {
			h.t.Fatal(err)
		}
	}
}

func (h *tailHarness) wait() bool {
	if h.i >= len(h.steps) {
		return false
	}
	h.steps[h.i]()
	h.i++
	return true
}

func newTailHarness(t *testing.T) *tailHarness {
	h := &tailHarness{t: t, path: filepath.Join(t.TempDir(), "log")}
	if err := os.WriteFile(h.path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTailerFollowsAppendsAndRenameRotation(t *testing.T) {
	h := newTailHarness(t)
	h.steps = []func(){
		h.append("one\n"),
		h.append("two\n"),
		h.rotate(),
		h.append("three\n"), // lands in the new file
		h.rotate(),
		h.rotate(), // rotating an empty file is fine too
		h.append("four\n"),
	}
	m := obs.New()
	tl, err := NewTailer(h.path, TailerConfig{Wait: h.wait, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	got, err := io.ReadAll(tl)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "one\ntwo\nthree\nfour\n" {
		t.Errorf("tailed %q, want all four lines across three rotations", got)
	}
	if tl.Rotations() != 3 || m.Counter("ingest.rotations").Value() != 3 {
		t.Errorf("rotations = %d (counter %d), want 3", tl.Rotations(), m.Counter("ingest.rotations").Value())
	}
}

func TestTailerDrainsOldFileBeforeSwitching(t *testing.T) {
	// Data written before the rotation but not yet read must not be lost:
	// the tailer reads the old handle to EOF before reopening.
	h := newTailHarness(t)
	h.steps = []func(){
		func() { h.append("before-rotate\n")(); h.rotate()(); h.append("after\n")() },
	}
	tl, err := NewTailer(h.path, TailerConfig{Wait: h.wait})
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	got, err := io.ReadAll(tl)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "before-rotate\nafter\n" {
		t.Errorf("tailed %q, want the pre-rotation line then the new file", got)
	}
}

func TestTailerCopytruncateRotation(t *testing.T) {
	h := newTailHarness(t)
	h.steps = []func(){
		h.append("aaaa\n"),
		h.truncate(""),   // copytruncate: same inode, size 0
		h.append("bb\n"), // shorter than what was read: must still be seen
	}
	m := obs.New()
	tl, err := NewTailer(h.path, TailerConfig{Wait: h.wait, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	got, err := io.ReadAll(tl)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aaaa\nbb\n" {
		t.Errorf("tailed %q, want aaaa then bb after copytruncate", got)
	}
	if m.Counter("ingest.truncations").Value() != 1 {
		t.Errorf("truncations counter = %d, want 1", m.Counter("ingest.truncations").Value())
	}
}

func TestTailerSurvivesMidRenameWindow(t *testing.T) {
	// Between rename(old) and create(new) the path does not exist; the
	// tailer must treat that as "wait", not as an error.
	h := newTailHarness(t)
	h.steps = []func(){
		h.append("x\n"),
		func() {
			if err := os.Rename(h.path, h.path+".1"); err != nil {
				t.Fatal(err)
			}
		}, // path now missing
		func() {
			if err := os.WriteFile(h.path, []byte("y\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	tl, err := NewTailer(h.path, TailerConfig{Wait: h.wait})
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	got, err := io.ReadAll(tl)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "x\ny\n" {
		t.Errorf("tailed %q, want x then y across the rename window", got)
	}
}

func TestTailerOneShotStopsAtEOF(t *testing.T) {
	h := newTailHarness(t)
	h.append("only\n")()
	tl, err := NewTailer(h.path, TailerConfig{}) // nil Wait: one-shot
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	got, err := io.ReadAll(tl)
	if err != nil || string(got) != "only\n" {
		t.Fatalf("one-shot read %q, %v", got, err)
	}
}

func TestTailerSeekTo(t *testing.T) {
	h := newTailHarness(t)
	h.append("0123456789\n")()
	tl, err := NewTailer(h.path, TailerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	if err := tl.SeekTo(5); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(tl)
	if err != nil || string(got) != "56789\n" {
		t.Fatalf("after SeekTo(5) read %q, %v", got, err)
	}
	if tl.Offset() != 11 {
		t.Errorf("offset = %d, want 11", tl.Offset())
	}
	if err := tl.SeekTo(999); err == nil || !strings.Contains(err.Error(), "beyond file") {
		t.Errorf("SeekTo past EOF = %v, want a refusal naming the cause", err)
	}
}
