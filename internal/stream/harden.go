package stream

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"

	"logscape/internal/logmodel"
	"logscape/internal/obs"
)

// This file is the hardened ingest path: the pieces between a hostile
// transport and the Ingester. A production log stream arrives truncated,
// corrupted, duplicated, reordered and torn (see internal/chaos for the
// fault model); the layers here guarantee that whatever the transport
// mangles, the mined model stays a pure function of the entries that were
// actually accepted — every rejected line is counted by fault class and,
// optionally, preserved verbatim in a quarantine sink.
//
// Composition order (outermost source first):
//
//	Tailer | os.Stdin | *os.File
//	  → RetryReader      bounded deterministic retry on transient errors
//	  → TornGzipReader   (gz input only) torn-trailer tolerance
//	  → Feeder           line splitting, parsing, quarantine, Ingester

// transientError marks an error as transient: worth a bounded retry rather
// than a stream abort.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err as a transient read error. The chaos injector's burst
// stalls produce these; a real transport adapter can wrap recoverable
// syscall errors the same way.
func Transient(err error) error { return &transientError{err: err} }

// IsTransient reports whether err is (or wraps) a transient read error.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// RetryPolicy bounds how the ingest path reacts to transient read errors.
type RetryPolicy struct {
	// MaxRetries is the number of consecutive transient failures tolerated
	// before the error is surfaced. 0 means no retries.
	MaxRetries int
	// Backoff, when non-nil, is called before retry attempt n (1-based).
	// It is the only place the ingest path may block; tests leave it nil,
	// the CLI installs a capped time.Sleep schedule. Determinism note: the
	// backoff must not influence *what* is read, only when.
	Backoff func(attempt int)
}

// RetryReader absorbs transient errors from an underlying reader with a
// bounded deterministic retry loop. Non-transient errors and io.EOF pass
// through unchanged. The retry counter resets on every successful read, so
// MaxRetries bounds consecutive failures, not lifetime failures — a stream
// with periodic stalls survives indefinitely.
type RetryReader struct {
	r        io.Reader
	policy   RetryPolicy
	attempts int
	mRetries *obs.Counter
}

// NewRetryReader wraps r with the given policy. Metrics may be nil.
func NewRetryReader(r io.Reader, policy RetryPolicy, m *obs.Registry) *RetryReader {
	return &RetryReader{r: r, policy: policy, mRetries: m.Counter("ingest.read_retries")}
}

// Read implements io.Reader.
func (r *RetryReader) Read(p []byte) (int, error) {
	for {
		n, err := r.r.Read(p)
		if n > 0 || err == nil {
			r.attempts = 0
			return n, nil
		}
		if err == io.EOF || !IsTransient(err) {
			return 0, err
		}
		if r.attempts >= r.policy.MaxRetries {
			return 0, err
		}
		r.attempts++
		r.mRetries.Inc()
		if r.policy.Backoff != nil {
			r.policy.Backoff(r.attempts)
		}
	}
}

// TornGzipReader decompresses a gzip stream, treating a torn tail — a
// truncated member, a missing trailer, a corrupt checksum — as a clean end
// of stream instead of an error: the decompressed prefix is delivered, the
// tear is counted (ingest.gz_torn) and reported via Torn(). Rationale: a
// rotated-away or crash-cut .gz segment still carries a usable prefix, and
// the batch-equivalence contract is over accepted entries, not over bytes
// the transport lost.
type TornGzipReader struct {
	src   io.Reader
	zr    *gzip.Reader
	torn  bool
	done  bool
	mTorn *obs.Counter
}

// NewTornGzipReader returns a tolerant gzip reader over src. Metrics may be
// nil. The gzip header is read lazily on first Read, so a stream torn
// inside the header yields zero bytes, not a construction error.
func NewTornGzipReader(src io.Reader, m *obs.Registry) *TornGzipReader {
	return &TornGzipReader{src: src, mTorn: m.Counter("ingest.gz_torn")}
}

// Torn reports whether the stream ended in a tear rather than a clean
// trailer.
func (g *TornGzipReader) Torn() bool { return g.torn }

// Read implements io.Reader.
func (g *TornGzipReader) Read(p []byte) (int, error) {
	if g.done {
		return 0, io.EOF
	}
	if g.zr == nil {
		zr, err := gzip.NewReader(g.src)
		if err != nil {
			if g.tearOK(err) {
				return 0, io.EOF
			}
			return 0, err
		}
		g.zr = zr
	}
	n, err := g.zr.Read(p)
	if err != nil && err != io.EOF {
		if g.tearOK(err) {
			err = io.EOF
		}
		return n, err
	}
	return n, err
}

// tearOK classifies err: true for the error shapes a torn tail produces,
// marking the stream torn and finished. Transient errors from the
// underlying reader are never a tear (they propagate for retry below).
func (g *TornGzipReader) tearOK(err error) bool {
	if IsTransient(err) {
		return false
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, gzip.ErrChecksum) ||
		errors.Is(err, gzip.ErrHeader) || errors.Is(err, io.EOF) {
		g.torn = true
		g.done = true
		g.mTorn.Inc()
		return true
	}
	return false
}

// MaxLineBytes caps one wire-format line. Longer lines are dropped as
// oversized (quarantined, counted) and the remainder of the physical line
// is discarded — a corrupted stream must not make the reader buffer
// unboundedly. The cap matches the batch reader's scanner limit.
const MaxLineBytes = 1 << 22

// FeedStats summarizes one Feeder run, by fault class.
type FeedStats struct {
	// Lines is the number of non-blank lines offered to the parser.
	Lines int
	// Malformed lines failed wire-format parsing (mid-record truncation and
	// byte corruption land here).
	Malformed int
	// Oversized lines exceeded MaxLineBytes and were discarded unparsed.
	Oversized int
	// Late and Corrupt mirror the ingester's verdicts for parsed entries.
	Late, Corrupt int
	// Quarantined is the number of rejected lines written to the sink.
	Quarantined int
}

// FeederConfig parameterizes a Feeder.
type FeederConfig struct {
	// Quarantine, when non-nil, receives one line per rejected input line:
	// "<class>\t<raw line>\n" where class is malformed, oversized, late or
	// corrupt. A sink write error disables the sink (counted as
	// ingest.quarantine_errors) rather than aborting the stream.
	Quarantine io.Writer
	// Metrics, when non-nil, collects the per-fault-class drop counters
	// (ingest.lines_malformed, ingest.lines_oversized, ingest.quarantined,
	// ingest.quarantine_errors; late/corrupt are counted by the ingester as
	// stream.entries_late / stream.entries_corrupt).
	Metrics *obs.Registry
}

// Feeder drains a byte stream into an Ingester: it splits lines itself (no
// bufio.Scanner, so a transient mid-line error can resume where it
// stopped), parses each line, quarantines rejects by fault class, and
// tracks the logical byte offset of the last fully processed line — the
// resume position a Checkpoint records.
type Feeder struct {
	in       *Ingester
	cfg      FeederConfig
	stats    FeedStats
	consumed int64
	// it is the feeder's intern table: ParseEntryBytes in intern mode never
	// touches the input line (the quarantine sink must receive it verbatim)
	// and yields durable entries with repeated Source/Host/User values
	// allocated once per distinct value.
	it      *logmodel.Intern
	classes map[string]*obs.Counter
	qErrors *obs.Counter
	qDead   bool
	// Pending deltas for the ingester's verdict counters: line() feeds the
	// ingester through the internal add (no per-entry atomic updates) and
	// flushCounters folds the deltas in at the end of every drained read
	// chunk — totals match the per-entry Add path exactly, the counters
	// just advance in chunk-sized steps.
	accepted, late, corrupt int64
}

// NewFeeder returns a feeder delivering into in.
func NewFeeder(in *Ingester, cfg FeederConfig) *Feeder {
	return &Feeder{
		in:  in,
		cfg: cfg,
		it:  logmodel.NewIntern(),
		classes: obs.Classes(cfg.Metrics, "ingest.lines_",
			"malformed", "oversized", "quarantined"),
		qErrors: cfg.Metrics.Counter("ingest.quarantine_errors"),
	}
}

// Stats returns the per-class accounting so far.
func (f *Feeder) Stats() FeedStats { return f.stats }

// Consumed returns the logical offset just past the last fully processed
// line: the number of decompressed stream bytes (including each line's
// newline) whose effect — acceptance or rejection — is already reflected in
// the ingester. It advances before an entry is offered to Add, so a
// checkpoint taken inside OnAdvance covers the entry that closed the
// bucket; resuming at Consumed neither replays nor skips any line.
func (f *Feeder) Consumed() int64 { return f.consumed }

// Run drains r to EOF, feeding the ingester. It does not Flush: the caller
// decides whether EOF is end-of-stream or a pause. A read error (after the
// RetryReader below gave up, if one is installed) is returned as-is with
// everything before it already processed.
func (f *Feeder) Run(r io.Reader) error {
	// Read directly into the line buffer's tail: every stream byte is
	// copied once (transport → buf), not twice through a staging chunk.
	// drain compacts the unprocessed remainder to the front, and the
	// oversized-line discard bounds the remainder, so the buffer only grows
	// while a single line longer than its capacity is pending.
	buf := make([]byte, 0, 64<<10)
	skipping := false // inside an oversized line, discarding to newline
	for {
		if len(buf) == cap(buf) {
			nb := make([]byte, len(buf), 2*cap(buf))
			copy(nb, buf)
			buf = nb
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		if n > 0 {
			buf = buf[:len(buf)+n]
			buf = f.drain(buf, &skipping)
			f.flushCounters()
		}
		if err == io.EOF {
			// A final unterminated line is still a line: either the stream
			// legitimately lacks a trailing newline, or the tail was torn
			// mid-record — the parser decides which by accepting or
			// rejecting it.
			if len(buf) > 0 && !skipping {
				f.consumed += int64(len(buf))
				f.line(buf)
			} else if skipping {
				f.consumed += int64(len(buf))
				f.reject(nil, "oversized")
				f.stats.Oversized++
			}
			f.flushCounters()
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// drain processes every complete line in buf, returning the unprocessed
// remainder (compacted to the front).
func (f *Feeder) drain(buf []byte, skipping *bool) []byte {
	start := 0
	for {
		i := bytes.IndexByte(buf[start:], '\n')
		if i < 0 {
			break
		}
		line := buf[start : start+i]
		f.consumed += int64(i + 1)
		if *skipping {
			*skipping = false
			f.reject(nil, "oversized")
			f.stats.Oversized++
		} else {
			f.line(line)
		}
		start += i + 1
	}
	rest := buf[start:]
	if *skipping {
		// Mid-discard of an oversized line: drop everything up to the
		// newline that ends it (handled above once it arrives).
		f.consumed += int64(len(rest))
		rest = rest[:0]
	} else if len(rest) > MaxLineBytes {
		// The pending partial line is already over the cap: discard what we
		// have and keep discarding until its newline arrives.
		f.consumed += int64(len(rest))
		*skipping = true
		rest = rest[:0]
	}
	// Compact so the backing array doesn't grow with the stream.
	n := copy(buf, rest)
	return buf[:n]
}

// line classifies and delivers one complete line.
func (f *Feeder) line(line []byte) {
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	if len(line) == 0 {
		return
	}
	f.stats.Lines++
	if len(line) > MaxLineBytes {
		// Quarantine the class marker only: preserving multi-megabyte junk
		// verbatim would turn the quarantine file into the attack surface.
		f.stats.Oversized++
		f.reject(nil, "oversized")
		return
	}
	var e logmodel.Entry
	if err := logmodel.ParseEntryBytesInto(&e, line, f.it); err != nil {
		f.stats.Malformed++
		f.reject(line, "malformed")
		return
	}
	switch f.in.add(&e) {
	case VerdictAccepted:
		f.accepted++
	case VerdictLate:
		f.late++
		f.stats.Late++
		f.reject(line, "late")
	case VerdictCorrupt:
		f.corrupt++
		f.stats.Corrupt++
		f.reject(line, "corrupt")
	}
}

// flushCounters folds the accumulated verdict deltas into the ingester's
// metric counters.
func (f *Feeder) flushCounters() {
	if f.accepted != 0 {
		f.in.mAccepted.Add(f.accepted)
		f.accepted = 0
	}
	if f.late != 0 {
		f.in.mLate.Add(f.late)
		f.late = 0
	}
	if f.corrupt != 0 {
		f.in.mCorrupt.Add(f.corrupt)
		f.corrupt = 0
	}
}

// reject counts a dropped line by class and writes it to the quarantine
// sink. A nil line (an oversized line whose bytes were already discarded)
// quarantines the class marker alone.
func (f *Feeder) reject(line []byte, class string) {
	if c := f.classes[class]; c != nil {
		c.Inc()
	}
	if f.cfg.Quarantine == nil || f.qDead {
		return
	}
	if _, err := fmt.Fprintf(f.cfg.Quarantine, "%s\t%s\n", class, line); err != nil {
		// Quarantine is best-effort evidence capture: losing it must not
		// take down the tail. Disable the sink and count the failure.
		f.qDead = true
		f.qErrors.Inc()
		return
	}
	f.stats.Quarantined++
	if c := f.classes["quarantined"]; c != nil {
		c.Inc()
	}
}
