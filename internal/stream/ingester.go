package stream

import (
	"slices"

	"logscape/internal/logmodel"
	"logscape/internal/obs"
)

// IngestStats summarizes an ingestion run.
type IngestStats struct {
	// Accepted is the number of entries delivered (or pending delivery) in
	// a bucket.
	Accepted int
	// Late is the number of entries dropped because their bucket had
	// already closed. A centralized logging system delivers almost in
	// order (client-side buffering reorders within seconds, §4.2), so
	// anything older than the open bucket is treated as arrived-too-late
	// rather than reopening history.
	Late int
	// Corrupt is the number of entries dropped for timestamps outside
	// (−MaxAbsTime, MaxAbsTime).
	Corrupt int
	// Buckets is the number of closed buckets delivered.
	Buckets int
}

// Ingester consumes a log stream and turns it into the closed buckets the
// stream miners advance on. The first accepted entry fixes the stream
// origin: the bucket grid is aligned to floor(Time / BucketWidth), so
// bucket boundaries are absolute (independent of when ingestion started)
// and bucket index i spans [origin + i·width, origin + (i+1)·width).
//
// Entries arrive roughly time-ordered; within the open bucket any order is
// accepted (the bucket is stably sorted when it closes), entries for
// already-closed buckets are dropped and counted as Late. An entry beyond
// the open bucket closes it — empty buckets in between are skipped, not
// delivered (the miners retire by index gap), so a long quiet period costs
// O(1), not O(gap).
// freeSlices caps the recycled-slice pool (RecycleBuckets): large enough to
// hold one diurnal cycle's spread of bucket sizes for best-fit reuse, small
// enough that the idle pool after a sparse stretch stays negligible next to
// the window itself.
const freeSlices = 6

type Ingester struct {
	cfg    Config
	miners []Miner
	// OnAdvance, when non-nil, is called after every delivered bucket,
	// once all miners have advanced — the hook cmd/depmine's follow mode
	// prints snapshots from.
	OnAdvance func(b Bucket)

	started bool
	origin  logmodel.Millis // start of bucket 0
	cur     int64           // index of the open bucket
	open    bool            // an open bucket exists (false after Flush)
	pending []logmodel.Entry
	// pendHint predicts the next bucket's size — the capacity hint for its
	// entry slice, so a steady stream pays at most one allocation per bucket
	// instead of a growth series. While the window fills it is the size of
	// the last sealed bucket; once the window is full it is the size of the
	// next bucket's same-slot twin one window ago, which tracks periodic
	// (e.g. diurnal) load curves through both ramps. Sealed bucket slices
	// themselves are only recycled under Config.RecycleBuckets, and only
	// once they retire from the window: ownership transfers to the miners
	// and OnAdvance, which may retain them (see DESIGN.md §12).
	pendHint int
	// free holds retired bucket slices available for reuse (RecycleBuckets).
	free [][]logmodel.Entry

	win   []Bucket // delivered buckets still inside the window
	stats IngestStats

	// Metric instruments, resolved once at construction (nil-safe no-ops
	// without a registry); they mirror IngestStats plus the window gauges.
	mAccepted, mLate, mCorrupt, mBuckets *obs.Counter
	mWinBuckets, mWinEntries             *obs.Gauge
}

// NewIngester returns an ingester feeding the given miners.
func NewIngester(cfg Config, miners ...Miner) *Ingester {
	cfg = cfg.withDefaults()
	m := cfg.Metrics
	return &Ingester{
		cfg:         cfg,
		miners:      miners,
		mAccepted:   m.Counter("stream.entries_accepted"),
		mLate:       m.Counter("stream.entries_late"),
		mCorrupt:    m.Counter("stream.entries_corrupt"),
		mBuckets:    m.Counter("stream.buckets_closed"),
		mWinBuckets: m.Gauge("stream.window_buckets"),
		mWinEntries: m.Gauge("stream.window_entries"),
	}
}

// Verdict is the fate of one entry offered to Add: accepted into a bucket,
// or dropped with a fault class. The hardened ingest path (Feeder) uses it
// to route rejected raw lines to the quarantine sink with a reason.
type Verdict int

// Add verdicts.
const (
	// VerdictAccepted: the entry was placed into the open bucket.
	VerdictAccepted Verdict = iota
	// VerdictLate: the entry's bucket had already closed.
	VerdictLate
	// VerdictCorrupt: the entry's timestamp is outside (−MaxAbsTime, MaxAbsTime).
	VerdictCorrupt
)

// String names the verdict's fault class ("accepted", "late", "corrupt").
func (v Verdict) String() string {
	switch v {
	case VerdictLate:
		return "late"
	case VerdictCorrupt:
		return "corrupt"
	default:
		return "accepted"
	}
}

// Add consumes one entry and reports its fate.
func (in *Ingester) Add(e logmodel.Entry) Verdict {
	v := in.add(&e)
	switch v {
	case VerdictAccepted:
		in.mAccepted.Inc()
	case VerdictLate:
		in.mLate.Inc()
	case VerdictCorrupt:
		in.mCorrupt.Inc()
	}
	return v
}

// add is Add minus the metric-counter updates: the shared core that lets
// AddBatch coalesce the per-entry atomic increments into one Add per
// verdict class. IngestStats are updated here; only counters are deferred.
// The pointer parameter avoids re-copying the 80-byte Entry at every hop of
// the Feeder → Add → add → admit chain; *e is copied exactly once, by the
// append into the open bucket.
func (in *Ingester) add(e *logmodel.Entry) Verdict {
	if e.Time <= -MaxAbsTime || e.Time >= MaxAbsTime {
		in.stats.Corrupt++
		return VerdictCorrupt
	}
	if !in.started {
		in.started = true
		in.origin = floorAlign(e.Time, in.cfg.BucketWidth)
		in.cur = 0
		in.open = true
	}
	idx := int64((e.Time - in.origin) / in.cfg.BucketWidth)
	if e.Time < in.origin {
		idx = -1 // before the origin bucket; always late
	}
	switch {
	case idx < in.cur, idx == in.cur && !in.open:
		in.stats.Late++
		return VerdictLate
	case idx > in.cur:
		// Seal the closing bucket, admit the advancing entry into the new
		// bucket, and only then deliver: a checkpoint taken inside OnAdvance
		// must already cover this entry, because Feeder.Consumed — the offset
		// the checkpoint records — has already advanced past its line.
		sealed := in.seal()
		in.cur = idx
		in.open = true
		in.admit(e)
		in.deliver(sealed)
		return VerdictAccepted
	}
	in.admit(e)
	return VerdictAccepted
}

// admit places an accepted entry into the open bucket, sizing a fresh
// bucket's slice from the previous bucket's population.
func (in *Ingester) admit(e *logmodel.Entry) {
	if in.pending == nil {
		// Best-fit from the recycled pool: the smallest slice that can hold a
		// bucket of the hinted size. An undersized slice is never used — a
		// mid-bucket growth realloc costs an allocation plus a copy plus
		// clearing twice the capacity, so allocating fresh at the right size
		// is strictly cheaper. If nothing fits, the smallest pooled slice is
		// evicted so larger retiring buckets can enter the pool.
		best := -1
		for i := range in.free {
			if c := cap(in.free[i]); c >= in.pendHint &&
				(best < 0 || c < cap(in.free[best])) {
				best = i
			}
		}
		if best >= 0 {
			last := len(in.free) - 1
			in.pending = in.free[best]
			in.free[best] = in.free[last]
			in.free[last] = nil
			in.free = in.free[:last]
		} else {
			if len(in.free) == freeSlices {
				sm := 0
				for i := range in.free {
					if cap(in.free[i]) < cap(in.free[sm]) {
						sm = i
					}
				}
				last := len(in.free) - 1
				in.free[sm] = in.free[last]
				in.free[last] = nil
				in.free = in.free[:last]
			}
			if in.pendHint > 0 {
				in.pending = make([]logmodel.Entry, 0, in.pendHint+in.pendHint/8)
			}
		}
	}
	in.pending = append(in.pending, *e)
	in.stats.Accepted++
}

// AddAll consumes all entries of es.
func (in *Ingester) AddAll(es []logmodel.Entry) {
	in.AddBatch(es)
}

// AddBatch consumes all entries of es and returns how many were accepted.
// Bucket assignment, delivery order, statistics and final counter values
// are identical to calling Add once per entry; the difference is purely
// mechanical — the common case (the entry lands in the open bucket) takes
// an inlined fast path, and the per-entry atomic metric increments are
// coalesced into one Add per verdict class.
func (in *Ingester) AddBatch(es []logmodel.Entry) int {
	var accepted, late, corrupt int64
	for i := range es {
		e := &es[i]
		if in.open && e.Time >= in.origin &&
			e.Time > -MaxAbsTime && e.Time < MaxAbsTime &&
			int64((e.Time-in.origin)/in.cfg.BucketWidth) == in.cur {
			in.admit(e)
			accepted++
			continue
		}
		switch in.add(e) {
		case VerdictAccepted:
			accepted++
		case VerdictLate:
			late++
		case VerdictCorrupt:
			corrupt++
		}
	}
	in.mAccepted.Add(accepted)
	in.mLate.Add(late)
	in.mCorrupt.Add(corrupt)
	return int(accepted)
}

// Flush closes and delivers the open bucket without waiting for an entry
// beyond it — the end-of-stream (or end-of-batch) signal. Further entries
// for the flushed bucket are late.
func (in *Ingester) Flush() {
	in.close()
}

// close seals and delivers the open bucket, if any.
func (in *Ingester) close() {
	in.deliver(in.seal())
}

// seal closes the open bucket — sorting its entries, appending it to the
// window, updating stats and gauges — without delivering it to miners yet.
// Returns nil if no bucket was open.
func (in *Ingester) seal() *Bucket {
	if !in.open {
		return nil
	}
	in.open = false
	// A near-in-order stream usually delivers each bucket already sorted;
	// an O(n) check then skips the O(n log n) stable sort (which, being
	// stable, would also be a no-op — checking first just makes the common
	// case cheap). The generic sort moves entries with ordinary typed
	// copies, unlike sort.SliceStable's reflection-based swaps.
	if !timeOrdered(in.pending) {
		slices.SortStableFunc(in.pending, func(a, b logmodel.Entry) int {
			switch {
			case a.Time < b.Time:
				return -1
			case a.Time > b.Time:
				return 1
			}
			return 0
		})
	}
	start := in.origin + logmodel.Millis(in.cur)*in.cfg.BucketWidth
	b := Bucket{
		Index:   in.cur,
		Range:   logmodel.TimeRange{Start: start, End: start + in.cfg.BucketWidth},
		Entries: in.pending,
	}
	in.pendHint = len(in.pending)
	in.pending = nil
	in.stats.Buckets++

	in.win = append(in.win, b)
	lo := b.Index - int64(in.cfg.WindowBuckets) + 1
	drop := 0
	for drop < len(in.win) && in.win[drop].Index < lo {
		drop++
	}
	if in.cfg.RecycleBuckets {
		// Buckets leaving the window surrender their entry slices as
		// scratch for future buckets. A new bucket consumes one slice, so
		// a small cap bounds the idle pool after a sparse stretch retires
		// several buckets at once.
		for i := 0; i < drop && len(in.free) < freeSlices; i++ {
			in.free = append(in.free, in.win[i].Entries[:0])
		}
	}
	in.win = in.win[drop:]
	if len(in.win) == in.cfg.WindowBuckets {
		// With a full window, the oldest in-window bucket is the next
		// bucket's same-slot twin one window ago — on periodic streams it
		// predicts ramp-ups the just-closed bucket cannot. Take the max of
		// both predictors: with best-fit recycling an over-prediction just
		// selects a roomier pooled slice, while an under-prediction costs a
		// mid-bucket growth realloc.
		if n := len(in.win[0].Entries); n > in.pendHint {
			in.pendHint = n
		}
	}

	in.mBuckets.Inc()
	in.mWinBuckets.Set(int64(len(in.win)))
	winEntries := int64(0)
	for i := range in.win {
		winEntries += int64(len(in.win[i].Entries))
	}
	in.mWinEntries.Set(winEntries)
	return &b
}

// deliver pushes a sealed bucket through the miners and OnAdvance.
func (in *Ingester) deliver(b *Bucket) {
	if b == nil {
		return
	}
	for _, m := range in.miners {
		m.Advance(*b)
	}
	if in.OnAdvance != nil {
		in.OnAdvance(*b)
	}
}

// Stats returns the ingestion statistics so far.
func (in *Ingester) Stats() IngestStats { return in.stats }

// WindowRange returns the time extent of the current window: the last
// WindowBuckets bucket ranges ending at the last delivered bucket (the
// open bucket is not part of the window). The zero range before any
// delivery.
func (in *Ingester) WindowRange() logmodel.TimeRange {
	if len(in.win) == 0 {
		return logmodel.TimeRange{}
	}
	last := in.win[len(in.win)-1]
	lo := last.Index - int64(in.cfg.WindowBuckets) + 1
	if lo < 0 {
		lo = 0
	}
	return logmodel.TimeRange{
		Start: in.origin + logmodel.Millis(lo)*in.cfg.BucketWidth,
		End:   last.Range.End,
	}
}

// WindowStore builds a sorted store holding exactly the window's entries —
// the reference corpus the miners' Snapshots must match batch mining over.
func (in *Ingester) WindowStore() *logmodel.Store {
	n := 0
	for i := range in.win {
		n += len(in.win[i].Entries)
	}
	s := logmodel.NewStore(n)
	for i := range in.win {
		s.AppendAll(in.win[i].Entries)
	}
	return s
}

// timeOrdered reports whether es is non-decreasing in time.
func timeOrdered(es []logmodel.Entry) bool {
	for i := 1; i < len(es); i++ {
		if es[i].Time < es[i-1].Time {
			return false
		}
	}
	return true
}

// floorAlign rounds t down to a multiple of width (toward −∞, also for
// negative t, so the bucket grid is consistent across the epoch).
func floorAlign(t, width logmodel.Millis) logmodel.Millis {
	q := t / width
	if t%width != 0 && t < 0 {
		q--
	}
	return q * width
}
