package stream

import (
	"sort"

	"logscape/internal/logmodel"
	"logscape/internal/obs"
)

// IngestStats summarizes an ingestion run.
type IngestStats struct {
	// Accepted is the number of entries delivered (or pending delivery) in
	// a bucket.
	Accepted int
	// Late is the number of entries dropped because their bucket had
	// already closed. A centralized logging system delivers almost in
	// order (client-side buffering reorders within seconds, §4.2), so
	// anything older than the open bucket is treated as arrived-too-late
	// rather than reopening history.
	Late int
	// Corrupt is the number of entries dropped for timestamps outside
	// (−MaxAbsTime, MaxAbsTime).
	Corrupt int
	// Buckets is the number of closed buckets delivered.
	Buckets int
}

// Ingester consumes a log stream and turns it into the closed buckets the
// stream miners advance on. The first accepted entry fixes the stream
// origin: the bucket grid is aligned to floor(Time / BucketWidth), so
// bucket boundaries are absolute (independent of when ingestion started)
// and bucket index i spans [origin + i·width, origin + (i+1)·width).
//
// Entries arrive roughly time-ordered; within the open bucket any order is
// accepted (the bucket is stably sorted when it closes), entries for
// already-closed buckets are dropped and counted as Late. An entry beyond
// the open bucket closes it — empty buckets in between are skipped, not
// delivered (the miners retire by index gap), so a long quiet period costs
// O(1), not O(gap).
type Ingester struct {
	cfg    Config
	miners []Miner
	// OnAdvance, when non-nil, is called after every delivered bucket,
	// once all miners have advanced — the hook cmd/depmine's follow mode
	// prints snapshots from.
	OnAdvance func(b Bucket)

	started bool
	origin  logmodel.Millis // start of bucket 0
	cur     int64           // index of the open bucket
	open    bool            // an open bucket exists (false after Flush)
	pending []logmodel.Entry

	win   []Bucket // delivered buckets still inside the window
	stats IngestStats

	// Metric instruments, resolved once at construction (nil-safe no-ops
	// without a registry); they mirror IngestStats plus the window gauges.
	mAccepted, mLate, mCorrupt, mBuckets *obs.Counter
	mWinBuckets, mWinEntries             *obs.Gauge
}

// NewIngester returns an ingester feeding the given miners.
func NewIngester(cfg Config, miners ...Miner) *Ingester {
	cfg = cfg.withDefaults()
	m := cfg.Metrics
	return &Ingester{
		cfg:         cfg,
		miners:      miners,
		mAccepted:   m.Counter("stream.entries_accepted"),
		mLate:       m.Counter("stream.entries_late"),
		mCorrupt:    m.Counter("stream.entries_corrupt"),
		mBuckets:    m.Counter("stream.buckets_closed"),
		mWinBuckets: m.Gauge("stream.window_buckets"),
		mWinEntries: m.Gauge("stream.window_entries"),
	}
}

// Verdict is the fate of one entry offered to Add: accepted into a bucket,
// or dropped with a fault class. The hardened ingest path (Feeder) uses it
// to route rejected raw lines to the quarantine sink with a reason.
type Verdict int

// Add verdicts.
const (
	// VerdictAccepted: the entry was placed into the open bucket.
	VerdictAccepted Verdict = iota
	// VerdictLate: the entry's bucket had already closed.
	VerdictLate
	// VerdictCorrupt: the entry's timestamp is outside (−MaxAbsTime, MaxAbsTime).
	VerdictCorrupt
)

// String names the verdict's fault class ("accepted", "late", "corrupt").
func (v Verdict) String() string {
	switch v {
	case VerdictLate:
		return "late"
	case VerdictCorrupt:
		return "corrupt"
	default:
		return "accepted"
	}
}

// Add consumes one entry and reports its fate.
func (in *Ingester) Add(e logmodel.Entry) Verdict {
	if e.Time <= -MaxAbsTime || e.Time >= MaxAbsTime {
		in.stats.Corrupt++
		in.mCorrupt.Inc()
		return VerdictCorrupt
	}
	if !in.started {
		in.started = true
		in.origin = floorAlign(e.Time, in.cfg.BucketWidth)
		in.cur = 0
		in.open = true
	}
	idx := int64((e.Time - in.origin) / in.cfg.BucketWidth)
	if e.Time < in.origin {
		idx = -1 // before the origin bucket; always late
	}
	switch {
	case idx < in.cur, idx == in.cur && !in.open:
		in.stats.Late++
		in.mLate.Inc()
		return VerdictLate
	case idx > in.cur:
		// Seal the closing bucket, admit the advancing entry into the new
		// bucket, and only then deliver: a checkpoint taken inside OnAdvance
		// must already cover this entry, because Feeder.Consumed — the offset
		// the checkpoint records — has already advanced past its line.
		sealed := in.seal()
		in.cur = idx
		in.open = true
		in.pending = append(in.pending, e)
		in.stats.Accepted++
		in.mAccepted.Inc()
		in.deliver(sealed)
		return VerdictAccepted
	}
	in.pending = append(in.pending, e)
	in.stats.Accepted++
	in.mAccepted.Inc()
	return VerdictAccepted
}

// AddAll consumes all entries of es.
func (in *Ingester) AddAll(es []logmodel.Entry) {
	for _, e := range es {
		in.Add(e)
	}
}

// Flush closes and delivers the open bucket without waiting for an entry
// beyond it — the end-of-stream (or end-of-batch) signal. Further entries
// for the flushed bucket are late.
func (in *Ingester) Flush() {
	in.close()
}

// close seals and delivers the open bucket, if any.
func (in *Ingester) close() {
	in.deliver(in.seal())
}

// seal closes the open bucket — sorting its entries, appending it to the
// window, updating stats and gauges — without delivering it to miners yet.
// Returns nil if no bucket was open.
func (in *Ingester) seal() *Bucket {
	if !in.open {
		return nil
	}
	in.open = false
	sort.SliceStable(in.pending, func(i, j int) bool {
		return in.pending[i].Time < in.pending[j].Time
	})
	start := in.origin + logmodel.Millis(in.cur)*in.cfg.BucketWidth
	b := Bucket{
		Index:   in.cur,
		Range:   logmodel.TimeRange{Start: start, End: start + in.cfg.BucketWidth},
		Entries: in.pending,
	}
	in.pending = nil
	in.stats.Buckets++

	in.win = append(in.win, b)
	lo := b.Index - int64(in.cfg.WindowBuckets) + 1
	drop := 0
	for drop < len(in.win) && in.win[drop].Index < lo {
		drop++
	}
	in.win = in.win[drop:]

	in.mBuckets.Inc()
	in.mWinBuckets.Set(int64(len(in.win)))
	winEntries := int64(0)
	for i := range in.win {
		winEntries += int64(len(in.win[i].Entries))
	}
	in.mWinEntries.Set(winEntries)
	return &b
}

// deliver pushes a sealed bucket through the miners and OnAdvance.
func (in *Ingester) deliver(b *Bucket) {
	if b == nil {
		return
	}
	for _, m := range in.miners {
		m.Advance(*b)
	}
	if in.OnAdvance != nil {
		in.OnAdvance(*b)
	}
}

// Stats returns the ingestion statistics so far.
func (in *Ingester) Stats() IngestStats { return in.stats }

// WindowRange returns the time extent of the current window: the last
// WindowBuckets bucket ranges ending at the last delivered bucket (the
// open bucket is not part of the window). The zero range before any
// delivery.
func (in *Ingester) WindowRange() logmodel.TimeRange {
	if len(in.win) == 0 {
		return logmodel.TimeRange{}
	}
	last := in.win[len(in.win)-1]
	lo := last.Index - int64(in.cfg.WindowBuckets) + 1
	if lo < 0 {
		lo = 0
	}
	return logmodel.TimeRange{
		Start: in.origin + logmodel.Millis(lo)*in.cfg.BucketWidth,
		End:   last.Range.End,
	}
}

// WindowStore builds a sorted store holding exactly the window's entries —
// the reference corpus the miners' Snapshots must match batch mining over.
func (in *Ingester) WindowStore() *logmodel.Store {
	n := 0
	for i := range in.win {
		n += len(in.win[i].Entries)
	}
	s := logmodel.NewStore(n)
	for i := range in.win {
		s.AppendAll(in.win[i].Entries)
	}
	return s
}

// floorAlign rounds t down to a multiple of width (toward −∞, also for
// negative t, so the bucket grid is consistent across the epoch).
func floorAlign(t, width logmodel.Millis) logmodel.Millis {
	q := t / width
	if t%width != 0 && t < 0 {
		q--
	}
	return q * width
}
