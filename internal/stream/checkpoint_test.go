package stream

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"logscape/internal/core"
	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
)

// ckptMiners builds a fresh miner stack for checkpoint tests.
func ckptMiners(wcfg Config) []Miner {
	l1cfg := l1.DefaultConfig()
	l1cfg.MinLogs = 2
	l1cfg.SampleSize = 8
	return []Miner{
		NewL1(wcfg, l1cfg),
		NewL2(wcfg, sessions.Config{MaxGap: 500, MinEntries: 2, MinSources: 2},
			l2.Config{MinJoint: 1, Alpha: 0.05, Timeout: 500, Measure: l2.MeasureG2}),
	}
}

// snapshots serializes every miner's snapshot.
func snapshots(t *testing.T, miners []Miner) [][]byte {
	t.Helper()
	out := make([][]byte, len(miners))
	for i, m := range miners {
		var buf bytes.Buffer
		if err := core.WriteModel(&buf, m.Snapshot()); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.Bytes()
	}
	return out
}

// ckptEntries is a deterministic multi-bucket, multi-user entry sequence.
func ckptEntries() []logmodel.Entry {
	var es []logmodel.Entry
	srcs := []string{"A", "B", "C"}
	users := []string{"u1", "u2", ""}
	for i := 0; i < 120; i++ {
		es = append(es, logmodel.Entry{
			Time:    logmodel.Millis(1000 + i*137),
			Source:  srcs[i%len(srcs)],
			Host:    "h",
			User:    users[i%len(users)],
			Message: "step",
		})
	}
	return es
}

func TestCheckpointRestoreContinuesIdentically(t *testing.T) {
	wcfg := Config{BucketWidth: 1000, WindowBuckets: 4}
	es := ckptEntries()

	// Reference: one uninterrupted run.
	refMiners := ckptMiners(wcfg)
	ref := NewIngester(wcfg, refMiners...)
	ref.AddAll(es)
	ref.Flush()

	// Interrupted run: checkpoint at the 3rd closed bucket, drop everything,
	// restore, continue with the remaining entries.
	preMiners := ckptMiners(wcfg)
	pre := NewIngester(wcfg, preMiners...)
	var cp *Checkpoint
	closed := 0
	pre.OnAdvance = func(Bucket) {
		closed++
		if closed == 3 {
			cp = pre.Checkpoint(0, 0)
		}
	}
	cut := -1
	for i, e := range es {
		pre.Add(e)
		if cp != nil {
			cut = i
			break
		}
	}
	if cp == nil {
		t.Fatal("checkpoint never taken; entry sequence too short")
	}

	postMiners := ckptMiners(wcfg)
	resumed, err := cp.Restore(wcfg, postMiners...)
	if err != nil {
		t.Fatal(err)
	}
	// The entry that closed bucket 3 is in the checkpoint's pending set;
	// resume strictly after it.
	resumed.AddAll(es[cut+1:])
	resumed.Flush()

	if got, want := snapshots(t, postMiners), snapshots(t, refMiners); !reflect.DeepEqual(got, want) {
		t.Errorf("resumed snapshots diverge from the uninterrupted run:\n got %s\nwant %s", got, want)
	}
	if got, want := resumed.Stats(), ref.Stats(); got != want {
		t.Errorf("resumed stats = %+v, want %+v", got, want)
	}
	var a, b bytes.Buffer
	if err := logmodel.WriteAll(&a, resumed.WindowStore()); err != nil {
		t.Fatal(err)
	}
	if err := logmodel.WriteAll(&b, ref.WindowStore()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("resumed window store differs from the uninterrupted run")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	wcfg := Config{BucketWidth: 1000, WindowBuckets: 4}
	in := NewIngester(wcfg)
	// A message that is not valid UTF-8 must survive the file round trip
	// (encoding/json would mangle it in a plain string field).
	raw := string([]byte{0xff, 0xfe, 'x'})
	in.Add(logmodel.Entry{Time: 1500, Source: "A", Host: "h", Message: raw})
	in.Add(logmodel.Entry{Time: 2500, Source: "B", Host: "h", Message: "closes bucket"})

	path := filepath.Join(t.TempDir(), "follow.ckpt")
	if err := WriteCheckpointFile(path, in.Checkpoint(42, 1)); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Offset != 42 || cp.Rotations != 1 {
		t.Errorf("offset/rotations = %d/%d, want 42/1", cp.Offset, cp.Rotations)
	}
	restored, err := cp.Restore(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	win := restored.WindowStore().Entries()
	if len(win) != 1 || win[0].Message != raw {
		t.Errorf("restored window = %+v; non-UTF-8 message must round-trip exactly", win)
	}
	if len(restored.pending) != 1 || restored.pending[0].Message != "closes bucket" {
		t.Errorf("restored pending = %+v, want the open-bucket entry", restored.pending)
	}

	if cp2, err := ReadCheckpointFile(filepath.Join(t.TempDir(), "absent")); cp2 != nil || err != nil {
		t.Errorf("missing checkpoint = %v, %v; want nil, nil", cp2, err)
	}
}

func TestCheckpointRestoreValidation(t *testing.T) {
	wcfg := Config{BucketWidth: 1000, WindowBuckets: 4}
	in := NewIngester(wcfg)
	in.Add(logmodel.Entry{Time: 1500, Source: "A", Host: "h"})
	cp := in.Checkpoint(0, 0)

	if _, err := cp.Restore(Config{BucketWidth: 2000, WindowBuckets: 4}); err == nil ||
		!strings.Contains(err.Error(), "geometry") {
		t.Errorf("geometry mismatch = %v, want refusal", err)
	}
	bad := *cp
	bad.Version = 99
	if _, err := bad.Restore(wcfg); err == nil {
		t.Error("version mismatch accepted")
	}
	bad = *cp
	bad.Pending = [][]byte{[]byte("not a wire line")}
	if _, err := bad.Restore(wcfg); err == nil {
		t.Error("corrupt pending line accepted")
	}
	bad = *cp
	bad.Buckets = []CheckpointBucket{{Index: 5}, {Index: 3}}
	if _, err := bad.Restore(wcfg); err == nil {
		t.Error("out-of-order buckets accepted")
	}
}

// TestCheckpointLight pins the store-backed checkpoint form: no window
// buckets inside, the WindowInStore marker set, pending entries still
// carried — and a refusal from Restore until a hydrator has put the
// window back.
func TestCheckpointLight(t *testing.T) {
	wcfg := Config{BucketWidth: 1000, WindowBuckets: 4}
	in := NewIngester(wcfg)
	in.Add(logmodel.Entry{Time: 1500, Source: "A", Host: "h", Message: "windowed"})
	in.Add(logmodel.Entry{Time: 2500, Source: "B", Host: "h", Message: "pending"})

	full := in.Checkpoint(42, 0)
	light := in.CheckpointLight(42, 0)
	if !light.WindowInStore {
		t.Fatal("light checkpoint not marked WindowInStore")
	}
	if light.Buckets != nil {
		t.Fatalf("light checkpoint carries %d window buckets", len(light.Buckets))
	}
	if len(light.Pending) != 1 {
		t.Fatalf("light checkpoint pending = %d entries, want 1", len(light.Pending))
	}
	if light.Cur != full.Cur || light.Open != full.Open || light.Origin != full.Origin ||
		light.Stats != full.Stats || light.Offset != full.Offset {
		t.Errorf("light checkpoint cursor state diverges from the full form:\nlight %+v\nfull  %+v", light, full)
	}

	if _, err := light.Restore(wcfg); err == nil ||
		!strings.Contains(err.Error(), "hydrate") {
		t.Errorf("un-hydrated light checkpoint restore = %v, want refusal", err)
	}

	// Hand-hydrating with the full checkpoint's buckets makes it restorable
	// and equivalent.
	light.Buckets = full.Buckets
	light.WindowInStore = false
	a, err := light.Restore(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := full.Restore(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	var wa, wb bytes.Buffer
	if err := logmodel.WriteAll(&wa, a.WindowStore()); err != nil {
		t.Fatal(err)
	}
	if err := logmodel.WriteAll(&wb, b.WindowStore()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wa.Bytes(), wb.Bytes()) {
		t.Error("hydrated light restore differs from the full restore")
	}
}

func TestCheckpointBeforeFirstEntry(t *testing.T) {
	wcfg := Config{BucketWidth: 1000, WindowBuckets: 4}
	in := NewIngester(wcfg)
	in.Add(logmodel.Entry{Time: MaxAbsTime, Source: "A", Host: "h"}) // corrupt, not accepted
	cp := in.Checkpoint(7, 0)
	restored, err := cp.Restore(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if restored.started {
		t.Error("restored ingester claims a fixed origin before any accepted entry")
	}
	if restored.Stats().Corrupt != 1 {
		t.Errorf("stats = %+v, want the corrupt drop carried over", restored.Stats())
	}
	restored.Add(logmodel.Entry{Time: 1500, Source: "A", Host: "h"})
	if !restored.started {
		t.Error("restored ingester did not start on the first accepted entry")
	}
}
