package stream

import (
	"sort"

	"logscape/internal/core"
	"logscape/internal/core/l3"
	"logscape/internal/drift"
	"logscape/internal/logmodel"
)

// L3Stream is the incremental L3 miner: the citation scan has no
// cross-entry state, so the window state is simply one evidence map per
// non-empty bucket. Advance scans only the new bucket (through the shared
// Aho–Corasick automaton of the wrapped batch miner); Snapshot folds the
// ≤ W per-bucket maps in time order with l3.MergeEvidence, which
// reproduces a sequential scan of the window exactly and never mutates the
// cached maps.
type L3Stream struct {
	win   window
	miner *l3.Miner
	evs   []indexedEvidence
	// trackDrift enables per-bucket drift features (see drift.go).
	trackDrift bool
	lastActive []string
	lastDelays map[string][]float64
}

type indexedEvidence struct {
	index    int64
	evidence map[core.AppServicePair]*l3.Evidence
}

// NewL3 builds a streaming L3 miner around a batch miner (directory
// automaton and configuration).
func NewL3(wcfg Config, miner *l3.Miner) *L3Stream {
	return &L3Stream{win: window{cfg: wcfg.withDefaults()}, miner: miner}
}

// Advance scans the bucket and retires buckets that left the window.
func (m *L3Stream) Advance(b Bucket) {
	m.win.observe(b)
	ev := m.miner.Scan(b.Entries)
	if len(ev) > 0 {
		m.evs = append(m.evs, indexedEvidence{index: b.Index, evidence: ev})
	}
	if m.trackDrift {
		m.lastActive = m.lastActive[:0]
		for p, e := range ev {
			if e.Count > 0 {
				m.lastActive = append(m.lastActive, drift.DepKey(p.App, p.Group))
			}
		}
		sort.Strings(m.lastActive)
		m.lastDelays = make(map[string][]float64)
		for p, ts := range m.miner.ScanTimes(b.Entries) {
			if len(ts) < 2 {
				continue
			}
			gaps := make([]float64, 0, len(ts)-1)
			for i := 1; i < len(ts); i++ {
				gaps = append(gaps, float64(ts[i]-ts[i-1])) //lint:allow maporder per-key gaps follow the scan's time order, not the map's
			}
			m.lastDelays[drift.DepKey(p.App, p.Group)] = gaps
		}
	}
	lo := m.win.lo()
	drop := 0
	for drop < len(m.evs) && m.evs[drop].index < lo {
		drop++
	}
	m.evs = m.evs[drop:]
}

// Snapshot folds the per-bucket evidence into the window's L3 model
// document.
func (m *L3Stream) Snapshot() core.ModelDocument {
	res := &l3.Result{Evidence: make(map[core.AppServicePair]*l3.Evidence), Config: m.miner.Config()}
	for i := range m.evs {
		l3.MergeEvidence(res.Evidence, m.evs[i].evidence)
	}
	return core.NewDepDocument("l3", res.Dependencies(), nil)
}

// Batch is the reference: batch-mine the store over the window range with
// the same miner.
func (m *L3Stream) Batch(store *logmodel.Store, r logmodel.TimeRange) core.ModelDocument {
	res := m.miner.Mine(store, r)
	return core.NewDepDocument("l3", res.Dependencies(), nil)
}
