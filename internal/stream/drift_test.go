package stream

import (
	"reflect"
	"testing"

	"logscape/internal/core/l1"
	"logscape/internal/core/l2"
	"logscape/internal/core/l3"
	"logscape/internal/directory"
	"logscape/internal/logmodel"
	"logscape/internal/sessions"
)

func driftDir() *directory.Directory {
	return &directory.Directory{Version: 1, Groups: []directory.Group{
		{ID: "DPIREG", RootURL: "http://reg.hug/reg"},
	}}
}

func driftEntry(t logmodel.Millis, src, user, msg string) logmodel.Entry {
	return logmodel.Entry{Time: t, Source: src, Host: "h", User: user,
		Severity: logmodel.SevInfo, Message: msg}
}

func TestL3DriftFeatures(t *testing.T) {
	wcfg := Config{BucketWidth: logmodel.MillisPerSecond, WindowBuckets: 4}
	m := NewL3(wcfg, l3.NewMiner(driftDir(), l3.DefaultConfig()))
	m.TrackDrift(true)
	b := Bucket{Index: 0, Range: logmodel.TimeRange{Start: 0, End: 1000}, Entries: []logmodel.Entry{
		driftEntry(100, "A", "u", "call DPIREG start"),
		driftEntry(400, "A", "u", "call DPIREG again"),
		driftEntry(900, "A", "u", "call DPIREG done"),
		driftEntry(950, "B", "u", "nothing cited"),
	}}
	m.Advance(b)
	f := m.DriftFeatures()
	if !reflect.DeepEqual(f.Active, []string{"A->DPIREG"}) {
		t.Fatalf("active = %v", f.Active)
	}
	if !reflect.DeepEqual(f.Delays["A->DPIREG"], []float64{300, 500}) {
		t.Fatalf("delays = %v", f.Delays)
	}
	// An empty bucket clears the features.
	m.Advance(Bucket{Index: 1, Range: logmodel.TimeRange{Start: 1000, End: 2000}})
	f = m.DriftFeatures()
	if len(f.Active) != 0 || len(f.Delays) != 0 {
		t.Fatalf("features after empty bucket: %+v", f)
	}
}

func TestL3DriftFeaturesOffByDefault(t *testing.T) {
	wcfg := Config{BucketWidth: logmodel.MillisPerSecond, WindowBuckets: 4}
	m := NewL3(wcfg, l3.NewMiner(driftDir(), l3.DefaultConfig()))
	m.Advance(Bucket{Index: 0, Range: logmodel.TimeRange{Start: 0, End: 1000},
		Entries: []logmodel.Entry{driftEntry(100, "A", "u", "call DPIREG start")}})
	f := m.DriftFeatures()
	if len(f.Active) != 0 || len(f.Delays) != 0 {
		t.Fatalf("features tracked while disabled: %+v", f)
	}
}

func TestL2DriftFeatures(t *testing.T) {
	wcfg := Config{BucketWidth: logmodel.MillisPerSecond, WindowBuckets: 4}
	m := NewL2(wcfg, sessions.Config{MaxGap: 500, MinEntries: 2, MinSources: 2},
		l2.Config{MinJoint: 1, Alpha: 0.05, Timeout: 500, Measure: l2.MeasureG2})
	m.TrackDrift(true)
	m.Advance(Bucket{Index: 0, Range: logmodel.TimeRange{Start: 0, End: 1000}, Entries: []logmodel.Entry{
		driftEntry(100, "A", "u1", "open"),
		driftEntry(200, "B", "u1", "answer"),
		driftEntry(300, "A", "u1", "close"),
	}})
	f := m.DriftFeatures()
	if !reflect.DeepEqual(f.Active, []string{"A--B"}) {
		t.Fatalf("active = %v", f.Active)
	}
	if len(f.Scores) == 0 {
		t.Fatal("no scores")
	}
	if _, ok := f.Scores["A--B"]; !ok {
		t.Fatalf("scores lack A--B: %v", f.Scores)
	}
}

func TestL1DriftFeaturesWorkerIndependent(t *testing.T) {
	entries := []logmodel.Entry{
		driftEntry(10, "A", "", "x"), driftEntry(12, "B", "", "x"),
		driftEntry(300, "A", "", "x"), driftEntry(302, "B", "", "x"),
		driftEntry(600, "A", "", "x"), driftEntry(602, "B", "", "x"),
		driftEntry(800, "C", "", "x"),
	}
	features := func(workers int) DriftFeatures {
		wcfg := Config{BucketWidth: logmodel.MillisPerSecond, WindowBuckets: 4}
		cfg := l1.DefaultConfig()
		cfg.MinLogs = 2
		cfg.SampleSize = 8
		cfg.Workers = workers
		m := NewL1(wcfg, cfg)
		m.TrackDrift(true)
		m.Advance(Bucket{Index: 0, Range: logmodel.TimeRange{Start: 0, End: 1000}, Entries: entries})
		return m.DriftFeatures()
	}
	a, b := features(1), features(4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("features differ by worker count:\n%+v\n%+v", a, b)
	}
	for i, k := range a.Active {
		if i > 0 && k <= a.Active[i-1] {
			t.Fatalf("active keys not sorted: %v", a.Active)
		}
	}
}
