package stream

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"strings"
	"testing"

	"logscape/internal/logmodel"
	"logscape/internal/obs"
)

// flakyReader yields scripted results: each step is either data or an error.
type flakyStep struct {
	data []byte
	err  error
}

type flakyReader struct {
	steps []flakyStep
	i     int
}

func (r *flakyReader) Read(p []byte) (int, error) {
	if r.i >= len(r.steps) {
		return 0, io.EOF
	}
	s := r.steps[r.i]
	r.i++
	if s.err != nil {
		return 0, s.err
	}
	return copy(p, s.data), nil
}

func TestRetryReaderAbsorbsBoundedTransients(t *testing.T) {
	src := &flakyReader{steps: []flakyStep{
		{data: []byte("a")},
		{err: Transient(errors.New("stall 1"))},
		{err: Transient(errors.New("stall 2"))},
		{data: []byte("b")},
		{err: Transient(errors.New("stall 3"))}, // counter reset by "b": allowed again
		{data: []byte("c")},
	}}
	m := obs.New()
	rr := NewRetryReader(src, RetryPolicy{MaxRetries: 2}, m)
	got, err := io.ReadAll(rr)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "abc" {
		t.Errorf("read %q, want abc", got)
	}
	if v := m.Counter("ingest.read_retries").Value(); v != 3 {
		t.Errorf("read_retries = %d, want 3", v)
	}
}

func TestRetryReaderGivesUpAfterMaxConsecutive(t *testing.T) {
	src := &flakyReader{steps: []flakyStep{
		{err: Transient(errors.New("s1"))},
		{err: Transient(errors.New("s2"))},
		{err: Transient(errors.New("s3"))},
	}}
	var attempts []int
	rr := NewRetryReader(src, RetryPolicy{MaxRetries: 2, Backoff: func(n int) { attempts = append(attempts, n) }}, nil)
	_, err := io.ReadAll(rr)
	if err == nil || !IsTransient(err) {
		t.Fatalf("err = %v, want the surfaced transient error", err)
	}
	if len(attempts) != 2 || attempts[0] != 1 || attempts[1] != 2 {
		t.Errorf("backoff attempts = %v, want [1 2]", attempts)
	}
}

func TestRetryReaderPassesPersistentErrors(t *testing.T) {
	boom := errors.New("disk gone")
	src := &flakyReader{steps: []flakyStep{{err: boom}}}
	rr := NewRetryReader(src, RetryPolicy{MaxRetries: 5}, nil)
	if _, err := io.ReadAll(rr); !errors.Is(err, boom) {
		t.Errorf("err = %v, want the persistent error unchanged", err)
	}
}

// gzBytes compresses s.
func gzBytes(t *testing.T, s string) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(s)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTornGzipReader(t *testing.T) {
	payload := "hello\nworld\n"
	full := gzBytes(t, payload)

	t.Run("clean", func(t *testing.T) {
		g := NewTornGzipReader(bytes.NewReader(full), nil)
		got, err := io.ReadAll(g)
		if err != nil || string(got) != payload {
			t.Fatalf("got %q, %v; want full payload, nil", got, err)
		}
		if g.Torn() {
			t.Error("clean stream reported torn")
		}
	})
	t.Run("torn trailer", func(t *testing.T) {
		m := obs.New()
		g := NewTornGzipReader(bytes.NewReader(full[:len(full)-5]), m)
		got, err := io.ReadAll(g)
		if err != nil {
			t.Fatalf("torn stream surfaced %v, want clean EOF", err)
		}
		if !strings.HasPrefix(payload, string(got)) {
			t.Errorf("torn read %q is not a prefix of the payload", got)
		}
		if !g.Torn() || m.Counter("ingest.gz_torn").Value() != 1 {
			t.Error("tear not reported/counted")
		}
	})
	t.Run("torn inside header", func(t *testing.T) {
		g := NewTornGzipReader(bytes.NewReader(full[:3]), nil)
		got, err := io.ReadAll(g)
		if err != nil || len(got) != 0 || !g.Torn() {
			t.Fatalf("header tear: got %q, %v, torn=%v; want empty, nil, true", got, err, g.Torn())
		}
	})
	t.Run("empty input", func(t *testing.T) {
		g := NewTornGzipReader(bytes.NewReader(nil), nil)
		if _, err := io.ReadAll(g); err != nil {
			t.Fatalf("empty input: %v", err)
		}
	})
}

// wire renders one valid entry line at t millis.
func wire(ts logmodel.Millis, src, user, msg string) string {
	return logmodel.FormatEntry(logmodel.Entry{Time: ts, Source: src, Host: "h", User: user, Severity: logmodel.SevInfo, Message: msg})
}

func TestFeederClassifiesAndQuarantines(t *testing.T) {
	good1 := wire(1000, "A", "u", "one")
	good2 := wire(2500, "B", "u", "two")
	lateLine := wire(500, "C", "u", "too old")
	input := strings.Join([]string{
		good1,
		"garbage without tabs",
		"",
		good2, // closes bucket [1000,2000)
		lateLine,
	}, "\n") + "\n"

	m := obs.New()
	in := NewIngester(Config{BucketWidth: 1000, WindowBuckets: 4, Metrics: m})
	var q bytes.Buffer
	f := NewFeeder(in, FeederConfig{Quarantine: &q, Metrics: m})
	if err := f.Run(strings.NewReader(input)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	in.Flush()

	s := f.Stats()
	if s.Lines != 4 || s.Malformed != 1 || s.Late != 1 || s.Corrupt != 0 {
		t.Errorf("stats = %+v, want Lines:4 Malformed:1 Late:1", s)
	}
	if got := in.Stats().Accepted; got != 2 {
		t.Errorf("accepted = %d, want 2", got)
	}
	wantQ := "malformed\tgarbage without tabs\n" + "late\t" + lateLine + "\n"
	if q.String() != wantQ {
		t.Errorf("quarantine:\n got %q\nwant %q", q.String(), wantQ)
	}
	if v := m.Counter("ingest.lines_malformed").Value(); v != 1 {
		t.Errorf("ingest.lines_malformed = %d, want 1", v)
	}
	if v := m.Counter("ingest.lines_quarantined").Value(); v != 2 {
		t.Errorf("ingest.lines_quarantined = %d, want 2", v)
	}
}

func TestFeederConsumedTracksProcessedLines(t *testing.T) {
	l1 := wire(1000, "A", "u", "one")
	l2 := wire(2500, "B", "u", "two")
	input := l1 + "\n" + l2 // no trailing newline

	in := NewIngester(Config{BucketWidth: 1000, WindowBuckets: 4})
	var atAdvance []int64
	f := NewFeeder(in, FeederConfig{})
	in.OnAdvance = func(Bucket) { atAdvance = append(atAdvance, f.Consumed()) }
	if err := f.Run(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	if f.Consumed() != int64(len(input)) {
		t.Errorf("consumed = %d, want %d (full input)", f.Consumed(), len(input))
	}
	// The bucket closed while processing l2, so the checkpoint offset taken
	// inside OnAdvance must already cover l2 (it sits in pending).
	if len(atAdvance) != 1 || atAdvance[0] != int64(len(input)) {
		t.Errorf("consumed at OnAdvance = %v, want [%d]", atAdvance, len(input))
	}
}

func TestFeederOversizedLineIsDroppedNotBuffered(t *testing.T) {
	big := strings.Repeat("x", MaxLineBytes+1000)
	input := big + "\n" + wire(1000, "A", "u", "ok") + "\n"
	m := obs.New()
	in := NewIngester(Config{BucketWidth: 1000, WindowBuckets: 4})
	var q bytes.Buffer
	f := NewFeeder(in, FeederConfig{Quarantine: &q, Metrics: m})
	if err := f.Run(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	in.Flush()
	if s := f.Stats(); s.Oversized != 1 {
		t.Errorf("oversized = %d, want 1", s.Oversized)
	}
	if got := in.Stats().Accepted; got != 1 {
		t.Errorf("accepted = %d, want 1 (the line after the oversized one)", got)
	}
	if f.Consumed() != int64(len(input)) {
		t.Errorf("consumed = %d, want %d", f.Consumed(), len(input))
	}
	if strings.Contains(q.String(), "x") {
		t.Error("oversized payload leaked into quarantine; only the class marker should be recorded")
	}
	if v := m.Counter("ingest.lines_oversized").Value(); v != 1 {
		t.Errorf("ingest.lines_oversized = %d, want 1", v)
	}
}

func TestFeederSplitReadsAndCRLF(t *testing.T) {
	line := wire(1000, "A", "u", "split across reads")
	input := line + "\r\n"
	// Deliver one byte at a time: line assembly must survive arbitrary
	// chunking (burst stalls deliver exactly this shape).
	var steps []flakyStep
	for i := 0; i < len(input); i++ {
		steps = append(steps, flakyStep{data: []byte{input[i]}})
	}
	in := NewIngester(Config{BucketWidth: 1000, WindowBuckets: 4})
	f := NewFeeder(in, FeederConfig{})
	if err := f.Run(&flakyReader{steps: steps}); err != nil {
		t.Fatal(err)
	}
	in.Flush()
	if got := in.Stats().Accepted; got != 1 {
		t.Errorf("accepted = %d, want 1", got)
	}
}

// deadWriter fails every write.
type deadWriter struct{}

func (deadWriter) Write(p []byte) (int, error) { return 0, errors.New("quarantine disk full") }

func TestFeederQuarantineFailureDoesNotAbort(t *testing.T) {
	m := obs.New()
	in := NewIngester(Config{BucketWidth: 1000, WindowBuckets: 4})
	f := NewFeeder(in, FeederConfig{Quarantine: deadWriter{}, Metrics: m})
	input := "junk1\njunk2\n" + wire(1000, "A", "u", "ok") + "\n"
	if err := f.Run(strings.NewReader(input)); err != nil {
		t.Fatalf("a dead quarantine sink must not abort the stream: %v", err)
	}
	in.Flush()
	if got := in.Stats().Accepted; got != 1 {
		t.Errorf("accepted = %d, want 1", got)
	}
	if v := m.Counter("ingest.quarantine_errors").Value(); v != 1 {
		t.Errorf("quarantine_errors = %d, want 1 (sink disabled after first failure)", v)
	}
	if s := f.Stats(); s.Quarantined != 0 {
		t.Errorf("quarantined = %d, want 0 (no successful sink writes)", s.Quarantined)
	}
}
