package sessions

import (
	"sort"

	"logscape/internal/logmodel"
)

// Tracker maintains the user sessions of a sliding log window incrementally
// — the boundary-spanning session carry-over state of the streaming miner
// (internal/stream). Where Build recomputes every session from the full
// window, a Tracker is fed only the entries entering the window (Append)
// and the cutoff of entries leaving it (Retire), and reports how the set of
// *kept* sessions changed as deltas. Invariant: after any Append/Retire
// sequence the tracker's kept sessions equal Build over a store holding
// exactly the surviving entries — the batch-equivalence contract.
//
// Window boundaries are half-open, like every TimeRange in the tree:
// Retire(cutoff) removes entries with Time < cutoff and keeps entries at
// exactly the cutoff. A session whose entries all land on the boundary
// timestamp therefore survives — an earlier draft compared with <= and
// silently dropped it, diverging from the batch miner on windows whose
// start coincides with a log burst (see TestTrackerBoundarySessionSurvives).
//
// Entries must be appended in non-decreasing time order (the Ingester
// sorts each bucket before delivery); simultaneous entries keep their
// append order, matching the stable sort of a batch store.
type Tracker struct {
	cfg   Config
	users map[string]*trackedUser
}

// trackedUser holds one user's maximal gap-free runs in time order. Only
// the first and last run can be touched by window movement: retirement
// truncates from the front, new entries extend at the back — interior runs
// are immutable, which is what makes the tracker incremental.
type trackedUser struct {
	runs []trackedRun
}

// trackedRun is one maximal run of a user's entries in which no consecutive
// gap exceeds MaxGap — a candidate session; it is "kept" (counted as a
// session) when it clears the MinEntries/MinSources filters.
type trackedRun struct {
	entries []logmodel.Entry
}

// SessionDelta reports one change to the set of kept sessions: Removed no
// longer stands as previously reported, Added stands now. Either side may
// be nil (a session appearing, disappearing, or being replaced by a grown
// or truncated version of itself). Consumers maintaining derived tallies
// subtract Removed and add Added; because a run's entry sequence only ever
// gains a suffix or loses a prefix, the net effect is exact.
type SessionDelta struct {
	Removed, Added *Session
}

// NewTracker returns an empty tracker with the given session configuration
// (zero fields are replaced by the Build defaults).
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), users: make(map[string]*trackedUser)}
}

// record mirrors a delta batch into the metrics registry: the number of
// kept sessions added and removed (counters) and the net change to the live
// kept-session level (gauge). Deltas are a pure function of the appended/
// retired entries, so the counters stay worker-count independent.
func (t *Tracker) record(ds []SessionDelta) []SessionDelta {
	if t.cfg.Metrics == nil || len(ds) == 0 {
		return ds
	}
	added, removed := int64(0), int64(0)
	for _, d := range ds {
		if d.Added != nil {
			added++
		}
		if d.Removed != nil {
			removed++
		}
	}
	t.cfg.Metrics.Counter("sessions.tracker_added").Add(added)
	t.cfg.Metrics.Counter("sessions.tracker_removed").Add(removed)
	t.cfg.Metrics.Gauge("sessions.tracker_live").Add(added - removed)
	return ds
}

// kept reports whether a run clears the session filters.
func (t *Tracker) kept(es []logmodel.Entry) bool {
	if len(es) < t.cfg.MinEntries {
		return false
	}
	seen := make(map[string]bool, t.cfg.MinSources)
	for i := range es {
		seen[es[i].Source] = true
		if len(seen) >= t.cfg.MinSources {
			return true
		}
	}
	return false
}

// session materializes a run as a Session.
func session(user string, es []logmodel.Entry) *Session {
	return &Session{User: user, Entries: es}
}

// Append feeds the entries entering the window, in time order, and returns
// the kept-session deltas. Entries without a user id are ignored (they are
// not assignable to sessions). The cost is O(len(es) + touched tail runs).
func (t *Tracker) Append(es []logmodel.Entry) []SessionDelta {
	// Per touched user, the tail-run state at first touch: the old entry
	// slice header stays valid even if the run's slice is grown (append
	// copies on reallocation), so it is the pre-image for the delta.
	type touch struct {
		user    string
		tailIdx int
		tailOld []logmodel.Entry
	}
	var touched []touch
	seen := make(map[string]bool)
	for i := range es {
		e := es[i]
		if e.User == "" {
			continue
		}
		u := t.users[e.User]
		if u == nil {
			u = &trackedUser{}
			t.users[e.User] = u
		}
		if !seen[e.User] {
			seen[e.User] = true
			tc := touch{user: e.User, tailIdx: len(u.runs) - 1}
			if tc.tailIdx >= 0 {
				tc.tailOld = u.runs[tc.tailIdx].entries
			}
			touched = append(touched, tc)
		}
		if n := len(u.runs); n > 0 {
			last := u.runs[n-1].entries
			prev := last[len(last)-1].Time
			if e.Time < prev {
				panic("sessions: Tracker.Append requires non-decreasing entry times")
			}
			if e.Time-prev <= t.cfg.MaxGap {
				u.runs[n-1].entries = append(u.runs[n-1].entries, e)
				continue
			}
		}
		u.runs = append(u.runs, trackedRun{entries: []logmodel.Entry{e}})
	}

	var deltas []SessionDelta
	for _, tc := range touched {
		u := t.users[tc.user]
		if tc.tailIdx >= 0 && len(u.runs[tc.tailIdx].entries) > len(tc.tailOld) {
			// The pre-existing tail run was extended.
			var d SessionDelta
			if t.kept(tc.tailOld) {
				d.Removed = session(tc.user, tc.tailOld)
			}
			if t.kept(u.runs[tc.tailIdx].entries) {
				d.Added = session(tc.user, u.runs[tc.tailIdx].entries)
			}
			if d.Removed != nil || d.Added != nil {
				deltas = append(deltas, d)
			}
		}
		for idx := tc.tailIdx + 1; idx < len(u.runs); idx++ {
			if t.kept(u.runs[idx].entries) {
				deltas = append(deltas, SessionDelta{Added: session(tc.user, u.runs[idx].entries)})
			}
		}
	}
	return t.record(deltas)
}

// Retire drops every tracked entry with Time < cutoff (half-open: entries
// at exactly the cutoff stay) and returns the kept-session deltas. users
// names the users that may be affected — typically the users of the
// retiring bucket, keeping the cost O(bucket) instead of O(all users); it
// must be a superset of the users with entries before the cutoff, in a
// deterministic order. Unknown users are ignored.
func (t *Tracker) Retire(cutoff logmodel.Millis, users []string) []SessionDelta {
	var deltas []SessionDelta
	for _, user := range users {
		u := t.users[user]
		if u == nil {
			continue
		}
		// Whole leading runs before the cutoff disappear.
		for len(u.runs) > 0 {
			es := u.runs[0].entries
			if es[len(es)-1].Time >= cutoff {
				break
			}
			if t.kept(es) {
				deltas = append(deltas, SessionDelta{Removed: session(user, es)})
			}
			u.runs = u.runs[1:]
		}
		// A run straddling the cutoff loses its prefix; the remaining
		// entries still form one run (interior gaps are untouched).
		if len(u.runs) > 0 && u.runs[0].entries[0].Time < cutoff {
			old := u.runs[0].entries
			k := sort.Search(len(old), func(i int) bool { return old[i].Time >= cutoff })
			var d SessionDelta
			if t.kept(old) {
				d.Removed = session(user, old)
			}
			if t.kept(old[k:]) {
				d.Added = session(user, old[k:])
			}
			u.runs[0].entries = old[k:]
			if d.Removed != nil || d.Added != nil {
				deltas = append(deltas, d)
			}
		}
		if len(u.runs) == 0 {
			delete(t.users, user)
		}
	}
	return t.record(deltas)
}

// Sessions returns the currently kept sessions, ordered like Build (by
// start time, then user) — the tracker's answer to "what would a batch
// session build over the surviving entries return".
func (t *Tracker) Sessions() []Session {
	var out []Session
	for user, u := range t.users {
		for _, r := range u.runs {
			if t.kept(r.entries) {
				out = append(out, Session{User: user, Entries: r.entries})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start() != out[j].Start() {
			return out[i].Start() < out[j].Start()
		}
		return out[i].User < out[j].User
	})
	return out
}
