package sessions

import (
	"reflect"
	"testing"

	"logscape/internal/hospital"
	"logscape/internal/logmodel"
)

func entry(t logmodel.Millis, src, user string) logmodel.Entry {
	return logmodel.Entry{Time: t, Source: src, Host: "h", User: user, Severity: logmodel.SevInfo}
}

func buildStore(es ...logmodel.Entry) *logmodel.Store {
	s := logmodel.NewStore(len(es))
	s.AppendAll(es)
	s.Sort()
	return s
}

func TestBuildBasic(t *testing.T) {
	store := buildStore(
		entry(0, "A", "u1"),
		entry(1000, "B", "u1"),
		entry(2000, "A", "u1"),
		entry(3000, "C", "u1"),
		entry(500, "X", ""), // unassignable
	)
	ss, stats := Build(store, Config{})
	if len(ss) != 1 {
		t.Fatalf("sessions = %d", len(ss))
	}
	s := ss[0]
	if s.User != "u1" || s.Len() != 4 {
		t.Errorf("session = %+v", s)
	}
	if s.Start() != 0 || s.End() != 3000 || s.Duration() != 3000 {
		t.Errorf("bounds = %v..%v", s.Start(), s.End())
	}
	if !reflect.DeepEqual(s.Sources(), []string{"A", "B", "C"}) {
		t.Errorf("sources = %v", s.Sources())
	}
	if stats.TotalLogs != 5 || stats.AssignableLogs != 4 || stats.AssignedLogs != 4 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.AssignedShare() != 0.8 {
		t.Errorf("share = %v", stats.AssignedShare())
	}
}

func TestBuildSplitsOnGap(t *testing.T) {
	gap := 15 * logmodel.MillisPerMinute
	store := buildStore(
		entry(0, "A", "u1"),
		entry(1000, "B", "u1"),
		entry(2000, "A", "u1"),
		entry(3000, "B", "u1"),
		// gap > MaxGap
		entry(3000+gap+1, "A", "u1"),
		entry(4000+gap+1, "B", "u1"),
		entry(5000+gap+1, "A", "u1"),
		entry(6000+gap+1, "C", "u1"),
	)
	ss, _ := Build(store, Config{})
	if len(ss) != 2 {
		t.Fatalf("sessions = %d, want 2", len(ss))
	}
	if ss[0].Len() != 4 || ss[1].Len() != 4 {
		t.Errorf("lens = %d, %d", ss[0].Len(), ss[1].Len())
	}
	if ss[0].Start() > ss[1].Start() {
		t.Error("sessions not ordered by start")
	}
}

func TestBuildSeparatesUsers(t *testing.T) {
	// Two users interleaved on the same machine (the shared-machine
	// challenge): they must form distinct sessions.
	store := buildStore(
		entry(0, "A", "u1"),
		entry(100, "A", "u2"),
		entry(200, "B", "u1"),
		entry(300, "B", "u2"),
		entry(400, "C", "u1"),
		entry(500, "C", "u2"),
		entry(600, "D", "u1"),
		entry(700, "D", "u2"),
	)
	ss, _ := Build(store, Config{})
	if len(ss) != 2 {
		t.Fatalf("sessions = %d, want 2", len(ss))
	}
	users := map[string]int{}
	for _, s := range ss {
		users[s.User] = s.Len()
		for _, e := range s.Entries {
			if e.User != s.User {
				t.Error("mixed users inside a session")
			}
		}
	}
	if users["u1"] != 4 || users["u2"] != 4 {
		t.Errorf("users = %v", users)
	}
}

func TestBuildFilters(t *testing.T) {
	store := buildStore(
		// Too few entries.
		entry(0, "A", "u1"),
		entry(100, "B", "u1"),
		// Single source (with enough entries).
		entry(0, "A", "u2"),
		entry(100, "A", "u2"),
		entry(200, "A", "u2"),
		entry(300, "A", "u2"),
		entry(400, "A", "u2"),
	)
	ss, stats := Build(store, Config{})
	if len(ss) != 0 {
		t.Fatalf("sessions = %v", ss)
	}
	if stats.DroppedFragments != 2 {
		t.Errorf("dropped = %d", stats.DroppedFragments)
	}
	if stats.AssignedLogs != 0 {
		t.Errorf("assigned = %d", stats.AssignedLogs)
	}
}

func TestBuildCustomConfig(t *testing.T) {
	store := buildStore(
		entry(0, "A", "u1"),
		entry(100, "B", "u1"),
	)
	ss, _ := Build(store, Config{MinEntries: 2, MinSources: 2, MaxGap: logmodel.MillisPerSecond})
	if len(ss) != 1 {
		t.Fatalf("sessions = %d", len(ss))
	}
}

func TestBuildEmptyStore(t *testing.T) {
	ss, stats := Build(buildStore(), Config{})
	if len(ss) != 0 || stats.TotalLogs != 0 || stats.AssignedShare() != 0 {
		t.Errorf("ss = %v stats = %+v", ss, stats)
	}
}

func TestSourceSequence(t *testing.T) {
	s := Session{User: "u", Entries: []logmodel.Entry{
		entry(10, "A", "u"), entry(20, "B", "u"),
	}}
	seq := s.SourceSequence()
	want := []SourceEvent{{Source: "A", Time: 10}, {Source: "B", Time: 20}}
	if !reflect.DeepEqual(seq, want) {
		t.Errorf("seq = %v", seq)
	}
}

// TestBuildOnSimulatedDay: session creation over a simulated hospital day
// recovers a plausible session count and assigned share (§4.6: about 4000
// sessions per weekday and 7.5–11% of logs assigned, at full scale).
func TestBuildOnSimulatedDay(t *testing.T) {
	topo := hospital.GenerateTopology(hospital.DefaultTopologyConfig(), 31)
	cfg := hospital.DefaultConfig(31)
	cfg.Scale = 0.5
	sim := hospital.NewSimulator(cfg, topo)
	store, stats := sim.GenerateDay(0)
	ss, sstats := Build(store, Config{})
	if sstats.Sessions == 0 {
		t.Fatal("no sessions built")
	}
	// The builder may split or merge relative to the generator, but the
	// order of magnitude must hold.
	lo, hi := stats.Sessions/2, stats.Sessions*3
	if sstats.Sessions < lo || sstats.Sessions > hi {
		t.Errorf("built %d sessions for %d generated", sstats.Sessions, stats.Sessions)
	}
	share := sstats.AssignedShare()
	if share < 0.03 || share > 0.2 {
		t.Errorf("assigned share = %.3f", share)
	}
	// Every session respects the time-order invariant.
	for _, s := range ss {
		for i := 1; i < s.Len(); i++ {
			if s.Entries[i].Time < s.Entries[i-1].Time {
				t.Fatal("session entries out of order")
			}
		}
	}
}
