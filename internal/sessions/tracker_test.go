package sessions

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"logscape/internal/logmodel"
)

// buildFromEntries runs the batch session builder over the given entries.
func buildFromEntries(es []logmodel.Entry, cfg Config) []Session {
	s := logmodel.NewStore(len(es))
	s.AppendAll(es)
	s.Sort()
	out, _ := Build(s, cfg)
	return out
}

// TestTrackerBoundarySessionSurvives is the regression test for the
// window-boundary bug: a session whose entries all land exactly on the
// retirement cutoff must survive, because windows are half-open — the
// cutoff instant belongs to the surviving side. A closed-interval
// comparison (Time <= cutoff) silently dropped exactly this session.
func TestTrackerBoundarySessionSurvives(t *testing.T) {
	cfg := Config{MaxGap: logmodel.MillisPerMinute, MinEntries: 2, MinSources: 2}
	tr := NewTracker(cfg)
	cutoff := logmodel.Millis(10 * logmodel.MillisPerHour)

	// Both entries at exactly the cutoff timestamp.
	deltas := tr.Append([]logmodel.Entry{
		entry(cutoff, "A", "u1"),
		entry(cutoff, "B", "u1"),
	})
	if len(deltas) != 1 || deltas[0].Added == nil {
		t.Fatalf("expected one added session, got %+v", deltas)
	}

	if ds := tr.Retire(cutoff, []string{"u1"}); len(ds) != 0 {
		t.Errorf("retire at the session's own timestamp produced deltas: %+v", ds)
	}
	if got := tr.Sessions(); len(got) != 1 {
		t.Fatalf("boundary session dropped by Retire: %d sessions left", len(got))
	}

	// One millisecond later the entries are strictly before the cutoff and
	// must go.
	ds := tr.Retire(cutoff+1, []string{"u1"})
	if len(ds) != 1 || ds[0].Removed == nil || ds[0].Added != nil {
		t.Fatalf("expected one removed session, got %+v", ds)
	}
	if got := tr.Sessions(); len(got) != 0 {
		t.Fatalf("sessions left after full retirement: %d", len(got))
	}
}

// TestTrackerStraddlingRunTruncation: retiring the prefix of a run keeps
// the suffix as one session iff it still clears the filters, and reports
// the replacement as a Removed/Added pair.
func TestTrackerStraddlingRunTruncation(t *testing.T) {
	cfg := Config{MaxGap: logmodel.MillisPerMinute, MinEntries: 2, MinSources: 2}
	tr := NewTracker(cfg)
	base := logmodel.Millis(0)
	tr.Append([]logmodel.Entry{
		entry(base, "A", "u1"),
		entry(base+10, "B", "u1"),
		entry(base+20, "C", "u1"),
		entry(base+30, "D", "u1"),
	})
	ds := tr.Retire(base+15, []string{"u1"})
	if len(ds) != 1 || ds[0].Removed == nil || ds[0].Added == nil {
		t.Fatalf("expected a Removed/Added replacement, got %+v", ds)
	}
	if n := len(ds[0].Added.Entries); n != 2 {
		t.Errorf("truncated session has %d entries, want 2", n)
	}
	// Truncating below MinEntries removes without replacement.
	ds = tr.Retire(base+25, []string{"u1"})
	if len(ds) != 1 || ds[0].Removed == nil || ds[0].Added != nil {
		t.Fatalf("expected removal without replacement, got %+v", ds)
	}
}

// TestTrackerMatchesBuild drives a tracker through random append/retire
// sequences and checks after every step that its kept sessions equal a
// batch Build over the surviving entries.
func TestTrackerMatchesBuild(t *testing.T) {
	const seed = 4242
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{MaxGap: 40, MinEntries: 3, MinSources: 2}
	tr := NewTracker(cfg)
	users := []string{"u1", "u2", "u3", ""}
	sourcesOf := []string{"A", "B", "C"}

	var live []logmodel.Entry
	now := logmodel.Millis(0)
	cutoff := logmodel.Millis(0)
	for step := 0; step < 300; step++ {
		if rng.Intn(3) < 2 {
			// Append a small burst of time-ordered entries.
			var batch []logmodel.Entry
			for i := 0; i < 1+rng.Intn(5); i++ {
				now += logmodel.Millis(rng.Intn(60))
				batch = append(batch, entry(now, sourcesOf[rng.Intn(len(sourcesOf))],
					users[rng.Intn(len(users))]))
			}
			tr.Append(batch)
			for _, e := range batch {
				if e.User != "" {
					live = append(live, e)
				}
			}
		} else {
			cutoff += logmodel.Millis(rng.Intn(120))
			affected := map[string]bool{}
			var kept []logmodel.Entry
			for _, e := range live {
				if e.Time < cutoff {
					affected[e.User] = true
				} else {
					kept = append(kept, e)
				}
			}
			var names []string
			for u := range affected {
				names = append(names, u)
			}
			sort.Strings(names)
			tr.Retire(cutoff, names)
			live = kept
		}
		want := buildFromEntries(live, cfg)
		got := tr.Sessions()
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d (seed %d): tracker sessions diverge from Build\n got: %s\nwant: %s",
				step, seed, describe(got), describe(want))
		}
	}
}

// TestTrackerDeltasAreConsistent replays the deltas into a multiset of
// sessions and checks it always equals the tracker's kept set — the
// property the L2 streaming counts rely on.
func TestTrackerDeltasAreConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := Config{MaxGap: 30, MinEntries: 2, MinSources: 2}
	tr := NewTracker(cfg)
	replay := map[string]int{}
	apply := func(ds []SessionDelta) {
		for _, d := range ds {
			if d.Removed != nil {
				k := describe([]Session{*d.Removed})
				replay[k]--
				if replay[k] == 0 {
					delete(replay, k)
				}
			}
			if d.Added != nil {
				replay[describe([]Session{*d.Added})]++
			}
		}
	}
	now := logmodel.Millis(0)
	cutoff := logmodel.Millis(0)
	usersOf := []string{"u1", "u2"}
	for step := 0; step < 200; step++ {
		if rng.Intn(3) < 2 {
			now += logmodel.Millis(rng.Intn(50))
			u := usersOf[rng.Intn(len(usersOf))]
			apply(tr.Append([]logmodel.Entry{entry(now, string(rune('A'+rng.Intn(3))), u)}))
		} else {
			cutoff += logmodel.Millis(rng.Intn(100))
			apply(tr.Retire(cutoff, usersOf))
		}
		want := map[string]int{}
		for _, s := range tr.Sessions() {
			want[describe([]Session{s})]++
		}
		if !reflect.DeepEqual(replay, want) {
			t.Fatalf("step %d: delta replay diverged\n got %v\nwant %v", step, replay, want)
		}
	}
}

// describe renders sessions compactly for failure messages and multiset
// keys.
func describe(ss []Session) string {
	out := ""
	for _, s := range ss {
		out += fmt.Sprintf("%s[", s.User)
		for _, e := range s.Entries {
			out += fmt.Sprintf("%s@%d ", e.Source, e.Time)
		}
		out += "] "
	}
	return out
}

// TestTrackerSuffixReplayMatchesFull pins the assumption checkpoint
// restore leans on: replaying only the entries that survive a retirement
// through a fresh tracker yields exactly the sessions of a tracker that
// saw the full history and then retired the prefix. If session state ever
// depended on retired entries, resuming a follow run from a window
// checkpoint would diverge from the uninterrupted run.
func TestTrackerSuffixReplayMatchesFull(t *testing.T) {
	cfg := Config{MaxGap: 30, MinEntries: 2, MinSources: 2}
	rng := rand.New(rand.NewSource(7))
	users := []string{"u1", "u2", "u3"}
	var es []logmodel.Entry
	now := logmodel.Millis(0)
	for i := 0; i < 400; i++ {
		now += logmodel.Millis(rng.Intn(20))
		es = append(es, entry(now, string(rune('A'+rng.Intn(4))), users[rng.Intn(len(users))]))
	}
	cutoff := es[len(es)/2].Time

	full := NewTracker(cfg)
	full.Append(es)
	full.Retire(cutoff, users)

	var suffix []logmodel.Entry
	for _, e := range es {
		if e.Time >= cutoff {
			suffix = append(suffix, e)
		}
	}
	replay := NewTracker(cfg)
	replay.Append(suffix)

	got, want := full.Sessions(), replay.Sessions()
	if len(got) == 0 {
		t.Fatal("vacuous corpus: no sessions survived retirement")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("suffix replay diverges from retired full history\n full: %s\nreplay: %s",
			describe(got), describe(want))
	}
	if batch := buildFromEntries(suffix, cfg); !reflect.DeepEqual(want, batch) {
		t.Errorf("suffix replay diverges from batch Build\nreplay: %s\n batch: %s",
			describe(want), describe(batch))
	}
}
