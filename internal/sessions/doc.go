// Package sessions implements user-session creation from a centralized log
// stream, the prerequisite of the paper's approach L2 (§3.2).
//
// A session is the ordered sequence of logs produced on behalf of one user
// during one sitting. The paper notes that "the fact that both, a machine
// can be shared by different users, and a user might be active on different
// machines, makes session creation a challenging task"; this implementation
// keys sessions on the authenticated user (not the machine, so shared
// machines do not merge sessions), splits a user's log stream on inactivity
// gaps, and tolerates host changes inside a session (a user moving between
// a ward terminal and an office PC).
//
// Only entries carrying a user id are assignable; in the simulated
// environment, as at HUG, that is roughly 8–11% of the stream (§4.6).
//
// See DESIGN.md §5 (Key design decisions).
package sessions
