package sessions

import (
	"sort"

	"logscape/internal/logmodel"
	"logscape/internal/obs"
)

// Config controls session creation. The zero value is replaced by defaults.
type Config struct {
	// MaxGap is the inactivity gap that closes a session (default 15 min).
	MaxGap logmodel.Millis
	// MinEntries is the minimum number of logs for a session to be kept
	// (default 4): shorter fragments carry no usable co-occurrence signal.
	MinEntries int
	// MinSources is the minimum number of distinct log sources for a
	// session to be kept (default 2): single-source sessions contribute no
	// bigrams with a ≠ b.
	MinSources int
	// Metrics, when non-nil, collects session-creation counters (see
	// internal/obs). Collection never changes the built sessions.
	Metrics *obs.Registry
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxGap == 0 {
		c.MaxGap = 15 * logmodel.MillisPerMinute
	}
	if c.MinEntries == 0 {
		c.MinEntries = 4
	}
	if c.MinSources == 0 {
		c.MinSources = 2
	}
	return c
}

// Session is one reconstructed user session: a time-ordered sequence of log
// entries attributed to one user.
type Session struct {
	// User is the session's user id.
	User string
	// Entries are the session's logs in time order.
	Entries []logmodel.Entry
}

// Start returns the timestamp of the first entry.
func (s *Session) Start() logmodel.Millis { return s.Entries[0].Time }

// End returns the timestamp of the last entry.
func (s *Session) End() logmodel.Millis { return s.Entries[len(s.Entries)-1].Time }

// Duration returns End − Start.
func (s *Session) Duration() logmodel.Millis { return s.End() - s.Start() }

// Len returns the number of entries.
func (s *Session) Len() int { return len(s.Entries) }

// Sources returns the distinct log sources of the session, sorted.
func (s *Session) Sources() []string {
	seen := make(map[string]bool)
	for i := range s.Entries {
		seen[s.Entries[i].Source] = true
	}
	out := make([]string, 0, len(seen))
	for src := range seen {
		out = append(out, src)
	}
	sort.Strings(out)
	return out
}

// SourceSequence returns the session as an ordered sequence of (source,
// time) activity statements — the view approach L2 mines (§3.2: "a session
// is treated as an ordered sequence of activity statements by different
// applications").
func (s *Session) SourceSequence() []SourceEvent {
	out := make([]SourceEvent, len(s.Entries))
	for i := range s.Entries {
		out[i] = SourceEvent{Source: s.Entries[i].Source, Time: s.Entries[i].Time}
	}
	return out
}

// SourceEvent is one activity statement: source S was active at time T.
type SourceEvent struct {
	Source string
	Time   logmodel.Millis
}

// Stats summarizes a session-creation run.
type Stats struct {
	// TotalLogs is the number of entries examined.
	TotalLogs int
	// AssignableLogs is the number of entries carrying a user id.
	AssignableLogs int
	// AssignedLogs is the number of entries that ended up in a kept
	// session.
	AssignedLogs int
	// Sessions is the number of kept sessions.
	Sessions int
	// DroppedFragments is the number of candidate sessions discarded by
	// the MinEntries/MinSources filters.
	DroppedFragments int
}

// AssignedShare returns AssignedLogs / TotalLogs — the "percentage of logs
// that can be assigned to a session" the paper reports as 7.5–11%.
func (s Stats) AssignedShare() float64 {
	if s.TotalLogs == 0 {
		return 0
	}
	return float64(s.AssignedLogs) / float64(s.TotalLogs)
}

// Build reconstructs the user sessions of the store. The store must be
// sorted. Sessions are returned ordered by start time.
func Build(store *logmodel.Store, cfg Config) ([]Session, Stats) {
	cfg = cfg.withDefaults()
	var stats Stats
	stats.TotalLogs = store.Len()

	// Partition assignable entries by user, preserving time order.
	byUser := make(map[string][]logmodel.Entry)
	for _, e := range store.Entries() {
		if e.User == "" {
			continue
		}
		stats.AssignableLogs++
		byUser[e.User] = append(byUser[e.User], e)
	}

	var out []Session
	for user, es := range byUser {
		start := 0
		flush := func(end int) {
			if end <= start {
				return
			}
			cand := Session{User: user, Entries: es[start:end]}
			if cand.Len() >= cfg.MinEntries && len(cand.Sources()) >= cfg.MinSources {
				stats.AssignedLogs += cand.Len()
				out = append(out, cand)
			} else {
				stats.DroppedFragments++
			}
			start = end
		}
		for i := 1; i < len(es); i++ {
			if es[i].Time-es[i-1].Time > cfg.MaxGap {
				flush(i)
			}
		}
		flush(len(es))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start() != out[j].Start() {
			return out[i].Start() < out[j].Start()
		}
		return out[i].User < out[j].User
	})
	stats.Sessions = len(out)
	cfg.Metrics.Counter("sessions.built").Add(int64(stats.Sessions))
	cfg.Metrics.Counter("sessions.dropped_fragments").Add(int64(stats.DroppedFragments))
	cfg.Metrics.Counter("sessions.assignable_logs").Add(int64(stats.AssignableLogs))
	cfg.Metrics.Counter("sessions.assigned_logs").Add(int64(stats.AssignedLogs))
	return out, stats
}
