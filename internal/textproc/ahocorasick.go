package textproc

import "sort"

// Match is one occurrence of a pattern in the scanned text.
type Match struct {
	// Pattern is the index of the matched pattern in the order given to
	// NewMatcher.
	Pattern int
	// End is the byte offset just past the end of the occurrence.
	End int
}

// Matcher is an Aho–Corasick automaton over a fixed set of byte patterns.
// It finds all occurrences of all patterns in a single pass over the text,
// which keeps approach L3 linear in the number of logs regardless of the
// directory size.
type Matcher struct {
	patterns []string
	// next[state] maps an input byte to the next state (goto + failure
	// resolved ahead of time into a DFA).
	next []([256]int32)
	// out[state] lists the pattern indexes ending at this state.
	out [][]int32
}

// NewMatcher builds an automaton for the given patterns. Empty patterns are
// permitted but never match. Duplicate patterns each report their own index.
func NewMatcher(patterns []string) *Matcher {
	m := &Matcher{patterns: append([]string(nil), patterns...)}
	// Trie construction.
	m.next = append(m.next, [256]int32{})
	m.out = append(m.out, nil)
	// goto function stored directly in next; -1 marks absence during build.
	for i := range m.next[0] {
		m.next[0][i] = -1
	}
	for pi, p := range patterns {
		if p == "" {
			continue
		}
		state := int32(0)
		for i := 0; i < len(p); i++ {
			c := p[i]
			if m.next[state][c] == -1 {
				m.next = append(m.next, [256]int32{})
				for j := range m.next[len(m.next)-1] {
					m.next[len(m.next)-1][j] = -1
				}
				m.out = append(m.out, nil)
				m.next[state][c] = int32(len(m.next) - 1)
			}
			state = m.next[state][c]
		}
		m.out[state] = append(m.out[state], int32(pi))
	}
	// BFS to compute failure links and convert to DFA.
	fail := make([]int32, len(m.next))
	var queue []int32
	for c := 0; c < 256; c++ {
		s := m.next[0][c]
		if s == -1 {
			m.next[0][c] = 0
		} else {
			fail[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for c := 0; c < 256; c++ {
			s := m.next[r][c]
			if s == -1 {
				m.next[r][c] = m.next[fail[r]][c]
				continue
			}
			queue = append(queue, s)
			f := m.next[fail[r]][c]
			fail[s] = f
			m.out[s] = append(m.out[s], m.out[f]...)
		}
	}
	return m
}

// NumPatterns returns the number of patterns in the automaton.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }

// Pattern returns the i-th pattern.
func (m *Matcher) Pattern(i int) string { return m.patterns[i] }

// FindAll returns every occurrence of every pattern in text, ordered by end
// offset.
func (m *Matcher) FindAll(text string) []Match {
	var out []Match
	state := int32(0)
	for i := 0; i < len(text); i++ {
		state = m.next[state][text[i]]
		for _, pi := range m.out[state] {
			out = append(out, Match{Pattern: int(pi), End: i + 1})
		}
	}
	return out
}

// FindSet returns the set of distinct pattern indexes occurring in text,
// sorted ascending. It allocates only when there are matches.
func (m *Matcher) FindSet(text string) []int {
	var set map[int]bool
	state := int32(0)
	for i := 0; i < len(text); i++ {
		state = m.next[state][text[i]]
		for _, pi := range m.out[state] {
			if set == nil {
				set = make(map[int]bool, 4)
			}
			set[int(pi)] = true
		}
	}
	if set == nil {
		return nil
	}
	out := make([]int, 0, len(set))
	for pi := range set {
		out = append(out, pi)
	}
	sort.Ints(out)
	return out
}

// Contains reports whether any pattern occurs in text, without allocating.
func (m *Matcher) Contains(text string) bool {
	state := int32(0)
	for i := 0; i < len(text); i++ {
		state = m.next[state][text[i]]
		if len(m.out[state]) > 0 {
			return true
		}
	}
	return false
}

// FindSetWordBounded is FindSet restricted to occurrences that are
// word-bounded: the bytes adjacent to the occurrence (if any) must not be
// identifier characters (letters, digits, '_'). This prevents the directory
// id UPSRV from matching inside UPSRV2 — exactly the confusion behind the
// "wrong name" false negatives discussed in §4.8 — while still letting the
// caller detect the longer id.
func (m *Matcher) FindSetWordBounded(text string) []int {
	var set map[int]bool
	state := int32(0)
	for i := 0; i < len(text); i++ {
		state = m.next[state][text[i]]
		for _, pi := range m.out[state] {
			p := m.patterns[pi]
			start := i + 1 - len(p)
			if start > 0 && isWordByte(text[start-1]) {
				continue
			}
			if i+1 < len(text) && isWordByte(text[i+1]) {
				continue
			}
			if set == nil {
				set = make(map[int]bool, 4)
			}
			set[int(pi)] = true
		}
	}
	if set == nil {
		return nil
	}
	out := make([]int, 0, len(set))
	for pi := range set {
		out = append(out, pi)
	}
	sort.Ints(out)
	return out
}

func isWordByte(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
