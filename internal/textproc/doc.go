// Package textproc provides the free-text machinery behind approach L3 and
// the log-preprocessing extensions: an Aho–Corasick multi-pattern matcher
// used to scan millions of log messages for service-directory citations in
// a single pass, a log-oriented tokenizer, and an SLCT-style message
// clustering algorithm (Vaarandi 2003, discussed in §2.2 of the paper) for
// grouping free-text messages into templates.
//
// See DESIGN.md §3 (System inventory).
package textproc
