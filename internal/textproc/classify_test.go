package textproc

import (
	"math/rand"
	"testing"
)

func trainingCorpus(rng *rand.Rand) []string {
	var msgs []string
	for i := 0; i < 100; i++ {
		msgs = append(msgs, "invoke service "+randID(rng)+" ok")
		msgs = append(msgs, "heartbeat ok")
	}
	for i := 0; i < 40; i++ {
		msgs = append(msgs, "session opened for "+randID(rng))
	}
	return msgs
}

func TestTrainAndClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := Train(trainingCorpus(rng), 30)
	if c.NumTemplates() < 3 {
		t.Fatalf("templates = %d", c.NumTemplates())
	}
	id, ok := c.Classify("invoke service zzz999 ok")
	if !ok {
		t.Fatal("invocation message not classified")
	}
	if got := c.Template(id).String(); got != "invoke service * ok" {
		t.Errorf("template = %q", got)
	}
	if _, ok := c.Classify("totally unseen message shape with many words"); ok {
		t.Error("outlier classified")
	}
	// Fixed template without wildcards.
	hb, ok := c.Classify("heartbeat ok")
	if !ok || c.Template(hb).String() != "heartbeat ok" {
		t.Errorf("heartbeat class = %v %v", hb, ok)
	}
}

func TestClassCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	corpus := trainingCorpus(rng)
	c := Train(corpus, 30)
	counts, outliers := c.ClassCounts(corpus)
	var sum int
	for _, n := range counts {
		sum += n
	}
	if sum+outliers != len(corpus) {
		t.Errorf("sum %d + outliers %d != corpus %d", sum, outliers, len(corpus))
	}
	if outliers > len(corpus)/10 {
		t.Errorf("outliers = %d, training corpus should mostly classify", outliers)
	}
}

func TestClassifierLengthIndex(t *testing.T) {
	// A message can only match templates of its own token length.
	c := NewClassifier([]Template{
		{Tokens: []string{"a", Wildcard}},
		{Tokens: []string{"a", Wildcard, "c"}},
	})
	if id, ok := c.Classify("a b"); !ok || id != 0 {
		t.Errorf("2-token match = %d %v", id, ok)
	}
	if id, ok := c.Classify("a b c"); !ok || id != 1 {
		t.Errorf("3-token match = %d %v", id, ok)
	}
	if _, ok := c.Classify("a b c d"); ok {
		t.Error("4 tokens should not match")
	}
}

func TestClassifierFirstMatchWins(t *testing.T) {
	c := NewClassifier([]Template{
		{Tokens: []string{"x", Wildcard}},
		{Tokens: []string{"x", "y"}},
	})
	if id, _ := c.Classify("x y"); id != 0 {
		t.Errorf("first match id = %d", id)
	}
}
