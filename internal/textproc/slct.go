package textproc

import (
	"sort"
	"strings"
)

// Template is a message cluster discovered by the SLCT-style algorithm: a
// token pattern in which infrequent positions are wildcards.
type Template struct {
	// Tokens is the positional pattern; Wildcard marks variable positions.
	Tokens []string
	// Count is the number of messages matching the template.
	Count int
}

// Wildcard is the token standing for a variable position in a Template.
const Wildcard = "\x00*"

// String renders the template with "*" for wildcards.
func (t Template) String() string {
	parts := make([]string, len(t.Tokens))
	for i, tok := range t.Tokens {
		if tok == Wildcard {
			parts[i] = "*"
		} else {
			parts[i] = tok
		}
	}
	return strings.Join(parts, " ")
}

// Matches reports whether the tokenized message matches the template
// (equal length, fixed positions equal).
func (t Template) Matches(tokens []string) bool {
	if len(tokens) != len(t.Tokens) {
		return false
	}
	for i, tok := range t.Tokens {
		if tok != Wildcard && tok != tokens[i] {
			return false
		}
	}
	return true
}

// SLCT clusters log messages into templates following Vaarandi's Simple
// Logfile Clustering Tool (referenced in §2.2 of the paper): a first pass
// counts (position, word) frequencies, a second pass maps each message to a
// cluster candidate that keeps only the frequent words, and candidates
// supported by at least `support` messages become templates.
//
// The paper's future work (§5) suggests classifying log messages of an
// application in a preprocessing step using exactly this family of
// algorithms; the hospital simulator's message templates are recoverable by
// it, which the integration tests exercise.
func SLCT(messages []string, support int) []Template {
	if support < 1 {
		support = 1
	}
	type posWord struct {
		pos  int
		word string
	}
	freq := make(map[posWord]int)
	tokenized := make([][]string, len(messages))
	for i, m := range messages {
		toks := Tokenize(m)
		tokenized[i] = toks
		for p, w := range toks {
			freq[posWord{p, w}]++
		}
	}
	candidates := make(map[string]int)
	shape := make(map[string][]string)
	var keyBuf strings.Builder
	for _, toks := range tokenized {
		if len(toks) == 0 {
			continue
		}
		cand := make([]string, len(toks))
		anyFixed := false
		for p, w := range toks {
			if freq[posWord{p, w}] >= support {
				cand[p] = w
				anyFixed = true
			} else {
				cand[p] = Wildcard
			}
		}
		if !anyFixed {
			continue
		}
		keyBuf.Reset()
		for _, c := range cand {
			keyBuf.WriteString(c)
			keyBuf.WriteByte('\x01')
		}
		k := keyBuf.String()
		candidates[k]++
		if _, ok := shape[k]; !ok {
			shape[k] = cand
		}
	}
	var out []Template
	for k, c := range candidates {
		if c >= support {
			out = append(out, Template{Tokens: shape[k], Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].String() < out[j].String()
	})
	return out
}
