package textproc

// Classifier assigns free-text messages to the SLCT templates they match —
// the preprocessing step the paper's §5 proposes ("one could also study
// the benefit of classifying log messages of a given application in a
// preprocessing step, using algorithms mentioned in §2.2"). Downstream,
// a miner can restrict an application's log sequence to the template
// classes that carry interaction semantics.
type Classifier struct {
	templates []Template
	// byLen indexes template ids by token count; a message can only match
	// templates of its own length.
	byLen map[int][]int
}

// NewClassifier builds a classifier over the given templates. Templates
// are matched in the given order (first match wins), so pass them sorted
// by decreasing support for the most-specific-common behavior.
func NewClassifier(templates []Template) *Classifier {
	c := &Classifier{templates: templates, byLen: make(map[int][]int)}
	for i, t := range templates {
		n := len(t.Tokens)
		c.byLen[n] = append(c.byLen[n], i)
	}
	return c
}

// Train runs SLCT over the corpus and returns a classifier over the
// resulting templates.
func Train(messages []string, support int) *Classifier {
	return NewClassifier(SLCT(messages, support))
}

// NumTemplates returns the number of templates.
func (c *Classifier) NumTemplates() int { return len(c.templates) }

// Template returns the i-th template.
func (c *Classifier) Template(i int) Template { return c.templates[i] }

// Classify returns the id of the first template matching the message, or
// (-1, false) when none matches (an "outlier" message in SLCT terms).
func (c *Classifier) Classify(msg string) (int, bool) {
	toks := Tokenize(msg)
	for _, i := range c.byLen[len(toks)] {
		if c.templates[i].Matches(toks) {
			return i, true
		}
	}
	return -1, false
}

// ClassCounts classifies every message and returns the per-template counts
// plus the number of outliers.
func (c *Classifier) ClassCounts(messages []string) (counts []int, outliers int) {
	counts = make([]int, len(c.templates))
	for _, m := range messages {
		if id, ok := c.Classify(m); ok {
			counts[id]++
		} else {
			outliers++
		}
	}
	return counts, outliers
}
