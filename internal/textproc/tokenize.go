package textproc

import "strings"

// Tokenize splits a log message into word tokens: maximal runs of letters,
// digits and underscores. Everything else is a separator. This is the
// tokenization used by the SLCT-style clustering and by tests that reason
// about word boundaries.
func Tokenize(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		if isWordByte(s[i]) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// HasWordBounded reports whether word occurs in s bounded by non-word bytes
// (or the string edges). It is the single-pattern equivalent of
// Matcher.FindSetWordBounded, convenient for stop patterns and tests.
func HasWordBounded(s, word string) bool {
	if word == "" {
		return false
	}
	for off := 0; ; {
		i := strings.Index(s[off:], word)
		if i < 0 {
			return false
		}
		i += off
		leftOK := i == 0 || !isWordByte(s[i-1])
		j := i + len(word)
		rightOK := j == len(s) || !isWordByte(s[j])
		if leftOK && rightOK {
			return true
		}
		off = i + 1
	}
}
