package textproc

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatcherBasic(t *testing.T) {
	m := NewMatcher([]string{"he", "she", "his", "hers"})
	matches := m.FindAll("ushers")
	// "ushers": she ends at 4, he ends at 4, hers ends at 6.
	if len(matches) != 3 {
		t.Fatalf("matches = %v", matches)
	}
	got := map[string]int{}
	for _, mm := range matches {
		got[m.Pattern(mm.Pattern)] = mm.End
	}
	if got["she"] != 4 || got["he"] != 4 || got["hers"] != 6 {
		t.Errorf("ends = %v", got)
	}
}

func TestMatcherFindSet(t *testing.T) {
	m := NewMatcher([]string{"DPINOTIFICATION", "UPSRV", "LABO"})
	set := m.FindSet("(DPINOTIFICATION) notify( $myparams ) via UPSRV")
	if !reflect.DeepEqual(set, []int{0, 1}) {
		t.Errorf("FindSet = %v", set)
	}
	if s := m.FindSet("nothing here"); s != nil {
		t.Errorf("no-match FindSet = %v", s)
	}
}

func TestMatcherContains(t *testing.T) {
	m := NewMatcher([]string{"abc"})
	if !m.Contains("xxabcxx") || m.Contains("xxabxcx") {
		t.Error("Contains")
	}
}

func TestMatcherEmptyAndDuplicates(t *testing.T) {
	m := NewMatcher([]string{"", "ab", "ab"})
	if m.NumPatterns() != 3 {
		t.Errorf("NumPatterns = %d", m.NumPatterns())
	}
	set := m.FindSet("ab")
	if !reflect.DeepEqual(set, []int{1, 2}) {
		t.Errorf("duplicate patterns FindSet = %v", set)
	}
	if m.Contains("") {
		t.Error("empty text Contains")
	}
}

func TestMatcherOverlapping(t *testing.T) {
	m := NewMatcher([]string{"aa"})
	if got := len(m.FindAll("aaaa")); got != 3 {
		t.Errorf("overlapping matches = %d, want 3", got)
	}
}

func TestFindSetWordBounded(t *testing.T) {
	m := NewMatcher([]string{"UPSRV", "UPSRV2"})
	// UPSRV2 must match only pattern 1 (UPSRV inside UPSRV2 is not bounded).
	set := m.FindSetWordBounded("calling UPSRV2 now")
	if !reflect.DeepEqual(set, []int{1}) {
		t.Errorf("UPSRV2 set = %v", set)
	}
	set = m.FindSetWordBounded("calling UPSRV now")
	if !reflect.DeepEqual(set, []int{0}) {
		t.Errorf("UPSRV set = %v", set)
	}
	// Punctuation boundaries count as word boundaries.
	set = m.FindSetWordBounded("(UPSRV)")
	if !reflect.DeepEqual(set, []int{0}) {
		t.Errorf("parenthesized set = %v", set)
	}
	// At string edges.
	set = m.FindSetWordBounded("UPSRV")
	if !reflect.DeepEqual(set, []int{0}) {
		t.Errorf("edge set = %v", set)
	}
	if s := m.FindSetWordBounded("XUPSRVX"); s != nil {
		t.Errorf("embedded set = %v", s)
	}
}

// TestMatcherAgainstBruteForce: FindSet agrees with strings.Contains for
// random patterns and texts.
func TestMatcherAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	alphabet := "abc"
	randWord := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return b.String()
	}
	for trial := 0; trial < 200; trial++ {
		np := 1 + rng.Intn(5)
		pats := make([]string, np)
		for i := range pats {
			pats[i] = randWord(1 + rng.Intn(4))
		}
		m := NewMatcher(pats)
		text := randWord(rng.Intn(40))
		got := m.FindSet(text)
		var want []int
		for i, p := range pats {
			if strings.Contains(text, p) {
				want = append(want, i)
			}
		}
		// FindSet reports each duplicate pattern separately, as does the
		// brute force above, so direct comparison is valid.
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("patterns %v text %q: got %v want %v", pats, text, got, want)
		}
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"hello world", []string{"hello", "world"}},
		{"(DPINOTIFICATION) notify( $x )", []string{"DPINOTIFICATION", "notify", "x"}},
		{"a_b-c.d", []string{"a_b", "c", "d"}},
		{"...", nil},
		{"trailing word", []string{"trailing", "word"}},
		{"x", []string{"x"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHasWordBounded(t *testing.T) {
	cases := []struct {
		s, w string
		want bool
	}{
		{"call UPSRV now", "UPSRV", true},
		{"call UPSRV2 now", "UPSRV", false},
		{"UPSRV", "UPSRV", true},
		{"(UPSRV)", "UPSRV", true},
		{"xUPSRV", "UPSRV", false},
		{"UPSRV2 and UPSRV", "UPSRV", true},
		{"", "UPSRV", false},
		{"anything", "", false},
	}
	for _, c := range cases {
		if got := HasWordBounded(c.s, c.w); got != c.want {
			t.Errorf("HasWordBounded(%q, %q) = %v", c.s, c.w, got)
		}
	}
}

func TestSLCTBasic(t *testing.T) {
	msgs := []string{
		"user alice logged in",
		"user bob logged in",
		"user carol logged in",
		"disk full on /var",
	}
	tmpls := SLCT(msgs, 3)
	if len(tmpls) != 1 {
		t.Fatalf("templates = %v", tmpls)
	}
	if got := tmpls[0].String(); got != "user * logged in" {
		t.Errorf("template = %q", got)
	}
	if tmpls[0].Count != 3 {
		t.Errorf("count = %d", tmpls[0].Count)
	}
}

func TestSLCTMatches(t *testing.T) {
	tmpl := Template{Tokens: []string{"user", Wildcard, "logged", "in"}}
	if !tmpl.Matches(Tokenize("user dave logged in")) {
		t.Error("should match")
	}
	if tmpl.Matches(Tokenize("user dave logged out")) {
		t.Error("should not match different fixed token")
	}
	if tmpl.Matches(Tokenize("user dave logged in twice")) {
		t.Error("should not match different length")
	}
}

func TestSLCTSupportOne(t *testing.T) {
	msgs := []string{"a b", "a c"}
	tmpls := SLCT(msgs, 1)
	// support=1: every message is its own fully-fixed template.
	if len(tmpls) != 2 {
		t.Fatalf("templates = %v", tmpls)
	}
	for _, tm := range tmpls {
		for _, tok := range tm.Tokens {
			if tok == Wildcard {
				t.Errorf("unexpected wildcard in %v", tm)
			}
		}
	}
}

func TestSLCTAllWildcardDropped(t *testing.T) {
	// Messages that share no frequent word produce no template.
	msgs := []string{"aa bb", "cc dd", "ee ff"}
	if tmpls := SLCT(msgs, 2); len(tmpls) != 0 {
		t.Errorf("templates = %v", tmpls)
	}
}

func TestSLCTEmptyMessages(t *testing.T) {
	if tmpls := SLCT([]string{"", "...", ""}, 1); len(tmpls) != 0 {
		t.Errorf("templates = %v", tmpls)
	}
	if tmpls := SLCT(nil, 5); tmpls != nil {
		t.Errorf("nil input = %v", tmpls)
	}
}

func TestSLCTOrdering(t *testing.T) {
	msgs := []string{
		"x y", "x y", "x y", "x y",
		"p q", "p q", "p q",
	}
	tmpls := SLCT(msgs, 3)
	if len(tmpls) != 2 || tmpls[0].Count < tmpls[1].Count {
		t.Errorf("ordering: %v", tmpls)
	}
}

// TestSLCTRecoversTemplates: messages generated from known templates with
// random fill-ins are clustered back to those templates.
func TestSLCTRecoversTemplates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var msgs []string
	for i := 0; i < 200; i++ {
		msgs = append(msgs, "invoke service "+randID(rng)+" took "+randID(rng)+" ms")
	}
	for i := 0; i < 150; i++ {
		msgs = append(msgs, "session opened for user "+randID(rng))
	}
	tmpls := SLCT(msgs, 100)
	if len(tmpls) != 2 {
		t.Fatalf("templates = %v", tmpls)
	}
	if tmpls[0].String() != "invoke service * took * ms" {
		t.Errorf("template 0 = %q", tmpls[0])
	}
	if tmpls[1].String() != "session opened for user *" {
		t.Errorf("template 1 = %q", tmpls[1])
	}
}

func randID(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, 8)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// TestTokenizeProperty: all returned tokens are non-empty and contain only
// word bytes.
func TestTokenizeProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for i := 0; i < len(tok); i++ {
				if !isWordByte(tok[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
