package daemon

// The HTTP/JSON control API, a thin layer over the Daemon methods:
//
//	GET    /streams                     every stream's status, name-sorted
//	PUT    /streams/{name}              create or reconfigure (body: StreamConfig)
//	GET    /streams/{name}              one stream's status
//	DELETE /streams/{name}              stop and forget (state dir kept)
//	GET    /streams/{name}/model        model document (?at=TIME; default latest)
//	GET    /streams/{name}/diff         edge delta (?from=TIME&to=TIME)
//	GET    /streams/{name}/trajectory   one key's history (?key=KEY)
//	GET    /streams/{name}/alerts       the stream's DRIFT lines
//	GET    /streams/{name}/metrics      the tenant's metrics document
//	GET    /metrics                     daemon-wide: pool stats + stream names
//
// Errors are JSON bodies {"error": "..."} with 400 (bad config/params),
// 404 (unknown stream, unretained instant), 409 (geometry mismatch) or
// 500. Query endpoints serve the same bytes the equivalent depmine
// subcommand prints — both render through internal/modelstore.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"logscape/internal/logmodel"
	"logscape/internal/modelstore"
	"logscape/internal/parallel"
)

// maxConfigBytes bounds a PUT body; a stream config is a small document.
const maxConfigBytes = 1 << 20

// Handler returns the control API handler.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /streams", d.handleList)
	mux.HandleFunc("PUT /streams/{name}", d.handlePut)
	mux.HandleFunc("GET /streams/{name}", d.handleGet)
	mux.HandleFunc("DELETE /streams/{name}", d.handleDelete)
	mux.HandleFunc("GET /streams/{name}/model", d.handleModel)
	mux.HandleFunc("GET /streams/{name}/diff", d.handleDiff)
	mux.HandleFunc("GET /streams/{name}/trajectory", d.handleTrajectory)
	mux.HandleFunc("GET /streams/{name}/alerts", d.handleAlerts)
	mux.HandleFunc("GET /streams/{name}/metrics", d.handleTenantMetrics)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	return mux
}

// writeJSON writes v as indented JSON with a trailing newline.
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}

// fail maps a daemon error to its HTTP status and writes the JSON body.
func fail(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadConfig) || errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrGeometry):
		code = http.StatusConflict
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (d *Daemon) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"streams": d.List()})
}

func (d *Daemon) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	cfg, err := DecodeStreamConfig(http.MaxBytesReader(w, r.Body, maxConfigBytes))
	if err != nil {
		fail(w, err)
		return
	}
	st, err := d.Upsert(name, cfg)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (d *Daemon) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := d.Status(r.PathValue("name"))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (d *Daemon) handleDelete(w http.ResponseWriter, r *http.Request) {
	st, err := d.Remove(r.PathValue("name"))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// when parses an instant query parameter, defaulting to def when absent.
func when(r *http.Request, param string, def logmodel.Millis) (logmodel.Millis, error) {
	s := r.URL.Query().Get(param)
	if s == "" {
		if def != 0 {
			return def, nil
		}
		return 0, fmt.Errorf("%w: missing ?%s=TIME", ErrBadRequest, param)
	}
	t, err := modelstore.ParseWhen(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return t, nil
}

func (d *Daemon) handleModel(w http.ResponseWriter, r *http.Request) {
	at, err := when(r, "at", math.MaxInt64) // default: the latest retained model
	if err != nil {
		fail(w, err)
		return
	}
	var body []byte
	err = d.withStore(r.PathValue("name"), func(st *modelstore.Store) error {
		rec, ok, err := st.ModelAt(at)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: no model retained at or before %s", ErrNotFound, modelstore.Stamp(at))
		}
		body = rec.Model
		return nil
	})
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(body)
}

func (d *Daemon) handleDiff(w http.ResponseWriter, r *http.Request) {
	from, err := when(r, "from", 0)
	if err != nil {
		fail(w, err)
		return
	}
	to, err := when(r, "to", 0)
	if err != nil {
		fail(w, err)
		return
	}
	var body strings.Builder
	err = d.withStore(r.PathValue("name"), func(st *modelstore.Store) error {
		// Resolve both instants first so an unretained one reports as 404
		// rather than a bare internal error.
		for _, t := range []logmodel.Millis{from, to} {
			if _, ok, err := st.ModelAt(t); err != nil {
				return err
			} else if !ok {
				return fmt.Errorf("%w: no model retained at or before %s", ErrNotFound, modelstore.Stamp(t))
			}
		}
		diff, err := st.DiffAt(from, to)
		if err != nil {
			return err
		}
		return modelstore.WriteDiff(&body, diff)
	})
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, body.String())
}

func (d *Daemon) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		fail(w, fmt.Errorf("%w: missing ?key=KEY (A--B pair or App->GROUP dependency)", ErrBadRequest))
		return
	}
	var body strings.Builder
	err := d.withStore(r.PathValue("name"), func(st *modelstore.Store) error {
		points, err := st.Trajectory(key)
		if err != nil {
			return err
		}
		return modelstore.WriteTrajectory(&body, points)
	})
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, body.String())
}

// handleAlerts serves the stream's DRIFT lines: events.log filtered to
// the drift detector's output, read under the advance lock so a
// half-written alert is never visible.
func (d *Daemon) handleAlerts(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	t, err := d.lookup(name)
	if err != nil {
		fail(w, err)
		return
	}
	t.mu.Lock()
	f, err := os.Open(filepath.Join(t.dir, eventsFile))
	var lines []string
	if err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(nil, 1<<20)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "DRIFT ") {
				lines = append(lines, sc.Text())
			}
		}
		err = sc.Err()
		f.Close()
	} else if errors.Is(err, os.ErrNotExist) {
		err = nil // engine not started yet: no alerts
	}
	t.mu.Unlock()
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// handleTenantMetrics serves one tenant's metrics document. The registry
// is per tenant, so one stream's counters never include a neighbor's.
func (d *Daemon) handleTenantMetrics(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, err := d.lookup(name); err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := d.metrics.Get(name).WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleMetrics serves the daemon-wide document: shared-pool stats and
// the stream roster. Per-stream numbers live under each tenant's own
// /streams/{name}/metrics.
func (d *Daemon) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	pool := parallel.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"pool": map[string]int64{
			"helpers":  int64(pool.Helpers),
			"handoffs": pool.Handoffs,
			"misses":   pool.Misses,
		},
		"streams": d.metrics.Names(),
	})
}
