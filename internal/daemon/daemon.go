package daemon

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"logscape/internal/follow"
	"logscape/internal/logmodel"
	"logscape/internal/modelstore"
	"logscape/internal/obs"
)

// Per-tenant file names under <state>/<name>/ (see the package comment).
const (
	configFile = "stream.json"
	outFile    = "out.log"
	eventsFile = "events.log"
	ckptFile   = "follow.ckpt"
	quarFile   = "quarantine.log"
	storeName  = "store"
)

// Config parameterizes a Daemon.
type Config struct {
	// StateDir is the root under which every tenant keeps its directory.
	StateDir string
	// Clock feeds each tenant registry's timings (obs.SystemClock at the
	// CLI edge; nil in tests, where metrics must be input-determined).
	Clock func() int64
	// PollMillis is the live-tail idle poll interval (0 = 25ms). It shapes
	// how promptly a live stream notices appended bytes or a stop, never
	// what it emits.
	PollMillis int
}

// Daemon hosts the tenant streams. Construct with New, rehydrate
// persisted streams with Start, and administer through the exported
// methods (or the HTTP handler, which is a thin layer over them).
type Daemon struct {
	cfg     Config
	metrics *obs.Tenants

	mu      sync.Mutex // guards streams; held across stream lifecycle changes
	streams map[string]*tenant
}

// tenant is one named stream: its configuration, its running engine (if
// any) and the engine's observable position.
type tenant struct {
	name string
	dir  string

	// mu is the engine's AdvanceLock: held by the engine around every
	// bucket emission and by the daemon around every status read and
	// store query, so a query never observes a half-written advance. The
	// mutable fields below are all guarded by it.
	mu       sync.Mutex
	cfg      StreamConfig
	state    string // "running", "done", "stopped", "failed", "removed"
	progress follow.Progress
	result   follow.Result
	runErr   error

	stop      atomic.Bool  // raised to hard-stop the engine
	idlePolls atomic.Int64 // live-tail quiescent-EOF polls; signals idleness
	done      chan struct{}
}

// Status is the per-stream document GET /streams/{name} serves. For a
// finished stream Totals carries the run's accounting; while running,
// the progress fields advance per closed bucket.
type Status struct {
	Name   string       `json:"name"`
	State  string       `json:"state"`
	Config StreamConfig `json:"config"`

	// Buckets, Consumed, LastBucket and WindowEnd are the engine's
	// cumulative position (WindowEnd in the canonical UTC second form).
	Buckets    int    `json:"buckets"`
	Consumed   int64  `json:"consumed"`
	LastBucket int64  `json:"last_bucket"`
	WindowEnd  string `json:"window_end,omitempty"`

	// IdlePolls counts live-tail quiescent-EOF polls — a growing value
	// under an unchanged source means the stream has drained it.
	IdlePolls int64 `json:"idle_polls,omitempty"`

	Totals *Totals `json:"totals,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// Totals is a finished run's accounting, mirroring the numbers depmine's
// "follow done" summary line prints.
type Totals struct {
	Entries     int   `json:"entries"`
	Buckets     int   `json:"buckets"`
	Late        int   `json:"late"`
	Corrupt     int   `json:"corrupt"`
	Malformed   int   `json:"malformed"`
	Oversized   int   `json:"oversized"`
	Quarantined int   `json:"quarantined"`
	Rotations   int64 `json:"rotations"`
	TornGzip    bool  `json:"torn_gzip,omitempty"`
}

// New returns a daemon rooted at cfg.StateDir (created if missing). No
// streams run until Start or Upsert.
func New(cfg Config) (*Daemon, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("daemon: StateDir is required")
	}
	if cfg.PollMillis <= 0 {
		cfg.PollMillis = 25
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, err
	}
	return &Daemon{
		cfg:     cfg,
		metrics: obs.NewTenants(cfg.Clock),
		streams: make(map[string]*tenant),
	}, nil
}

// Start rehydrates every persisted stream (directories with a
// stream.json) in name order and starts their engines, each resuming
// from its own checkpoint. A finished stream whose source has not grown
// emits nothing, so restarting the daemon is idempotent.
func (d *Daemon) Start() error {
	entries, err := os.ReadDir(d.cfg.StateDir)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		cfg, ok, err := readStreamConfig(filepath.Join(tenantDir(d.cfg.StateDir, name), configFile))
		if err != nil {
			return fmt.Errorf("rehydrating stream %q: %w", name, err)
		}
		if !ok {
			continue // not a tenant directory
		}
		if _, err := d.Upsert(name, cfg); err != nil {
			return fmt.Errorf("rehydrating stream %q: %w", name, err)
		}
	}
	return nil
}

// Upsert creates or reconfigures the named stream and (re)starts its
// engine. A running engine is hard-stopped first — its checkpoint makes
// the restart exact — and the stream resumes under the new configuration.
// Geometry (method, bucket width, window size) is fixed once on-disk
// state exists; changing it is refused with ErrGeometry.
func (d *Daemon) Upsert(name string, cfg StreamConfig) (Status, error) {
	if err := ValidateName(name); err != nil {
		return Status{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Status{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	dir := tenantDir(d.cfg.StateDir, name)
	prev, ok, err := readStreamConfig(filepath.Join(dir, configFile))
	if err != nil {
		return Status{}, err
	}
	if ok && (prev.Method != cfg.Method || prev.BucketSec != cfg.BucketSec || prev.WindowBuckets != cfg.WindowBuckets) { //lint:allow floateq geometry is an exact config identity check, not arithmetic: both values round-trip through the same JSON document unmodified
		return Status{}, fmt.Errorf(
			"%w: stream %q mines method=%s bucket=%gs window=%d; those are fixed for its lifetime (got method=%s bucket=%gs window=%d) — delete its state directory to start fresh",
			ErrGeometry, name, prev.Method, prev.BucketSec, prev.WindowBuckets,
			cfg.Method, cfg.BucketSec, cfg.WindowBuckets)
	}
	if old := d.streams[name]; old != nil {
		old.stop.Store(true)
		<-old.done
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Status{}, err
	}
	if err := writeStreamConfig(filepath.Join(dir, configFile), cfg); err != nil {
		return Status{}, err
	}
	t := &tenant{
		name: name,
		dir:  dir,
		cfg:  cfg,
		done: make(chan struct{}), //lint:allow bareconc lifecycle signal for one engine goroutine, not mining fan-out; the engine's parallelism stays inside the shared pool
	}
	st, err := d.launch(t)
	if err != nil {
		return Status{}, err
	}
	d.streams[name] = t
	return st, nil
}

// launch initializes the tenant's store sidecar and starts its engine
// goroutine. The store is opened synchronously so geometry conflicts
// surface on the PUT, not asynchronously in the engine. The returned
// status is snapshotted before the engine starts, so an Upsert response
// is a pure function of the request — zero progress, state "running".
func (d *Daemon) launch(t *tenant) (Status, error) {
	width := logmodel.SecondsToMillis(t.cfg.BucketSec)
	if _, err := modelstore.Open(filepath.Join(t.dir, storeName), modelstore.Config{
		BucketWidth:   width,
		WindowBuckets: t.cfg.WindowBuckets,
	}); err != nil {
		return Status{}, err
	}
	out, err := os.OpenFile(filepath.Join(t.dir, outFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return Status{}, err
	}
	events, err := os.OpenFile(filepath.Join(t.dir, eventsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		out.Close()
		return Status{}, err
	}
	fcfg := follow.Config{
		Method:         t.cfg.Method,
		Source:         t.cfg.Source,
		DirPath:        t.cfg.Directory,
		MinLogs:        t.cfg.MinLogs,
		TimeoutSec:     t.cfg.TimeoutSec,
		NoStops:        t.cfg.NoStops,
		Workers:        t.cfg.Workers,
		BucketSec:      t.cfg.BucketSec,
		WindowBuckets:  t.cfg.WindowBuckets,
		ResumePath:     filepath.Join(t.dir, ckptFile),
		QuarantinePath: filepath.Join(t.dir, quarFile),
		StorePath:      filepath.Join(t.dir, storeName),
		Drift:          t.cfg.Drift,
		Metrics:        d.metrics.Get(t.name),
		Stop:           t.stop.Load,
		AdvanceLock:    &t.mu,
		// Progress runs inside AdvanceLock (t.mu held), so the plain
		// assignment is already synchronized with status().
		Progress: func(p follow.Progress) { t.progress = p },
	}
	if t.cfg.Live {
		poll := time.Duration(d.cfg.PollMillis) * time.Millisecond
		fcfg.Wait = func() bool {
			t.idlePolls.Add(1)
			if t.stop.Load() {
				return false
			}
			time.Sleep(poll)
			return true
		}
	}
	t.state = "running"
	st := t.status()
	go func() { //lint:allow bareconc one engine goroutine per tenant stream is process-edge concurrency; all mining fan-out inside the engine routes through the shared parallel pool
		res, err := follow.Run(fcfg, out, events)
		out.Close()
		events.Close()
		t.mu.Lock()
		t.result, t.runErr = res, err
		switch {
		case err != nil:
			t.state = "failed"
		case res.Stopped:
			t.state = "stopped"
		default:
			t.state = "done"
		}
		t.mu.Unlock()
		close(t.done)
	}()
	return st, nil
}

// lookup returns the named tenant or an ErrNotFound.
func (d *Daemon) lookup(name string) (*tenant, error) {
	d.mu.Lock()
	t := d.streams[name]
	d.mu.Unlock()
	if t == nil {
		return nil, fmt.Errorf("%w: no stream named %q", ErrNotFound, name)
	}
	return t, nil
}

// Status returns the named stream's status document.
func (d *Daemon) Status(name string) (Status, error) {
	t, err := d.lookup(name)
	if err != nil {
		return Status{}, err
	}
	return t.status(), nil
}

// List returns every stream's status, sorted by name.
func (d *Daemon) List() []Status {
	d.mu.Lock()
	tenants := make([]*tenant, 0, len(d.streams))
	for _, t := range d.streams {
		tenants = append(tenants, t)
	}
	d.mu.Unlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	out := make([]Status, len(tenants))
	for i, t := range tenants {
		out[i] = t.status()
	}
	return out
}

// Remove hard-stops the named stream and forgets it. Its state directory
// stays on disk (a later Upsert under the same name resumes from it);
// deleting the directory is the operator's explicit act, never the API's.
func (d *Daemon) Remove(name string) (Status, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.streams[name]
	if t == nil {
		return Status{}, fmt.Errorf("%w: no stream named %q", ErrNotFound, name)
	}
	t.stop.Store(true)
	<-t.done
	delete(d.streams, name)
	d.metrics.Drop(name)
	st := t.status()
	st.State = "removed"
	return st, nil
}

// Kill hard-stops every engine, the in-process SIGKILL-equivalent: no
// open bucket is flushed, so a restarted daemon resumes each tenant from
// its checkpoint with byte-exact continuations. The daemon is spent
// afterwards; construct a new one to continue.
func (d *Daemon) Kill() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, t := range d.streams {
		t.stop.Store(true)
	}
	for _, t := range d.streams {
		<-t.done
	}
}

// WaitIdle blocks until the named stream has either finished or (for a
// live stream) completed at least n quiescent-EOF polls since the call —
// i.e. it has drained everything currently in its source. Test harnesses
// use it to sequence kills deterministically.
func (d *Daemon) WaitIdle(name string, n int64) error {
	t, err := d.lookup(name)
	if err != nil {
		return err
	}
	base := t.idlePolls.Load()
	for {
		select {
		case <-t.done:
			return nil
		default:
		}
		if t.idlePolls.Load()-base >= n {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
}

// Wait blocks until the named stream's engine goroutine has exited.
func (d *Daemon) Wait(name string) (Status, error) {
	t, err := d.lookup(name)
	if err != nil {
		return Status{}, err
	}
	<-t.done
	return t.status(), nil
}

// status renders the tenant's status document under its advance lock.
func (t *tenant) status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Status{
		Name:       t.name,
		State:      t.state,
		Config:     t.cfg,
		Buckets:    t.progress.Buckets,
		Consumed:   t.progress.Consumed,
		LastBucket: t.progress.LastIndex,
		IdlePolls:  t.idlePolls.Load(),
	}
	if t.progress.WindowEnd != 0 {
		s.WindowEnd = modelstore.Stamp(t.progress.WindowEnd)
	}
	if t.state != "running" {
		r := t.result
		s.Totals = &Totals{
			Entries:     r.Ingest.Accepted,
			Buckets:     r.Ingest.Buckets,
			Late:        r.Ingest.Late,
			Corrupt:     r.Ingest.Corrupt,
			Malformed:   r.Feed.Malformed,
			Oversized:   r.Feed.Oversized,
			Quarantined: r.Feed.Quarantined,
			Rotations:   r.Rotations,
			TornGzip:    r.TornGzip,
		}
	}
	if t.runErr != nil {
		s.Error = t.runErr.Error()
	}
	return s
}

// withStore opens a read-only view of the tenant's model store under its
// advance lock and runs fn over it. The lock orders the query after any
// in-flight bucket emission, so queries read a consistent store and the
// round-trip contract (query == live bytes) holds at every instant.
func (d *Daemon) withStore(name string, fn func(*modelstore.Store) error) error {
	t, err := d.lookup(name)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st, err := modelstore.OpenRead(filepath.Join(t.dir, storeName))
	if err != nil {
		return err
	}
	return fn(st)
}
