package daemon_test

// FuzzStreamConfig hardens the daemon's one untrusted input surface: the
// stream-config JSON a PUT carries. The decoder must never panic, and a
// rejected document must leave the daemon untouched — no stream in the
// roster, no tenant directory on disk.

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logscape/internal/daemon"
)

func FuzzStreamConfig(f *testing.F) {
	f.Add(`{"method":"l1","source":"x.log","bucket_sec":1,"window_buckets":2}`)
	f.Add(`{"method":"l2","source":"x.log","timeout_sec":1.5,"workers":8,"bucket_sec":0.5,"window_buckets":4,"live":true}`)
	f.Add(`{"method":"l3","source":"x.log","directory":"d.xml","drift":true,"no_stops":true,"bucket_sec":2,"window_buckets":3}`)
	f.Add(`{"method":"l1","source":"-","bucket_sec":1,"window_buckets":2}`)
	f.Add(`{"method":"l9","source":"x.log","bucket_sec":1e308,"window_buckets":-3}`)
	f.Add(`{"method":"l1","source":"x.log","bucket_sec":1,"window_buckets":2,"mystery":true}`)
	f.Add(`{"method":"l1","source":"x.log","bucket_sec":1,"window_buckets":2} trailing`)
	f.Add(`[]`)
	f.Add(`nul`)
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		// The decoder alone: no panic, and accepted documents re-validate
		// cleanly (decode and validate agree on what is well-formed).
		cfg, err := daemon.DecodeStreamConfig(strings.NewReader(data))
		if err == nil {
			if verr := cfg.Validate(); verr != nil {
				t.Fatalf("accepted config fails Validate: %v\ninput: %q", verr, data)
			}
		}

		// The full PUT path against a fresh daemon: a non-200 response must
		// leave zero streams and zero tenant state on disk.
		state := t.TempDir()
		d, derr := daemon.New(daemon.Config{StateDir: state, PollMillis: 1})
		if derr != nil {
			t.Fatal(derr)
		}
		w := httptest.NewRecorder()
		r := httptest.NewRequest("PUT", "/streams/probe", strings.NewReader(data))
		d.Handler().ServeHTTP(w, r)
		if (w.Code == http.StatusOK) != (err == nil) {
			t.Fatalf("decoder and PUT disagree: decode err=%v, HTTP %d\ninput: %q", err, w.Code, data)
		}
		if w.Code != http.StatusOK {
			if n := len(d.List()); n != 0 {
				t.Fatalf("rejected config created %d stream(s)\ninput: %q", n, data)
			}
			if _, serr := os.Stat(filepath.Join(state, "probe")); !os.IsNotExist(serr) {
				t.Fatalf("rejected config left tenant state on disk (%v)\ninput: %q", serr, data)
			}
		}
		// Accepted configs may start an engine over a nonexistent source;
		// stop it so fuzzing never accumulates live tailers.
		d.Kill()
	})
}
