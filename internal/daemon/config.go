package daemon

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// Error classes the HTTP layer maps to status codes. Every daemon error
// wraps exactly one of them (or none, which maps to 500).
var (
	// ErrBadConfig marks a rejected stream name or configuration (400).
	// A rejected configuration never mutates daemon state.
	ErrBadConfig = errors.New("invalid stream config")
	// ErrBadRequest marks a malformed query parameter (400).
	ErrBadRequest = errors.New("bad request")
	// ErrNotFound marks a reference to an unknown stream or to data the
	// store does not retain (404).
	ErrNotFound = errors.New("not found")
	// ErrGeometry marks a reconfigure that tries to change a stream's
	// mining geometry over existing on-disk state (409).
	ErrGeometry = errors.New("geometry mismatch")
)

// StreamConfig is one tenant stream's configuration, the JSON document a
// PUT /streams/{name} carries. Fields mirror depmine's follow-mode flags;
// Live replaces the implicit "stdin never ends" behavior: a live stream
// keeps tailing its file at EOF until it is stopped or reconfigured,
// a non-live stream ends (and flushes) at the first quiescent EOF.
type StreamConfig struct {
	// Method selects the streaming miner: "l1", "l2" or "l3".
	Method string `json:"method"`
	// Source is the log file to tail (".gz" decompressed transparently).
	// Stdin ("-") is not available to a daemon stream.
	Source string `json:"source"`
	// Directory is the service-directory XML path, required for l3.
	Directory string `json:"directory,omitempty"`
	// MinLogs is the L1 per-slot minimum log count.
	MinLogs int `json:"min_logs,omitempty"`
	// TimeoutSec is the L2 bigram timeout in seconds (0 = infinity).
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// NoStops disables the canonical L3 stop patterns.
	NoStops bool `json:"no_stops,omitempty"`
	// Workers bounds per-bucket mining parallelism (0 = all cores); the
	// emitted artifacts are identical at every setting.
	Workers int `json:"workers,omitempty"`
	// BucketSec and WindowBuckets are the stream's mining geometry. They
	// are fixed for the stream's lifetime (see ErrGeometry).
	BucketSec     float64 `json:"bucket_sec"`
	WindowBuckets int     `json:"window_buckets"`
	// Drift enables the drift detector; confirmed change points appear in
	// events.log and on GET /streams/{name}/alerts.
	Drift bool `json:"drift,omitempty"`
	// Live keeps tailing at EOF until the stream is stopped.
	Live bool `json:"live,omitempty"`
}

// Capacity guardrails: wider buckets or windows than any plausible
// deployment are rejected rather than risking arithmetic overflow deep in
// the engine.
const (
	maxBucketSec     = 7 * 24 * 3600 // one week per bucket
	maxWindowBuckets = 100_000
	maxNameLen       = 64
)

// Validate checks a decoded configuration. It is pure: a failed
// validation has no side effects anywhere.
func (c StreamConfig) Validate() error {
	switch c.Method {
	case "l1", "l2", "l3":
	default:
		return fmt.Errorf("%w: method must be l1, l2 or l3 (got %q)", ErrBadConfig, c.Method)
	}
	if c.Source == "" {
		return fmt.Errorf("%w: source is required", ErrBadConfig)
	}
	if c.Source == "-" {
		return fmt.Errorf("%w: a daemon stream cannot tail stdin; give it a file path", ErrBadConfig)
	}
	if c.Method == "l3" && c.Directory == "" {
		return fmt.Errorf("%w: l3 requires a service directory", ErrBadConfig)
	}
	if c.Method != "l3" && c.Directory != "" {
		return fmt.Errorf("%w: directory is only meaningful for l3", ErrBadConfig)
	}
	if !(c.BucketSec > 0) || c.BucketSec > maxBucketSec {
		return fmt.Errorf("%w: bucket_sec must be in (0, %d] (got %g)", ErrBadConfig, maxBucketSec, c.BucketSec)
	}
	if c.WindowBuckets <= 0 || c.WindowBuckets > maxWindowBuckets {
		return fmt.Errorf("%w: window_buckets must be in [1, %d] (got %d)", ErrBadConfig, maxWindowBuckets, c.WindowBuckets)
	}
	if c.MinLogs < 0 {
		return fmt.Errorf("%w: min_logs must be ≥ 0 (got %d)", ErrBadConfig, c.MinLogs)
	}
	if c.TimeoutSec < 0 {
		return fmt.Errorf("%w: timeout_sec must be ≥ 0 (got %g)", ErrBadConfig, c.TimeoutSec)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: workers must be ≥ 0 (got %d)", ErrBadConfig, c.Workers)
	}
	return nil
}

// ValidateName checks a stream name: 1–64 characters of [A-Za-z0-9_-],
// starting with a letter or digit. Names double as state-directory names,
// so path separators and dot-files are unrepresentable by construction.
func ValidateName(name string) error {
	if name == "" || len(name) > maxNameLen {
		return fmt.Errorf("%w: stream name must be 1–%d characters", ErrBadConfig, maxNameLen)
	}
	for i, r := range name {
		alnum := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9'
		if alnum || (i > 0 && (r == '_' || r == '-')) {
			continue
		}
		return fmt.Errorf("%w: stream name may use [A-Za-z0-9_-] and must start alphanumeric (got %q)", ErrBadConfig, name)
	}
	return nil
}

// DecodeStreamConfig parses and validates one stream-config JSON
// document. Unknown fields and trailing data are rejected (a daemon
// config is a contract, not a suggestion), and a rejected document
// leaves no trace: decoding touches nothing but the returned value.
func DecodeStreamConfig(r io.Reader) (StreamConfig, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c StreamConfig
	if err := dec.Decode(&c); err != nil {
		return StreamConfig{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if dec.More() {
		return StreamConfig{}, fmt.Errorf("%w: trailing data after the config document", ErrBadConfig)
	}
	if err := c.Validate(); err != nil {
		return StreamConfig{}, err
	}
	return c, nil
}

// readStreamConfig loads a persisted stream.json. A missing file is not
// an error (ok=false): the stream has no prior on-disk configuration.
func readStreamConfig(path string) (StreamConfig, bool, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return StreamConfig{}, false, nil
	}
	if err != nil {
		return StreamConfig{}, false, err
	}
	c, err := DecodeStreamConfig(bytes.NewReader(b))
	if err != nil {
		return StreamConfig{}, true, fmt.Errorf("corrupt %s: %w", path, err)
	}
	return c, true, nil
}

// writeStreamConfig persists a stream.json atomically (tmp + rename), the
// same crash-safety discipline the checkpoint writer uses.
func writeStreamConfig(path string, c StreamConfig) error {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// tenantDir returns the tenant's state directory under root.
func tenantDir(root, name string) string { return filepath.Join(root, name) }
