// Package daemon is the multi-tenant mining server behind cmd/depmined:
// many named follow engines (internal/follow) run concurrently in one
// process, multiplexed over the single shared worker pool
// (internal/parallel), administered and queried over an HTTP/JSON control
// API.
//
// Each stream is a tenant with its own directory under the daemon's state
// root:
//
//	<state>/<name>/stream.json      the stream's persisted configuration
//	<state>/<name>/out.log          every emitted model document, in order
//	<state>/<name>/events.log       delta lines and DRIFT alerts
//	<state>/<name>/follow.ckpt      the resume checkpoint (light form)
//	<state>/<name>/quarantine.log   rejected lines, fault-class prefixed
//	<state>/<name>/store/           the tenant's model store
//
// The tenant determinism contract: every one of those artifacts is
// byte-identical to what a solo `depmine -follow` run over the same
// stream with the same geometry would produce — independent of worker
// count, of metrics collection, and of how many neighbor tenants share
// the daemon. The shared pool hands helpers only to engines that can use
// them and never influences any engine's output, so multi-tenancy is a
// scheduling concern, not a correctness one.
//
// Stops are hard by design (the SIGKILL-equivalent): a stopping engine
// never flushes its open bucket, because an uninterrupted run would not
// have emitted that partial-bucket document either. Restarting the daemon
// rehydrates every tenant from its stream.json and resumes from its
// checkpoint; a stream whose source has not grown emits nothing new, so
// restarts are idempotent.
package daemon
